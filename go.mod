module piersearch

go 1.24
