// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks share one study environment (built lazily) and time
// the per-figure computation; headline values are attached as benchmark
// metrics so `go test -bench` output doubles as the results table.
// Deployment benchmarks run the full §7 experiment.
package bench

import (
	"sync"
	"testing"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/experiments"
	"piersearch/internal/gnutella"
	"piersearch/internal/metrics"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
)

// benchScale sizes the shared study environment. 0.12 keeps the whole
// bench suite in tens of seconds; raise it (or run the cmd/ binaries with
// -scale 1) for paper-scale numbers.
const benchScale = 0.12

var (
	envOnce sync.Once
	env     *experiments.StudyEnv
	envErr  error
)

func studyEnv(b *testing.B) *experiments.StudyEnv {
	b.Helper()
	envOnce.Do(func() {
		env, envErr = experiments.NewStudyEnv(experiments.StudyConfig{Scale: benchScale, Seed: 1})
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// BenchmarkFigure4 regenerates Figure 4 (result-set size vs average
// replication factor).
func BenchmarkFigure4(b *testing.B) {
	e := studyEnv(b)
	var s metrics.Series
	for i := 0; i < b.N; i++ {
		s = experiments.Figure4(e)
	}
	if len(s.Points) > 0 {
		b.ReportMetric(s.Points[len(s.Points)-1].Y, "max-bucket-results")
	}
}

// BenchmarkFigure5 regenerates Figure 5 (result-size CDFs, 1 node vs
// Union-of-30).
func BenchmarkFigure5(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure5(e)
	}
	b.ReportMetric(series[0].YAt(10), "pct<=10-single")
	b.ReportMetric(series[1].YAt(10), "pct<=10-union30")
}

// BenchmarkFigure6 regenerates Figure 6 (CDFs <= 20 results for growing
// vantage unions).
func BenchmarkFigure6(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure6(e)
	}
	b.ReportMetric(series[0].YAt(0), "pct-zero-single")
	b.ReportMetric(series[len(series)-1].YAt(0), "pct-zero-union30")
}

// BenchmarkGnutellaAggregates regenerates the §4.2 headline numbers
// (paper: 41% <=10 / 18% zero single node; 27% / 6% union; >=66%
// potential reduction).
func BenchmarkGnutellaAggregates(b *testing.B) {
	e := studyEnv(b)
	var a experiments.GnutellaAggregates
	for i := 0; i < b.N; i++ {
		a = experiments.Aggregates(e)
	}
	b.ReportMetric(a.PctAtMost10Single, "pct<=10-single")
	b.ReportMetric(a.PctZeroSingle, "pct-zero-single")
	b.ReportMetric(a.PctZeroUnion, "pct-zero-union")
	b.ReportMetric(a.ZeroReductionPct, "zero-reduction-pct")
}

// BenchmarkFigure7 regenerates Figure 7 (result size vs first-result
// latency; paper: ~73 s for single-result queries, ~6 s beyond 150).
func BenchmarkFigure7(b *testing.B) {
	e := studyEnv(b)
	var s metrics.Series
	for i := 0; i < b.N; i++ {
		s = experiments.Figure7(e)
	}
	if len(s.Points) > 1 {
		b.ReportMetric(s.Points[0].Y, "rare-first-result-s")
		b.ReportMetric(s.Points[len(s.Points)-1].Y, "popular-first-result-s")
	}
}

// BenchmarkFigure8 regenerates Figure 8 (flooding messages vs ultrapeers
// visited, diminishing returns).
func BenchmarkFigure8(b *testing.B) {
	var s metrics.Series
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.Figure8(experiments.Figure8Config{Ultrapeers: 20000, Sources: 3, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := s.Points[len(s.Points)-1]
	b.ReportMetric(last.X, "kmessages-at-max-ttl")
	b.ReportMetric(last.Y, "ultrapeers-visited")
}

// BenchmarkFigure9 regenerates Figure 9 (PF-threshold vs replica
// threshold, Equation 2).
func BenchmarkFigure9(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure9(e)
	}
	b.ReportMetric(series[1].YAt(2), "pf-thr2-h15")
}

// BenchmarkFigure10 regenerates Figure 10 (publishing overhead vs replica
// threshold; paper anchor: 23% at threshold 1).
func BenchmarkFigure10(b *testing.B) {
	e := studyEnv(b)
	var s metrics.Series
	for i := 0; i < b.N; i++ {
		s = experiments.Figure10(e)
	}
	b.ReportMetric(s.YAt(1), "pct-items-thr1")
}

// BenchmarkFigure11 regenerates Figure 11 (average QR vs replica
// threshold; paper: 47/52/61% at threshold 1).
func BenchmarkFigure11(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure11(e)
	}
	b.ReportMetric(series[0].YAt(1), "qr-thr1-h5")
	b.ReportMetric(series[1].YAt(1), "qr-thr1-h15")
	b.ReportMetric(series[2].YAt(1), "qr-thr1-h30")
}

// BenchmarkFigure12 regenerates Figure 12 (average QDR vs replica
// threshold; paper: ~93% at threshold 2, horizon 15%).
func BenchmarkFigure12(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure12(e)
	}
	b.ReportMetric(series[1].YAt(2), "qdr-thr2-h15")
}

// BenchmarkFigure13 regenerates Figure 13 (schemes on average QR vs
// publishing budget, horizon 5%).
func BenchmarkFigure13(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure13(e)
	}
	for _, s := range series {
		switch s.Name {
		case "Perfect":
			b.ReportMetric(s.YAt(50), "perfect-qr-at-50pct")
		case "Random":
			b.ReportMetric(s.YAt(50), "random-qr-at-50pct")
		}
	}
}

// BenchmarkFigure14 regenerates Figure 14 (schemes on average QDR).
func BenchmarkFigure14(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure14(e)
	}
	b.ReportMetric(series[0].YAt(50), "perfect-qdr-at-50pct")
}

// BenchmarkFigure15 regenerates Figure 15 (SAM sampling sweep).
func BenchmarkFigure15(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Figure15(e)
	}
	b.ReportMetric(series[1].YAt(50), "sam15-qr-at-50pct")
}

// BenchmarkPostingListShipping validates the §5 claim that <=10-result
// queries ship ~7x fewer posting entries through the distributed join.
func BenchmarkPostingListShipping(b *testing.B) {
	e := studyEnv(b)
	var res experiments.PostingShipResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.PostingListShipping(e, 32, 8000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Ratio, "all/rare-shipping-ratio")
	b.ReportMetric(res.AvgShippedRare, "rare-entries/query")
}

// --- §7 deployment benchmarks -----------------------------------------------

var (
	deployOnce   sync.Once
	deployCache  *experiments.DeployResult
	deployJoin   *experiments.DeployResult
	deployErr    error
	deployConfig = experiments.DeployConfig{
		Ultrapeers:     400,
		HybridCount:    50,
		WarmupQueries:  100,
		MeasureQueries: 80,
		Seed:           1,
	}
)

func deployment(b *testing.B) (*experiments.DeployResult, *experiments.DeployResult) {
	b.Helper()
	deployOnce.Do(func() {
		cfg := deployConfig
		cfg.Strategy = piersearch.StrategyCache
		deployCache, deployErr = experiments.RunDeployment(cfg)
		if deployErr != nil {
			return
		}
		cfg.Strategy = piersearch.StrategyJoin
		deployJoin, deployErr = experiments.RunDeployment(cfg)
	})
	if deployErr != nil {
		b.Fatal(deployErr)
	}
	return deployCache, deployJoin
}

// BenchmarkDeployPublish reports D1: publishing cost per file (paper:
// ~3.5 KB plain, ~4 KB with InvertedCache).
func BenchmarkDeployPublish(b *testing.B) {
	cache, join := deployment(b)
	for i := 0; i < b.N; i++ {
		_ = cache.AvgPublishBytes
	}
	b.ReportMetric(join.AvgPublishBytes, "bytes/file-inverted")
	b.ReportMetric(cache.AvgPublishBytes, "bytes/file-cache")
	b.ReportMetric(float64(cache.FilesPublished), "files-published")
}

// BenchmarkDeployLatency reports D2: first-result latencies (paper: PIER
// answers ~10 s cache / ~12 s join after the 30 s timeout; Gnutella's own
// first result for those queries averaged ~65 s).
func BenchmarkDeployLatency(b *testing.B) {
	cache, join := deployment(b)
	for i := 0; i < b.N; i++ {
		_ = cache.AvgHybridLatency
	}
	b.ReportMetric(cache.AvgGnutellaLatency.Seconds(), "gnutella-latency-s")
	b.ReportMetric(cache.AvgHybridLatency.Seconds(), "hybrid-cache-latency-s")
	b.ReportMetric(join.AvgHybridLatency.Seconds(), "hybrid-join-latency-s")
}

// BenchmarkDeployQueryBandwidth reports D3: per-query PIER bandwidth in
// the fileID-matching phase (paper: ~850 B cache vs ~20 KB join).
func BenchmarkDeployQueryBandwidth(b *testing.B) {
	cache, join := deployment(b)
	for i := 0; i < b.N; i++ {
		_ = cache.AvgPierMatchBytes
	}
	b.ReportMetric(cache.AvgPierMatchBytes, "match-bytes-cache")
	b.ReportMetric(join.AvgPierMatchBytes, "match-bytes-join")
}

// BenchmarkDeployZeroResult reports D4: the reduction in zero-result
// queries the hybrid achieves (paper: 18% observed, 66% potential).
func BenchmarkDeployZeroResult(b *testing.B) {
	cache, _ := deployment(b)
	for i := 0; i < b.N; i++ {
		_ = cache.ReductionPct
	}
	b.ReportMetric(float64(cache.ZeroBaseline), "zero-baseline")
	b.ReportMetric(float64(cache.ZeroHybrid), "zero-hybrid")
	b.ReportMetric(cache.ReductionPct, "reduction-pct")
}

// BenchmarkExtensionHorizonLoad regenerates the §4.3 future-work study:
// recall vs per-query load for deep flooding vs the hybrid.
func BenchmarkExtensionHorizonLoad(b *testing.B) {
	e := studyEnv(b)
	var series []metrics.Series
	for i := 0; i < b.N; i++ {
		series = experiments.ExtensionHorizonLoad(e)
	}
	h := series[1].Points[0]
	b.ReportMetric(h.X, "hybrid-load-kmsgs")
	b.ReportMetric(h.Y, "hybrid-qdr")
	deepest := series[0].Points[len(series[0].Points)-1]
	b.ReportMetric(deepest.X, "deep-flood-load-kmsgs")
	b.ReportMetric(deepest.Y, "deep-flood-qdr")
}

// BenchmarkExtensionCostRecall sweeps the Eq. 3-5 cost model.
func BenchmarkExtensionCostRecall(b *testing.B) {
	e := studyEnv(b)
	var s metrics.Series
	for i := 0; i < b.N; i++ {
		s = experiments.ExtensionCostRecall(e, 5)
	}
	b.ReportMetric(s.Points[2].Y, "qdr-thr2")
	b.ReportMetric(s.Points[2].X, "cost-thr2-kmsgs")
}

// BenchmarkAblationTFBloom quantifies the accuracy cost of Bloom-encoding
// the TF scheme's term statistics (§6.3 suggestion).
func BenchmarkAblationTFBloom(b *testing.B) {
	e := studyEnv(b)
	var points []experiments.TFBloomPoint
	for i := 0; i < b.N; i++ {
		points = experiments.TFBloomSweep(e, 0.3)
	}
	b.ReportMetric(points[0].AvgQR, "qr-exact-tf")
	b.ReportMetric(points[1].AvgQR, "qr-bloom-32KiB")
	b.ReportMetric(points[3].AvgQR, "qr-bloom-512B")
	b.ReportMetric(points[len(points)-1].AvgQR, "qr-random")
}

// --- ablations (DESIGN.md §5) -----------------------------------------------

// ablationEnv builds a small PIER cluster with a skewed posting-list
// workload for the join ablations.
func ablationEnv(b *testing.B, order bool) []*pier.Engine {
	b.Helper()
	cluster, err := dht.NewCluster(24, 3, dht.Config{})
	if err != nil {
		b.Fatal(err)
	}
	engines := make([]*pier.Engine, len(cluster.Nodes))
	for i, node := range cluster.Nodes {
		engines[i] = pier.NewEngine(node, pier.Config{OrderBySelectivity: order})
		piersearch.RegisterSchemas(engines[i])
	}
	pub := func(i int, name string) {
		f := piersearch.File{Name: name, Size: 1000, Host: "10.0.0.1", Port: 6346}
		if _, err := piersearch.NewPublisher(engines[i%24], piersearch.ModeBoth, piersearch.Tokenizer{}).PublishFile(f); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		pub(i, "common artist track"+itoa(i)+".mp3")
	}
	pub(0, "common artist rareterm.mp3")
	return engines
}

// BenchmarkAblationJoinOrder compares posting entries shipped with and
// without smallest-posting-list-first ordering.
func BenchmarkAblationJoinOrder(b *testing.B) {
	for _, mode := range []struct {
		name  string
		order bool
	}{{"naive", false}, {"smallest-first", true}} {
		b.Run(mode.name, func(b *testing.B) {
			engines := ablationEnv(b, mode.order)
			shipped := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := engines[i%24].ChainJoin(piersearch.TableInverted,
					[]pier.Value{pier.String("common"), pier.String("rareterm")}, "fileID", 0)
				if err != nil {
					b.Fatal(err)
				}
				shipped = stats.PostingShipped
			}
			b.ReportMetric(float64(shipped), "entries-shipped")
		})
	}
}

// BenchmarkAblationInvertedCache compares per-query bytes of the two §3.2
// plans on a popular two-term query.
func BenchmarkAblationInvertedCache(b *testing.B) {
	engines := ablationEnv(b, true)
	search := piersearch.NewSearch(engines[5], piersearch.Tokenizer{})
	for _, mode := range []struct {
		name  string
		strat piersearch.Strategy
	}{{"join", piersearch.StrategyJoin}, {"cache", piersearch.StrategyCache}} {
		b.Run(mode.name, func(b *testing.B) {
			match := 0
			for i := 0; i < b.N; i++ {
				_, stats, err := search.Query("common artist", mode.strat, 0)
				if err != nil {
					b.Fatal(err)
				}
				match = stats.MatchBytes
			}
			b.ReportMetric(float64(match), "match-bytes")
		})
	}
}

// BenchmarkAblationDynamicQuery compares flooding message counts with
// dynamic querying (iterative deepening) against a fixed full-TTL flood,
// for a popular query satisfied in round one.
func BenchmarkAblationDynamicQuery(b *testing.B) {
	topo, err := gnutella.NewTopology(gnutella.TopologyConfig{Ultrapeers: 400, Hosts: 2400, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	lib := gnutella.NewLibrary(topo, piersearch.Tokenizer{})
	for _, v := range topo.UPAdj[0] {
		lib.AddFile(v, gnutella.SharedFile{Name: "popular anthem.mp3", Size: 1})
	}
	for _, mode := range []struct {
		name    string
		dynamic bool
	}{{"fixed-ttl", false}, {"dynamic", true}} {
		b.Run(mode.name, func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				net := gnutella.NewNetwork(topo, lib, gnutella.NetworkConfig{
					DynamicQuery: mode.dynamic, MaxTTL: 4, DesiredResults: 5, Seed: int64(i),
				})
				q := net.Query(0, []string{"popular", "anthem"})
				net.Sim.Run()
				msgs = q.Messages
			}
			b.ReportMetric(float64(msgs), "messages/query")
		})
	}
}

// BenchmarkAblationDHTParams sweeps Kademlia bucket width K and lookup
// parallelism alpha, reporting lookup traffic.
func BenchmarkAblationDHTParams(b *testing.B) {
	for _, p := range []struct {
		name     string
		k, alpha int
	}{{"k8-a2", 8, 2}, {"k20-a3", 20, 3}, {"k20-a1", 20, 1}} {
		b.Run(p.name, func(b *testing.B) {
			cluster, err := dht.NewCluster(64, 5, dht.Config{K: p.k, Alpha: p.alpha})
			if err != nil {
				b.Fatal(err)
			}
			msgs, hops := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := cluster.Nodes[i%64].Lookup(dht.StringID(itoa(i)))
				if err != nil {
					b.Fatal(err)
				}
				msgs, hops = stats.Messages, stats.Hops
			}
			b.ReportMetric(float64(msgs), "messages/lookup")
			b.ReportMetric(float64(hops), "hops/lookup")
		})
	}
}

// BenchmarkAblationHybridTimeout sweeps the Gnutella timeout before PIER
// re-query, reporting the hybrid first-result latency for a rare item
// only the DHT holds (§7 discusses this trade-off as future work).
func BenchmarkAblationHybridTimeout(b *testing.B) {
	for _, timeout := range []time.Duration{10 * time.Second, 30 * time.Second, 60 * time.Second} {
		b.Run(timeout.String(), func(b *testing.B) {
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunDeployment(experiments.DeployConfig{
					Ultrapeers:     150,
					HybridCount:    15,
					WarmupQueries:  40,
					MeasureQueries: 30,
					Timeout:        timeout,
					Seed:           9,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.AvgHybridLatency
			}
			b.ReportMetric(lat.Seconds(), "hybrid-latency-s")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
