package pier

import (
	"math/rand"
	"testing"
)

func salesRows() []Tuple {
	return []Tuple{
		{String("east"), Int(10)},
		{String("west"), Int(5)},
		{String("east"), Int(30)},
		{String("west"), Int(7)},
		{String("east"), Int(2)},
	}
}

func TestGroupByCountSum(t *testing.T) {
	out := Collect(GroupBy(NewSliceIter(salesRows()), []int{0},
		[]AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}}))
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	// Deterministic order: sorted by group key ("east" < "west").
	east, west := out[0], out[1]
	if east[0].Text() != "east" || east[1].Num() != 3 || east[2].Num() != 42 {
		t.Errorf("east = %v", east)
	}
	if west[0].Text() != "west" || west[1].Num() != 2 || west[2].Num() != 12 {
		t.Errorf("west = %v", west)
	}
}

func TestGroupByMinMax(t *testing.T) {
	out := Collect(GroupBy(NewSliceIter(salesRows()), []int{0},
		[]AggSpec{{Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1}}))
	east := out[0]
	if east[1].Num() != 2 || east[2].Num() != 30 {
		t.Errorf("east min/max = %v", east)
	}
}

func TestGroupByNegativeValues(t *testing.T) {
	rows := []Tuple{{String("g"), Int(-5)}, {String("g"), Int(-1)}}
	out := Collect(GroupBy(NewSliceIter(rows), []int{0},
		[]AggSpec{{Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1}, {Kind: AggSum, Col: 1}}))
	if out[0][1].Num() != -5 || out[0][2].Num() != -1 || out[0][3].Num() != -6 {
		t.Errorf("negative aggregates = %v", out[0])
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	out := Collect(GroupBy(NewSliceIter(nil), []int{0}, []AggSpec{{Kind: AggCount}}))
	if len(out) != 0 {
		t.Errorf("empty input produced %d groups", len(out))
	}
}

func TestGroupByNoKeyGlobalAggregate(t *testing.T) {
	out := Collect(GroupBy(NewSliceIter(salesRows()), nil,
		[]AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}}))
	if len(out) != 1 || out[0][0].Num() != 5 || out[0][1].Num() != 54 {
		t.Errorf("global aggregate = %v", out)
	}
}

func TestGroupByCompositeKey(t *testing.T) {
	rows := []Tuple{
		{String("a"), Int(1), Int(10)},
		{String("a"), Int(2), Int(20)},
		{String("a"), Int(1), Int(30)},
	}
	out := Collect(GroupBy(NewSliceIter(rows), []int{0, 1}, []AggSpec{{Kind: AggSum, Col: 2}}))
	if len(out) != 2 {
		t.Fatalf("composite groups = %d", len(out))
	}
	if out[0][2].Num() != 40 || out[1][2].Num() != 20 {
		t.Errorf("composite sums = %v / %v", out[0], out[1])
	}
}

func TestCountAll(t *testing.T) {
	if n := CountAll(NewSliceIter(salesRows())); n != 5 {
		t.Errorf("CountAll = %d", n)
	}
	if n := CountAll(NewSliceIter(nil)); n != 0 {
		t.Errorf("CountAll(empty) = %d", n)
	}
}

func TestGroupByMatchesNaive(t *testing.T) {
	// Property: grouped SUM equals a naive map-based computation.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		var rows []Tuple
		naive := map[string]int64{}
		for i := 0; i < rng.Intn(200); i++ {
			g := string(rune('a' + rng.Intn(5)))
			v := int64(rng.Intn(100) - 50)
			rows = append(rows, Tuple{String(g), Int(v)})
			naive[g] += v
		}
		out := Collect(GroupBy(NewSliceIter(rows), []int{0}, []AggSpec{{Kind: AggSum, Col: 1}}))
		if len(out) != len(naive) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(out), len(naive))
		}
		for _, row := range out {
			if row[1].Num() != naive[row[0].Text()] {
				t.Fatalf("trial %d: group %q sum %d, want %d", trial, row[0].Text(), row[1].Num(), naive[row[0].Text()])
			}
		}
	}
}

func TestAggKindString(t *testing.T) {
	names := map[AggKind]string{AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggKind(99): "invalid"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %s", k, k.String())
		}
	}
}
