package pier

// This file implements the local (single-node) relational operators in the
// standard pull-based iterator style. The distributed engine composes these
// with DHT routing; they are also usable standalone.

// Iterator produces tuples one at a time. Next returns false when the
// stream is exhausted.
type Iterator interface {
	Next() (Tuple, bool)
}

// SliceIter iterates over an in-memory tuple slice.
type SliceIter struct {
	tuples []Tuple
	pos    int
}

// NewSliceIter returns an iterator over tuples.
func NewSliceIter(tuples []Tuple) *SliceIter { return &SliceIter{tuples: tuples} }

// Next implements Iterator.
func (s *SliceIter) Next() (Tuple, bool) {
	if s.pos >= len(s.tuples) {
		return nil, false
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true
}

// Collect drains an iterator into a slice.
func Collect(it Iterator) []Tuple {
	var out []Tuple
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// selectIter filters tuples by a predicate.
type selectIter struct {
	in   Iterator
	pred func(Tuple) bool
}

// Select returns an iterator yielding only tuples for which pred is true.
func Select(in Iterator, pred func(Tuple) bool) Iterator {
	return &selectIter{in: in, pred: pred}
}

func (s *selectIter) Next() (Tuple, bool) {
	for {
		t, ok := s.in.Next()
		if !ok {
			return nil, false
		}
		if s.pred(t) {
			return t, true
		}
	}
}

// projectIter keeps a subset of columns, by position.
type projectIter struct {
	in   Iterator
	cols []int
}

// Project returns an iterator yielding tuples restricted to the given
// column positions, in the given order.
func Project(in Iterator, cols ...int) Iterator {
	return &projectIter{in: in, cols: cols}
}

func (p *projectIter) Next() (Tuple, bool) {
	t, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(Tuple, len(p.cols))
	for i, c := range p.cols {
		out[i] = t[c]
	}
	return out, true
}

// limitIter stops after n tuples.
type limitIter struct {
	in   Iterator
	left int
}

// Limit returns an iterator yielding at most n tuples.
func Limit(in Iterator, n int) Iterator { return &limitIter{in: in, left: n} }

func (l *limitIter) Next() (Tuple, bool) {
	if l.left <= 0 {
		return nil, false
	}
	t, ok := l.in.Next()
	if !ok {
		return nil, false
	}
	l.left--
	return t, true
}

// distinctIter suppresses duplicate tuples (by full-tuple key).
type distinctIter struct {
	in   Iterator
	seen map[string]bool
}

// Distinct returns an iterator yielding each distinct tuple once.
func Distinct(in Iterator) Iterator {
	return &distinctIter{in: in, seen: make(map[string]bool)}
}

func (d *distinctIter) Next() (Tuple, bool) {
	for {
		t, ok := d.in.Next()
		if !ok {
			return nil, false
		}
		key := ""
		for _, v := range t {
			key += v.Key() + "\x00"
		}
		if !d.seen[key] {
			d.seen[key] = true
			return t, true
		}
	}
}

// HashJoin performs a classic build/probe equi-join: the build side is
// materialised into a hash table, then the probe side streams against it.
// Output tuples are the concatenation probe ++ build.
func HashJoin(build, probe Iterator, buildCol, probeCol int) Iterator {
	table := make(map[string][]Tuple)
	for {
		t, ok := build.Next()
		if !ok {
			break
		}
		k := t[buildCol].Key()
		table[k] = append(table[k], t)
	}
	return &hashJoinIter{table: table, probe: probe, probeCol: probeCol}
}

type hashJoinIter struct {
	table    map[string][]Tuple
	probe    Iterator
	probeCol int
	current  Tuple
	matches  []Tuple
	matchPos int
}

func (h *hashJoinIter) Next() (Tuple, bool) {
	for {
		if h.matchPos < len(h.matches) {
			b := h.matches[h.matchPos]
			h.matchPos++
			out := make(Tuple, 0, len(h.current)+len(b))
			out = append(out, h.current...)
			out = append(out, b...)
			return out, true
		}
		t, ok := h.probe.Next()
		if !ok {
			return nil, false
		}
		h.current = t
		h.matches = h.table[t[h.probeCol].Key()]
		h.matchPos = 0
	}
}

// SymmetricHashJoin is the streaming join PIER executes between an incoming
// rehashed tuple stream and the local posting list: both inputs build hash
// tables, and each arriving tuple probes the opposite side, so results
// stream out as soon as both matching tuples have arrived, regardless of
// input order.
type SymmetricHashJoin struct {
	leftCol, rightCol int
	left              map[string][]Tuple
	right             map[string][]Tuple
}

// NewSymmetricHashJoin creates a join on left[leftCol] == right[rightCol].
func NewSymmetricHashJoin(leftCol, rightCol int) *SymmetricHashJoin {
	return &SymmetricHashJoin{
		leftCol:  leftCol,
		rightCol: rightCol,
		left:     make(map[string][]Tuple),
		right:    make(map[string][]Tuple),
	}
}

// InsertLeft adds a tuple to the left input and returns the joined outputs
// (left ++ right) it completes.
func (j *SymmetricHashJoin) InsertLeft(t Tuple) []Tuple {
	k := t[j.leftCol].Key()
	j.left[k] = append(j.left[k], t)
	var out []Tuple
	for _, r := range j.right[k] {
		joined := make(Tuple, 0, len(t)+len(r))
		joined = append(joined, t...)
		joined = append(joined, r...)
		out = append(out, joined)
	}
	return out
}

// InsertRight adds a tuple to the right input and returns the joined
// outputs (left ++ right) it completes.
func (j *SymmetricHashJoin) InsertRight(t Tuple) []Tuple {
	k := t[j.rightCol].Key()
	j.right[k] = append(j.right[k], t)
	var out []Tuple
	for _, l := range j.left[k] {
		joined := make(Tuple, 0, len(l)+len(t))
		joined = append(joined, l...)
		joined = append(joined, t...)
		out = append(out, joined)
	}
	return out
}

// LeftSize and RightSize report the number of buffered tuples, the state a
// real system would bound or spill.
func (j *SymmetricHashJoin) LeftSize() int { return sizeOf(j.left) }

// RightSize reports the buffered right-input tuples.
func (j *SymmetricHashJoin) RightSize() int { return sizeOf(j.right) }

func sizeOf(m map[string][]Tuple) int {
	n := 0
	for _, ts := range m {
		n += len(ts)
	}
	return n
}
