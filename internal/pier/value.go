package pier

import (
	"encoding/binary"
	"fmt"
)

// Kind is the type tag of a Value.
type Kind uint8

// Supported value kinds.
const (
	KindString Kind = iota
	KindInt
	KindBytes
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindBytes:
		return "bytes"
	default:
		return "invalid"
	}
}

// Value is one typed field of a tuple. Fields are exported so values can
// cross process boundaries via encoding/gob, but use the constructors and
// accessors rather than touching fields directly.
type Value struct {
	K Kind
	S string
	I int64
	B []byte
}

// String constructs a string value.
func String(s string) Value { return Value{K: KindString, S: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Bytes constructs a byte-string value.
func Bytes(b []byte) Value { return Value{K: KindBytes, B: b} }

// Kind returns the value's type tag.
func (v Value) Kind() Kind { return v.K }

// Text returns the string payload (empty for non-string values).
func (v Value) Text() string { return v.S }

// Num returns the integer payload (zero for non-int values).
func (v Value) Num() int64 { return v.I }

// Raw returns the byte payload (nil for non-bytes values).
func (v Value) Raw() []byte { return v.B }

// Equal reports deep equality of kind and payload.
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KindString:
		return v.S == o.S
	case KindInt:
		return v.I == o.I
	case KindBytes:
		return string(v.B) == string(o.B)
	}
	return false
}

// Key returns a collision-free map key for hash-based operators: the kind
// byte followed by the payload.
func (v Value) Key() string {
	switch v.K {
	case KindString:
		return "s" + v.S
	case KindInt:
		var buf [9]byte
		buf[0] = 'i'
		binary.BigEndian.PutUint64(buf[1:], uint64(v.I))
		return string(buf[:])
	case KindBytes:
		return "b" + string(v.B)
	}
	return "?"
}

// GoString formats the value for debugging.
func (v Value) GoString() string {
	switch v.K {
	case KindString:
		return fmt.Sprintf("%q", v.S)
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindBytes:
		return fmt.Sprintf("0x%x", v.B)
	}
	return "invalid"
}

// Tuple is an ordered list of values; column names live in the Schema.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	for i, v := range t {
		if v.K == KindBytes {
			b := make([]byte, len(v.B))
			copy(b, v.B)
			out[i].B = b
		}
	}
	return out
}

// Equal reports field-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// appendUvarint and friends implement the compact tuple wire format:
//
//	uvarint(ncols) then per column: kind byte, then
//	  string/bytes: uvarint(len) payload
//	  int:          zigzag varint

// Encode appends the tuple's wire form to dst and returns it.
func (t Tuple) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.K))
		switch v.K {
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case KindInt:
			dst = binary.AppendVarint(dst, v.I)
		case KindBytes:
			dst = binary.AppendUvarint(dst, uint64(len(v.B)))
			dst = append(dst, v.B...)
		}
	}
	return dst
}

// EncodedSize returns the wire size of the tuple without encoding it.
func (t Tuple) EncodedSize() int {
	return len(t.Encode(make([]byte, 0, 64)))
}

// DecodeTuple parses one tuple from buf, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("pier: bad tuple header")
	}
	if n > 1<<20 {
		return nil, 0, fmt.Errorf("pier: unreasonable column count %d", n)
	}
	off := used
	t := make(Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("pier: truncated tuple")
		}
		kind := Kind(buf[off])
		off++
		switch kind {
		case KindString, KindBytes:
			l, used := binary.Uvarint(buf[off:])
			if used <= 0 || off+used+int(l) > len(buf) {
				return nil, 0, fmt.Errorf("pier: truncated %s column", kind)
			}
			off += used
			payload := buf[off : off+int(l)]
			off += int(l)
			if kind == KindString {
				t = append(t, String(string(payload)))
			} else {
				b := make([]byte, len(payload))
				copy(b, payload)
				t = append(t, Bytes(b))
			}
		case KindInt:
			v, used := binary.Varint(buf[off:])
			if used <= 0 {
				return nil, 0, fmt.Errorf("pier: truncated int column")
			}
			off += used
			t = append(t, Int(v))
		default:
			return nil, 0, fmt.Errorf("pier: unknown kind %d", kind)
		}
	}
	return t, off, nil
}
