package pier

import (
	"encoding/binary"
	"fmt"

	"piersearch/internal/codec"
)

// Kind is the type tag of a Value.
type Kind uint8

// Supported value kinds.
const (
	KindString Kind = iota
	KindInt
	KindBytes
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindBytes:
		return "bytes"
	default:
		return "invalid"
	}
}

// Value is one typed field of a tuple. Values cross process boundaries in
// the compact binary form of wirefmt.go (internal/codec primitives); the
// fields stay exported for constructors in other packages and test
// literals, but use the constructors and accessors rather than touching
// them directly.
type Value struct {
	K Kind
	S string
	I int64
	B []byte
}

// String constructs a string value.
func String(s string) Value { return Value{K: KindString, S: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Bytes constructs a byte-string value.
func Bytes(b []byte) Value { return Value{K: KindBytes, B: b} }

// Kind returns the value's type tag.
func (v Value) Kind() Kind { return v.K }

// Text returns the string payload (empty for non-string values).
func (v Value) Text() string { return v.S }

// Num returns the integer payload (zero for non-int values).
func (v Value) Num() int64 { return v.I }

// Raw returns the byte payload (nil for non-bytes values).
func (v Value) Raw() []byte { return v.B }

// Equal reports deep equality of kind and payload.
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KindString:
		return v.S == o.S
	case KindInt:
		return v.I == o.I
	case KindBytes:
		return string(v.B) == string(o.B)
	}
	return false
}

// Key returns a collision-free map key for hash-based operators: the kind
// byte followed by the payload.
func (v Value) Key() string {
	switch v.K {
	case KindString:
		return "s" + v.S
	case KindInt:
		var buf [9]byte
		buf[0] = 'i'
		binary.BigEndian.PutUint64(buf[1:], uint64(v.I))
		return string(buf[:])
	case KindBytes:
		return "b" + string(v.B)
	}
	return "?"
}

// GoString formats the value for debugging.
func (v Value) GoString() string {
	switch v.K {
	case KindString:
		return fmt.Sprintf("%q", v.S)
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindBytes:
		return fmt.Sprintf("0x%x", v.B)
	}
	return "invalid"
}

// Tuple is an ordered list of values; column names live in the Schema.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	for i, v := range t {
		if v.K == KindBytes {
			b := make([]byte, len(v.B))
			copy(b, v.B)
			out[i].B = b
		}
	}
	return out
}

// Equal reports field-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// The tuple wire format, shared with the engine's message codec
// (wirefmt.go) via the internal/codec primitives:
//
//	uvarint(ncols) then per column: kind byte, then
//	  string/bytes: uvarint(len) payload
//	  int:          zigzag varint

// Encode appends the tuple's wire form to dst and returns it.
func (t Tuple) Encode(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = appendValue(dst, v)
	}
	return dst
}

// EncodedSize returns the wire size of the tuple without encoding it.
func (t Tuple) EncodedSize() int {
	return len(t.Encode(make([]byte, 0, 64)))
}

// DecodeTuple parses one tuple from buf, returning the tuple and the number
// of bytes consumed. Trailing bytes after the tuple are not an error: the
// caller may be walking a concatenated stream.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	r := codec.NewReader(buf)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, 0, fmt.Errorf("pier: bad tuple header")
	}
	if n > 1<<20 || n > uint64(r.Len()) {
		return nil, 0, fmt.Errorf("pier: unreasonable column count %d", n)
	}
	t := make(Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		t = append(t, readValue(r))
		if err := r.Err(); err != nil {
			return nil, 0, fmt.Errorf("pier: truncated tuple: %w", err)
		}
	}
	return t, len(buf) - r.Len(), nil
}
