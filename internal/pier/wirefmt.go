package pier

// This file is the engine's wire format: hand-rolled binary codecs for
// every message the distributed query plans ship between nodes, built on
// the append-style primitives of internal/codec. It replaces encoding/gob,
// whose per-stream type preamble and reflective field encoding inflated
// the chain-message and posting bytes the paper's §5/§7 evaluation
// measures (a 32-candidate chain step gobbed to ~1.2 KB; it now encodes
// in ~750 B, and posting sets are front-coded on top of that).
//
// Every message starts with a version byte. Decoders are total: any
// truncated, oversized, or version-skewed frame yields an error, never a
// panic or an unbounded allocation.

import (
	"bytes"
	"math"
	"sort"

	"piersearch/internal/codec"
	"piersearch/internal/dht"
)

// msgVersion is the format version stamped on every engine message.
const msgVersion = 1

// checkVersion consumes and validates the leading version byte.
func checkVersion(r *codec.Reader) {
	if v := r.Byte(); r.Err() == nil && v != msgVersion {
		r.Fail("unsupported message version")
	}
}

// readInt decodes a non-negative counter, rejecting values that would
// wrap negative through int() — a remote peer controls these bytes, and a
// wrapped-negative index or counter must never leave the decoder.
func readInt(r *codec.Reader) int {
	v := r.Uvarint()
	if v > uint64(math.MaxInt) {
		r.Fail("counter overflows int")
		return 0
	}
	return int(v)
}

// --- single values ----------------------------------------------------------

// appendValue appends one Value: kind byte, then the kind's payload form
// (the same column format Tuple.Encode uses).
func appendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case KindString:
		dst = codec.AppendString(dst, v.S)
	case KindInt:
		dst = codec.AppendVarint(dst, v.I)
	case KindBytes:
		dst = codec.AppendBytes(dst, v.B)
	}
	return dst
}

func readValue(r *codec.Reader) Value {
	switch k := Kind(r.Byte()); k {
	case KindString:
		return String(r.String())
	case KindInt:
		return Int(r.Varint())
	case KindBytes:
		return Bytes(r.Bytes())
	default:
		r.Fail("unknown value kind")
		return Value{}
	}
}

// appendValueList appends an order-preserving value sequence (used for the
// chain's Keys, whose order is the execution order).
func appendValueList(dst []byte, vs []Value) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendValue(dst, v)
	}
	return dst
}

func readValueList(r *codec.Reader) []Value {
	n := r.Count()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, readValue(r))
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

// --- delta-compressed value sets --------------------------------------------

// Value sets (candidate fileIDs shipped along the join chain, final result
// sets) are unordered, so the codec sorts them and delta-compresses:
//
//	byte   set format (setUniformBytes | setUniformRaw | setGeneric)
//	setUniformBytes — every value is KindBytes of one width W (the fileID
//	case): uvarint n, uvarint W, then per entry uvarint(shared prefix with
//	predecessor) + the W-shared differing suffix bytes.
//	setUniformRaw — same shape, but the sorted values are concatenated
//	raw. Uniformly random hashes share almost no prefix, so front-coding's
//	per-entry length byte can cost more than it saves; the encoder
//	computes both sizes and ships the smaller.
//	setGeneric — mixed kinds or widths: uvarint n, then per entry a kind
//	byte and either a zigzag delta from the previous int, or front-coded
//	prefix/suffix against the previous payload of the same kind.
const (
	setGeneric      = 0
	setUniformBytes = 1
	setUniformRaw   = 2
)

// maxDecodedSetBytes caps the total payload bytes one decoded value set
// may expand to (matching wire.MaxFrame's 16 MiB message bound).
// Front-coding is an amplifier: an entry whose shared prefix equals its
// width consumes ~2 input bytes but allocates width output bytes, so
// without a cumulative cap a kilobyte-scale hostile frame could force
// gigabytes of allocation.
const maxDecodedSetBytes = 16 << 20

// sortValues orders vs canonically (kind, then payload) in place so delta
// encoding sees adjacent near-equal entries. Sets are order-free: callers
// of the set codec must not rely on slice order afterwards.
func sortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.K != b.K {
			return a.K < b.K
		}
		switch a.K {
		case KindInt:
			return a.I < b.I
		case KindString:
			return a.S < b.S
		default:
			return bytes.Compare(a.B, b.B) < 0
		}
	})
}

// EncodeValueSet appends the delta-compressed wire form of the value set
// vs to dst and returns it. The set is sorted in place (sets are
// unordered). This is the posting-list payload format the chain join and
// probe replies ship; it is exported so benchmarks and tools can measure
// it against other encodings.
func EncodeValueSet(dst []byte, vs []Value) []byte {
	uniform := len(vs) > 0
	for _, v := range vs {
		if v.K != KindBytes || len(v.B) != len(vs[0].B) {
			uniform = false
			break
		}
	}
	sortValues(vs)
	if uniform {
		width := len(vs[0].B)
		// Cost out front-coding against raw concatenation: random hashes
		// share almost no prefix, so the per-entry shared-length byte can
		// exceed what it elides.
		frontCoded := 0
		var prev []byte
		for _, v := range vs {
			shared := codec.SharedPrefix(prev, v.B)
			frontCoded += codec.UvarintLen(uint64(shared)) + width - shared
			prev = v.B
		}
		mode := byte(setUniformBytes)
		if len(vs)*width <= frontCoded {
			mode = setUniformRaw
		}
		dst = append(dst, mode)
		dst = codec.AppendUvarint(dst, uint64(len(vs)))
		dst = codec.AppendUvarint(dst, uint64(width))
		prev = nil
		for _, v := range vs {
			if mode == setUniformRaw {
				dst = append(dst, v.B...)
				continue
			}
			shared := codec.SharedPrefix(prev, v.B)
			dst = codec.AppendUvarint(dst, uint64(shared))
			dst = append(dst, v.B[shared:]...)
			prev = v.B
		}
		return dst
	}
	dst = append(dst, setGeneric)
	dst = codec.AppendUvarint(dst, uint64(len(vs)))
	var prevInt int64
	var prevStr string
	var prevBytes []byte
	for _, v := range vs {
		dst = append(dst, byte(v.K))
		switch v.K {
		case KindInt:
			dst = codec.AppendVarint(dst, v.I-prevInt)
			prevInt = v.I
		case KindString:
			shared := codec.SharedPrefixString(prevStr, v.S)
			dst = codec.AppendUvarint(dst, uint64(shared))
			dst = codec.AppendString(dst, v.S[shared:])
			prevStr = v.S
		case KindBytes:
			shared := codec.SharedPrefix(prevBytes, v.B)
			dst = codec.AppendUvarint(dst, uint64(shared))
			dst = codec.AppendBytes(dst, v.B[shared:])
			prevBytes = v.B
		}
	}
	return dst
}

// readValueSet decodes a value set in its sorted on-wire order.
func readValueSet(r *codec.Reader) []Value {
	format := r.Byte()
	n := r.Count()
	if r.Err() != nil {
		return nil
	}
	switch format {
	case setUniformBytes, setUniformRaw:
		width := r.Uvarint()
		if r.Err() != nil {
			return nil
		}
		if n > 0 && width > uint64(r.Len()) {
			r.Fail("value width exceeds buffer")
			return nil
		}
		if uint64(n)*width > maxDecodedSetBytes {
			r.Fail("decoded set exceeds size cap")
			return nil
		}
		out := make([]Value, 0, n)
		// One backing array for every value instead of a make per value:
		// the size is already capped by the maxDecodedSetBytes check above,
		// and a posting set of 10k fileIDs costs 1 allocation, not 10k.
		backing := make([]byte, uint64(n)*width)
		var prev []byte
		for i := 0; i < n; i++ {
			var shared uint64
			if format == setUniformBytes {
				shared = r.Uvarint()
				if r.Err() != nil {
					return nil
				}
				if shared > uint64(len(prev)) || shared > width {
					r.Fail("bad shared prefix")
					return nil
				}
			}
			b := backing[uint64(i)*width : uint64(i+1)*width : uint64(i+1)*width]
			copy(b, prev[:shared])
			suffix := r.Take(int(width - shared))
			if r.Err() != nil {
				return nil
			}
			copy(b[shared:], suffix)
			out = append(out, Bytes(b))
			prev = b
		}
		return out
	case setGeneric:
		out := make([]Value, 0, n)
		var prevInt int64
		var prevStr string
		var prevBytes []byte
		decoded := 0 // cumulative output bytes, front-coding amplification guard
		for i := 0; i < n; i++ {
			switch k := Kind(r.Byte()); k {
			case KindInt:
				prevInt += r.Varint()
				out = append(out, Int(prevInt))
			case KindString:
				shared := r.Uvarint()
				if shared > uint64(len(prevStr)) {
					r.Fail("bad shared prefix")
					return nil
				}
				s := prevStr[:shared] + r.String()
				out = append(out, String(s))
				prevStr = s
				decoded += len(s)
			case KindBytes:
				shared := r.Uvarint()
				if shared > uint64(len(prevBytes)) {
					r.Fail("bad shared prefix")
					return nil
				}
				suffix := r.View()
				if r.Err() != nil {
					return nil
				}
				b := make([]byte, int(shared)+len(suffix))
				copy(b, prevBytes[:shared])
				copy(b[shared:], suffix)
				out = append(out, Bytes(b))
				prevBytes = b
				decoded += len(b)
			default:
				r.Fail("unknown value kind in set")
				return nil
			}
			if r.Err() != nil {
				return nil
			}
			if decoded > maxDecodedSetBytes {
				r.Fail("decoded set exceeds size cap")
				return nil
			}
		}
		return out
	default:
		r.Fail("unknown set format")
		return nil
	}
}

// DecodeValueSet parses one EncodeValueSet payload (and nothing else).
func DecodeValueSet(data []byte) ([]Value, error) {
	r := codec.NewReader(data)
	vs := readValueSet(r)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return vs, nil
}

// --- message codecs ---------------------------------------------------------

func encodeChainMsg(dst []byte, m *chainMsg) []byte {
	dst = append(dst, msgVersion)
	dst = codec.AppendUvarint(dst, m.QID)
	dst = codec.AppendString(dst, m.Table)
	dst = codec.AppendString(dst, m.JoinCol)
	dst = appendValueList(dst, m.Keys)
	dst = codec.AppendUvarint(dst, uint64(m.Step))
	dst = EncodeValueSet(dst, m.Candidates)
	dst = m.Origin.AppendWire(dst)
	dst = codec.AppendUvarint(dst, uint64(m.Shipped))
	dst = codec.AppendUvarint(dst, uint64(m.Hops))
	dst = codec.AppendUvarint(dst, uint64(m.Bytes))
	return codec.AppendBytes(dst, m.Filter)
}

func decodeChainMsg(data []byte) (chainMsg, error) {
	r := codec.NewReader(data)
	checkVersion(r)
	m := chainMsg{
		QID:     r.Uvarint(),
		Table:   r.String(),
		JoinCol: r.String(),
	}
	m.Keys = readValueList(r)
	m.Step = readInt(r)
	// A remote peer fully controls these bytes: the plan must be
	// internally consistent or runChainStep would index Keys[Step] out of
	// range (readInt already rejects values that wrap negative).
	if r.Err() == nil && (len(m.Keys) == 0 || m.Step >= len(m.Keys)) {
		r.Fail("chain step out of range")
	}
	m.Candidates = readValueSet(r)
	m.Origin = dht.ReadNodeInfo(r)
	m.Shipped = readInt(r)
	m.Hops = readInt(r)
	m.Bytes = readInt(r)
	m.Filter = r.Bytes()
	if len(m.Filter) == 0 {
		m.Filter = nil
	}
	return m, r.Finish()
}

func encodeResultMsg(dst []byte, m *resultMsg) []byte {
	dst = append(dst, msgVersion)
	dst = codec.AppendUvarint(dst, m.QID)
	dst = EncodeValueSet(dst, m.Values)
	dst = codec.AppendUvarint(dst, uint64(m.Shipped))
	dst = codec.AppendUvarint(dst, uint64(m.Hops))
	dst = codec.AppendUvarint(dst, uint64(m.Bytes))
	return codec.AppendString(dst, m.Err)
}

func decodeResultMsg(data []byte) (resultMsg, error) {
	r := codec.NewReader(data)
	checkVersion(r)
	m := resultMsg{QID: r.Uvarint()}
	m.Values = readValueSet(r)
	m.Shipped = readInt(r)
	m.Hops = readInt(r)
	m.Bytes = readInt(r)
	m.Err = r.String()
	return m, r.Finish()
}

func encodeCountMsg(dst []byte, m *countMsg) []byte {
	dst = append(dst, msgVersion)
	dst = codec.AppendString(dst, m.Table)
	return appendValue(dst, m.Key)
}

func decodeCountMsg(data []byte) (countMsg, error) {
	r := codec.NewReader(data)
	checkVersion(r)
	m := countMsg{Table: r.String(), Key: readValue(r)}
	return m, r.Finish()
}

func encodeCountReply(dst []byte, n int) []byte {
	dst = append(dst, msgVersion)
	return codec.AppendUvarint(dst, uint64(n))
}

func decodeCountReply(data []byte) (int, error) {
	r := codec.NewReader(data)
	checkVersion(r)
	n := readInt(r)
	return n, r.Finish()
}

func encodeCacheMsg(dst []byte, m *cacheMsg) []byte {
	dst = append(dst, msgVersion)
	dst = codec.AppendString(dst, m.Table)
	dst = appendValue(dst, m.Key)
	dst = codec.AppendString(dst, m.TextCol)
	dst = codec.AppendUvarint(dst, uint64(len(m.Filters)))
	for _, f := range m.Filters {
		dst = codec.AppendString(dst, f)
	}
	return codec.AppendVarint(dst, int64(m.Limit))
}

func decodeCacheMsg(data []byte) (cacheMsg, error) {
	r := codec.NewReader(data)
	checkVersion(r)
	m := cacheMsg{Table: r.String(), Key: readValue(r), TextCol: r.String()}
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Filters = append(m.Filters, r.String())
	}
	m.Limit = int(r.Varint())
	return m, r.Finish()
}

func encodeCacheReply(dst []byte, m *cacheReply) []byte {
	dst = append(dst, msgVersion)
	dst = codec.AppendString(dst, m.Err)
	dst = codec.AppendUvarint(dst, uint64(len(m.Tuples)))
	for _, t := range m.Tuples {
		dst = codec.AppendBytes(dst, t)
	}
	return dst
}

func decodeCacheReply(data []byte) (cacheReply, error) {
	r := codec.NewReader(data)
	checkVersion(r)
	m := cacheReply{Err: r.String()}
	n := r.Count()
	if r.Err() == nil && n > 0 {
		// Tuples alias the input buffer (View, no copy): every consumer
		// immediately re-decodes them through DecodeTuple, which copies its
		// payloads, so the views never outlive data. Count has bounded n by
		// the remaining buffer, making the preallocation safe.
		m.Tuples = make([][]byte, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Tuples = append(m.Tuples, r.View())
		}
	}
	return m, r.Finish()
}

func encodeBloomMsg(dst []byte, m *bloomMsg) []byte {
	dst = append(dst, msgVersion)
	dst = codec.AppendString(dst, m.Table)
	dst = appendValue(dst, m.Key)
	dst = codec.AppendString(dst, m.JoinCol)
	dst = codec.AppendUvarint(dst, m.Bits)
	return codec.AppendUvarint(dst, uint64(m.Hashes))
}

func decodeBloomMsg(data []byte) (bloomMsg, error) {
	r := codec.NewReader(data)
	checkVersion(r)
	m := bloomMsg{Table: r.String(), Key: readValue(r), JoinCol: r.String()}
	m.Bits = r.Uvarint()
	m.Hashes = uint32(r.Uvarint())
	return m, r.Finish()
}

func encodeBloomReply(dst []byte, m *bloomReply) []byte {
	dst = append(dst, msgVersion)
	dst = codec.AppendString(dst, m.Err)
	dst = codec.AppendUvarint(dst, uint64(m.Count))
	return codec.AppendBytes(dst, m.Filter)
}

func decodeBloomReply(data []byte) (bloomReply, error) {
	r := codec.NewReader(data)
	checkVersion(r)
	m := bloomReply{Err: r.String()}
	m.Count = readInt(r)
	m.Filter = r.Bytes()
	if len(m.Filter) == 0 {
		m.Filter = nil
	}
	return m, r.Finish()
}

// ChainMessageSize returns the encoded size of a chain-plan message
// carrying the given keys and candidate set — the per-hop unit of the
// matching-phase traffic §5/§7 account. Exported so benchmarks can compare
// wire formats without driving a cluster; candidates is sorted in place.
func ChainMessageSize(table, joinCol string, keys, candidates []Value, origin dht.NodeInfo) int {
	m := chainMsg{
		QID:        1,
		Table:      table,
		JoinCol:    joinCol,
		Keys:       keys,
		Step:       1,
		Candidates: candidates,
		Origin:     origin,
		Shipped:    len(candidates),
		Hops:       1,
		Bytes:      1 << 12,
	}
	return len(encodeChainMsg(nil, &m))
}
