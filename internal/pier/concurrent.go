package pier

// This file implements the concurrent side of the engine: batched tuple
// publishing, parallel posting-list probes, and a chain join whose
// per-keyword probe phase overlaps network round-trips and prunes the
// shipped candidate stream with intersected Bloom filters. The sequential
// primitives in engine.go remain the reference semantics; everything here
// must return the same answers, only faster.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"piersearch/internal/bloom"
	"piersearch/internal/dht"
)

// gauge tracks the high-water mark of concurrently running workers.
type gauge struct {
	mu       sync.Mutex
	cur, max int
}

func (g *gauge) enter() {
	g.mu.Lock()
	g.cur++
	if g.cur > g.max {
		g.max = g.cur
	}
	g.mu.Unlock()
}

func (g *gauge) exit() {
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
}

func (g *gauge) high() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// ForEach runs fn(i) for every i in [0, n) with at most workers calls in
// flight and returns the observed concurrency high-water mark. workers <= 1
// degenerates to a plain sequential loop. It is the bounded pool every
// concurrent engine path (and piersearch's fetch fan-out) runs on.
func ForEach(n, workers int, fn func(i int)) int {
	var g gauge
	forEach(n, workers, &g, fn)
	return g.high()
}

// ForEachCtx is ForEach under a context: once ctx is done no further
// indexes are dispatched (calls already running finish — fn is expected to
// observe the same ctx and return promptly). It always waits for every
// dispatched call, so no worker goroutine outlives the return.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) int {
	var g gauge
	forEachCtx(ctx, n, workers, &g, fn)
	return g.high()
}

// forEach is ForEach with a caller-supplied gauge.
func forEach(n, workers int, g *gauge, fn func(i int)) {
	forEachCtx(context.Background(), n, workers, g, fn)
}

// forEachCtx is the shared bounded-pool core.
func forEachCtx(ctx context.Context, n, workers int, g *gauge, fn func(i int)) {
	if n <= 0 {
		return
	}
	done := ctx.Done()
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return
			default:
			}
			g.enter()
			fn(i)
			g.exit()
		}
		return
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				g.enter()
				fn(i)
				g.exit()
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-done:
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
}

// Workers returns the engine's configured fan-out bound.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Pub is one (table, tuple) pair for PublishBatch.
type Pub struct {
	Table string
	Tuple Tuple
}

// BatchResult reports the cost and outcome of one PublishBatch call.
type BatchResult struct {
	Stats       dht.LookupStats
	MaxInFlight int // concurrency high-water mark during the batch
	Published   int // entries stored successfully
}

// PublishBatch publishes every entry with up to workers DHT puts in flight
// (workers <= 0 means the engine's configured default) and returns the
// aggregate traffic cost. All entries are attempted even when some fail;
// the error for the earliest failing entry is returned. This is the hot
// path of file publishing: one file expands into an Item tuple plus a
// posting tuple per keyword, all independent, so fanning them out hides
// the per-put routing latency.
func (e *Engine) PublishBatch(pubs []Pub, workers int) (BatchResult, error) {
	return e.PublishBatchContext(context.Background(), pubs, workers)
}

// PublishBatchContext is PublishBatch under a context: once ctx is done no
// further puts are dispatched, in-flight puts abort, and the context's
// error is returned.
func (e *Engine) PublishBatchContext(ctx context.Context, pubs []Pub, workers int) (BatchResult, error) {
	if workers <= 0 {
		workers = e.cfg.Workers
	}
	var mu sync.Mutex
	var res BatchResult
	errs := make([]error, len(pubs))
	var g gauge
	forEachCtx(ctx, len(pubs), workers, &g, func(i int) {
		ls, err := e.PublishContext(ctx, pubs[i].Table, pubs[i].Tuple)
		errs[i] = err
		mu.Lock()
		res.Stats.Add(ls)
		if err == nil {
			res.Published++
		}
		mu.Unlock()
	})
	res.MaxInFlight = g.high()
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("pier: publish batch: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return res, fmt.Errorf("pier: publish batch entry %d: %w", i, err)
		}
	}
	return res, nil
}

// Bounds on peer-requested filter geometry: a remote node controls
// bloomMsg.Bits/Hashes, and bloom.New allocates Bits/8 bytes, so the
// handler must reject absurd requests rather than OOM (the wire layer
// caps frame sizes for the same reason).
const (
	maxBloomBits   = 1 << 20 // 128 KiB filter
	maxBloomHashes = 32
)

// bloomMsg asks a key owner for its posting-list size and a Bloom filter
// of the list's join-column values, in one round-trip.
type bloomMsg struct {
	Table   string
	Key     Value
	JoinCol string
	Bits    uint64
	Hashes  uint32
}

// bloomReply carries the probe result; Filter is a marshalled bloom.Filter.
type bloomReply struct {
	Count  int
	Filter []byte
	Err    string
}

func (e *Engine) handleBloom(_ dht.NodeInfo, data []byte) []byte {
	bloomErr := func(msg string) []byte {
		return encodeBloomReply(nil, &bloomReply{Err: msg})
	}
	msg, err := decodeBloomMsg(data)
	if err != nil {
		return bloomErr("bad bloom message")
	}
	sch, ok := e.Schema(msg.Table)
	if !ok {
		return bloomErr("unknown table " + msg.Table)
	}
	joinIdx := sch.ColIndex(msg.JoinCol)
	if joinIdx < 0 {
		return bloomErr("no column " + msg.JoinCol)
	}
	if msg.Bits == 0 || msg.Hashes == 0 || msg.Bits > maxBloomBits || msg.Hashes > maxBloomHashes {
		return bloomErr("bad filter geometry")
	}
	tuples, err := e.LocalScan(msg.Table, msg.Key)
	if err != nil {
		return bloomErr(err.Error())
	}
	f := bloom.New(msg.Bits, msg.Hashes)
	for _, t := range tuples {
		f.AddString(t[joinIdx].Key())
	}
	raw, err := f.MarshalBinary()
	if err != nil {
		return bloomErr(err.Error())
	}
	return encodeBloomReply(nil, &bloomReply{Count: len(tuples), Filter: raw})
}

// decodePreJoinFilter unmarshals a chainMsg pre-join filter, returning nil
// when absent or malformed (the chain then simply skips pruning).
func decodePreJoinFilter(raw []byte) *bloom.Filter {
	if len(raw) == 0 {
		return nil
	}
	f := new(bloom.Filter)
	if err := f.UnmarshalBinary(raw); err != nil {
		return nil
	}
	return f
}

// keyProbe is one key's probe result during ChainJoinConcurrent.
type keyProbe struct {
	key    Value
	count  int
	filter *bloom.Filter
}

// ChainJoinConcurrent executes the same distributed join as ChainJoin but
// overlaps the per-keyword posting probes: every key's owner is asked, in
// parallel, for its posting-list size and a Bloom filter of its fileIDs.
// The keys are then ordered smallest-first and the intersection of the
// later keys' filters rides along with the chain plan, so the first step
// ships only candidate fileIDs that can survive every later join — the
// pruning §5 needs to keep rare-item queries cheap at Internet scale.
func (e *Engine) ChainJoinConcurrent(table string, keys []Value, joinCol string, limit int) ([]Value, OpStats, error) {
	return e.ChainJoinConcurrentContext(context.Background(), table, keys, joinCol, limit)
}

// ChainJoinConcurrentContext is ChainJoinConcurrent under a context:
// cancellation aborts the parallel probe phase (no further probes are
// dispatched, in-flight probes abandon their round-trip), the dispatch,
// and the wait for the chain's result.
func (e *Engine) ChainJoinConcurrentContext(ctx context.Context, table string, keys []Value, joinCol string, limit int) ([]Value, OpStats, error) {
	if len(keys) == 0 {
		return nil, OpStats{}, fmt.Errorf("pier: chain join needs at least one key")
	}
	sch, ok := e.Schema(table)
	if !ok {
		return nil, OpStats{}, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	if sch.ColIndex(joinCol) < 0 {
		return nil, OpStats{}, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, joinCol)
	}
	return e.joinCached(ctx, table, keys, joinCol, limit, func(ctx context.Context) ([]Value, OpStats, error) {
		return e.chainJoinConcurrentRun(ctx, table, keys, joinCol, limit)
	})
}

// chainJoinConcurrentRun is the probe+dispatch body of
// ChainJoinConcurrentContext, split out so the tier's result cache and
// singleflight wrap it whole.
func (e *Engine) chainJoinConcurrentRun(ctx context.Context, table string, keys []Value, joinCol string, limit int) ([]Value, OpStats, error) {
	var stats OpStats
	msg := chainMsg{
		Table:   table,
		JoinCol: joinCol,
		Keys:    keys,
		Origin:  e.node.Info(),
	}
	if len(keys) > 1 {
		probes := e.probeKeys(ctx, table, keys, joinCol, &stats)
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("pier: chain join: %w", err)
		}
		sort.SliceStable(probes, func(i, j int) bool { return probes[i].count < probes[j].count })
		ordered := make([]Value, len(probes))
		for i, p := range probes {
			ordered[i] = p.key
		}
		msg.Keys = ordered
		// Intersect the later keys' filters (the first key scans locally;
		// a failed probe contributes nothing and cannot prune).
		var pre *bloom.Filter
		for _, p := range probes[1:] {
			if p.filter == nil {
				continue
			}
			if pre == nil {
				pre = p.filter.Clone()
				continue
			}
			if err := pre.Intersect(p.filter); err != nil {
				pre = nil // mismatched geometry: fall back to no pruning
				break
			}
		}
		// A partial intersection (some probes failed) still prunes against a
		// superset of the true candidate set, so it stays correct — Bloom
		// filters admit false positives but never false negatives.
		if pre != nil {
			if raw, err := pre.MarshalBinary(); err == nil {
				msg.Filter = raw
			}
		}
	}
	return e.dispatchChain(ctx, msg, &stats, limit)
}

// probeKeys issues the count+filter probe for every key with bounded
// parallelism, folding traffic into stats.
func (e *Engine) probeKeys(ctx context.Context, table string, keys []Value, joinCol string, stats *OpStats) []keyProbe {
	var mu sync.Mutex
	probes := make([]keyProbe, len(keys))
	for i, k := range keys {
		probes[i] = keyProbe{key: k, count: 1 << 30} // unknown: order last
	}
	var g gauge
	forEachCtx(ctx, len(keys), e.cfg.Workers, &g, func(i int) {
		br, st, err := e.bloomProbe(ctx, table, keys[i], joinCol)
		mu.Lock()
		stats.Add(st)
		mu.Unlock()
		if err != nil {
			return
		}
		probes[i].count = br.Count
		probes[i].filter = decodePreJoinFilter(br.Filter)
	})
	if g.high() > stats.MaxInFlight {
		stats.MaxInFlight = g.high()
	}
	return probes
}
