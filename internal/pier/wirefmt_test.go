package pier

import (
	"crypto/sha1"
	"encoding/binary"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"piersearch/internal/dht"
)

func benchFileID(i int) []byte {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(i))
	h := sha1.Sum(seed[:])
	return h[:]
}

func testOrigin() dht.NodeInfo {
	return dht.NodeInfo{ID: dht.StringID("origin"), Addr: "10.1.2.3:6346"}
}

// sortedClone returns vs sorted canonically, for set comparison.
func sortedClone(vs []Value) []Value {
	out := append([]Value(nil), vs...)
	sortValues(out)
	return out
}

func valueSetsEqual(a, b []Value) bool {
	a, b = sortedClone(a), sortedClone(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestValueSetRoundTripFileIDs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 513} {
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = Bytes(benchFileID(i))
		}
		orig := sortedClone(vs)
		enc := EncodeValueSet(nil, vs)
		got, err := DecodeValueSet(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !valueSetsEqual(orig, got) {
			t.Fatalf("n=%d: set mismatch", n)
		}
	}
}

func TestValueSetRoundTripMixedKinds(t *testing.T) {
	vs := []Value{
		Int(-5), Int(1000), Int(-5000000), Int(0),
		String(""), String("abba"), String("abbey road"), String("zz"),
		Bytes(nil), Bytes([]byte{0}), Bytes([]byte{0, 1, 2}), Bytes([]byte("same prefix a")), Bytes([]byte("same prefix b")),
	}
	orig := sortedClone(vs)
	enc := EncodeValueSet(nil, vs)
	got, err := DecodeValueSet(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !valueSetsEqual(orig, got) {
		t.Fatalf("mixed set mismatch:\n%#v\nvs\n%#v", orig, got)
	}
}

func TestValueSetDeltaCompresses(t *testing.T) {
	// 128 sorted fileIDs front-code below the plain length-prefixed form.
	vs := make([]Value, 128)
	plain := 0
	for i := range vs {
		vs[i] = Bytes(benchFileID(i))
		plain += 1 + len(vs[i].B) // uvarint len + payload
	}
	enc := EncodeValueSet(nil, vs)
	if len(enc) >= plain {
		t.Errorf("delta set %d bytes >= plain %d bytes", len(enc), plain)
	}
}

func TestChainMsgRoundTrip(t *testing.T) {
	cands := make([]Value, 32)
	for i := range cands {
		cands[i] = Bytes(benchFileID(i))
	}
	m := chainMsg{
		QID:        42,
		Table:      "Inverted",
		JoinCol:    "fileID",
		Keys:       []Value{String("alpha"), String("beta"), String("gamma")},
		Step:       1,
		Candidates: cands,
		Origin:     testOrigin(),
		Shipped:    32,
		Hops:       2,
		Bytes:      4096,
		Filter:     []byte{1, 2, 3, 4},
	}
	enc := encodeChainMsg(nil, &m)
	got, err := decodeChainMsg(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.QID != m.QID || got.Table != m.Table || got.JoinCol != m.JoinCol ||
		got.Step != m.Step || got.Shipped != m.Shipped || got.Hops != m.Hops ||
		got.Bytes != m.Bytes || got.Origin != m.Origin {
		t.Fatalf("fields mismatch: %+v vs %+v", got, m)
	}
	if !reflect.DeepEqual(got.Keys, m.Keys) {
		t.Fatal("keys order not preserved")
	}
	if !valueSetsEqual(got.Candidates, m.Candidates) {
		t.Fatal("candidate set mismatch")
	}
	if !reflect.DeepEqual(got.Filter, m.Filter) {
		t.Fatal("filter mismatch")
	}
}

func TestResultMsgRoundTrip(t *testing.T) {
	m := resultMsg{
		QID:     9,
		Values:  []Value{Bytes(benchFileID(1)), Bytes(benchFileID(2))},
		Shipped: 7,
		Hops:    3,
		Bytes:   850,
		Err:     "boom",
	}
	enc := encodeResultMsg(nil, &m)
	got, err := decodeResultMsg(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.QID != m.QID || got.Shipped != m.Shipped || got.Hops != m.Hops || got.Bytes != m.Bytes || got.Err != m.Err {
		t.Fatalf("fields mismatch: %+v", got)
	}
	if !valueSetsEqual(got.Values, m.Values) {
		t.Fatal("value set mismatch")
	}
}

func TestSmallMessagesRoundTrip(t *testing.T) {
	cm := countMsg{Table: "Inverted", Key: String("alpha")}
	gotCM, err := decodeCountMsg(encodeCountMsg(nil, &cm))
	if err != nil || !reflect.DeepEqual(gotCM, cm) {
		t.Fatalf("countMsg: %+v, %v", gotCM, err)
	}
	for _, n := range []int{0, 1, 1 << 20} {
		got, err := decodeCountReply(encodeCountReply(nil, n))
		if err != nil || got != n {
			t.Fatalf("countReply %d: %d, %v", n, got, err)
		}
	}
	qm := cacheMsg{Table: "InvertedCache", Key: String("alpha"), TextCol: "fulltext", Filters: []string{"beta", "gamma"}, Limit: -1}
	gotQM, err := decodeCacheMsg(encodeCacheMsg(nil, &qm))
	if err != nil || !reflect.DeepEqual(gotQM, qm) {
		t.Fatalf("cacheMsg: %+v, %v", gotQM, err)
	}
	cr := cacheReply{Tuples: [][]byte{Tuple{String("a")}.Encode(nil), Tuple{Int(4)}.Encode(nil)}}
	gotCR, err := decodeCacheReply(encodeCacheReply(nil, &cr))
	if err != nil || !reflect.DeepEqual(gotCR, cr) {
		t.Fatalf("cacheReply: %+v, %v", gotCR, err)
	}
	bm := bloomMsg{Table: "Inverted", Key: String("alpha"), JoinCol: "fileID", Bits: 8192, Hashes: 4}
	gotBM, err := decodeBloomMsg(encodeBloomMsg(nil, &bm))
	if err != nil || !reflect.DeepEqual(gotBM, bm) {
		t.Fatalf("bloomMsg: %+v, %v", gotBM, err)
	}
	br := bloomReply{Count: 12, Filter: []byte{9, 9, 9}}
	gotBR, err := decodeBloomReply(encodeBloomReply(nil, &br))
	if err != nil || !reflect.DeepEqual(gotBR, br) {
		t.Fatalf("bloomReply: %+v, %v", gotBR, err)
	}
}

// TestDecodeRejectsTruncation decodes every proper prefix of every message
// kind: all must error, none may panic.
func TestDecodeRejectsTruncation(t *testing.T) {
	m := chainMsg{
		QID: 1, Table: "Inverted", JoinCol: "fileID",
		Keys:       []Value{String("alpha"), String("beta")},
		Candidates: []Value{Bytes(benchFileID(0)), Bytes(benchFileID(1)), Int(4), String("x")},
		Origin:     testOrigin(),
		Filter:     []byte{1, 2},
	}
	frames := map[string][]byte{
		"chain":      encodeChainMsg(nil, &m),
		"result":     encodeResultMsg(nil, &resultMsg{QID: 1, Values: []Value{Bytes(benchFileID(0))}, Err: "e"}),
		"count":      encodeCountMsg(nil, &countMsg{Table: "t", Key: String("k")}),
		"countReply": encodeCountReply(nil, 77),
		"cache":      encodeCacheMsg(nil, &cacheMsg{Table: "t", Key: String("k"), TextCol: "c", Filters: []string{"f"}, Limit: 5}),
		"cacheReply": encodeCacheReply(nil, &cacheReply{Tuples: [][]byte{{1, 2, 3}}}),
		"bloom":      encodeBloomMsg(nil, &bloomMsg{Table: "t", Key: String("k"), JoinCol: "c", Bits: 64, Hashes: 2}),
		"bloomReply": encodeBloomReply(nil, &bloomReply{Count: 3, Filter: []byte{8}}),
	}
	decoders := map[string]func([]byte) error{
		"chain":      func(b []byte) error { _, err := decodeChainMsg(b); return err },
		"result":     func(b []byte) error { _, err := decodeResultMsg(b); return err },
		"count":      func(b []byte) error { _, err := decodeCountMsg(b); return err },
		"countReply": func(b []byte) error { _, err := decodeCountReply(b); return err },
		"cache":      func(b []byte) error { _, err := decodeCacheMsg(b); return err },
		"cacheReply": func(b []byte) error { _, err := decodeCacheReply(b); return err },
		"bloom":      func(b []byte) error { _, err := decodeBloomMsg(b); return err },
		"bloomReply": func(b []byte) error { _, err := decodeBloomReply(b); return err },
	}
	for kind, frame := range frames {
		dec := decoders[kind]
		if err := dec(frame); err != nil {
			t.Fatalf("%s: full frame rejected: %v", kind, err)
		}
		for i := 0; i < len(frame); i++ {
			if err := dec(frame[:i]); err == nil {
				t.Fatalf("%s: prefix %d/%d accepted", kind, i, len(frame))
			}
		}
		// Oversized: trailing garbage must be rejected too.
		if err := dec(append(append([]byte(nil), frame...), 0xFF)); err == nil {
			t.Fatalf("%s: trailing byte accepted", kind)
		}
		// Version skew.
		bad := append([]byte(nil), frame...)
		bad[0] = msgVersion + 1
		if err := dec(bad); err == nil {
			t.Fatalf("%s: wrong version accepted", kind)
		}
	}
}

// TestDecodeRejectsAmplification pins the front-coding amplification
// guard: a small frame whose entries all claim shared==width (so each
// costs ~2 input bytes but width output bytes) must be rejected instead
// of allocating n*width bytes.
func TestDecodeRejectsAmplification(t *testing.T) {
	const n, width = 4096, 64 << 10 // would decode to 256 MiB
	buf := []byte{msgVersion}
	buf = append(buf, setUniformBytes)
	buf = binary.AppendUvarint(buf, n)
	buf = binary.AppendUvarint(buf, width)
	// First entry: shared 0, full width of zeros.
	buf = binary.AppendUvarint(buf, 0)
	buf = append(buf, make([]byte, width)...)
	// Remaining entries: shared == width, empty suffix.
	for i := 1; i < n; i++ {
		buf = binary.AppendUvarint(buf, width)
	}
	if _, err := decodeResultMsg(buf); err == nil {
		t.Fatal("amplifying uniform set accepted")
	}
	// Generic-mode equivalent: byte entries repeating the full predecessor.
	buf = []byte{msgVersion}
	buf = append(buf, setGeneric)
	buf = binary.AppendUvarint(buf, n)
	buf = append(buf, byte(KindBytes))
	buf = binary.AppendUvarint(buf, 0)
	buf = binary.AppendUvarint(buf, width)
	buf = append(buf, make([]byte, width)...)
	for i := 1; i < n; i++ {
		buf = append(buf, byte(KindBytes))
		buf = binary.AppendUvarint(buf, width) // shared = all of prev
		buf = binary.AppendUvarint(buf, 0)     // empty suffix
	}
	if _, err := decodeResultMsg(buf); err == nil {
		t.Fatal("amplifying generic set accepted")
	}
}

// TestChainMsgRejectsBadStep pins that a hostile chain plan whose Step
// indexes outside Keys is rejected at decode, so handleChain cannot be
// panicked by a remote peer.
func TestChainMsgRejectsBadStep(t *testing.T) {
	m := chainMsg{
		QID: 1, Table: "Inverted", JoinCol: "fileID",
		Keys:   []Value{String("alpha")},
		Step:   7,
		Origin: testOrigin(),
	}
	enc := encodeChainMsg(nil, &m)
	if _, err := decodeChainMsg(enc); err == nil {
		t.Fatal("out-of-range Step accepted")
	}
	m.Step = 0
	m.Keys = nil
	if _, err := decodeChainMsg(encodeChainMsg(nil, &m)); err == nil {
		t.Fatal("empty Keys accepted")
	}
	// Step = 2^63 would wrap negative through int() and slip past a naive
	// >= len(Keys) guard; the decoder must reject it outright.
	wrap := []byte{msgVersion}
	wrap = binary.AppendUvarint(wrap, 1)             // QID
	wrap = append(wrap, 1, 't')                      // Table "t"
	wrap = append(wrap, 1, 'c')                      // JoinCol "c"
	wrap = binary.AppendUvarint(wrap, 1)             // one key
	wrap = append(wrap, byte(KindString), 1, 'k')    // String("k")
	wrap = binary.AppendUvarint(wrap, uint64(1)<<63) // hostile Step
	if _, err := decodeChainMsg(wrap); err == nil {
		t.Fatal("negative-wrapping Step accepted")
	}
	// The handler must survive such frames without panicking.
	env := newTestEnv(t, 4, Config{})
	bad := encodeChainMsg(nil, &chainMsg{QID: 1, Table: "Inverted", JoinCol: "fileID", Keys: []Value{String("a")}, Step: 3, Origin: testOrigin()})
	if reply := env.engines[0].handleChain(env.engines[1].node.Info(), bad); reply != nil {
		t.Fatalf("bad chain frame acked: %v", reply)
	}
}

// TestDecodeRejectsHostileCounts feeds length fields that claim far more
// elements or wider values than the frame holds.
func TestDecodeRejectsHostileCounts(t *testing.T) {
	// Uniform set claiming 2^40 entries.
	buf := []byte{msgVersion}
	buf = append(buf, 1)                   // setUniformBytes
	buf = binary.AppendUvarint(buf, 1<<40) // n
	buf = binary.AppendUvarint(buf, 20)    // width
	if _, err := decodeResultMsg(buf); err == nil {
		t.Fatal("huge set count accepted")
	}
	// Uniform set with width far beyond the buffer.
	buf = []byte{msgVersion}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendUvarint(buf, 1<<40)
	if _, err := decodeResultMsg(buf); err == nil {
		t.Fatal("huge width accepted")
	}
	// Generic set with a shared-prefix longer than the predecessor.
	buf = []byte{msgVersion}
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, 1)
	buf = append(buf, byte(KindBytes))
	buf = binary.AppendUvarint(buf, 99) // shared prefix with empty prev
	buf = binary.AppendUvarint(buf, 0)
	if _, err := decodeResultMsg(buf); err == nil {
		t.Fatal("bad shared prefix accepted")
	}
}

// FuzzDecodeChainMsg hammers the chain-message decoder (the most complex
// frame: nested value list, delta set, node info) with arbitrary bytes.
// Run with: go test -fuzz FuzzDecodeChainMsg ./internal/pier
func FuzzDecodeChainMsg(f *testing.F) {
	m := chainMsg{
		QID: 3, Table: "Inverted", JoinCol: "fileID",
		Keys:       []Value{String("alpha"), String("beta")},
		Step:       1,
		Candidates: []Value{Bytes(benchFileID(0)), Bytes(benchFileID(1))},
		Origin:     testOrigin(),
		Shipped:    2, Hops: 1, Bytes: 128,
	}
	full := encodeChainMsg(nil, &m)
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(encodeResultMsg(nil, &resultMsg{QID: 1, Values: []Value{Int(4), Int(9)}}))
	f.Add([]byte{msgVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := decodeChainMsg(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and re-decode to the same
		// message (candidate sets compare as sets).
		re := encodeChainMsg(nil, &msg)
		again, err := decodeChainMsg(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.QID != msg.QID || !valueSetsEqual(again.Candidates, msg.Candidates) {
			t.Fatal("re-decode mismatch")
		}
	})
}

// TestValueSetProperty round-trips random sets of random kinds.
func TestValueSetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(40)
		vs := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				vs = append(vs, Int(rng.Int63n(1<<40)-(1<<39)))
			case 1:
				b := make([]byte, rng.Intn(30))
				rng.Read(b)
				vs = append(vs, String(string(b)))
			default:
				b := make([]byte, rng.Intn(30))
				rng.Read(b)
				vs = append(vs, Bytes(b))
			}
		}
		orig := sortedClone(vs)
		got, err := DecodeValueSet(EncodeValueSet(nil, vs))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !valueSetsEqual(orig, got) {
			t.Fatalf("iter %d: set mismatch", iter)
		}
	}
}

// TestValueSetSortedOutput pins the wire contract that decoded sets arrive
// in canonical sorted order (dedup/merge downstream relies on it).
func TestValueSetSortedOutput(t *testing.T) {
	vs := []Value{Bytes([]byte("zz")), Bytes([]byte("aa")), Bytes([]byte("mm"))}
	got, err := DecodeValueSet(EncodeValueSet(nil, vs))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return string(got[i].B) < string(got[j].B) }) {
		t.Fatalf("decoded set not sorted: %#v", got)
	}
}
