package pier

import "errors"

// Sentinel errors, checkable with errors.Is. Engine methods wrap these
// with call-site detail (table names, column names, the codec error), so
// callers branch on the class without parsing messages.
var (
	// ErrNoSuchTable reports a table name absent from the engine's schema
	// catalog. Every node participating in a query must have registered
	// the same schemas; hitting this on a remote node usually means a
	// deployment whose catalogs diverged.
	ErrNoSuchTable = errors.New("pier: no such table")

	// ErrNoSuchColumn reports a column name absent from a table's schema.
	ErrNoSuchColumn = errors.New("pier: no such column")

	// ErrDecode reports malformed wire data: a tuple, stored value or
	// engine message that did not parse. It wraps the codec-level detail.
	ErrDecode = errors.New("pier: malformed wire data")
)
