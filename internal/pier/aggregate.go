package pier

// Aggregation operators. PIER is a general relational engine — the paper's
// companion work runs aggregates over DHT-scanned tables — so the local
// operator set includes grouped aggregation alongside selection,
// projection and joins.

import "sort"

// AggKind enumerates the supported aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "invalid"
	}
}

// AggSpec is one aggregate column: the function and the input column
// position (ignored for COUNT).
type AggSpec struct {
	Kind AggKind
	Col  int
}

type aggState struct {
	count int64
	sum   int64
	min   int64
	max   int64
	seen  bool
}

func (a *aggState) update(v Value) {
	a.count++
	n := v.Num()
	a.sum += n
	if !a.seen || n < a.min {
		a.min = n
	}
	if !a.seen || n > a.max {
		a.max = n
	}
	a.seen = true
}

func (a *aggState) result(kind AggKind) Value {
	switch kind {
	case AggCount:
		return Int(a.count)
	case AggSum:
		return Int(a.sum)
	case AggMin:
		return Int(a.min)
	case AggMax:
		return Int(a.max)
	}
	return Int(0)
}

// GroupBy materialises the input, groups by the given key columns and
// computes the aggregates per group. Output tuples are the group key
// columns followed by one column per AggSpec, in deterministic order
// (sorted by group key).
func GroupBy(in Iterator, keyCols []int, aggs []AggSpec) Iterator {
	type group struct {
		key    Tuple
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		keyStr := ""
		for _, c := range keyCols {
			keyStr += t[c].Key() + "\x00"
		}
		g, ok := groups[keyStr]
		if !ok {
			key := make(Tuple, len(keyCols))
			for i, c := range keyCols {
				key[i] = t[c]
			}
			g = &group{key: key, states: make([]aggState, len(aggs))}
			groups[keyStr] = g
			order = append(order, keyStr)
		}
		for i, spec := range aggs {
			if spec.Kind == AggCount {
				g.states[i].count++
				continue
			}
			g.states[i].update(t[spec.Col])
		}
	}
	sort.Strings(order)
	out := make([]Tuple, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := make(Tuple, 0, len(g.key)+len(aggs))
		row = append(row, g.key...)
		for i, spec := range aggs {
			row = append(row, g.states[i].result(spec.Kind))
		}
		out = append(out, row)
	}
	return NewSliceIter(out)
}

// CountAll drains the iterator and returns the tuple count.
func CountAll(in Iterator) int64 {
	n := int64(0)
	for {
		if _, ok := in.Next(); !ok {
			return n
		}
		n++
	}
}
