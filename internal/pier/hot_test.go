package pier

import (
	"context"
	"sync"
	"testing"
	"time"

	"piersearch/internal/hotcache"
)

// installTiers puts a fresh hot tier on every engine and returns them
// index-aligned with env.engines.
func installTiers(env *testEnv, opts hotcache.Options) []*hotcache.Tier {
	tiers := make([]*hotcache.Tier, len(env.engines))
	for i, e := range env.engines {
		tiers[i] = hotcache.NewTier(opts)
		e.SetHotTier(tiers[i])
	}
	return tiers
}

// nonHolderIndex finds an engine that does not hold (table, key) locally,
// so its reads must cross the network (probing the raw store directly to
// avoid warming any cache).
func nonHolderIndex(t *testing.T, env *testEnv, table string, key Value) int {
	t.Helper()
	id := keyID(table, key)
	for i, e := range env.engines {
		if len(e.node.LocalGet(id)) == 0 {
			return i
		}
	}
	t.Fatal("every node holds the key")
	return -1
}

// TestHotTierInvalidationOnPublish pins the staleness contract: once a
// publish for a key has acked, no cached result derived from that key is
// served again — at the publisher (purged on the ack) and at every
// replica (purged by the store observer when the STORE RPC lands).
func TestHotTierInvalidationOnPublish(t *testing.T) {
	env := newTestEnv(t, 24, Config{})
	installTiers(env, hotcache.Options{})
	env.publishFile(t, 0, "alpha one")
	key := String("alpha")

	req := env.engines[nonHolderIndex(t, env, "Inverted", key)]
	n, _, err := req.Count("Inverted", key)
	if err != nil || n != 1 {
		t.Fatalf("first count = %d, %v; want 1", n, err)
	}
	n, ls, err := req.Count("Inverted", key)
	if err != nil || n != 1 {
		t.Fatalf("second count = %d, %v; want 1", n, err)
	}
	if ls.Messages != 0 {
		t.Errorf("second count paid %d messages, want 0 (cached)", ls.Messages)
	}

	// Publisher side: the requester's own publish must purge its cache.
	if _, err := req.Publish("Inverted", Tuple{key, Bytes([]byte("alpha two"))}); err != nil {
		t.Fatal(err)
	}
	n, _, err = req.Count("Inverted", key)
	if err != nil || n != 2 {
		t.Fatalf("post-publish count = %d, %v; want 2 (stale cache served)", n, err)
	}

	// Replica side: a replica that cached a result for the key must purge
	// it when another node's publish stores through it.
	id := keyID("Inverted", key)
	replica := -1
	for i, e := range env.engines {
		if len(e.node.LocalGet(id)) > 0 {
			replica = i
			break
		}
	}
	if replica < 0 {
		t.Fatal("no replica holds the key")
	}
	rep := env.engines[replica]
	if n, _, err = rep.Count("Inverted", key); err != nil || n != 2 {
		t.Fatalf("replica count = %d, %v; want 2", n, err)
	}
	other := env.engines[(replica+1)%len(env.engines)]
	if _, err := other.Publish("Inverted", Tuple{key, Bytes([]byte("alpha three"))}); err != nil {
		t.Fatal(err)
	}
	if n, _, err = rep.Count("Inverted", key); err != nil || n != 3 {
		t.Fatalf("replica post-publish count = %d, %v; want 3 (observer purge missed)", n, err)
	}
}

// TestHotTierSingleflightCoalesces: N concurrent identical count probes
// produce exactly one upstream RPC — every other call either rides the
// in-flight leader or hits the cache the leader filled. Run with -race.
func TestHotTierSingleflightCoalesces(t *testing.T) {
	env := newTestEnv(t, 16, Config{})
	installTiers(env, hotcache.Options{})
	env.publishFile(t, 0, "beta song")
	key := String("beta")
	e := env.engines[nonHolderIndex(t, env, "Inverted", key)]

	const calls = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	payers, rode := 0, 0
	start := make(chan struct{})
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			n, st, err := e.countCached(context.Background(), "Inverted", key)
			if err != nil || n != 1 {
				t.Errorf("count = %d, %v; want 1", n, err)
				return
			}
			mu.Lock()
			if st.Messages > 0 {
				payers++
			}
			rode += st.CacheHits + st.Coalesced
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if payers != 1 {
		t.Errorf("%d of %d concurrent probes paid upstream traffic, want exactly 1", payers, calls)
	}
	if rode != calls-1 {
		t.Errorf("cacheHits+coalesced = %d, want %d", rode, calls-1)
	}
}

// TestHotTierTTLExpiry: a cached result is served only within its TTL;
// past it the next read pays the network again (and re-caches).
func TestHotTierTTLExpiry(t *testing.T) {
	env := newTestEnv(t, 16, Config{})
	var mu sync.Mutex
	now := time.Duration(0)
	clock := func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	installTiers(env, hotcache.Options{TTL: time.Second, Clock: clock})
	env.publishFile(t, 0, "gamma tune")
	key := String("gamma")
	e := env.engines[nonHolderIndex(t, env, "Inverted", key)]

	n, ls, err := e.Count("Inverted", key)
	if err != nil || n != 1 {
		t.Fatalf("warm count = %d, %v; want 1", n, err)
	}
	if ls.Messages == 0 {
		t.Fatal("warm count paid no messages: requester unexpectedly holds the key")
	}
	if n, ls, err = e.Count("Inverted", key); err != nil || n != 1 || ls.Messages != 0 {
		t.Fatalf("within-TTL count = %d msgs=%d, %v; want cached", n, ls.Messages, err)
	}
	mu.Lock()
	now += 2 * time.Second
	mu.Unlock()
	n, ls, err = e.Count("Inverted", key)
	if err != nil || n != 1 {
		t.Fatalf("post-TTL count = %d, %v; want 1", n, err)
	}
	if ls.Messages == 0 {
		t.Error("post-TTL count paid no messages: expired entry was served")
	}
}

// TestHotTierFanoutReadsStayCorrect: with the cache effectively disabled
// (1ns TTL) and a low hot threshold, repeated reads of one key rotate
// across its replicas and every answer stays correct.
func TestHotTierFanoutReadsStayCorrect(t *testing.T) {
	env := newTestEnv(t, 24, Config{})
	tiers := installTiers(env, hotcache.Options{TTL: time.Nanosecond, HotThreshold: 2})
	env.publishFile(t, 0, "delta mix")
	key := String("delta")
	idx := nonHolderIndex(t, env, "Inverted", key)
	e := env.engines[idx]

	for i := 0; i < 8; i++ {
		n, _, err := e.Count("Inverted", key)
		if err != nil || n != 1 {
			t.Fatalf("read %d: count = %d, %v; want 1", i, n, err)
		}
	}
	if tiers[idx].Stats().FanoutReads == 0 {
		t.Error("hot key never fanned out to a non-primary replica")
	}
}
