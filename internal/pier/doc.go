// Package pier implements a relational query processor over a DHT, after
// PIER (Huebsch et al., VLDB 2003) as used by the paper's PIERSearch. It
// provides typed tuples and schemas, local relational operators (selection,
// projection, hash joins, symmetric hash join), and a distributed execution
// engine: tuples are published into the DHT under an index key, and
// multi-way equi-joins execute as a chain of symmetric hash joins across the
// nodes that own each key, exactly the query plan of the paper's Figure 2.
// The InvertedCache single-site plan of Figure 3 is provided as well.
//
// # Concurrency
//
// The Engine is safe for concurrent use, and its hot paths come in
// sequential and concurrent flavours with identical semantics:
//
//   - Publish stores one tuple; PublishBatch fans a set of independent
//     tuples out through a bounded worker pool, hiding per-put routing
//     latency (the paper's publishing dominates its measured overhead).
//   - ChainJoin runs the Figure 2 plan with serial selectivity probes;
//     ChainJoinConcurrent probes every keyword owner in parallel for a
//     posting-list count plus a Bloom filter of its fileIDs, orders the
//     chain smallest-first, and ships the intersection of the later keys'
//     filters with the plan so step 0 forwards only candidates that can
//     survive every later join. Results are identical (Bloom filters have
//     no false negatives); only traffic and latency shrink.
//
// Knobs live on Config:
//
//   - Workers bounds in-flight DHT operations per engine call
//     (default 8; 1 reproduces the fully sequential engine).
//   - BloomBits, BloomHashes set the pre-join filter geometry
//     (default 8192 bits / 4 hashes, i.e. 1 KiB per filter).
//   - OrderBySelectivity enables smallest-list-first chain ordering for
//     the sequential ChainJoin (§5); ChainJoinConcurrent always orders,
//     since its probes are prepaid.
//
// OpStats reports per-operation traffic (messages, bytes, hops, posting
// entries shipped) plus MaxInFlight, the concurrency high-water mark
// actually reached.
package pier
