package pier

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"piersearch/internal/codec"
	"piersearch/internal/dht"
	"piersearch/internal/hotcache"
)

// App-handler dispatch keys on the DHT's application channel.
const (
	appChain  = "pier.chain"  // distributed SHJ chain step
	appCount  = "pier.count"  // posting-list cardinality probe
	appBloom  = "pier.bloom"  // posting-list cardinality + Bloom filter probe
	appCache  = "pier.cache"  // InvertedCache single-site plan
	appResult = "pier.result" // final results streamed back to the origin
)

// OpStats describes the cost of one distributed operation as observed at
// the origin, plus chain-internal counters carried back in the result
// message. PostingShipped counts posting-list entries rehashed between
// nodes — the quantity §5 of the paper compares across query classes.
type OpStats struct {
	Messages       int
	Bytes          int
	Hops           int
	PostingShipped int
	// MaxInFlight is the high-water mark of concurrent DHT operations the
	// engine had outstanding for this call (1 for fully sequential plans).
	MaxInFlight int
	// CacheHits counts sub-operations answered from the hot-key tier
	// without any network traffic; Coalesced counts sub-operations that
	// shared another caller's in-flight result; FanoutReads counts hot-key
	// reads diverted from the XOR-closest owner to another replica. All
	// zero when no tier is installed.
	CacheHits   int
	Coalesced   int
	FanoutReads int
}

func (s *OpStats) addLookup(l dht.LookupStats) {
	s.Messages += l.Messages
	s.Bytes += l.Bytes
	s.Hops += l.Hops
}

// Add folds o into s; MaxInFlight merges as a high-water mark.
func (s *OpStats) Add(o OpStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Hops += o.Hops
	s.PostingShipped += o.PostingShipped
	s.CacheHits += o.CacheHits
	s.Coalesced += o.Coalesced
	s.FanoutReads += o.FanoutReads
	if o.MaxInFlight > s.MaxInFlight {
		s.MaxInFlight = o.MaxInFlight
	}
}

// chainMsg is the plan+stream message forwarded along the keyword chain.
// The first recipient scans its posting list; each subsequent recipient
// symmetric-hash-joins the incoming candidate stream with its local list.
type chainMsg struct {
	QID        uint64
	Table      string
	JoinCol    string
	Keys       []Value // index-key value per step, in execution order
	Step       int
	Candidates []Value // join-column values surviving so far
	Origin     dht.NodeInfo
	Shipped    int // posting entries shipped so far
	Hops       int
	// Bytes accumulates the payload bytes shipped along the chain so the
	// origin can account the matching phase's real traffic (§7 compares
	// exactly this between the join and InvertedCache plans).
	Bytes int
	// Filter, when non-empty, is a marshalled bloom.Filter holding the
	// intersection of the later keys' posting filters. Step 0 seeds the
	// candidate stream only with values that pass it, so the chain ships
	// candidate fileIDs instead of the first full posting list.
	Filter []byte
}

// resultMsg carries final join results directly back to the origin node.
type resultMsg struct {
	QID     uint64
	Values  []Value
	Shipped int
	Hops    int
	Bytes   int // chain-internal payload bytes shipped between owners
	Err     string
}

// countMsg asks a key owner for its local posting-list size.
type countMsg struct {
	Table string
	Key   Value
}

// cacheMsg executes the InvertedCache plan at the owner of Key: scan the
// local list, keep tuples whose TextCol contains every Filter substring.
type cacheMsg struct {
	Table   string
	Key     Value
	TextCol string
	Filters []string
	Limit   int
}

// cacheReply returns the matching tuples in wire form.
type cacheReply struct {
	Tuples [][]byte
	Err    string
}

// All engine messages travel in the hand-rolled binary format of
// wirefmt.go (shared primitives in internal/codec). The paper's PIER used
// self-describing Java serialization and paid for it in every measured
// byte count; the explicit codec drops that overhead from the exact
// quantities §5/§7 compare. Outbound sends encode into pooled scratch
// buffers: every transport is synchronous, so the buffer is dead the
// moment the call returns and goes back to the pool.

// Config holds engine parameters.
type Config struct {
	// ChainTimeout bounds how long a distributed join waits for its result
	// message. Zero means 30 seconds.
	ChainTimeout time.Duration
	// OrderBySelectivity makes multi-key joins probe posting-list sizes
	// first and execute smallest-first (§5's "optimized to compute smaller
	// posting lists first"). Disable for the ablation benchmark.
	OrderBySelectivity bool
	// Workers bounds how many DHT operations one engine call keeps in
	// flight at once (PublishBatch fan-out, selectivity probes, the
	// ChainJoinConcurrent probe phase). 1 means fully sequential; zero
	// means the default of 8.
	Workers int
	// BloomBits and BloomHashes fix the geometry of the posting-list
	// filters ChainJoinConcurrent intersects for its pre-join. All probes
	// of one query must agree on geometry, so these are engine-level.
	// Zero means 8192 bits / 4 hashes (1 KiB per filter).
	BloomBits   uint64
	BloomHashes uint32
}

func (c Config) normalize() Config {
	if c.ChainTimeout <= 0 {
		c.ChainTimeout = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.BloomBits == 0 {
		c.BloomBits = 8192
	}
	if c.BloomBits > maxBloomBits {
		c.BloomBits = maxBloomBits // owners reject larger probe requests
	}
	if c.BloomHashes == 0 {
		c.BloomHashes = 4
	}
	if c.BloomHashes > maxBloomHashes {
		c.BloomHashes = maxBloomHashes
	}
	return c
}

// Engine is PIER on one node: schema registry, tuple publishing, local
// scans, and distributed join execution. All methods are safe for
// concurrent use.
type Engine struct {
	node *dht.Node
	cfg  Config

	mu      sync.Mutex
	schemas map[string]*Schema
	waiters map[uint64]chan resultMsg
	nextQID atomic.Uint64

	// hot is the optional hot-key survival tier (see hot.go); nil means
	// every path runs exactly as without one.
	hot atomic.Pointer[hotcache.Tier]
}

// NewEngine creates an engine bound to node and installs its app handlers.
func NewEngine(node *dht.Node, cfg Config) *Engine {
	e := &Engine{
		node:    node,
		cfg:     cfg.normalize(),
		schemas: make(map[string]*Schema),
		waiters: make(map[uint64]chan resultMsg),
	}
	node.RegisterApp(appChain, e.handleChain)
	node.RegisterApp(appCount, e.handleCount)
	node.RegisterApp(appBloom, e.handleBloom)
	node.RegisterApp(appCache, e.handleCache)
	node.RegisterApp(appResult, e.handleResult)
	return e
}

// Node returns the underlying DHT node.
func (e *Engine) Node() *dht.Node { return e.node }

// Register adds a schema to the engine's catalog. Every node that stores
// or queries a table must register the same schema.
func (e *Engine) Register(s *Schema) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.schemas[s.Name] = s
}

// Schema returns the registered schema for table, if any.
func (e *Engine) Schema(table string) (*Schema, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.schemas[table]
	return s, ok
}

// Publish validates t against the table's schema and stores its wire form
// in the DHT under the tuple's index key. It returns the traffic cost.
func (e *Engine) Publish(table string, t Tuple) (dht.LookupStats, error) {
	return e.PublishContext(context.Background(), table, t)
}

// PublishContext is Publish under a context.
func (e *Engine) PublishContext(ctx context.Context, table string, t Tuple) (dht.LookupStats, error) {
	sch, ok := e.Schema(table)
	if !ok {
		return dht.LookupStats{}, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	if err := sch.Validate(t); err != nil {
		return dht.LookupStats{}, err
	}
	key, err := sch.IndexKey(t)
	if err != nil {
		return dht.LookupStats{}, err
	}
	ls, err := e.node.PutContext(ctx, table, key, t.Encode(nil))
	if err == nil {
		if ht := e.hot.Load(); ht != nil {
			// Invalidation-on-publish, requester side: any cached result
			// derived from this key is stale the moment the put acks. The
			// replicas purge through the dht store observer.
			id := dht.NamespacedID(table, key)
			ht.InvalidateID(id[:])
		}
	}
	return ls, err
}

// decodeValues parses a list of stored values into tuples.
func decodeValues(values []dht.StoredValue) ([]Tuple, error) {
	out := make([]Tuple, 0, len(values))
	for _, v := range values {
		t, _, err := DecodeTuple(v.Data)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// LocalScan returns the tuples of table stored on this node under key,
// without any network traffic. With a hot tier installed the decoded
// posting set is cached (and invalidated when a new replica store for
// the key arrives), so repeated scans of a hot key skip the per-request
// decode; callers must treat the returned tuples as immutable.
func (e *Engine) LocalScan(table string, key Value) ([]Tuple, error) {
	id := keyID(table, key)
	t := e.hot.Load()
	if t == nil {
		return decodeValues(e.node.LocalGet(id))
	}
	tag := string(id[:])
	ck := "p|" + tag
	if v, ok := t.Data.Get(ck); ok {
		return v.([]Tuple), nil
	}
	tuples, err := decodeValues(e.node.LocalGet(id))
	if err != nil {
		return nil, err
	}
	t.Data.Put(ck, tuples, tuplesSize(tuples), tag)
	return tuples, nil
}

// Fetch retrieves the tuples of table stored in the DHT under key.
func (e *Engine) Fetch(table string, key Value) ([]Tuple, dht.LookupStats, error) {
	return e.FetchContext(context.Background(), table, key)
}

// FetchContext is Fetch under a context: the value lookup aborts once ctx
// is done.
func (e *Engine) FetchContext(ctx context.Context, table string, key Value) ([]Tuple, dht.LookupStats, error) {
	values, stats, err := e.node.GetIDContext(ctx, keyID(table, key))
	if err != nil {
		return nil, stats, err
	}
	tuples, err := decodeValues(values)
	return tuples, stats, err
}

// Count asks the owner of (table, key) for its local posting-list size.
func (e *Engine) Count(table string, key Value) (int, dht.LookupStats, error) {
	return e.CountContext(context.Background(), table, key)
}

// CountContext is Count under a context. With a hot tier installed the
// probe is cached, coalesced with identical in-flight probes, and
// fanned out across replicas for hot keys.
func (e *Engine) CountContext(ctx context.Context, table string, key Value) (int, dht.LookupStats, error) {
	n, st, err := e.countCached(ctx, table, key)
	return n, dht.LookupStats{Messages: st.Messages, Bytes: st.Bytes, Hops: st.Hops}, err
}

func (e *Engine) handleCount(_ dht.NodeInfo, data []byte) []byte {
	msg, err := decodeCountMsg(data)
	if err != nil {
		return encodeCountReply(nil, 0)
	}
	tuples, err := e.LocalScan(msg.Table, msg.Key)
	if err != nil {
		return encodeCountReply(nil, 0)
	}
	return encodeCountReply(nil, len(tuples))
}

// ChainJoin executes the paper's Figure 2 plan: an equality lookup of each
// key in order, joined on joinCol by a chain of symmetric hash joins across
// the owning nodes, with the surviving joinCol values streamed back to this
// node. keys are index-key values for table (e.g. keywords for Inverted).
func (e *Engine) ChainJoin(table string, keys []Value, joinCol string, limit int) ([]Value, OpStats, error) {
	return e.ChainJoinContext(context.Background(), table, keys, joinCol, limit)
}

// ChainJoinContext is ChainJoin under a context: cancellation or deadline
// aborts the selectivity probes, the dispatch RPC and the wait for the
// chain's result, returning an error wrapping ctx.Err(). Work already
// forwarded to remote owners runs to completion there — its result message
// is simply dropped at the origin.
func (e *Engine) ChainJoinContext(ctx context.Context, table string, keys []Value, joinCol string, limit int) ([]Value, OpStats, error) {
	var stats OpStats
	if len(keys) == 0 {
		return nil, stats, fmt.Errorf("pier: chain join needs at least one key")
	}
	sch, ok := e.Schema(table)
	if !ok {
		return nil, stats, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	if sch.ColIndex(joinCol) < 0 {
		return nil, stats, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, joinCol)
	}

	return e.joinCached(ctx, table, keys, joinCol, limit, func(ctx context.Context) ([]Value, OpStats, error) {
		var stats OpStats
		ordered := keys
		if e.cfg.OrderBySelectivity && len(ordered) > 1 {
			ordered = e.orderBySelectivity(ctx, table, ordered, &stats)
			if err := ctx.Err(); err != nil {
				return nil, stats, fmt.Errorf("pier: chain join: %w", err)
			}
		}
		msg := chainMsg{
			Table:   table,
			JoinCol: joinCol,
			Keys:    ordered,
			Origin:  e.node.Info(),
		}
		return e.dispatchChain(ctx, msg, &stats, limit)
	})
}

// dispatchChain registers a result waiter, ships msg to the owner of the
// first key, and blocks until the chain's result message, the context's
// cancellation, or the configured timeout.
func (e *Engine) dispatchChain(ctx context.Context, msg chainMsg, stats *OpStats, limit int) ([]Value, OpStats, error) {
	qid := e.nextQID.Add(1)
	msg.QID = qid
	ch := make(chan resultMsg, 1)
	e.mu.Lock()
	e.waiters[qid] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.waiters, qid)
		e.mu.Unlock()
	}()

	buf := encodeChainMsg(codec.GetBuf(), &msg)
	_, err := e.sendRead(ctx, keyID(msg.Table, msg.Keys[0]), appChain, buf, stats)
	codec.PutBuf(buf)
	if err != nil {
		return nil, *stats, fmt.Errorf("pier: chain dispatch: %w", err)
	}

	select {
	case res := <-ch:
		stats.PostingShipped = res.Shipped
		stats.Hops += res.Hops
		stats.Bytes += res.Bytes
		if res.Err != "" {
			return nil, *stats, fmt.Errorf("pier: chain join: %s", res.Err)
		}
		values := res.Values
		if limit > 0 && len(values) > limit {
			values = values[:limit]
		}
		return values, *stats, nil
	case <-ctx.Done():
		return nil, *stats, fmt.Errorf("pier: chain join %d: %w", qid, ctx.Err())
	case <-time.After(e.cfg.ChainTimeout):
		return nil, *stats, fmt.Errorf("pier: chain join %d timed out after %v", qid, e.cfg.ChainTimeout)
	}
}

// orderBySelectivity probes each key's posting-list size and returns keys
// sorted ascending, so the chain starts with the smallest list. Probes are
// issued with up to cfg.Workers in flight.
func (e *Engine) orderBySelectivity(ctx context.Context, table string, keys []Value, stats *OpStats) []Value {
	type sized struct {
		key Value
		n   int
	}
	var mu sync.Mutex
	sizedKeys := make([]sized, len(keys))
	for i, k := range keys {
		sizedKeys[i] = sized{k, 1 << 30} // unknown (unprobed or failed): order last
	}
	var g gauge
	forEachCtx(ctx, len(keys), e.cfg.Workers, &g, func(i int) {
		n, st, err := e.countCached(ctx, table, keys[i])
		if err != nil {
			n = 1 << 30
		}
		mu.Lock()
		stats.Add(st)
		mu.Unlock()
		sizedKeys[i] = sized{keys[i], n}
	})
	if g.high() > stats.MaxInFlight {
		stats.MaxInFlight = g.high()
	}
	sort.SliceStable(sizedKeys, func(i, j int) bool { return sizedKeys[i].n < sizedKeys[j].n })
	out := make([]Value, len(keys))
	for i, s := range sizedKeys {
		out[i] = s.key
	}
	return out
}

func keyID(table string, key Value) dht.ID { return dht.NamespacedID(table, key.Key()) }

// handleChain runs one step of the distributed join at a keyword owner.
// The reply payload is empty: the dispatcher and forwarding owners ignore
// it, so acking with bytes would only inflate the matching-phase traffic.
func (e *Engine) handleChain(_ dht.NodeInfo, data []byte) []byte {
	msg, err := decodeChainMsg(data)
	if err != nil {
		return nil
	}
	if msg.Step > 0 {
		// Charge this forwarded payload to the chain's byte account. The
		// origin's dispatch (step 0) is already counted by its own Send.
		msg.Bytes += len(data)
	}
	e.runChainStep(msg)
	return nil
}

func (e *Engine) runChainStep(msg chainMsg) {
	fail := func(err error) {
		e.sendResult(msg.Origin, resultMsg{QID: msg.QID, Err: err.Error(), Shipped: msg.Shipped, Hops: msg.Hops, Bytes: msg.Bytes})
	}
	sch, ok := e.Schema(msg.Table)
	if !ok {
		fail(fmt.Errorf("node %s does not know table %s", e.node.Info().ID.Short(), msg.Table))
		return
	}
	joinIdx := sch.ColIndex(msg.JoinCol)
	local, err := e.LocalScan(msg.Table, msg.Keys[msg.Step])
	if err != nil {
		fail(err)
		return
	}

	// Symmetric hash join between the incoming candidate stream and the
	// local posting list. On step 0 there is no incoming stream: the local
	// list itself seeds the candidates.
	var survivors []Value
	if msg.Step == 0 {
		pre := decodePreJoinFilter(msg.Filter)
		seen := map[string]bool{}
		for _, t := range local {
			v := t[joinIdx]
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if pre != nil && !pre.TestString(k) {
				continue // cannot be present under every later key
			}
			survivors = append(survivors, v)
		}
	} else {
		join := NewSymmetricHashJoin(0, joinIdx)
		for _, t := range local {
			join.InsertRight(t)
		}
		seen := map[string]bool{}
		for _, v := range msg.Candidates {
			for range join.InsertLeft(Tuple{v}) {
				if k := v.Key(); !seen[k] {
					seen[k] = true
					survivors = append(survivors, v)
				}
			}
		}
	}

	last := msg.Step == len(msg.Keys)-1
	if last || len(survivors) == 0 {
		e.sendResult(msg.Origin, resultMsg{
			QID:     msg.QID,
			Values:  survivors,
			Shipped: msg.Shipped,
			Hops:    msg.Hops + 1,
			Bytes:   msg.Bytes,
		})
		return
	}

	next := msg
	next.Step++
	next.Candidates = survivors
	next.Filter = nil // only step 0 consults the pre-join filter
	next.Shipped += len(survivors)
	next.Hops++
	buf := encodeChainMsg(codec.GetBuf(), &next)
	// A chain step runs on the serving node, forwarding a message that
	// arrived off the wire: there is no originating context here, and
	// origin death ends the query through its own timeout.
	_, err = e.sendRead(context.Background(), keyID(msg.Table, msg.Keys[next.Step]), appChain, buf, nil) //lint:allow ctxflow remote chain step has no originating ctx; origin timeout bounds the query
	codec.PutBuf(buf)
	if err != nil {
		fail(fmt.Errorf("forward to step %d: %w", next.Step, err))
	}
}

// sendResult delivers a resultMsg to the origin node (possibly ourselves).
func (e *Engine) sendResult(origin dht.NodeInfo, res resultMsg) {
	buf := encodeResultMsg(codec.GetBuf(), &res)
	if origin.ID == e.node.Info().ID {
		e.handleResult(origin, buf)
	} else {
		e.node.SendTo(origin, appResult, buf) //nolint:errcheck // origin death ends the query via timeout
	}
	codec.PutBuf(buf)
}

func (e *Engine) handleResult(_ dht.NodeInfo, data []byte) []byte {
	res, err := decodeResultMsg(data)
	if err != nil {
		return nil
	}
	e.mu.Lock()
	ch := e.waiters[res.QID]
	e.mu.Unlock()
	if ch != nil {
		select {
		case ch <- res:
		default: // duplicate result; first one wins
		}
	}
	return nil
}

// CacheSelect executes the paper's Figure 3 plan: the whole query is sent
// to the single owner of key, which scans its local list and filters by
// substring containment of every filter in textCol. No posting lists are
// shipped; the reply carries only matching tuples.
func (e *Engine) CacheSelect(table string, key Value, filters []string, textCol string, limit int) ([]Tuple, OpStats, error) {
	return e.CacheSelectContext(context.Background(), table, key, filters, textCol, limit)
}

// CacheSelectContext is CacheSelect under a context: the single round-trip
// to the key's owner aborts once ctx is done.
func (e *Engine) CacheSelectContext(ctx context.Context, table string, key Value, filters []string, textCol string, limit int) ([]Tuple, OpStats, error) {
	var stats OpStats
	sch, ok := e.Schema(table)
	if !ok {
		return nil, stats, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	if sch.ColIndex(textCol) < 0 {
		return nil, stats, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, textCol)
	}
	do := func() ([]Tuple, error) {
		msg := cacheMsg{Table: table, Key: key, TextCol: textCol, Filters: filters, Limit: limit}
		buf := encodeCacheMsg(codec.GetBuf(), &msg)
		reply, err := e.sendRead(ctx, keyID(table, key), appCache, buf, &stats)
		codec.PutBuf(buf)
		if err != nil {
			return nil, err
		}
		cr, err := decodeCacheReply(reply)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		if cr.Err != "" {
			return nil, fmt.Errorf("pier: cache select: %s", cr.Err)
		}
		tuples := make([]Tuple, 0, len(cr.Tuples))
		for _, raw := range cr.Tuples {
			t, _, err := DecodeTuple(raw)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrDecode, err)
			}
			tuples = append(tuples, t)
		}
		return tuples, nil
	}
	ht := e.hot.Load()
	if ht == nil {
		tuples, err := do()
		return tuples, stats, err
	}
	sig, tag := selectSig(table, key, filters, textCol, limit)
	if v, ok := ht.Data.Get(sig); ok {
		stats.CacheHits++
		return v.([]Tuple), stats, nil
	}
	v, shared, err := ht.Flights.Do(ctx, sig, func() (any, error) {
		tuples, err := do()
		if err != nil {
			return nil, err
		}
		ht.Data.Put(sig, tuples, tuplesSize(tuples), tag)
		return tuples, nil
	})
	if shared {
		stats.Coalesced++
	}
	if err != nil {
		return nil, stats, err
	}
	return v.([]Tuple), stats, nil
}

func (e *Engine) handleCache(_ dht.NodeInfo, data []byte) []byte {
	cacheErr := func(msg string) []byte {
		return encodeCacheReply(nil, &cacheReply{Err: msg})
	}
	msg, err := decodeCacheMsg(data)
	if err != nil {
		return cacheErr("bad cache message")
	}
	sch, ok := e.Schema(msg.Table)
	if !ok {
		return cacheErr("unknown table " + msg.Table)
	}
	textIdx := sch.ColIndex(msg.TextCol)
	if textIdx < 0 {
		return cacheErr("no column " + msg.TextCol)
	}
	local, err := e.LocalScan(msg.Table, msg.Key)
	if err != nil {
		return cacheErr(err.Error())
	}
	it := Select(NewSliceIter(local), func(t Tuple) bool {
		text := t[textIdx].Text()
		for _, f := range msg.Filters {
			if !ContainsFold(text, f) {
				return false
			}
		}
		return true
	})
	if msg.Limit > 0 {
		it = Limit(it, msg.Limit)
	}
	var reply cacheReply
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		reply.Tuples = append(reply.Tuples, t.Encode(nil))
	}
	return encodeCacheReply(nil, &reply)
}

// ContainsFold reports whether substr occurs in s under case folding,
// matching the paper's substring selection operators over filenames. It is
// the one case-folding helper shared by the engine's InvertedCache handler
// and the plan package's Filter predicates.
func ContainsFold(s, substr string) bool {
	if len(substr) == 0 {
		return true
	}
	for i := 0; i+len(substr) <= len(s); i++ {
		if strings.EqualFold(s[i:i+len(substr)], substr) {
			return true
		}
	}
	return false
}
