package pier

import (
	"fmt"
	"testing"
)

// Churn integration tests: the distributed query paths must degrade
// gracefully, not wedge, when nodes vanish between publish and query.

func TestChainJoinAfterOwnerChurn(t *testing.T) {
	env := newTestEnv(t, 40, Config{})
	env.publishFile(t, 0, "durable alpha beta")

	// Kill the primary owner of one keyword's posting list.
	key := keyID("Inverted", String("alpha"))
	owner, _, err := env.engines[0].Node().Owner(key)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range env.engines {
		if e.Node().Info().ID == owner.ID {
			env.cluster.RemoveNode(i)
			env.engines = append(env.engines[:i], env.engines[i+1:]...)
			break
		}
	}

	// Replicas on the remaining closest nodes still answer the join.
	got, _, err := env.engines[5].ChainJoin("Inverted", []Value{String("alpha"), String("beta")}, "fileID", 0)
	if err != nil {
		t.Fatalf("join after owner churn: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("join after churn = %d results, want 1", len(got))
	}
}

func TestQueriesSurviveHeavyChurn(t *testing.T) {
	env := newTestEnv(t, 48, Config{})
	for i := 0; i < 12; i++ {
		env.publishFile(t, i%len(env.engines), fmt.Sprintf("churn survivor %02d", i))
	}
	// Remove a third of the cluster, highest indices first so engine and
	// node slices stay aligned.
	for i := 0; i < 16; i++ {
		idx := len(env.engines) - 1
		env.cluster.RemoveNode(idx)
		env.engines = env.engines[:idx]
	}
	got, _, err := env.engines[0].ChainJoin("Inverted", []Value{String("churn"), String("survivor")}, "fileID", 0)
	if err != nil {
		t.Fatalf("join under churn: %v", err)
	}
	// Replication factor 3 against 33% departures: most results survive.
	if len(got) < 8 {
		t.Errorf("only %d/12 results survived 33%% churn", len(got))
	}
	// CacheSelect still works too.
	tuples, _, err := env.engines[1].CacheSelect("InvertedCache", String("churn"), []string{"survivor"}, "fulltext", 0)
	if err != nil {
		t.Fatalf("cache select under churn: %v", err)
	}
	if len(tuples) < 8 {
		t.Errorf("cache plan found %d/12 after churn", len(tuples))
	}
}

func TestChainJoinConcurrentQueries(t *testing.T) {
	// The engine is shared state; concurrent queries must not interfere
	// (distinct QIDs, separate waiters).
	env := newTestEnv(t, 32, Config{})
	for i := 0; i < 8; i++ {
		env.publishFile(t, i%len(env.engines), fmt.Sprintf("parallel item%02d", i))
	}
	const workers = 16
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			got, _, err := env.engines[w%len(env.engines)].ChainJoin("Inverted",
				[]Value{String("parallel"), String(fmt.Sprintf("item%02d", w%8))}, "fileID", 0)
			if err == nil && len(got) != 1 {
				err = fmt.Errorf("worker %d: %d results", w, len(got))
			}
			errs <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestRepublishAfterChurnRestoresJoin(t *testing.T) {
	env := newTestEnv(t, 40, Config{})
	env.publishFile(t, 2, "restored gem")
	// Remove the two closest holders of the "restored" posting list.
	key := keyID("Inverted", String("restored"))
	closest, _, err := env.engines[0].Node().Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, c := range closest {
		if removed == 2 {
			break
		}
		for i, e := range env.engines {
			if e.Node().Info().ID == c.ID && i != 2 {
				env.cluster.RemoveNode(i)
				env.engines = append(env.engines[:i], env.engines[i+1:]...)
				removed++
				break
			}
		}
	}
	// The publisher refreshes its replicas (maintenance cycle).
	var pub *Engine
	for _, e := range env.engines {
		if e.Node().Info().Addr == "node-2" {
			pub = e
		}
	}
	if pub == nil {
		t.Skip("publisher itself was among removed holders")
	}
	if n, _ := pub.Node().Republish(); n == 0 {
		t.Log("nothing held locally to republish; relying on surviving replicas")
	}
	got, _, err := env.engines[0].ChainJoin("Inverted", []Value{String("restored"), String("gem")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("join after republish = %d results", len(got))
	}
}
