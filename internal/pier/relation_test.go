package pier

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func rows(vals ...int64) []Tuple {
	out := make([]Tuple, len(vals))
	for i, v := range vals {
		out[i] = Tuple{Int(v), String(fmt.Sprintf("row-%d", v))}
	}
	return out
}

func TestSliceIterAndCollect(t *testing.T) {
	in := rows(1, 2, 3)
	out := Collect(NewSliceIter(in))
	if len(out) != 3 {
		t.Fatalf("collected %d rows", len(out))
	}
	for i := range in {
		if !out[i].Equal(in[i]) {
			t.Errorf("row %d mismatch", i)
		}
	}
	// Exhausted iterator keeps returning false.
	it := NewSliceIter(rows(1))
	it.Next()
	if _, ok := it.Next(); ok {
		t.Error("exhausted iterator yielded a tuple")
	}
	if _, ok := it.Next(); ok {
		t.Error("iterator revived after exhaustion")
	}
}

func TestSelect(t *testing.T) {
	out := Collect(Select(NewSliceIter(rows(1, 2, 3, 4)), func(tp Tuple) bool {
		return tp[0].Num()%2 == 0
	}))
	if len(out) != 2 || out[0][0].Num() != 2 || out[1][0].Num() != 4 {
		t.Errorf("Select evens = %v", out)
	}
}

func TestProject(t *testing.T) {
	out := Collect(Project(NewSliceIter(rows(7)), 1, 0))
	if len(out) != 1 || out[0][0].Text() != "row-7" || out[0][1].Num() != 7 {
		t.Errorf("Project = %v", out)
	}
}

func TestLimit(t *testing.T) {
	out := Collect(Limit(NewSliceIter(rows(1, 2, 3)), 2))
	if len(out) != 2 {
		t.Errorf("Limit(2) yielded %d", len(out))
	}
	if out := Collect(Limit(NewSliceIter(rows(1)), 0)); len(out) != 0 {
		t.Errorf("Limit(0) yielded %d", len(out))
	}
}

func TestDistinct(t *testing.T) {
	in := append(rows(1, 2), rows(1, 2, 3)...)
	out := Collect(Distinct(NewSliceIter(in)))
	if len(out) != 3 {
		t.Errorf("Distinct yielded %d rows, want 3", len(out))
	}
}

func TestHashJoinBasic(t *testing.T) {
	left := []Tuple{{Int(1), String("a")}, {Int(2), String("b")}, {Int(2), String("b2")}}
	right := []Tuple{{String("x"), Int(2)}, {String("y"), Int(3)}}
	// probe=right on col 1, build=left on col 0 -> matches where right[1]==left[0]
	out := Collect(HashJoin(NewSliceIter(left), NewSliceIter(right), 0, 1))
	if len(out) != 2 {
		t.Fatalf("join yielded %d rows, want 2", len(out))
	}
	for _, r := range out {
		if r[1].Num() != r[2].Num() {
			t.Errorf("join row violates predicate: %v", r)
		}
		if len(r) != 4 {
			t.Errorf("join row arity %d, want 4", len(r))
		}
	}
}

func TestHashJoinEmptyInputs(t *testing.T) {
	if out := Collect(HashJoin(NewSliceIter(nil), NewSliceIter(rows(1)), 0, 0)); len(out) != 0 {
		t.Error("join with empty build produced rows")
	}
	if out := Collect(HashJoin(NewSliceIter(rows(1)), NewSliceIter(nil), 0, 0)); len(out) != 0 {
		t.Error("join with empty probe produced rows")
	}
}

func TestSymmetricHashJoinStreamsBothOrders(t *testing.T) {
	j := NewSymmetricHashJoin(0, 0)
	if out := j.InsertLeft(Tuple{Int(1)}); len(out) != 0 {
		t.Error("join fired before match arrived")
	}
	out := j.InsertRight(Tuple{Int(1), String("r")})
	if len(out) != 1 || out[0][0].Num() != 1 || out[0][2].Text() != "r" {
		t.Errorf("right-completes-left: %v", out)
	}
	// Opposite arrival order.
	out = j.InsertRight(Tuple{Int(2), String("r2")})
	if len(out) != 0 {
		t.Error("unmatched right fired")
	}
	out = j.InsertLeft(Tuple{Int(2)})
	if len(out) != 1 || out[0][1].Num() != 2 {
		t.Errorf("left-completes-right: %v", out)
	}
}

func TestSymmetricHashJoinDuplicates(t *testing.T) {
	j := NewSymmetricHashJoin(0, 0)
	j.InsertLeft(Tuple{Int(1), String("l1")})
	j.InsertLeft(Tuple{Int(1), String("l2")})
	out := j.InsertRight(Tuple{Int(1), String("r")})
	if len(out) != 2 {
		t.Errorf("2 left x 1 right = %d rows, want 2", len(out))
	}
	if j.LeftSize() != 2 || j.RightSize() != 1 {
		t.Errorf("sizes = %d/%d, want 2/1", j.LeftSize(), j.RightSize())
	}
}

// TestSymmetricEqualsClassicJoin is the core join-correctness property: a
// symmetric hash join fed tuples in any interleaving produces exactly the
// rows of a classic build/probe hash join.
func TestSymmetricEqualsClassicJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var left, right []Tuple
		for i := 0; i < rng.Intn(30); i++ {
			left = append(left, Tuple{Int(int64(rng.Intn(10))), String(fmt.Sprintf("L%d", i))})
		}
		for i := 0; i < rng.Intn(30); i++ {
			right = append(right, Tuple{Int(int64(rng.Intn(10))), String(fmt.Sprintf("R%d", i))})
		}

		classic := Collect(HashJoin(NewSliceIter(right), NewSliceIter(left), 0, 0))
		// classic rows are left ++ right (probe ++ build)

		j := NewSymmetricHashJoin(0, 0)
		var streamed []Tuple
		li, ri := 0, 0
		for li < len(left) || ri < len(right) {
			takeLeft := ri >= len(right) || (li < len(left) && rng.Intn(2) == 0)
			if takeLeft {
				streamed = append(streamed, j.InsertLeft(left[li])...)
				li++
			} else {
				streamed = append(streamed, j.InsertRight(right[ri])...)
				ri++
			}
		}
		if len(streamed) != len(classic) {
			t.Fatalf("trial %d: symmetric %d rows, classic %d", trial, len(streamed), len(classic))
		}
		canon := func(ts []Tuple) []string {
			out := make([]string, len(ts))
			for i, tp := range ts {
				s := ""
				for _, v := range tp {
					s += v.Key() + "|"
				}
				out[i] = s
			}
			sort.Strings(out)
			return out
		}
		a, b := canon(streamed), canon(classic)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: row sets differ", trial)
			}
		}
	}
}

func TestContainsFold(t *testing.T) {
	cases := []struct {
		s, sub string
		want   bool
	}{
		{"Madonna - Like a Prayer.mp3", "madonna", true},
		{"Madonna - Like a Prayer.mp3", "PRAYER", true},
		{"Madonna - Like a Prayer.mp3", "beatles", false},
		{"abc", "", true},
		{"", "x", false},
		{"short", "longer than s", false},
		{"xyz", "xyz", true},
	}
	for _, c := range cases {
		if got := ContainsFold(c.s, c.sub); got != c.want {
			t.Errorf("ContainsFold(%q, %q) = %v, want %v", c.s, c.sub, got, c.want)
		}
	}
}

func BenchmarkSymmetricHashJoin(b *testing.B) {
	j := NewSymmetricHashJoin(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % 1000)
		j.InsertLeft(Tuple{Int(k)})
		j.InsertRight(Tuple{Int(k)})
		if i%1000 == 999 {
			j = NewSymmetricHashJoin(0, 0) // bound state growth
		}
	}
}
