package pier

// This file threads the hot-key survival tier (internal/hotcache)
// through the engine's read path. Every entry point degrades to the
// exact pre-tier behavior when no tier is installed, so the tier is a
// pure opt-in: SetHotTier(nil) restores byte-identical execution.
//
// Cache key prefixes (values are immutable once cached):
//
//	p|<id>          owner-side posting scan      []Tuple
//	f|<id>          requester-side fetch         []Tuple
//	c|<id>          posting-list count probe     int
//	b|<geo>|<id>    bloom count+filter probe     bloomReply
//	j|<sig>         chain-join result            []Value
//	s|<sig>         InvertedCache plan result    []Tuple
//	r|<id>          replica-set resolution       []dht.NodeInfo (route cache)
//
// Every data entry is tagged with the raw 20-byte DHT key(s) it derives
// from; a publish for that key — observed locally after PutContext, and
// at every replica via the dht store observer riding on the STORE RPC —
// purges all dependent entries at once.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"piersearch/internal/codec"
	"piersearch/internal/dht"
	"piersearch/internal/hotcache"
)

// SetHotTier installs the hot-key cache tier (nil removes it). The
// node's store observer is pointed at the tier so inbound replica
// stores invalidate dependent cache entries — the purge hint that
// piggybacks on the publish's own STORE RPC.
func (e *Engine) SetHotTier(t *hotcache.Tier) {
	e.hot.Store(t)
	if t == nil {
		e.node.SetStoreObserver(nil)
		return
	}
	e.node.SetStoreObserver(func(id dht.ID) { t.InvalidateID(id[:]) })
}

// HotTier returns the installed tier, or nil.
func (e *Engine) HotTier() *hotcache.Tier { return e.hot.Load() }

// tuplesSize approximates the cache footprint of a tuple slice by its
// wire size.
func tuplesSize(ts []Tuple) int64 {
	var n int64
	for _, t := range ts {
		n += int64(t.EncodedSize())
	}
	return n
}

func valuesSize(vs []Value) int64 {
	var n int64
	for _, v := range vs {
		n += int64(len(v.Key())) + 24
	}
	return n
}

// sendRead routes a read-only application message to a live holder of
// key and returns the reply. Without a tier this is exactly
// node.SendContext. With one, the replica set for key is resolved once
// and cached, and keys running hot in the frequency sketch spread
// round-robin across the replicate-closest holders instead of always
// landing on the XOR-closest owner; a failed holder drops the cached
// route and the next candidate is tried.
func (e *Engine) sendRead(ctx context.Context, key dht.ID, app string, data []byte, stats *OpStats) ([]byte, error) {
	t := e.hot.Load()
	if t == nil {
		reply, ls, err := e.node.SendContext(ctx, key, app, data)
		if stats != nil {
			stats.addLookup(ls)
		}
		return reply, err
	}
	tag := string(key[:])
	var holders []dht.NodeInfo
	if v, ok := t.Routes.Get("r|" + tag); ok {
		holders = v.([]dht.NodeInfo)
	} else {
		closest, ls, err := e.node.LookupContext(ctx, key)
		if stats != nil {
			stats.addLookup(ls)
		}
		if err != nil {
			return nil, err
		}
		holders = holdersFor(e.node.Info(), closest, key, t.Replicas())
		if len(holders) == 0 {
			return nil, dht.ErrNoContacts
		}
		t.Routes.Put("r|"+tag, holders, int64(len(holders))*64, tag)
	}
	start := 0
	if t.Sketch.Observe(tag) >= t.HotThreshold() {
		start = t.NextFanout(len(holders))
		if start != 0 && stats != nil {
			stats.FanoutReads++
		}
	}
	self := e.node.Info().ID
	var lastErr error
	for i := 0; i < len(holders); i++ {
		h := holders[(start+i)%len(holders)]
		if h.ID == self {
			reply, err := e.node.HandleApp(app, data)
			if err == nil {
				return reply, nil
			}
			lastErr = err
			continue
		}
		reply, ls, err := e.node.SendToContext(ctx, h, app, data)
		if stats != nil {
			stats.addLookup(ls)
		}
		if err == nil {
			return reply, nil
		}
		lastErr = err
		// Stale placement: drop the cached route so the next read
		// re-resolves against the live network.
		t.Routes.InvalidateTag(tag)
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// holdersFor merges this node into the lookup's closest-live list at
// its XOR rank and truncates to the replica width — mirroring the
// "self among closest" rule PutContext stores under, so fan-out reads
// only target nodes the placement actually wrote to.
func holdersFor(self dht.NodeInfo, closest []dht.NodeInfo, key dht.ID, replicas int) []dht.NodeInfo {
	out := make([]dht.NodeInfo, 0, len(closest)+1)
	inserted := false
	for _, c := range closest {
		if c.ID == self.ID {
			inserted = true
		}
		if !inserted && dht.Closer(self.ID, c.ID, key) {
			out = append(out, self)
			inserted = true
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		// No live contacts at all: serve locally, as SendContext's
		// owner-resolution would.
		out = append(out, self)
	}
	if len(out) > replicas {
		out = out[:replicas]
	}
	return out
}

// countCached is the count probe behind CountContext and the
// selectivity orderer: tier-cached, singleflight-coalesced, fanned out
// for hot keys.
func (e *Engine) countCached(ctx context.Context, table string, key Value) (int, OpStats, error) {
	var stats OpStats
	id := keyID(table, key)
	do := func() (int, error) {
		buf := encodeCountMsg(codec.GetBuf(), &countMsg{Table: table, Key: key})
		reply, err := e.sendRead(ctx, id, appCount, buf, &stats)
		codec.PutBuf(buf)
		if err != nil {
			return 0, err
		}
		n, err := decodeCountReply(reply)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		return n, nil
	}
	t := e.hot.Load()
	if t == nil {
		n, err := do()
		return n, stats, err
	}
	tag := string(id[:])
	ck := "c|" + tag
	if v, ok := t.Data.Get(ck); ok {
		stats.CacheHits++
		return v.(int), stats, nil
	}
	v, shared, err := t.Flights.Do(ctx, ck, func() (any, error) {
		n, err := do()
		if err != nil {
			return nil, err
		}
		t.Data.Put(ck, n, 16, tag)
		return n, nil
	})
	if shared {
		stats.Coalesced++
	}
	if err != nil {
		return 0, stats, err
	}
	return v.(int), stats, nil
}

// FetchCachedContext is FetchContext through the tier: repeated fetches
// of one (table, key) are served from the requester-side cache,
// concurrent identical fetches collapse into one DHT lookup.
func (e *Engine) FetchCachedContext(ctx context.Context, table string, key Value) ([]Tuple, OpStats, error) {
	var stats OpStats
	t := e.hot.Load()
	if t == nil {
		tuples, ls, err := e.FetchContext(ctx, table, key)
		stats.addLookup(ls)
		return tuples, stats, err
	}
	id := keyID(table, key)
	tag := string(id[:])
	ck := "f|" + tag
	if v, ok := t.Data.Get(ck); ok {
		stats.CacheHits++
		return v.([]Tuple), stats, nil
	}
	v, shared, err := t.Flights.Do(ctx, ck, func() (any, error) {
		tuples, ls, err := e.FetchContext(ctx, table, key)
		stats.addLookup(ls)
		if err != nil {
			return nil, err
		}
		t.Data.Put(ck, tuples, tuplesSize(tuples), tag)
		return tuples, nil
	})
	if shared {
		stats.Coalesced++
	}
	if err != nil {
		return nil, stats, err
	}
	return v.([]Tuple), stats, nil
}

// bloomProbe is the count+filter probe behind ChainJoinConcurrent's
// probe phase, cached per key and bloom geometry.
func (e *Engine) bloomProbe(ctx context.Context, table string, key Value, joinCol string) (bloomReply, OpStats, error) {
	var stats OpStats
	id := keyID(table, key)
	do := func() (bloomReply, error) {
		req := bloomMsg{Table: table, Key: key, JoinCol: joinCol, Bits: e.cfg.BloomBits, Hashes: e.cfg.BloomHashes}
		buf := encodeBloomMsg(codec.GetBuf(), &req)
		reply, err := e.sendRead(ctx, id, appBloom, buf, &stats)
		codec.PutBuf(buf)
		if err != nil {
			return bloomReply{}, err
		}
		br, err := decodeBloomReply(reply)
		if err != nil {
			return bloomReply{}, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		if br.Err != "" {
			return bloomReply{}, fmt.Errorf("pier: bloom probe: %s", br.Err)
		}
		return br, nil
	}
	t := e.hot.Load()
	if t == nil {
		br, err := do()
		return br, stats, err
	}
	tag := string(id[:])
	ck := "b|" + strconv.FormatUint(e.cfg.BloomBits, 10) + "." + strconv.FormatUint(uint64(e.cfg.BloomHashes), 10) + "|" + tag
	if v, ok := t.Data.Get(ck); ok {
		stats.CacheHits++
		return v.(bloomReply), stats, nil
	}
	v, shared, err := t.Flights.Do(ctx, ck, func() (any, error) {
		br, err := do()
		if err != nil {
			return nil, err
		}
		t.Data.Put(ck, br, int64(len(br.Filter))+16, tag)
		return br, nil
	})
	if shared {
		stats.Coalesced++
	}
	if err != nil {
		return bloomReply{}, stats, err
	}
	return v.(bloomReply), stats, nil
}

// joinSig builds the normalized signature and invalidation tags for a
// chain join's cached result. The key SET is sorted — selectivity
// ordering is an execution detail, not part of the query's identity.
func joinSig(table, joinCol string, keys []Value, limit int) (string, []string) {
	ks := make([]string, len(keys))
	tags := make([]string, len(keys))
	for i, k := range keys {
		ks[i] = k.Key()
		id := dht.NamespacedID(table, ks[i])
		tags[i] = string(id[:])
	}
	sort.Strings(ks)
	var b strings.Builder
	b.WriteString("j|")
	b.WriteString(table)
	b.WriteByte('|')
	b.WriteString(joinCol)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(limit))
	for _, k := range ks {
		b.WriteByte(0)
		b.WriteString(k)
	}
	return b.String(), tags
}

// joinCached wraps a chain-join execution with the tier's result cache
// and singleflight: identical concurrent joins run once, repeats are
// served locally until a publish to any of the keys invalidates them.
func (e *Engine) joinCached(ctx context.Context, table string, keys []Value, joinCol string, limit int, run func(context.Context) ([]Value, OpStats, error)) ([]Value, OpStats, error) {
	t := e.hot.Load()
	if t == nil {
		return run(ctx)
	}
	var stats OpStats
	sig, tags := joinSig(table, joinCol, keys, limit)
	if v, ok := t.Data.Get(sig); ok {
		stats.CacheHits++
		return v.([]Value), stats, nil
	}
	var inner OpStats
	v, shared, err := t.Flights.Do(ctx, sig, func() (any, error) {
		vals, st, err := run(ctx)
		inner = st
		if err != nil {
			return nil, err
		}
		t.Data.Put(sig, vals, valuesSize(vals), tags...)
		return vals, nil
	})
	stats.Add(inner) // zero for coalesced waiters: the leader paid the traffic
	if shared {
		stats.Coalesced++
	}
	if err != nil {
		return nil, stats, err
	}
	return v.([]Value), stats, nil
}

// selectSig is joinSig's analogue for the InvertedCache plan.
func selectSig(table string, key Value, filters []string, textCol string, limit int) (string, string) {
	id := dht.NamespacedID(table, key.Key())
	tag := string(id[:])
	var b strings.Builder
	b.WriteString("s|")
	b.WriteString(table)
	b.WriteByte('|')
	b.WriteString(textCol)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(limit))
	b.WriteByte('|')
	b.WriteString(key.Key())
	for _, f := range filters {
		b.WriteByte(0)
		b.WriteString(f)
	}
	return b.String(), tag
}
