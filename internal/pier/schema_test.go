package pier

import "testing"

func TestNewSchemaValidation(t *testing.T) {
	cols := []Column{{Name: "a", Kind: KindString}, {Name: "b", Kind: KindInt}}
	if _, err := NewSchema("", cols, nil, ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema("t", nil, nil, ""); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewSchema("t", []Column{{Name: "", Kind: KindInt}}, nil, ""); err == nil {
		t.Error("unnamed column accepted")
	}
	if _, err := NewSchema("t", []Column{{Name: "a"}, {Name: "a"}}, nil, ""); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema("t", cols, []string{"zz"}, ""); err == nil {
		t.Error("unknown key column accepted")
	}
	if _, err := NewSchema("t", cols, nil, "zz"); err == nil {
		t.Error("unknown index column accepted")
	}
	s, err := NewSchema("t", cols, []string{"a"}, "a")
	if err != nil {
		t.Fatal(err)
	}
	if s.ColIndex("b") != 1 || s.ColIndex("missing") != -1 {
		t.Error("ColIndex wrong")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on invalid schema")
		}
	}()
	MustSchema("", nil, nil, "")
}

func TestSchemaValidateTuple(t *testing.T) {
	s := MustSchema("t", []Column{{Name: "a", Kind: KindString}, {Name: "n", Kind: KindInt}}, nil, "a")
	if err := s.Validate(Tuple{String("x"), Int(1)}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := s.Validate(Tuple{String("x")}); err == nil {
		t.Error("short tuple accepted")
	}
	if err := s.Validate(Tuple{Int(1), Int(1)}); err == nil {
		t.Error("mistyped tuple accepted")
	}
}

func TestSchemaIndexKey(t *testing.T) {
	s := MustSchema("t", []Column{{Name: "a", Kind: KindString}, {Name: "n", Kind: KindInt}}, nil, "n")
	k, err := s.IndexKey(Tuple{String("x"), Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if k != Int(7).Key() {
		t.Errorf("IndexKey = %q", k)
	}
	noIdx := MustSchema("t2", []Column{{Name: "a", Kind: KindString}}, nil, "")
	if _, err := noIdx.IndexKey(Tuple{String("x")}); err == nil {
		t.Error("IndexKey without index column succeeded")
	}
	if _, err := s.IndexKey(Tuple{String("x")}); err == nil {
		t.Error("IndexKey on short tuple succeeded")
	}
}
