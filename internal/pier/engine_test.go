package pier

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"piersearch/internal/dht"
	"piersearch/internal/store"
)

// testClusterConfig returns the dht.Config test clusters are built with.
// PIERSEARCH_STORE=disk swaps every node's store for the log-structured
// disk engine, running the whole pier suite through the dht.Storage
// interface against on-disk state (one directory per node).
func testClusterConfig(t testing.TB) dht.Config {
	cfg := dht.Config{}
	if os.Getenv("PIERSEARCH_STORE") == "disk" {
		cfg.NewStorage = store.DiskFactory(t.TempDir(), store.Options{})
	}
	return cfg
}

// invertedSchema mirrors the paper's Inverted(keyword, fileID) relation.
var invertedSchema = MustSchema("Inverted",
	[]Column{{Name: "keyword", Kind: KindString}, {Name: "fileID", Kind: KindBytes}},
	[]string{"keyword", "fileID"}, "keyword")

// cacheSchema mirrors InvertedCache(keyword, fileID, fulltext).
var cacheSchema = MustSchema("InvertedCache",
	[]Column{{Name: "keyword", Kind: KindString}, {Name: "fileID", Kind: KindBytes}, {Name: "fulltext", Kind: KindString}},
	[]string{"keyword", "fileID"}, "keyword")

// itemSchema mirrors Item(fileID, filename, filesize, ipAddress, port).
var itemSchema = MustSchema("Item",
	[]Column{
		{Name: "fileID", Kind: KindBytes},
		{Name: "filename", Kind: KindString},
		{Name: "filesize", Kind: KindInt},
		{Name: "ipAddress", Kind: KindString},
		{Name: "port", Kind: KindInt},
	},
	[]string{"fileID"}, "fileID")

type testEnv struct {
	cluster *dht.Cluster
	engines []*Engine
}

func newTestEnv(t *testing.T, n int, cfg Config) *testEnv {
	t.Helper()
	cluster, err := dht.NewCluster(n, 99, testClusterConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() }) //nolint:errcheck // test teardown
	env := &testEnv{cluster: cluster}
	for _, node := range cluster.Nodes {
		e := NewEngine(node, cfg)
		e.Register(invertedSchema)
		e.Register(cacheSchema)
		e.Register(itemSchema)
		env.engines = append(env.engines, e)
	}
	return env
}

// publishFile publishes Inverted and InvertedCache tuples for a filename
// from the given engine, using the name itself as the fileID for test
// readability.
func (env *testEnv) publishFile(t *testing.T, from int, filename string) {
	t.Helper()
	e := env.engines[from]
	fileID := []byte(filename)
	for _, kw := range strings.Fields(strings.ToLower(filename)) {
		if _, err := e.Publish("Inverted", Tuple{String(kw), Bytes(fileID)}); err != nil {
			t.Fatalf("publish inverted %q: %v", kw, err)
		}
		if _, err := e.Publish("InvertedCache", Tuple{String(kw), Bytes(fileID), String(filename)}); err != nil {
			t.Fatalf("publish cache %q: %v", kw, err)
		}
	}
	item := Tuple{Bytes(fileID), String(filename), Int(int64(len(filename)) * 1000), String("10.0.0.1"), Int(6346)}
	if _, err := e.Publish("Item", item); err != nil {
		t.Fatalf("publish item: %v", err)
	}
}

func valueSet(vals []Value) map[string]bool {
	out := map[string]bool{}
	for _, v := range vals {
		out[string(v.Raw())] = true
	}
	return out
}

func TestPublishAndFetch(t *testing.T) {
	env := newTestEnv(t, 24, Config{})
	env.publishFile(t, 0, "madonna like a prayer")
	tuples, _, err := env.engines[10].Fetch("Item", Bytes([]byte("madonna like a prayer")))
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0][1].Text() != "madonna like a prayer" {
		t.Fatalf("Fetch = %v", tuples)
	}
}

func TestPublishValidates(t *testing.T) {
	env := newTestEnv(t, 8, Config{})
	if _, err := env.engines[0].Publish("Inverted", Tuple{String("kw")}); err == nil {
		t.Error("short tuple accepted")
	}
	if _, err := env.engines[0].Publish("Inverted", Tuple{Int(1), Bytes(nil)}); err == nil {
		t.Error("mistyped tuple accepted")
	}
	if _, err := env.engines[0].Publish("NoSuchTable", Tuple{}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestChainJoinSingleKeyword(t *testing.T) {
	env := newTestEnv(t, 24, Config{})
	env.publishFile(t, 0, "madonna hits")
	env.publishFile(t, 1, "madonna live")
	env.publishFile(t, 2, "beatles anthology")

	got, stats, err := env.engines[5].ChainJoin("Inverted", []Value{String("madonna")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	set := valueSet(got)
	if len(set) != 2 || !set["madonna hits"] || !set["madonna live"] {
		t.Fatalf("single-keyword results = %v", set)
	}
	if stats.PostingShipped != 0 {
		t.Errorf("single keyword shipped %d entries, want 0", stats.PostingShipped)
	}
}

func TestChainJoinTwoKeywords(t *testing.T) {
	env := newTestEnv(t, 24, Config{})
	env.publishFile(t, 0, "madonna like a prayer")
	env.publishFile(t, 1, "madonna hits")
	env.publishFile(t, 2, "prayer chants")

	got, stats, err := env.engines[7].ChainJoin("Inverted", []Value{String("madonna"), String("prayer")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	set := valueSet(got)
	if len(set) != 1 || !set["madonna like a prayer"] {
		t.Fatalf("two-keyword join = %v", set)
	}
	if stats.PostingShipped == 0 {
		t.Error("two-keyword join shipped no posting entries")
	}
}

func TestChainJoinThreeKeywords(t *testing.T) {
	env := newTestEnv(t, 32, Config{})
	env.publishFile(t, 0, "alpha beta gamma")
	env.publishFile(t, 1, "alpha beta")
	env.publishFile(t, 2, "beta gamma")
	env.publishFile(t, 3, "alpha gamma")

	got, _, err := env.engines[9].ChainJoin("Inverted", []Value{String("alpha"), String("beta"), String("gamma")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	set := valueSet(got)
	if len(set) != 1 || !set["alpha beta gamma"] {
		t.Fatalf("three-keyword join = %v", set)
	}
}

func TestChainJoinNoMatches(t *testing.T) {
	env := newTestEnv(t, 16, Config{})
	env.publishFile(t, 0, "alpha only")
	env.publishFile(t, 1, "beta only")
	got, _, err := env.engines[3].ChainJoin("Inverted", []Value{String("alpha"), String("beta")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("disjoint keywords returned %v", got)
	}
}

func TestChainJoinUnknownKeyword(t *testing.T) {
	env := newTestEnv(t, 16, Config{})
	env.publishFile(t, 0, "alpha item")
	got, _, err := env.engines[3].ChainJoin("Inverted", []Value{String("alpha"), String("zzzz")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("keyword with empty posting list returned %v", got)
	}
}

func TestChainJoinLimit(t *testing.T) {
	env := newTestEnv(t, 24, Config{})
	for i := 0; i < 10; i++ {
		env.publishFile(t, i%len(env.engines), fmt.Sprintf("common file %d", i))
	}
	got, _, err := env.engines[0].ChainJoin("Inverted", []Value{String("common")}, "fileID", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("limit 3 returned %d", len(got))
	}
}

func TestChainJoinErrors(t *testing.T) {
	env := newTestEnv(t, 8, Config{})
	if _, _, err := env.engines[0].ChainJoin("Inverted", nil, "fileID", 0); err == nil {
		t.Error("empty key list accepted")
	}
	if _, _, err := env.engines[0].ChainJoin("Nope", []Value{String("a")}, "fileID", 0); err == nil {
		t.Error("unknown table accepted")
	}
	if _, _, err := env.engines[0].ChainJoin("Inverted", []Value{String("a")}, "nocol", 0); err == nil {
		t.Error("unknown join column accepted")
	}
}

func TestCount(t *testing.T) {
	env := newTestEnv(t, 24, Config{})
	env.publishFile(t, 0, "zebra one")
	env.publishFile(t, 1, "zebra two")
	n, _, err := env.engines[5].Count("Inverted", String("zebra"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Count(zebra) = %d, want 2", n)
	}
	n, _, err = env.engines[5].Count("Inverted", String("absent"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Count(absent) = %d, want 0", n)
	}
}

func TestSelectivityOrderingShipsFewerEntries(t *testing.T) {
	// "rare" appears once; "common" appears many times. Smallest-first
	// must ship far fewer posting entries than naive order.
	build := func(order bool) OpStats {
		env := newTestEnv(t, 24, Config{OrderBySelectivity: order})
		for i := 0; i < 40; i++ {
			env.publishFile(t, i%len(env.engines), fmt.Sprintf("common filler %d", i))
		}
		env.publishFile(t, 0, "common rare")
		_, stats, err := env.engines[3].ChainJoin("Inverted", []Value{String("common"), String("rare")}, "fileID", 0)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	naive := build(false)
	smart := build(true)
	if smart.PostingShipped >= naive.PostingShipped {
		t.Errorf("selectivity ordering shipped %d >= naive %d", smart.PostingShipped, naive.PostingShipped)
	}
	if smart.PostingShipped > 2 {
		t.Errorf("smallest-first shipped %d entries, want <= 2", smart.PostingShipped)
	}
}

func TestCacheSelect(t *testing.T) {
	env := newTestEnv(t, 24, Config{})
	env.publishFile(t, 0, "madonna like a prayer")
	env.publishFile(t, 1, "madonna hits")

	tuples, stats, err := env.engines[9].CacheSelect("InvertedCache", String("madonna"), []string{"prayer"}, "fulltext", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0][2].Text() != "madonna like a prayer" {
		t.Fatalf("CacheSelect = %v", tuples)
	}
	if stats.PostingShipped != 0 {
		t.Error("cache plan shipped posting entries")
	}
}

func TestCacheSelectCaseInsensitive(t *testing.T) {
	env := newTestEnv(t, 16, Config{})
	env.publishFile(t, 0, "Madonna Like A Prayer")
	tuples, _, err := env.engines[3].CacheSelect("InvertedCache", String("madonna"), []string{"PRAYER"}, "fulltext", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("case-insensitive filter found %d", len(tuples))
	}
}

func TestCacheSelectLimitAndMiss(t *testing.T) {
	env := newTestEnv(t, 16, Config{})
	for i := 0; i < 5; i++ {
		env.publishFile(t, i%3, fmt.Sprintf("shared name %d", i))
	}
	tuples, _, err := env.engines[0].CacheSelect("InvertedCache", String("shared"), nil, "fulltext", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("limit 2 returned %d", len(tuples))
	}
	tuples, _, err = env.engines[0].CacheSelect("InvertedCache", String("shared"), []string{"absent"}, "fulltext", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 0 {
		t.Fatalf("filter miss returned %d", len(tuples))
	}
}

func TestCacheQueryCheaperThanChainForPopularKeywords(t *testing.T) {
	// The §7 comparison: InvertedCache sends the query to one node (~1 KB
	// scale), while the distributed join ships posting lists (~10s of KB).
	env := newTestEnv(t, 32, Config{})
	for i := 0; i < 60; i++ {
		env.publishFile(t, i%len(env.engines), fmt.Sprintf("britney spears track%02d", i))
	}
	net := env.cluster.Net

	before := net.Stats()
	_, _, err := env.engines[3].ChainJoin("Inverted", []Value{String("britney"), String("spears")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	chainBytes := net.Stats().Sub(before).Bytes

	before = net.Stats()
	_, _, err = env.engines[3].CacheSelect("InvertedCache", String("britney"), []string{"spears"}, "fulltext", 0)
	if err != nil {
		t.Fatal(err)
	}
	cacheBytes := net.Stats().Sub(before).Bytes

	if cacheBytes >= chainBytes {
		t.Errorf("InvertedCache used %d bytes >= chain join %d bytes", cacheBytes, chainBytes)
	}
}

func TestLocalScanOnlySeesLocal(t *testing.T) {
	env := newTestEnv(t, 16, Config{})
	env.publishFile(t, 0, "unique keyword here")
	// Sum of local scans across all nodes equals replication factor.
	total := 0
	for _, e := range env.engines {
		ts, err := e.LocalScan("Inverted", String("unique"))
		if err != nil {
			t.Fatal(err)
		}
		total += len(ts)
	}
	want := env.engines[0].Node().Config().Replicate
	if total != want {
		t.Errorf("replicas across nodes = %d, want %d", total, want)
	}
}

func BenchmarkChainJoinTwoKeywords(b *testing.B) {
	cluster, err := dht.NewCluster(32, 1, testClusterConfig(b))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cluster.Close() }) //nolint:errcheck // test teardown
	var engines []*Engine
	for _, node := range cluster.Nodes {
		e := NewEngine(node, Config{})
		e.Register(invertedSchema)
		engines = append(engines, e)
	}
	for i := 0; i < 50; i++ {
		fileID := []byte(fmt.Sprintf("file-%d", i))
		engines[i%32].Publish("Inverted", Tuple{String("alpha"), Bytes(fileID)})
		if i%2 == 0 {
			engines[i%32].Publish("Inverted", Tuple{String("beta"), Bytes(fileID)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engines[i%32].ChainJoin("Inverted", []Value{String("alpha"), String("beta")}, "fileID", 0)
	}
}
