package pier

// Allocation benchmarks for the hot message codecs. Every chain step,
// count probe, and cache select crosses these round-trips once per RPC,
// so allocs/op here multiplies directly into GC pressure at the hottest
// node of a skewed workload. Run with:
//
//	go test ./internal/pier/ -bench 'Msg|ValueSet' -benchmem -run '^$'
//
// The uniform value-set decode and decodeCacheReply are the paths the
// hot-key PR flattened: one backing array per set instead of one per
// value, and aliasing views instead of per-tuple copies.

import (
	"fmt"
	"testing"

	"piersearch/internal/dht"
)

func benchChainMsg(n int) chainMsg {
	keys := []Value{String("alpha"), String("beta"), String("gamma")}
	cands := make([]Value, n)
	for i := range cands {
		cands[i] = Bytes(benchFileID(i))
	}
	return chainMsg{
		QID: 7, Table: "Inverted", JoinCol: "fileID", Keys: keys, Step: 1,
		Candidates: cands, Origin: dht.NodeInfo{ID: dht.StringID("o"), Addr: "10.1.2.3:6346"},
		Shipped: n, Hops: 2, Bytes: 1 << 12,
	}
}

func BenchmarkChainMsgRoundTrip(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		msg := benchChainMsg(n)
		wire := encodeChainMsg(nil, &msg)
		b.Run(fmt.Sprintf("cands=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = encodeChainMsg(buf[:0], &msg)
				if _, err := decodeChainMsg(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCountMsgRoundTrip(b *testing.B) {
	msg := countMsg{Table: "Inverted", Key: String("stream")}
	wire := encodeCountMsg(nil, &msg)
	reply := encodeCountReply(nil, 42)
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = encodeCountMsg(buf[:0], &msg)
		if _, err := decodeCountMsg(wire); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeCountReply(reply); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheReplyRoundTrip(b *testing.B) {
	for _, n := range []int{4, 32} {
		reply := cacheReply{}
		for i := 0; i < n; i++ {
			t := Tuple{String(fmt.Sprintf("common stream track%02d.mp3", i)), Int(int64(1000 + i))}
			reply.Tuples = append(reply.Tuples, t.Encode(nil))
		}
		wire := encodeCacheReply(nil, &reply)
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = encodeCacheReply(buf[:0], &reply)
				if _, err := decodeCacheReply(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkValueSetDecodeUniform(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = Bytes(benchFileID(i))
		}
		wire := EncodeValueSet(nil, vs)
		b.Run(fmt.Sprintf("ids=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeValueSet(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
