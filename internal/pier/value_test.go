package pier

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	s := String("abc")
	if s.Kind() != KindString || s.Text() != "abc" {
		t.Errorf("String value: %#v", s)
	}
	i := Int(-42)
	if i.Kind() != KindInt || i.Num() != -42 {
		t.Errorf("Int value: %#v", i)
	}
	b := Bytes([]byte{1, 2})
	if b.Kind() != KindBytes || string(b.Raw()) != "\x01\x02" {
		t.Errorf("Bytes value: %#v", b)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{String("x"), String("x"), true},
		{String("x"), String("y"), false},
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Bytes([]byte("a")), Bytes([]byte("a")), true},
		{Bytes([]byte("a")), Bytes([]byte("b")), false},
		{String("1"), Int(1), false},
		{String(""), Bytes(nil), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%#v, %#v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	// Same payload bytes, different kinds, must hash apart.
	if String("a").Key() == Bytes([]byte("a")).Key() {
		t.Error("string and bytes keys collide")
	}
	if Int(0x61).Key() == String("a").Key() {
		t.Error("int and string keys collide")
	}
}

func TestValueKeyIntOrderFree(t *testing.T) {
	seen := map[string]int64{}
	for _, v := range []int64{-2, -1, 0, 1, 2, 1 << 40, -(1 << 40)} {
		k := Int(v).Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Int(%d) and Int(%d) share key", v, prev)
		}
		seen[k] = v
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	orig := Tuple{String("hello world"), Int(-12345), Bytes([]byte{0, 1, 2, 255}), String(""), Int(0)}
	buf := orig.Encode(nil)
	if len(buf) != orig.EncodedSize() {
		t.Errorf("EncodedSize = %d, len = %d", orig.EncodedSize(), len(buf))
	}
	got, used, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Errorf("consumed %d of %d bytes", used, len(buf))
	}
	if !got.Equal(orig) {
		t.Errorf("round trip: got %v want %v", got, orig)
	}
}

func TestTupleEncodeDecodeProperty(t *testing.T) {
	prop := func(s string, i int64, b []byte) bool {
		orig := Tuple{String(s), Int(i), Bytes(b)}
		got, _, err := DecodeTuple(orig.Encode(nil))
		return err == nil && got.Equal(orig)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTupleRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // huge count
		{1},            // one column, no kind byte
		{1, 0, 5, 'a'}, // string claims 5 bytes, has 1
		{1, 99},        // unknown kind
		{2, 1, 2},      // int then truncated column
	}
	for i, c := range cases {
		if _, _, err := DecodeTuple(c); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestDecodeTupleConsumesExactly(t *testing.T) {
	a := Tuple{String("a")}
	b := Tuple{Int(7)}
	buf := a.Encode(nil)
	buf = b.Encode(buf)
	gotA, used, err := DecodeTuple(buf)
	if err != nil || !gotA.Equal(a) {
		t.Fatalf("first tuple: %v %v", gotA, err)
	}
	gotB, _, err := DecodeTuple(buf[used:])
	if err != nil || !gotB.Equal(b) {
		t.Fatalf("second tuple: %v %v", gotB, err)
	}
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{Bytes([]byte{1, 2}), String("x")}
	c := orig.Clone()
	c[0].B[0] = 99
	if orig[0].B[0] == 99 {
		t.Error("Clone shares byte storage")
	}
	if !c[1].Equal(orig[1]) {
		t.Error("Clone altered values")
	}
}

func TestTupleEqualLengthMismatch(t *testing.T) {
	if (Tuple{Int(1)}).Equal(Tuple{Int(1), Int(2)}) {
		t.Error("tuples of different arity equal")
	}
}
