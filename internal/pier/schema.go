package pier

import "fmt"

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes a relation: its name, columns, primary key, and the
// column whose value keys the tuple in the DHT (the "publishing key" of the
// paper — fileID for Item, keyword for Inverted).
type Schema struct {
	Name     string
	Cols     []Column
	Key      []string // primary-key column names (documentation + dedup)
	IndexCol string   // DHT publishing key column
}

// NewSchema validates and returns a schema.
func NewSchema(name string, cols []Column, key []string, indexCol string) (*Schema, error) {
	s := &Schema{Name: name, Cols: cols, Key: key, IndexCol: indexCol}
	if name == "" {
		return nil, fmt.Errorf("pier: schema needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("pier: schema %s has no columns", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("pier: schema %s has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("pier: schema %s duplicates column %s", name, c.Name)
		}
		seen[c.Name] = true
	}
	for _, k := range key {
		if !seen[k] {
			return nil, fmt.Errorf("pier: schema %s key column %s undefined", name, k)
		}
	}
	if indexCol != "" && !seen[indexCol] {
		return nil, fmt.Errorf("pier: schema %s index column %s undefined", name, indexCol)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static declarations.
func MustSchema(name string, cols []Column, key []string, indexCol string) *Schema {
	s, err := NewSchema(name, cols, key, indexCol)
	if err != nil {
		panic(err)
	}
	return s
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks t against the schema's arity and column kinds.
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.Cols) {
		return fmt.Errorf("pier: %s tuple has %d columns, schema has %d", s.Name, len(t), len(s.Cols))
	}
	for i, v := range t {
		if v.K != s.Cols[i].Kind {
			return fmt.Errorf("pier: %s column %s is %s, got %s", s.Name, s.Cols[i].Name, s.Cols[i].Kind, v.K)
		}
	}
	return nil
}

// IndexKey extracts the DHT publishing key of t as a string.
func (s *Schema) IndexKey(t Tuple) (string, error) {
	idx := s.ColIndex(s.IndexCol)
	if idx < 0 {
		return "", fmt.Errorf("pier: schema %s has no index column", s.Name)
	}
	if idx >= len(t) {
		return "", fmt.Errorf("pier: tuple too short for schema %s", s.Name)
	}
	return t[idx].Key(), nil
}
