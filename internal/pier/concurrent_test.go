package pier

import (
	"fmt"
	"sync"
	"testing"
)

func TestPublishBatchStoresEverything(t *testing.T) {
	env := newTestEnv(t, 12, Config{Workers: 6})
	e := env.engines[0]

	var pubs []Pub
	for i := 0; i < 8; i++ {
		kw := fmt.Sprintf("word%d", i)
		pubs = append(pubs, Pub{"Inverted", Tuple{String(kw), Bytes([]byte("file-1"))}})
	}
	res, err := e.PublishBatch(pubs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages == 0 {
		t.Error("PublishBatch reported no traffic")
	}
	if res.Published != len(pubs) {
		t.Errorf("Published = %d, want %d", res.Published, len(pubs))
	}
	// On the zero-latency LocalNetwork each put may finish before the next
	// is handed out, so only the floor is deterministic; the latency-bearing
	// benchmark test asserts real overlap.
	if res.MaxInFlight < 1 {
		t.Errorf("max in-flight = %d, want >= 1", res.MaxInFlight)
	}
	for i := 0; i < 8; i++ {
		kw := fmt.Sprintf("word%d", i)
		tuples, _, err := env.engines[3].Fetch("Inverted", String(kw))
		if err != nil {
			t.Fatalf("fetch %s: %v", kw, err)
		}
		if len(tuples) != 1 {
			t.Errorf("fetch %s: got %d tuples, want 1", kw, len(tuples))
		}
	}
}

func TestPublishBatchReportsFirstError(t *testing.T) {
	env := newTestEnv(t, 8, Config{Workers: 4})
	e := env.engines[0]
	pubs := []Pub{
		{"Inverted", Tuple{String("good"), Bytes([]byte("f"))}},
		{"NoSuchTable", Tuple{String("bad")}},
		{"Inverted", Tuple{String("alsogood"), Bytes([]byte("f"))}},
	}
	res, err := e.PublishBatch(pubs, 4)
	if err == nil {
		t.Fatal("PublishBatch with an unknown table succeeded")
	}
	if res.Published != 2 {
		t.Errorf("Published = %d, want 2 (the valid entries)", res.Published)
	}
	// The valid entries must still have been attempted.
	if tuples, _, ferr := e.Fetch("Inverted", String("alsogood")); ferr != nil || len(tuples) != 1 {
		t.Errorf("entry after the failing one was not published: %v", ferr)
	}
}

// chainEnv publishes a corpus with one rare and two common keywords so the
// multi-key join has real pruning to do.
func chainEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	env := newTestEnv(t, 16, cfg)
	for i := 0; i < 30; i++ {
		env.publishFile(t, i%16, fmt.Sprintf("common artist track%02d", i))
	}
	env.publishFile(t, 0, "common artist rareterm")
	env.publishFile(t, 1, "common artist rareterm bonus")
	return env
}

func TestChainJoinConcurrentMatchesSequential(t *testing.T) {
	env := chainEnv(t, Config{OrderBySelectivity: true, Workers: 8})
	keys := []Value{String("common"), String("artist"), String("rareterm")}

	seq, _, err := env.engines[5].ChainJoin("Inverted", keys, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	conc, stats, err := env.engines[5].ChainJoinConcurrent("Inverted", keys, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, got := valueSet(seq), valueSet(conc)
	if len(want) != len(got) {
		t.Fatalf("result mismatch: sequential %d values, concurrent %d", len(want), len(got))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("concurrent join lost %q", k)
		}
	}
	if stats.MaxInFlight < 1 {
		t.Errorf("MaxInFlight = %d, want >= 1", stats.MaxInFlight)
	}
}

func TestChainJoinConcurrentPrunesShipping(t *testing.T) {
	env := chainEnv(t, Config{OrderBySelectivity: false, Workers: 8})
	keys := []Value{String("common"), String("rareterm")}

	_, seqStats, err := env.engines[3].ChainJoin("Inverted", keys, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	conc, concStats, err := env.engines[3].ChainJoinConcurrent("Inverted", keys, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(conc) != 2 {
		t.Fatalf("concurrent join returned %d values, want 2", len(conc))
	}
	// The naive chain ships the whole "common" posting list (32 entries);
	// ordering plus the Bloom pre-join must cut that to the candidates.
	if concStats.PostingShipped >= seqStats.PostingShipped {
		t.Errorf("PostingShipped: concurrent %d, naive sequential %d — no pruning",
			concStats.PostingShipped, seqStats.PostingShipped)
	}
	if concStats.PostingShipped > 4 {
		t.Errorf("PostingShipped = %d, want <= 4 after Bloom pre-join", concStats.PostingShipped)
	}
}

func TestChainJoinConcurrentSingleKey(t *testing.T) {
	env := chainEnv(t, Config{Workers: 8})
	vals, _, err := env.engines[2].ChainJoinConcurrent("Inverted", []Value{String("rareterm")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Errorf("single-key join returned %d values, want 2", len(vals))
	}
}

// TestConcurrentPublishFetch hammers one engine with overlapping Publish
// and Fetch calls; run with -race to verify engine/node/store locking.
func TestConcurrentPublishFetch(t *testing.T) {
	env := newTestEnv(t, 10, Config{Workers: 8})
	e := env.engines[0]
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				kw := fmt.Sprintf("kw%d", i%4)
				fileID := []byte(fmt.Sprintf("file-%d-%d", g, i))
				if _, err := e.Publish("Inverted", Tuple{String(kw), Bytes(fileID)}); err != nil {
					errs <- err
					return
				}
				if _, _, err := e.Fetch("Inverted", String(kw)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	tuples, _, err := env.engines[7].Fetch("Inverted", String("kw0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 24 { // 8 goroutines x 3 publishes of kw0 each
		t.Errorf("kw0 posting list has %d entries, want 24", len(tuples))
	}
}
