//go:build unix

package store

import "testing"

func TestDiskDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a locked directory succeeded")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	d2.Close()
}
