package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"piersearch/internal/codec"
	"piersearch/internal/dht"
	"piersearch/internal/telemetry"
)

// indexShards mirrors the stripe count of the in-memory store: keys are
// SHA-1-derived, so the leading ID byte balances a power-of-two stripe.
const indexShards = 16

// maxCommitBatch bounds how many queued Puts one group commit absorbs.
const maxCommitBatch = 256

// errClosed reports an operation against a closed store.
var errClosed = errors.New("store: closed")

// Options configures a Disk store. The zero value is usable.
type Options struct {
	// RotateBytes seals the WAL into a segment once it passes this size.
	// Default 4 MiB.
	RotateBytes int64
	// Sync fsyncs every group commit before acknowledging it, making
	// acknowledged writes durable against power loss, not just process
	// death. Default false: the paper's soft state is republished
	// periodically anyway, and a missed fsync costs at most one republish
	// interval of postings. Close and seals always fsync.
	Sync bool
	// CompactFraction triggers background compaction when the dead-byte
	// fraction of the sealed segments exceeds it. Default 0.5; negative
	// disables automatic compaction (Compact can still be called).
	CompactFraction float64
	// CompactMinBytes is the minimum dead-byte volume before automatic
	// compaction fires, so small stores do not churn. Default 256 KiB.
	CompactMinBytes int64
	// Now is the store clock, on the same time base as the owning node's
	// dht.Config.Clock: it stamps recovered values at open (see the
	// restart-semantics section of the package docs) and drives the
	// TTL awareness of background compaction. Default: wall time since
	// Open.
	Now func() time.Duration
	// Logf, when set, receives operational log lines (recovery summary,
	// compaction results, commit errors). nil silences them. Superseded
	// by Logger; when both are set, Logger wins. Kept for source compat.
	Logf func(format string, args ...any)
	// Logger receives the store's structured log events. When nil, one
	// is derived from Logf (or logging is off if that is nil too).
	Logger *telemetry.Logger
	// Tracer, when set, records a span per group commit and per
	// compaction run into its ring, each as its own root trace.
	Tracer *telemetry.Tracer
	// Metrics, when set, receives the store's counters and gauges
	// (store.wal.*, store.compact.*, store.live_bytes, ...).
	Metrics *telemetry.Registry
}

func (o Options) normalize() Options {
	if o.RotateBytes <= 0 {
		o.RotateBytes = 4 << 20
	}
	if o.CompactFraction == 0 {
		o.CompactFraction = 0.5
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 256 << 10
	}
	if o.Now == nil {
		start := time.Now()
		o.Now = func() time.Duration { return time.Since(start) }
	}
	if o.Logger == nil && o.Logf != nil {
		o.Logger = telemetry.NewLogger(telemetry.LogfSink(o.Logf), telemetry.LevelDebug)
	}
	return o
}

// entry is one live value in the in-memory index: everything needed to
// serve Get except the payload, which stays on disk.
type entry struct {
	file     uint64 // owning log's sequence number
	off      int64  // absolute offset of the data bytes
	dlen     int
	hash     uint64 // FNV-1a of the payload; cheap dedup pre-filter
	pub      dht.ID
	storedAt time.Duration
	ttl      time.Duration
}

func (e entry) expired(now time.Duration) bool {
	return e.ttl > 0 && now > e.storedAt+e.ttl
}

type indexShard struct {
	mu   sync.Mutex
	keys map[dht.ID][]entry
}

// logFile is one on-disk log: the active WAL or a sealed segment.
type logFile struct {
	seq  uint64
	path string
	f    *os.File
	size atomic.Int64 // bytes written, header included
	live atomic.Int64 // payload bytes referenced by live index entries
	dead atomic.Int64 // payload bytes superseded, expired or deleted
	// pending tracks acknowledged commits whose index insert has not
	// landed yet; compaction waits it out before snapshotting, so no
	// entry can appear pointing into a file compaction is about to delete.
	pending sync.WaitGroup
}

func (lf *logFile) retire(n int64) {
	lf.live.Add(-n)
	lf.dead.Add(n)
}

// Recovery describes what Open found and repaired.
type Recovery struct {
	Files          int   // log files replayed
	Records        int   // records applied
	Values         int   // live values after replay
	TornFiles      int   // files whose torn tail was truncated
	TruncatedBytes int64 // bytes discarded from torn tails
}

type commitReq struct {
	rec  []byte
	off  int64 // absolute record offset, set by the committer
	done chan commitRes
}

type commitRes struct {
	file *logFile
	off  int64
	err  error
}

// Disk is the log-structured, disk-backed dht.Storage implementation.
// See the package documentation for the design. All methods are safe for
// concurrent use.
type Disk struct {
	dir  string
	opts Options

	lock *os.File

	shards [indexShards]indexShard

	fileMu  sync.RWMutex
	files   map[uint64]*logFile
	active  *logFile // also present in files; swapped by the committer
	nextSeq uint64   // committer-owned after Open returns

	commitCh chan *commitReq
	rotateCh chan chan rotateRes
	stopCh   chan struct{}
	wg       sync.WaitGroup
	// failed poisons the log after a partial append that could not be
	// rolled back: a torn record mid-file would silently truncate every
	// later commit on replay, so no later commit may be acknowledged.
	failed atomic.Bool

	compactMu   sync.Mutex
	compactKick chan struct{}

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	liveBytes atomic.Int64
	recovery  Recovery
	met       diskMetrics
}

type rotateRes struct {
	out uint64 // sequence number reserved for the compaction output
	err error
}

var _ dht.Storage = (*Disk)(nil)

// Open opens (creating if needed) the store rooted at dir, replays the
// logs found there, seals any recovered WAL, and starts the group
// committer and the background compactor. The directory is advisorily
// locked against concurrent opens until Close.
func Open(dir string, opts Options) (*Disk, error) {
	opts = opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	d := &Disk{
		dir:         dir,
		opts:        opts,
		lock:        lock,
		files:       make(map[uint64]*logFile),
		commitCh:    make(chan *commitReq), // unbuffered: see Put
		rotateCh:    make(chan chan rotateRes),
		stopCh:      make(chan struct{}),
		compactKick: make(chan struct{}, 1),
	}
	for i := range d.shards {
		d.shards[i].keys = make(map[dht.ID][]entry)
	}
	if err := d.load(); err != nil {
		unlockDir(lock) //nolint:errcheck // already failing
		return nil, err
	}
	d.registerMetrics(opts.Metrics)
	d.wg.Add(2)
	go d.committer()
	go d.compactLoop()
	return d, nil
}

func (d *Disk) logf(format string, args ...any) {
	d.opts.Logger.Logf(format, args...)
}

func (d *Disk) shard(key dht.ID) *indexShard {
	return &d.shards[key[0]&(indexShards-1)]
}

func (d *Disk) fileBySeq(seq uint64) *logFile {
	d.fileMu.RLock()
	f := d.files[seq]
	d.fileMu.RUnlock()
	return f
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", seq))
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016d.seg", seq))
}

// createLog creates a fresh log file with its header written.
func (d *Disk) createLog(seq uint64) (*logFile, error) {
	path := walPath(d.dir, seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create log: %w", err)
	}
	if _, err := f.Write(appendHeader(nil)); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: write log header: %w", err)
	}
	lf := &logFile{seq: seq, path: path, f: f}
	lf.size.Store(headerLen)
	return lf, nil
}

// load scans dir, replays every log in sequence order, truncates torn
// tails, seals recovered WALs into segments, and opens a fresh WAL.
func (d *Disk) load() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type found struct {
		seq  uint64
		path string
		wal  bool
	}
	var logs []found
	for _, de := range entries {
		name := de.Name()
		var seq uint64
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Unfinished compaction output: never referenced, remove.
			os.Remove(filepath.Join(d.dir, name)) //nolint:errcheck // best effort
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err == nil {
				logs = append(logs, found{seq, filepath.Join(d.dir, name), true})
			}
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg"):
			if _, err := fmt.Sscanf(name, "seg-%d.seg", &seq); err == nil {
				logs = append(logs, found{seq, filepath.Join(d.dir, name), false})
			}
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i].seq < logs[j].seq })

	rebase := d.opts.Now()
	for _, lg := range logs {
		f, err := os.OpenFile(lg.path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("store: open %s: %w", lg.path, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("store: stat %s: %w", lg.path, err)
		}
		if st.Size() == 0 {
			// Crash between create and header write: never held data.
			f.Close()
			os.Remove(lg.path) //nolint:errcheck // best effort
			continue
		}
		lf := &logFile{seq: lg.seq, path: lg.path, f: f}
		d.files[lg.seq] = lf
		if lg.seq >= d.nextSeq {
			d.nextSeq = lg.seq + 1
		}
		clean, rerr := replayLog(f, st.Size(), func(rec record, payloadOff int64) error {
			d.recovery.Records++
			switch rec.op {
			case opPut:
				e := entry{
					file:     lf.seq,
					off:      payloadOff + int64(rec.dataOff),
					dlen:     len(rec.data),
					hash:     hash64(rec.data),
					pub:      rec.pub,
					storedAt: rebase,
					ttl:      rec.ttl,
				}
				d.insertEntry(rec.key, e, rec.data, lf)
			case opDelete:
				d.removeKey(rec.key)
			}
			return nil
		})
		if rerr == errTornTail {
			d.recovery.TornFiles++
			d.recovery.TruncatedBytes += st.Size() - clean
			if err := f.Truncate(clean); err != nil {
				return fmt.Errorf("store: truncate torn tail of %s: %w", lg.path, err)
			}
			if err := f.Sync(); err != nil {
				return fmt.Errorf("store: sync %s: %w", lg.path, err)
			}
		} else if rerr != nil {
			return fmt.Errorf("store: replay %s: %w", lg.path, rerr)
		}
		lf.size.Store(clean)
		d.recovery.Files++

		if clean <= headerLen {
			// Nothing (left) in it: drop rather than keep an empty log.
			delete(d.files, lg.seq)
			f.Close()
			os.Remove(lg.path) //nolint:errcheck // best effort
			continue
		}
		if lg.wal {
			// Seal the recovered WAL: it is immutable history now.
			np := segPath(d.dir, lg.seq)
			if err := os.Rename(lg.path, np); err != nil {
				return fmt.Errorf("store: seal recovered wal: %w", err)
			}
			lf.path = np
		}
	}

	for i := range d.shards {
		for _, vs := range d.shards[i].keys {
			d.recovery.Values += len(vs)
		}
	}
	if d.recovery.Files > 0 {
		d.opts.Logger.Info("store: recovery complete",
			"values", d.recovery.Values, "records", d.recovery.Records, "logs", d.recovery.Files,
			"torn_tails", d.recovery.TornFiles, "truncated_bytes", d.recovery.TruncatedBytes)
	}

	active, err := d.createLog(d.nextSeq)
	if err != nil {
		return err
	}
	d.nextSeq++
	d.files[active.seq] = active
	d.active = active
	return nil
}

// Recovery returns what Open found and repaired.
func (d *Disk) Recovery() Recovery { return d.recovery }

// hash64 is FNV-1a over b: the index's cheap equality pre-filter.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// sameData reports whether e's on-disk payload equals data. It is only
// called when length and hash already match, so a read failure (the file
// vanished under a racing close) errs toward "same": a 64-bit FNV match at
// equal length is overwhelmingly the same payload, and treating it as a
// refresh cannot lose data — the new record carries the same bytes.
func (d *Disk) sameData(e *entry, data []byte) bool {
	f := d.fileBySeq(e.file)
	if f == nil {
		return true
	}
	buf := codec.GetBuf()
	if cap(buf) < e.dlen {
		buf = make([]byte, e.dlen)
	}
	buf = buf[:e.dlen]
	_, err := f.f.ReadAt(buf, e.off)
	same := err != nil || string(buf) == string(data)
	codec.PutBuf(buf)
	return same
}

// insertEntry adds e (whose payload bytes are data, already committed to
// newFile) to the index, refreshing an existing value with the same
// (publisher, payload). It reports whether the value was new and keeps the
// per-file live/dead accounting.
func (d *Disk) insertEntry(key dht.ID, e entry, data []byte, newFile *logFile) bool {
	sh := d.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	vs := sh.keys[key]
	for i := range vs {
		old := &vs[i]
		if old.pub == e.pub && old.dlen == e.dlen && old.hash == e.hash && d.sameData(old, data) {
			if of := d.fileBySeq(old.file); of != nil {
				of.retire(int64(old.dlen))
			}
			newFile.live.Add(int64(e.dlen))
			*old = e
			return false
		}
	}
	sh.keys[key] = append(vs, e)
	newFile.live.Add(int64(e.dlen))
	d.liveBytes.Add(int64(e.dlen))
	return true
}

// retireEntry accounts one index entry's death.
func (d *Disk) retireEntry(e entry) {
	if f := d.fileBySeq(e.file); f != nil {
		f.retire(int64(e.dlen))
	}
	d.liveBytes.Add(-int64(e.dlen))
}

// removeKey drops every entry under key.
func (d *Disk) removeKey(key dht.ID) {
	sh := d.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.keys[key] {
		d.retireEntry(e)
	}
	delete(sh.keys, key)
}

// commit hands one encoded record to the group committer and waits for it
// to reach the log. On success the owning file's pending counter is held;
// the caller must release it with file.pending.Done() once its index
// update lands.
func (d *Disk) commit(rec []byte) (commitRes, bool) {
	req := &commitReq{rec: rec, done: make(chan commitRes, 1)}
	select {
	case d.commitCh <- req:
	case <-d.stopCh:
		return commitRes{}, false
	}
	res := <-req.done
	if res.err != nil {
		d.logf("store: commit: %v", res.err)
		return commitRes{}, false
	}
	return res, true
}

// Put implements dht.Storage: it group-commits a put record to the WAL,
// then publishes the value in the index. It reports whether the value was
// new (false for a refresh of the same publisher and payload). Put on a
// closed store is a no-op returning false.
func (d *Disk) Put(key dht.ID, v dht.StoredValue) bool {
	if d.closed.Load() {
		return false
	}
	rec, dataOff := appendRecord(codec.GetBuf(), opPut, key, v)
	res, ok := d.commit(rec)
	codec.PutBuf(rec)
	if !ok {
		return false
	}
	e := entry{
		file:     res.file.seq,
		off:      res.off + int64(dataOff),
		dlen:     len(v.Data),
		hash:     hash64(v.Data),
		pub:      v.Publisher,
		storedAt: v.StoredAt,
		ttl:      v.TTL,
	}
	isNew := d.insertEntry(key, e, v.Data, res.file)
	res.file.pending.Done()
	return isNew
}

// Get implements dht.Storage: it returns the live values under key at
// time now, pruning expired index entries and reading payloads off the
// logs. The shard lock is NOT held across the disk reads — the
// concurrent pipeline drives many Gets per shard at once and they must
// overlap their I/O — so a read can race a compaction that deletes the
// file under it; that read fails with a closed/short-read error and the
// whole lookup retries against the repointed index.
func (d *Disk) Get(key dht.ID, now time.Duration) []dht.StoredValue {
	sh := d.shard(key)
	for attempt := 0; ; attempt++ {
		sh.mu.Lock()
		vs, ok := sh.keys[key]
		if !ok {
			sh.mu.Unlock()
			return nil
		}
		entries := make([]entry, len(vs))
		copy(entries, vs)
		sh.mu.Unlock()

		out := make([]dht.StoredValue, 0, len(entries))
		var prune []entry // expired or lost entries, removed under re-lock
		retry := false
		for _, e := range entries {
			if e.expired(now) {
				prune = append(prune, e)
				continue
			}
			f := d.fileBySeq(e.file)
			if f == nil {
				// Compaction repointed this entry and dropped the file
				// between our snapshot and now: re-snapshot.
				retry = true
				break
			}
			data := make([]byte, e.dlen)
			if _, err := f.f.ReadAt(data, e.off); err != nil {
				if errors.Is(err, os.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					// Racing compaction (file closed/removed mid-read) or
					// a racing Close. Retry against the fresh index; on a
					// closed store the bounded retries just run out.
					retry = true
					break
				}
				d.logf("store: read %s @%d: %v", f.path, e.off, err)
				prune = append(prune, e)
				continue
			}
			out = append(out, dht.StoredValue{
				Data:      data,
				Publisher: e.pub,
				StoredAt:  e.storedAt,
				TTL:       e.ttl,
			})
		}
		if len(prune) > 0 {
			sh.mu.Lock()
			cur := sh.keys[key]
			live := cur[:0]
			for _, e := range cur {
				dead := false
				for _, p := range prune {
					// Match by location: a concurrent refresh moves the
					// entry to a new (file, off) and must not be pruned.
					if p.file == e.file && p.off == e.off {
						dead = true
						break
					}
				}
				if dead {
					d.retireEntry(e)
				} else {
					live = append(live, e)
				}
			}
			if len(live) == 0 {
				delete(sh.keys, key)
			} else {
				sh.keys[key] = live
			}
			sh.mu.Unlock()
		}
		if retry && attempt < 3 {
			continue
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
}

// Delete implements dht.Storage: it durably logs a tombstone, then drops
// every value under key.
func (d *Disk) Delete(key dht.ID) {
	if d.closed.Load() {
		return
	}
	rec, _ := appendRecord(codec.GetBuf(), opDelete, key, dht.StoredValue{})
	res, ok := d.commit(rec)
	codec.PutBuf(rec)
	if !ok {
		return
	}
	d.removeKey(key)
	res.file.pending.Done()
}

// Keys implements dht.Storage.
func (d *Disk) Keys() []dht.ID {
	var keys []dht.ID
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for k := range sh.keys {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	return keys
}

// Len implements dht.Storage.
func (d *Disk) Len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.keys)
		sh.mu.Unlock()
	}
	return n
}

// ValueCount implements dht.Storage.
func (d *Disk) ValueCount() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for _, vs := range sh.keys {
			n += len(vs)
		}
		sh.mu.Unlock()
	}
	return n
}

// Bytes implements dht.Storage: live payload bytes (resident index
// overhead and on-disk garbage excluded).
func (d *Disk) Bytes() int { return int(d.liveBytes.Load()) }

// DiskSize returns the total bytes of every log file, garbage included —
// the quantity compaction shrinks.
func (d *Disk) DiskSize() int64 {
	d.fileMu.RLock()
	defer d.fileMu.RUnlock()
	var n int64
	for _, f := range d.files {
		n += f.size.Load()
	}
	return n
}

// Segments returns how many sealed segments exist alongside the active WAL.
func (d *Disk) Segments() int {
	d.fileMu.RLock()
	defer d.fileMu.RUnlock()
	n := len(d.files)
	if d.active != nil {
		n--
	}
	return n
}

// Expire implements dht.Storage: it drops every TTL-expired index entry
// and returns the count. The space itself is reclaimed by compaction,
// which Expire kicks when enough garbage has accumulated.
func (d *Disk) Expire(now time.Duration) int {
	removed := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for k, vs := range sh.keys {
			live := vs[:0]
			for _, e := range vs {
				if e.expired(now) {
					d.retireEntry(e)
					removed++
				} else {
					live = append(live, e)
				}
			}
			if len(live) == 0 {
				delete(sh.keys, k)
			} else {
				sh.keys[k] = live
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		d.maybeKickCompact()
	}
	return removed
}

// committer is the single goroutine that appends to the active WAL. Each
// wake-up absorbs every queued request into one write (group commit),
// optionally fsyncs, then acknowledges the batch. It also serves rotation
// requests from Compact, so all file swaps happen on one goroutine.
func (d *Disk) committer() {
	defer d.wg.Done()
	var batch []*commitReq
	var buf []byte
	for {
		select {
		case req := <-d.commitCh:
			batch = append(batch[:0], req)
		drain:
			for len(batch) < maxCommitBatch {
				select {
				case r := <-d.commitCh:
					batch = append(batch, r)
				default:
					break drain
				}
			}
			buf = d.commitBatch(batch, buf[:0])
		case ch := <-d.rotateCh:
			ch <- d.rotateForCompact()
		case <-d.stopCh:
			return
		}
	}
}

// commitBatch writes one group of records, acknowledges each, and rotates
// the WAL if it outgrew RotateBytes. Returns the scratch buffer for reuse.
func (d *Disk) commitBatch(batch []*commitReq, buf []byte) []byte {
	if d.failed.Load() {
		for _, r := range batch {
			r.done <- commitRes{err: errClosed}
		}
		return buf
	}
	sp := d.startSpan("store.commit")
	if sp != nil {
		sp.SetAttr("records", strconv.Itoa(len(batch)))
	}
	active := d.active
	base := active.size.Load()
	for _, r := range batch {
		r.off = base + int64(len(buf))
		buf = append(buf, r.rec...)
	}
	if sp != nil {
		sp.SetAttr("bytes", strconv.Itoa(len(buf)))
	}
	n, err := active.f.Write(buf)
	if err == nil && d.opts.Sync {
		err = active.f.Sync()
		d.met.fsyncs.Inc()
	}
	d.met.commits.Inc()
	d.met.records.Add(int64(len(batch)))
	if err != nil {
		d.met.commitErrors.Inc()
	}
	sp.FinishErr(err)
	if err != nil && n > 0 {
		// A partial record now sits at base. Replay stops at the first
		// torn record, so if it stays in front of later commits those
		// commits would be acknowledged and then silently truncated on
		// recovery. Roll the file back to the batch's base; if that
		// fails, poison the log so nothing later is acknowledged.
		if terr := d.rollbackTo(active, base); terr != nil {
			d.failed.Store(true)
			d.logf("store: log poisoned, no further commits: %v", terr)
		}
	}
	if err == nil {
		active.size.Add(int64(n))
	}
	for _, r := range batch {
		if err != nil {
			r.done <- commitRes{err: err}
			continue
		}
		active.pending.Add(1)
		r.done <- commitRes{file: active, off: r.off}
	}
	if err == nil && active.size.Load() >= d.opts.RotateBytes {
		d.rotate()
	}
	return buf
}

// rollbackTo restores the active log to size base after a failed append,
// so the fd position and on-disk bytes agree with the accounting again.
func (d *Disk) rollbackTo(active *logFile, base int64) error {
	if err := active.f.Truncate(base); err != nil {
		return fmt.Errorf("store: rollback truncate: %w", err)
	}
	if _, err := active.f.Seek(base, io.SeekStart); err != nil {
		return fmt.Errorf("store: rollback seek: %w", err)
	}
	return nil
}

// rotate seals the active WAL into a segment and opens a fresh one.
// Committer goroutine only.
func (d *Disk) rotate() {
	old := d.active
	d.met.rotates.Inc()
	d.met.fsyncs.Inc()
	if err := old.f.Sync(); err != nil {
		d.logf("store: sync before seal: %v", err)
	}
	np := segPath(d.dir, old.seq)
	if err := os.Rename(old.path, np); err != nil {
		d.logf("store: seal wal: %v", err)
		return
	}
	old.path = np
	nf, err := d.createLog(d.nextSeq)
	if err != nil {
		// Degraded: keep appending to the sealed file; replay treats the
		// two names identically.
		d.logf("store: rotate: %v", err)
		return
	}
	d.nextSeq++
	d.fileMu.Lock()
	d.files[nf.seq] = nf
	d.active = nf
	d.fileMu.Unlock()
	d.maybeKickCompact()
}

// rotateForCompact seals the active WAL (so it becomes a compaction
// input) and reserves the next sequence number for the compaction output,
// placing it between every input and the fresh WAL in replay order.
// Committer goroutine only.
func (d *Disk) rotateForCompact() rotateRes {
	old := d.active
	if err := old.f.Sync(); err != nil {
		return rotateRes{err: fmt.Errorf("store: sync before seal: %w", err)}
	}
	np := segPath(d.dir, old.seq)
	if err := os.Rename(old.path, np); err != nil {
		return rotateRes{err: fmt.Errorf("store: seal wal: %w", err)}
	}
	old.path = np
	out := d.nextSeq
	d.nextSeq++
	nf, err := d.createLog(d.nextSeq)
	if err != nil {
		return rotateRes{err: err}
	}
	d.nextSeq++
	d.fileMu.Lock()
	d.files[nf.seq] = nf
	d.active = nf
	d.fileMu.Unlock()
	return rotateRes{out: out}
}

// Close stops the committer and compactor, fsyncs and closes every log,
// and releases the directory lock. Acknowledged writes are on disk when
// it returns. Idempotent.
func (d *Disk) Close() error {
	d.closeOnce.Do(func() {
		d.closed.Store(true)
		close(d.stopCh)
		d.wg.Wait()
		var first error
		d.fileMu.Lock()
		for _, f := range d.files {
			if err := f.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := f.f.Close(); err != nil && first == nil {
				first = err
			}
		}
		d.fileMu.Unlock()
		if err := unlockDir(d.lock); err != nil && first == nil {
			first = err
		}
		d.closeErr = first
	})
	return d.closeErr
}

// Crash simulates an unclean process death for fault-injection tests: it
// abandons all background work and releases the directory lock WITHOUT
// flushing, fsyncing or sealing, leaving the on-disk state exactly as a
// kill would. Real callers use Close.
func (d *Disk) Crash() {
	d.closeOnce.Do(func() {
		d.closed.Store(true)
		close(d.stopCh)
		d.wg.Wait()
		d.fileMu.Lock()
		for _, f := range d.files {
			f.f.Close() //nolint:errcheck // crashing
		}
		d.fileMu.Unlock()
		unlockDir(d.lock) //nolint:errcheck // crashing
	})
}
