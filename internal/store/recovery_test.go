package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"piersearch/internal/dht"
)

// Crash-recovery coverage: every acknowledged Put must survive an unclean
// stop, and a WAL truncated at an arbitrary byte offset (a crash
// mid-batch) must reopen with exactly the records whose bytes fully
// survive — the torn tail is rejected, never misparsed. This reuses the
// truncation-sweep style of the codec tests at the file level.

func recKey(i int) dht.ID { return dht.StringID(fmt.Sprintf("crash-key-%d", i)) }

func recVal(i int) dht.StoredValue {
	return val(fmt.Sprintf("pub-%d", i%3), fmt.Sprintf("crash-payload-%05d", i), 0, 0)
}

func TestCrashRecoversAcknowledgedWrites(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if !d.Put(recKey(i), recVal(i)) {
			t.Fatalf("put %d not acknowledged", i)
		}
	}
	d.Crash() // unclean: no flush, no seal

	d2 := openTestDisk(t, dir, Options{})
	if got := d2.Recovery().Values; got != n {
		t.Fatalf("recovered %d values, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		got := d2.Get(recKey(i), 0)
		if len(got) != 1 || string(got[0].Data) != string(recVal(i).Data) {
			t.Fatalf("acknowledged write %d lost after crash: %v", i, got)
		}
	}
}

// walFile returns the path of the single log file holding data in dir.
func walFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") || strings.HasSuffix(e.Name(), ".seg") {
			logs = append(logs, filepath.Join(dir, e.Name()))
		}
	}
	if len(logs) != 1 {
		t.Fatalf("expected exactly one log file, found %v", logs)
	}
	return logs[0]
}

func TestTornTailTruncationSweep(t *testing.T) {
	// Build a store with known record boundaries, crash it, then reopen
	// copies truncated at a sweep of byte offsets.
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	bounds := []int64{headerLen} // bounds[i] = offset just past record i-1
	off := int64(headerLen)
	for i := 0; i < n; i++ {
		rec, _ := appendRecord(nil, opPut, recKey(i), recVal(i))
		off += int64(len(rec))
		bounds = append(bounds, off)
		if !d.Put(recKey(i), recVal(i)) {
			t.Fatalf("put %d", i)
		}
	}
	d.Crash()

	raw, err := os.ReadFile(walFile(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != bounds[len(bounds)-1] {
		t.Fatalf("wal is %d bytes, expected %d", len(raw), bounds[len(bounds)-1])
	}

	// wholeRecords reports how many records fit entirely below cut.
	wholeRecords := func(cut int64) int {
		k := 0
		for k < n && bounds[k+1] <= cut {
			k++
		}
		return k
	}

	for cut := int64(0); cut <= int64(len(raw)); cut += 3 {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, "wal-0000000000000000.log"), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d2, err := Open(tdir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		want := wholeRecords(cut)
		if got := d2.Recovery().Values; got != want {
			d2.Close()
			t.Fatalf("cut=%d: recovered %d values, want %d", cut, got, want)
		}
		for i := 0; i < want; i++ {
			if got := d2.Get(recKey(i), 0); len(got) != 1 {
				d2.Close()
				t.Fatalf("cut=%d: surviving record %d unreadable", cut, i)
			}
		}
		// The torn region must be gone: reopening again finds a clean log.
		if cut < bounds[len(bounds)-1] && cut > headerLen && d2.Recovery().TornFiles == 0 &&
			cut != bounds[wholeRecords(cut)] {
			d2.Close()
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		d2.Close()
	}
}

func TestCorruptMiddleRejectsTail(t *testing.T) {
	// A flipped byte mid-log fails that record's CRC: everything before
	// it recovers, everything after is rejected as rot.
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{headerLen}
	off := int64(headerLen)
	const n = 10
	for i := 0; i < n; i++ {
		rec, _ := appendRecord(nil, opPut, recKey(i), recVal(i))
		off += int64(len(rec))
		bounds = append(bounds, off)
		d.Put(recKey(i), recVal(i))
	}
	d.Crash()

	path := walFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside record 6's payload.
	raw[bounds[6]+5] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDisk(t, dir, Options{})
	rec := d2.Recovery()
	if rec.Values != 6 {
		t.Fatalf("recovered %d values, want 6 (records before the corruption)", rec.Values)
	}
	if rec.TornFiles != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("corruption not reported as torn tail: %+v", rec)
	}
	for i := 0; i < 6; i++ {
		if got := d2.Get(recKey(i), 0); len(got) != 1 {
			t.Fatalf("pre-corruption record %d lost", i)
		}
	}
	for i := 6; i < n; i++ {
		if got := d2.Get(recKey(i), 0); got != nil {
			t.Fatalf("post-corruption record %d resurrected: %v", i, got)
		}
	}
}

func TestCrashDuringConcurrentPuts(t *testing.T) {
	// Kill mid-batch under concurrency: whatever was acknowledged before
	// the crash must be recovered; unacknowledged writes may or may not
	// appear, but the store must open cleanly either way.
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	acked := make([][]int, workers)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := w * 1000; i < w*1000+100; i++ {
				if d.Put(recKey(i), recVal(i)) {
					acked[w] = append(acked[w], i)
				} else {
					return // store crashed under us
				}
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond) // let some batches land
	d.Crash()
	for w := 0; w < workers; w++ {
		<-done
	}

	d2 := openTestDisk(t, dir, Options{})
	for w := 0; w < workers; w++ {
		for _, i := range acked[w] {
			if got := d2.Get(recKey(i), 0); len(got) != 1 {
				t.Fatalf("acknowledged put %d lost in crash", i)
			}
		}
	}
}
