package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"piersearch/internal/codec"
	"piersearch/internal/dht"
)

// The WAL and sealed segments share one file format; see doc.go for the
// full spec. logMagic/logVersion head every file.
var logMagic = [4]byte{'P', 'S', 'L', 'G'}

const (
	logVersion = 1
	headerLen  = 5 // magic + version byte
	crcLen     = 4

	opPut    = 1
	opDelete = 2

	// maxRecordLen bounds a single record payload. It is far above any
	// real posting tuple and exists so a corrupt length prefix cannot
	// size an allocation.
	maxRecordLen = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTornTail marks a log whose tail is incomplete or fails its checksum —
// the signature of a crash mid-commit. Replay keeps everything before the
// torn region; the opener truncates the rest away.
var errTornTail = errors.New("store: torn log tail")

// record is one decoded log record.
type record struct {
	op       byte
	key      dht.ID
	pub      dht.ID
	storedAt time.Duration
	ttl      time.Duration
	data     []byte // aliases the decode buffer; copy to retain
	dataOff  int    // offset of data within the record payload (puts only)
}

// appendRecord appends the wire form of one record to dst and returns the
// extended buffer plus the offset of the payload's data bytes relative to
// the start of the appended region (-1 for deletes).
func appendRecord(dst []byte, op byte, key dht.ID, v dht.StoredValue) ([]byte, int) {
	payload := codec.GetBuf()
	payload = codec.AppendByte(payload, op)
	payload = key.AppendWire(payload)
	dataOff := -1
	if op == opPut {
		payload = v.Publisher.AppendWire(payload)
		payload = codec.AppendVarint(payload, int64(v.StoredAt))
		payload = codec.AppendVarint(payload, int64(v.TTL))
		payload = codec.AppendUvarint(payload, uint64(len(v.Data)))
		dataOff = len(payload)
		payload = append(payload, v.Data...)
	}
	start := len(dst)
	dst = codec.AppendUvarint(dst, uint64(len(payload)))
	prefix := len(dst) - start
	dst = append(dst, payload...)
	sum := crc32.Checksum(payload, crcTable)
	dst = append(dst, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	if dataOff >= 0 {
		dataOff += prefix
	}
	codec.PutBuf(payload)
	return dst, dataOff
}

// decodeRecordPayload decodes one CRC-verified record payload.
func decodeRecordPayload(payload []byte) (record, error) {
	r := codec.NewReader(payload)
	var rec record
	rec.op = r.Byte()
	rec.key = dht.ReadID(r)
	switch rec.op {
	case opPut:
		rec.pub = dht.ReadID(r)
		rec.storedAt = time.Duration(r.Varint())
		rec.ttl = time.Duration(r.Varint())
		n := r.Uvarint()
		rec.dataOff = len(payload) - r.Len()
		rec.data = r.Take(int(n))
	case opDelete:
	default:
		if r.Err() == nil {
			return rec, fmt.Errorf("store: unknown record op %d", rec.op)
		}
	}
	if err := r.Finish(); err != nil {
		return rec, err
	}
	return rec, nil
}

// appendHeader appends the file header.
func appendHeader(dst []byte) []byte {
	dst = append(dst, logMagic[:]...)
	return append(dst, logVersion)
}

// readUvarintCount reads a LEB128 integer from br, reporting how many
// bytes it consumed. A clean io.EOF before the first byte signals the end
// of the log; any other short read is a torn record.
func readUvarintCount(br *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if i == 0 && err == io.EOF {
				return 0, 0, io.EOF
			}
			return 0, i, io.ErrUnexpectedEOF
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, i + 1, errors.New("store: uvarint overflow")
			}
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, binary.MaxVarintLen64, errors.New("store: uvarint overflow")
}

// replayLog reads the header then streams records from r (size bytes in
// total), invoking fn with each verified record and the absolute file
// offset where the record's payload begins. It returns clean, the offset
// just past the last fully verified record. A truncated or checksum-failed
// tail returns errTornTail with clean marking where the rot starts; a bad
// header returns a hard error. fn errors abort the replay as-is.
func replayLog(r io.Reader, size int64, fn func(rec record, payloadOff int64) error) (clean int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, errTornTail // header never fully made it to disk
	}
	if [4]byte(hdr[:4]) != logMagic {
		return 0, fmt.Errorf("store: bad log magic %x", hdr[:4])
	}
	if hdr[4] != logVersion {
		return 0, fmt.Errorf("store: unsupported log version %d", hdr[4])
	}
	off := int64(headerLen)
	var buf []byte
	for {
		ln, n, uerr := readUvarintCount(br)
		if uerr == io.EOF {
			return off, nil // clean end of log
		}
		if uerr != nil {
			return off, errTornTail
		}
		// A record must fit in what remains of the file: anything larger
		// is a torn tail (or hostile corruption) and must not size an
		// allocation.
		if ln > maxRecordLen || int64(ln) > size-off-int64(n)-crcLen {
			return off, errTornTail
		}
		need := int(ln) + crcLen
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		frame := buf[:need]
		if _, err := io.ReadFull(br, frame); err != nil {
			return off, errTornTail
		}
		body := frame[:ln]
		if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(frame[ln:]) {
			return off, errTornTail
		}
		rec, derr := decodeRecordPayload(body)
		if derr != nil {
			return off, errTornTail
		}
		if err := fn(rec, off+int64(n)); err != nil {
			return off, err
		}
		off += int64(n) + int64(need)
	}
}
