package store

import (
	"context"

	"piersearch/internal/telemetry"
)

// diskMetrics holds the store's counters, resolved once at Open against
// the configured registry. Every field is nil-safe, so an unmetered
// store pays one nil check per event.
type diskMetrics struct {
	commits      *telemetry.Counter // group commits written
	records      *telemetry.Counter // records across all commits
	commitErrors *telemetry.Counter
	fsyncs       *telemetry.Counter // explicit fsyncs (Sync mode, seals, Close)
	rotates      *telemetry.Counter // WAL seals
	compactions  *telemetry.Counter // completed compaction runs
	reclaimed    *telemetry.Counter // bytes of dead log space reclaimed
}

// registerMetrics resolves the store's counters and gauges. Gauges read
// the Disk's own atomic accounting, so sampling them takes no locks.
func (d *Disk) registerMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	d.met = diskMetrics{
		commits:      reg.Counter("store.wal.commits"),
		records:      reg.Counter("store.wal.records"),
		commitErrors: reg.Counter("store.wal.commit_errors"),
		fsyncs:       reg.Counter("store.wal.fsyncs"),
		rotates:      reg.Counter("store.wal.rotates"),
		compactions:  reg.Counter("store.compact.runs"),
		reclaimed:    reg.Counter("store.compact.reclaimed_bytes"),
	}
	reg.Gauge("store.live_bytes", func() int64 { return d.liveBytes.Load() })
	reg.Gauge("store.disk_bytes", func() int64 { return d.DiskSize() })
	reg.Gauge("store.segments", func() int64 { return int64(d.Segments()) })
	reg.Gauge("store.keys", func() int64 { return int64(d.Len()) })
	reg.Gauge("store.values", func() int64 { return int64(d.ValueCount()) })
}

// startSpan opens a root span for a store-internal operation (a group
// commit, a compaction run). Store work runs on background goroutines
// with no query context, so each operation is its own trace; the ring
// keeps the most recent ones for /traces. Returns nil when untraced.
func (d *Disk) startSpan(name string) *telemetry.ActiveSpan {
	tr := d.opts.Tracer
	if tr == nil {
		return nil
	}
	_, sp := tr.StartRoot(context.Background(), name) //lint:allow ctxflow store background work has no query ctx; each operation is its own trace root
	return sp
}
