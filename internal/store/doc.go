// Package store holds the node-local storage engines behind the
// dht.Storage interface: Mem, the in-memory lock-striped map (the default,
// re-exported from package dht), and Disk, a log-structured disk-backed
// engine that survives restarts without republishing and holds posting
// sets larger than RAM. PIER's soft-state catalog is exactly the workload
// a log-structured layout favors: writes are append-only refreshes,
// reads are point lookups by key, and expiry makes garbage collection a
// first-class operation.
//
// # On-disk layout
//
//	<dir>/LOCK              advisory lock; one process per store directory
//	<dir>/wal-%016d.log     the active write-ahead log (exactly one)
//	<dir>/seg-%016d.seg     immutable sealed segments
//	<dir>/seg-%016d.tmp     compaction output in progress (removed on open)
//
// The WAL and segments share one file format, so sealing a WAL into a
// segment is a rename. The decimal in the name is the file's sequence
// number; replay applies files in ascending sequence order, which is the
// order records were written. Compaction reserves a sequence number
// between its inputs and the new active WAL so replay order is preserved
// across a crash.
//
// # File format
//
// Encoding uses the primitives of internal/codec (uvarint/varint lengths
// and integers, raw 20-byte IDs) plus a per-record CRC:
//
//	file    := header record*
//	header  := magic "PSLG" (4 bytes) | version (1 byte, currently 1)
//	record  := len uvarint | payload | crc32c(payload) (4 bytes, big endian)
//	payload := op 0x01 | key (20) | publisher (20) |
//	           storedAt varint | ttl varint | data (uvarint len + bytes)
//	         | op 0x02 | key (20)                            (delete)
//
// A record is the unit of atomicity: replay verifies the CRC before
// applying and stops at the first truncated or corrupt record, truncating
// a torn tail (the signature of a crash mid-commit) off the log. A torn
// tail can only lose writes that were never acknowledged: the group
// committer writes (and, with Options.Sync, fsyncs) a record before its
// Put returns.
//
// # Engine
//
// Puts are batched by a single committer goroutine (group commit): each
// Put encodes its record, hands it to the committer, and blocks until the
// batch containing it hits the file. The in-memory index maps key to the
// set of live entries — (file, offset, length, publisher, StoredAt, TTL)
// — so Get reads payloads straight off the segment files with ReadAt and
// the resident cost per value is tens of bytes regardless of payload
// size. The index is lock-striped sixteen ways, mirroring Mem.
//
// When the WAL passes Options.RotateBytes it is sealed (renamed) into a
// segment. Background compaction triggers when the dead-byte fraction of
// the sealed segments passes Options.CompactFraction: it seals the active
// WAL, streams every live, unexpired entry into one new segment, atomically
// renames it into place, repoints the index, and deletes the inputs.
// Superseded refreshes, deleted keys and TTL-expired postings are dropped,
// reclaiming their space.
//
// # Restart semantics
//
// StoredAt/TTL are measured on the owning node's clock, which restarts
// with the process. Open therefore rebases every recovered value's
// StoredAt to Options.Now() at open: recovery acts as a refresh, granting
// survivors at most one extra TTL. That slack is safe for PIER soft
// state — publishers re-put on their republish cycle and the janitor
// reclaims anything stale one TTL after the restart at the latest — and
// it errs on the side of answering queries right after a restart instead
// of dropping replicas that were live when the node went down.
package store
