package store

import (
	"bytes"
	"testing"
	"time"

	"piersearch/internal/codec"
	"piersearch/internal/dht"
)

// FuzzSegmentDecode drives the log replay path over arbitrary bytes. It
// must never panic, never allocate beyond the input's size (record length
// prefixes are validated against the remaining file before sizing a
// buffer), and must only hand out records whose payloads lie inside the
// input. Run with: go test -fuzz FuzzSegmentDecode ./internal/store
func FuzzSegmentDecode(f *testing.F) {
	mkLog := func(recs ...[]byte) []byte {
		b := appendHeader(nil)
		for _, r := range recs {
			b = append(b, r...)
		}
		return b
	}
	putRec, _ := appendRecord(nil, opPut, dht.StringID("key"), dht.StoredValue{
		Data: []byte("payload"), Publisher: dht.StringID("pub"), StoredAt: 5, TTL: time.Minute,
	})
	emptyRec, _ := appendRecord(nil, opPut, dht.StringID("key"), dht.StoredValue{Publisher: dht.StringID("pub")})
	delRec, _ := appendRecord(nil, opDelete, dht.StringID("key"), dht.StoredValue{})

	// Seed corpus: well-formed logs, torn tails, corrupt CRCs, hostile
	// lengths, bad headers.
	f.Add([]byte{})
	f.Add(mkLog())
	f.Add(mkLog(putRec))
	f.Add(mkLog(putRec, delRec, emptyRec))
	f.Add(mkLog(putRec)[:headerLen+len(putRec)/2]) // torn mid-record
	corrupt := mkLog(putRec, putRec)
	corrupt[headerLen+7] ^= 0xff
	f.Add(corrupt)
	f.Add(append(mkLog(), codec.AppendUvarint(nil, 1<<40)...)) // hostile length
	f.Add([]byte("PSLG\x02"))                                  // unknown version
	f.Add([]byte("NOPE\x01"))                                  // bad magic
	f.Add(append(mkLog(), 0x80))                               // unterminated length varint

	f.Fuzz(func(t *testing.T, data []byte) {
		applied := 0
		clean, err := replayLog(bytes.NewReader(data), int64(len(data)), func(rec record, payloadOff int64) error {
			applied++
			switch rec.op {
			case opPut:
				end := payloadOff + int64(rec.dataOff) + int64(len(rec.data))
				if payloadOff < headerLen || end > int64(len(data)) {
					t.Fatalf("record data [%d, %d) outside input of %d bytes", payloadOff, end, len(data))
				}
			case opDelete:
			default:
				t.Fatalf("replay surfaced unknown op %d", rec.op)
			}
			return nil
		})
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean offset %d outside input of %d bytes", clean, len(data))
		}
		if err == nil && clean != int64(len(data)) {
			t.Fatalf("clean replay consumed %d of %d bytes", clean, len(data))
		}
		if err != nil && applied > 0 && clean <= headerLen {
			t.Fatalf("applied %d records but clean offset %d claims none", applied, clean)
		}
	})
}
