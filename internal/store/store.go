package store

import (
	"path/filepath"

	"piersearch/internal/dht"
)

// Mem is the in-memory dht.Storage implementation: the 16-way
// lock-striped map that has always backed dht.Node. The code lives in
// package dht (as dht.Store) because dht must construct its default store
// without importing this package; Mem is the storage layer's name for it,
// so both engines are reachable from one place.
type Mem = dht.Store

// NewMem creates an empty in-memory store.
func NewMem() *Mem { return dht.NewStore() }

// MemFactory returns a dht.Config.NewStorage factory producing one
// in-memory store per node — the explicit spelling of the default.
func MemFactory() func(dht.NodeInfo) (dht.Storage, error) {
	return func(dht.NodeInfo) (dht.Storage, error) { return NewMem(), nil }
}

// DiskFactory returns a dht.Config.NewStorage factory that opens one Disk
// store per node under baseDir/<node id hex>. Cluster builders invoke it
// once per node, giving every node its own directory, WAL and segments.
func DiskFactory(baseDir string, opts Options) func(dht.NodeInfo) (dht.Storage, error) {
	return func(self dht.NodeInfo) (dht.Storage, error) {
		return Open(filepath.Join(baseDir, self.ID.String()), opts)
	}
}
