package store

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"piersearch/internal/dht"
)

// Committed benchmarks for the storage engine: write throughput under the
// batched group commit (serial vs parallel vs fsync'd) and compaction
// throughput. CI uploads the results next to the codec and pipeline
// benchmarks.

const benchPayload = 100

func benchValue(i uint64) (dht.ID, dht.StoredValue) {
	var data [benchPayload]byte
	binary.BigEndian.PutUint64(data[:8], i)
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], i%4096)
	return dht.NewID(key[:]), dht.StoredValue{
		Data:      data[:],
		Publisher: dht.StringID("bench-pub"),
		StoredAt:  0,
	}
}

func benchDisk(b *testing.B, opts Options) *Disk {
	b.Helper()
	d, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	return d
}

func BenchmarkDiskPutSerial(b *testing.B) {
	d := benchDisk(b, Options{CompactFraction: -1})
	b.SetBytes(benchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, v := benchValue(uint64(i))
		d.Put(k, v)
	}
}

func BenchmarkDiskPutGroupCommit(b *testing.B) {
	// Parallel writers share commits: the group committer batches every
	// queued record into one write, so throughput scales past the
	// serial case.
	d := benchDisk(b, Options{CompactFraction: -1})
	b.SetBytes(benchPayload)
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k, v := benchValue(seq.Add(1))
			d.Put(k, v)
		}
	})
}

func BenchmarkDiskPutGroupCommitSynced(b *testing.B) {
	// With Sync on, every group commit fsyncs once for the whole batch —
	// the amortization that makes durable writes affordable.
	d := benchDisk(b, Options{CompactFraction: -1, Sync: true})
	b.SetBytes(benchPayload)
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k, v := benchValue(seq.Add(1))
			d.Put(k, v)
		}
	})
}

func BenchmarkMemPut(b *testing.B) {
	s := NewMem()
	b.SetBytes(benchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, v := benchValue(uint64(i))
		s.Put(k, v)
	}
}

func BenchmarkDiskGet(b *testing.B) {
	d := benchDisk(b, Options{CompactFraction: -1})
	const prefill = 8192
	for i := 0; i < prefill; i++ {
		k, v := benchValue(uint64(i))
		d.Put(k, v)
	}
	b.SetBytes(benchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, _ := benchValue(uint64(i) % prefill)
		if got := d.Get(k, 0); len(got) == 0 {
			b.Fatal("benchmark value missing")
		}
	}
}

func BenchmarkCompaction(b *testing.B) {
	// One op = compacting a store where most values have expired.
	const n = 5000
	b.SetBytes(n * benchPayload)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDisk(b, Options{CompactFraction: -1, RotateBytes: 256 << 10})
		for j := 0; j < n; j++ {
			k, v := benchValue(uint64(j))
			v.TTL = time.Second
			d.Put(k, v)
		}
		now := time.Minute
		d.Expire(now)
		b.StartTimer()
		if err := d.Compact(now); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		d.Close()
		b.StartTimer()
	}
}

// TestCompactionReclaims90PctOfExpiredSpace pins the acceptance criterion:
// compacting after a mass expiry reclaims at least 90% of the space the
// expired entries occupied on disk.
func TestCompactionReclaims90PctOfExpiredSpace(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), Options{CompactFraction: -1, RotateBytes: 64 << 10})
	const expired = 2000
	const live = 20
	for i := 0; i < expired; i++ {
		d.Put(dht.StringID(fmt.Sprintf("exp-%d", i)),
			val("p", fmt.Sprintf("expired-payload-%06d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"), 0, time.Second))
	}
	expiredBytes := int64(d.Bytes())
	for i := 0; i < live; i++ {
		d.Put(dht.StringID(fmt.Sprintf("live-%d", i)),
			val("p", fmt.Sprintf("live-payload-%06d", i), 0, 0))
	}
	before := d.DiskSize()
	now := time.Minute
	if n := d.Expire(now); n != expired {
		t.Fatalf("Expire = %d, want %d", n, expired)
	}
	if err := d.Compact(now); err != nil {
		t.Fatal(err)
	}
	after := d.DiskSize()
	reclaimed := before - after
	if reclaimed < expiredBytes*9/10 {
		t.Fatalf("compaction reclaimed %d of %d expired payload bytes (<90%%); disk %d -> %d",
			reclaimed, expiredBytes, before, after)
	}
	for i := 0; i < live; i++ {
		if got := d.Get(dht.StringID(fmt.Sprintf("live-%d", i)), now); len(got) != 1 {
			t.Fatalf("live-%d lost during compaction", i)
		}
	}
}
