package store

import (
	"fmt"
	"testing"
	"time"

	"piersearch/internal/dht"
)

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d.Put(dht.StringID(fmt.Sprintf("key-%d", i)), val("pub", fmt.Sprintf("payload-%04d", i), 0, 0))
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d2 := openTestDisk(t, dir, Options{})
	if got := d2.Recovery().Values; got != 100 {
		t.Fatalf("recovered %d values, want 100", got)
	}
	for i := 0; i < 100; i++ {
		got := d2.Get(dht.StringID(fmt.Sprintf("key-%d", i)), 0)
		if len(got) != 1 || string(got[0].Data) != fmt.Sprintf("payload-%04d", i) {
			t.Fatalf("key-%d after reopen: %v", i, got)
		}
	}
}

func TestDiskReopenIsIdempotent(t *testing.T) {
	// Refreshes must not multiply across close/reopen cycles: the replay
	// dedups by (publisher, payload) exactly like the live path.
	dir := t.TempDir()
	key := dht.StringID("stable")
	for cycle := 0; cycle < 3; cycle++ {
		d, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		for i := 0; i < 5; i++ {
			d.Put(key, val("pub", "same-bytes", time.Duration(i), 0))
		}
		if n := d.ValueCount(); n != 1 {
			t.Fatalf("cycle %d: ValueCount = %d, want 1", cycle, n)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiskDeletePersists(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Put(dht.StringID("keep"), val("p", "kept", 0, 0))
	d.Put(dht.StringID("drop"), val("p", "dropped", 0, 0))
	d.Delete(dht.StringID("drop"))
	d.Close()

	d2 := openTestDisk(t, dir, Options{})
	if got := d2.Get(dht.StringID("drop"), 0); got != nil {
		t.Fatalf("deleted key resurrected after reopen: %v", got)
	}
	if got := d2.Get(dht.StringID("keep"), 0); len(got) != 1 {
		t.Fatalf("kept key lost after reopen: %v", got)
	}
}

func TestDiskRotationKeepsValuesReadable(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), Options{RotateBytes: 512, CompactFraction: -1})
	for i := 0; i < 200; i++ {
		d.Put(dht.StringID(fmt.Sprintf("k%d", i)), val("p", fmt.Sprintf("value-%04d", i), 0, 0))
	}
	if segs := d.Segments(); segs < 2 {
		t.Fatalf("expected several sealed segments, got %d", segs)
	}
	for i := 0; i < 200; i++ {
		got := d.Get(dht.StringID(fmt.Sprintf("k%d", i)), 0)
		if len(got) != 1 || string(got[0].Data) != fmt.Sprintf("value-%04d", i) {
			t.Fatalf("k%d after rotation: %v", i, got)
		}
	}
}

func TestDiskRecoveryRebasesStoredAt(t *testing.T) {
	// Values recovered at open are stamped with Options.Now — recovery
	// acts as a refresh, granting at most one extra TTL (doc.go).
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Put(dht.StringID("k"), val("p", "v", 17*time.Minute, time.Hour))
	d.Close()

	now := 3 * time.Hour // a clock far past the value's original life
	d2 := openTestDisk(t, dir, Options{Now: func() time.Duration { return now }})
	got := d2.Get(dht.StringID("k"), now+30*time.Minute)
	if len(got) != 1 {
		t.Fatalf("recovered value expired too early: %v", got)
	}
	if got[0].StoredAt != now {
		t.Fatalf("StoredAt = %v, want rebased to %v", got[0].StoredAt, now)
	}
	if got := d2.Get(dht.StringID("k"), now+2*time.Hour); got != nil {
		t.Fatalf("recovered value outlived its rebased TTL: %v", got)
	}
}

func TestDiskCompactReclaimsExpiredAndSuperseded(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), Options{CompactFraction: -1})
	// A big cohort of postings that will expire, a few that survive.
	for i := 0; i < 500; i++ {
		d.Put(dht.StringID(fmt.Sprintf("dead-%d", i)), val("p", fmt.Sprintf("expiring-payload-%06d", i), 0, time.Second))
	}
	for i := 0; i < 10; i++ {
		d.Put(dht.StringID(fmt.Sprintf("live-%d", i)), val("p", fmt.Sprintf("durable-payload-%06d", i), 0, 0))
	}
	before := d.DiskSize()
	now := time.Minute
	if n := d.Expire(now); n != 500 {
		t.Fatalf("Expire = %d, want 500", n)
	}
	if err := d.Compact(now); err != nil {
		t.Fatal(err)
	}
	after := d.DiskSize()
	if after >= before/5 {
		t.Fatalf("compaction reclaimed too little: %d -> %d bytes", before, after)
	}
	for i := 0; i < 10; i++ {
		got := d.Get(dht.StringID(fmt.Sprintf("live-%d", i)), now)
		if len(got) != 1 || string(got[0].Data) != fmt.Sprintf("durable-payload-%06d", i) {
			t.Fatalf("live-%d lost in compaction: %v", i, got)
		}
	}
	// And the compacted state must survive a reopen.
	dir := d.dir
	d.Close()
	d2 := openTestDisk(t, dir, Options{})
	if n := d2.Recovery().Values; n != 10 {
		t.Fatalf("recovered %d values after compaction, want 10", n)
	}
}

func TestDiskAutoCompaction(t *testing.T) {
	// With aggressive thresholds, expiring most of the store must shrink
	// it without an explicit Compact call.
	d := openTestDisk(t, t.TempDir(), Options{
		RotateBytes:     2048,
		CompactFraction: 0.25,
		CompactMinBytes: 1,
	})
	for i := 0; i < 300; i++ {
		d.Put(dht.StringID(fmt.Sprintf("k%d", i)), val("p", fmt.Sprintf("auto-compact-payload-%06d", i), 0, time.Second))
	}
	before := d.DiskSize()
	d.Expire(time.Minute)
	deadline := time.Now().Add(5 * time.Second)
	for d.DiskSize() >= before/2 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never reclaimed space: %d -> %d", before, d.DiskSize())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDiskPutAfterCloseIsRejected(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if d.Put(dht.StringID("k"), val("p", "v", 0, 0)) {
		t.Fatal("Put on closed store reported success")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
