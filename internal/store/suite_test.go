package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"piersearch/internal/dht"
)

// The conformance suite runs the same battery against both Storage
// implementations: dht.Node must behave identically whichever backs it.

func openTestDisk(t *testing.T, dir string, opts Options) *Disk {
	t.Helper()
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open disk store: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func forEachStorage(t *testing.T, fn func(t *testing.T, s dht.Storage)) {
	t.Helper()
	impls := map[string]func(t *testing.T) dht.Storage{
		"mem":  func(t *testing.T) dht.Storage { return NewMem() },
		"disk": func(t *testing.T) dht.Storage { return openTestDisk(t, t.TempDir(), Options{}) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) { fn(t, mk(t)) })
	}
}

func val(pub string, data string, at, ttl time.Duration) dht.StoredValue {
	return dht.StoredValue{Data: []byte(data), Publisher: dht.StringID(pub), StoredAt: at, TTL: ttl}
}

func TestStoragePutGetRefresh(t *testing.T) {
	forEachStorage(t, func(t *testing.T, s dht.Storage) {
		key := dht.StringID("k")
		if !s.Put(key, val("p1", "hello", 0, 0)) {
			t.Fatal("first put not new")
		}
		if s.Put(key, val("p1", "hello", 5, time.Minute)) {
			t.Fatal("refresh reported as new")
		}
		if s.Put(key, val("p2", "hello", 0, 0)) != true {
			t.Fatal("different publisher should be new")
		}
		if !s.Put(key, val("p1", "other", 0, 0)) {
			t.Fatal("different payload should be new")
		}
		got := s.Get(key, 1)
		if len(got) != 3 {
			t.Fatalf("got %d values, want 3", len(got))
		}
		var refreshed *dht.StoredValue
		for i := range got {
			if got[i].Publisher == dht.StringID("p1") && string(got[i].Data) == "hello" {
				refreshed = &got[i]
			}
		}
		if refreshed == nil || refreshed.StoredAt != 5 || refreshed.TTL != time.Minute {
			t.Fatalf("refresh did not update StoredAt/TTL: %+v", refreshed)
		}
		if n := s.ValueCount(); n != 3 {
			t.Fatalf("ValueCount = %d, want 3", n)
		}
		if n := s.Len(); n != 1 {
			t.Fatalf("Len = %d, want 1", n)
		}
		want := len("hello") + len("hello") + len("other")
		if n := s.Bytes(); n != want {
			t.Fatalf("Bytes = %d, want %d", n, want)
		}
	})
}

func TestStorageExpiry(t *testing.T) {
	forEachStorage(t, func(t *testing.T, s dht.Storage) {
		kShort := dht.StringID("short")
		kLong := dht.StringID("long")
		s.Put(kShort, val("p", "dies", 0, time.Second))
		s.Put(kLong, val("p", "lives", 0, time.Hour))
		if got := s.Get(kShort, 500*time.Millisecond); len(got) != 1 {
			t.Fatalf("pre-expiry Get = %d values", len(got))
		}
		// Get prunes lazily.
		if got := s.Get(kShort, 2*time.Second); got != nil {
			t.Fatalf("post-expiry Get = %v, want nil", got)
		}
		// Expire sweeps and reports the count.
		s.Put(kShort, val("p", "dies", 0, time.Second))
		s.Put(kShort, val("q", "dies2", 0, time.Second))
		if n := s.Expire(time.Minute); n != 2 {
			t.Fatalf("Expire = %d, want 2", n)
		}
		if n := s.Expire(time.Minute); n != 0 {
			t.Fatalf("second Expire = %d, want 0", n)
		}
		if got := s.Get(kLong, time.Minute); len(got) != 1 || string(got[0].Data) != "lives" {
			t.Fatalf("survivor Get = %v", got)
		}
		if n := s.Bytes(); n != len("lives") {
			t.Fatalf("Bytes after expiry = %d, want %d", n, len("lives"))
		}
	})
}

func TestStorageDeleteAndKeys(t *testing.T) {
	forEachStorage(t, func(t *testing.T, s dht.Storage) {
		for i := 0; i < 10; i++ {
			s.Put(dht.StringID(fmt.Sprintf("k%d", i)), val("p", fmt.Sprintf("v%d", i), 0, 0))
		}
		if n := len(s.Keys()); n != 10 {
			t.Fatalf("Keys = %d, want 10", n)
		}
		s.Delete(dht.StringID("k3"))
		s.Delete(dht.StringID("k7"))
		if n := s.Len(); n != 8 {
			t.Fatalf("Len after delete = %d, want 8", n)
		}
		if got := s.Get(dht.StringID("k3"), 0); got != nil {
			t.Fatalf("deleted key still returns %v", got)
		}
		if got := s.Get(dht.StringID("k5"), 0); len(got) != 1 {
			t.Fatalf("surviving key lost: %v", got)
		}
	})
}

func TestStorageConcurrent(t *testing.T) {
	forEachStorage(t, func(t *testing.T, s dht.Storage) {
		const workers = 8
		const perWorker = 50
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					key := dht.StringID(fmt.Sprintf("key-%d", i%16))
					s.Put(key, val(fmt.Sprintf("w%d", w), fmt.Sprintf("payload-%d-%d", w, i), 0, 0))
					s.Get(key, 0)
				}
			}(w)
		}
		wg.Wait()
		if n := s.ValueCount(); n != workers*perWorker {
			t.Fatalf("ValueCount = %d, want %d", n, workers*perWorker)
		}
	})
}
