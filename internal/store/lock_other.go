//go:build !unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDir on platforms without flock keeps the LOCK file open without an
// advisory lock: single-process discipline is up to the operator there.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	return f, nil
}

func unlockDir(f *os.File) error {
	if f == nil {
		return nil
	}
	return f.Close()
}
