//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/LOCK, preventing two
// store instances from appending to the same logs. flock follows the open
// file description, so a crashed process's lock dies with it and recovery
// can reopen the directory without manual cleanup.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by a running store: %w", dir, err)
	}
	return f, nil
}

// unlockDir releases the advisory lock.
func unlockDir(f *os.File) error {
	if f == nil {
		return nil
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck // close releases it regardless
	return f.Close()
}
