package store

import (
	"fmt"
	"testing"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/simnet"
)

// Integration coverage: a store.Disk-backed node must be a drop-in behind
// the dht.Storage interface — the full publish/query pipeline runs
// unchanged over disk-backed clusters, and a replica holder that crashes
// and reopens from disk answers queries without anyone republishing.

func diskEngines(t *testing.T, nodes []*dht.Node) []*pier.Engine {
	t.Helper()
	engines := make([]*pier.Engine, 0, len(nodes))
	for _, n := range nodes {
		e := pier.NewEngine(n, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(e)
		engines = append(engines, e)
	}
	return engines
}

func TestDiskBackedClusterRunsPierPipeline(t *testing.T) {
	cluster, err := dht.NewCluster(24, 7, dht.Config{
		NewStorage: DiskFactory(t.TempDir(), Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	engines := diskEngines(t, cluster.Nodes)

	pub := piersearch.NewPublisher(engines[0], piersearch.ModeBoth, piersearch.Tokenizer{})
	for i := 0; i < 8; i++ {
		f := piersearch.File{Name: fmt.Sprintf("durable gem %02d.mp3", i), Size: 1000, Host: "h", Port: 1}
		if _, err := pub.PublishFile(f); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	got, _, err := engines[5].ChainJoin(piersearch.TableInverted,
		[]pier.Value{pier.String("durable"), pier.String("gem")}, "fileID", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("chain join over disk-backed cluster = %d results, want 8", len(got))
	}
	tuples, _, err := engines[9].CacheSelect(piersearch.TableInvertedCache,
		pier.String("durable"), []string{"gem"}, "fulltext", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 8 {
		t.Fatalf("cache select over disk-backed cluster = %d results, want 8", len(tuples))
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("cluster close: %v", err)
	}
}

func TestReplicaRestartAnswersChainJoinWithoutRepublish(t *testing.T) {
	// Churn + restart over simnet.RealTime: crash every node holding a
	// posting list for the query's keywords, restart ONE of them from its
	// on-disk state, and the chain join must still find the file — served
	// purely from recovered replicas, with no republish in between.
	baseDir := t.TempDir()
	factory := DiskFactory(baseDir, Options{})
	cfg := dht.Config{NewStorage: factory}
	rt, nodes, err := simnet.NewRealTimeCluster(14, 11, cfg, simnet.Constant(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	engines := diskEngines(t, nodes)
	defer func() {
		for _, n := range nodes {
			n.Close() //nolint:errcheck // best-effort cleanup
		}
	}()

	pub := piersearch.NewPublisher(engines[0], piersearch.ModeBoth, piersearch.Tokenizer{})
	if _, err := pub.PublishFile(piersearch.File{Name: "restartable gem.mp3", Size: 42, Host: "h", Port: 1}); err != nil {
		t.Fatal(err)
	}

	// Every node holding either keyword's posting list is a replica.
	keys := []dht.ID{
		dht.NamespacedID(piersearch.TableInverted, pier.String("restartable").Key()),
		dht.NamespacedID(piersearch.TableInverted, pier.String("gem").Key()),
	}
	holder := map[int]bool{}
	for i, n := range nodes {
		for _, k := range keys {
			if len(n.Storage().Get(k, 0)) > 0 {
				holder[i] = true
			}
		}
	}
	if len(holder) == 0 {
		t.Fatal("no replica holders found")
	}

	// Crash every holder (unclean: no flush, no seal).
	for i := range holder {
		rt.Remove(nodes[i].Info().Addr)
		nodes[i].Storage().(*Disk).Crash()
	}
	var alive *dht.Node
	var queryEngine *pier.Engine
	for i, n := range nodes {
		if !holder[i] {
			alive = n
			queryEngine = engines[i]
			break
		}
	}
	if alive == nil {
		t.Skip("every node held a replica; nothing left to query from")
	}

	// With every holder gone, the join must come up empty.
	got, _, err := queryEngine.ChainJoin(piersearch.TableInverted,
		[]pier.Value{pier.String("restartable"), pier.String("gem")}, "fileID", 0)
	if err == nil && len(got) != 0 {
		t.Fatalf("join with all holders down returned %d results, want 0", len(got))
	}

	// Restart the holders from disk: same identities, same directories,
	// fresh nodes and engines. The factory reopens each recovered store.
	recovered := 0
	for i := range holder {
		reborn := dht.NewNode(nodes[i].Info(), rt, cfg) // same factory → same dir
		rt.Join(reborn)
		rebornEngine := pier.NewEngine(reborn, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(rebornEngine)
		if err := reborn.Bootstrap(alive.Info()); err != nil {
			t.Fatal(err)
		}
		recovered += reborn.Storage().(*Disk).Recovery().Values
		nodes[i] = reborn
		engines[i] = rebornEngine
	}
	if recovered == 0 {
		t.Fatal("restarted nodes recovered nothing from disk")
	}

	// No republish happened; the recovered replicas must answer. Retry
	// briefly: routing tables settle as the reborn nodes are observed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _, err = queryEngine.ChainJoin(piersearch.TableInverted,
			[]pier.Value{pier.String("restartable"), pier.String("gem")}, "fileID", 0)
		if err == nil && len(got) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("join after restart: got %d results, err=%v", len(got), err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
