package store

import (
	"bufio"
	"fmt"
	"os"
	"time"

	"piersearch/internal/dht"
)

// maybeKickCompact schedules a background compaction when the sealed
// segments carry enough dead bytes to be worth rewriting.
func (d *Disk) maybeKickCompact() {
	if d.opts.CompactFraction < 0 {
		return
	}
	var dead, total int64
	d.fileMu.RLock()
	for _, f := range d.files {
		if f == d.active {
			continue
		}
		dd, ll := f.dead.Load(), f.live.Load()
		dead += dd
		total += dd + ll
	}
	d.fileMu.RUnlock()
	if dead < d.opts.CompactMinBytes || total == 0 {
		return
	}
	if float64(dead) <= d.opts.CompactFraction*float64(total) {
		return
	}
	select {
	case d.compactKick <- struct{}{}:
	default: // one pending kick is enough
	}
}

// compactLoop runs kicked compactions until the store closes.
func (d *Disk) compactLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stopCh:
			return
		case <-d.compactKick:
			if err := d.Compact(d.opts.Now()); err != nil && err != errClosed {
				d.logf("store: background compaction: %v", err)
			}
		}
	}
}

// Compact merges every sealed segment (sealing the active WAL first) into
// one new segment, dropping TTL-expired entries as of now, superseded
// refreshes and deleted keys, then deletes the inputs. Reads and writes
// proceed concurrently: new records land in a fresh WAL ordered after the
// output, so replay order is preserved if the process dies at any point.
// One compaction runs at a time; concurrent callers serialize.
func (d *Disk) Compact(now time.Duration) error {
	sp := d.startSpan("store.compact")
	err := d.compact(now)
	sp.FinishErr(err)
	return err
}

// compact holds compactMu for the whole pass on purpose: it is the
// single-compaction admission gate, not a shard lock — nothing on the
// read or write path ever contends for it, so blocking under it (the
// rotate handshake below, the pending.Wait in step 2) is safe.
func (d *Disk) compact(now time.Duration) error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	if d.closed.Load() {
		return errClosed
	}

	// 1. Seal the WAL and reserve the output's slot in replay order.
	ch := make(chan rotateRes, 1)
	//lint:allow locksafe compactMu is the single-compaction gate, held across the pass by design
	select {
	case d.rotateCh <- ch:
	case <-d.stopCh:
		return errClosed
	}
	//lint:allow locksafe compactMu is the single-compaction gate, held across the pass by design
	rot := <-ch
	if rot.err != nil {
		return rot.err
	}
	outSeq := rot.out

	// 2. Snapshot the inputs and wait out in-flight index inserts, so
	// every acknowledged record below outSeq is visible in the index.
	inputs := make(map[uint64]*logFile)
	d.fileMu.RLock()
	for seq, f := range d.files {
		if seq < outSeq {
			inputs[seq] = f
		}
	}
	d.fileMu.RUnlock()
	for _, f := range inputs {
		//lint:allow locksafe compactMu is the single-compaction gate, held across the pass by design
		f.pending.Wait()
	}
	if len(inputs) == 0 {
		return nil
	}

	// 3. Snapshot the live, unexpired entries pointing into the inputs.
	// Expired entries are dropped from the index here (compaction's TTL
	// awareness); their space is reclaimed when the inputs are deleted.
	type moved struct {
		key dht.ID
		old entry
		new entry
	}
	var moves []moved
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for k, vs := range sh.keys {
			live := vs[:0]
			for _, e := range vs {
				if _, in := inputs[e.file]; in && e.expired(now) {
					d.retireEntry(e)
					continue
				}
				live = append(live, e)
				if _, in := inputs[e.file]; in {
					moves = append(moves, moved{key: k, old: e})
				}
			}
			if len(live) == 0 {
				delete(sh.keys, k)
			} else {
				sh.keys[k] = live
			}
		}
		sh.mu.Unlock()
	}

	// Nothing live in the inputs: skip the rewrite and just drop them.
	if len(moves) == 0 {
		return d.dropInputs(inputs, 0, 0)
	}

	// 4. Stream the snapshot into the output segment. No locks held: the
	// inputs are immutable and only this goroutine deletes files.
	tmp := segPath(d.dir, outSeq) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(appendHeader(nil)); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	off := int64(headerLen)
	var data, rec []byte
	written := int64(0)
	for i := range moves {
		m := &moves[i]
		src := inputs[m.old.file]
		if cap(data) < m.old.dlen {
			data = make([]byte, m.old.dlen)
		}
		data = data[:m.old.dlen]
		if _, err := src.f.ReadAt(data, m.old.off); err != nil {
			f.Close()
			os.Remove(tmp) //nolint:errcheck // best effort
			return fmt.Errorf("store: compact read %s: %w", src.path, err)
		}
		v := dht.StoredValue{Data: data, Publisher: m.old.pub, StoredAt: m.old.storedAt, TTL: m.old.ttl}
		var dataOff int
		rec, dataOff = appendRecord(rec[:0], opPut, m.key, v)
		if _, err := bw.Write(rec); err != nil {
			f.Close()
			os.Remove(tmp) //nolint:errcheck // best effort
			return fmt.Errorf("store: compact write: %w", err)
		}
		m.new = m.old
		m.new.file = outSeq
		m.new.off = off + int64(dataOff)
		off += int64(len(rec))
		written += int64(m.old.dlen)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best effort
		return fmt.Errorf("store: compact flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best effort
		return fmt.Errorf("store: compact sync: %w", err)
	}
	outPath := segPath(d.dir, outSeq)
	if err := os.Rename(tmp, outPath); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best effort
		return fmt.Errorf("store: compact rename: %w", err)
	}
	out := &logFile{seq: outSeq, path: outPath, f: f}
	out.size.Store(off)
	out.live.Store(written)
	d.fileMu.Lock()
	d.files[outSeq] = out
	d.fileMu.Unlock()

	// 5. Repoint the index at the output. An entry that moved on in the
	// meantime (refreshed into the new WAL, deleted, expired) stays as it
	// is and its copy in the output becomes immediate garbage.
	for i := range moves {
		m := &moves[i]
		sh := d.shard(m.key)
		sh.mu.Lock()
		vs := sh.keys[m.key]
		found := false
		for j := range vs {
			if vs[j].file == m.old.file && vs[j].off == m.old.off {
				vs[j] = m.new
				found = true
				break
			}
		}
		sh.mu.Unlock()
		if !found {
			out.retire(int64(m.old.dlen))
		}
	}

	// 6. Drop the inputs: every live entry now points elsewhere.
	return d.dropInputs(inputs, off, len(moves))
}

// dropInputs removes compacted input logs from the registry and the
// filesystem, logging the reclaim.
func (d *Disk) dropInputs(inputs map[uint64]*logFile, outBytes int64, outValues int) error {
	var reclaimed int64
	d.fileMu.Lock()
	for seq, in := range inputs {
		delete(d.files, seq)
		reclaimed += in.size.Load()
	}
	d.fileMu.Unlock()
	for _, in := range inputs {
		in.f.Close() //nolint:errcheck // read-only by now
		if err := os.Remove(in.path); err != nil {
			d.logf("store: compact remove %s: %v", in.path, err)
		}
	}
	d.met.compactions.Inc()
	if freed := reclaimed - outBytes; freed > 0 {
		d.met.reclaimed.Add(freed)
	}
	d.opts.Logger.Info("store: compacted segments",
		"logs", len(inputs), "in_bytes", reclaimed, "out_bytes", outBytes, "live_values", outValues)
	return nil
}
