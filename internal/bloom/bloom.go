// Package bloom implements Bloom filters. Gnutella leaf nodes publish Bloom
// filters of their file keywords to ultrapeers (the Query Routing Protocol
// the paper describes in §4.1), and §6.3 suggests compressed Bloom filters
// for storing term-frequency sets. Filters use double hashing over two
// 64-bit FNV-1a halves, the standard Kirsch–Mitzenmacher construction.
package bloom

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter. The zero value is not usable; create
// filters with New or NewWithEstimates.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     uint32 // number of hash functions
	count uint64 // number of Add calls (approximate element count)
}

// New creates a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64. It panics if m or k is zero.
func New(m uint64, k uint32) *Filter {
	if m == 0 || k == 0 {
		panic("bloom: m and k must be positive")
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewWithEstimates creates a filter sized for n elements at false-positive
// probability p, using the optimal m = -n ln p / (ln 2)^2 and k = m/n ln 2.
func NewWithEstimates(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// hashes returns the two base hashes for data.
func hashes(data []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(data)
	h1 := h.Sum64()
	// Second, independent-ish hash: FNV over the first hash's bytes.
	h.Reset()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(h1 >> (8 * i))
	}
	h.Write(buf[:])
	return h1, h.Sum64()
}

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	h1, h2 := hashes(data)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.count++
}

// AddString inserts s into the filter.
func (f *Filter) AddString(s string) { f.Add([]byte(s)) }

// Test reports whether data may be in the filter. False positives are
// possible; false negatives are not.
func (f *Filter) Test(data []byte) bool {
	h1, h2 := hashes(data)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// TestString reports whether s may be in the filter.
func (f *Filter) TestString(s string) bool { return f.Test([]byte(s)) }

// Count returns the number of Add calls made.
func (f *Filter) Count() uint64 { return f.count }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() uint32 { return f.k }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	var ones uint64
	for _, w := range f.bits {
		ones += uint64(popcount(w))
	}
	return float64(ones) / float64(f.m)
}

// EstimatedFalsePositiveRate returns the expected false-positive probability
// given the current fill ratio: fill^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Union ORs other into f. Both filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: incompatible union: %d/%d bits, %d/%d hashes", f.m, other.m, f.k, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.count += other.count
	return nil
}

// Intersect ANDs other into f. Both filters must have identical geometry.
// The result is a conservative filter for the set intersection: anything in
// both underlying sets still tests positive (no false negatives), while the
// false-positive rate is at most that of either input. PIER's concurrent
// chain join intersects the per-keyword posting filters this way to prune
// candidates before any posting list is shipped.
func (f *Filter) Intersect(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: incompatible intersect: %d/%d bits, %d/%d hashes", f.m, other.m, f.k, other.k)
	}
	for i := range f.bits {
		f.bits[i] &= other.bits[i]
	}
	if other.count < f.count {
		f.count = other.count // upper bound on the intersection cardinality
	}
	return nil
}

// Clone returns an independent copy of f.
func (f *Filter) Clone() *Filter {
	out := &Filter{bits: make([]uint64, len(f.bits)), m: f.m, k: f.k, count: f.count}
	copy(out.bits, f.bits)
	return out
}

// Clear resets the filter to empty.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

// SizeBytes returns the in-memory size of the bit array, the quantity a
// Gnutella leaf ships to its ultrapeer when publishing its keyword filter.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// MarshalBinary encodes the filter geometry and bit array.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 20+len(f.bits)*8)
	out = appendUint64(out, f.m)
	out = appendUint64(out, uint64(f.k))
	out = appendUint64(out, f.count)
	for _, w := range f.bits {
		out = appendUint64(out, w)
	}
	return out, nil
}

// UnmarshalBinary decodes a filter produced by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return errors.New("bloom: short buffer")
	}
	m := readUint64(data[0:])
	k := readUint64(data[8:])
	count := readUint64(data[16:])
	words := int((m + 63) / 64)
	if len(data) != 24+words*8 {
		return fmt.Errorf("bloom: buffer length %d does not match %d bits", len(data), m)
	}
	f.m = m
	f.k = uint32(k)
	f.count = count
	f.bits = make([]uint64, words)
	for i := range f.bits {
		f.bits[i] = readUint64(data[24+8*i:])
	}
	return nil
}

func appendUint64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

func readUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func popcount(x uint64) int {
	// Hacker's Delight bit-count; avoids importing math/bits for one call.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}
