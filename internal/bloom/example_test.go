package bloom_test

import (
	"fmt"

	"piersearch/internal/bloom"
)

// Example shows the Gnutella QRP use of a Bloom filter: a leaf encodes its
// filename keywords and ships the filter to its ultrapeer, which then
// forwards only plausibly-matching queries.
func Example() {
	f := bloom.NewWithEstimates(1000, 0.01)
	for _, keyword := range []string{"madonna", "like", "prayer"} {
		f.AddString(keyword)
	}
	fmt.Println(f.TestString("madonna"))
	fmt.Println(f.TestString("beatles"))
	// Output:
	// true
	// false
}
