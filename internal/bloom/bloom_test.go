package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.TestString(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n, p = 10000, 0.01
	f := NewWithEstimates(n, p)
	for i := 0; i < n; i++ {
		f.AddString(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.TestString(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 3*p {
		t.Errorf("false positive rate %.4f, want <= %.4f", rate, 3*p)
	}
	est := f.EstimatedFalsePositiveRate()
	if est > 3*p {
		t.Errorf("estimated fp rate %.4f, want <= %.4f", est, 3*p)
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New(1024, 4)
	for i := 0; i < 100; i++ {
		if f.TestString(fmt.Sprintf("x-%d", i)) {
			t.Fatalf("empty filter claimed membership of x-%d", i)
		}
	}
	if f.FillRatio() != 0 {
		t.Errorf("FillRatio = %v, want 0", f.FillRatio())
	}
}

func TestPropertyAddedAlwaysFound(t *testing.T) {
	f := New(1<<14, 5)
	prop := func(data []byte) bool {
		f.Add(data)
		return f.Test(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	a := New(1024, 3)
	b := New(1024, 3)
	a.AddString("alpha")
	b.AddString("beta")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.TestString("alpha") || !a.TestString("beta") {
		t.Error("union lost elements")
	}
	if a.Count() != 2 {
		t.Errorf("Count = %d, want 2", a.Count())
	}
}

func TestIntersect(t *testing.T) {
	a := New(1024, 3)
	b := New(1024, 3)
	for _, s := range []string{"alpha", "both"} {
		a.AddString(s)
	}
	for _, s := range []string{"beta", "both"} {
		b.AddString(s)
	}
	if err := a.Intersect(b); err != nil {
		t.Fatal(err)
	}
	if !a.TestString("both") {
		t.Error("intersect lost a common element")
	}
	if a.TestString("alpha") || a.TestString("beta") {
		t.Error("intersect kept a one-sided element")
	}
	if a.Count() != 2 {
		t.Errorf("Count = %d, want upper bound 2", a.Count())
	}
}

func TestIntersectIncompatible(t *testing.T) {
	a := New(1024, 3)
	b := New(2048, 3)
	if err := a.Intersect(b); err == nil {
		t.Error("intersect of different sizes succeeded")
	}
	c := New(1024, 4)
	if err := a.Intersect(c); err == nil {
		t.Error("intersect of different k succeeded")
	}
}

func TestUnionIncompatible(t *testing.T) {
	a := New(1024, 3)
	b := New(2048, 3)
	if err := a.Union(b); err == nil {
		t.Error("union of different sizes succeeded")
	}
	c := New(1024, 4)
	if err := a.Union(c); err == nil {
		t.Error("union of different k succeeded")
	}
}

func TestClear(t *testing.T) {
	f := New(1024, 3)
	f.AddString("x")
	f.Clear()
	if f.TestString("x") {
		t.Error("cleared filter still contains x")
	}
	if f.Count() != 0 || f.FillRatio() != 0 {
		t.Errorf("Count=%d FillRatio=%v after Clear", f.Count(), f.FillRatio())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewWithEstimates(500, 0.02)
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("k-%d-%d", i, rng.Int63())
		f.AddString(keys[i])
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Errorf("geometry mismatch after round trip")
	}
	for _, k := range keys {
		if !g.TestString(k) {
			t.Fatalf("round-tripped filter lost %q", k)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var f Filter
	if err := f.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer accepted")
	}
	g := New(128, 2)
	data, _ := g.MarshalBinary()
	if err := f.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("truncated buffer accepted")
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	for _, tc := range []struct{ m, k uint64 }{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.m, tc.k)
				}
			}()
			New(tc.m, uint32(tc.k))
		}()
	}
}

func TestNewWithEstimatesDefaults(t *testing.T) {
	// Degenerate inputs must still produce a usable filter.
	for _, f := range []*Filter{
		NewWithEstimates(0, 0.01),
		NewWithEstimates(10, 0),
		NewWithEstimates(10, 1.5),
	} {
		f.AddString("x")
		if !f.TestString("x") {
			t.Error("degenerate-parameter filter unusable")
		}
	}
}

func TestSizeBytesMatchesBits(t *testing.T) {
	f := New(1000, 3) // rounds to 1024 bits = 128 bytes
	if f.Bits() != 1024 {
		t.Errorf("Bits = %d, want 1024", f.Bits())
	}
	if f.SizeBytes() != 128 {
		t.Errorf("SizeBytes = %d, want 128", f.SizeBytes())
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(uint64(b.N)+1, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
}

func BenchmarkTest(b *testing.B) {
	f := NewWithEstimates(100000, 0.01)
	for i := 0; i < 100000; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.TestString(fmt.Sprintf("key-%d", i%200000))
	}
}
