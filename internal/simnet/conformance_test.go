package simnet_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/dht/dhttest"
	"piersearch/internal/simnet"
)

func TestRealTimeConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) *dhttest.Harness {
		// A small constant latency keeps the wall-clock suite fast while
		// still exercising the sleeping call paths.
		rt := simnet.NewRealTime(simnet.Constant(200*time.Microsecond), 1)
		rng := rand.New(rand.NewSource(7))
		next := 0
		return &dhttest.Harness{
			Transport: rt,
			NewNode: func() *dht.Node {
				n := dht.NewNode(dht.NodeInfo{ID: dht.SeededID(rng), Addr: fmt.Sprintf("rt-%d", next)}, rt, dht.Config{})
				next++
				rt.Join(n)
				t.Cleanup(func() { n.Close() }) //nolint:errcheck // test teardown
				return n
			},
			Detach: rt.Remove,
			Run: func(fns ...func()) {
				var wg sync.WaitGroup
				for _, fn := range fns {
					wg.Add(1)
					go func(fn func()) {
						defer wg.Done()
						fn()
					}(fn)
				}
				wg.Wait()
			},
		}
	})
}
