package simnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"piersearch/internal/dht"
)

func TestRealTimeClusterPutGet(t *testing.T) {
	rt, nodes, err := NewRealTimeCluster(8, 3, dht.Config{}, Constant(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].Put("ns", "key", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	values, _, err := nodes[5].Get("ns", "key")
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 || string(values[0].Data) != "hello" {
		t.Fatalf("Get = %v", values)
	}
	if rt.Messages() == 0 || rt.Bytes() == 0 {
		t.Error("traffic counters not incremented")
	}
}

func TestRealTimeImposesLatency(t *testing.T) {
	rt, nodes, err := NewRealTimeCluster(4, 5, dht.Config{}, Constant(0))
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a measurable latency after bootstrap so setup stays fast.
	rt.SetLatency(Constant(5 * time.Millisecond))
	start := time.Now()
	if _, _, err := nodes[0].Lookup(nodes[3].Info().ID); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("lookup took %v, want >= one 10ms round-trip", elapsed)
	}
}

// TestRealTimeConcurrentCalls overlaps traffic from many goroutines; run
// with -race to verify the transport and node locking under latency, where
// calls genuinely interleave in time.
func TestRealTimeConcurrentCalls(t *testing.T) {
	_, nodes, err := NewRealTimeCluster(8, 9, dht.Config{}, Constant(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				key := fmt.Sprintf("k-%d", i%3)
				if _, err := nodes[g].Put("ns", key, []byte(fmt.Sprintf("v-%d-%d", g, i))); err != nil {
					errs <- err
					return
				}
				if _, _, err := nodes[(g+3)%8].Get("ns", key); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
