package simnet

import (
	"math/rand"
	"testing"
	"time"

	"piersearch/internal/sim"
)

func TestDeliveryAfterLatency(t *testing.T) {
	s := sim.New(1)
	n := New(s, WithLatency(Constant(50*time.Millisecond)))
	var gotAt time.Duration
	var got Message
	n.Attach(2, func(m Message) {
		gotAt = s.Now()
		got = m
	})
	n.Send(Message{From: 1, To: 2, Kind: "ping", Payload: "hello", Size: 10})
	s.Run()
	if gotAt != 50*time.Millisecond {
		t.Errorf("delivered at %v, want 50ms", gotAt)
	}
	if got.Payload != "hello" || got.From != 1 {
		t.Errorf("got message %+v", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := sim.New(1)
	n := New(s, WithLatency(Constant(0)))
	n.Attach(1, func(Message) {})
	n.Send(Message{To: 1, Kind: "a", Size: 100})
	n.Send(Message{To: 1, Kind: "a", Size: 50})
	n.Send(Message{To: 1, Kind: "b", Size: 7})
	s.Run()
	st := n.Stats()
	if st.Messages != 3 || st.Bytes != 157 {
		t.Errorf("totals = %d msgs / %d bytes, want 3 / 157", st.Messages, st.Bytes)
	}
	if a := st.ByKind["a"]; a.Messages != 2 || a.Bytes != 150 {
		t.Errorf("kind a = %+v, want 2 msgs 150 bytes", a)
	}
	if b := st.ByKind["b"]; b.Messages != 1 || b.Bytes != 7 {
		t.Errorf("kind b = %+v, want 1 msg 7 bytes", b)
	}
}

func TestStatsSub(t *testing.T) {
	s := sim.New(1)
	n := New(s, WithLatency(Constant(0)))
	n.Attach(1, func(Message) {})
	n.Send(Message{To: 1, Kind: "a", Size: 10})
	s.Run()
	before := n.Stats()
	n.Send(Message{To: 1, Kind: "a", Size: 25})
	n.Send(Message{To: 1, Kind: "c", Size: 5})
	s.Run()
	d := n.Stats().Sub(before)
	if d.Messages != 2 || d.Bytes != 30 {
		t.Errorf("interval = %d msgs / %d bytes, want 2 / 30", d.Messages, d.Bytes)
	}
	if c := d.ByKind["c"]; c.Messages != 1 || c.Bytes != 5 {
		t.Errorf("interval kind c = %+v", c)
	}
}

func TestDetachedDestinationDrops(t *testing.T) {
	s := sim.New(1)
	n := New(s, WithLatency(Constant(time.Millisecond)))
	delivered := 0
	n.Attach(1, func(Message) { delivered++ })
	n.Send(Message{To: 1, Size: 1})
	n.Detach(1) // fails before delivery
	s.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0 after detach", delivered)
	}
	if n.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", n.Stats().Dropped)
	}
}

func TestLossDropsApproximateProbability(t *testing.T) {
	s := sim.New(7)
	n := New(s, WithLatency(Constant(0)), WithLoss(0.3))
	delivered := 0
	n.Attach(1, func(Message) { delivered++ })
	const total = 10000
	for i := 0; i < total; i++ {
		n.Send(Message{To: 1, Size: 1})
	}
	s.Run()
	got := float64(total-delivered) / total
	if got < 0.25 || got > 0.35 {
		t.Errorf("observed loss = %.3f, want ~0.30", got)
	}
}

func TestAttachedAndDetach(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	n.Attach(9, func(Message) {})
	if !n.Attached(9) {
		t.Error("Attached(9) = false after Attach")
	}
	n.Detach(9)
	if n.Attached(9) {
		t.Error("Attached(9) = true after Detach")
	}
}

func TestLatencyModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if d := (Constant(time.Second)).Delay(rng); d != time.Second {
		t.Errorf("Constant delay = %v", d)
	}
	u := Uniform{Min: 10 * time.Millisecond, Max: 20 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := u.Delay(rng)
		if d < u.Min || d > u.Max {
			t.Fatalf("Uniform delay %v outside [%v,%v]", d, u.Min, u.Max)
		}
	}
	// Degenerate uniform returns Min.
	if d := (Uniform{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}).Delay(rng); d != 5*time.Millisecond {
		t.Errorf("degenerate Uniform delay = %v", d)
	}
	w := DefaultWideArea()
	var sum time.Duration
	for i := 0; i < 1000; i++ {
		d := w.Delay(rng)
		if d < w.Base {
			t.Fatalf("WideArea delay %v below base %v", d, w.Base)
		}
		sum += d
	}
	mean := sum / 1000
	want := w.Base + w.Tail
	if mean < want/2 || mean > want*2 {
		t.Errorf("WideArea mean = %v, want about %v", mean, want)
	}
}

func TestMessagesDeliverInLatencyOrder(t *testing.T) {
	// With random latency, a later send can arrive earlier; the network
	// must not enforce FIFO between independent datagrams.
	s := sim.New(3)
	n := New(s, WithLatency(Uniform{Min: 0, Max: time.Second}))
	var order []int
	n.Attach(1, func(m Message) { order = append(order, m.Payload.(int)) })
	for i := 0; i < 50; i++ {
		n.Send(Message{To: 1, Payload: i, Size: 1})
	}
	s.Run()
	if len(order) != 50 {
		t.Fatalf("delivered %d, want 50", len(order))
	}
	reordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Log("warning: no reordering observed (possible but unlikely)")
	}
}
