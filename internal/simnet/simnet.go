// Package simnet provides a simulated message network on top of the
// discrete-event simulator. It models per-message latency, message loss and
// node failure, and keeps byte/message accounting so experiments can report
// bandwidth overheads the way the paper does.
//
// Network is single-threaded: all delivery happens inside sim callbacks.
// RealTime is the opposite trade — a concurrency-safe dht.Transport that
// imposes sampled latency in wall-clock time, used to measure how much the
// concurrent query/publish pipeline overlaps. Use package wire for the
// real TCP transport used by the deployment mode.
package simnet

import (
	"math/rand"
	"time"

	"piersearch/internal/sim"
)

// NodeID identifies an endpoint attached to the network.
type NodeID int

// Message is a payload in flight between two endpoints. Size is the number
// of bytes the message would occupy on a real wire and is charged to the
// network's byte counters.
type Message struct {
	From    NodeID
	To      NodeID
	Kind    string
	Payload any
	Size    int
}

// Handler receives delivered messages for one endpoint.
type Handler func(m Message)

// LatencyModel produces a one-way delay for each message.
type LatencyModel interface {
	Delay(rng *rand.Rand) time.Duration
}

// Constant is a LatencyModel with a fixed one-way delay.
type Constant time.Duration

// Delay implements LatencyModel.
func (c Constant) Delay(*rand.Rand) time.Duration { return time.Duration(c) }

// Uniform is a LatencyModel drawing delays uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Delay implements LatencyModel.
func (u Uniform) Delay(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// WideArea approximates Internet paths: a base propagation delay plus an
// exponential queueing tail. The defaults (see DefaultWideArea) land in the
// few-tens-to-low-hundreds of milliseconds regime reported for PlanetLab.
type WideArea struct {
	Base time.Duration // minimum one-way delay
	Tail time.Duration // mean of the exponential excess
}

// Delay implements LatencyModel.
func (w WideArea) Delay(rng *rand.Rand) time.Duration {
	return w.Base + time.Duration(rng.ExpFloat64()*float64(w.Tail))
}

// DefaultWideArea matches the latency regime of the paper's PlanetLab
// vantage points spread over two continents.
func DefaultWideArea() WideArea {
	return WideArea{Base: 30 * time.Millisecond, Tail: 40 * time.Millisecond}
}

// Stats accumulates traffic counters. Counters are totals since the network
// was created; use Snapshot/Sub to measure an interval.
type Stats struct {
	Messages uint64
	Bytes    uint64
	Dropped  uint64 // lost to loss probability or detached destination
	ByKind   map[string]KindStats
}

// KindStats are per-message-kind counters.
type KindStats struct {
	Messages uint64
	Bytes    uint64
}

// Sub returns the difference s - prev, for interval measurements.
func (s Stats) Sub(prev Stats) Stats {
	out := Stats{
		Messages: s.Messages - prev.Messages,
		Bytes:    s.Bytes - prev.Bytes,
		Dropped:  s.Dropped - prev.Dropped,
		ByKind:   make(map[string]KindStats, len(s.ByKind)),
	}
	for k, v := range s.ByKind {
		p := prev.ByKind[k]
		out.ByKind[k] = KindStats{Messages: v.Messages - p.Messages, Bytes: v.Bytes - p.Bytes}
	}
	return out
}

// Network is a simulated datagram network. It is not safe for concurrent
// use; all calls must happen on the simulator goroutine.
type Network struct {
	sim      *sim.Sim
	latency  LatencyModel
	loss     float64
	handlers map[NodeID]Handler
	stats    Stats
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the latency model (default: DefaultWideArea).
func WithLatency(m LatencyModel) Option { return func(n *Network) { n.latency = m } }

// WithLoss sets the independent per-message loss probability in [0, 1].
func WithLoss(p float64) Option { return func(n *Network) { n.loss = p } }

// New creates a network scheduled on s.
func New(s *sim.Sim, opts ...Option) *Network {
	n := &Network{
		sim:      s,
		latency:  DefaultWideArea(),
		handlers: make(map[NodeID]Handler),
	}
	n.stats.ByKind = make(map[string]KindStats)
	for _, o := range opts {
		o(n)
	}
	return n
}

// Sim returns the simulator this network schedules on.
func (n *Network) Sim() *sim.Sim { return n.sim }

// SetLoss changes the loss probability mid-run (failure injection).
func (n *Network) SetLoss(p float64) { n.loss = p }

// Attach registers h as the handler for id, replacing any previous handler.
func (n *Network) Attach(id NodeID, h Handler) { n.handlers[id] = h }

// Detach removes id from the network; in-flight messages to id are dropped
// at delivery time. This models node failure.
func (n *Network) Detach(id NodeID) { delete(n.handlers, id) }

// Attached reports whether id currently has a handler.
func (n *Network) Attached(id NodeID) bool {
	_, ok := n.handlers[id]
	return ok
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats {
	out := n.stats
	out.ByKind = make(map[string]KindStats, len(n.stats.ByKind))
	for k, v := range n.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// Send queues m for delivery after a sampled latency. The message is charged
// to the byte counters even if it is ultimately dropped, mirroring real
// networks where the sender pays for lost traffic.
func (n *Network) Send(m Message) {
	n.stats.Messages++
	n.stats.Bytes += uint64(m.Size)
	ks := n.stats.ByKind[m.Kind]
	ks.Messages++
	ks.Bytes += uint64(m.Size)
	n.stats.ByKind[m.Kind] = ks

	if n.loss > 0 && n.sim.Rand().Float64() < n.loss {
		n.stats.Dropped++
		return
	}
	delay := n.latency.Delay(n.sim.Rand())
	n.sim.After(delay, func() {
		h, ok := n.handlers[m.To]
		if !ok {
			n.stats.Dropped++
			return
		}
		h(m)
	})
}
