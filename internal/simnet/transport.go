package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"piersearch/internal/dht"
)

// RealTime is a dht.Transport that delivers RPCs in-process while imposing
// real wall-clock link latency drawn from a LatencyModel. Unlike Network
// (discrete-event, single-threaded), RealTime is safe for concurrent
// callers and actually blocks the calling goroutine, so it is the
// substrate for measuring what the concurrent query/publish pipeline buys:
// overlapped calls overlap their latency, sequential calls pay it serially,
// exactly as over a real wide-area network.
type RealTime struct {
	latency LatencyModel

	mu    sync.Mutex // guards rng and nodes
	rng   *rand.Rand
	nodes map[string]*dht.Node

	messages atomic.Uint64
	bytes    atomic.Uint64
}

// NewRealTime creates a transport with the given latency model (nil means
// DefaultWideArea). seed drives latency sampling.
func NewRealTime(latency LatencyModel, seed int64) *RealTime {
	if latency == nil {
		latency = DefaultWideArea()
	}
	return &RealTime{
		latency: latency,
		rng:     rand.New(rand.NewSource(seed)),
		nodes:   make(map[string]*dht.Node),
	}
}

// SetLatency swaps the latency model, e.g. zero while seeding a cluster
// and wide-area for the measured phase. nil restores DefaultWideArea.
func (rt *RealTime) SetLatency(m LatencyModel) {
	if m == nil {
		m = DefaultWideArea()
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.latency = m
}

// Join registers n so other nodes can reach it.
func (rt *RealTime) Join(n *dht.Node) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.nodes[n.Info().Addr] = n
}

// Remove detaches the node at addr, modelling an abrupt departure.
func (rt *RealTime) Remove(addr string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.nodes, addr)
}

// Messages returns the total one-way messages carried (each RPC
// round-trip counts its request and its response, matching Network's
// per-message accounting).
func (rt *RealTime) Messages() uint64 { return rt.messages.Load() }

// Bytes returns the total wire bytes carried (requests plus responses).
func (rt *RealTime) Bytes() uint64 { return rt.bytes.Load() }

// Call implements dht.Transport: it sleeps a sampled one-way delay, hands
// the request to the destination node, and sleeps another sampled delay
// for the response leg.
func (rt *RealTime) Call(to dht.NodeInfo, req *dht.Request) (*dht.Response, error) {
	return rt.CallContext(context.Background(), to, req)
}

// CallContext implements dht.ContextTransport: cancellation during either
// latency leg abandons the RPC immediately, modelling a caller that stops
// waiting for a wide-area round-trip (the request or response is simply
// lost in flight; the destination handler does not run after a request-leg
// cancel).
func (rt *RealTime) CallContext(ctx context.Context, to dht.NodeInfo, req *dht.Request) (*dht.Response, error) {
	rt.mu.Lock()
	node, ok := rt.nodes[to.Addr]
	there := rt.latency.Delay(rt.rng)
	back := rt.latency.Delay(rt.rng)
	rt.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("simnet: node %s unreachable", to.Addr)
	}
	rt.messages.Add(2)
	rt.bytes.Add(uint64(req.WireSize()))

	if err := sleepCtx(ctx, there); err != nil {
		return nil, fmt.Errorf("simnet: call %s: %w", to.Addr, err)
	}
	resp := node.HandleRPC(req)
	if err := sleepCtx(ctx, back); err != nil {
		return nil, fmt.Errorf("simnet: call %s: %w", to.Addr, err)
	}

	rt.bytes.Add(uint64(resp.WireSize()))
	return resp, nil
}

// sleepCtx sleeps for d or until ctx is done, returning ctx.Err() in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NewRealTimeCluster builds and bootstraps a DHT of n nodes over a
// RealTime transport, mirroring dht.NewCluster but with wall-clock link
// latency. Bootstrap pays real latency, so keep n modest (benchmarks use
// 12-24 nodes). When cfg.NewStorage is set it runs once per node (the
// disk-backed restart scenarios build their clusters here) and factory
// errors are returned rather than panicking.
func NewRealTimeCluster(n int, seed int64, cfg dht.Config, latency LatencyModel) (*RealTime, []*dht.Node, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("simnet: cluster size %d must be positive", n)
	}
	rt := NewRealTime(latency, seed+1)
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]*dht.Node, 0, n)
	for i := 0; i < n; i++ {
		info := dht.NodeInfo{ID: dht.SeededID(rng), Addr: fmt.Sprintf("rt-node-%d", i)}
		nodeCfg := cfg
		if cfg.NewStorage != nil {
			st, err := cfg.NewStorage(info)
			if err != nil {
				for _, prev := range nodes {
					prev.Close() //nolint:errcheck // best-effort unwind
				}
				return nil, nil, fmt.Errorf("simnet: storage for node %d: %w", i, err)
			}
			nodeCfg.NewStorage = func(dht.NodeInfo) (dht.Storage, error) { return st, nil }
		}
		node := dht.NewNode(info, rt, nodeCfg)
		rt.Join(node)
		nodes = append(nodes, node)
	}
	seedInfo := nodes[0].Info()
	// Bootstrap concurrently: each join is independent and the serial cost
	// over a latency-bearing network would dominate test time.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = nodes[i].Bootstrap(seedInfo)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, n := range nodes {
				n.Close() //nolint:errcheck // already failing
			}
			return nil, nil, fmt.Errorf("simnet: bootstrap node %d: %w", i, err)
		}
	}
	return rt, nodes, nil
}
