package telemetry

import (
	"testing"
	"time"

	"piersearch/internal/codec"
)

// FuzzDecodeSpans throws arbitrary bytes at the trailing telemetry
// blocks (trace-context + span list) exactly as a daemon decodes a
// frame from an untrusted peer: the decoder must never panic, never
// allocate unbounded memory, and anything it accepts must re-encode to
// a decodable frame.
func FuzzDecodeSpans(f *testing.F) {
	// Seed with well-formed frames covering the interesting shapes.
	f.Add([]byte{})  // legacy frame: no trailing block at all
	f.Add([]byte{0}) // untraced context, no spans

	ctx := AppendTraceContext(nil, 42, 7)
	f.Add(append(append([]byte{}, ctx...), codec.AppendUvarint(nil, 0)...))

	spans := []Span{
		{Trace: 42, ID: 9, Parent: 7, Name: "serve.get", Node: "127.0.0.1:9001",
			Start: time.Millisecond, Dur: 50 * time.Microsecond,
			Attrs: []Attr{{Key: "kind", Val: "get"}}},
		{Trace: 42, ID: 10, Parent: 9, Name: "store.commit", Node: "127.0.0.1:9001",
			Err: "disk full"},
	}
	f.Add(AppendSpans(AppendTraceContext(nil, 42, 7), spans))

	// Hostile-ish seeds steering the fuzzer at validation branches.
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // zero trace id
	f.Add([]byte{0, 0xff, 0xff, 0xff, 0xff, 0x7f})                   // absurd span count

	f.Fuzz(func(t *testing.T, data []byte) {
		r := codec.NewReader(data)
		trace, span := ReadTraceContext(r)
		got := ReadSpans(r)
		if r.Err() != nil {
			return
		}
		if trace == 0 && span != 0 {
			t.Fatalf("untraced context carried span id %x", span)
		}
		if len(got) > MaxWireSpans {
			t.Fatalf("decoder admitted %d spans, cap is %d", len(got), MaxWireSpans)
		}
		for i, s := range got {
			if s.Trace == 0 || s.ID == 0 {
				t.Fatalf("span %d has zero trace/id: %+v", i, s)
			}
			if len(s.Attrs) > MaxSpanAttrs {
				t.Fatalf("span %d has %d attrs, cap is %d", i, len(s.Attrs), MaxSpanAttrs)
			}
		}
		// Round-trip: whatever we accepted must re-encode to a frame
		// that decodes back to the same spans.
		re := AppendSpans(AppendTraceContext(nil, trace, span), got)
		r2 := codec.NewReader(re)
		t2, s2 := ReadTraceContext(r2)
		got2 := ReadSpans(r2)
		if r2.Err() != nil {
			t.Fatalf("re-encoded frame rejected: %v", r2.Err())
		}
		if t2 != trace || s2 != span {
			t.Fatalf("context round trip (%x,%x) -> (%x,%x)", trace, span, t2, s2)
		}
		if len(got2) != len(got) {
			t.Fatalf("span count round trip %d -> %d", len(got), len(got2))
		}
		for i := range got {
			a, b := got[i], got2[i]
			if a.Trace != b.Trace || a.ID != b.ID || a.Parent != b.Parent ||
				a.Name != b.Name || a.Node != b.Node || a.Err != b.Err ||
				a.Start != b.Start || a.Dur != b.Dur || len(a.Attrs) != len(b.Attrs) {
				t.Fatalf("span %d round trip:\n%+v\n%+v", i, a, b)
			}
		}
	})
}
