package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Handler serves the debug plane: /metrics (text exposition from reg),
// /traces and /traces/<id> (span ring from tr), /healthz, and
// /debug/pprof/*. Nil reg or tr disable the respective endpoints with
// a 404 rather than a panic.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ids := tr.TraceIDs()
		if len(ids) == 0 {
			fmt.Fprintln(w, "(no traces recorded)")
			return
		}
		for _, id := range ids {
			fmt.Fprintf(w, "%016x  %d spans\n", uint64(id), len(tr.TraceSpans(id)))
		}
	})
	mux.HandleFunc("/traces/", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.NotFound(w, r)
			return
		}
		raw := strings.TrimPrefix(r.URL.Path, "/traces/")
		id, err := strconv.ParseUint(raw, 16, 64)
		if err != nil || id == 0 {
			http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
			return
		}
		spans := tr.TraceSpans(TraceID(id))
		if len(spans) == 0 {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, RenderTree(spans))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenDebug binds addr and serves Handler(reg, tr) on it in a
// background goroutine. It returns the bound listener (addr may use
// port 0) and a shutdown func.
func ListenDebug(addr string, reg *Registry, tr *Tracer) (net.Listener, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(reg, tr)}
	go srv.Serve(ln)
	return ln, func() { srv.Close() }, nil
}
