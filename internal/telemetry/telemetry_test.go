package telemetry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"piersearch/internal/codec"
)

func newReader(buf []byte) *codec.Reader { return codec.NewReader(buf) }

// fakeClock is a settable clock for deterministic span timestamps.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func newTestTracer(name string, opts ...TracerOption) (*Tracer, *fakeClock) {
	c := &fakeClock{}
	return NewTracer(name, append([]TracerOption{WithClock(c.Now)}, opts...)...), c
}

func TestSpanLifecycle(t *testing.T) {
	tr, clk := newTestTracer("node-a")
	ctx, root := tr.StartRoot(context.Background(), "query")
	if root == nil {
		t.Fatal("StartRoot returned nil span")
	}
	root.SetAttr("q", "madonna")
	clk.now = 5 * time.Millisecond

	_, child := StartSpan(ctx, "lookup")
	if child == nil {
		t.Fatal("StartSpan under a traced ctx returned nil")
	}
	if child.Trace() != root.Trace() {
		t.Fatalf("child trace %x != root trace %x", child.Trace(), root.Trace())
	}
	clk.now = 8 * time.Millisecond
	child.Finish()
	clk.now = 10 * time.Millisecond
	root.Finish()

	spans := tr.TraceSpans(root.Trace())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ring order is completion order: child first.
	if spans[0].Name != "lookup" || spans[1].Name != "query" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != root.ID() {
		t.Fatalf("child parent = %x, want root %x", spans[0].Parent, root.ID())
	}
	if spans[0].Dur != 3*time.Millisecond {
		t.Fatalf("child dur = %v, want 3ms", spans[0].Dur)
	}
	if spans[1].Attrs[0] != (Attr{Key: "q", Val: "madonna"}) {
		t.Fatalf("root attrs = %+v", spans[1].Attrs)
	}
	if spans[0].Node != "node-a" {
		t.Fatalf("node stamp = %q", spans[0].Node)
	}
}

func TestNilTracerAndSpanNoOp(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if _, sp2 := StartSpan(ctx, "y"); sp2 != nil {
		t.Fatal("StartSpan on untraced ctx returned a span")
	}
	// All nil-span methods must be callable.
	sp.SetAttr("k", "v")
	sp.Finish()
	sp.FinishErr(errors.New("boom"))
	if sp.Trace() != 0 || sp.ID() != 0 || sp.Tracer() != nil {
		t.Fatal("nil span leaked state")
	}
	if tr.TraceSpans(1) != nil || tr.Spans() != nil || tr.NewTraceID() != 0 {
		t.Fatal("nil tracer returned data")
	}
}

func TestDisabledPathAllocsFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "hot")
		sp.SetAttr("k", "v")
		sp.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan allocates %v per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if tr, sp := ContextIDs(ctx); tr != 0 || sp != 0 {
			t.Fatal("untraced ctx carried ids")
		}
	})
	if allocs != 0 {
		t.Fatalf("ContextIDs allocates %v per op on untraced ctx, want 0", allocs)
	}
	var c *Counter
	var h *Histogram
	allocs = testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		h.Observe(17)
	})
	if allocs != 0 {
		t.Fatalf("nil metrics allocate %v per op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan pins the untraced query hot path: starting a
// span on a context with no trace must stay at 0 allocs/op so tracing
// costs nothing unless a query is sampled.
func BenchmarkDisabledSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "hot")
		sp.SetAttr("k", "v")
		sp.Finish()
	}
}

// BenchmarkTracedSpan measures the sampled path for comparison: one
// child span minted, annotated, and committed to the ring.
func BenchmarkTracedSpan(b *testing.B) {
	tr := NewTracer("bench")
	ctx, root := tr.StartRoot(context.Background(), "root")
	defer root.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "hot")
		sp.Finish()
	}
}

func TestRingEvictsOldestFirst(t *testing.T) {
	tr, clk := newTestTracer("n", WithRingSize(4))
	trace := tr.NewTraceID()
	for i := 0; i < 7; i++ {
		clk.now = time.Duration(i) * time.Millisecond
		sp := tr.StartHandler(trace, 0, fmt.Sprintf("s%d", i))
		sp.Finish()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest-first snapshot of the surviving window: s3..s6.
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i+3); s.Name != want {
			t.Fatalf("spans[%d] = %q, want %q", i, s.Name, want)
		}
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestDeterministicIDs(t *testing.T) {
	a1, _ := newTestTracer("same-name")
	a2, _ := newTestTracer("same-name")
	b, _ := newTestTracer("other-name")
	if a1.NewTraceID() != a2.NewTraceID() {
		t.Fatal("same node name + same sequence minted different IDs")
	}
	if a1.NewTraceID() == b.NewTraceID() {
		t.Fatal("different node names minted colliding IDs")
	}
}

func TestTraceContextWireRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		trace TraceID
		span  SpanID
	}{{0, 0}, {42, 7}, {^TraceID(0), ^SpanID(0)}} {
		buf := AppendTraceContext(nil, tc.trace, tc.span)
		r := newReader(buf)
		gt, gs := ReadTraceContext(r)
		if r.Err() != nil {
			t.Fatalf("%+v: %v", tc, r.Err())
		}
		wantSpan := tc.span
		if tc.trace == 0 {
			wantSpan = 0
		}
		if gt != tc.trace || gs != wantSpan {
			t.Fatalf("round trip (%x,%x) -> (%x,%x)", tc.trace, tc.span, gt, gs)
		}
	}
	// Legacy frame: nothing trailing decodes as untraced.
	if tr, sp := ReadTraceContext(newReader(nil)); tr != 0 || sp != 0 {
		t.Fatal("empty reader should yield zero context")
	}
	// Hostile: unknown flag, flagged-traced-but-zero id.
	if r := newReader([]byte{9}); func() bool { ReadTraceContext(r); return r.Err() == nil }() {
		t.Fatal("unknown flag accepted")
	}
	zero := append([]byte{1}, make([]byte, 16)...)
	if r := newReader(zero); func() bool { ReadTraceContext(r); return r.Err() == nil }() {
		t.Fatal("zero trace id accepted")
	}
}

func TestSpansWireRoundTrip(t *testing.T) {
	in := []Span{
		{Trace: 3, ID: 10, Parent: 0, Name: "query", Node: "a", Start: time.Millisecond, Dur: 5 * time.Millisecond},
		{Trace: 3, ID: 11, Parent: 10, Name: "serve.get", Node: "b", Start: 2 * time.Millisecond, Dur: time.Millisecond,
			Err: "not found", Attrs: []Attr{{Key: "kind", Val: "get"}, {Key: "to", Val: "b"}}},
	}
	buf := AppendSpans(nil, in)
	r := newReader(buf)
	out := ReadSpans(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Trace != b.Trace || a.ID != b.ID || a.Parent != b.Parent || a.Name != b.Name ||
			a.Node != b.Node || a.Start != b.Start || a.Dur != b.Dur || a.Err != b.Err ||
			len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("span %d: %+v != %+v", i, a, b)
		}
		for j := range a.Attrs {
			if a.Attrs[j] != b.Attrs[j] {
				t.Fatalf("span %d attr %d: %+v != %+v", i, j, a.Attrs[j], b.Attrs[j])
			}
		}
	}
	// Legacy frame: nothing trailing decodes as no spans.
	if got := ReadSpans(newReader(nil)); got != nil {
		t.Fatal("empty reader should yield nil spans")
	}
}

func TestSpansWireRejectsHostileInput(t *testing.T) {
	cases := [][]byte{
		{0xff, 0xff, 0xff, 0x7f},               // absurd count
		{2, 1, 2, 3},                           // count exceeds buffer
		append([]byte{1}, make([]byte, 30)...), // zero trace/span ids
	}
	for _, buf := range cases {
		r := newReader(buf)
		ReadSpans(r)
		if r.Err() == nil {
			t.Errorf("hostile input %v accepted", buf)
		}
	}
}

func TestBuildTreeAndRender(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 2, Parent: 1, Name: "service.query", Node: "daemon", Start: 1},
		{Trace: 1, ID: 1, Parent: 0, Name: "query", Node: "client", Start: 0},
		{Trace: 1, ID: 3, Parent: 2, Name: "dht.rpc", Node: "daemon", Start: 2},
		{Trace: 1, ID: 4, Parent: 3, Name: "serve.get", Node: "owner", Start: 3},
		{Trace: 1, ID: 3, Parent: 2, Name: "dht.rpc", Node: "daemon", Start: 2}, // duplicate
		{Trace: 1, ID: 9, Parent: 77, Name: "orphan", Node: "x", Start: 9},      // parent evicted
	}
	roots := BuildTree(spans)
	if len(roots) != 2 {
		t.Fatalf("%d roots, want 2 (tree + orphan)", len(roots))
	}
	if roots[0].Span.Name != "query" || roots[1].Span.Name != "orphan" {
		t.Fatalf("root order: %q, %q", roots[0].Span.Name, roots[1].Span.Name)
	}
	q := roots[0]
	if len(q.Children) != 1 || q.Children[0].Span.Name != "service.query" {
		t.Fatalf("query children: %+v", q.Children)
	}
	rpc := q.Children[0].Children[0]
	if rpc.Span.Name != "dht.rpc" || len(rpc.Children) != 1 || rpc.Children[0].Span.Name != "serve.get" {
		t.Fatalf("rpc subtree wrong: %+v", rpc)
	}

	if got := TraceNodes(spans); got != 4 {
		t.Fatalf("TraceNodes = %d, want 4", got)
	}
	if got := TraceDepth(spans); got != 4 {
		t.Fatalf("TraceDepth = %d, want 4", got)
	}

	out := RenderTree(spans)
	for _, want := range []string{"query", "service.query", "dht.rpc", "serve.get", "orphan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, out)
		}
	}
	if RenderTree(nil) != "(no spans)\n" {
		t.Fatalf("empty render = %q", RenderTree(nil))
	}
}

func TestRegistryWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(3)
	reg.Counter("a.count").Inc()
	reg.Gauge("c.gauge", func() int64 { return 42 })
	h := reg.Histogram("d.hist")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Names sort: a.count, b.count, c.gauge, then d.hist expansions.
	if !strings.HasPrefix(lines[0], "a.count 1") || !strings.HasPrefix(lines[1], "b.count 3") ||
		!strings.HasPrefix(lines[2], "c.gauge 42") {
		t.Fatalf("unexpected order/values:\n%s", out)
	}
	for _, want := range []string{"d.hist_count 100", "d.hist_sum 5050", "d.hist_p50", "d.hist_p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Get-or-create returns the same counter.
	if reg.Counter("a.count") != reg.Counter("a.count") {
		t.Fatal("Counter not idempotent")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 || h.Sum() != 500500 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	p50 := h.Quantile(0.50)
	// Power-of-two buckets: the estimate is coarse but must land within
	// the right order of magnitude.
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 = %v, want within [256,1024]", p50)
	}
	if q := h.Quantile(0.99); q < p50 {
		t.Fatalf("p99 %v < p50 %v", q, p50)
	}
}

func TestLoggerLevelsAndFields(t *testing.T) {
	var events []Event
	lg := NewLogger(SinkFunc(func(e Event) { events = append(events, e) }), LevelInfo)
	lg.Debug("dropped")
	lg.Info("kept", "k", "v", "n", 7)
	lg.With("node", "a").Warn("child", "err", errors.New("boom"))
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	if events[0].Msg != "kept" || events[0].Keys[1] != "n" || events[0].Vals[1] != "7" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Keys[0] != "node" || events[1].Vals[0] != "a" || events[1].Vals[1] != "boom" {
		t.Fatalf("event 1 = %+v", events[1])
	}
	var nilLog *Logger
	nilLog.Info("no-op")
	nilLog.With("a", "b").Error("still no-op")
	nilLog.Logf("fmt %d", 1)
	if nilLog.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestTextLoggerFormat(t *testing.T) {
	var b strings.Builder
	lg := NewTextLogger(&b, LevelDebug)
	lg.Info("hello", "key", "value with spaces")
	line := b.String()
	if !strings.Contains(line, " info hello ") || !strings.Contains(line, `key="value with spaces"`) {
		t.Fatalf("line = %q", line)
	}
}

func TestLogfSinkAdapter(t *testing.T) {
	var got string
	lg := NewLogger(LogfSink(func(format string, args ...any) { got = fmt.Sprintf(format, args...) }), LevelDebug)
	lg.Info("compacted", "logs", 3)
	if got != "compacted logs=3" {
		t.Fatalf("rendered %q", got)
	}
}
