package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// TreeNode is one span plus its resolved children, ready to render.
type TreeNode struct {
	Span     Span
	Children []*TreeNode
}

// BuildTree assembles spans (any order, any node mix, duplicates
// allowed — piggy-backed spans can arrive twice) into parent-linked
// trees. Spans whose parent is absent from the set become roots, so a
// partially-evicted ring still renders as a forest instead of
// vanishing. Roots and siblings sort by start time then ID for
// deterministic output.
func BuildTree(spans []Span) []*TreeNode {
	if len(spans) == 0 {
		return nil
	}
	byID := make(map[SpanID]*TreeNode, len(spans))
	order := make([]*TreeNode, 0, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			continue
		}
		if _, dup := byID[s.ID]; dup {
			continue
		}
		n := &TreeNode{Span: s}
		byID[s.ID] = n
		order = append(order, n)
	}
	var roots []*TreeNode
	for _, n := range order {
		if p, ok := byID[n.Span.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range order {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*TreeNode) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i].Span, ns[j].Span
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
}

// RenderTree renders spans as an indented tree in the same box-drawing
// style as plan.Explain, one line per span:
//
//	query q="alpha beta" @client (1.2ms)
//	└─ service.query @127.0.0.1:9001 (1.1ms)
//	   ├─ plan.Limit tuples=4 @127.0.0.1:9001
//	   └─ rpc.find_value to=127.0.0.1:9004 @127.0.0.1:9001 (210µs)
//	      └─ serve.find_value @127.0.0.1:9004 (95µs)
func RenderTree(spans []Span) string {
	roots := BuildTree(spans)
	if len(roots) == 0 {
		return "(no spans)\n"
	}
	var b strings.Builder
	for _, r := range roots {
		renderNode(&b, r, "", "")
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *TreeNode, prefix, childPrefix string) {
	s := n.Span
	b.WriteString(prefix)
	b.WriteString(s.Name)
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Val)
	}
	if s.Node != "" {
		fmt.Fprintf(b, " @%s", s.Node)
	}
	if s.Dur > 0 {
		fmt.Fprintf(b, " (%v)", s.Dur)
	}
	if s.Err != "" {
		fmt.Fprintf(b, " err=%q", s.Err)
	}
	b.WriteByte('\n')
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			renderNode(b, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			renderNode(b, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// TraceNodes returns the number of distinct node names in spans.
func TraceNodes(spans []Span) int {
	seen := make(map[string]bool, 8)
	for _, s := range spans {
		if !seen[s.Node] {
			seen[s.Node] = true
		}
	}
	return len(seen)
}

// TraceDepth returns the maximum root-to-leaf depth across the trees
// assembled from spans (1 = roots only, 0 = no spans).
func TraceDepth(spans []Span) int {
	var depth func(n *TreeNode) int
	depth = func(n *TreeNode) int {
		best := 0
		for _, c := range n.Children {
			if d := depth(c); d > best {
				best = d
			}
		}
		return best + 1
	}
	best := 0
	for _, r := range BuildTree(spans) {
		if d := depth(r); d > best {
			best = d
		}
	}
	return best
}
