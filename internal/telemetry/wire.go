package telemetry

import (
	"encoding/binary"
	"time"

	"piersearch/internal/codec"
)

// MaxWireSpans caps how many spans one frame may carry; a hostile
// count larger than this fails the decode instead of allocating.
const MaxWireSpans = 4096

// MaxSpanAttrs caps per-span attributes on the wire.
const MaxSpanAttrs = 64

// maxSpanString bounds name/node/err/attr strings coming off the wire.
const maxSpanString = 4096

// AppendTraceContext appends the versioned trace-context block (see
// doc.go): a flag byte, then trace+span IDs when traced. Appending the
// zero context costs one byte and no allocations beyond dst growth.
func AppendTraceContext(dst []byte, trace TraceID, span SpanID) []byte {
	if trace == 0 {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.BigEndian.AppendUint64(dst, uint64(trace))
	return binary.BigEndian.AppendUint64(dst, uint64(span))
}

// ReadTraceContext consumes a trace-context block. An exhausted reader
// (legacy frame with no trailing block) yields the zero context so old
// peers interoperate.
func ReadTraceContext(r *codec.Reader) (TraceID, SpanID) {
	if r.Len() == 0 {
		return 0, 0
	}
	switch flag := r.Byte(); flag {
	case 0:
		return 0, 0
	case 1:
		t := TraceID(readU64(r))
		s := SpanID(readU64(r))
		if t == 0 {
			r.Fail("trace context: flagged traced but zero trace id")
			return 0, 0
		}
		return t, s
	default:
		r.Fail("trace context: unknown flag")
		return 0, 0
	}
}

// AppendSpans appends the span-list block (see doc.go). Lists longer
// than MaxWireSpans are truncated to the most recent spans rather than
// producing a frame peers would reject.
func AppendSpans(dst []byte, spans []Span) []byte {
	if len(spans) > MaxWireSpans {
		spans = spans[len(spans)-MaxWireSpans:]
	}
	dst = codec.AppendUvarint(dst, uint64(len(spans)))
	for i := range spans {
		s := &spans[i]
		dst = binary.BigEndian.AppendUint64(dst, uint64(s.Trace))
		dst = binary.BigEndian.AppendUint64(dst, uint64(s.ID))
		dst = binary.BigEndian.AppendUint64(dst, uint64(s.Parent))
		dst = codec.AppendVarint(dst, int64(s.Start))
		dst = codec.AppendVarint(dst, int64(s.Dur))
		dst = codec.AppendString(dst, s.Name)
		dst = codec.AppendString(dst, s.Node)
		dst = codec.AppendString(dst, s.Err)
		na := len(s.Attrs)
		if na > MaxSpanAttrs {
			na = MaxSpanAttrs
		}
		dst = codec.AppendUvarint(dst, uint64(na))
		for _, a := range s.Attrs[:na] {
			dst = codec.AppendString(dst, a.Key)
			dst = codec.AppendString(dst, a.Val)
		}
	}
	return dst
}

// ReadSpans consumes a span-list block, validating every count and
// length against the remaining buffer. An exhausted reader (legacy
// frame) yields nil.
func ReadSpans(r *codec.Reader) []Span {
	if r.Len() == 0 {
		return nil
	}
	n := r.Count()
	if r.Err() != nil || n == 0 {
		return nil
	}
	if n > MaxWireSpans {
		r.Fail("span list: count exceeds MaxWireSpans")
		return nil
	}
	// Each span costs at least 3*8 id bytes + 2 varints + 3 empty
	// strings + attr count = 30 bytes; reject counts the buffer cannot
	// possibly hold before allocating.
	if n*30 > r.Len() {
		r.Fail("span list: count exceeds buffer")
		return nil
	}
	spans := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		var s Span
		s.Trace = TraceID(readU64(r))
		s.ID = SpanID(readU64(r))
		s.Parent = SpanID(readU64(r))
		s.Start = time.Duration(r.Varint())
		s.Dur = time.Duration(r.Varint())
		s.Name = spanString(r)
		s.Node = spanString(r)
		s.Err = spanString(r)
		na := r.Count()
		if r.Err() != nil {
			return nil
		}
		if na > MaxSpanAttrs {
			r.Fail("span list: attr count exceeds MaxSpanAttrs")
			return nil
		}
		if na > 0 {
			s.Attrs = make([]Attr, 0, na)
			for j := 0; j < na; j++ {
				k := spanString(r)
				v := spanString(r)
				s.Attrs = append(s.Attrs, Attr{Key: k, Val: v})
			}
		}
		if r.Err() != nil {
			return nil
		}
		if s.Trace == 0 || s.ID == 0 {
			r.Fail("span list: zero trace or span id")
			return nil
		}
		spans = append(spans, s)
	}
	return spans
}

func readU64(r *codec.Reader) uint64 {
	b := r.Take(8)
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func spanString(r *codec.Reader) string {
	n := r.Count()
	if r.Err() != nil {
		return ""
	}
	if n > maxSpanString {
		r.Fail("span list: string exceeds cap")
		return ""
	}
	b := r.Take(n)
	if r.Err() != nil {
		return ""
	}
	return string(b)
}
