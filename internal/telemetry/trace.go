package telemetry

import (
	"context"
	"sync"
	"time"
)

// TraceID identifies one query end to end across every node it
// touches. Zero means "untraced".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no parent".
type SpanID uint64

// Attr is a key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// Span is one completed unit of work inside a trace. Start and Dur are
// measured on the recording node's clock (wall-monotonic on real
// daemons, virtual time under the scale harness); cross-node clocks
// are not comparable, only the parent/child structure is.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Node   string
	Start  time.Duration
	Dur    time.Duration
	Err    string
	Attrs  []Attr
}

// DefaultRingSpans is the per-node span ring capacity when the Tracer
// is constructed with size 0.
const DefaultRingSpans = 1024

// Tracer mints IDs and collects finished spans into a bounded ring.
// All methods are safe for concurrent use; a nil *Tracer is a valid
// disabled tracer (every method no-ops).
type Tracer struct {
	node string
	base uint64
	now  func() time.Duration

	mu    sync.Mutex
	seq   uint64
	ring  []Span // allocated lazily on first record
	size  int
	next  int  // ring write cursor
	full  bool // ring has wrapped at least once
	drops uint64
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// WithClock makes the tracer timestamp spans from now instead of the
// process monotonic clock. The scale harness passes its virtual clock
// so sampled traces are deterministic.
func WithClock(now func() time.Duration) TracerOption {
	return func(t *Tracer) { t.now = now }
}

// WithRingSize bounds the span ring (0 means DefaultRingSpans). The
// oldest span is evicted first once the ring is full.
func WithRingSize(n int) TracerOption {
	return func(t *Tracer) {
		if n > 0 {
			t.size = n
		}
	}
}

// NewTracer returns a tracer recording spans on behalf of the named
// node. The name is stamped into every span so client-side assembly
// can tell which node did the work.
func NewTracer(node string, opts ...TracerOption) *Tracer {
	t := &Tracer{node: node, base: fnv64(node), size: DefaultRingSpans}
	for _, o := range opts {
		o(t)
	}
	if t.now == nil {
		t0 := time.Now()
		t.now = func() time.Duration { return time.Since(t0) }
	}
	return t
}

// Node returns the node name spans are stamped with ("" for nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// NewTraceID mints a fresh trace identifier. Deterministic given the
// node name and call order.
func (t *Tracer) NewTraceID() TraceID {
	if t == nil {
		return 0
	}
	return TraceID(t.nextID())
}

func (t *Tracer) nextID() uint64 {
	t.mu.Lock()
	t.seq++
	s := t.seq
	t.mu.Unlock()
	id := mix64(t.base ^ (s * 0x9e3779b97f4a7c15))
	if id == 0 {
		id = 1
	}
	return id
}

// record appends a finished span, evicting the oldest on overflow.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if t.ring == nil {
		t.ring = make([]Span, t.size)
	}
	if t.full {
		t.drops++
	}
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Absorb copies spans recorded on another node (piggy-backed on an RPC
// response) into this tracer's ring, preserving their Node stamp.
func (t *Tracer) Absorb(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	for _, s := range spans {
		t.record(s)
	}
}

// snapshot returns ring contents oldest-first.
func (t *Tracer) snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ring == nil {
		return nil
	}
	var out []Span
	if t.full {
		out = make([]Span, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.next]...)
	}
	return out
}

// Spans returns every span currently in the ring, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.snapshot()
}

// TraceSpans returns the ring's spans belonging to one trace, oldest
// first.
func (t *Tracer) TraceSpans(id TraceID) []Span {
	if t == nil || id == 0 {
		return nil
	}
	all := t.snapshot()
	out := make([]Span, 0, 8)
	for _, s := range all {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// TraceIDs returns the distinct trace IDs present in the ring, most
// recently touched last.
func (t *Tracer) TraceIDs() []TraceID {
	if t == nil {
		return nil
	}
	all := t.snapshot()
	seen := make(map[TraceID]bool, 8)
	var out []TraceID
	for _, s := range all {
		if !seen[s.Trace] {
			seen[s.Trace] = true
			out = append(out, s.Trace)
		}
	}
	return out
}

// Dropped reports how many spans were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// ActiveSpan is an in-progress span. A nil *ActiveSpan (returned when
// tracing is off) accepts every method as a no-op, so call sites never
// branch.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// Trace returns the span's trace ID (0 when nil).
func (s *ActiveSpan) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.span.Trace
}

// ID returns the span's own ID (0 when nil).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// SetAttr annotates the span.
func (s *ActiveSpan) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Val: val})
}

// Finish stamps the duration and commits the span to the ring.
func (s *ActiveSpan) Finish() { s.FinishErr(nil) }

// FinishErr is Finish carrying an error annotation.
func (s *ActiveSpan) FinishErr(err error) {
	if s == nil {
		return
	}
	s.span.Dur = s.t.now() - s.span.Start
	if err != nil {
		s.span.Err = err.Error()
	}
	s.t.record(s.span)
}

// Tracer returns the tracer this span records into (nil for nil
// spans), letting the span's creator absorb remote spans without
// re-deriving the tracer from a context.
func (s *ActiveSpan) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// spanRef is the context payload: which tracer to record into and the
// current position in the trace. Stored by value to keep StartSpan on
// the traced path down to the one context allocation.
type spanRef struct {
	t     *Tracer
	trace TraceID
	span  SpanID
}

type spanKey struct{}

// StartRoot mints a new trace rooted at a fresh span and returns a
// context carrying it. Nil tracers return the context unchanged and a
// nil span.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	return t.StartRemote(ctx, t.NewTraceID(), 0, name)
}

// StartRemote starts a span continuing a trace whose context arrived
// from another node (trace + parent span IDs off the wire). The
// returned context parents subsequent StartSpan calls under it.
func (t *Tracer) StartRemote(ctx context.Context, trace TraceID, parent SpanID, name string) (context.Context, *ActiveSpan) {
	if t == nil || trace == 0 {
		return ctx, nil
	}
	s := &ActiveSpan{t: t, span: Span{
		Trace:  trace,
		ID:     SpanID(t.nextID()),
		Parent: parent,
		Name:   name,
		Node:   t.node,
		Start:  t.now(),
	}}
	return context.WithValue(ctx, spanKey{}, spanRef{t: t, trace: trace, span: s.span.ID}), s
}

// StartHandler starts a server-side span continuing a trace whose
// context arrived on an RPC envelope, without deriving a context —
// transport handler signatures carry none. Nil tracers and zero trace
// IDs return a nil (no-op) span.
func (t *Tracer) StartHandler(trace TraceID, parent SpanID, name string) *ActiveSpan {
	if t == nil || trace == 0 {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{
		Trace:  trace,
		ID:     SpanID(t.nextID()),
		Parent: parent,
		Name:   name,
		Node:   t.node,
		Start:  t.now(),
	}}
}

// StartSpan starts a child of the span in ctx. When ctx carries no
// span — tracing disabled or this query unsampled — it returns ctx
// unchanged and a nil span without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	ref, ok := ctx.Value(spanKey{}).(spanRef)
	if !ok {
		return ctx, nil
	}
	return ref.t.StartRemote(ctx, ref.trace, ref.span, name)
}

// FromContext reports the trace position carried by ctx: the tracer
// recording it plus the current trace and span IDs. ok is false when
// ctx carries no span.
func FromContext(ctx context.Context) (t *Tracer, trace TraceID, span SpanID, ok bool) {
	ref, k := ctx.Value(spanKey{}).(spanRef)
	if !k {
		return nil, 0, 0, false
	}
	return ref.t, ref.trace, ref.span, true
}

// ContextIDs is FromContext reduced to the two IDs that go on the
// wire; both zero when untraced.
func ContextIDs(ctx context.Context) (TraceID, SpanID) {
	ref, ok := ctx.Value(spanKey{}).(spanRef)
	if !ok {
		return 0, 0
	}
	return ref.trace, ref.span
}

// fnv64 is FNV-1a, used to derive a per-node ID base from its name.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the SplitMix64 finalizer: spreads sequential counters into
// well-distributed IDs while staying fully deterministic.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
