package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dht.rpc.out.ping").Add(7)
	tr, _ := newTestTracer("node-a")
	_, sp := tr.StartRoot(context.Background(), "query")
	sp.Finish()
	h := Handler(reg, tr)

	if code, body := get(t, h, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "dht.rpc.out.ping 7") {
		t.Fatalf("metrics: %d %q", code, body)
	}
	code, body := get(t, h, "/traces")
	if code != 200 || !strings.Contains(body, "1 spans") {
		t.Fatalf("traces: %d %q", code, body)
	}
	id := strings.Fields(body)[0]
	if code, body := get(t, h, "/traces/"+id); code != 200 || !strings.Contains(body, "query @node-a") {
		t.Fatalf("trace tree: %d %q", code, body)
	}
	if code, _ := get(t, h, "/traces/zzz"); code != http.StatusBadRequest {
		t.Fatalf("bad trace id: %d", code)
	}
	if code, _ := get(t, h, fmt.Sprintf("/traces/%016x", uint64(0xdead))); code != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d", code)
	}
	if code, _ := get(t, h, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline: %d", code)
	}

	// Disabled planes 404 instead of panicking.
	none := Handler(nil, nil)
	for _, path := range []string{"/metrics", "/traces", "/traces/1"} {
		if code, _ := get(t, none, path); code != http.StatusNotFound {
			t.Fatalf("%s with nil plane: %d", path, code)
		}
	}
}
