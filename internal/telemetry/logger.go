package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// ParseLevel maps a flag string to a Level (defaults to info).
func ParseLevel(s string) Level {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Event is one structured log record handed to a Sink. Keys and Vals
// are parallel; Vals are pre-rendered strings so sinks never reflect.
type Event struct {
	Time  time.Time
	Level Level
	Msg   string
	Keys  []string
	Vals  []string
}

// Sink consumes log events. Sinks must be safe for concurrent use.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Logger is a leveled key-value logger. A nil *Logger discards
// everything, so packages log unconditionally. With derives child
// loggers carrying bound fields.
type Logger struct {
	sink Sink
	min  Level
	keys []string
	vals []string
}

// NewLogger returns a logger emitting events at or above min to sink.
func NewLogger(sink Sink, min Level) *Logger {
	if sink == nil {
		return nil
	}
	return &Logger{sink: sink, min: min}
}

// NewTextLogger logs "15:04:05.000 level msg k=v ..." lines to w.
func NewTextLogger(w io.Writer, min Level) *Logger {
	var mu sync.Mutex
	return NewLogger(SinkFunc(func(e Event) {
		var b strings.Builder
		b.WriteString(e.Time.Format("15:04:05.000"))
		b.WriteByte(' ')
		b.WriteString(e.Level.String())
		b.WriteByte(' ')
		b.WriteString(e.Msg)
		for i := range e.Keys {
			b.WriteByte(' ')
			b.WriteString(e.Keys[i])
			b.WriteByte('=')
			v := e.Vals[i]
			if strings.ContainsAny(v, " \t\"") {
				v = fmt.Sprintf("%q", v)
			}
			b.WriteString(v)
		}
		b.WriteByte('\n')
		mu.Lock()
		io.WriteString(w, b.String())
		mu.Unlock()
	}), min)
}

// With returns a logger that stamps the given key-value pairs onto
// every event. Args are consumed pairwise like Info's.
func (l *Logger) With(args ...any) *Logger {
	if l == nil || len(args) == 0 {
		return l
	}
	k, v := renderPairs(args)
	child := &Logger{sink: l.sink, min: l.min}
	child.keys = append(append([]string(nil), l.keys...), k...)
	child.vals = append(append([]string(nil), l.vals...), v...)
	return child
}

// Enabled reports whether events at lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool { return l != nil && lvl >= l.min }

func (l *Logger) log(lvl Level, msg string, args []any) {
	if !l.Enabled(lvl) {
		return
	}
	k, v := renderPairs(args)
	if len(l.keys) > 0 {
		k = append(append([]string(nil), l.keys...), k...)
		v = append(append([]string(nil), l.vals...), v...)
	}
	l.sink.Emit(Event{Time: time.Now(), Level: lvl, Msg: msg, Keys: k, Vals: v})
}

// Debug logs at debug level; args are alternating key, value pairs.
func (l *Logger) Debug(msg string, args ...any) { l.log(LevelDebug, msg, args) }

// Info logs at info level; args are alternating key, value pairs.
func (l *Logger) Info(msg string, args ...any) { l.log(LevelInfo, msg, args) }

// Warn logs at warn level; args are alternating key, value pairs.
func (l *Logger) Warn(msg string, args ...any) { l.log(LevelWarn, msg, args) }

// Error logs at error level; args are alternating key, value pairs.
func (l *Logger) Error(msg string, args ...any) { l.log(LevelError, msg, args) }

// Logf is the printf-shaped adapter for call sites still holding a
// func(string, ...any) (dht.Config.Logf, store.Options.Logf). Emits at
// info level with the formatted string as the message.
func (l *Logger) Logf(format string, args ...any) {
	if !l.Enabled(LevelInfo) {
		return
	}
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

// LogfSink wraps a legacy printf-style function as a Sink, rendering
// each event to one formatted line. It lets constructors that only
// have a Logf closure feed the structured logger.
func LogfSink(logf func(format string, args ...any)) Sink {
	if logf == nil {
		return nil
	}
	return SinkFunc(func(e Event) {
		var b strings.Builder
		b.WriteString(e.Msg)
		for i := range e.Keys {
			b.WriteByte(' ')
			b.WriteString(e.Keys[i])
			b.WriteByte('=')
			b.WriteString(e.Vals[i])
		}
		logf("%s", b.String())
	})
}

// renderPairs renders alternating key, value args to parallel string
// slices. A trailing key without a value gets "(MISSING)"; non-string
// keys render via %v so malformed calls degrade instead of panicking.
func renderPairs(args []any) (keys, vals []string) {
	if len(args) == 0 {
		return nil, nil
	}
	n := (len(args) + 1) / 2
	keys = make([]string, 0, n)
	vals = make([]string, 0, n)
	for i := 0; i < len(args); i += 2 {
		var k string
		if s, ok := args[i].(string); ok {
			k = s
		} else {
			k = fmt.Sprintf("%v", args[i])
		}
		keys = append(keys, k)
		if i+1 < len(args) {
			vals = append(vals, renderVal(args[i+1]))
		} else {
			vals = append(vals, "(MISSING)")
		}
	}
	return keys, vals
}

func renderVal(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}
