// Package telemetry is the observability plane: distributed query
// tracing, a lock-cheap metrics registry, and a structured leveled
// logger shared by dht, wire, service, store, hotcache and both
// daemons. It has no dependencies beyond internal/codec and the
// standard library so every layer of the stack can import it.
//
// # Tracing model
//
// A trace is identified by a 64-bit TraceID minted once per query (at
// service.OpenQuery or piersearch.QueryContext). Every unit of work —
// a DHT RPC issued, an RPC served, a plan operator, a service stream,
// a store commit or compaction batch — records a Span carrying its own
// 64-bit SpanID and the SpanID of its parent. Spans are appended to a
// bounded per-node ring (oldest evicted first) and piggy-backed on RPC
// responses, so by the time a query's Done frame reaches the client
// the client-side Tracer holds spans from every node the query
// touched. BuildTree/RenderTree assemble them into the tree printed
// next to plan.Explain output.
//
// Trace context travels in a context.Context value. When no span is in
// the context (tracing disabled or unsampled), StartSpan returns the
// context unchanged and a nil *ActiveSpan whose methods are no-ops:
// the disabled path performs zero allocations, which the alloc-pinning
// tests in this package enforce.
//
// Span IDs are minted deterministically: each Tracer derives a 64-bit
// base from its node name (FNV-1a) and mixes it with a per-tracer
// sequence counter (SplitMix64 finalizer). Under the virtual-time
// scale harness — where node names, scheduling order and clocks are
// all deterministic — two runs of the same replay therefore produce
// byte-identical sampled traces in BENCH_scale.json.
//
// # Span wire encoding
//
// Spans and trace context cross the network in two places, both
// appended as *trailing* blocks after the pre-existing payload so
// legacy frames (with nothing left in the buffer) still decode:
//
// Trace context (request direction), AppendTraceContext:
//
//	flag   byte        0 = untraced (nothing follows), 1 = traced
//	trace  8 bytes     big-endian TraceID   (present iff flag == 1)
//	span   8 bytes     big-endian SpanID    (present iff flag == 1)
//
// Span list (response direction), AppendSpans:
//
//	count  uvarint     number of spans (decoder caps at MaxWireSpans)
//	per span:
//	  trace   8 bytes big-endian
//	  id      8 bytes big-endian
//	  parent  8 bytes big-endian
//	  start   varint  nanoseconds on the recording node's clock
//	  dur     varint  nanoseconds
//	  name    uvarint length + bytes
//	  node    uvarint length + bytes
//	  err     uvarint length + bytes (empty = ok)
//	  nattrs  uvarint (decoder caps at MaxSpanAttrs)
//	  per attr: key uvarint length + bytes, val uvarint length + bytes
//
// ReadSpans validates all counts against the remaining buffer
// (codec.Reader.Count) and rejects hostile lengths; FuzzDecodeSpans
// exercises the decoder with adversarial input in CI.
//
// # Metric naming conventions
//
// Metric names are dot-separated paths: "<package>.<subsystem>.<what>"
// with an optional unit suffix ("_bytes", "_ns"). Counters count
// events or totals since process start, gauges sample current state at
// scrape time, histograms export _count, _sum and p50/p95/p99
// estimates. Label-shaped variation is encoded in the name (e.g.
// "dht.rpc.in.find_node", "service.errors.overloaded") so the text
// exposition stays a flat sorted "name value" list, greppable and
// jq-free. The full name table lives in the README's Observability
// section.
//
// # Debug endpoints
//
// Handler serves the plane over HTTP (daemon flag -debug-addr):
// /metrics (text exposition), /traces (recent trace IDs),
// /traces/<id> (rendered tree), /healthz, and /debug/pprof/*.
package telemetry
