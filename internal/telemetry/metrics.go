package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// no-ops, so packages hold counters unconditionally and skip the
// registry-nil branch on the hot path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a lock-free power-of-two-bucket histogram of int64
// observations (conventionally nanoseconds). Unlike metrics.Histogram
// (geometric buckets, single-goroutine by contract, used by the
// virtual-time harness) this one is safe for concurrent wall-clock
// callers: Observe is two atomic adds and one atomic increment.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [65]atomic.Int64 // bucket i counts values with bit length i
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// midpoints; resolution is a power of two, which is plenty for the
// p50/p95/p99 lines on /metrics.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(int64(1) << (i - 1))
			return lo * 1.5 // midpoint of [2^(i-1), 2^i)
		}
	}
	return float64(h.sum.Load())
}

// Registry is a flat, name-keyed set of counters, gauges and
// histograms exported via WriteText. Registration is idempotent: the
// first caller creates the instrument, later callers share it. A nil
// *Registry returns nil instruments, which no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a sampling function evaluated at scrape time. The
// last registration for a name wins; fn must be safe to call from the
// scrape goroutine.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// WriteText writes the registry as sorted "name value" lines — the
// format served at /metrics and logged by the SIGUSR1 snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type line struct {
		name string
		val  string
	}
	lines := make([]line, 0, len(r.counters)+len(r.gauges)+4*len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, line{name, fmt.Sprintf("%d", c.Value())})
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	for name, h := range r.hists {
		lines = append(lines, line{name + "_count", fmt.Sprintf("%d", h.Count())})
		lines = append(lines, line{name + "_sum", fmt.Sprintf("%d", h.Sum())})
		lines = append(lines, line{name + "_p50", fmt.Sprintf("%.0f", h.Quantile(0.50))})
		lines = append(lines, line{name + "_p95", fmt.Sprintf("%.0f", h.Quantile(0.95))})
		lines = append(lines, line{name + "_p99", fmt.Sprintf("%.0f", h.Quantile(0.99))})
	}
	r.mu.Unlock()
	// Gauges sample outside the lock: their closures may take other
	// locks (routing table, hotcache shards) and must not deadlock
	// against a concurrent registration.
	for name, fn := range gauges {
		lines = append(lines, line{name, fmt.Sprintf("%d", fn())})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.val); err != nil {
			return err
		}
	}
	return nil
}
