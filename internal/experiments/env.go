// Package experiments reproduces every table and figure of the paper's
// evaluation. Each Figure* function regenerates one artefact's data series;
// the cmd/ binaries print them and the root benchmarks time them. See
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for measured
// results against the paper's numbers.
package experiments

import (
	"math/rand"
	"time"

	"piersearch/internal/gnutella"
	"piersearch/internal/piersearch"
	"piersearch/internal/trace"
)

// StudyConfig sizes the Gnutella measurement study (§4). Scale 1.0 is the
// paper's trace: 75,129 hosts, ~315k file instances, 700 queries, 30
// vantage ultrapeers. Benchmarks and tests run smaller scales; the
// distributions keep their shape.
type StudyConfig struct {
	Scale float64
	// HorizonFrac is the fraction of ultrapeers a single flooded query
	// reaches (default 0.25). Real floods cover a bounded fraction of the
	// overlay regardless of TTL: dynamic-query abort, degree limits and
	// churn all truncate the horizon.
	HorizonFrac float64
	// RoundWait is the dynamic-query inter-round wait used by the latency
	// model; HopDelayMin/Max bound the per-hop forwarding delay.
	RoundWait                time.Duration
	HopDelayMin, HopDelayMax time.Duration
	Vantages                 int
	Seed                     int64
}

// Normalize fills defaults and returns the config.
func (c StudyConfig) Normalize() StudyConfig {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.HorizonFrac <= 0 || c.HorizonFrac > 1 {
		c.HorizonFrac = 0.25
	}
	if c.RoundWait <= 0 {
		c.RoundWait = 15 * time.Second
	}
	if c.HopDelayMin <= 0 {
		c.HopDelayMin = 1250 * time.Millisecond
	}
	if c.HopDelayMax <= c.HopDelayMin {
		c.HopDelayMax = 2250 * time.Millisecond
	}
	if c.Vantages <= 0 {
		c.Vantages = 30
	}
	return c
}

func scaled(v float64, scale float64, min int) int {
	n := int(v * scale)
	if n < min {
		n = min
	}
	return n
}

// StudyEnv is the materialised study environment: a topology, a library
// populated from a synthetic trace, and the vantage ultrapeers.
type StudyEnv struct {
	Cfg       StudyConfig
	Trace     *trace.Trace
	Topo      *gnutella.Topology
	Lib       *gnutella.Library
	Placement [][]int32
	Matching  [][]int // per query: matching distinct-file ranks
	Vantages  []gnutella.HostID
	rng       *rand.Rand
}

// NewStudyEnv builds the environment.
func NewStudyEnv(cfg StudyConfig) (*StudyEnv, error) {
	cfg = cfg.Normalize()
	tr := trace.Generate(trace.Config{
		DistinctFiles: scaled(100_000, cfg.Scale, 2000),
		TargetCopies:  scaled(315_546, cfg.Scale, 6000),
		Hosts:         scaled(75_129, cfg.Scale, 1500),
		Vocabulary:    scaled(40_000, cfg.Scale, 2000),
		Queries:       scaled(700, cfg.Scale, 150),
		Seed:          cfg.Seed,
	})
	ups := tr.Cfg.Hosts / 30 // ~30 hosts per ultrapeer subtree (§4.1)
	if ups < 50 {
		ups = 50
	}
	topo, err := gnutella.NewTopology(gnutella.TopologyConfig{
		Ultrapeers:    ups,
		Hosts:         tr.Cfg.Hosts,
		NewClientFrac: 0.1,
		Seed:          cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	lib := gnutella.NewLibrary(topo, piersearch.Tokenizer{})
	placement := tr.Placement(tr.Cfg.Hosts)
	for rank, hosts := range placement {
		f := tr.Files[rank]
		for _, h := range hosts {
			lib.AddFile(int(h), gnutella.SharedFile{Name: f.Name, Size: 3_500_000})
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	env := &StudyEnv{
		Cfg:       cfg,
		Trace:     tr,
		Topo:      topo,
		Lib:       lib,
		Placement: placement,
		Matching:  tr.MatchingFiles(),
		rng:       rng,
	}
	for len(env.Vantages) < cfg.Vantages {
		env.Vantages = append(env.Vantages, rng.Intn(ups))
	}
	return env, nil
}

// Replicas returns the per-rank replica counts.
func (e *StudyEnv) Replicas() []int {
	out := make([]int, len(e.Trace.Files))
	for i, f := range e.Trace.Files {
		out[i] = f.Replicas
	}
	return out
}

// FileTerms returns the per-rank term lists.
func (e *StudyEnv) FileTerms() [][]string {
	out := make([][]string, len(e.Trace.Files))
	for i, f := range e.Trace.Files {
		out[i] = f.Terms
	}
	return out
}

// vantageReach returns the ultrapeers a flood from v covers: the first
// HorizonFrac of the overlay in BFS order.
func (e *StudyEnv) vantageReach(v gnutella.HostID) []gnutella.HostID {
	k := int(e.Cfg.HorizonFrac * float64(e.Topo.NumUltrapeers()))
	return gnutella.ReachFirstK(e.Topo, v, k)
}

// reachHosts expands a reach set of ultrapeers into the covered hosts.
func (e *StudyEnv) reachHosts(reach []gnutella.HostID) map[int32]bool {
	covered := make(map[int32]bool)
	for _, u := range reach {
		for _, h := range e.Topo.HostsOf(u) {
			covered[int32(h)] = true
		}
	}
	return covered
}

// resultCount returns how many instances of the query's matching files lie
// inside the covered host set, and how many distinct files are represented.
func (e *StudyEnv) resultCount(qi int, covered map[int32]bool) (instances, distinct int) {
	for _, rank := range e.Matching[qi] {
		found := 0
		for _, h := range e.Placement[rank] {
			if covered[h] {
				found++
			}
		}
		instances += found
		if found > 0 {
			distinct++
		}
	}
	return instances, distinct
}
