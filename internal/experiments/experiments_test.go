package experiments

import (
	"math"
	"sync"
	"testing"
	"time"

	"piersearch/internal/piersearch"
)

// sharedEnv builds one small study environment for all tests (expensive).
var (
	envOnce sync.Once
	envInst *StudyEnv
	envErr  error
)

func testEnv(t testing.TB) *StudyEnv {
	t.Helper()
	envOnce.Do(func() {
		envInst, envErr = NewStudyEnv(StudyConfig{Scale: 0.06, Vantages: 30, Seed: 2})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envInst
}

func TestStudyEnvShape(t *testing.T) {
	env := testEnv(t)
	if env.Lib.NumFiles() != env.Trace.TotalInstances() {
		t.Errorf("library holds %d files, trace has %d instances", env.Lib.NumFiles(), env.Trace.TotalInstances())
	}
	if len(env.Vantages) != 30 {
		t.Errorf("vantages = %d", len(env.Vantages))
	}
	if len(env.Matching) != len(env.Trace.Queries) {
		t.Errorf("matching sets = %d", len(env.Matching))
	}
}

func TestFigure4ShapePopularQueriesBiggerResults(t *testing.T) {
	env := testEnv(t)
	s := Figure4(env)
	if len(s.Points) < 3 {
		t.Fatalf("too few buckets: %d", len(s.Points))
	}
	// Correlation: higher replication -> larger result sets. Compare the
	// first and last buckets (x = avg replication, y = result size).
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	if !(last.X > first.X && last.Y > first.Y) {
		t.Errorf("no positive correlation: first=%+v last=%+v", first, last)
	}
}

func TestFigure5UnionDominatesSingle(t *testing.T) {
	env := testEnv(t)
	series := Figure5(env)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	one, union := series[0], series[1]
	// CDF of single-node results lies above the union CDF at every x:
	// the union observes more results, so fewer queries sit at low counts.
	for i := range one.Points {
		if one.Points[i].Y < union.Points[i].Y-1e-9 {
			t.Errorf("at x=%v single CDF %.1f below union %.1f", one.Points[i].X, one.Points[i].Y, union.Points[i].Y)
		}
	}
}

func TestFigure6MonotoneInUnionSize(t *testing.T) {
	env := testEnv(t)
	series := Figure6(env)
	if len(series) != 5 {
		t.Fatalf("series = %d", len(series))
	}
	// At x=0 (zero results), more vantage points -> fewer empty queries.
	for i := 1; i < len(series); i++ {
		if series[i].YAt(0) > series[i-1].YAt(0)+1e-9 {
			t.Errorf("zero-result %% grew with more vantages: %s=%.1f > %s=%.1f",
				series[i].Name, series[i].YAt(0), series[i-1].Name, series[i-1].YAt(0))
		}
	}
}

func TestAggregatesMatchPaperDirection(t *testing.T) {
	env := testEnv(t)
	a := Aggregates(env)
	if a.PctZeroSingle <= a.PctZeroUnion {
		t.Errorf("union zero%% %.1f not below single %.1f", a.PctZeroUnion, a.PctZeroSingle)
	}
	if a.PctAtMost10Single <= a.PctAtMost10Union {
		t.Errorf("union <=10%% %.1f not below single %.1f", a.PctAtMost10Union, a.PctAtMost10Single)
	}
	// Paper: 41%/18% single, 27%/6% union, >=66% reduction. Shapes only:
	// a substantial fraction of queries see few results, and the union
	// removes most empty queries.
	if a.PctAtMost10Single < 15 || a.PctAtMost10Single > 75 {
		t.Errorf("<=10 results (single) = %.1f%%, want a substantial fraction", a.PctAtMost10Single)
	}
	if a.ZeroReductionPct < 40 {
		t.Errorf("zero-result reduction = %.1f%%, want >= 40%%", a.ZeroReductionPct)
	}
}

func TestFigure7RareSlowerThanPopular(t *testing.T) {
	env := testEnv(t)
	s := Figure7(env)
	if len(s.Points) < 3 {
		t.Fatalf("buckets = %d", len(s.Points))
	}
	smallest, largest := s.Points[0], s.Points[len(s.Points)-1]
	if smallest.Y <= largest.Y {
		t.Errorf("small result sets (%.0f results: %.1fs) not slower than large (%.0f results: %.1fs)",
			smallest.X, smallest.Y, largest.X, largest.Y)
	}
	// Shape: rare items several times slower than popular ones. (Absolute
	// values grow with network depth; the full-scale run lands in the
	// paper's 6s / 73s regime — see EXPERIMENTS.md.)
	if smallest.Y < 2.5*largest.Y {
		t.Errorf("rare latency %.1fs not well above popular %.1fs", smallest.Y, largest.Y)
	}
	if smallest.Y < 10 {
		t.Errorf("rare-item latency %.1fs, want dynamic-query round waits to dominate", smallest.Y)
	}
	if largest.Y > 20 {
		t.Errorf("popular-item latency %.1fs, want seconds", largest.Y)
	}
}

func TestFigure8DiminishingReturns(t *testing.T) {
	s, err := Figure8(Figure8Config{Ultrapeers: 3000, Sources: 3, MaxTTL: 7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 7 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Monotone coverage, and marginal cost per new ultrapeer grows.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y {
			t.Fatal("coverage decreased with TTL")
		}
	}
	firstCost := s.Points[1].X - s.Points[0].X
	lastCost := s.Points[len(s.Points)-1].X - s.Points[len(s.Points)-2].X
	firstGain := s.Points[1].Y - s.Points[0].Y
	lastGain := s.Points[len(s.Points)-1].Y - s.Points[len(s.Points)-2].Y
	if firstGain > 0 && lastGain > 0 {
		if lastCost/lastGain <= firstCost/firstGain {
			t.Errorf("no diminishing returns: early %.4f, late %.4f kmsgs/up", firstCost/firstGain, lastCost/lastGain)
		}
	}
}

func TestFigure9Anchors(t *testing.T) {
	env := testEnv(t)
	series := Figure9(env)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for i, hp := range []float64{0.05, 0.15, 0.30} {
		got := series[i].YAt(0)
		if math.Abs(got-hp) > 0.01 {
			t.Errorf("%s at threshold 0 = %.3f, want ~%.2f", series[i].Name, got, hp)
		}
		final := series[i].Points[len(series[i].Points)-1].Y
		if final <= got {
			t.Errorf("%s did not increase with threshold", series[i].Name)
		}
	}
}

func TestFigure10Anchor23Percent(t *testing.T) {
	env := testEnv(t)
	s := Figure10(env)
	if s.YAt(0) != 0 {
		t.Errorf("threshold 0 publishes %.1f%%", s.YAt(0))
	}
	at1 := s.YAt(1)
	if at1 < 12 || at1 > 35 {
		t.Errorf("threshold 1 publishes %.1f%%, paper anchor is 23%%", at1)
	}
	// Monotone with diminishing increments.
	for i := 2; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y {
			t.Fatal("publishing overhead decreased")
		}
	}
}

func TestFigure11And12Anchors(t *testing.T) {
	env := testEnv(t)
	qr := Figure11(env)
	for i, hp := range []float64{5, 15, 30} {
		at0 := qr[i].YAt(0)
		if math.Abs(at0-hp) > 0.5 {
			t.Errorf("QR at threshold 0 for horizon %v%% = %.1f, want ~%v", hp, at0, hp)
		}
		at1 := qr[i].YAt(1)
		if at1 < at0+15 {
			t.Errorf("QR jump at threshold 1 for horizon %v%%: %.1f -> %.1f, want sharp increase", hp, at0, at1)
		}
	}
	qdr := Figure12(env)
	for i := range qdr {
		if qdr[i].YAt(2) < qr[i].YAt(2) {
			t.Errorf("QDR below QR at threshold 2 for %s", qdr[i].Name)
		}
	}
	// Paper: threshold 2, horizon 15% -> QDR ~93%; allow a broad band.
	if got := qdr[1].YAt(2); got < 70 {
		t.Errorf("QDR(thr=2, horizon 15%%) = %.1f, want >= 70", got)
	}
}

func TestFigure13SchemeOrdering(t *testing.T) {
	env := testEnv(t)
	series := Figure13(env)
	byName := map[string]float64{}
	for _, s := range series {
		byName[s.Name] = s.YAt(50) // mid budget
	}
	if byName["Perfect"] < byName["SAM(15%)"]-1 {
		t.Errorf("Perfect %.1f below SAM %.1f", byName["Perfect"], byName["SAM(15%)"])
	}
	if byName["SAM(15%)"] <= byName["Random"] {
		t.Errorf("SAM %.1f not above Random %.1f", byName["SAM(15%)"], byName["Random"])
	}
	if byName["TF"] <= byName["Random"] || byName["TPF"] <= byName["Random"] {
		t.Errorf("TF %.1f / TPF %.1f not above Random %.1f", byName["TF"], byName["TPF"], byName["Random"])
	}
}

func TestFigure14And15(t *testing.T) {
	env := testEnv(t)
	f14 := Figure14(env)
	if len(f14) != 5 {
		t.Fatalf("figure 14 series = %d", len(f14))
	}
	for _, s := range f14 {
		if s.YAt(100) < s.YAt(0) {
			t.Errorf("%s QDR decreased with budget", s.Name)
		}
	}
	f15 := Figure15(env)
	if len(f15) != 4 {
		t.Fatalf("figure 15 series = %d", len(f15))
	}
	mid := func(name string) float64 {
		for _, s := range f15 {
			if s.Name == name {
				return s.YAt(50)
			}
		}
		return math.NaN()
	}
	if mid("SAM(100%)") < mid("SAM(5%)")-2 {
		t.Errorf("SAM(100%%) %.1f below SAM(5%%) %.1f", mid("SAM(100%)"), mid("SAM(5%)"))
	}
	if mid("SAM(5%)") <= mid("Random") {
		t.Errorf("SAM(5%%) %.1f not above Random %.1f", mid("SAM(5%)"), mid("Random"))
	}
}

func TestPostingListShippingRareCheaper(t *testing.T) {
	env := testEnv(t)
	res, err := PostingListShipping(env, 24, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != len(env.Trace.Queries) {
		t.Errorf("replayed %d queries", res.Queries)
	}
	if res.AvgShippedRare >= res.AvgShippedAll {
		t.Errorf("rare queries shipped %.1f >= average %.1f", res.AvgShippedRare, res.AvgShippedAll)
	}
	if res.Ratio < 1.5 {
		t.Errorf("ratio = %.2f, want rare queries several times cheaper", res.Ratio)
	}
}

func TestCrawlStudy(t *testing.T) {
	env := testEnv(t)
	c := CrawlStudy(env)
	if c.HostsSeen <= 0 || c.UltrapeersSeen <= 0 {
		t.Errorf("crawl summary = %+v", c)
	}
	if c.HostsSeen > env.Topo.NumHosts() {
		t.Errorf("crawl saw %d hosts of %d", c.HostsSeen, env.Topo.NumHosts())
	}
	if c.EstimatedDuration <= 0 || c.EstimatedDuration > time.Hour {
		t.Errorf("duration = %v", c.EstimatedDuration)
	}
}

func TestRunDeployment(t *testing.T) {
	res, err := RunDeployment(DeployConfig{
		Ultrapeers:     120,
		Hosts:          1200,
		HybridCount:    12,
		WarmupQueries:  60,
		MeasureQueries: 50,
		Strategy:       piersearch.StrategyJoin,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesPublished == 0 {
		t.Error("deployment published nothing")
	}
	if res.AvgPublishBytes <= 0 {
		t.Error("no publish bytes")
	}
	if res.GnutellaAnswered+res.PierAnswered+res.Unanswered != 50 {
		t.Errorf("accounting mismatch: %+v", res)
	}
	if res.PierAnswered > 0 {
		if res.AvgHybridLatency <= 30*time.Second {
			t.Errorf("hybrid latency %v not above the 30s timeout", res.AvgHybridLatency)
		}
		if res.AvgPierQueryBytes <= 0 {
			t.Error("no PIER query bytes measured")
		}
		if res.ReductionPct <= 0 {
			t.Errorf("zero-result reduction = %.1f%%, want positive", res.ReductionPct)
		}
	}
	if res.GnutellaAnswered > 0 && (res.AvgGnutellaLatency <= 0 || res.AvgGnutellaLatency > 30*time.Second) {
		t.Errorf("gnutella latency = %v", res.AvgGnutellaLatency)
	}
}
