package experiments

import (
	"testing"
)

func TestExtensionHorizonLoad(t *testing.T) {
	env := testEnv(t)
	series := ExtensionHorizonLoad(env)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	flood, hyb := series[0], series[1]
	// Flooding QDR grows with load; both axes monotone.
	for i := 1; i < len(flood.Points); i++ {
		if flood.Points[i].X <= flood.Points[i-1].X || flood.Points[i].Y < flood.Points[i-1].Y {
			t.Fatalf("flooding curve not monotone at %d: %+v -> %+v", i, flood.Points[i-1], flood.Points[i])
		}
	}
	if len(hyb.Points) != 1 {
		t.Fatalf("hybrid points = %d", len(hyb.Points))
	}
	h := hyb.Points[0]
	// The claim: at comparable (or lower) load, the hybrid's recall beats
	// flooding. Find the flooding point with the nearest load >= hybrid's.
	for _, p := range flood.Points {
		if p.X >= h.X {
			if h.Y <= p.Y {
				t.Errorf("hybrid QDR %.1f at load %.1fk not above flooding %.1f at load %.1fk", h.Y, h.X, p.Y, p.X)
			}
			break
		}
	}
	// The headline: the hybrid strictly dominates the deepest flood —
	// higher recall at lower per-query load.
	deepest := flood.Points[len(flood.Points)-1]
	if !(h.Y > deepest.Y && h.X < deepest.X) {
		t.Errorf("hybrid (load %.1fk, QDR %.1f) does not dominate deepest flood (load %.1fk, QDR %.1f)",
			h.X, h.Y, deepest.X, deepest.Y)
	}
}

func TestExtensionCostRecall(t *testing.T) {
	env := testEnv(t)
	s := ExtensionCostRecall(env, 5)
	if len(s.Points) != 11 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Recall rises with threshold; marginal recall per unit cost shrinks
	// (the sweet-spot shape).
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y {
			t.Fatalf("recall decreased at threshold %d", i)
		}
	}
	firstGain := (s.Points[1].Y - s.Points[0].Y) / (s.Points[1].X - s.Points[0].X + 1e-12)
	lastGain := (s.Points[10].Y - s.Points[9].Y) / (s.Points[10].X - s.Points[9].X + 1e-12)
	if lastGain >= firstGain {
		t.Errorf("no diminishing recall-per-cost: first %.3f, last %.3f", firstGain, lastGain)
	}
}

func TestTFBloomSweep(t *testing.T) {
	env := testEnv(t)
	points := TFBloomSweep(env, 0.3)
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	exact := points[0]
	random := points[len(points)-1]
	if exact.Name != "TF (exact)" || random.Name != "Random" {
		t.Fatalf("unexpected ordering: %v", points)
	}
	// Every Bloom variant sits between Random and exact TF; a saturated
	// filter degenerates to Random, so allow tie-breaking noise.
	const noise = 6.0
	prev := exact.AvgQR + noise
	for _, p := range points[1:4] {
		if p.AvgQR > exact.AvgQR+noise {
			t.Errorf("%s QR %.1f above exact TF %.1f", p.Name, p.AvgQR, exact.AvgQR)
		}
		if p.AvgQR < random.AvgQR-noise {
			t.Errorf("%s QR %.1f below Random %.1f", p.Name, p.AvgQR, random.AvgQR)
		}
		if p.AvgQR > prev+noise {
			t.Errorf("smaller filter %s outperformed larger by more than noise", p.Name)
		}
		prev = p.AvgQR
		if p.FilterBytes <= 0 {
			t.Errorf("%s has no filter size", p.Name)
		}
	}
	// The largest filter must retain most of exact TF's advantage.
	if points[1].AvgQR < (exact.AvgQR+random.AvgQR)/2-noise {
		t.Errorf("large filter %s QR %.1f lost the TF signal (exact %.1f, random %.1f)",
			points[1].Name, points[1].AvgQR, exact.AvgQR, random.AvgQR)
	}
	// False-positive rate grows as the filter shrinks.
	if points[1].FPRate > points[3].FPRate {
		t.Errorf("fp rate not increasing: %.4f .. %.4f", points[1].FPRate, points[3].FPRate)
	}
}
