package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/gnutella"
	"piersearch/internal/hybrid"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/trace"
)

// PostingShipResult is the §5 validation: rare queries ship far fewer
// posting-list entries through the distributed join than average queries
// (the paper measured 7x fewer for <=10-result queries).
type PostingShipResult struct {
	Queries        int
	AvgShippedAll  float64
	AvgShippedRare float64 // queries returning <= 10 results
	Ratio          float64 // AvgShippedAll / AvgShippedRare
}

// PostingListShipping replays the trace queries through a real PIER
// cluster using the distributed SHJ plan (smallest-posting-list-first) and
// measures posting entries shipped per query over a sampled library.
func PostingListShipping(env *StudyEnv, clusterSize, sampleInstances int) (PostingShipResult, error) {
	var res PostingShipResult
	if clusterSize <= 0 {
		clusterSize = 32
	}
	cluster, err := dht.NewCluster(clusterSize, env.Cfg.Seed+41, dht.Config{})
	if err != nil {
		return res, err
	}
	engines := make([]*pier.Engine, clusterSize)
	for i, node := range cluster.Nodes {
		engines[i] = pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engines[i])
	}

	total := env.Trace.TotalInstances()
	if sampleInstances <= 0 || sampleInstances > total {
		sampleInstances = total
	}
	p := float64(sampleInstances) / float64(total)
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 42))
	published := 0
	for rank, f := range env.Trace.Files {
		for copyIdx := 0; copyIdx < f.Replicas; copyIdx++ {
			if rng.Float64() >= p {
				continue
			}
			fileID := []byte(fmt.Sprintf("%d/%d", rank, copyIdx))
			e := engines[published%clusterSize]
			for _, term := range f.Terms {
				if _, err := e.Publish(piersearch.TableInverted,
					pier.Tuple{pier.String(term), pier.Bytes(fileID)}); err != nil {
					return res, err
				}
			}
			published++
		}
	}

	var sumAll, sumRare float64
	var nRare int
	for _, q := range env.Trace.Queries {
		keys := make([]pier.Value, len(q.Terms))
		for i, t := range q.Terms {
			keys[i] = pier.String(t)
		}
		e := engines[res.Queries%clusterSize]
		values, stats, err := e.ChainJoin(piersearch.TableInverted, keys, "fileID", 0)
		if err != nil {
			return res, err
		}
		res.Queries++
		sumAll += float64(stats.PostingShipped)
		if len(values) <= 10 {
			sumRare += float64(stats.PostingShipped)
			nRare++
		}
	}
	if res.Queries > 0 {
		res.AvgShippedAll = sumAll / float64(res.Queries)
	}
	if nRare > 0 {
		res.AvgShippedRare = sumRare / float64(nRare)
	}
	if res.AvgShippedRare > 0 {
		res.Ratio = res.AvgShippedAll / res.AvgShippedRare
	}
	return res, nil
}

// DeployConfig sizes the §7 deployment experiment: a Gnutella overlay in
// which HybridCount ultrapeers run the hybrid LimeWire/PIERSearch client
// and share a DHT, the rest are plain Gnutella.
type DeployConfig struct {
	Ultrapeers     int // overlay ultrapeers (default 300)
	Hosts          int // overlay hosts (default 9,000)
	HybridCount    int // hybrid ultrapeers (default 50, as deployed)
	WarmupQueries  int // snooped queries driving QRS publishing (default 120)
	MeasureQueries int // hybrid leaf queries measured (default 100)
	Strategy       piersearch.Strategy
	Timeout        time.Duration // Gnutella timeout before PIER re-query (default 30s)
	// GnutellaMaxTTL bounds the flooding horizon of the overlay (default
	// 2): queries cover a fraction of the network, as in the real
	// Gnutella, so rare items can be missed.
	GnutellaMaxTTL int
	// ProactiveRareTerm enables the full-deployment path §7 anticipates:
	// each hybrid ultrapeer publishes the files of its own subtree whose
	// rarest term has instance frequency <= this threshold (TF scheme over
	// long-observed traffic). Zero disables it; default 25.
	ProactiveRareTerm int
	Seed              int64
}

func (c DeployConfig) normalize() DeployConfig {
	if c.Ultrapeers <= 0 {
		c.Ultrapeers = 400
	}
	if c.GnutellaMaxTTL <= 0 {
		c.GnutellaMaxTTL = 2
	}
	if c.Hosts <= 0 {
		c.Hosts = c.Ultrapeers * 30
	}
	if c.HybridCount <= 0 {
		c.HybridCount = 50
	}
	if c.HybridCount > c.Ultrapeers {
		c.HybridCount = c.Ultrapeers
	}
	if c.WarmupQueries <= 0 {
		c.WarmupQueries = 120
	}
	if c.MeasureQueries <= 0 {
		c.MeasureQueries = 100
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.ProactiveRareTerm == 0 {
		c.ProactiveRareTerm = 25
	}
	return c
}

// DeployResult is the §7 measurement set.
type DeployResult struct {
	Strategy piersearch.Strategy

	// D1: publishing.
	FilesPublished       int
	AvgPublishBytes      float64 // store traffic per file; paper: ~3.5 KB, 4 KB with InvertedCache
	AvgPublishBytesTotal float64 // including DHT routing lookups

	// D2: latency.
	GnutellaAnswered   int
	PierAnswered       int
	Unanswered         int
	AvgGnutellaLatency time.Duration // queries answered by flooding
	AvgHybridLatency   time.Duration // timeout + PIER, for PIER-answered
	AvgLateGnutella    time.Duration // when flooding would answer after timeout (paper: ~65 s)

	// D3: per-query DHT bandwidth for the PIER path.
	AvgPierQueryBytes float64 // total incl. Item fetches
	AvgPierMatchBytes float64 // fileID-matching phase; paper: ~850 B cache / ~20 KB join

	// D4: zero-result reduction.
	ZeroBaseline int     // queries Gnutella alone never answers
	ZeroHybrid   int     // still unanswered with the hybrid
	ReductionPct float64 // paper: 18% observed, 66% potential
}

// RunDeployment executes the §7 deployment experiment.
func RunDeployment(cfg DeployConfig) (*DeployResult, error) {
	cfg = cfg.normalize()
	tr := trace.Generate(trace.Config{
		DistinctFiles: cfg.Hosts * 4,
		TargetCopies:  cfg.Hosts * 13,
		Hosts:         cfg.Hosts,
		Vocabulary:    cfg.Hosts,
		Queries:       cfg.WarmupQueries + cfg.MeasureQueries,
		Seed:          cfg.Seed,
	})
	topo, err := gnutella.NewTopology(gnutella.TopologyConfig{
		Ultrapeers:    cfg.Ultrapeers,
		Hosts:         cfg.Hosts,
		NewClientFrac: 0.2,
		Seed:          cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	lib := gnutella.NewLibrary(topo, piersearch.Tokenizer{})
	for rank, hosts := range tr.Placement(cfg.Hosts) {
		for _, h := range hosts {
			lib.AddFile(int(h), gnutella.SharedFile{Name: tr.Files[rank].Name, Size: 3_500_000})
		}
	}
	gnet := gnutella.NewNetwork(topo, lib, gnutella.NetworkConfig{DynamicQuery: true, MaxTTL: cfg.GnutellaMaxTTL, Seed: cfg.Seed + 2})
	cluster, err := dht.NewCluster(cfg.HybridCount, cfg.Seed+3, dht.Config{K: 8, Alpha: 2, Replicate: 2})
	if err != nil {
		return nil, err
	}
	hybrids := make([]*hybrid.Ultrapeer, cfg.HybridCount)
	for i := range hybrids {
		engine := pier.NewEngine(cluster.Nodes[i], pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engine)
		hybrids[i] = hybrid.NewUltrapeer(gnutella.HostID(i), gnet, lib, engine, hybrid.UltrapeerConfig{
			GnutellaTimeout: cfg.Timeout,
			Strategy:        cfg.Strategy,
			Seed:            cfg.Seed + 4,
		})
	}

	// Warm-up: hybrid ultrapeers snoop forwarded query results; small
	// result sets are identified as rare (QRS) and published into the DHT.
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	res := &DeployResult{Strategy: cfg.Strategy}
	pubBefore := cluster.Net.Stats()
	for _, q := range tr.Queries[:cfg.WarmupQueries] {
		h := hybrids[rng.Intn(len(hybrids))]
		reach := gnutella.ReachSet(topo, h.Host, 4)
		refs := gnutella.MatchesWithin(lib, reach, q.Terms)
		if err := h.ObserveResults(refs); err != nil {
			return nil, err
		}
	}
	// Proactive path: each hybrid ultrapeer publishes the rare files of
	// its own subtree, identified by the TF scheme over observed traffic.
	if cfg.ProactiveRareTerm > 0 {
		termFreq := tr.TermInstanceFrequency()
		tk := piersearch.Tokenizer{}
		for _, h := range hybrids {
			for _, host := range topo.HostsOf(h.Host) {
				for _, sf := range lib.Files(host) {
					rare := false
					for _, term := range tk.Tokenize(sf.Name) {
						if termFreq[term] <= cfg.ProactiveRareTerm {
							rare = true
							break
						}
					}
					if !rare {
						continue
					}
					if err := h.PublishLocal(host); err != nil {
						return nil, err
					}
					break // PublishLocal covers the whole host
				}
			}
		}
	}
	var pubBytes, pubCount int
	for _, h := range hybrids {
		pubBytes += h.PublishBytes
		pubCount += h.PublishCount
	}
	res.FilesPublished = pubCount
	if pubCount > 0 {
		pubTraffic := cluster.Net.Stats().Sub(pubBefore)
		res.AvgPublishBytes = float64(pubTraffic.ByKind["store"].Bytes) / float64(pubCount)
		res.AvgPublishBytesTotal = float64(pubTraffic.Bytes) / float64(pubCount)
	}

	// Measurement: leaf queries through hybrid ultrapeers.
	var gnuLatSum, hybLatSum, lateSum time.Duration
	var lateN int
	var pierBytes uint64
	var matchBytes int
	for _, q := range tr.Queries[cfg.WarmupQueries:] {
		h := hybrids[rng.Intn(len(hybrids))]
		before := cluster.Net.Stats()
		out, err := h.Query(q.Text, q.Terms)
		if err != nil {
			return nil, err
		}
		switch out.Source {
		case hybrid.SourceGnutella:
			res.GnutellaAnswered++
			gnuLatSum += out.FirstLatency
		case hybrid.SourcePIER:
			res.PierAnswered++
			hybLatSum += out.FirstLatency
			pierBytes += cluster.Net.Stats().Sub(before).Bytes
			matchBytes += out.PierStats.MatchBytes
			if out.GnutellaLatency > 0 {
				lateSum += out.GnutellaLatency
				lateN++
			}
		default:
			res.Unanswered++
			if out.GnutellaResults == 0 {
				res.ZeroBaseline++
				res.ZeroHybrid++
			}
		}
		if out.Source == hybrid.SourcePIER && out.GnutellaResults == 0 {
			res.ZeroBaseline++ // Gnutella alone would have answered nothing
		}
	}
	if res.GnutellaAnswered > 0 {
		res.AvgGnutellaLatency = gnuLatSum / time.Duration(res.GnutellaAnswered)
	}
	if res.PierAnswered > 0 {
		res.AvgHybridLatency = hybLatSum / time.Duration(res.PierAnswered)
		res.AvgPierQueryBytes = float64(pierBytes) / float64(res.PierAnswered)
		res.AvgPierMatchBytes = float64(matchBytes) / float64(res.PierAnswered)
	}
	if lateN > 0 {
		res.AvgLateGnutella = lateSum / time.Duration(lateN)
	}
	if res.ZeroBaseline > 0 {
		res.ReductionPct = 100 * float64(res.ZeroBaseline-res.ZeroHybrid) / float64(res.ZeroBaseline)
	}
	return res, nil
}
