package experiments

// Extensions: experiments the paper defers to future work, built on the
// same substrates.
//
//   - ExtensionHorizonLoad quantifies §4.3's open question: what does
//     raising the flooding horizon cost in system load, and what recall
//     does it buy, compared with the hybrid's partial index?
//   - ExtensionCostRecall sweeps the full Eq. 3–5 cost model against the
//     recall it purchases, locating the replica-threshold sweet spot.
//   - ExtensionTFBloom evaluates §6.3's suggested Bloom-filter encoding of
//     the term-frequency tables.

import (
	"piersearch/internal/gnutella"
	"piersearch/internal/hybrid"
	"piersearch/internal/metrics"
	"piersearch/internal/model"
)

// loadAt approximates the per-query system load (messages) of flooding a
// horizon of k ultrapeers: every reached ultrapeer forwards on all its
// other links (duplicate-suppressed flooding), so the message count is the
// out-degree sum over the horizon.
func (e *StudyEnv) loadAt(frac float64) float64 {
	k := int(frac * float64(e.Topo.NumUltrapeers()))
	if k < 1 {
		k = 1
	}
	total := 0.0
	for _, v := range e.Vantages {
		msgs := 0
		for _, u := range gnutella.ReachFirstK(e.Topo, v, k) {
			msgs += e.Topo.Degree(u)
		}
		total += float64(msgs)
	}
	return total / float64(len(e.Vantages))
}

// ExtensionHorizonLoad returns two series over per-query load (thousands
// of messages): the QDR of flooding alone as the horizon grows, and the
// QDR of the hybrid (5% horizon + replica-threshold-2 partial index) with
// its amortised publishing load added. The hybrid's point sits far above
// the flooding curve at the same load — the paper's §4.3 argument made
// quantitative.
func ExtensionHorizonLoad(env *StudyEnv) []metrics.Series {
	replicas := env.Replicas()
	n := env.Trace.Cfg.Hosts
	none := make([]bool, len(replicas))

	flood := metrics.Series{Name: "flooding only"}
	for _, pct := range []float64{0.025, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50} {
		qdr := model.AvgQueryDistinctRecall(env.Matching, replicas, none, n, int(pct*float64(n)))
		flood.Add(env.loadAt(pct)/1000, qdr)
	}

	// Hybrid: flood 5% + publish items with <= 2 replicas. Publishing
	// costs terms x log2(N) messages per item instance, paid once per item
	// lifetime and amortised over the queries issued during that lifetime.
	// The trace's queries are a sample of the live workload (one ultrapeer
	// alone sees ~30k results/hour, §5), so a lifetime covers many times
	// the sampled workload; lifetimeWorkloadFactor scales it.
	const lifetimeWorkloadFactor = 10
	published := model.PublishUpToThreshold(replicas, 2)
	dhtCost := model.DHTSearchCost(n)
	publishMsgs := 0.0
	for i, pub := range published {
		if pub {
			publishMsgs += float64(len(env.Trace.Files[i].Terms)) * dhtCost * float64(replicas[i])
		}
	}
	perQueryPublish := publishMsgs / (lifetimeWorkloadFactor * float64(len(env.Trace.Queries)))
	qdr := model.AvgQueryDistinctRecall(env.Matching, replicas, published, n, n/20)
	hybridSeries := metrics.Series{Name: "hybrid (5% + thr 2)"}
	hybridSeries.Add((env.loadAt(0.05)+perQueryPublish)/1000, qdr)
	return []metrics.Series{flood, hybridSeries}
}

// ExtensionCostRecall sweeps the replica threshold and reports, per
// threshold, the total Eq. 4 cost per query (messages: flood + DHT
// re-query for misses + amortised publishing) against the QDR it buys.
func ExtensionCostRecall(env *StudyEnv, horizonPct int) metrics.Series {
	replicas := env.Replicas()
	n := env.Trace.Cfg.Hosts
	horizon := n * horizonPct / 100
	dhtCost := model.DHTSearchCost(n)
	queries := float64(len(env.Trace.Queries))

	out := metrics.Series{Name: "QDR vs cost/query (thr 0..10)"}
	for thr := 0; thr <= 10; thr++ {
		published := model.PublishUpToThreshold(replicas, thr)
		qdr := model.AvgQueryDistinctRecall(env.Matching, replicas, published, n, horizon)

		// Search cost: every query floods the horizon; queries whose items
		// were all missed re-issue into the DHT (approximate with the
		// average miss probability over the workload).
		missMass := 0.0
		for _, files := range env.Matching {
			if len(files) == 0 {
				missMass++
				continue
			}
			pMissAll := 1.0
			for _, f := range files {
				pf := 1.0
				if !published[f] {
					pf = model.PFGnutella(replicas[f], n, horizon)
				}
				pMissAll *= 1 - pf
			}
			missMass += pMissAll
		}
		searchCost := float64(horizon-1) + missMass/queries*dhtCost

		publishMsgs := 0.0
		for i, pub := range published {
			if pub {
				publishMsgs += float64(len(env.Trace.Files[i].Terms)) * dhtCost * float64(replicas[i])
			}
		}
		total := searchCost + publishMsgs/queries
		out.Add(total/1000, qdr)
	}
	return out
}

// ExtensionTFBloom compares exact TF against Bloom-encoded TF at several
// filter sizes, on average QR at a fixed budget: the accuracy price of
// §6.3's storage optimisation.
type TFBloomPoint struct {
	Name        string
	FilterBytes int
	FPRate      float64
	AvgQR       float64
}

// TFBloomSweep evaluates the scheme family.
func TFBloomSweep(env *StudyEnv, budget float64) []TFBloomPoint {
	replicas := env.Replicas()
	termFreq := env.Trace.TermInstanceFrequency()
	fileTerms := env.FileTerms()
	const rareThreshold = 8

	eval := func(s hybrid.Scheme) float64 {
		pub := hybrid.SelectBudget(s, replicas, budget, env.Cfg.Seed+51)
		return model.AvgQueryRecall(env.Matching, replicas, pub, 0.05)
	}

	out := []TFBloomPoint{{
		Name:  "TF (exact)",
		AvgQR: eval(hybrid.TF(fileTerms, termFreq)),
	}}
	for _, bits := range []uint64{1 << 18, 1 << 15, 1 << 12} {
		s := hybrid.NewTFBloom(fileTerms, termFreq, rareThreshold, bits)
		out = append(out, TFBloomPoint{
			Name:        "TF-Bloom " + itoa(s.FilterBytes()) + "B",
			FilterBytes: s.FilterBytes(),
			FPRate:      s.FalsePositiveRate(),
			AvgQR:       eval(s),
		})
	}
	out = append(out, TFBloomPoint{
		Name:  "Random",
		AvgQR: eval(hybrid.Random(len(replicas), env.Cfg.Seed+52)),
	})
	return out
}
