package experiments

import (
	"time"

	"piersearch/internal/gnutella"
	"piersearch/internal/metrics"
)

// Figure4 correlates query result-set size with the average replication
// factor of the files in the result set (single-vantage floods).
func Figure4(env *StudyEnv) metrics.Series {
	covered := env.reachHosts(env.vantageReach(env.Vantages[0]))
	var sizes, avgRep []float64
	for qi := range env.Trace.Queries {
		instances, _ := env.resultCount(qi, covered)
		if instances == 0 {
			continue
		}
		// Average replication factor across distinct filenames present in
		// the result set (paper approximates the true count with the
		// union-of-30; we have ground truth).
		sum, n := 0.0, 0
		for _, rank := range env.Matching[qi] {
			present := false
			for _, h := range env.Placement[rank] {
				if covered[h] {
					present = true
					break
				}
			}
			if present {
				sum += float64(env.Trace.Files[rank].Replicas)
				n++
			}
		}
		sizes = append(sizes, float64(instances))
		avgRep = append(avgRep, sum/float64(n))
	}
	// Bucket by result size (log-ish edges), report (avg replication, size).
	s := metrics.BucketMeans(sizes, avgRep, []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
	// The paper plots results size on Y and replication on X; swap.
	out := metrics.Series{Name: "results-size vs avg-replication"}
	for _, p := range s.Points {
		out.Add(p.Y, p.X)
	}
	return out
}

// resultSizes computes, for each query, the instance counts visible from a
// single vantage and from the union of the first n vantages.
func (e *StudyEnv) resultSizes(union int) []float64 {
	covered := make(map[int32]bool)
	for _, v := range e.Vantages[:union] {
		for h := range e.reachHosts(e.vantageReach(v)) {
			covered[h] = true
		}
	}
	out := make([]float64, len(e.Trace.Queries))
	for qi := range e.Trace.Queries {
		instances, _ := e.resultCount(qi, covered)
		out[qi] = float64(instances)
	}
	return out
}

// cdfThresholds are the x-samples for the result-size CDFs.
var cdfThresholds = []float64{0, 1, 2, 3, 5, 7, 10, 15, 20, 30, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// Figure5 is the result-size CDF for single-node results and Union-of-30.
func Figure5(env *StudyEnv) []metrics.Series {
	one := metrics.CDF(env.resultSizes(1), cdfThresholds)
	one.Name = "Results (1 node)"
	all := metrics.CDF(env.resultSizes(len(env.Vantages)), cdfThresholds)
	all.Name = "Union-of-30"
	return []metrics.Series{one, all}
}

// Figure6 is the result-size CDF restricted to <= 20 results for unions of
// 1, 5, 15, 25 and 30 vantage points.
func Figure6(env *StudyEnv) []metrics.Series {
	small := []float64{0, 1, 2, 3, 4, 5, 7, 10, 12, 15, 20}
	var out []metrics.Series
	for _, n := range []int{1, 5, 15, 25, 30} {
		if n > len(env.Vantages) {
			n = len(env.Vantages)
		}
		s := metrics.CDF(env.resultSizes(n), small)
		if n == 1 {
			s.Name = "Results (1 node)"
		} else {
			s.Name = "Union-of-" + itoa(n)
		}
		out = append(out, s)
	}
	return out
}

// GnutellaAggregates are the headline §4.2 numbers.
type GnutellaAggregates struct {
	PctAtMost10Single float64 // paper: 41%
	PctZeroSingle     float64 // paper: 18%
	PctAtMost10Union  float64 // paper: 27%
	PctZeroUnion      float64 // paper: 6%
	ZeroReductionPct  float64 // paper: >= 66%
}

// Aggregates computes the §4.2 headline statistics.
func Aggregates(env *StudyEnv) GnutellaAggregates {
	single := env.resultSizes(1)
	union := env.resultSizes(len(env.Vantages))
	a := GnutellaAggregates{
		PctAtMost10Single: 100 * metrics.FracAtMost(single, 10),
		PctZeroSingle:     100 * metrics.FracAtMost(single, 0),
		PctAtMost10Union:  100 * metrics.FracAtMost(union, 10),
		PctZeroUnion:      100 * metrics.FracAtMost(union, 0),
	}
	if a.PctZeroSingle > 0 {
		a.ZeroReductionPct = 100 * (a.PctZeroSingle - a.PctZeroUnion) / a.PctZeroSingle
	}
	return a
}

// Figure7 correlates result-set size with average first-result latency
// under the dynamic-querying latency model: a query first flooded with
// TTL 1 is re-flooded one hop deeper after each RoundWait until the
// nearest matching host's depth is inside the horizon.
func Figure7(env *StudyEnv) metrics.Series {
	covered := env.reachHosts(env.vantageReach(env.Vantages[0]))
	hop := func() time.Duration {
		spread := env.Cfg.HopDelayMax - env.Cfg.HopDelayMin
		return env.Cfg.HopDelayMin + time.Duration(env.rng.Int63n(int64(spread)))
	}
	var sizes, lats []float64
	for qi, q := range env.Trace.Queries {
		instances, _ := env.resultCount(qi, covered)
		if instances == 0 {
			continue
		}
		d := gnutella.FirstMatchDepth(env.Topo, env.Lib, env.Vantages[0], q.Terms)
		if d < 0 {
			continue
		}
		lat := time.Duration(0)
		if d > 1 {
			lat += time.Duration(d-1) * env.Cfg.RoundWait // waits before the round that reaches depth d
		}
		hops := d
		if hops < 1 {
			hops = 1 // matches in the origin's own subtree still pay leaf processing
		}
		for i := 0; i < 2*hops; i++ { // out and back
			lat += hop()
		}
		sizes = append(sizes, float64(instances))
		lats = append(lats, lat.Seconds())
	}
	return metrics.BucketMeans(sizes, lats, []float64{1, 2, 5, 10, 20, 50, 100, 150, 200, 500})
}

// Figure8Config sizes the flooding-overhead experiment. The paper analyses
// the crawled graph of ~18k+ ultrapeers.
type Figure8Config struct {
	Ultrapeers int
	Sources    int
	MaxTTL     int
	Seed       int64
}

// Figure8 computes ultrapeers visited vs messages sent as the flooding
// horizon grows, averaged over several source ultrapeers.
func Figure8(cfg Figure8Config) (metrics.Series, error) {
	if cfg.Ultrapeers <= 0 {
		cfg.Ultrapeers = 20000
	}
	if cfg.Sources <= 0 {
		cfg.Sources = 5
	}
	if cfg.MaxTTL <= 0 {
		cfg.MaxTTL = 8
	}
	topo, err := gnutella.NewTopology(gnutella.TopologyConfig{
		Ultrapeers:    cfg.Ultrapeers,
		Hosts:         cfg.Ultrapeers * 5,
		NewClientFrac: 0.1,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return metrics.Series{}, err
	}
	totalMsgs := make([]float64, cfg.MaxTTL)
	totalVisited := make([]float64, cfg.MaxTTL)
	for s := 0; s < cfg.Sources; s++ {
		src := (s * 7919) % cfg.Ultrapeers
		for _, c := range gnutella.FloodCosts(topo, src, cfg.MaxTTL) {
			totalMsgs[c.TTL-1] += float64(c.Messages)
			totalVisited[c.TTL-1] += float64(c.Visited)
		}
	}
	out := metrics.Series{Name: "ultrapeers visited"}
	for i := range totalMsgs {
		out.Add(totalMsgs[i]/float64(cfg.Sources)/1000, totalVisited[i]/float64(cfg.Sources))
	}
	return out, nil
}

// CrawlSummary reproduces the §4.1 crawl: size estimate and duration.
type CrawlSummary struct {
	HostsSeen         int
	UltrapeersSeen    int
	FilesEstimate     int
	EstimatedDuration time.Duration
}

// CrawlStudy crawls the study topology from 30 seeds.
func CrawlStudy(env *StudyEnv) CrawlSummary {
	res := gnutella.Crawl(env.Topo, gnutella.CrawlConfig{
		Seeds:       env.Vantages,
		RespondProb: 0.9,
		Seed:        env.Cfg.Seed,
	})
	return CrawlSummary{
		HostsSeen:         res.HostsSeen(),
		UltrapeersSeen:    res.UltrapeersSeen,
		FilesEstimate:     env.Lib.NumFiles(),
		EstimatedDuration: res.EstimatedDuration,
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
