package experiments

import (
	"piersearch/internal/hybrid"
	"piersearch/internal/metrics"
	"piersearch/internal/model"
)

// horizonPercents are the search-horizon fractions §6.2 sweeps.
var horizonPercents = []int{5, 15, 30}

// Figure9 plots the lower-bound find probability PF-threshold against the
// replica threshold for each horizon percentage (Equation 2).
func Figure9(env *StudyEnv) []metrics.Series {
	n := env.Trace.Cfg.Hosts
	var out []metrics.Series
	for _, hp := range horizonPercents {
		s := metrics.Series{Name: "Horizon Percent=" + itoa(hp) + "%"}
		horizon := n * hp / 100
		for thr := 0; thr <= 20; thr++ {
			s.Add(float64(thr), model.PFThreshold(thr, n, horizon))
		}
		out = append(out, s)
	}
	return out
}

// Figure10 plots the publishing overhead (% of file instances published)
// against the replica threshold under complete knowledge.
func Figure10(env *StudyEnv) metrics.Series {
	replicas := env.Replicas()
	s := metrics.Series{Name: "publishing overhead (% items)"}
	for thr := 0; thr <= 20; thr++ {
		pub := model.PublishUpToThreshold(replicas, thr)
		s.Add(float64(thr), 100*model.PublishedInstanceFrac(replicas, pub))
	}
	return s
}

// Figure11 plots average Query Recall against the replica threshold for
// each horizon percentage, with complete-knowledge publishing.
func Figure11(env *StudyEnv) []metrics.Series {
	replicas := env.Replicas()
	var out []metrics.Series
	for _, hp := range horizonPercents {
		s := metrics.Series{Name: "Horizon Percent=" + itoa(hp) + "%"}
		for thr := 0; thr <= 10; thr++ {
			pub := model.PublishUpToThreshold(replicas, thr)
			s.Add(float64(thr), model.AvgQueryRecall(env.Matching, replicas, pub, float64(hp)/100))
		}
		out = append(out, s)
	}
	return out
}

// Figure12 plots average Query Distinct Recall against the replica
// threshold for each horizon percentage.
func Figure12(env *StudyEnv) []metrics.Series {
	replicas := env.Replicas()
	n := env.Trace.Cfg.Hosts
	var out []metrics.Series
	for _, hp := range horizonPercents {
		s := metrics.Series{Name: "Horizon Percent=" + itoa(hp) + "%"}
		horizon := n * hp / 100
		for thr := 0; thr <= 10; thr++ {
			pub := model.PublishUpToThreshold(replicas, thr)
			s.Add(float64(thr), model.AvgQueryDistinctRecall(env.Matching, replicas, pub, n, horizon))
		}
		out = append(out, s)
	}
	return out
}

// budgets are the publishing budgets (fraction of instances) Figures 13–15
// sweep on the x-axis.
var budgets = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// schemeSet builds the §5 schemes over the study trace.
func schemeSet(env *StudyEnv) []hybrid.Scheme {
	replicas := env.Replicas()
	return []hybrid.Scheme{
		hybrid.Perfect(replicas),
		hybrid.SAM(env.Placement, env.Trace.Cfg.Hosts, 0.15, env.Cfg.Seed+11),
		hybrid.TPF(env.FileTerms(), env.Trace.PairInstanceFrequency(), env.Trace.TermInstanceFrequency()),
		hybrid.TF(env.FileTerms(), env.Trace.TermInstanceFrequency()),
		hybrid.Random(len(replicas), env.Cfg.Seed+12),
	}
}

// sweepSchemes evaluates recall-vs-budget for a set of schemes.
func sweepSchemes(env *StudyEnv, schemes []hybrid.Scheme, distinct bool, horizonPct int) []metrics.Series {
	replicas := env.Replicas()
	n := env.Trace.Cfg.Hosts
	horizon := n * horizonPct / 100
	var out []metrics.Series
	for _, sch := range schemes {
		s := metrics.Series{Name: sch.Name()}
		for _, b := range budgets {
			pub := hybrid.SelectBudget(sch, replicas, b, env.Cfg.Seed+21)
			var y float64
			if distinct {
				y = model.AvgQueryDistinctRecall(env.Matching, replicas, pub, n, horizon)
			} else {
				y = model.AvgQueryRecall(env.Matching, replicas, pub, float64(horizonPct)/100)
			}
			s.Add(100*b, y)
		}
		out = append(out, s)
	}
	return out
}

// Figure13 compares the rare-item schemes on average Query Recall as a
// function of the publishing budget (horizon 5%).
func Figure13(env *StudyEnv) []metrics.Series {
	return sweepSchemes(env, schemeSet(env), false, 5)
}

// Figure14 is Figure13 with the Query Distinct Recall metric.
func Figure14(env *StudyEnv) []metrics.Series {
	return sweepSchemes(env, schemeSet(env), true, 5)
}

// Figure15 compares SAM sampling fractions (100%, 15%, 5%) against Random
// (= SAM 0%) on average Query Recall.
func Figure15(env *StudyEnv) []metrics.Series {
	replicas := env.Replicas()
	schemes := []hybrid.Scheme{
		hybrid.SAM(env.Placement, env.Trace.Cfg.Hosts, 1.0, env.Cfg.Seed+31),
		hybrid.SAM(env.Placement, env.Trace.Cfg.Hosts, 0.15, env.Cfg.Seed+32),
		hybrid.SAM(env.Placement, env.Trace.Cfg.Hosts, 0.05, env.Cfg.Seed+33),
		hybrid.Random(len(replicas), env.Cfg.Seed+34),
	}
	return sweepSchemes(env, schemes, false, 5)
}
