package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"piersearch/internal/piersearch"
	"piersearch/internal/plan"
	"piersearch/internal/telemetry"
	"piersearch/internal/wire"
)

// Client talks to a query-service daemon. One client keeps one mux
// session to the daemon; every Query/Explain/Publish runs on its own
// stream, so calls are safe for concurrent use and interleave on the
// connection. A broken session redials transparently on the next call.
//
// Client.Query returns the same *piersearch.ResultStream shape the
// in-process API returns, so a caller can switch between linking a node
// and pointing at a daemon without touching its consumption loop.
type Client struct {
	addr string
	// DialTimeout bounds session establishment (default 5s).
	DialTimeout time.Duration
	// Window is the per-query receive window in batch frames: how far the
	// daemon may run ahead of this consumer (default wire.DefaultWindow).
	Window int
	// Tracer, when set, traces every query: a root span is minted per
	// Query call, its context ships in the OpenQuery envelope, and the
	// spans the daemon collected (its own, the plan's, the owners')
	// arrive back on Done — ResultStream.Trace returns the assembled
	// set. Nil disables tracing at zero cost.
	Tracer *telemetry.Tracer

	mu  sync.Mutex
	mux *wire.Mux // owns its connection; failure closes it
}

// Dial returns a client for the daemon at addr. The connection is
// established lazily on the first call, so Dial itself cannot fail.
func Dial(addr string) *Client {
	return &Client{addr: addr, DialTimeout: 5 * time.Second}
}

// Close severs the session. The client is dead afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mux != nil {
		c.mux.Close()
		c.mux = nil
	}
	return nil
}

// session returns the live mux, dialing a fresh one if the previous
// session broke.
func (c *Client) session(ctx context.Context) (*wire.Mux, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mux != nil {
		select {
		case <-c.mux.Done():
			c.mux = nil // session died; redial below
		default:
			return c.mux, nil
		}
	}
	d := net.Dialer{Timeout: c.DialTimeout}
	// Redial is deliberately serialized under c.mu: concurrent callers
	// need the one session being built, so racing dials would only shed
	// connections. DialTimeout (and the caller's ctx) bound the hold.
	conn, err := d.DialContext(ctx, "tcp", c.addr) //lint:allow locksafe redial is serialized by design; DialTimeout bounds the hold
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", c.addr, err)
	}
	c.mux = wire.NewClientMux(conn)
	return c.mux, nil
}

func (c *Client) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return wire.DefaultWindow
}

func fromQuery(q piersearch.Query) OpenQuery {
	return OpenQuery{Version: Version, Text: q.Text, Strategy: q.Strategy, Limit: q.Limit, Workers: q.Workers}
}

// Query submits q to the daemon and returns a result stream. Results
// arrive as the daemon's plan produces them; protocol and execution
// failures surface from Next. Canceling ctx resets the stream, which
// cancels the daemon-side query context and aborts its in-flight DHT
// round-trips; Next then returns an error matching plan.ErrCanceled.
func (c *Client) Query(ctx context.Context, q piersearch.Query) (*piersearch.ResultStream, error) {
	m, err := c.session(ctx)
	if err != nil {
		return nil, err
	}
	// Trace: continue a span already in ctx, or mint a root trace when
	// the client has a tracer. The IDs ride in the OpenQuery envelope so
	// the daemon's spans parent under ours.
	open := fromQuery(q)
	_, qspan := telemetry.StartSpan(ctx, "query")
	if qspan == nil && c.Tracer != nil {
		_, qspan = c.Tracer.StartRoot(ctx, "query")
	}
	if qspan != nil {
		qspan.SetAttr("q", q.Text)
		qspan.SetAttr("daemon", c.addr)
		open.TraceID, open.SpanID = qspan.Trace(), qspan.ID()
	}
	st, err := m.Open(EncodeOpenQuery(open), c.window())
	if err != nil {
		qspan.FinishErr(err)
		return nil, fmt.Errorf("service: open query stream: %w", err)
	}
	src := &remoteSource{ctx: ctx, st: st, start: time.Now(), strategy: q.Strategy}
	if qspan != nil {
		src.span, src.tracer, src.trace = qspan, qspan.Tracer(), qspan.Trace()
	}
	// A canceled caller context tells the daemon to stop: Cancel for an
	// orderly end, then reset so even a daemon stuck producing observes it.
	src.stopCancel = context.AfterFunc(ctx, func() {
		//lint:allow ctxflow runs after the caller ctx is already canceled; Background is the only live parent for the farewell Cancel
		st.Send(context.Background(), EncodeCancel()) //nolint:errcheck // reset follows either way
		st.Reset("query canceled")
	})
	return piersearch.StreamFromSource(src), nil
}

// Explain asks the daemon for the plan it would run for q, without
// executing anything.
func (c *Client) Explain(ctx context.Context, q piersearch.Query) (string, error) {
	resp, err := c.roundTrip(ctx, EncodeExplain(fromQuery(q)))
	if err != nil {
		return "", err
	}
	res, ok := resp.(*ExplainResult)
	if !ok {
		return "", fmt.Errorf("service: explain answered with %T", resp)
	}
	return res.Text, nil
}

// Publish indexes f through the daemon under mode.
func (c *Client) Publish(ctx context.Context, f piersearch.File, mode piersearch.PublishMode) (piersearch.PublishStats, error) {
	resp, err := c.roundTrip(ctx, EncodePublish(PublishReq{Version: Version, File: f, Mode: mode}))
	if err != nil {
		return piersearch.PublishStats{}, err
	}
	res, ok := resp.(*PublishDone)
	if !ok {
		return piersearch.PublishStats{}, fmt.Errorf("service: publish answered with %T", resp)
	}
	return res.Stats, nil
}

// roundTrip runs a one-shot request stream: open with the request, read
// one response message, close.
func (c *Client) roundTrip(ctx context.Context, req []byte) (any, error) {
	m, err := c.session(ctx)
	if err != nil {
		return nil, err
	}
	st, err := m.Open(req, c.window())
	if err != nil {
		return nil, fmt.Errorf("service: open stream: %w", err)
	}
	defer st.Close()
	p, err := st.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("service: awaiting response: %w", err)
	}
	resp, err := Decode(p)
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*Error); ok {
		return nil, e
	}
	return resp, nil
}

// remoteSource adapts a query stream to piersearch.Source.
type remoteSource struct {
	ctx        context.Context
	st         *wire.Stream
	stopCancel func() bool
	strategy   piersearch.Strategy
	start      time.Time

	pending []piersearch.Result
	stats   piersearch.SearchStats
	explain string
	gotDone bool
	done    bool

	// span is the client-side query span (nil = untraced); finished when
	// the stream ends. The daemon's spans arriving on Done are absorbed
	// into the tracer's ring so Trace() can assemble the full tree.
	span   *telemetry.ActiveSpan
	tracer *telemetry.Tracer
	trace  telemetry.TraceID
}

// Next returns the next result, pulling and acknowledging batch frames as
// the pending window drains.
func (s *remoteSource) Next() (piersearch.Result, error) {
	for {
		if len(s.pending) > 0 {
			r := s.pending[0]
			s.pending = s.pending[1:]
			return r, nil
		}
		if s.done {
			return piersearch.Result{}, plan.ErrDone
		}
		p, err := s.st.Recv(s.ctx)
		if err != nil {
			return piersearch.Result{}, s.terminalError(err)
		}
		s.st.Grant(1) // frame consumed: let the daemon push the next one
		msg, err := Decode(p)
		if err != nil {
			return piersearch.Result{}, err
		}
		switch m := msg.(type) {
		case *Batch:
			s.pending = m.Results
		case *Done:
			s.done, s.gotDone = true, true
			s.stats = m.Stats
			s.explain = m.Explain
			if s.span != nil {
				s.span.Tracer().Absorb(m.Spans)
				s.span.Finish()
				s.span = nil
			}
		case *Error:
			s.done = true
			if m.Code == CodeCanceled {
				return piersearch.Result{}, plan.Canceled(m)
			}
			return piersearch.Result{}, m
		default:
			return piersearch.Result{}, fmt.Errorf("service: unexpected %T mid-stream", msg)
		}
	}
}

// terminalError classifies a stream failure: the caller's cancellation
// surfaces like a canceled plan, everything else as the transport error.
func (s *remoteSource) terminalError(err error) error {
	if s.ctx.Err() != nil {
		return plan.Canceled(s.ctx.Err())
	}
	if errors.Is(err, io.EOF) {
		// The daemon half-closed without Done: it died mid-answer.
		return fmt.Errorf("service: stream ended without Done")
	}
	return err
}

// Close releases the stream; a still-live query is reset, which cancels
// it on the daemon.
func (s *remoteSource) Close() error {
	s.stopCancel()
	if s.span != nil {
		s.span.Finish()
		s.span = nil
	}
	return s.st.Close()
}

// Trace returns the spans collected for this query: the client's own
// root span plus everything the daemon shipped on Done. Nil when the
// query is untraced.
func (s *remoteSource) Trace() []telemetry.Span {
	if s.tracer == nil || s.trace == 0 {
		return nil
	}
	return s.tracer.TraceSpans(s.trace)
}

// Stats reports the daemon's final figures once Done arrives; before
// that, only the client-side wall clock is known.
func (s *remoteSource) Stats() piersearch.SearchStats {
	if s.gotDone {
		return s.stats
	}
	return piersearch.SearchStats{Strategy: s.strategy, Wall: time.Since(s.start)}
}

// Explain returns the executed plan's cost profile, shipped with Done.
func (s *remoteSource) Explain() string { return s.explain }
