package service

import (
	"testing"

	"piersearch/internal/piersearch"
)

// FuzzDecodeMsg hammers the protocol decoder with hostile frames: random
// kinds, truncated bodies, absurd length prefixes and counts, unknown
// versions. Decode must never panic, and every accepted message must
// re-encode (version fields are data, not validated here — the server
// refuses them above the codec).
func FuzzDecodeMsg(f *testing.F) {
	f.Add(EncodeOpenQuery(OpenQuery{Version: Version, Text: "madonna prayer", Strategy: piersearch.StrategyJoin, Limit: 50, Workers: 4}))
	f.Add(EncodeExplain(OpenQuery{Version: 99, Text: "future version"}))
	f.Add(EncodeBatch([]piersearch.Result{{File: piersearch.File{Name: "a.mp3", Size: 9, Host: "h", Port: 1}}}))
	f.Add(EncodeDone(Done{Explain: "Limit(n=0)"}))
	f.Add(EncodeError(&Error{Code: CodeOverloaded, Msg: "busy"}))
	f.Add(EncodeCancel())
	f.Add(EncodePublish(PublishReq{Version: Version, File: piersearch.File{Name: "x", Size: 1, Host: "h", Port: 2}}))
	f.Add(EncodePublishDone(PublishDone{}))
	f.Add([]byte{MsgBatch, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{MsgOpenQuery, 0x01, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted messages must round-trip through their encoder without
		// panicking; the re-encoded form must decode again.
		var buf []byte
		switch m := msg.(type) {
		case *OpenQuery:
			buf = EncodeOpenQuery(*m)
		case *ExplainQuery:
			buf = EncodeExplain(m.OpenQuery)
		case *Batch:
			buf = EncodeBatch(m.Results)
		case *Done:
			buf = EncodeDone(*m)
		case *Error:
			buf = EncodeError(m)
		case *Cancel:
			buf = EncodeCancel()
		case *ExplainResult:
			buf = EncodeExplainResult(m.Text)
		case *PublishReq:
			buf = EncodePublish(*m)
		case *PublishDone:
			buf = EncodePublishDone(*m)
		default:
			t.Fatalf("Decode returned unknown type %T", msg)
		}
		if _, err := Decode(buf); err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
	})
}
