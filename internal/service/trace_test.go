package service_test

import (
	"context"
	"testing"

	"piersearch/internal/piersearch"
	"piersearch/internal/service"
	"piersearch/internal/telemetry"
)

// TestDistributedTraceEndToEnd pins the tentpole acceptance: a traced
// client query over real TCP comes back with a trace tree spanning the
// client, the daemon executor, and the remote keyword/item owners, with
// every parent/child edge intact across the client -> daemon -> owner
// hops.
func TestDistributedTraceEndToEnd(t *testing.T) {
	daemonTracer := telemetry.NewTracer("daemon")
	e := newEnv(t, 10, 12, service.Options{Tracer: daemonTracer})
	// The daemon executes on node 0: its dht node must record RPC spans
	// into the same ring the service ships at Done. Every other node
	// gets its own tracer so serve-side spans piggyback home.
	e.engines[0].Node().SetTracer(daemonTracer)
	for i := 1; i < len(e.engines); i++ {
		n := e.engines[i].Node()
		n.SetTracer(telemetry.NewTracer(n.Info().Addr))
	}

	client := service.Dial(e.daemon.Addr())
	defer client.Close()
	client.Tracer = telemetry.NewTracer("client")

	rs, err := client.Query(context.Background(), piersearch.Query{
		Text: "common stream", Strategy: piersearch.StrategyJoin,
	})
	if err != nil {
		t.Fatal(err)
	}
	results := drain(t, rs)
	spans := rs.Trace()
	rs.Close()
	if len(results) != 12 {
		t.Fatalf("%d results, want 12", len(results))
	}
	if len(spans) == 0 {
		t.Fatal("traced query returned no spans")
	}

	// Dedup: piggy-backed snapshots may carry a span twice.
	byID := make(map[telemetry.SpanID]telemetry.Span)
	for _, s := range spans {
		if _, dup := byID[s.ID]; !dup {
			byID[s.ID] = s
		}
	}

	// One root: the client-side "query" span.
	var roots []telemetry.Span
	for _, s := range byID {
		if _, ok := byID[s.Parent]; !ok {
			roots = append(roots, s)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("trace has %d roots, want 1 (spans with missing parents break the tree):\n%s",
			len(roots), telemetry.RenderTree(spans))
	}
	root := roots[0]
	if root.Name != "query" || root.Node != "client" || root.Parent != 0 {
		t.Fatalf("root = %+v, want client query span", root)
	}

	// The daemon's handler span hangs directly off the client root.
	var svc telemetry.Span
	for _, s := range byID {
		if s.Name == "service.query" {
			svc = s
		}
	}
	if svc.ID == 0 || svc.Parent != root.ID || svc.Node != "daemon" {
		t.Fatalf("service.query = %+v, want child of root %x on daemon", svc, root.ID)
	}

	// Every serve-side span recorded on a remote owner must parent to a
	// daemon-side dht.rpc span — that's the cross-node edge.
	owners := map[string]bool{}
	serves := 0
	for _, s := range byID {
		if len(s.Name) < 6 || s.Name[:6] != "serve." {
			continue
		}
		serves++
		p, ok := byID[s.Parent]
		if !ok || p.Name != "dht.rpc" {
			t.Errorf("serve span %q on %s parents to %+v, want a dht.rpc span", s.Name, s.Node, p)
		}
		if s.Node != "daemon" {
			owners[s.Node] = true
		}
	}
	if serves == 0 {
		t.Fatal("no serve-side spans made it back to the client")
	}
	if len(owners) < 2 {
		t.Fatalf("trace covers %d remote owners, want >= 2:\n%s", len(owners), telemetry.RenderTree(spans))
	}

	// ISSUE acceptance: client + daemon + >= 2 remote owners.
	if n := telemetry.TraceNodes(spans); n < 4 {
		t.Fatalf("trace covers %d distinct nodes, want >= 4:\n%s", n, telemetry.RenderTree(spans))
	}
	if d := telemetry.TraceDepth(spans); d < 4 {
		t.Fatalf("trace depth %d, want >= 4 (query -> service.query -> dht.rpc -> serve.*):\n%s",
			d, telemetry.RenderTree(spans))
	}
	t.Logf("trace: %d spans, %d nodes, depth %d\n%s",
		len(byID), telemetry.TraceNodes(spans), telemetry.TraceDepth(spans), telemetry.RenderTree(spans))
}

// TestUntracedClientShipsNoSpans: without a client tracer the wire
// carries the zero trace context and Done ships no spans, even when the
// daemon itself has tracing enabled.
func TestUntracedClientShipsNoSpans(t *testing.T) {
	daemonTracer := telemetry.NewTracer("daemon")
	e := newEnv(t, 4, 4, service.Options{Tracer: daemonTracer})
	e.engines[0].Node().SetTracer(daemonTracer)

	client := service.Dial(e.daemon.Addr())
	defer client.Close()

	rs, err := client.Query(context.Background(), piersearch.Query{
		Text: "common stream", Strategy: piersearch.StrategyCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, rs)
	spans := rs.Trace()
	rs.Close()
	if len(spans) != 0 {
		t.Fatalf("untraced query shipped %d spans", len(spans))
	}
}
