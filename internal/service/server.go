package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"piersearch/internal/piersearch"
	"piersearch/internal/plan"
	"piersearch/internal/telemetry"
	"piersearch/internal/wire"
)

// Options tune a daemon.
type Options struct {
	// MaxQueries bounds concurrently executing queries across all client
	// connections — the admission control. Excess OpenQuery requests are
	// refused immediately with CodeOverloaded rather than queued, so a
	// saturated daemon degrades by shedding load, not by growing latency.
	// 0 means 64.
	MaxQueries int
	// BatchSize caps results per Batch frame. The first result of every
	// query is flushed alone regardless, so time-to-first-result does not
	// wait for a batch to fill. 0 means 16.
	BatchSize int
	// PerClientQPS bounds the sustained rate of query and publish requests
	// one client connection may issue, as a token bucket refilled at this
	// many tokens per second. Requests beyond the bucket are refused with
	// CodeOverloaded and a retry-after hint, so one hot client sheds its
	// own excess instead of starving the shared MaxQueries admission pool.
	// 0 disables per-client limiting.
	PerClientQPS int
	// PerClientBurst is the token bucket's capacity — how many requests a
	// client may issue back-to-back before the rate bound bites. 0 means
	// PerClientQPS.
	PerClientBurst int
	// Logf, if set, receives one line per refused or failed query.
	// Retained as a source-compatible adapter: NewServer wraps it into
	// Logger when Logger is unset.
	Logf func(format string, args ...any)
	// Logger receives structured operational events (refusals, failed
	// queries). When nil, one is derived from Logf; with both unset the
	// daemon is silent.
	Logger *telemetry.Logger
	// Tracer, when set, records the daemon's side of distributed query
	// traces: one span per traced stream, parented under the client's
	// span, with the executor's plan/probe/RPC spans beneath it. The
	// spans collected for a traced query ship back on Done.
	Tracer *telemetry.Tracer
	// Metrics, when set, registers the daemon's service.* instruments
	// (admission, shed, per-code errors, TTFR) and the shared wire.mux.*
	// counters for every client session.
	Metrics *telemetry.Registry
}

func (o Options) maxQueries() int {
	if o.MaxQueries <= 0 {
		return 64
	}
	return o.MaxQueries
}

// maxBatchBytes bounds one Batch frame's result payload well under the
// transport's MaxFrame, so batching long filenames can never assemble an
// unsendable frame.
const maxBatchBytes = 1 << 20

func (o Options) batchSize() int {
	if o.BatchSize <= 0 {
		return 16
	}
	return o.BatchSize
}

// logger unifies the two logging options: Logger wins, Logf is wrapped.
func (o Options) logger() *telemetry.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	if o.Logf != nil {
		return telemetry.NewLogger(telemetry.LogfSink(o.Logf), telemetry.LevelDebug)
	}
	return nil
}

// tokenBucket is the per-connection admission bucket behind PerClientQPS.
// A nil bucket admits everything.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(qps, burst int) *tokenBucket {
	if qps <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = qps
	}
	return &tokenBucket{
		rate:   float64(qps),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// take consumes one token if available; otherwise it reports how long
// until the next token accrues, the client's retry-after hint.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}

// retryAfterMs rounds a bucket wait up to whole milliseconds, never
// reporting zero for an actual refusal (a zero hint reads as "no hint").
func retryAfterMs(d time.Duration) int {
	ms := int((d + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Server is a query-service daemon: it accepts mux sessions on a
// listener and answers the protocol of this package by executing query
// plans on its own node and streaming batches back.
type Server struct {
	search *piersearch.Search
	pub    *piersearch.Publisher
	opts   Options
	ln     net.Listener
	sem    chan struct{}
	log    *telemetry.Logger
	met    serverMetrics
	muxMet *wire.MuxMetrics

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	muxes  map[*wire.Mux]bool
}

// serverMetrics holds the daemon's pre-resolved instruments; the zero
// value (no registry) is all nil, which no-ops.
type serverMetrics struct {
	reg        *telemetry.Registry
	queries    *telemetry.Counter
	admitted   *telemetry.Counter
	shed       *telemetry.Counter
	shedClient *telemetry.Counter
	publishes  *telemetry.Counter
	ttfr       *telemetry.Histogram // ns from admission to first result flushed
	// errs is indexed by Code, pre-registered at construction so the
	// error path never mints a metric name at call time; slot 0 absorbs
	// any code outside the known enum.
	errs [CodeInternal + 1]*telemetry.Counter
}

// errCode resolves the per-code error counter; label-shaped variation
// lives in the metric name ("service.errors.overloaded").
func (m *serverMetrics) errCode(c Code) *telemetry.Counter {
	if c < 0 || int(c) >= len(m.errs) {
		c = 0
	}
	return m.errs[c]
}

// NewServer builds a daemon serving search (required) and pub (optional:
// nil refuses Publish requests) on ln.
func NewServer(ln net.Listener, search *piersearch.Search, pub *piersearch.Publisher, opts Options) *Server {
	s := &Server{
		search: search,
		pub:    pub,
		opts:   opts,
		ln:     ln,
		sem:    make(chan struct{}, opts.maxQueries()),
		log:    opts.logger(),
		muxes:  make(map[*wire.Mux]bool),
	}
	if reg := opts.Metrics; reg != nil {
		s.met = serverMetrics{
			reg:        reg,
			queries:    reg.Counter("service.queries"),
			admitted:   reg.Counter("service.admitted"),
			shed:       reg.Counter("service.shed.global"),
			shedClient: reg.Counter("service.shed.per_client"),
			publishes:  reg.Counter("service.publishes"),
			ttfr:       reg.Histogram("service.ttfr_ns"),
		}
		for c := CodeBadRequest; c <= CodeInternal; c++ {
			s.met.errs[c] = reg.Counter("service.errors." + c.String()) //lint:allow metricnames bounded by the Code enum, one registration per value at construction
		}
		s.met.errs[0] = reg.Counter("service.errors.unknown")
		reg.Gauge("service.active_queries", func() int64 { return int64(len(s.sem)) })
		s.muxMet = wire.RegisterMuxMetrics(reg)
	}
	return s
}

// Addr returns the daemon's listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ActiveQueries returns the number of queries currently admitted — the
// quantity MaxQueries bounds.
func (s *Server) ActiveQueries() int { return len(s.sem) }

// Serve accepts client connections until Close. Each connection becomes a
// mux session carrying any number of concurrent request streams.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		bucket := newTokenBucket(s.opts.PerClientQPS, s.opts.PerClientBurst)
		m := wire.NewServerMux(conn, func(st *wire.Stream, opening []byte) {
			// The Add is ordered against Close's Wait by s.mu: either this
			// handler registers before Close flips the flag, or it observes
			// the flag and backs out.
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				st.Close()
				return
			}
			s.wg.Add(1)
			s.mu.Unlock()
			defer s.wg.Done()
			s.handleStream(st, opening, bucket)
		})
		m.SetMetrics(s.muxMet)
		s.muxes[m] = true
		// Ordered against Close's Wait while still under s.mu, like the
		// stream-handler Add above.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			<-m.Done()
			s.mu.Lock()
			delete(s.muxes, m)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, severs every client session, and waits for
// handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	muxes := make([]*wire.Mux, 0, len(s.muxes))
	for m := range s.muxes {
		muxes = append(muxes, m)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, m := range muxes {
		m.Close()
	}
	s.wg.Wait()
}

// sendError best-effort ships a typed error and ends the stream. Bounded:
// a vanished peer must not pin the handler on a starved Send.
func (s *Server) sendError(st *wire.Stream, e *Error) {
	s.met.errCode(e.Code).Inc()
	// The request's own ctx may already be dead (that can be why we're
	// erroring); the farewell gets a detached, bounded window instead.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second) //lint:allow ctxflow farewell send outlives the request ctx; the timeout bounds it
	defer cancel()
	st.Send(ctx, EncodeError(e)) //nolint:errcheck // peer may be gone
	st.CloseSend()               //nolint:errcheck // peer may be gone
	st.Close()
}

// handleStream answers one request stream. bucket is the per-connection
// admission bucket (nil = unlimited).
func (s *Server) handleStream(st *wire.Stream, opening []byte, bucket *tokenBucket) {
	// The version byte sits right after the kind byte in every request
	// message — an offset that is invariant across protocol versions — so
	// it is checked before the strict body decode. A future version whose
	// body layout differs then gets the documented CodeVersion answer,
	// not a misleading bad-request from trailing-bytes validation.
	if len(opening) >= 2 {
		switch opening[0] {
		case MsgOpenQuery, MsgExplain, MsgPublish:
			if opening[1] != Version {
				s.sendError(st, &Error{Code: CodeVersion,
					Msg: fmt.Sprintf("daemon speaks version %d, request is version %d", Version, opening[1])})
				return
			}
		}
	}
	msg, err := Decode(opening)
	if err != nil {
		s.log.Warn("service: bad request", "err", err)
		s.sendError(st, &Error{Code: CodeBadRequest, Msg: err.Error()})
		return
	}
	// Per-client admission sits before the global query semaphore: a
	// client hammering past its rate is refused with its own retry-after
	// hint and never competes for the shared MaxQueries pool. Explain and
	// cancel are exempt — they cost no DHT traffic.
	switch msg.(type) {
	case *OpenQuery, *PublishReq:
		if ok, wait := bucket.take(); !ok {
			s.met.shedClient.Inc()
			s.log.Warn("service: request refused: client over rate", "limit_qps", s.opts.PerClientQPS)
			s.sendError(st, &Error{Code: CodeOverloaded, RetryAfterMs: retryAfterMs(wait),
				Msg: fmt.Sprintf("client exceeds %d requests/s; retry after %dms", s.opts.PerClientQPS, retryAfterMs(wait))})
			return
		}
	}
	switch m := msg.(type) {
	case *OpenQuery:
		s.handleQuery(st, m)
	case *ExplainQuery:
		s.handleExplain(st, m)
	case *PublishReq:
		s.handlePublish(st, m)
	default:
		s.sendError(st, &Error{Code: CodeBadRequest, Msg: fmt.Sprintf("unexpected opening message %T", msg)})
	}
}

func toQuery(m *OpenQuery) piersearch.Query {
	return piersearch.Query{Text: m.Text, Strategy: m.Strategy, Limit: m.Limit, Workers: m.Workers}
}

// classify maps an execution error to a protocol error: cancellations and
// unanswerable requests get their own codes so a client's retry policy can
// tell "don't retry this query" from "the daemon failed, retry elsewhere".
func classify(err error) *Error {
	switch {
	case errors.Is(err, plan.ErrCanceled):
		return &Error{Code: CodeCanceled, Msg: err.Error()}
	case errors.Is(err, piersearch.ErrInvalidQuery):
		return &Error{Code: CodeBadRequest, Msg: err.Error()}
	default:
		return &Error{Code: CodeInternal, Msg: err.Error()}
	}
}

// handleQuery executes one streaming query: admission, plan execution on
// this node, batches pushed under flow control, Done with the final stats
// and cost profile.
func (s *Server) handleQuery(st *wire.Stream, m *OpenQuery) {
	defer st.Close()
	s.met.queries.Inc()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.met.shed.Inc()
		s.log.Warn("service: query refused: at concurrency limit", "q", m.Text, "limit", cap(s.sem))
		s.sendError(st, &Error{Code: CodeOverloaded, Msg: fmt.Sprintf("daemon at its limit of %d concurrent queries", cap(s.sem))})
		return
	}
	s.met.admitted.Inc()
	admitted := time.Now()

	// The query context ends when the client cancels (MsgCancel or stream
	// reset), the connection dies, or this handler returns.
	ctx, cancel := context.WithCancel(context.Background()) //lint:allow ctxflow handler root: the stream is the parent, and Close resets every stream
	defer cancel()

	// Traced query: the daemon's stream span parents under the client's
	// span from the OpenQuery envelope; QueryContext and everything
	// below it (plan operators, lookup probes, RPCs to owners) nest
	// beneath it via ctx.
	var qspan *telemetry.ActiveSpan
	if m.TraceID != 0 && s.opts.Tracer != nil {
		ctx, qspan = s.opts.Tracer.StartRemote(ctx, m.TraceID, m.SpanID, "service.query")
		qspan.SetAttr("q", m.Text)
	}
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			p, err := st.Recv(ctx)
			if err != nil {
				// Reset, connection death, or our own exit canceling ctx:
				// stop the query either way. (A graceful client never
				// half-closes a query stream, so io.EOF also means gone.)
				cancel()
				return
			}
			if len(p) > 0 && p[0] == MsgCancel {
				cancel()
				return
			}
		}
	}()
	defer func() { cancel(); <-watchDone }()

	rs, err := s.search.QueryContext(ctx, toQuery(m))
	if err != nil {
		qspan.FinishErr(err)
		if ctx.Err() == nil {
			// Compile failures carry ErrInvalidQuery → bad-request; a plan
			// whose Open died executing the match phase is the daemon's
			// problem → internal, so the client knows a retry can help.
			s.log.Warn("service: query failed to open", "q", m.Text, "err", err)
			s.sendError(st, classify(err))
		}
		return
	}
	defer rs.Close()

	batchSize := s.opts.batchSize()
	pending := make([]piersearch.Result, 0, batchSize)
	pendingBytes := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := st.Send(ctx, EncodeBatch(pending))
		pending, pendingBytes = pending[:0], 0
		if errors.Is(err, wire.ErrFrameTooLarge) && ctx.Err() == nil {
			// A single result too big for any frame: this query fails,
			// the client's other streams live on.
			s.sendError(st, &Error{Code: CodeInternal, Msg: err.Error()})
		}
		return err
	}
	first := true
	for {
		r, err := rs.Next()
		if errors.Is(err, piersearch.ErrDone) {
			break
		}
		if err != nil {
			qspan.FinishErr(err)
			qspan = nil
			if ctx.Err() == nil {
				s.log.Warn("service: query died mid-stream", "q", m.Text, "err", err)
				flush() //nolint:errcheck // stream already failing
				s.sendError(st, classify(err))
			}
			return
		}
		pending = append(pending, r)
		pendingBytes += r.File.ItemTuple().EncodedSize()
		// The first result ships alone so the client's time-to-first-result
		// tracks the match phase; afterwards results batch up to BatchSize
		// results or maxBatchBytes, whichever the plan hits first — the
		// byte bound keeps a batch of long-named items far from the frame
		// limit, where an oversized payload would kill the query.
		if first || len(pending) >= batchSize || pendingBytes >= maxBatchBytes {
			if flush() != nil {
				qspan.FinishErr(ctx.Err())
				return
			}
			if first {
				s.met.ttfr.Observe(int64(time.Since(admitted)))
			}
			first = false
		}
	}
	if flush() != nil {
		qspan.FinishErr(ctx.Err())
		return
	}
	// Close the stream's span before collecting: the ring must hold it
	// for the client's tree to have a daemon-side root under its own
	// span. rs.Close ran implicitly when Next returned ErrDone (the plan
	// source fixes its wall clock and emits operator spans there).
	done := Done{Stats: rs.Stats(), Explain: rs.Explain()}
	if qspan != nil {
		qspan.Finish()
		done.Spans = s.opts.Tracer.TraceSpans(m.TraceID)
	}
	if st.Send(ctx, EncodeDone(done)) != nil {
		return
	}
	st.CloseSend() //nolint:errcheck // stream ends either way
}

// handleExplain compiles the query and returns the plan without executing
// anything.
func (s *Server) handleExplain(st *wire.Stream, m *ExplainQuery) {
	defer st.Close()
	text, err := s.search.Explain(toQuery(&m.OpenQuery))
	if err != nil {
		s.sendError(st, &Error{Code: CodeBadRequest, Msg: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second) //lint:allow ctxflow one-shot reply on a request with no ctx of its own; the timeout bounds it
	defer cancel()
	if st.Send(ctx, EncodeExplainResult(text)) != nil {
		return
	}
	st.CloseSend() //nolint:errcheck // stream ends either way
}

// handlePublish indexes one file through the daemon's publisher.
func (s *Server) handlePublish(st *wire.Stream, m *PublishReq) {
	defer st.Close()
	s.met.publishes.Inc()
	if s.pub == nil {
		s.sendError(st, &Error{Code: CodeBadRequest, Msg: "daemon does not accept publishes"})
		return
	}
	if m.Mode < piersearch.ModeInverted || m.Mode > piersearch.ModeBoth {
		s.sendError(st, &Error{Code: CodeBadRequest, Msg: fmt.Sprintf("unknown publish mode %d", m.Mode)})
		return
	}
	stats, err := s.pub.WithMode(m.Mode).PublishFile(m.File)
	if err != nil {
		s.sendError(st, &Error{Code: CodeBadRequest, Msg: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second) //lint:allow ctxflow one-shot reply on a request with no ctx of its own; the timeout bounds it
	defer cancel()
	if st.Send(ctx, EncodePublishDone(PublishDone{Stats: stats})) != nil {
		return
	}
	st.CloseSend() //nolint:errcheck // stream ends either way
}
