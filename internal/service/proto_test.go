package service

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"piersearch/internal/piersearch"
)

func TestOpenQueryRoundTrip(t *testing.T) {
	q := OpenQuery{Version: Version, Text: "madonna like a prayer", Strategy: piersearch.StrategyCache, Limit: 50, Workers: 8}
	got, err := Decode(EncodeOpenQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if *(got.(*OpenQuery)) != q {
		t.Errorf("round trip = %+v, want %+v", got, q)
	}

	eq, err := Decode(EncodeExplain(q))
	if err != nil {
		t.Fatal(err)
	}
	if eq.(*ExplainQuery).OpenQuery != q {
		t.Errorf("explain round trip = %+v", eq)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	files := []piersearch.File{
		{Name: "a.mp3", Size: 100, Host: "10.0.0.1", Port: 6346},
		{Name: "b side demo.mp3", Size: 2_000_000, Host: "10.0.0.2", Port: 7000},
	}
	var results []piersearch.Result
	for _, f := range files {
		results = append(results, piersearch.Result{File: f, FileID: f.ID()})
	}
	got, err := Decode(EncodeBatch(results))
	if err != nil {
		t.Fatal(err)
	}
	b := got.(*Batch)
	if len(b.Results) != 2 {
		t.Fatalf("%d results", len(b.Results))
	}
	for i := range results {
		if b.Results[i] != results[i] {
			t.Errorf("result %d = %+v, want %+v", i, b.Results[i], results[i])
		}
	}
}

func TestDoneErrorPublishRoundTrip(t *testing.T) {
	d := Done{
		Stats: piersearch.SearchStats{
			Strategy: piersearch.StrategyJoin, Keywords: 3, Matches: 12, Messages: 40,
			Bytes: 20_000, Hops: 14, PostingShipped: 57, MatchBytes: 850, MaxInFlight: 8,
			Wall: 1500 * time.Millisecond,
		},
		Explain: "Limit(n=50) [tuples=12]",
	}
	got, err := Decode(EncodeDone(d))
	if err != nil {
		t.Fatal(err)
	}
	gd := got.(*Done)
	if gd.Stats != d.Stats || gd.Explain != d.Explain || len(gd.Spans) != 0 {
		t.Errorf("done round trip = %+v, want %+v", got, d)
	}

	e := &Error{Code: CodeOverloaded, Msg: "busy"}
	gotE, err := Decode(EncodeError(e))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotE.(*Error), &Error{Code: CodeOverloaded}) || gotE.(*Error).Msg != "busy" {
		t.Errorf("error round trip = %+v", gotE)
	}

	p := PublishReq{Version: Version, File: piersearch.File{Name: "x.mp3", Size: 9, Host: "h", Port: 1}, Mode: piersearch.ModeBoth}
	gotP, err := Decode(EncodePublish(p))
	if err != nil {
		t.Fatal(err)
	}
	if *(gotP.(*PublishReq)) != p {
		t.Errorf("publish round trip = %+v", gotP)
	}

	pd := PublishDone{Stats: piersearch.PublishStats{Tuples: 7, Keywords: 3, Messages: 20, Bytes: 5000, MaxInFlight: 4, Wall: time.Second}}
	gotPD, err := Decode(EncodePublishDone(pd))
	if err != nil {
		t.Fatal(err)
	}
	if *(gotPD.(*PublishDone)) != pd {
		t.Errorf("publish done round trip = %+v", gotPD)
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                                      // kind zero
		{99},                                     // unknown kind
		{MsgOpenQuery},                           // truncated
		{MsgBatch, 0xff, 0xff, 0xff, 0xff, 0x0f}, // absurd batch count
		{MsgDone, 1},                             // truncated stats
		{MsgError},                               // no code
		{MsgCancel, 1},                           // cancel with a body
		{MsgPublish, 1, 0xfe},                    // truncated publish
		append([]byte{MsgExplainResult}, bytes.Repeat([]byte{0xff}, 9)...), // huge length prefix
	}
	for _, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("hostile input %v accepted", buf)
		}
	}
	// Trailing bytes after a well-formed message are rejected.
	good := EncodeOpenQuery(OpenQuery{Version: Version, Text: "x"})
	if _, err := Decode(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeBatchRejectsForeignTuples(t *testing.T) {
	// A batch whose tuple is not an Item tuple must error, not crash.
	payload := []byte{MsgBatch, 1}
	tuple := piersearch.File{Name: "n", Size: 1, Host: "h", Port: 2}.ItemTuple()[:2]
	payload = tuple.Encode(payload)
	if _, err := Decode(payload); err == nil {
		t.Error("foreign tuple batch accepted")
	}
}

func TestCodeStrings(t *testing.T) {
	for code, want := range map[Code]string{
		CodeBadRequest: "bad-request",
		CodeVersion:    "unsupported-version",
		CodeOverloaded: "overloaded",
		CodeCanceled:   "canceled",
		CodeInternal:   "internal",
		Code(42):       "code-42",
	} {
		if got := code.String(); got != want {
			t.Errorf("Code(%d).String() = %q, want %q", int(code), got, want)
		}
	}
	e := &Error{Code: CodeOverloaded, Msg: "m"}
	if !strings.Contains(e.Error(), "overloaded") {
		t.Errorf("Error() = %q", e.Error())
	}
}
