package service

import (
	"fmt"
	"time"

	"piersearch/internal/codec"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/telemetry"
)

// Version is the protocol version this build speaks. Requests carrying
// another version are refused with CodeVersion.
//
// Version 2 added the hot-key tier counters (CacheHits, Coalesced,
// FanoutReads) to the Done stats and the RetryAfterMs backoff hint to
// MsgError frames.
//
// Version 3 added distributed tracing: OpenQuery carries the client's
// trace context (trace + parent span IDs, zero when untraced) and Done
// carries the span records the daemon collected for the query.
const Version = 3

// Message kinds: the first byte of every stream payload.
const (
	// MsgOpenQuery starts a streaming query (client → daemon).
	MsgOpenQuery byte = iota + 1
	// MsgBatch carries one batch of results (daemon → client).
	MsgBatch
	// MsgDone ends a successful stream with final stats (daemon → client).
	MsgDone
	// MsgError reports a typed failure and ends the stream (daemon → client).
	MsgError
	// MsgCancel stops an in-flight query (client → daemon).
	MsgCancel
	// MsgExplain asks for the compiled plan without executing it.
	MsgExplain
	// MsgExplainResult answers MsgExplain.
	MsgExplainResult
	// MsgPublish indexes one file through the daemon.
	MsgPublish
	// MsgPublishDone answers MsgPublish.
	MsgPublishDone
)

// Code is a typed protocol error code.
type Code int

// Error codes.
const (
	// CodeBadRequest: the request was malformed or unanswerable (e.g. no
	// indexable keywords).
	CodeBadRequest Code = iota + 1
	// CodeVersion: the daemon does not speak the request's protocol version.
	CodeVersion
	// CodeOverloaded: admission control refused the query; retry later or
	// elsewhere.
	CodeOverloaded
	// CodeCanceled: the query's context ended before the stream finished.
	CodeCanceled
	// CodeInternal: execution failed on the daemon.
	CodeInternal
)

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeVersion:
		return "unsupported-version"
	case CodeOverloaded:
		return "overloaded"
	case CodeCanceled:
		return "canceled"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code-%d", int(c))
	}
}

// Error is a typed protocol failure, as shipped in MsgError frames.
type Error struct {
	Code Code
	Msg  string
	// RetryAfterMs is the daemon's backoff hint in milliseconds: with
	// CodeOverloaded it tells the client how long to wait before the next
	// attempt can be admitted. Zero means no hint.
	RetryAfterMs int
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("service: %s: %s", e.Code, e.Msg) }

// RetryAfter returns the daemon's backoff hint as a duration, zero when
// none was given.
func (e *Error) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMs) * time.Millisecond
}

// Is matches two protocol errors by code, so
// errors.Is(err, &service.Error{Code: CodeOverloaded}) works.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// OpenQuery is the body of MsgOpenQuery and MsgExplain.
type OpenQuery struct {
	Version  byte
	Text     string
	Strategy piersearch.Strategy
	Limit    int
	Workers  int

	// TraceID/SpanID carry the client's trace context so the daemon's
	// spans (and those of the owners it probes) parent under the
	// client's query span. Zero means the query is untraced.
	TraceID telemetry.TraceID
	SpanID  telemetry.SpanID
}

// PublishReq is the body of MsgPublish.
type PublishReq struct {
	Version byte
	File    piersearch.File
	Mode    piersearch.PublishMode
}

// Batch is the body of MsgBatch: results as Item tuples.
type Batch struct {
	Results []piersearch.Result
}

// Done is the body of MsgDone: the query's final cost figures plus the
// executed plan's per-operator cost profile and, for traced queries,
// the span records the daemon collected (its own plus those absorbed
// from the owners it probed).
type Done struct {
	Stats   piersearch.SearchStats
	Explain string
	Spans   []telemetry.Span
}

// ExplainResult is the body of MsgExplainResult.
type ExplainResult struct {
	Text string
}

// PublishDone is the body of MsgPublishDone.
type PublishDone struct {
	Stats piersearch.PublishStats
}

// Cancel is the body of MsgCancel.
type Cancel struct{}

// maxMsgItems bounds decoded collection sizes beyond the generic
// count-vs-buffer check, keeping hostile frames from shaping huge batches.
const maxMsgItems = 1 << 16

// --- encoders ---------------------------------------------------------------

func appendQuery(dst []byte, kind byte, q OpenQuery) []byte {
	dst = append(dst, kind, q.Version)
	dst = codec.AppendString(dst, q.Text)
	dst = append(dst, byte(q.Strategy))
	dst = codec.AppendUvarint(dst, uint64(q.Limit))
	dst = codec.AppendUvarint(dst, uint64(q.Workers))
	return telemetry.AppendTraceContext(dst, q.TraceID, q.SpanID)
}

// EncodeOpenQuery frames q as a MsgOpenQuery payload.
func EncodeOpenQuery(q OpenQuery) []byte { return appendQuery(nil, MsgOpenQuery, q) }

// EncodeExplain frames q as a MsgExplain payload.
func EncodeExplain(q OpenQuery) []byte { return appendQuery(nil, MsgExplain, q) }

// EncodeCancel frames a MsgCancel payload.
func EncodeCancel() []byte { return []byte{MsgCancel} }

// EncodeBatch frames results as a MsgBatch payload: each result travels as
// its Item tuple, the relation's own wire form.
func EncodeBatch(results []piersearch.Result) []byte {
	dst := append(codec.GetBuf(), MsgBatch)
	dst = codec.AppendUvarint(dst, uint64(len(results)))
	for _, r := range results {
		dst = r.File.ItemTuple().Encode(dst)
	}
	out := append([]byte(nil), dst...)
	codec.PutBuf(dst)
	return out
}

func appendSearchStats(dst []byte, s piersearch.SearchStats) []byte {
	dst = append(dst, byte(s.Strategy))
	for _, v := range []int{s.Keywords, s.Matches, s.Messages, s.Bytes, s.Hops, s.PostingShipped, s.MatchBytes, s.MaxInFlight, s.CacheHits, s.Coalesced, s.FanoutReads} {
		dst = codec.AppendVarint(dst, int64(v))
	}
	return codec.AppendVarint(dst, int64(s.Wall))
}

func readSearchStats(r *codec.Reader) piersearch.SearchStats {
	var s piersearch.SearchStats
	s.Strategy = piersearch.Strategy(r.Byte())
	for _, p := range []*int{&s.Keywords, &s.Matches, &s.Messages, &s.Bytes, &s.Hops, &s.PostingShipped, &s.MatchBytes, &s.MaxInFlight, &s.CacheHits, &s.Coalesced, &s.FanoutReads} {
		*p = int(r.Varint())
	}
	s.Wall = time.Duration(r.Varint())
	return s
}

// EncodeDone frames the final stats, executed-plan profile and trace
// spans.
func EncodeDone(d Done) []byte {
	dst := appendSearchStats([]byte{MsgDone}, d.Stats)
	dst = codec.AppendString(dst, d.Explain)
	return telemetry.AppendSpans(dst, d.Spans)
}

// EncodeError frames a typed error.
func EncodeError(e *Error) []byte {
	dst := codec.AppendUvarint([]byte{MsgError}, uint64(e.Code))
	dst = codec.AppendString(dst, e.Msg)
	return codec.AppendUvarint(dst, uint64(e.RetryAfterMs))
}

// EncodeExplainResult frames an explain answer.
func EncodeExplainResult(text string) []byte {
	return codec.AppendString([]byte{MsgExplainResult}, text)
}

// EncodePublish frames a publish request.
func EncodePublish(p PublishReq) []byte {
	dst := []byte{MsgPublish, p.Version}
	dst = codec.AppendString(dst, p.File.Name)
	dst = codec.AppendVarint(dst, p.File.Size)
	dst = codec.AppendString(dst, p.File.Host)
	dst = codec.AppendUvarint(dst, uint64(p.File.Port))
	return append(dst, byte(p.Mode))
}

// EncodePublishDone frames a publish acknowledgment.
func EncodePublishDone(d PublishDone) []byte {
	dst := []byte{MsgPublishDone}
	for _, v := range []int{d.Stats.Tuples, d.Stats.Keywords, d.Stats.Messages, d.Stats.Bytes, d.Stats.MaxInFlight} {
		dst = codec.AppendVarint(dst, int64(v))
	}
	return codec.AppendVarint(dst, int64(d.Stats.Wall))
}

// --- decoder ----------------------------------------------------------------

// Decode parses one protocol message, returning one of the body types
// (*OpenQuery with kind distinguishing query vs explain is avoided:
// MsgExplain decodes to *ExplainQuery). Hostile input — truncated frames,
// absurd lengths, unknown kinds — comes back as an error, never a panic
// or an outsized allocation.
func Decode(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("service: empty message")
	}
	kind, body := payload[0], payload[1:]
	r := codec.NewReader(body)
	switch kind {
	case MsgOpenQuery, MsgExplain:
		q := OpenQuery{Version: r.Byte(), Text: r.String(), Strategy: piersearch.Strategy(r.Byte())}
		q.Limit = int(r.Uvarint())
		q.Workers = int(r.Uvarint())
		q.TraceID, q.SpanID = telemetry.ReadTraceContext(r)
		if err := r.Finish(); err != nil {
			return nil, err
		}
		if kind == MsgExplain {
			return &ExplainQuery{q}, nil
		}
		return &q, nil

	case MsgBatch:
		n := r.Count()
		if n > maxMsgItems {
			r.Fail("unreasonable batch size")
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		b := &Batch{Results: make([]piersearch.Result, 0, min(n, 256))}
		rest := r.Take(r.Len())
		for i := 0; i < n; i++ {
			t, used, err := pier.DecodeTuple(rest)
			if err != nil {
				return nil, fmt.Errorf("service: batch tuple %d: %w", i, err)
			}
			rest = rest[used:]
			file, id, err := piersearch.FileFromItemTuple(t)
			if err != nil {
				return nil, fmt.Errorf("service: batch tuple %d: %w", i, err)
			}
			b.Results = append(b.Results, piersearch.Result{File: file, FileID: id})
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("service: trailing batch bytes")
		}
		return b, nil

	case MsgDone:
		d := &Done{Stats: readSearchStats(r)}
		d.Explain = r.String()
		d.Spans = telemetry.ReadSpans(r)
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return d, nil

	case MsgError:
		e := &Error{Code: Code(r.Uvarint())}
		e.Msg = r.String()
		e.RetryAfterMs = int(r.Uvarint())
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return e, nil

	case MsgCancel:
		if len(body) != 0 {
			return nil, fmt.Errorf("service: cancel carries a body")
		}
		return &Cancel{}, nil

	case MsgExplainResult:
		res := &ExplainResult{Text: r.String()}
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return res, nil

	case MsgPublish:
		p := &PublishReq{Version: r.Byte()}
		p.File.Name = r.String()
		p.File.Size = r.Varint()
		p.File.Host = r.String()
		p.File.Port = int(r.Uvarint())
		p.Mode = piersearch.PublishMode(r.Byte())
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return p, nil

	case MsgPublishDone:
		d := &PublishDone{}
		for _, p := range []*int{&d.Stats.Tuples, &d.Stats.Keywords, &d.Stats.Messages, &d.Stats.Bytes, &d.Stats.MaxInFlight} {
			*p = int(r.Varint())
		}
		d.Stats.Wall = time.Duration(r.Varint())
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return d, nil

	default:
		return nil, fmt.Errorf("service: unknown message kind %d", kind)
	}
}

// ExplainQuery is MsgExplain's decoded form: an OpenQuery asking for the
// plan instead of its execution.
type ExplainQuery struct {
	OpenQuery
}
