package service_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/plan"
	"piersearch/internal/service"
	"piersearch/internal/wire"
)

// env is a real-TCP deployment: a DHT cluster served over loopback
// sockets, one query-service daemon on the first node, and published
// files. The client side never joins the DHT.
type env struct {
	transport *wire.TCPTransport
	engines   []*pier.Engine
	daemon    *service.Server
}

func newEnv(t testing.TB, nodes, nfiles int, opts service.Options) *env {
	t.Helper()
	transport := wire.NewTCPTransport()
	t.Cleanup(transport.Close)
	dhtNodes := make([]*dht.Node, nodes)
	engines := make([]*pier.Engine, nodes)
	for i := range dhtNodes {
		ln, err := wire.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dhtNodes[i] = dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, transport, dht.Config{})
		srv := wire.NewServer(dhtNodes[i], ln)
		go srv.Serve() //nolint:errcheck // closed in cleanup
		t.Cleanup(srv.Close)
		engines[i] = pier.NewEngine(dhtNodes[i], pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engines[i])
	}
	for i := 1; i < nodes; i++ {
		if err := dhtNodes[i].Bootstrap(dhtNodes[0].Info()); err != nil {
			t.Fatal(err)
		}
	}
	pub := piersearch.NewPublisher(engines[1%nodes], piersearch.ModeBoth, piersearch.Tokenizer{})
	for i := 0; i < nfiles; i++ {
		f := piersearch.File{
			Name: fmt.Sprintf("common stream track%02d.mp3", i),
			Size: int64(1000 + i), Host: fmt.Sprintf("10.7.0.%d", i), Port: 6346,
		}
		if _, err := pub.PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}

	// The daemon executes queries on node 0 and accepts remote publishes.
	ln, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	daemon := service.NewServer(ln,
		piersearch.NewSearch(engines[0], piersearch.Tokenizer{}),
		piersearch.NewPublisher(engines[0], piersearch.ModeBoth, piersearch.Tokenizer{}),
		opts)
	go daemon.Serve() //nolint:errcheck // closed in cleanup
	t.Cleanup(daemon.Close)
	return &env{transport: transport, engines: engines, daemon: daemon}
}

func drain(t testing.TB, rs *piersearch.ResultStream) []piersearch.Result {
	t.Helper()
	var out []piersearch.Result
	for {
		r, err := rs.Next()
		if errors.Is(err, piersearch.ErrDone) {
			return out
		}
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		out = append(out, r)
	}
}

func sortResults(rs []piersearch.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].File.Name != rs[j].File.Name {
			return rs[i].File.Name < rs[j].File.Name
		}
		return rs[i].File.Host < rs[j].File.Host
	})
}

// TestClientDaemonEndToEnd: a client that never joined the DHT queries a
// daemon over real TCP with both strategies and gets exactly the results
// an in-process caller gets.
func TestClientDaemonEndToEnd(t *testing.T) {
	e := newEnv(t, 6, 8, service.Options{})
	client := service.Dial(e.daemon.Addr())
	defer client.Close()
	ctx := context.Background()

	local := piersearch.NewSearch(e.engines[2], piersearch.Tokenizer{})
	for _, strat := range []piersearch.Strategy{piersearch.StrategyJoin, piersearch.StrategyCache} {
		rs, err := client.Query(ctx, piersearch.Query{Text: "common stream", Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		remote := drain(t, rs)
		stats := rs.Stats()
		rs.Close()

		want, _, err := local.Query("common stream", strat, 0)
		if err != nil {
			t.Fatal(err)
		}
		sortResults(remote)
		if len(remote) != len(want) {
			t.Fatalf("%v: remote %d results, local %d", strat, len(remote), len(want))
		}
		for i := range want {
			if remote[i] != want[i] {
				t.Errorf("%v result %d: remote %+v, local %+v", strat, i, remote[i], want[i])
			}
		}
		if stats.Messages == 0 || stats.Keywords != 2 {
			t.Errorf("%v: daemon stats not shipped: %+v", strat, stats)
		}
		if stats.Strategy != strat {
			t.Errorf("stats strategy = %v, want %v", stats.Strategy, strat)
		}
	}
}

// TestRemoteStreamingTTFR pins the tentpole behavior: the first result
// batch reaches the client while the daemon is still executing the rest
// of the query, so time-to-first-result beats the full-query wall time.
func TestRemoteStreamingTTFR(t *testing.T) {
	e := newEnv(t, 6, 24, service.Options{BatchSize: 4})
	// Wide-area latency on every DHT hop from here on: the item-fetch
	// phase becomes the dominant, batch-by-batch cost.
	e.transport.Delay = 15 * time.Millisecond

	client := service.Dial(e.daemon.Addr())
	defer client.Close()

	start := time.Now()
	rs, err := client.Query(context.Background(), piersearch.Query{
		Text: "common stream", Strategy: piersearch.StrategyJoin, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.Next(); err != nil {
		t.Fatalf("first result: %v", err)
	}
	ttfr := time.Since(start)
	rest := drain(t, rs)
	total := time.Since(start)
	if len(rest) != 23 {
		t.Fatalf("%d results after the first, want 23", len(rest))
	}
	if ttfr >= total {
		t.Errorf("TTFR %v did not beat full-query wall time %v: stream is not streaming", ttfr, total)
	}
	t.Logf("TTFR %v vs full drain %v (%d results)", ttfr, total, len(rest)+1)
}

// TestCancelMidStreamNoLeak: canceling an in-flight remote query severs
// the stream promptly, cancels the daemon-side plan (admission slot
// drains), and leaves no goroutines behind on either side.
func TestCancelMidStreamNoLeak(t *testing.T) {
	e := newEnv(t, 6, 24, service.Options{BatchSize: 2})
	e.transport.Delay = 10 * time.Millisecond

	client := service.Dial(e.daemon.Addr())
	defer client.Close()

	// Warm the session with the same query shape first: the baseline must
	// include the mux read loops AND the DHT connection pool this query
	// populates (each pooled conn keeps a server-side handler goroutine
	// alive by design — pool growth is not a leak).
	warm, err := client.Query(context.Background(), piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyJoin, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, warm)
	warm.Close()
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	rs, err := client.Query(ctx, piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyJoin, Workers: 1})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		cancel()
		t.Fatalf("first result: %v", err)
	}
	cancel()
	for {
		_, err := rs.Next()
		if err == nil {
			continue // results already on the wire may still surface
		}
		if !errors.Is(err, plan.ErrCanceled) {
			t.Errorf("post-cancel Next = %v, want plan.ErrCanceled", err)
		}
		break
	}
	rs.Close()

	// Both the daemon's handler (admission slot) and every goroutine the
	// canceled query spawned must drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.daemon.ActiveQueries() == 0 && runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("after cancel: %d active queries, %d goroutines (baseline %d)\n%s",
		e.daemon.ActiveQueries(), runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

// TestAdmissionControl: a daemon at MaxQueries sheds the next query with
// CodeOverloaded instead of queueing it, and admits again once a slot
// frees.
func TestAdmissionControl(t *testing.T) {
	e := newEnv(t, 6, 24, service.Options{MaxQueries: 1, BatchSize: 1})
	client := service.Dial(e.daemon.Addr())
	defer client.Close()
	ctx := context.Background()

	// Query 1 fills the only slot and stalls: the client does not consume,
	// so the daemon blocks on flow control with the slot held.
	rs1, err := client.Query(ctx, piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyJoin})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs1.Next(); err != nil {
		t.Fatalf("query 1 first result: %v", err)
	}
	waitFor(t, func() bool { return e.daemon.ActiveQueries() == 1 })

	_, err = drainErr(client.Query(ctx, piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyCache}))
	var se *service.Error
	if !errors.As(err, &se) || se.Code != service.CodeOverloaded {
		t.Fatalf("second query error = %v, want CodeOverloaded", err)
	}

	// Releasing query 1 frees the slot; the daemon admits again.
	drain(t, rs1)
	rs1.Close()
	waitFor(t, func() bool { return e.daemon.ActiveQueries() == 0 })
	rs3, err := client.Query(ctx, piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyCache})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, rs3); len(got) != 24 {
		t.Errorf("post-release query: %d results, want 24", len(got))
	}
	rs3.Close()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// drainErr consumes a stream until its first error.
func drainErr(rs *piersearch.ResultStream, err error) ([]piersearch.Result, error) {
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	var out []piersearch.Result
	for {
		r, err := rs.Next()
		if errors.Is(err, piersearch.ErrDone) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// TestRemoteExplain: the daemon renders the plan it would run, without
// executing it; a completed remote stream ships the executed profile.
func TestRemoteExplain(t *testing.T) {
	e := newEnv(t, 6, 4, service.Options{})
	client := service.Dial(e.daemon.Addr())
	defer client.Close()
	ctx := context.Background()

	text, err := client.Explain(ctx, piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyJoin, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ChainJoin(Inverted", "Limit(n=10)", "tuples=0"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}

	rs, err := client.Query(ctx, piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyJoin})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, rs)
	profile := rs.Explain()
	rs.Close()
	if !strings.Contains(profile, "msgs=") {
		t.Errorf("executed remote profile missing traffic:\n%s", profile)
	}
}

// TestRemotePublish: a client indexes a file through the daemon, and a
// subsequent remote query finds it.
func TestRemotePublish(t *testing.T) {
	e := newEnv(t, 6, 2, service.Options{})
	client := service.Dial(e.daemon.Addr())
	defer client.Close()
	ctx := context.Background()

	f := piersearch.File{Name: "remotely published rarity.mp3", Size: 777, Host: "10.9.9.9", Port: 6346}
	stats, err := client.Publish(ctx, f, piersearch.ModeBoth)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples == 0 || stats.Keywords != 3 {
		t.Errorf("publish stats = %+v", stats)
	}
	got, err := drainErr(client.Query(ctx, piersearch.Query{Text: "remotely rarity", Strategy: piersearch.StrategyJoin}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].File != f {
		t.Fatalf("remote publish not found: %+v", got)
	}
}

func dialTCP(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// TestVersionRefused: a request from a future protocol version gets
// CodeVersion, not a guess.
func TestVersionRefused(t *testing.T) {
	e := newEnv(t, 4, 0, service.Options{})
	conn, err := dialTCP(e.daemon.Addr())
	if err != nil {
		t.Fatal(err)
	}
	m := wire.NewClientMux(conn)
	defer m.Close()
	st, err := m.Open(service.EncodeOpenQuery(service.OpenQuery{Version: 99, Text: "x"}), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, err := st.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	msg, err := service.Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	se, ok := msg.(*service.Error)
	if !ok || se.Code != service.CodeVersion {
		t.Fatalf("version-99 answer = %#v, want CodeVersion error", msg)
	}

	// A future version whose body layout v3 cannot even parse must still
	// get CodeVersion — the version byte's offset is the invariant.
	future := append(service.EncodeOpenQuery(service.OpenQuery{Version: 4, Text: "x"}), 0xAA, 0xBB)
	st2, err := m.Open(future, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	p2, err := st2.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	msg2, err := service.Decode(p2)
	if err != nil {
		t.Fatal(err)
	}
	se2, ok := msg2.(*service.Error)
	if !ok || se2.Code != service.CodeVersion {
		t.Fatalf("future-layout answer = %#v, want CodeVersion error", msg2)
	}
}

// TestPerClientRateLimit: a client past its token bucket is refused with
// CodeOverloaded and a positive retry-after hint, and is admitted again
// once the bucket refills.
func TestPerClientRateLimit(t *testing.T) {
	e := newEnv(t, 4, 4, service.Options{PerClientQPS: 5, PerClientBurst: 2})
	client := service.Dial(e.daemon.Addr())
	defer client.Close()
	ctx := context.Background()

	q := piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyCache}
	// The burst admits two back-to-back queries.
	for i := 0; i < 2; i++ {
		if _, err := drainErr(client.Query(ctx, q)); err != nil {
			t.Fatalf("burst query %d: %v", i, err)
		}
	}
	// The third, issued immediately, must be shed with a backoff hint.
	var se *service.Error
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := drainErr(client.Query(ctx, q))
		if errors.As(err, &se) && se.Code == service.CodeOverloaded {
			break
		}
		if err != nil {
			t.Fatalf("rate-limited query: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client was never rate-limited")
		}
	}
	if se.RetryAfter() <= 0 {
		t.Errorf("overloaded error carries no retry-after hint: %+v", se)
	}

	// Waiting out the hint (bounded) refills the bucket.
	wait := se.RetryAfter()
	if wait > time.Second {
		wait = time.Second
	}
	time.Sleep(wait + 50*time.Millisecond)
	if _, err := drainErr(client.Query(ctx, q)); err != nil {
		t.Fatalf("post-refill query: %v", err)
	}
}

// TestBadQueryRefused: an unanswerable query (no indexable keywords)
// comes back as CodeBadRequest through the stream.
func TestBadQueryRefused(t *testing.T) {
	e := newEnv(t, 4, 0, service.Options{})
	client := service.Dial(e.daemon.Addr())
	defer client.Close()
	_, err := drainErr(client.Query(context.Background(), piersearch.Query{Text: "...", Strategy: piersearch.StrategyJoin}))
	var se *service.Error
	if !errors.As(err, &se) || se.Code != service.CodeBadRequest {
		t.Fatalf("empty-keyword query error = %v, want CodeBadRequest", err)
	}
}
