// Package service is the network query service: PIER's public API as a
// versioned, streaming wire protocol. A daemon (Server) executes compiled
// query plans on the node that receives them and pushes result batches
// back over multiplexed streams; a Client submits queries from any
// process — joining the DHT is no longer required to search it, which is
// the paper's actual deployment shape (queries are handed to the network,
// not assembled by a library caller in-process).
//
// # Transport
//
// The protocol runs over wire.Mux streams: one TCP connection per
// client carries any number of concurrent queries, each on its own
// stream with credit-based flow control (the daemon can have at most
// window-many unconsumed batches in flight, so a slow reader
// backpressures the executor instead of ballooning the daemon's heap).
//
// # Messages
//
// Every stream payload is one message: a kind byte followed by a body in
// the internal/codec primitives. The stream's opening payload carries the
// request; the daemon answers with response messages on the same stream.
//
//	OpenQuery     version | text | strategy | limit | workers
//	Batch         uvarint n | n x Item tuple (pier.Tuple wire form)
//	Done          SearchStats | explain string
//	Error         uvarint code | message
//	Cancel        (empty)
//	Explain       version | text | strategy | limit | workers
//	ExplainResult explain string
//	Publish       version | name | size | host | port | mode
//	PublishDone   PublishStats
//
// A query stream's life: the client opens the stream with OpenQuery; the
// daemon admits it (or answers Error/overloaded), executes the plan, and
// pushes Batch frames as results materialize — the first result ships
// immediately so time-to-first-result tracks the match phase, not the
// full drain — then Done with the final stats and the executed plan's
// cost profile. The client cancels by sending Cancel or resetting the
// stream; either way the daemon's query context is canceled, in-flight
// DHT round-trips abort, and the admission slot frees.
//
// Version negotiation is per-request: every request message leads with
// the protocol version, and a daemon that does not speak it answers
// Error/unsupported-version rather than guessing. The version byte's
// position — immediately after the kind byte — is a protocol invariant
// across all versions, which is what lets a daemon identify a request
// from a version whose body layout it cannot parse.
package service
