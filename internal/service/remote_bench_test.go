package service_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"piersearch/internal/piersearch"
	"piersearch/internal/service"
)

// benchEnv builds one shared daemon deployment for the remote-query
// benchmarks: mild per-RPC latency so the item-fetch phase has a shape,
// enough files that a full drain is visibly longer than the first batch.
func benchEnv(b *testing.B) *service.Client {
	e := newEnv(b, 6, 24, service.Options{BatchSize: 4})
	e.transport.Delay = 2 * time.Millisecond
	client := service.Dial(e.daemon.Addr())
	b.Cleanup(func() { client.Close() })
	return client
}

// BenchmarkRemoteQueryTTFR measures time-to-first-result of a streaming
// remote query — the latency a user actually perceives — and reports it
// alongside the full drain time, quantifying what batch-at-the-end
// delivery would cost (ttfr-ns vs drain-ns per op).
func BenchmarkRemoteQueryTTFR(b *testing.B) {
	client := benchEnv(b)
	q := piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyJoin, Workers: 2}
	var ttfr, drainTime time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rs, err := client.Query(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rs.Next(); err != nil {
			b.Fatal(err)
		}
		ttfr += time.Since(start)
		n := 1
		for {
			_, err := rs.Next()
			if errors.Is(err, piersearch.ErrDone) {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		drainTime += time.Since(start)
		rs.Close()
		if n != 24 {
			b.Fatalf("%d results, want 24", n)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ttfr.Nanoseconds())/float64(b.N), "ttfr-ns/op")
	b.ReportMetric(float64(drainTime.Nanoseconds())/float64(b.N), "drain-ns/op")
}

// BenchmarkRemoteQueryBatch is the non-streaming comparison: the caller
// materializes the full result set before looking at any of it, so the
// perceived latency IS the drain time.
func BenchmarkRemoteQueryBatch(b *testing.B) {
	client := benchEnv(b)
	q := piersearch.Query{Text: "common stream", Strategy: piersearch.StrategyJoin, Workers: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := drainErr(client.Query(context.Background(), q))
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 24 {
			b.Fatalf("%d results, want 24", len(out))
		}
	}
}
