package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := Generate(smallCfg())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != len(orig.Files) || len(got.Queries) != len(orig.Queries) {
		t.Fatalf("loaded %d files / %d queries", len(got.Files), len(got.Queries))
	}
	for i := range orig.Files {
		if !reflect.DeepEqual(got.Files[i], orig.Files[i]) {
			t.Fatalf("file %d differs", i)
		}
	}
	for i := range orig.Queries {
		if !reflect.DeepEqual(got.Queries[i], orig.Queries[i]) {
			t.Fatalf("query %d differs", i)
		}
	}
	if got.Cfg != orig.Cfg {
		t.Errorf("config differs: %+v vs %+v", got.Cfg, orig.Cfg)
	}
}

func TestLoadedTraceIsUsable(t *testing.T) {
	orig := Generate(smallCfg())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Derived statistics match the original exactly.
	if got.TotalInstances() != orig.TotalInstances() {
		t.Error("instance counts differ")
	}
	if got.SingletonInstanceFrac() != orig.SingletonInstanceFrac() {
		t.Error("singleton fractions differ")
	}
	// Placement works and is deterministic across two loads.
	var buf2 bytes.Buffer
	orig.Save(&buf2)
	again, _ := Load(&buf2)
	p1 := got.Placement(1000)
	p2 := again.Placement(1000)
	for i := range p1 {
		if !reflect.DeepEqual(p1[i], p2[i]) {
			t.Fatalf("placement differs at rank %d", i)
		}
	}
	// Matching still works on loaded data.
	m := got.MatchingFiles()
	if len(m) != len(got.Queries) {
		t.Errorf("matching sets = %d", len(m))
	}
}

func TestSaveLoadFile(t *testing.T) {
	orig := Generate(smallCfg())
	path := filepath.Join(t.TempDir(), "trace.gob.gz")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != len(orig.Files) {
		t.Errorf("loaded %d files", len(got.Files))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadFile("/nonexistent/path"); err == nil {
		t.Error("missing file accepted")
	}
	// Truncated stream.
	orig := Generate(smallCfg())
	var buf bytes.Buffer
	orig.Save(&buf)
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated stream accepted")
	}
}
