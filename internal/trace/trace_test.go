package trace

import (
	"math"
	"strings"
	"testing"
)

// smallCfg keeps test runtime low while preserving distribution shape.
func smallCfg() Config {
	return Config{
		DistinctFiles: 8000,
		TargetCopies:  25000,
		SingletonFrac: 0.23,
		Hosts:         6000,
		Vocabulary:    5000,
		Queries:       300,
		Seed:          1,
	}
}

func TestCalibrateReplicasHitsTargets(t *testing.T) {
	counts := CalibrateReplicas(100_000, 315_546, 0.23)
	total, singles := 0, 0
	for _, c := range counts {
		total += c
		if c == 1 {
			singles++
		}
	}
	frac := float64(singles) / float64(total)
	if math.Abs(frac-0.23) > 0.05 {
		t.Errorf("singleton instance frac = %.3f, want 0.23 +/- 0.05", frac)
	}
	if math.Abs(float64(total)-315_546)/315_546 > 0.25 {
		t.Errorf("total instances = %d, want within 25%% of 315546", total)
	}
	// Monotone non-increasing by rank.
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("replica counts not sorted at rank %d", i)
		}
	}
	if counts[len(counts)-1] < 1 {
		t.Error("replica count below 1")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	tr := Generate(smallCfg())
	if len(tr.Files) != 8000 {
		t.Fatalf("files = %d", len(tr.Files))
	}
	if len(tr.Queries) != 300 {
		t.Fatalf("queries = %d", len(tr.Queries))
	}
	frac := tr.SingletonInstanceFrac()
	if frac < 0.1 || frac > 0.4 {
		t.Errorf("singleton frac = %.3f", frac)
	}
	// Filenames distinct.
	seen := map[string]bool{}
	for _, f := range tr.Files {
		if seen[f.Name] {
			t.Fatalf("duplicate filename %q", f.Name)
		}
		seen[f.Name] = true
		if len(f.Terms) == 0 || f.Replicas < 1 {
			t.Fatalf("malformed file %+v", f)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallCfg())
	b := Generate(smallCfg())
	if a.Files[123].Name != b.Files[123].Name {
		t.Error("generation not deterministic")
	}
	if a.Queries[7].Text != b.Queries[7].Text {
		t.Error("queries not deterministic")
	}
}

func TestQueriesDerivedFromTargetFiles(t *testing.T) {
	tr := Generate(smallCfg())
	for _, q := range tr.Queries {
		target := tr.Files[q.TargetRank]
		set := map[string]bool{}
		for _, term := range target.Terms {
			set[term] = true
		}
		for _, term := range q.Terms {
			if !set[term] {
				t.Fatalf("query term %q not in target file %q", term, target.Name)
			}
		}
		if len(q.Terms) == 0 || len(q.Terms) > 3 {
			t.Fatalf("query has %d terms", len(q.Terms))
		}
	}
}

func TestQueryWorkloadHasRareMass(t *testing.T) {
	tr := Generate(smallCfg())
	rare := 0
	for _, q := range tr.Queries {
		if tr.Files[q.TargetRank].Replicas <= 3 {
			rare++
		}
	}
	frac := float64(rare) / float64(len(tr.Queries))
	if frac < 0.2 {
		t.Errorf("rare-target query fraction = %.2f, want >= 0.2 (the long tail is substantial)", frac)
	}
	if frac > 0.95 {
		t.Errorf("rare-target query fraction = %.2f, workload has no popular mass", frac)
	}
}

func TestRareFilesUseRarerTerms(t *testing.T) {
	// The TF-scheme signal: average global term frequency of rare files'
	// terms must be well below that of popular files' terms.
	tr := Generate(smallCfg())
	freq := tr.TermInstanceFrequency()
	avgMinFreq := func(files []DistinctFile) float64 {
		sum := 0.0
		for _, f := range files {
			minF := math.MaxFloat64
			for _, term := range f.Terms {
				if v := float64(freq[term]); v < minF {
					minF = v
				}
			}
			sum += minF
		}
		return sum / float64(len(files))
	}
	popular := avgMinFreq(tr.Files[:500])
	rare := avgMinFreq(tr.Files[len(tr.Files)-500:])
	if rare >= popular {
		t.Errorf("rare files' min term freq %.1f >= popular %.1f: no TF signal", rare, popular)
	}
}

func TestPlacementDistinctHosts(t *testing.T) {
	tr := Generate(smallCfg())
	placement := tr.Placement(6000)
	if len(placement) != len(tr.Files) {
		t.Fatalf("placement length %d", len(placement))
	}
	for rank, hosts := range placement {
		want := tr.Files[rank].Replicas
		if want > 6000 {
			want = 6000
		}
		if len(hosts) != want {
			t.Fatalf("rank %d placed %d, want %d", rank, len(hosts), want)
		}
		seen := map[int32]bool{}
		for _, h := range hosts {
			if h < 0 || h >= 6000 {
				t.Fatalf("host %d out of range", h)
			}
			if seen[h] {
				t.Fatalf("rank %d placed twice on host %d", rank, h)
			}
			seen[h] = true
		}
	}
}

func TestMatchingFilesContainTarget(t *testing.T) {
	tr := Generate(smallCfg())
	matches := tr.MatchingFiles()
	for qi, q := range tr.Queries {
		found := false
		for _, rank := range matches[qi] {
			if rank == q.TargetRank {
				found = true
			}
			// Every reported match must contain all query terms.
			set := map[string]bool{}
			for _, term := range tr.Files[rank].Terms {
				set[term] = true
			}
			for _, term := range q.Terms {
				if !set[term] {
					t.Fatalf("query %d: match %d lacks term %q", qi, rank, term)
				}
			}
		}
		if !found {
			t.Fatalf("query %d: target %d not among its own matches", qi, q.TargetRank)
		}
	}
}

func TestFrequencyTables(t *testing.T) {
	tr := Generate(smallCfg())
	tf := tr.TermInstanceFrequency()
	if len(tf) == 0 {
		t.Fatal("no term frequencies")
	}
	total := 0
	for _, v := range tf {
		total += v
	}
	// Each instance contributes len(terms) entries.
	wantMin := tr.TotalInstances() * 3 // MinTermsPerFile
	if total < wantMin {
		t.Errorf("term freq mass %d < %d", total, wantMin)
	}
	pf := tr.PairInstanceFrequency()
	if len(pf) == 0 {
		t.Fatal("no pair frequencies")
	}
}

func TestVocabularyShape(t *testing.T) {
	tr := Generate(smallCfg())
	for _, f := range tr.Files[:100] {
		if !strings.HasSuffix(f.Name, ".mp3") {
			t.Fatalf("filename %q lacks extension", f.Name)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := smallCfg()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Generate(cfg)
	}
}

func BenchmarkMatchingFiles(b *testing.B) {
	tr := Generate(smallCfg())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.MatchingFiles()
	}
}
