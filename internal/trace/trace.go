// Package trace generates synthetic Gnutella content and query workloads.
//
// The paper's model and scheme experiments (§6) consume traces collected
// from the live Gnutella network: 315,546 file instances on 75,129 hosts,
// 700 replayed queries, 38,900 distinct filename terms. Those traces are
// not available, so this package synthesises workloads with the published
// aggregate properties: a long-tailed (Zipf-like) replica distribution
// calibrated so ~23% of file instances are singletons (the paper's Figure
// 10 anchor: replica threshold 1 publishes 23% of items), filenames drawn
// from a Zipf term vocabulary with rare files biased toward rare terms
// (the signal the TF/TPF schemes exploit), and a query workload with
// substantial rare-item mass (§8: the tail is "a substantial fraction of
// the query workload").
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Config parameterises workload generation. Zero fields take defaults
// scaled to the paper's trace (§6.2).
type Config struct {
	DistinctFiles   int     // distinct filenames (default 100,000)
	TargetCopies    int     // total file instances (default 315,546)
	SingletonFrac   float64 // fraction of instances with one replica (default 0.23)
	Hosts           int     // hosts holding instances (default 75,129)
	Vocabulary      int     // distinct terms (default 40,000)
	TermZipfS       float64 // term popularity exponent (default 1.05)
	Queries         int     // workload size (default 700)
	RareQueryFrac   float64 // fraction of queries drawn uniformly over ranks (default 0.55)
	MinTermsPerFile int     // filename length bounds (defaults 3..6)
	MaxTermsPerFile int
	Seed            int64
}

// Normalize fills defaults and returns the config.
func (c Config) Normalize() Config {
	if c.DistinctFiles <= 0 {
		c.DistinctFiles = 100_000
	}
	if c.TargetCopies <= 0 {
		c.TargetCopies = 315_546
	}
	if c.SingletonFrac <= 0 || c.SingletonFrac >= 1 {
		c.SingletonFrac = 0.23
	}
	if c.Hosts <= 0 {
		c.Hosts = 75_129
	}
	if c.Vocabulary <= 0 {
		c.Vocabulary = 40_000
	}
	if c.TermZipfS <= 0 {
		c.TermZipfS = 1.05
	}
	if c.Queries <= 0 {
		c.Queries = 700
	}
	if c.RareQueryFrac <= 0 || c.RareQueryFrac > 1 {
		c.RareQueryFrac = 0.55
	}
	if c.MinTermsPerFile <= 0 {
		c.MinTermsPerFile = 3
	}
	if c.MaxTermsPerFile < c.MinTermsPerFile {
		c.MaxTermsPerFile = c.MinTermsPerFile + 3
	}
	return c
}

// DistinctFile is one distinct filename in the network.
type DistinctFile struct {
	Name     string
	Terms    []string // indexable terms of Name, in order
	Replicas int      // copies in the network
}

// Query is one workload entry.
type Query struct {
	Text       string
	Terms      []string
	TargetRank int // the distinct file the querier wanted
}

// Trace is a generated workload.
type Trace struct {
	Cfg     Config
	Files   []DistinctFile // sorted by rank: 0 = most replicated
	Queries []Query
	rng     *rand.Rand
}

// newRNG builds the deterministic source used for generation and
// placement.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Generate builds a trace from cfg.
func Generate(cfg Config) *Trace {
	cfg = cfg.Normalize()
	rng := newRNG(cfg.Seed)
	tr := &Trace{Cfg: cfg, rng: rng}

	replicas := CalibrateReplicas(cfg.DistinctFiles, cfg.TargetCopies, cfg.SingletonFrac)
	vocab := makeVocabulary(cfg.Vocabulary, rng)
	termPicker := newZipfPicker(cfg.Vocabulary, cfg.TermZipfS, rng)

	seen := make(map[string]bool, cfg.DistinctFiles)
	tr.Files = make([]DistinctFile, cfg.DistinctFiles)
	for rank := 0; rank < cfg.DistinctFiles; rank++ {
		nTerms := cfg.MinTermsPerFile + rng.Intn(cfg.MaxTermsPerFile-cfg.MinTermsPerFile+1)
		var terms []string
		for attempt := 0; ; attempt++ {
			terms = tr.pickTerms(vocab, termPicker, rank, nTerms)
			name := strings.Join(terms, " ") + ".mp3"
			if !seen[name] {
				seen[name] = true
				tr.Files[rank] = DistinctFile{Name: name, Terms: terms, Replicas: replicas[rank]}
				break
			}
			if attempt > 20 {
				// Force uniqueness with a rank-derived serial term.
				serial := fmt.Sprintf("vol%d", rank)
				terms = append(terms, serial)
				name = strings.Join(terms, " ") + ".mp3"
				seen[name] = true
				tr.Files[rank] = DistinctFile{Name: name, Terms: terms, Replicas: replicas[rank]}
				break
			}
		}
	}
	tr.Queries = tr.generateQueries()
	return tr
}

// pickTerms draws a filename's terms. Popular files (low rank) draw from
// the head of the term distribution; rare files shift toward the tail, so
// rare files tend to contain globally rare terms — the correlation the
// paper's TF/TPF schemes rely on.
func (tr *Trace) pickTerms(vocab []string, picker *zipfPicker, rank, n int) []string {
	shift := int(float64(rank) / float64(tr.Cfg.DistinctFiles) * float64(tr.Cfg.Vocabulary) * 0.5)
	terms := make([]string, 0, n)
	used := map[int]bool{}
	for len(terms) < n {
		idx := picker.Sample()
		// Shift a random subset of term draws toward the tail for rare
		// files; keep at least one head term so queries stay realistic.
		if len(terms) > 0 && tr.rng.Float64() < 0.6 {
			idx += shift
		}
		if idx >= tr.Cfg.Vocabulary {
			idx = tr.Cfg.Vocabulary - 1 - tr.rng.Intn(tr.Cfg.Vocabulary/10+1)
		}
		if used[idx] {
			continue
		}
		used[idx] = true
		terms = append(terms, vocab[idx])
	}
	return terms
}

// generateQueries draws the query workload: a mixture of popularity-biased
// queries (head of the Zipf) and uniform-over-rank queries (tail-heavy,
// since most ranks are rare).
func (tr *Trace) generateQueries() []Query {
	cfg := tr.Cfg
	picker := newZipfPicker(cfg.DistinctFiles, 1.0, tr.rng)
	queries := make([]Query, cfg.Queries)
	for i := range queries {
		var rank int
		if tr.rng.Float64() < cfg.RareQueryFrac {
			rank = tr.rng.Intn(cfg.DistinctFiles)
		} else {
			rank = picker.Sample()
		}
		f := tr.Files[rank]
		n := 1 + tr.rng.Intn(min(3, len(f.Terms)))
		perm := tr.rng.Perm(len(f.Terms))[:n]
		sort.Ints(perm)
		terms := make([]string, n)
		for j, p := range perm {
			terms[j] = f.Terms[p]
		}
		queries[i] = Query{Text: strings.Join(terms, " "), Terms: terms, TargetRank: rank}
	}
	return queries
}

// TotalInstances returns the number of file copies in the trace.
func (tr *Trace) TotalInstances() int {
	n := 0
	for _, f := range tr.Files {
		n += f.Replicas
	}
	return n
}

// SingletonInstanceFrac returns the fraction of instances whose file has
// exactly one replica.
func (tr *Trace) SingletonInstanceFrac() float64 {
	singles := 0
	for _, f := range tr.Files {
		if f.Replicas == 1 {
			singles++
		}
	}
	return float64(singles) / float64(tr.TotalInstances())
}

// Placement assigns every instance to a host: for each distinct file, a
// list of distinct host indices in [0, hosts). Replicas land on distinct
// hosts, per the model's assumption (§6.1).
func (tr *Trace) Placement(hosts int) [][]int32 {
	out := make([][]int32, len(tr.Files))
	for i, f := range tr.Files {
		r := f.Replicas
		if r > hosts {
			r = hosts
		}
		chosen := make(map[int32]bool, r)
		list := make([]int32, 0, r)
		for len(list) < r {
			h := int32(tr.rng.Intn(hosts))
			if !chosen[h] {
				chosen[h] = true
				list = append(list, h)
			}
		}
		out[i] = list
	}
	return out
}

// TermInstanceFrequency returns, per term, the number of file instances
// whose filename contains it — the statistic an ultrapeer estimates by
// watching query-result traffic (§5's TF scheme).
func (tr *Trace) TermInstanceFrequency() map[string]int {
	freq := make(map[string]int)
	for _, f := range tr.Files {
		for _, t := range f.Terms {
			freq[t] += f.Replicas
		}
	}
	return freq
}

// PairInstanceFrequency returns adjacent-term-pair instance frequencies
// (§5's TPF scheme).
func (tr *Trace) PairInstanceFrequency() map[[2]string]int {
	freq := make(map[[2]string]int)
	for _, f := range tr.Files {
		for i := 0; i+1 < len(f.Terms); i++ {
			freq[[2]string{f.Terms[i], f.Terms[i+1]}] += f.Replicas
		}
	}
	return freq
}

// MatchingFiles returns, for each query, the ranks of every distinct file
// whose term set contains all query terms — the query's total available
// result set, built with an inverted index over distinct files.
func (tr *Trace) MatchingFiles() [][]int {
	index := make(map[string][]int32)
	for rank, f := range tr.Files {
		for _, t := range f.Terms {
			index[t] = append(index[t], int32(rank))
		}
	}
	out := make([][]int, len(tr.Queries))
	for qi, q := range tr.Queries {
		lists := make([][]int32, len(q.Terms))
		ok := true
		for i, t := range q.Terms {
			lists[i] = index[t]
			if len(lists[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		candidates := lists[0]
		for _, ranks := range lists[1:] {
			set := make(map[int32]bool, len(ranks))
			for _, r := range ranks {
				set[r] = true
			}
			var kept []int32
			for _, c := range candidates {
				if set[c] {
					kept = append(kept, c)
				}
			}
			candidates = kept
			if len(candidates) == 0 {
				break
			}
		}
		matches := make([]int, len(candidates))
		for i, c := range candidates {
			matches[i] = int(c)
		}
		out[qi] = matches
	}
	return out
}

// CalibrateReplicas produces a replica count per rank (descending) for
// `distinct` files such that the total instance count approximates
// targetCopies and the fraction of singleton instances approximates
// singletonFrac. The head follows a power law R(r) = C/(r+1)^s with C and
// s found by nested numeric search.
func CalibrateReplicas(distinct, targetCopies int, singletonFrac float64) []int {
	build := func(c, s float64) (counts []int, total, singles int) {
		counts = make([]int, distinct)
		for r := 0; r < distinct; r++ {
			v := int(math.Round(c / math.Pow(float64(r+1), s)))
			if v < 1 {
				v = 1
			}
			counts[r] = v
			total += v
			if v == 1 {
				singles++
			}
		}
		return counts, total, singles
	}
	bestCounts, _, _ := build(float64(targetCopies)/10, 1.0)
	bestErr := math.Inf(1)
	for _, s := range []float64{0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3} {
		lo, hi := 1.0, float64(targetCopies)
		for iter := 0; iter < 60; iter++ {
			c := (lo + hi) / 2
			_, total, singles := build(c, s)
			frac := float64(singles) / float64(total)
			// Larger C -> bigger head -> fewer singleton instances.
			if frac > singletonFrac {
				lo = c
			} else {
				hi = c
			}
			if hi-lo < 1 {
				break
			}
		}
		c := (lo + hi) / 2
		counts, total, singles := build(c, s)
		fracErr := math.Abs(float64(singles)/float64(total) - singletonFrac)
		totalErr := math.Abs(float64(total-targetCopies)) / float64(targetCopies)
		err := fracErr*2 + totalErr
		if err < bestErr {
			bestErr = err
			bestCounts = counts
		}
	}
	return bestCounts
}

// zipfPicker samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s, via the inverse-CDF over precomputed cumulative weights.
type zipfPicker struct {
	cum []float64
	rng *rand.Rand
}

func newZipfPicker(n int, s float64, rng *rand.Rand) *zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &zipfPicker{cum: cum, rng: rng}
}

// Sample returns one rank.
func (z *zipfPicker) Sample() int {
	x := z.rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// makeVocabulary builds n pronounceable pseudo-words, deterministic in rng.
func makeVocabulary(n int, rng *rand.Rand) []string {
	consonants := []string{"b", "d", "f", "g", "k", "l", "m", "n", "r", "s", "t", "v", "z", "ch", "st", "br"}
	vowels := []string{"a", "e", "i", "o", "u", "ai", "ou"}
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		syllables := 2 + rng.Intn(2)
		var b strings.Builder
		for s := 0; s < syllables; s++ {
			b.WriteString(consonants[rng.Intn(len(consonants))])
			b.WriteString(vowels[rng.Intn(len(vowels))])
		}
		w := b.String()
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
