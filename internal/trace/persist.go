package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"piersearch/internal/codec"
)

// Persistence: traces are expensive to generate at paper scale and
// experiments should be replayable bit-for-bit, so a generated workload can
// be written to disk and reloaded. The format is a gzip-compressed binary
// stream built on internal/codec (magic, version byte, varint/front-coded
// fields) with a shared term dictionary: filenames and query texts are
// joins over their term lists, so files and queries store dictionary
// indices and a one-byte "derived" flag instead of repeating strings. The
// v1 format was gob; v2 is both smaller and free of reflection.

const (
	persistMagic   = "PTRC"
	persistVersion = 2
)

// nameDerived / nameExplicit flag whether a file or query's display string
// equals the canonical join of its terms (the generator always produces
// derived names; hand-built traces may not).
const (
	nameDerived  = 0
	nameExplicit = 1
)

// derivedFileName is the generator's filename form (must stay byte-equal
// to Generate's name construction for the nameDerived flag to hold).
func derivedFileName(terms []string) string { return joinTerms(terms) + ".mp3" }

func joinTerms(terms []string) string { return strings.Join(terms, " ") }

// appendName writes the derived-or-explicit string encoding.
func appendName(dst []byte, name, derived string) []byte {
	if name == derived {
		return append(dst, nameDerived)
	}
	dst = append(dst, nameExplicit)
	return codec.AppendString(dst, name)
}

func readName(r *codec.Reader, derived string) string {
	switch r.Byte() {
	case nameDerived:
		return derived
	case nameExplicit:
		return r.String()
	default:
		r.Fail("trace: bad name flag")
		return ""
	}
}

// appendConfig writes cfg in fixed field order.
func appendConfig(dst []byte, c Config) []byte {
	dst = codec.AppendVarint(dst, int64(c.DistinctFiles))
	dst = codec.AppendVarint(dst, int64(c.TargetCopies))
	dst = codec.AppendFloat64(dst, c.SingletonFrac)
	dst = codec.AppendVarint(dst, int64(c.Hosts))
	dst = codec.AppendVarint(dst, int64(c.Vocabulary))
	dst = codec.AppendFloat64(dst, c.TermZipfS)
	dst = codec.AppendVarint(dst, int64(c.Queries))
	dst = codec.AppendFloat64(dst, c.RareQueryFrac)
	dst = codec.AppendVarint(dst, int64(c.MinTermsPerFile))
	dst = codec.AppendVarint(dst, int64(c.MaxTermsPerFile))
	return codec.AppendVarint(dst, c.Seed)
}

func readConfig(r *codec.Reader) Config {
	return Config{
		DistinctFiles:   int(r.Varint()),
		TargetCopies:    int(r.Varint()),
		SingletonFrac:   r.Float64(),
		Hosts:           int(r.Varint()),
		Vocabulary:      int(r.Varint()),
		TermZipfS:       r.Float64(),
		Queries:         int(r.Varint()),
		RareQueryFrac:   r.Float64(),
		MinTermsPerFile: int(r.Varint()),
		MaxTermsPerFile: int(r.Varint()),
		Seed:            r.Varint(),
	}
}

// encode serialises the trace (pre-gzip).
func (tr *Trace) encode() []byte {
	// Build the term dictionary in first-appearance order.
	index := make(map[string]uint64)
	var dict []string
	intern := func(terms []string) {
		for _, t := range terms {
			if _, ok := index[t]; !ok {
				index[t] = uint64(len(dict))
				dict = append(dict, t)
			}
		}
	}
	for _, f := range tr.Files {
		intern(f.Terms)
	}
	for _, q := range tr.Queries {
		intern(q.Terms)
	}

	buf := append(codec.GetBuf(), persistMagic...)
	buf = append(buf, persistVersion)
	buf = appendConfig(buf, tr.Cfg)

	buf = codec.AppendUvarint(buf, uint64(len(dict)))
	for _, t := range dict {
		buf = codec.AppendString(buf, t)
	}

	appendTerms := func(dst []byte, terms []string) []byte {
		dst = codec.AppendUvarint(dst, uint64(len(terms)))
		for _, t := range terms {
			dst = codec.AppendUvarint(dst, index[t])
		}
		return dst
	}

	buf = codec.AppendUvarint(buf, uint64(len(tr.Files)))
	for _, f := range tr.Files {
		buf = appendTerms(buf, f.Terms)
		buf = codec.AppendVarint(buf, int64(f.Replicas))
		buf = appendName(buf, f.Name, derivedFileName(f.Terms))
	}
	buf = codec.AppendUvarint(buf, uint64(len(tr.Queries)))
	for _, q := range tr.Queries {
		buf = appendTerms(buf, q.Terms)
		buf = codec.AppendVarint(buf, int64(q.TargetRank))
		buf = appendName(buf, q.Text, joinTerms(q.Terms))
	}
	return buf
}

// decode parses an encode stream.
func decode(data []byte) (*Trace, error) {
	r := codec.NewReader(data)
	if string(r.Take(len(persistMagic))) != persistMagic {
		if r.Err() == nil {
			r.Fail("trace: bad magic")
		}
		return nil, r.Err()
	}
	if v := r.Byte(); r.Err() == nil && v != persistVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	tr := &Trace{Cfg: readConfig(r)}

	nDict := r.Count()
	dict := make([]string, 0, nDict)
	for i := 0; i < nDict && r.Err() == nil; i++ {
		dict = append(dict, r.String())
	}

	readTerms := func() []string {
		n := r.Count()
		if r.Err() != nil {
			return nil
		}
		terms := make([]string, 0, n)
		for i := 0; i < n; i++ {
			idx := r.Uvarint()
			if r.Err() != nil {
				return nil
			}
			if idx >= uint64(len(dict)) {
				r.Fail("trace: term index out of range")
				return nil
			}
			terms = append(terms, dict[idx])
		}
		return terms
	}

	nFiles := r.Count()
	tr.Files = make([]DistinctFile, 0, nFiles)
	for i := 0; i < nFiles && r.Err() == nil; i++ {
		terms := readTerms()
		replicas := int(r.Varint())
		name := readName(r, derivedFileName(terms))
		tr.Files = append(tr.Files, DistinctFile{Name: name, Terms: terms, Replicas: replicas})
	}
	nQueries := r.Count()
	tr.Queries = make([]Query, 0, nQueries)
	for i := 0; i < nQueries && r.Err() == nil; i++ {
		terms := readTerms()
		rank := int(r.Varint())
		text := readName(r, joinTerms(terms))
		tr.Queries = append(tr.Queries, Query{Text: text, Terms: terms, TargetRank: rank})
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return tr, nil
}

// Save writes the trace to w.
func (tr *Trace) Save(w io.Writer) error {
	zw := gzip.NewWriter(w)
	buf := tr.encode()
	_, err := zw.Write(buf)
	codec.PutBuf(buf)
	if err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return zw.Close()
}

// SaveFile writes the trace to path.
func (tr *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := tr.Save(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace written by Save. The loaded trace's random source is
// reseeded from the config, so Placement calls on a loaded trace are
// deterministic (though not identical to ones made on the original before
// saving, which had advanced the generator's state).
func Load(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: open: %w", err)
	}
	defer zr.Close()
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	tr, err := decode(data)
	if err != nil {
		return nil, err
	}
	if len(tr.Files) == 0 {
		return nil, fmt.Errorf("trace: empty file set")
	}
	tr.rng = newRNG(tr.Cfg.Seed)
	return tr, nil
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
