package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Persistence: traces are expensive to generate at paper scale and
// experiments should be replayable bit-for-bit, so a generated workload can
// be written to disk and reloaded. The format is gzip-compressed gob of
// the files and queries plus the generating config.

// persisted is the on-disk form.
type persisted struct {
	Version int
	Cfg     Config
	Files   []DistinctFile
	Queries []Query
}

const persistVersion = 1

// Save writes the trace to w.
func (tr *Trace) Save(w io.Writer) error {
	zw := gzip.NewWriter(w)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(persisted{
		Version: persistVersion,
		Cfg:     tr.Cfg,
		Files:   tr.Files,
		Queries: tr.Queries,
	}); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return zw.Close()
}

// SaveFile writes the trace to path.
func (tr *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := tr.Save(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace written by Save. The loaded trace's random source is
// reseeded from the config, so Placement calls on a loaded trace are
// deterministic (though not identical to ones made on the original before
// saving, which had advanced the generator's state).
func Load(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: open: %w", err)
	}
	defer zr.Close()
	var p persisted
	if err := gob.NewDecoder(zr).Decode(&p); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", p.Version)
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("trace: empty file set")
	}
	tr := &Trace{Cfg: p.Cfg, Files: p.Files, Queries: p.Queries}
	tr.rng = newRNG(p.Cfg.Seed)
	return tr, nil
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
