package codec

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
)

// --- append-style encoders --------------------------------------------------

// AppendByte appends a single byte.
func AppendByte(dst []byte, b byte) []byte { return append(dst, b) }

// AppendUvarint appends v in LEB128 form.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends v in zigzag varint form.
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// AppendFloat64 appends f as 8 big-endian IEEE 754 bytes.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendBytes appends b with a uvarint length prefix.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends s with a uvarint length prefix.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// UvarintLen returns the encoded size of v in bytes without encoding it,
// for encoders that cost out alternative layouts before committing.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// SharedPrefix returns the length of the longest common prefix of a and b —
// the quantity the front-coded set encodings elide.
func SharedPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// SharedPrefixString is SharedPrefix over strings.
func SharedPrefixString(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// --- sticky-error reader ----------------------------------------------------

// Reader decodes a buffer sequentially. The first malformed field sets a
// sticky error; subsequent reads return zero values, so decoders can read
// a whole message and check Err once.
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a reader over buf. The reader aliases buf; Take and
// View return sub-slices of it.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) }

// Fail poisons the reader with a decode error (first failure wins).
func (r *Reader) Fail(msg string) {
	if r.err == nil {
		r.err = errors.New("codec: " + msg)
	}
}

// Finish returns the sticky error, or an error if undecoded bytes remain —
// decoders call it last to reject oversized frames.
func (r *Reader) Finish() error {
	if r.err == nil && len(r.buf) != 0 {
		r.Fail("trailing bytes")
	}
	return r.err
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || len(r.buf) < 1 {
		r.Fail("truncated byte")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

// Uvarint reads a LEB128 unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.Fail("bad uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Varint reads a zigzag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.Fail("bad varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Float64 reads 8 big-endian bytes as a float64.
func (r *Reader) Float64() float64 {
	raw := r.Take(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(raw))
}

// Take returns the next n bytes without copying. The slice aliases the
// reader's buffer, so it is only valid while that buffer lives.
func (r *Reader) Take(n int) []byte {
	if r.err != nil || n < 0 || len(r.buf) < n {
		r.Fail("truncated field")
		return nil
	}
	out := r.buf[:n:n]
	r.buf = r.buf[n:]
	return out
}

// View reads a uvarint length prefix and returns that many bytes without
// copying (aliases the reader's buffer).
func (r *Reader) View() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)) < n {
		r.Fail("truncated bytes")
		return nil
	}
	return r.Take(int(n))
}

// Bytes reads a uvarint length prefix and returns a copy of the payload.
// The length is validated against the remaining buffer before allocating,
// so a corrupt prefix cannot force a huge allocation.
func (r *Reader) Bytes() []byte {
	v := r.View()
	if r.err != nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// String reads a uvarint length prefix and the payload as a string.
func (r *Reader) String() string {
	v := r.View()
	if r.err != nil {
		return ""
	}
	return string(v)
}

// Count reads a uvarint element count and rejects any value larger than
// the remaining bytes: every element of a well-formed sequence occupies at
// least one byte, so a larger count is a truncated or hostile frame and
// must not size an allocation.
func (r *Reader) Count() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)) {
		r.Fail("element count exceeds buffer")
		return 0
	}
	return int(n)
}

// --- scratch-buffer pool ----------------------------------------------------

// maxPooledBuf caps the capacity of buffers kept in the pool, so one huge
// message does not pin its allocation forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// GetBuf returns an empty byte slice with pooled capacity for use as an
// encoder destination. Hand it back with PutBuf when the encoded bytes are
// no longer referenced (transports are synchronous: once a Call/Write
// returns, the buffer is free).
func GetBuf() []byte { return (*bufPool.Get().(*[]byte))[:0] }

// PutBuf returns buf's storage to the pool. Callers must not use buf (or
// any alias of it) afterwards.
func PutBuf(buf []byte) {
	if cap(buf) == 0 || cap(buf) > maxPooledBuf {
		return
	}
	buf = buf[:0]
	bufPool.Put(&buf)
}
