package codec

import (
	"bytes"
	"testing"
)

// FuzzReader drives the sticky-error reader over arbitrary bytes with a
// fixed read script. It must never panic and never allocate beyond the
// input's size; whatever decodes must re-encode to the bytes consumed.
// Run with: go test -fuzz FuzzReader ./internal/codec
func FuzzReader(f *testing.F) {
	// Seed corpus: well-formed streams for each primitive plus hostile
	// length prefixes and truncations.
	f.Add(AppendUvarint(nil, 0))
	f.Add(AppendUvarint(nil, 1<<40))
	f.Add(AppendVarint(nil, -12345))
	f.Add(AppendFloat64(nil, 2.5))
	f.Add(AppendBytes(nil, []byte("payload")))
	f.Add(AppendString(nil, "hello world"))
	var mixed []byte
	mixed = AppendByte(mixed, 1)
	mixed = AppendUvarint(mixed, 7)
	mixed = AppendString(mixed, "k")
	mixed = AppendBytes(mixed, []byte{9, 9})
	f.Add(mixed)
	f.Add(AppendUvarint(nil, 1<<60)) // hostile length
	f.Add([]byte{})
	f.Add([]byte{0x80}) // unterminated varint

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		b := r.Byte()
		u := r.Uvarint()
		s := r.String()
		p := r.Bytes()
		if r.Err() != nil {
			return
		}
		// Whatever decoded must survive an encode/decode round trip.
		// (Byte-for-byte comparison against the input would be wrong: LEB128
		// accepts non-minimal encodings that re-encode shorter.)
		var enc []byte
		enc = AppendByte(enc, b)
		enc = AppendUvarint(enc, u)
		enc = AppendString(enc, s)
		enc = AppendBytes(enc, p)
		r2 := NewReader(enc)
		if b2, u2, s2, p2 := r2.Byte(), r2.Uvarint(), r2.String(), r2.Bytes(); b2 != b || u2 != u || s2 != s || !bytes.Equal(p2, p) {
			t.Fatalf("round trip mismatch: (%v %v %q %x) vs (%v %v %q %x)", b2, u2, s2, p2, b, u, s, p)
		}
		if err := r2.Finish(); err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
	})
}
