// Package codec is the shared binary wire codec for every hot path in the
// system: PIER's chain/probe/result messages, stored tuples, the DHT RPC
// frames in package wire, and persisted traces. It replaces encoding/gob,
// whose per-stream type preamble (~300 B on a chain message) and reflective
// field encoding inflated exactly the byte counts the paper's §5/§7
// evaluation measures.
//
// # Wire format
//
// All encoders are append-style: they take a destination []byte and return
// it extended, so callers control allocation and can reuse scratch buffers
// (GetBuf/PutBuf expose a sync.Pool for the encode path). The primitives:
//
//   - unsigned integers: LEB128 uvarint (binary.AppendUvarint)
//   - signed integers:   zigzag varint (binary.AppendVarint)
//   - strings / byte strings: uvarint length prefix, then the raw payload
//   - float64: 8-byte big-endian IEEE 754 bits
//   - fixed-width fields (hashes, node IDs): raw bytes, no prefix
//
// Every top-level message starts with a one-byte format version so formats
// can evolve without flag days; decoders reject unknown versions rather
// than misparse.
//
// # Delta-compressed sets
//
// Posting-list payloads (candidate fileID sets shipped along the join
// chain and returned from probes) are sorted and front-coded: each entry
// stores the length of the prefix it shares with its predecessor plus the
// differing suffix, and integer runs store zigzag deltas. The set codec
// itself lives next to the Value type in package pier
// (EncodeValueSet/DecodeValueSet); this package supplies the primitives
// (SharedPrefix, varints, the Reader).
//
// # Decoding
//
// Reader is a sticky-error sequential decoder: the first malformed field
// poisons the reader and every subsequent read returns a zero value, so
// message decoders read straight through and check Err once (plus Finish
// to reject trailing bytes). Length prefixes are validated against the
// remaining buffer before any allocation, so a hostile length cannot OOM
// the process, and Count bounds element counts the same way.
package codec
