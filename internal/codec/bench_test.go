package codec

import (
	"crypto/sha1"
	"encoding/binary"
	"testing"
)

// syntheticIDs returns n distinct 20-byte hash values, the shape of the
// fileIDs the posting-set codec in package pier front-codes.
func syntheticIDs(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		var seed [8]byte
		binary.BigEndian.PutUint64(seed[:], uint64(i))
		h := sha1.Sum(seed[:])
		out[i] = h[:]
	}
	return out
}

// BenchmarkAppendPrimitives measures the raw append path (zero allocations
// once dst has capacity) and reports the encoded size explicitly.
func BenchmarkAppendPrimitives(b *testing.B) {
	dst := make([]byte, 0, 256)
	var size int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		dst = AppendUvarint(dst, uint64(i))
		dst = AppendVarint(dst, -int64(i))
		dst = AppendString(dst, "inverted")
		dst = AppendBytes(dst, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		dst = AppendFloat64(dst, 1.5)
		size = len(dst)
	}
	b.ReportMetric(float64(size), "encoded-bytes/op")
}

// BenchmarkReader measures the decode path over a fixed frame.
func BenchmarkReader(b *testing.B) {
	var buf []byte
	buf = AppendUvarint(buf, 123456)
	buf = AppendString(buf, "inverted")
	buf = AppendBytes(buf, make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		r.Uvarint()
		_ = r.View()
		_ = r.View()
		if r.Finish() != nil {
			b.Fatal("decode failed")
		}
	}
	b.ReportMetric(float64(len(buf)), "encoded-bytes/op")
}

// BenchmarkLengthPrefixedIDs is the un-delta'd baseline for a posting
// payload: 256 hash IDs, each length-prefixed. Package pier's
// EncodeValueSet benchmark (root codec_bench_test.go) reports the
// front-coded and gob sizes for the same shape.
func BenchmarkLengthPrefixedIDs(b *testing.B) {
	ids := syntheticIDs(256)
	dst := make([]byte, 0, 8192)
	var size int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		dst = AppendUvarint(dst, uint64(len(ids)))
		for _, id := range ids {
			dst = AppendBytes(dst, id)
		}
		size = len(dst)
	}
	b.ReportMetric(float64(size), "encoded-bytes/op")
	b.SetBytes(int64(size))
}

// BenchmarkPooledEncode measures GetBuf/PutBuf reuse around a typical
// message-sized encode.
func BenchmarkPooledEncode(b *testing.B) {
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		buf = AppendByte(buf, 1)
		buf = AppendUvarint(buf, uint64(i))
		buf = AppendBytes(buf, payload)
		PutBuf(buf)
	}
}
