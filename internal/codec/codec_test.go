package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf []byte
	buf = AppendByte(buf, 0xAB)
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, math.MaxUint64)
	buf = AppendVarint(buf, -1)
	buf = AppendVarint(buf, math.MinInt64)
	buf = AppendFloat64(buf, 3.25)
	buf = AppendBytes(buf, []byte{1, 2, 3})
	buf = AppendBytes(buf, nil)
	buf = AppendString(buf, "héllo")
	buf = AppendString(buf, "")

	r := NewReader(buf)
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint max = %d", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Varint(); got != math.MinInt64 {
		t.Errorf("Varint min = %d", got)
	}
	if got := r.Float64(); got != 3.25 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %v", got)
	}
	if got := r.String(); got != "héllo" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(u uint64, v int64, fl float64, b []byte, s string) bool {
		var buf []byte
		buf = AppendUvarint(buf, u)
		buf = AppendVarint(buf, v)
		buf = AppendFloat64(buf, fl)
		buf = AppendBytes(buf, b)
		buf = AppendString(buf, s)
		r := NewReader(buf)
		gu, gv, gf := r.Uvarint(), r.Varint(), r.Float64()
		gb, gs := r.Bytes(), r.String()
		if r.Finish() != nil {
			return false
		}
		floatOK := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gu == u && gv == v && floatOK && bytes.Equal(gb, b) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTruncationNeverPanics decodes every prefix of a valid stream; all
// must fail cleanly (sticky error), never panic or return trailing-byte
// confusion.
func TestTruncationNeverPanics(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 1<<40)
	buf = AppendString(buf, "a longer string payload")
	buf = AppendFloat64(buf, 1.5)
	buf = AppendBytes(buf, bytes.Repeat([]byte{7}, 33))
	for i := 0; i < len(buf); i++ {
		r := NewReader(buf[:i])
		r.Uvarint()
		_ = r.String()
		r.Float64()
		r.Bytes()
		if err := r.Finish(); err == nil {
			t.Fatalf("prefix %d decoded cleanly", i)
		}
	}
}

// TestHostileLengthRejected checks that a length prefix far beyond the
// buffer fails before allocating.
func TestHostileLengthRejected(t *testing.T) {
	buf := AppendUvarint(nil, 1<<50)
	buf = append(buf, "short"...)
	r := NewReader(buf)
	if got := r.Bytes(); got != nil {
		t.Errorf("hostile Bytes returned %d bytes", len(got))
	}
	if r.Err() == nil {
		t.Fatal("hostile length accepted")
	}

	r = NewReader(AppendUvarint(nil, 1<<50))
	if n := r.Count(); n != 0 || r.Err() == nil {
		t.Fatalf("hostile Count = %d, err = %v", n, r.Err())
	}
}

func TestFinishRejectsTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Byte()
	if err := r.Finish(); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	r.Byte() // poisons
	first := r.Err()
	if first == nil {
		t.Fatal("no error on empty read")
	}
	r.Uvarint()
	r.Bytes()
	if r.Err() != first {
		t.Error("later failure replaced the first error")
	}
}

func TestSharedPrefix(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abd", 2},
		{"abc", "abc", 3},
		{"abc", "abcdef", 3},
		{"xyz", "abc", 0},
	}
	for _, c := range cases {
		if got := SharedPrefix([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("SharedPrefix(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := SharedPrefixString(c.a, c.b); got != c.want {
			t.Errorf("SharedPrefixString(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBufPool(t *testing.T) {
	buf := GetBuf()
	if len(buf) != 0 {
		t.Fatalf("GetBuf len = %d", len(buf))
	}
	buf = append(buf, make([]byte, 4096)...)
	PutBuf(buf)
	again := GetBuf()
	if len(again) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(again))
	}
	PutBuf(again)
	// Oversized buffers are dropped, not pooled.
	PutBuf(make([]byte, maxPooledBuf+1))
}

func TestViewAliasesAndTakeBounds(t *testing.T) {
	buf := AppendBytes(nil, []byte("payload"))
	r := NewReader(buf)
	v := r.View()
	if string(v) != "payload" {
		t.Fatalf("View = %q", v)
	}
	if r.Finish() != nil {
		t.Fatal("clean stream rejected")
	}
	r = NewReader([]byte{1, 2})
	if r.Take(-1) != nil || r.Err() == nil {
		t.Fatal("negative Take accepted")
	}
}
