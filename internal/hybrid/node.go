package hybrid

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"piersearch/internal/gnutella"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/simnet"
)

// UltrapeerConfig tunes a hybrid ultrapeer (the Figure 17 client).
type UltrapeerConfig struct {
	// GnutellaTimeout is how long a query waits for flooding results
	// before being reissued via PIERSearch (§7 uses 30 s).
	GnutellaTimeout time.Duration
	// RareResultsThreshold is the QRS publishing rule of the deployment:
	// results of queries returning fewer than this many results are
	// identified as rare and published (§7 uses 20).
	RareResultsThreshold int
	// Strategy selects the PIERSearch query plan.
	Strategy piersearch.Strategy
	// PierHopDelay models per-DHT-hop latency when converting hop counts
	// into the reported PIER query latency; the deployment's 10–12 s
	// first-result latencies reflect wide-area hops plus PIER processing.
	PierHopDelay simnet.LatencyModel
	// Seed drives latency sampling.
	Seed int64
}

// Normalize fills defaults and returns the config.
func (c UltrapeerConfig) Normalize() UltrapeerConfig {
	if c.GnutellaTimeout <= 0 {
		c.GnutellaTimeout = 30 * time.Second
	}
	if c.RareResultsThreshold <= 0 {
		c.RareResultsThreshold = 20
	}
	if c.PierHopDelay == nil {
		c.PierHopDelay = simnet.Uniform{Min: 800 * time.Millisecond, Max: 1800 * time.Millisecond}
	}
	return c
}

// Source says which side of the hybrid answered a query.
type Source int

// Answer sources.
const (
	SourceGnutella Source = iota
	SourcePIER
	SourceNone
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceGnutella:
		return "gnutella"
	case SourcePIER:
		return "pier"
	default:
		return "none"
	}
}

// Outcome is the result of one hybrid query.
type Outcome struct {
	Source       Source
	Results      int
	FirstLatency time.Duration // -1 if no results

	// GnutellaResults and GnutellaLatency describe what flooding alone
	// eventually produced, including results that arrived only after the
	// hybrid timeout — the counterfactual §7 compares against.
	GnutellaResults int
	GnutellaLatency time.Duration // -1 if flooding never answered

	PierStats piersearch.SearchStats
}

// Ultrapeer is one hybrid LimeWire/PIERSearch client: a Gnutella ultrapeer
// plus the Gnutella proxy and PIERSearch client of Figure 17. The proxy
// watches forwarded query-result traffic, identifies rare items (QRS) and
// publishes them; queries that time out in Gnutella are reissued in PIER.
type Ultrapeer struct {
	Host gnutella.HostID

	gnet   *gnutella.Network
	lib    *gnutella.Library
	pub    *piersearch.Publisher
	search *piersearch.Search
	cfg    UltrapeerConfig
	rng    *rand.Rand

	published    map[piersearch.FileID]bool
	PublishCount int
	PublishBytes int
}

// NewUltrapeer wires a hybrid client together. engine is the node's PIER
// engine (with PIERSearch schemas registered), gnet/lib the shared overlay.
func NewUltrapeer(host gnutella.HostID, gnet *gnutella.Network, lib *gnutella.Library, engine *pier.Engine, cfg UltrapeerConfig) *Ultrapeer {
	cfg = cfg.Normalize()
	mode := piersearch.ModeInverted
	if cfg.Strategy == piersearch.StrategyCache {
		mode = piersearch.ModeInvertedCache
	}
	return &Ultrapeer{
		Host:      host,
		gnet:      gnet,
		lib:       lib,
		pub:       piersearch.NewPublisher(engine, mode, piersearch.Tokenizer{}),
		search:    piersearch.NewSearch(engine, piersearch.Tokenizer{}),
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ int64(host))),
		published: make(map[piersearch.FileID]bool),
	}
}

// fileFor converts a Gnutella file reference into a PIERSearch File.
func (u *Ultrapeer) fileFor(ref gnutella.FileRef) piersearch.File {
	sf := u.lib.File(ref)
	return piersearch.File{
		Name: sf.Name,
		Size: sf.Size,
		Host: fmt.Sprintf("10.%d.%d.%d", ref.Host>>16&0xff, ref.Host>>8&0xff, ref.Host&0xff),
		Port: 6346,
	}
}

// ObserveResults is the Gnutella proxy path: the ultrapeer snoops the
// results of a query it forwarded. If the result set is small (QRS), every
// file in it is identified as rare and published into the DHT.
func (u *Ultrapeer) ObserveResults(refs []gnutella.FileRef) error {
	if len(refs) >= u.cfg.RareResultsThreshold {
		return nil
	}
	for _, ref := range refs {
		f := u.fileFor(ref)
		id := f.ID()
		if u.published[id] {
			continue
		}
		stats, err := u.pub.PublishFile(f)
		if err != nil {
			return err
		}
		u.published[id] = true
		u.PublishCount++
		u.PublishBytes += stats.Bytes
	}
	return nil
}

// PublishLocal pushes a host's whole file list into the DHT (the
// proactive path: BrowseHost on a leaf, then publish its rare items).
func (u *Ultrapeer) PublishLocal(host gnutella.HostID) error {
	for idx := range u.lib.Files(host) {
		ref := gnutella.FileRef{Host: host, Idx: idx}
		f := u.fileFor(ref)
		id := f.ID()
		if u.published[id] {
			continue
		}
		stats, err := u.pub.PublishFile(f)
		if err != nil {
			return err
		}
		u.published[id] = true
		u.PublishCount++
		u.PublishBytes += stats.Bytes
	}
	return nil
}

// Query runs the hybrid search path for a leaf query entering at this
// ultrapeer: flood Gnutella, wait up to GnutellaTimeout (in overlay
// virtual time), and reissue through PIERSearch on timeout. The Gnutella
// simulation clock advances as a side effect.
func (u *Ultrapeer) Query(text string, terms []string) (Outcome, error) {
	return u.QueryContext(context.Background(), text, terms)
}

// QueryContext is Query under a context: cancellation aborts the
// PIERSearch reissue mid-flight (the Gnutella flooding phase runs in
// overlay virtual time and completes regardless).
func (u *Ultrapeer) QueryContext(ctx context.Context, text string, terms []string) (Outcome, error) {
	q := u.gnet.Query(u.Host, terms)
	deadline := q.Started + u.cfg.GnutellaTimeout
	u.gnet.Sim.RunUntil(deadline)

	if len(q.Results) > 0 {
		// Let in-flight hits drain so the outcome has the full Gnutella
		// result set, but the first-result latency is already fixed.
		u.gnet.Sim.Run()
		return Outcome{
			Source:          SourceGnutella,
			Results:         len(q.Results),
			FirstLatency:    q.FirstResultLatency(),
			GnutellaResults: len(q.Results),
			GnutellaLatency: q.FirstResultLatency(),
		}, nil
	}

	// Timed out: reissue via PIERSearch, streaming under the caller's ctx.
	results, stats, err := u.queryPier(ctx, text)
	if err != nil {
		return Outcome{Source: SourceNone, FirstLatency: -1, GnutellaLatency: -1, PierStats: stats}, err
	}
	u.gnet.Sim.Run() // drain late Gnutella traffic for the counterfactual
	out := Outcome{
		GnutellaResults: len(q.Results),
		GnutellaLatency: q.FirstResultLatency(),
		PierStats:       stats,
	}
	if results == 0 {
		out.Source = SourceNone
		out.FirstLatency = -1
		return out, nil
	}
	out.Source = SourcePIER
	out.Results = results
	out.FirstLatency = u.cfg.GnutellaTimeout + u.pierLatency(stats.Hops)
	return out, nil
}

// queryPier reissues the query through the PIERSearch plan API, counting
// streamed results.
func (u *Ultrapeer) queryPier(ctx context.Context, text string) (int, piersearch.SearchStats, error) {
	rs, err := u.search.QueryContext(ctx, piersearch.Query{Text: text, Strategy: u.cfg.Strategy})
	if err != nil {
		return 0, piersearch.SearchStats{}, err
	}
	defer rs.Close() //nolint:errcheck // read-only stream
	n := 0
	for {
		if _, err := rs.Next(); err != nil {
			if errors.Is(err, piersearch.ErrDone) {
				return n, rs.Stats(), nil
			}
			return n, rs.Stats(), err
		}
		n++
	}
}

// pierLatency converts a hop count into a modeled wall-clock latency.
func (u *Ultrapeer) pierLatency(hops int) time.Duration {
	if hops <= 0 {
		hops = 1
	}
	var total time.Duration
	for i := 0; i < hops; i++ {
		total += u.cfg.PierHopDelay.Delay(u.rng)
	}
	return total
}
