package hybrid

import (
	"math"
	"math/rand"
	"sort"
)

// Scheme scores every distinct file; lower scores mean "rarer", and the
// publisher selects files in ascending score order until its budget or
// threshold is exhausted. All of §5's schemes reduce to a scoring rule:
//
//	Perfect  — true replica count (complete knowledge upper bound)
//	Random   — uniform noise (lower bound)
//	TF       — minimum term frequency across the filename's terms
//	TPF      — minimum adjacent-term-pair frequency
//	SAM      — replica count observed on a sampled subset of hosts
//	QRS      — smallest observed result-set size containing the file
type Scheme interface {
	Name() string
	// Scores returns one score per distinct file, aligned with the file
	// indexing the scheme was built with.
	Scores() []float64
}

// staticScheme wraps a precomputed score vector.
type staticScheme struct {
	name   string
	scores []float64
}

func (s staticScheme) Name() string      { return s.name }
func (s staticScheme) Scores() []float64 { return s.scores }

// Perfect builds the complete-knowledge scheme from true replica counts.
func Perfect(replicas []int) Scheme {
	scores := make([]float64, len(replicas))
	for i, r := range replicas {
		scores[i] = float64(r)
	}
	return staticScheme{name: "Perfect", scores: scores}
}

// Random builds the uniform-noise baseline.
func Random(n int, seed int64) Scheme {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	return staticScheme{name: "Random", scores: scores}
}

// TF builds the Term Frequency scheme: a file is as rare as its rarest
// term. fileTerms lists each file's terms; termFreq is the instance
// frequency of each term, as an ultrapeer would estimate from the
// query-result traffic it forwards.
func TF(fileTerms [][]string, termFreq map[string]int) Scheme {
	scores := make([]float64, len(fileTerms))
	for i, terms := range fileTerms {
		minF := math.Inf(1)
		for _, t := range terms {
			if f := float64(termFreq[t]); f < minF {
				minF = f
			}
		}
		scores[i] = minF
	}
	return staticScheme{name: "TF", scores: scores}
}

// TPF builds the Term-Pair Frequency scheme over ordered adjacent pairs.
// Files with fewer than two terms fall back to their TF score.
func TPF(fileTerms [][]string, pairFreq map[[2]string]int, termFreq map[string]int) Scheme {
	scores := make([]float64, len(fileTerms))
	for i, terms := range fileTerms {
		minF := math.Inf(1)
		for j := 0; j+1 < len(terms); j++ {
			if f := float64(pairFreq[[2]string{terms[j], terms[j+1]}]); f < minF {
				minF = f
			}
		}
		if math.IsInf(minF, 1) {
			for _, t := range terms {
				if f := float64(termFreq[t]); f < minF {
					minF = f
				}
			}
		}
		scores[i] = minF
	}
	return staticScheme{name: "TPF", scores: scores}
}

// SAM builds the Sampling scheme: score = replicas observed on a random
// sample of sampleFrac of all hosts (a lower-bound estimate of the true
// count). SAM(1.0) equals Perfect; SAM(0) degenerates to Random.
func SAM(placement [][]int32, hosts int, sampleFrac float64, seed int64) Scheme {
	rng := rand.New(rand.NewSource(seed))
	sampled := make([]bool, hosts)
	for i := range sampled {
		sampled[i] = rng.Float64() < sampleFrac
	}
	scores := make([]float64, len(placement))
	for i, hostList := range placement {
		n := 0
		for _, h := range hostList {
			if sampled[h] {
				n++
			}
		}
		scores[i] = float64(n)
	}
	name := "SAM"
	switch {
	case sampleFrac >= 1:
		name = "SAM(100%)"
	case sampleFrac <= 0:
		name = "SAM(0%)"
	default:
		name = "SAM(" + itoa(int(sampleFrac*100+0.5)) + "%)"
	}
	return staticScheme{name: name, scores: scores}
}

// QRS builds the Query-Results-Size scheme from observed queries: a file's
// score is the smallest result-set size it has appeared in; files never
// seen in any result get +Inf (a caching scheme cannot publish them —
// the weakness §5 notes).
func QRS(resultSets [][]int, files int) Scheme {
	scores := make([]float64, files)
	for i := range scores {
		scores[i] = math.Inf(1)
	}
	for _, set := range resultSets {
		size := float64(len(set))
		for _, f := range set {
			if size < scores[f] {
				scores[f] = size
			}
		}
	}
	return staticScheme{name: "QRS", scores: scores}
}

// SelectThreshold publishes every file whose score is <= threshold — the
// paper's per-scheme threshold knobs (Replica Threshold, Term Frequency
// Threshold, ...).
func SelectThreshold(s Scheme, threshold float64) []bool {
	scores := s.Scores()
	out := make([]bool, len(scores))
	for i, sc := range scores {
		out[i] = sc <= threshold
	}
	return out
}

// SelectBudget publishes files in ascending score order until the chosen
// files cover budgetFrac of all file instances — the publishing budget on
// the x-axis of Figures 13–15. Ties are broken randomly so coarse scores
// (e.g. SAM with a tiny sample) do not bias toward low file ranks.
func SelectBudget(s Scheme, replicas []int, budgetFrac float64, seed int64) []bool {
	scores := s.Scores()
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	tie := make([]float64, len(scores))
	for i := range tie {
		tie[i] = rng.Float64()
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if scores[i] != scores[j] {
			return scores[i] < scores[j]
		}
		return tie[i] < tie[j]
	})
	total := 0
	for _, r := range replicas {
		total += r
	}
	budget := int(budgetFrac * float64(total))
	out := make([]bool, len(scores))
	used := 0
	for _, i := range order {
		if used >= budget {
			break
		}
		if math.IsInf(scores[i], 1) {
			break // QRS: never-observed files cannot be published
		}
		if used+replicas[i] > budget {
			continue // would overshoot; a smaller item may still fit
		}
		out[i] = true
		used += replicas[i]
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
