// Package hybrid implements the paper's hybrid search infrastructure (§5,
// §7): rare-item identification schemes that decide which files the DHT
// partial index should hold, and the hybrid ultrapeer that floods Gnutella
// first and re-queries PIERSearch when flooding comes up empty.
//
// The hybrid node publishes and queries through the piersearch pipeline,
// so it inherits that package's concurrency: rare-item publishing fans
// out through pier.(*Engine).PublishBatch and the PIER re-query overlaps
// its probes and fetches. The fan-out bound is the underlying engine's
// pier.Config.Workers (default 8); construct engines with Workers: 1 to
// reproduce the paper's sequential behaviour. Note the discrete-event
// Gnutella simulation itself stays single-threaded — concurrency applies
// to the DHT side, which runs outside simulated time.
package hybrid
