package hybrid

import (
	"math"
	"testing"

	"piersearch/internal/model"
	"piersearch/internal/trace"
)

func testTrace() *trace.Trace {
	return trace.Generate(trace.Config{
		DistinctFiles: 6000,
		TargetCopies:  20000,
		Hosts:         5000,
		Vocabulary:    4000,
		Queries:       250,
		Seed:          3,
	})
}

func replicasOf(tr *trace.Trace) []int {
	out := make([]int, len(tr.Files))
	for i, f := range tr.Files {
		out[i] = f.Replicas
	}
	return out
}

func termsOf(tr *trace.Trace) [][]string {
	out := make([][]string, len(tr.Files))
	for i, f := range tr.Files {
		out[i] = f.Terms
	}
	return out
}

func TestPerfectOrdersByReplicas(t *testing.T) {
	s := Perfect([]int{5, 1, 3})
	scores := s.Scores()
	if scores[1] >= scores[2] || scores[2] >= scores[0] {
		t.Errorf("Perfect scores = %v", scores)
	}
	if s.Name() != "Perfect" {
		t.Errorf("name = %s", s.Name())
	}
}

func TestSelectThreshold(t *testing.T) {
	s := Perfect([]int{5, 1, 3, 2})
	pub := SelectThreshold(s, 2)
	want := []bool{false, true, false, true}
	for i := range want {
		if pub[i] != want[i] {
			t.Fatalf("threshold select = %v", pub)
		}
	}
}

func TestSelectBudgetCoversBudgetWithRarestFirst(t *testing.T) {
	replicas := []int{100, 1, 1, 1, 50, 2}
	s := Perfect(replicas)
	pub := SelectBudget(s, replicas, 0.05, 1) // 5% of 155 = 7 instances
	// Rarest first: three singletons + the 2-replica file = 5 <= 7;
	// the 50 and 100 replica files must not fit.
	if !pub[1] || !pub[2] || !pub[3] || !pub[5] {
		t.Errorf("budget select missed rare files: %v", pub)
	}
	if pub[0] || pub[4] {
		t.Errorf("budget select published popular files: %v", pub)
	}
}

func TestSelectBudgetZeroAndFull(t *testing.T) {
	replicas := []int{3, 1, 2}
	s := Perfect(replicas)
	none := SelectBudget(s, replicas, 0, 1)
	for _, p := range none {
		if p {
			t.Fatal("zero budget published something")
		}
	}
	all := SelectBudget(s, replicas, 1, 1)
	for _, p := range all {
		if !p {
			t.Fatal("full budget left something unpublished")
		}
	}
}

func TestSAMExtremes(t *testing.T) {
	tr := testTrace()
	replicas := replicasOf(tr)
	placement := tr.Placement(tr.Cfg.Hosts)

	full := SAM(placement, tr.Cfg.Hosts, 1.0, 9)
	for i, sc := range full.Scores() {
		if sc != float64(replicas[i]) {
			t.Fatalf("SAM(100%%) score[%d] = %v, want %d", i, sc, replicas[i])
		}
	}
	zero := SAM(placement, tr.Cfg.Hosts, 0, 9)
	for i, sc := range zero.Scores() {
		if sc != 0 {
			t.Fatalf("SAM(0%%) score[%d] = %v", i, sc)
		}
	}
	if full.Name() != "SAM(100%)" || zero.Name() != "SAM(0%)" {
		t.Errorf("names: %s, %s", full.Name(), zero.Name())
	}
	partial := SAM(placement, tr.Cfg.Hosts, 0.15, 9)
	if partial.Name() != "SAM(15%)" {
		t.Errorf("name = %s", partial.Name())
	}
	for i, sc := range partial.Scores() {
		if sc > float64(replicas[i]) {
			t.Fatalf("SAM sample count %v exceeds true count %d", sc, replicas[i])
		}
	}
}

func TestQRSScores(t *testing.T) {
	resultSets := [][]int{{0, 1}, {1}, {2, 3, 4}}
	s := QRS(resultSets, 6)
	scores := s.Scores()
	if scores[0] != 2 || scores[1] != 1 || scores[2] != 3 {
		t.Errorf("QRS scores = %v", scores)
	}
	if !math.IsInf(scores[5], 1) {
		t.Error("unseen file not +Inf")
	}
	// Unseen files are never published, at any budget.
	pub := SelectBudget(s, []int{1, 1, 1, 1, 1, 1}, 1.0, 1)
	if pub[5] {
		t.Error("QRS published a never-observed file")
	}
}

// TestSchemeOrdering reproduces the qualitative ordering of Figure 13:
// Perfect >= SAM(15%) >= TF-family >= Random at a mid publishing budget.
func TestSchemeOrdering(t *testing.T) {
	tr := testTrace()
	replicas := replicasOf(tr)
	placement := tr.Placement(tr.Cfg.Hosts)
	resultSets := tr.MatchingFiles()
	termFreq := tr.TermInstanceFrequency()
	pairFreq := tr.PairInstanceFrequency()
	const horizon = 0.05
	const budget = 0.3

	recall := func(s Scheme) float64 {
		pub := SelectBudget(s, replicas, budget, 42)
		return model.AvgQueryRecall(resultSets, replicas, pub, horizon)
	}
	perfect := recall(Perfect(replicas))
	sam := recall(SAM(placement, tr.Cfg.Hosts, 0.15, 7))
	tf := recall(TF(termsOf(tr), termFreq))
	tpf := recall(TPF(termsOf(tr), pairFreq, termFreq))
	random := recall(Random(len(replicas), 7))

	if perfect < sam-1e-9 {
		t.Errorf("Perfect %.1f < SAM %.1f", perfect, sam)
	}
	if sam <= random {
		t.Errorf("SAM %.1f <= Random %.1f", sam, random)
	}
	if tf <= random {
		t.Errorf("TF %.1f <= Random %.1f", tf, random)
	}
	if tpf <= random {
		t.Errorf("TPF %.1f <= Random %.1f", tpf, random)
	}
	if perfect < tf {
		t.Errorf("Perfect %.1f < TF %.1f", perfect, tf)
	}
}

func TestSAMSampleSizeMonotone(t *testing.T) {
	// Figure 15: larger samples approach Perfect; smaller degrade toward
	// Random but stay above it.
	tr := testTrace()
	replicas := replicasOf(tr)
	placement := tr.Placement(tr.Cfg.Hosts)
	resultSets := tr.MatchingFiles()
	const horizon, budget = 0.05, 0.3

	recall := func(s Scheme) float64 {
		pub := SelectBudget(s, replicas, budget, 42)
		return model.AvgQueryRecall(resultSets, replicas, pub, horizon)
	}
	r100 := recall(SAM(placement, tr.Cfg.Hosts, 1.0, 7))
	r15 := recall(SAM(placement, tr.Cfg.Hosts, 0.15, 7))
	r5 := recall(SAM(placement, tr.Cfg.Hosts, 0.05, 7))
	rand0 := recall(Random(len(replicas), 7))

	if !(r100 >= r15-2 && r15 >= r5-2) {
		t.Errorf("SAM not monotone in sample: 100%%=%.1f 15%%=%.1f 5%%=%.1f", r100, r15, r5)
	}
	if r5 <= rand0 {
		t.Errorf("SAM(5%%) %.1f <= Random %.1f", r5, rand0)
	}
}

func TestTFFallbackForShortFilenames(t *testing.T) {
	fileTerms := [][]string{{"solo"}, {"a", "b"}}
	termFreq := map[string]int{"solo": 3, "a": 10, "b": 5}
	pairFreq := map[[2]string]int{{"a", "b"}: 4}
	s := TPF(fileTerms, pairFreq, termFreq)
	scores := s.Scores()
	if scores[0] != 3 {
		t.Errorf("single-term file TPF score = %v, want TF fallback 3", scores[0])
	}
	if scores[1] != 4 {
		t.Errorf("pair score = %v, want 4", scores[1])
	}
}

func BenchmarkSelectBudget(b *testing.B) {
	tr := testTrace()
	replicas := replicasOf(tr)
	s := Perfect(replicas)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectBudget(s, replicas, 0.3, int64(i))
	}
}
