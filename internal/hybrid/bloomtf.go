package hybrid

import (
	"piersearch/internal/bloom"
)

// TFBloom is the §6.3 storage optimisation the paper suggests but does not
// evaluate: instead of keeping exact term-frequency counts, a node encodes
// the set of rare terms (frequency <= threshold) in a Bloom filter. A file
// is scored rare if any of its terms hits the filter. False positives make
// some popular terms look rare, so accuracy degrades gracefully as the
// filter shrinks — quantified by BenchmarkAblationTFBloom.
type TFBloom struct {
	filter *bloom.Filter
	terms  [][]string
}

// NewTFBloom builds the scheme: terms with instance frequency <= rareThreshold
// are inserted into a Bloom filter of filterBits bits.
func NewTFBloom(fileTerms [][]string, termFreq map[string]int, rareThreshold int, filterBits uint64) *TFBloom {
	rare := 0
	for _, f := range termFreq {
		if f <= rareThreshold {
			rare++
		}
	}
	if rare == 0 {
		rare = 1
	}
	f := bloom.New(filterBits, 4)
	for term, freq := range termFreq {
		if freq <= rareThreshold {
			f.AddString(term)
		}
	}
	return &TFBloom{filter: f, terms: fileTerms}
}

// Name implements Scheme.
func (t *TFBloom) Name() string { return "TF-Bloom" }

// Scores implements Scheme: 0 for files with a (probably) rare term, 1
// otherwise. The coarse two-level score means budget selection breaks ties
// randomly inside each class.
func (t *TFBloom) Scores() []float64 {
	out := make([]float64, len(t.terms))
	for i, terms := range t.terms {
		out[i] = 1
		for _, term := range terms {
			if t.filter.TestString(term) {
				out[i] = 0
				break
			}
		}
	}
	return out
}

// FilterBytes reports the memory the scheme ships/stores — the point of
// the optimisation (exact counts for 38,900 terms vs a few KB of filter).
func (t *TFBloom) FilterBytes() int { return t.filter.SizeBytes() }

// FalsePositiveRate estimates how often a popular term looks rare.
func (t *TFBloom) FalsePositiveRate() float64 { return t.filter.EstimatedFalsePositiveRate() }
