package hybrid

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/gnutella"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
)

// deployEnv is a miniature of the §7 deployment: a Gnutella overlay where
// a subset of ultrapeers are hybrid clients sharing a DHT.
type deployEnv struct {
	topo    *gnutella.Topology
	lib     *gnutella.Library
	gnet    *gnutella.Network
	cluster *dht.Cluster
	hybrids []*Ultrapeer
}

func newDeployEnv(t testing.TB, ups, hosts, hybrids int, cfg UltrapeerConfig) *deployEnv {
	t.Helper()
	topo, err := gnutella.NewTopology(gnutella.TopologyConfig{
		Ultrapeers: ups, Hosts: hosts, NewClientFrac: 0.2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := gnutella.NewLibrary(topo, piersearch.Tokenizer{})
	gnet := gnutella.NewNetwork(topo, lib, gnutella.NetworkConfig{DynamicQuery: true, Seed: 5})
	cluster, err := dht.NewCluster(hybrids, 11, dht.Config{})
	if err != nil {
		t.Fatal(err)
	}
	env := &deployEnv{topo: topo, lib: lib, gnet: gnet, cluster: cluster}
	for i := 0; i < hybrids; i++ {
		engine := pier.NewEngine(cluster.Nodes[i], pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engine)
		env.hybrids = append(env.hybrids, NewUltrapeer(gnutella.HostID(i), gnet, lib, engine, cfg))
	}
	return env
}

func TestHybridQueryAnsweredByGnutellaWhenPopular(t *testing.T) {
	env := newDeployEnv(t, 150, 600, 5, UltrapeerConfig{})
	// Popular file: copies near the querying ultrapeer.
	for _, v := range env.topo.UPAdj[0] {
		env.lib.AddFile(v, gnutella.SharedFile{Name: "everywhere anthem.mp3", Size: 1})
	}
	out, err := env.hybrids[0].Query("everywhere anthem", []string{"everywhere", "anthem"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceGnutella {
		t.Fatalf("source = %v, want gnutella", out.Source)
	}
	if out.FirstLatency <= 0 || out.FirstLatency > 30*time.Second {
		t.Errorf("latency = %v", out.FirstLatency)
	}
}

func TestHybridQueryFallsBackToPIER(t *testing.T) {
	env := newDeployEnv(t, 150, 600, 5, UltrapeerConfig{})
	// Rare file exists only outside any flooding horizon (not in the
	// overlay at all), but was published into the DHT by hybrid UP 1.
	rare := piersearch.File{Name: "hidden rarity bootleg.mp3", Size: 999, Host: "10.9.9.9", Port: 6346}
	if _, err := piersearch.NewPublisher(
		pierEngineOf(t, env, 1), piersearch.ModeInverted, piersearch.Tokenizer{},
	).PublishFile(rare); err != nil {
		t.Fatal(err)
	}
	out, err := env.hybrids[0].Query("hidden rarity", []string{"hidden", "rarity"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourcePIER {
		t.Fatalf("source = %v, want pier", out.Source)
	}
	if out.Results != 1 {
		t.Errorf("results = %d", out.Results)
	}
	// Latency = 30s timeout + PIER hops; must exceed the timeout but stay
	// well under the 65-73s Gnutella rare-item latency.
	if out.FirstLatency <= 30*time.Second || out.FirstLatency > 60*time.Second {
		t.Errorf("hybrid latency = %v, want (30s, 60s]", out.FirstLatency)
	}
}

// pierEngineOf builds a fresh engine on hybrid i's DHT node.
func pierEngineOf(t testing.TB, env *deployEnv, i int) *pier.Engine {
	t.Helper()
	e := pier.NewEngine(env.cluster.Nodes[i], pier.Config{})
	piersearch.RegisterSchemas(e)
	return e
}

func TestHybridQueryNoResultsAnywhere(t *testing.T) {
	env := newDeployEnv(t, 150, 600, 3, UltrapeerConfig{})
	out, err := env.hybrids[0].Query("absent entirely", []string{"absent", "entirely"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceNone || out.Results != 0 || out.FirstLatency != -1 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestObserveResultsPublishesOnlyRareSets(t *testing.T) {
	env := newDeployEnv(t, 150, 600, 3, UltrapeerConfig{RareResultsThreshold: 5})
	h := env.hybrids[0]
	leaf := env.topo.UPLeaves[0][0]

	var small []gnutella.FileRef
	for i := 0; i < 3; i++ {
		small = append(small, env.lib.AddFile(leaf, gnutella.SharedFile{Name: fmt.Sprintf("rare item %d.mp3", i), Size: 1}))
	}
	if err := h.ObserveResults(small); err != nil {
		t.Fatal(err)
	}
	if h.PublishCount != 3 {
		t.Errorf("published %d from small set, want 3", h.PublishCount)
	}
	if h.PublishBytes <= 0 {
		t.Error("no publish bytes recorded")
	}

	var large []gnutella.FileRef
	for i := 0; i < 10; i++ {
		large = append(large, env.lib.AddFile(leaf, gnutella.SharedFile{Name: fmt.Sprintf("popular item %d.mp3", i), Size: 1}))
	}
	if err := h.ObserveResults(large); err != nil {
		t.Fatal(err)
	}
	if h.PublishCount != 3 {
		t.Errorf("large result set triggered publishing: count = %d", h.PublishCount)
	}

	// Re-observing the same rare set must not double-publish.
	if err := h.ObserveResults(small); err != nil {
		t.Fatal(err)
	}
	if h.PublishCount != 3 {
		t.Errorf("duplicate observation re-published: count = %d", h.PublishCount)
	}
}

func TestPublishLocalIndexesWholeHost(t *testing.T) {
	env := newDeployEnv(t, 150, 600, 3, UltrapeerConfig{})
	leaf := env.topo.UPLeaves[0][0]
	for i := 0; i < 4; i++ {
		env.lib.AddFile(leaf, gnutella.SharedFile{Name: fmt.Sprintf("browse host file %d.mp3", i), Size: 1})
	}
	if err := env.hybrids[0].PublishLocal(leaf); err != nil {
		t.Fatal(err)
	}
	if env.hybrids[0].PublishCount != 4 {
		t.Errorf("published %d, want 4", env.hybrids[0].PublishCount)
	}
	// Published files are findable from another hybrid node.
	s := piersearch.NewSearch(pierEngineOf(t, env, 2), piersearch.Tokenizer{})
	results, _, err := s.Query("browse host", piersearch.StrategyJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Errorf("cross-node search found %d, want 4", len(results))
	}
	for _, r := range results {
		if !strings.HasPrefix(r.File.Host, "10.") {
			t.Errorf("synthetic host %q", r.File.Host)
		}
	}
}

func TestSourceString(t *testing.T) {
	if SourceGnutella.String() != "gnutella" || SourcePIER.String() != "pier" || SourceNone.String() != "none" {
		t.Error("Source names wrong")
	}
}
