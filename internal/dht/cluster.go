package dht

import (
	"fmt"
	"math/rand"
)

// Cluster is a fully bootstrapped in-process DHT: the substrate PIER and
// the hybrid deployment experiments run on.
type Cluster struct {
	Net   *LocalNetwork
	Nodes []*Node
	rng   *rand.Rand
	next  int // address counter for nodes added after construction
}

// buildNode constructs one cluster node, surfacing storage-factory errors
// instead of letting NewNode panic: the factory is pre-invoked and the
// resulting instance threaded through a per-node Config copy.
func buildNode(info NodeInfo, transport Transport, cfg Config) (*Node, error) {
	if cfg.NewStorage != nil {
		st, err := cfg.NewStorage(info)
		if err != nil {
			return nil, fmt.Errorf("dht: storage for %s: %w", info.Addr, err)
		}
		cfg.NewStorage = func(NodeInfo) (Storage, error) { return st, nil }
	}
	return NewNode(info, transport, cfg), nil
}

// NewCluster builds and bootstraps a DHT of n nodes with deterministic IDs
// derived from seed. Every node joins via node 0. When cfg.NewStorage is
// set it runs once per node, so disk-backed clusters get one store
// directory each.
func NewCluster(n int, seed int64, cfg Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dht: cluster size %d must be positive", n)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Cluster{Net: NewLocalNetwork(seed + 1), rng: rng, next: n}
	for i := 0; i < n; i++ {
		info := NodeInfo{ID: SeededID(rng), Addr: fmt.Sprintf("node-%d", i)}
		node, err := buildNode(info, c.Net, cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Net.Join(node)
		c.Nodes = append(c.Nodes, node)
	}
	seedInfo := c.Nodes[0].Info()
	for i, node := range c.Nodes {
		if i == 0 {
			continue
		}
		if err := node.Bootstrap(seedInfo); err != nil {
			c.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("dht: bootstrap node %d: %w", i, err)
		}
	}
	return c, nil
}

// AddNode creates, registers and bootstraps one more node (churn: join).
func (c *Cluster) AddNode(cfg Config) (*Node, error) {
	info := NodeInfo{ID: SeededID(c.rng), Addr: fmt.Sprintf("node-%d", c.next)}
	c.next++
	node, err := buildNode(info, c.Net, cfg)
	if err != nil {
		return nil, err
	}
	c.Net.Join(node)
	if len(c.Nodes) > 0 {
		if err := node.Bootstrap(c.Nodes[0].Info()); err != nil {
			c.Net.Remove(node.Info().Addr)
			node.Close() //nolint:errcheck // already failing
			return nil, err
		}
	}
	c.Nodes = append(c.Nodes, node)
	return node, nil
}

// RemoveNode abruptly detaches the i-th node (churn: ungraceful leave).
// The node's stored values are lost unless replicated elsewhere. The
// node's storage is deliberately not closed — an ungraceful leave models
// a crash, and disk-backed stores must recover from exactly this state.
func (c *Cluster) RemoveNode(i int) {
	if i < 0 || i >= len(c.Nodes) {
		return
	}
	c.Net.Remove(c.Nodes[i].Info().Addr)
	c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
}

// RandomNode returns a uniformly random live node.
func (c *Cluster) RandomNode() *Node {
	return c.Nodes[c.rng.Intn(len(c.Nodes))]
}

// Close closes every node's storage, returning the first error. Clusters
// over in-memory stores need not call it; disk-backed clusters must, so
// WALs flush and lock files release.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.Nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
