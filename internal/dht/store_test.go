package dht

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func sv(data string, pub byte, at, ttl time.Duration) StoredValue {
	var p ID
	p[0] = pub
	return StoredValue{Data: []byte(data), Publisher: p, StoredAt: at, TTL: ttl}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	key := StringID("k")
	if !s.Put(key, sv("a", 1, 0, 0)) {
		t.Fatal("first Put not new")
	}
	got := s.Get(key, 0)
	if len(got) != 1 || string(got[0].Data) != "a" {
		t.Fatalf("Get = %v", got)
	}
	if s.Len() != 1 || s.ValueCount() != 1 || s.Bytes() != 1 {
		t.Errorf("Len/ValueCount/Bytes = %d/%d/%d", s.Len(), s.ValueCount(), s.Bytes())
	}
}

func TestStoreMultiValueDistinctPublishers(t *testing.T) {
	s := NewStore()
	key := StringID("k")
	s.Put(key, sv("a", 1, 0, 0))
	s.Put(key, sv("a", 2, 0, 0)) // same payload, different publisher
	s.Put(key, sv("b", 1, 0, 0)) // same publisher, different payload
	if got := s.Get(key, 0); len(got) != 3 {
		t.Fatalf("multi-value Get = %d values, want 3", len(got))
	}
}

func TestStoreRefreshUpdatesTimestamps(t *testing.T) {
	s := NewStore()
	key := StringID("k")
	s.Put(key, sv("a", 1, 0, time.Second))
	if s.Put(key, sv("a", 1, 5*time.Second, time.Minute)) {
		t.Fatal("refresh reported as new value")
	}
	got := s.Get(key, 0)
	if len(got) != 1 || got[0].StoredAt != 5*time.Second || got[0].TTL != time.Minute {
		t.Fatalf("refresh did not update metadata: %+v", got)
	}
}

func TestStoreTTLExpiry(t *testing.T) {
	s := NewStore()
	key := StringID("k")
	s.Put(key, sv("short", 1, 0, time.Second))
	s.Put(key, sv("long", 2, 0, time.Hour))
	s.Put(key, sv("forever", 3, 0, 0))

	// Within TTL: all live.
	if got := s.Get(key, 500*time.Millisecond); len(got) != 3 {
		t.Fatalf("before expiry: %d values", len(got))
	}
	// After the short TTL: lazily pruned on Get.
	got := s.Get(key, 2*time.Second)
	if len(got) != 2 {
		t.Fatalf("after expiry: %d values, want 2", len(got))
	}
	for _, v := range got {
		if string(v.Data) == "short" {
			t.Error("expired value survived")
		}
	}
}

func TestStoreExpireSweep(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		key := StringID(fmt.Sprintf("k%d", i))
		ttl := time.Duration(i+1) * time.Second
		s.Put(key, sv("v", byte(i), 0, ttl))
	}
	removed := s.Expire(5500 * time.Millisecond) // TTLs 1..5s expired
	if removed != 5 {
		t.Errorf("Expire removed %d, want 5", removed)
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d after sweep, want 5", s.Len())
	}
	// Keys with all values expired disappear entirely.
	if got := s.Get(StringID("k0"), 10*time.Second); got != nil {
		t.Errorf("expired key still served: %v", got)
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore()
	key := StringID("k")
	s.Put(key, sv("abc", 1, 0, 0))
	s.Delete(key)
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Errorf("after Delete: Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	s.Delete(key) // idempotent
}

func TestStoreKeys(t *testing.T) {
	s := NewStore()
	want := map[ID]bool{}
	for i := 0; i < 5; i++ {
		k := StringID(fmt.Sprintf("k%d", i))
		want[k] = true
		s.Put(k, sv("v", 1, 0, 0))
	}
	keys := s.Keys()
	if len(keys) != 5 {
		t.Fatalf("Keys = %d", len(keys))
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected key %s", k.Short())
		}
	}
}

func TestStoreBytesAccounting(t *testing.T) {
	// Property: Bytes always equals the sum of live payload lengths.
	s := NewStore()
	now := time.Duration(0)
	prop := func(key uint8, data []byte, pub uint8, expire bool) bool {
		k := StringID(fmt.Sprintf("k%d", key%8))
		ttl := time.Duration(0)
		if expire {
			ttl = time.Millisecond
		}
		s.Put(k, StoredValue{Data: data, Publisher: ID{pub}, StoredAt: now, TTL: ttl})
		now += 2 * time.Millisecond
		s.Expire(now)
		total := 0
		for _, key := range s.Keys() {
			for _, v := range s.Get(key, now) {
				total += len(v.Data)
			}
		}
		return total == s.Bytes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNodeTTLEndToEnd(t *testing.T) {
	// Values published with a TTL vanish from the network after expiry.
	var now time.Duration
	clock := func() time.Duration { return now }
	c, err := NewCluster(16, 3, Config{TTL: 10 * time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Nodes[0].Put("ns", "ephemeral", []byte("v")); err != nil {
		t.Fatal(err)
	}
	values, _, err := c.Nodes[5].Get("ns", "ephemeral")
	if err != nil || len(values) != 1 {
		t.Fatalf("before expiry: %v %v", values, err)
	}
	now = time.Minute
	values, _, err = c.Nodes[5].Get("ns", "ephemeral")
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 0 {
		t.Fatalf("after expiry: %d values, want 0", len(values))
	}
}
