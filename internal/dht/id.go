// Package dht implements a Kademlia-style distributed hash table: 160-bit
// node and key identifiers under the XOR metric, k-bucket routing tables
// with replacement caches and staleness-driven refresh, α-parallel
// iterative lookups with O(log N) hops, and a replicated multi-value store
// with provider-record republish so data survives churn.
//
// The paper's PIERSearch runs on the Bamboo DHT; this package provides the
// same contract PIER depends on — put()/get() by key, routing an application
// message to the node responsible for a key, and resilience to churn —
// using the Kademlia design (the repro hint notes Kademlia is the natural
// Go-ecosystem substitute). All messaging goes through a Transport so the
// same node code runs over the in-process simulated network and over TCP.
//
// The routing math itself — identifiers, k-bucket tables, and the lookup
// engine — lives in the transport-free subpackage routing; dht re-exports
// the identity types as aliases so existing callers are unaffected by the
// split, and composes the engine with storage, replication and the RPC
// vocabulary.
package dht

import (
	mrand "math/rand"

	"piersearch/internal/codec"
	"piersearch/internal/dht/routing"
)

// IDBytes is the identifier width in bytes (160 bits, as in Chord/Kademlia
// and the paper's DHT discussion).
const IDBytes = routing.IDBytes

// IDBits is the identifier width in bits.
const IDBits = routing.IDBits

// ID is a 160-bit node or key identifier.
type ID = routing.ID

// NodeInfo identifies a DHT participant: its identifier plus a
// transport-specific address.
type NodeInfo = routing.NodeInfo

// Table is a Kademlia routing table; see routing.Table.
type Table = routing.Table

// TableStats summarizes a routing table for stats dumps; see
// routing.TableStats.
type TableStats = routing.TableStats

// NewID hashes arbitrary bytes into the identifier space.
func NewID(data []byte) ID { return routing.NewID(data) }

// StringID hashes a string into the identifier space.
func StringID(s string) ID { return routing.StringID(s) }

// NamespacedID hashes a (namespace, key) pair into the identifier space.
// PIER uses namespaces to separate tables (e.g. "Item" vs "Inverted") that
// share the same resource key text.
func NamespacedID(namespace, key string) ID { return routing.NamespacedID(namespace, key) }

// RandomID returns a cryptographically random identifier, used for node IDs
// in real deployments.
func RandomID() ID { return routing.RandomID() }

// SeededID returns a deterministic pseudo-random identifier, used for
// reproducible simulations.
func SeededID(rng *mrand.Rand) ID { return routing.SeededID(rng) }

// Distance returns the XOR distance between two identifiers.
func Distance(a, b ID) ID { return routing.Distance(a, b) }

// Less reports whether a < b as big-endian 160-bit integers.
func Less(a, b ID) bool { return routing.Less(a, b) }

// Closer reports whether a is strictly closer to target than b under XOR.
func Closer(a, b, target ID) bool { return routing.Closer(a, b, target) }

// BucketIndex returns the index of the k-bucket that holds other relative
// to self: the position of the highest differing bit, in [0, IDBits). It
// returns -1 when the identifiers are equal.
func BucketIndex(self, other ID) int { return routing.BucketIndex(self, other) }

// NewTable creates a routing table for the node with identifier self and
// bucket capacity k.
func NewTable(self ID, k int) *Table { return routing.NewTable(self, k) }

// ReadID decodes an ID from r.
func ReadID(r *codec.Reader) ID { return routing.ReadID(r) }

// ReadNodeInfo decodes a contact from r.
func ReadNodeInfo(r *codec.Reader) NodeInfo { return routing.ReadNodeInfo(r) }

// sortByDistance orders infos in place, nearest to target first.
func sortByDistance(infos []NodeInfo, target ID) []NodeInfo {
	return routing.SortByDistance(infos, target)
}
