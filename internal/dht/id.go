// Package dht implements a Kademlia-style distributed hash table: 160-bit
// node and key identifiers under the XOR metric, k-bucket routing tables,
// iterative lookups with O(log N) hops, and a replicated multi-value store.
//
// The paper's PIERSearch runs on the Bamboo DHT; this package provides the
// same contract PIER depends on — put()/get() by key, routing an application
// message to the node responsible for a key, and resilience to churn —
// using the Kademlia design (the repro hint notes Kademlia is the natural
// Go-ecosystem substitute). All messaging goes through a Transport so the
// same node code runs over the in-process simulated network and over TCP.
package dht

import (
	"crypto/rand"
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	mrand "math/rand"
)

// IDBytes is the identifier width in bytes (160 bits, as in Chord/Kademlia
// and the paper's DHT discussion).
const IDBytes = 20

// IDBits is the identifier width in bits.
const IDBits = IDBytes * 8

// ID is a 160-bit node or key identifier.
type ID [IDBytes]byte

// NewID hashes arbitrary bytes into the identifier space.
func NewID(data []byte) ID { return ID(sha1.Sum(data)) }

// StringID hashes a string into the identifier space.
func StringID(s string) ID { return NewID([]byte(s)) }

// NamespacedID hashes a (namespace, key) pair into the identifier space.
// PIER uses namespaces to separate tables (e.g. "Item" vs "Inverted") that
// share the same resource key text.
func NamespacedID(namespace, key string) ID {
	h := sha1.New()
	h.Write([]byte(namespace))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var id ID
	copy(id[:], h.Sum(nil))
	return id
}

// RandomID returns a cryptographically random identifier, used for node IDs
// in real deployments.
func RandomID() ID {
	var id ID
	if _, err := rand.Read(id[:]); err != nil {
		panic(fmt.Sprintf("dht: crypto/rand failed: %v", err))
	}
	return id
}

// SeededID returns a deterministic pseudo-random identifier, used for
// reproducible simulations.
func SeededID(rng *mrand.Rand) ID {
	var id ID
	for i := range id {
		id[i] = byte(rng.Intn(256))
	}
	return id
}

// Distance returns the XOR distance between two identifiers.
func Distance(a, b ID) ID {
	var d ID
	for i := range d {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// Less reports whether a < b as big-endian 160-bit integers.
func Less(a, b ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Closer reports whether a is strictly closer to target than b under XOR.
func Closer(a, b, target ID) bool {
	return Less(Distance(a, target), Distance(b, target))
}

// BucketIndex returns the index of the k-bucket that holds other relative
// to self: the position of the highest differing bit, in [0, IDBits). It
// returns -1 when the identifiers are equal.
func BucketIndex(self, other ID) int {
	for i := 0; i < IDBytes; i++ {
		x := self[i] ^ other[i]
		if x == 0 {
			continue
		}
		// Highest set bit within this byte.
		bit := 7
		for x>>uint(bit) == 0 {
			bit--
		}
		return (IDBytes-1-i)*8 + bit
	}
	return -1
}

// String returns the full hex form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated hex prefix for logs.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// IsZero reports whether the identifier is all zeros.
func (id ID) IsZero() bool {
	for _, b := range id {
		if b != 0 {
			return false
		}
	}
	return true
}
