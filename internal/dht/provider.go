package dht

import (
	"time"

	"piersearch/internal/codec"
)

// ProviderRecord is one replicated value in flight between holders: the
// key it lives under, the payload, who originally published it, and how
// much lifetime it has left. TTL is *remaining* time, not absolute: the
// receiver stamps its own StoredAt, so the record expires at the same
// wall/virtual moment on every holder regardless of when it arrived.
type ProviderRecord struct {
	Key       ID
	Data      []byte
	Publisher ID
	TTL       time.Duration // remaining lifetime; 0 means no expiry
}

// providerWireVersion versions the provider-record wire format so the
// codec can evolve without silently misreading old frames.
const providerWireVersion = 1

// maxProviderRecords bounds a decoded batch against hostile counts.
const maxProviderRecords = 1 << 16

// AppendProviderRecords appends the versioned wire form of recs: version
// byte, record count, then each record as raw key, length-prefixed data,
// raw publisher, and varint TTL in nanoseconds.
func AppendProviderRecords(dst []byte, recs []ProviderRecord) []byte {
	dst = append(dst, providerWireVersion)
	dst = codec.AppendUvarint(dst, uint64(len(recs)))
	for _, rec := range recs {
		dst = rec.Key.AppendWire(dst)
		dst = codec.AppendBytes(dst, rec.Data)
		dst = rec.Publisher.AppendWire(dst)
		dst = codec.AppendVarint(dst, int64(rec.TTL))
	}
	return dst
}

// ReadProviderRecords decodes a provider-record batch from r. On any
// malformation it fails r and returns nil.
func ReadProviderRecords(r *codec.Reader) []ProviderRecord {
	if v := r.Byte(); r.Err() == nil && v != providerWireVersion {
		r.Fail("unsupported provider record version")
		return nil
	}
	n := r.Count()
	if n == 0 || r.Err() != nil {
		return nil
	}
	if n > maxProviderRecords {
		r.Fail("provider record count exceeds limit")
		return nil
	}
	recs := make([]ProviderRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := ProviderRecord{
			Key:       ReadID(r),
			Data:      r.Bytes(),
			Publisher: ReadID(r),
			TTL:       time.Duration(r.Varint()),
		}
		if r.Err() != nil {
			return nil
		}
		recs = append(recs, rec)
	}
	return recs
}
