// Package routing is the Kademlia routing core of the DHT: 160-bit
// identifiers under the XOR metric, k-bucket routing tables with
// per-bucket LRU order, replacement caches and staleness tracking, and
// the α-parallel iterative lookup engine that converges on the k closest
// nodes to a target in O(log n) hops.
//
// The package is deliberately transport- and storage-free: it never
// issues an RPC itself. Probing a contact is abstracted behind a
// ProbeFunc, and blocking is abstracted behind Spawn/Wait hooks, so the
// same lookup engine runs over real goroutines and sockets
// (cmd/piersearch), the in-process simulated network, and the
// virtual-time scheduler in internal/scale — which may only block through
// its clock. Package dht composes this core with storage, replication and
// the RPC vocabulary; it re-exports ID, NodeInfo and Table as type
// aliases so existing callers are unaffected by the split.
package routing
