package routing

import (
	"fmt"
	mrand "math/rand"
	"testing"
	"time"
)

func info(seed string) NodeInfo {
	return NodeInfo{ID: StringID(seed), Addr: "addr-" + seed}
}

func TestObserveOutcomes(t *testing.T) {
	self := StringID("self")
	tab := NewTable(self, 2)

	if _, out := tab.Observe(NodeInfo{ID: self}); out != OutcomeRejected {
		t.Fatalf("observing self: got %v, want rejected", out)
	}
	if _, out := tab.Observe(NodeInfo{}); out != OutcomeRejected {
		t.Fatalf("observing zero ID: got %v, want rejected", out)
	}

	a := info("a")
	if _, out := tab.Observe(a); out != OutcomeInserted {
		t.Fatalf("first observe: got %v, want inserted", out)
	}
	a.Addr = "addr-a-moved"
	if _, out := tab.Observe(a); out != OutcomeRefreshed {
		t.Fatalf("re-observe: got %v, want refreshed", out)
	}
	got := tab.Closest(a.ID, 1)
	if len(got) != 1 || got[0].Addr != "addr-a-moved" {
		t.Fatalf("refresh did not update address: %+v", got)
	}
}

// fillBucket observes contacts until some bucket reports full, returning
// the full bucket's LRU candidate and the contact that overflowed it.
func fillBucket(t *testing.T, tab *Table) (lru, overflow NodeInfo) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		n := info(fmt.Sprintf("contact-%d", i))
		if cand, out := tab.Observe(n); out == OutcomeFull {
			return *cand, n
		}
	}
	t.Fatal("no bucket filled")
	return
}

func TestEvictPromotesReplacement(t *testing.T) {
	tab := NewTable(StringID("self"), 2)
	lru, overflow := fillBucket(t, tab)
	if tab.Contains(overflow.ID) {
		t.Fatal("overflow contact admitted to a full bucket")
	}
	tab.Evict(lru.ID)
	if tab.Contains(lru.ID) {
		t.Fatal("evicted contact still present")
	}
	// The replacement cache held the overflow contact; eviction promotes it.
	if !tab.Contains(overflow.ID) {
		t.Fatal("replacement not promoted after eviction")
	}
	st := tab.Stats()
	if st.Counters.Evictions != 1 || st.Counters.Promotions != 1 {
		t.Fatalf("counters: %+v", st.Counters)
	}
}

func TestReplacementCacheBounded(t *testing.T) {
	tab := NewTable(StringID("self"), 1)
	seen := 0
	for i := 0; i < 50_000 && seen < replacementCap+3; i++ {
		if _, out := tab.Observe(info(fmt.Sprintf("r-%d", i))); out == OutcomeFull {
			seen++
		}
	}
	if seen < replacementCap+3 {
		t.Skip("not enough colliding contacts generated")
	}
	for _, b := range tab.Stats().Fill {
		if b.Replacements > replacementCap {
			t.Fatalf("bucket %d replacement cache over cap: %d", b.Index, b.Replacements)
		}
	}
}

// distinctBucketPair returns two contacts guaranteed to land in different
// buckets of a table owned by self.
func distinctBucketPair(self ID) (a, b NodeInfo) {
	a = info("stale-0")
	ai := BucketIndex(self, a.ID)
	for i := 1; ; i++ {
		b = info(fmt.Sprintf("stale-%d", i))
		if bi := BucketIndex(self, b.ID); bi >= 0 && bi != ai {
			return a, b
		}
	}
}

func TestStaleBuckets(t *testing.T) {
	now := time.Duration(0)
	tab := NewTable(StringID("self"), 4)
	tab.SetClock(func() time.Duration { return now })

	a, b := distinctBucketPair(tab.Self())
	tab.Observe(a)
	now = 10 * time.Minute
	tab.Observe(b)
	now = 20 * time.Minute

	stale := tab.StaleBuckets(15*time.Minute, 8)
	ai, bi := BucketIndex(tab.Self(), a.ID), BucketIndex(tab.Self(), b.ID)
	if len(stale) != 1 || stale[0] != ai {
		t.Fatalf("stale = %v, want [%d] (a's bucket only; b touched at 10m)", stale, ai)
	}

	tab.NoteRefreshed(ai)
	if got := tab.StaleBuckets(15*time.Minute, 8); len(got) != 0 {
		t.Fatalf("after NoteRefreshed: stale = %v, want none", got)
	}

	now = 50 * time.Minute
	// Both stale now; most-stale first (a refreshed at 20m, b touched at 10m).
	got := tab.StaleBuckets(15*time.Minute, 8)
	if len(got) != 2 || got[0] != bi || got[1] != ai {
		t.Fatalf("stale order = %v, want [%d %d]", got, bi, ai)
	}
	if got := tab.StaleBuckets(15*time.Minute, 1); len(got) != 1 {
		t.Fatalf("max not applied: %v", got)
	}
}

func TestNoteLookupKeepsBucketWarm(t *testing.T) {
	now := time.Duration(0)
	tab := NewTable(StringID("self"), 4)
	tab.SetClock(func() time.Duration { return now })
	a := info("warm")
	tab.Observe(a)
	now = 20 * time.Minute
	tab.NoteLookup(a.ID)
	now = 30 * time.Minute
	if got := tab.StaleBuckets(15*time.Minute, 8); len(got) != 0 {
		t.Fatalf("lookup-warmed bucket reported stale: %v", got)
	}
}

func TestRandomIDInBucket(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	self := StringID("self")
	for bucket := 0; bucket < IDBits; bucket += 7 {
		for trial := 0; trial < 8; trial++ {
			id := RandomIDInBucket(self, bucket, rng)
			if got := BucketIndex(self, id); got != bucket {
				t.Fatalf("bucket %d: generated ID lands in bucket %d", bucket, got)
			}
		}
	}
}

func TestTableStatsFill(t *testing.T) {
	tab := NewTable(StringID("self"), 3)
	for i := 0; i < 40; i++ {
		tab.Observe(info(fmt.Sprintf("s-%d", i)))
	}
	st := tab.Stats()
	if st.Contacts != tab.Len() {
		t.Fatalf("stats contacts %d != Len %d", st.Contacts, tab.Len())
	}
	total := 0
	for i, b := range st.Fill {
		if b.Entries > 3 {
			t.Fatalf("bucket %d over capacity: %d", b.Index, b.Entries)
		}
		total += b.Entries
		if i > 0 && st.Fill[i-1].Index >= b.Index {
			t.Fatalf("fill not ascending: %v", st.Fill)
		}
	}
	if total != st.Contacts {
		t.Fatalf("fill sums to %d, stats say %d", total, st.Contacts)
	}
	if st.Counters.Inserts == 0 {
		t.Fatal("no inserts counted")
	}
}
