package routing

import (
	"context"
	"sync"
)

// ProbeResult is what one contact answered during a lookup.
type ProbeResult struct {
	// From is the responder as it identified itself. The engine does not
	// act on it — transports use it to update routing tables — but it
	// travels with the result so probe implementations can share one
	// closure between lookup and join paths.
	From NodeInfo
	// Closer are the contacts the responder considered closest to the
	// target; they become lookup candidates.
	Closer []NodeInfo
	// Stop asks the lookup to terminate early: a FindValue probe found
	// enough holders, so converging on the exact k closest is wasted work.
	Stop bool
}

// ProbeFunc queries one contact about the lookup target. depth is the hop
// depth of the probed contact (seeds are 1); implementations thread it into
// their traffic accounting. A non-nil error marks the contact failed for
// the remainder of the lookup.
type ProbeFunc func(ctx context.Context, to NodeInfo, depth int) (ProbeResult, error)

// LookupConfig parameterizes one iterative lookup.
type LookupConfig struct {
	Target ID
	// Self is excluded from the candidate set: a node never probes itself.
	Self ID
	// K is how many closest contacts the lookup converges on (default 20).
	K int
	// Alpha is the number of concurrent probe workers (default 3).
	Alpha int
	// Seed are the starting candidates, normally Table.Closest(Target, K).
	Seed []NodeInfo
	// Probe issues one query. Required.
	Probe ProbeFunc
	// Spawn starts a helper worker (default: go fn()). The virtual-time
	// scheduler substitutes clock.Go so workers are clock tasks.
	Spawn func(fn func())
	// Wait blocks until wake is closed or ctx is done (default: select on
	// both). The virtual-time scheduler substitutes a clock.Sleep poll so
	// a starved worker blocks only through the clock.
	Wait func(ctx context.Context, wake <-chan struct{})
}

// LookupResult is the outcome of one iterative lookup.
type LookupResult struct {
	// Closest holds up to K non-failed contacts, nearest to target first.
	Closest []NodeInfo
	// Hops is the maximum depth of any successful probe: 1 if only seeds
	// answered, d if a contact discovered d-1 merges deep answered.
	Hops int
	// Probes is the number of probes issued, Failed how many errored.
	Probes int
	Failed int
	// Stopped reports early termination via ProbeResult.Stop.
	Stopped bool
}

const (
	stateNew = iota
	stateInflight
	stateDone
	stateFailed
)

type candidate struct {
	info  NodeInfo
	depth int
	state int
}

type lookupState struct {
	cfg LookupConfig

	mu       sync.Mutex
	all      []*candidate // sorted nearest-to-target first
	known    map[ID]*candidate
	wake     chan struct{} // closed-and-replaced to broadcast state changes
	inflight int
	helpers  int
	hops     int
	probes   int
	failed   int
	done     bool
	stopped  bool
}

// Run executes one α-parallel iterative lookup and blocks until every
// worker has finished. Workers repeatedly probe the nearest unqueried
// candidate among the K closest non-failed contacts seen so far, merging
// each answer's Closer set; the lookup converges when that frontier is
// exhausted with no probe in flight. A starved worker waits rather than
// exits — an in-flight probe may still uncover closer candidates.
func Run(ctx context.Context, cfg LookupConfig) LookupResult {
	if cfg.Probe == nil {
		panic("routing: LookupConfig.Probe is required")
	}
	if cfg.K <= 0 {
		cfg.K = 20
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 3
	}
	if cfg.Spawn == nil {
		cfg.Spawn = func(fn func()) { go fn() }
	}
	if cfg.Wait == nil {
		cfg.Wait = func(ctx context.Context, wake <-chan struct{}) {
			select {
			case <-wake:
			case <-ctx.Done():
			}
		}
	}
	s := &lookupState{
		cfg:   cfg,
		known: make(map[ID]*candidate),
		wake:  make(chan struct{}),
	}
	s.merge(cfg.Seed, 1)
	if len(s.all) == 0 {
		return LookupResult{}
	}
	s.helpers = cfg.Alpha - 1
	for i := 0; i < cfg.Alpha-1; i++ {
		cfg.Spawn(func() {
			s.worker(ctx)
			s.mu.Lock()
			s.helpers--
			s.broadcastLocked()
			s.mu.Unlock()
		})
	}
	s.worker(ctx)
	// Join the helpers before reporting: late probe results must not race
	// with the caller reading Closest. Helpers always terminate — probes
	// honor ctx and a finished lookup wakes every waiter — so this wait
	// ignores ctx and cannot spin.
	for {
		s.mu.Lock()
		if s.helpers == 0 {
			res := LookupResult{
				Closest: s.closestLocked(),
				Hops:    s.hops,
				Probes:  s.probes,
				Failed:  s.failed,
				Stopped: s.stopped,
			}
			s.mu.Unlock()
			return res
		}
		wake := s.wake
		s.mu.Unlock()
		// Joining workers must outlive a canceled query ctx: they still
		// hold in-flight RPC slots that have to drain into state.
		cfg.Wait(context.Background(), wake) //lint:allow ctxflow worker join must complete even after the query ctx is canceled
	}
}

func (s *lookupState) worker(ctx context.Context) {
	for {
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			return
		}
		if ctx.Err() != nil {
			s.finishLocked()
			s.mu.Unlock()
			return
		}
		c := s.nextLocked()
		if c == nil {
			if s.inflight == 0 {
				// Frontier exhausted and nothing pending: converged.
				s.finishLocked()
				s.mu.Unlock()
				return
			}
			wake := s.wake
			s.mu.Unlock()
			s.cfg.Wait(ctx, wake)
			continue
		}
		c.state = stateInflight
		s.inflight++
		s.probes++
		info, depth := c.info, c.depth
		s.mu.Unlock()

		res, err := s.cfg.Probe(ctx, info, depth)

		s.mu.Lock()
		s.inflight--
		if err != nil {
			c.state = stateFailed
			s.failed++
		} else {
			c.state = stateDone
			if depth > s.hops {
				s.hops = depth
			}
			if !s.done {
				s.mergeLocked(res.Closer, depth+1)
				if res.Stop {
					s.stopped = true
					s.finishLocked()
				}
			}
		}
		s.broadcastLocked()
		s.mu.Unlock()
	}
}

// nextLocked picks the nearest unqueried candidate among the K closest
// non-failed contacts. Candidates beyond that window are not probed: if
// the lookup converges they were never among the k closest, and if closer
// contacts fail the window slides to include them.
func (s *lookupState) nextLocked() *candidate {
	seen := 0
	for _, c := range s.all {
		if c.state == stateFailed {
			continue
		}
		seen++
		if seen > s.cfg.K {
			return nil
		}
		if c.state == stateNew {
			return c
		}
	}
	return nil
}

func (s *lookupState) merge(infos []NodeInfo, depth int) {
	s.mu.Lock()
	s.mergeLocked(infos, depth)
	s.mu.Unlock()
}

func (s *lookupState) mergeLocked(infos []NodeInfo, depth int) {
	added := false
	for _, n := range infos {
		if n.ID.IsZero() || n.ID == s.cfg.Self {
			continue
		}
		if _, ok := s.known[n.ID]; ok {
			continue
		}
		c := &candidate{info: n, depth: depth}
		s.known[n.ID] = c
		s.all = append(s.all, c)
		added = true
	}
	if !added {
		return
	}
	target := s.cfg.Target
	// Insertion-style re-sort: the slice is already sorted up to the newly
	// appended tail, and the tail is short.
	for i := 1; i < len(s.all); i++ {
		for j := i; j > 0 && Closer(s.all[j].info.ID, s.all[j-1].info.ID, target); j-- {
			s.all[j], s.all[j-1] = s.all[j-1], s.all[j]
		}
	}
}

func (s *lookupState) closestLocked() []NodeInfo {
	out := make([]NodeInfo, 0, s.cfg.K)
	for _, c := range s.all {
		if c.state == stateFailed {
			continue
		}
		out = append(out, c.info)
		if len(out) == s.cfg.K {
			break
		}
	}
	return out
}

func (s *lookupState) finishLocked() {
	if !s.done {
		s.done = true
	}
	s.broadcastLocked()
}

func (s *lookupState) broadcastLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}
