package routing

import (
	"crypto/rand"
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	mrand "math/rand"
	"sort"

	"piersearch/internal/codec"
)

// IDBytes is the identifier width in bytes (160 bits, as in Chord/Kademlia
// and the paper's DHT discussion).
const IDBytes = 20

// IDBits is the identifier width in bits.
const IDBits = IDBytes * 8

// ID is a 160-bit node or key identifier.
type ID [IDBytes]byte

// NodeInfo identifies a DHT participant: its identifier plus a
// transport-specific address.
type NodeInfo struct {
	ID   ID
	Addr string
}

// NewID hashes arbitrary bytes into the identifier space.
func NewID(data []byte) ID { return ID(sha1.Sum(data)) }

// StringID hashes a string into the identifier space.
func StringID(s string) ID { return NewID([]byte(s)) }

// NamespacedID hashes a (namespace, key) pair into the identifier space.
// PIER uses namespaces to separate tables (e.g. "Item" vs "Inverted") that
// share the same resource key text.
func NamespacedID(namespace, key string) ID {
	h := sha1.New()
	h.Write([]byte(namespace))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var id ID
	copy(id[:], h.Sum(nil))
	return id
}

// RandomID returns a cryptographically random identifier, used for node IDs
// in real deployments.
func RandomID() ID {
	var id ID
	if _, err := rand.Read(id[:]); err != nil {
		panic(fmt.Sprintf("routing: crypto/rand failed: %v", err))
	}
	return id
}

// SeededID returns a deterministic pseudo-random identifier, used for
// reproducible simulations.
func SeededID(rng *mrand.Rand) ID {
	var id ID
	for i := range id {
		id[i] = byte(rng.Intn(256))
	}
	return id
}

// Distance returns the XOR distance between two identifiers.
func Distance(a, b ID) ID {
	var d ID
	for i := range d {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// Less reports whether a < b as big-endian 160-bit integers.
func Less(a, b ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Closer reports whether a is strictly closer to target than b under XOR.
func Closer(a, b, target ID) bool {
	return Less(Distance(a, target), Distance(b, target))
}

// BucketIndex returns the index of the k-bucket that holds other relative
// to self: the position of the highest differing bit, in [0, IDBits). It
// returns -1 when the identifiers are equal.
func BucketIndex(self, other ID) int {
	for i := 0; i < IDBytes; i++ {
		x := self[i] ^ other[i]
		if x == 0 {
			continue
		}
		// Highest set bit within this byte.
		bit := 7
		for x>>uint(bit) == 0 {
			bit--
		}
		return (IDBytes-1-i)*8 + bit
	}
	return -1
}

// RandomIDInBucket returns an identifier whose BucketIndex relative to
// self is exactly bucket: self with bit `bucket` flipped and every lower
// bit randomized. Bucket refresh looks such an ID up to repopulate a
// stale bucket with live contacts from its subtree.
func RandomIDInBucket(self ID, bucket int, rng *mrand.Rand) ID {
	if bucket < 0 || bucket >= IDBits {
		panic(fmt.Sprintf("routing: bucket %d out of range", bucket))
	}
	id := self
	byteIdx := IDBytes - 1 - bucket/8
	bit := uint(bucket % 8)
	id[byteIdx] ^= 1 << bit
	// Randomize the bits below the flipped one: the remainder of its byte,
	// then every less-significant byte.
	if bit > 0 {
		mask := byte(1<<bit - 1)
		id[byteIdx] = id[byteIdx]&^mask | byte(rng.Intn(256))&mask
	}
	for i := byteIdx + 1; i < IDBytes; i++ {
		id[i] = byte(rng.Intn(256))
	}
	return id
}

// String returns the full hex form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated hex prefix for logs.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// IsZero reports whether the identifier is all zeros.
func (id ID) IsZero() bool {
	for _, b := range id {
		if b != 0 {
			return false
		}
	}
	return true
}

// SortByDistance orders infos in place, nearest to target first, and
// returns the slice for convenience.
func SortByDistance(infos []NodeInfo, target ID) []NodeInfo {
	sort.Slice(infos, func(i, j int) bool {
		return Closer(infos[i].ID, infos[j].ID, target)
	})
	return infos
}

// --- wire forms -------------------------------------------------------------

// Shared wire forms for the DHT identity types, used by the RPC codec in
// package wire and the engine message codec in package pier so the layers
// cannot drift apart: an ID travels as its raw 20 bytes, a NodeInfo as raw
// ID plus length-prefixed address.

// AppendWire appends the ID's wire form (raw bytes, no prefix).
func (id ID) AppendWire(dst []byte) []byte { return append(dst, id[:]...) }

// ReadID decodes an ID from r.
func ReadID(r *codec.Reader) ID {
	var id ID
	copy(id[:], r.Take(IDBytes))
	return id
}

// AppendWire appends the contact's wire form.
func (n NodeInfo) AppendWire(dst []byte) []byte {
	dst = n.ID.AppendWire(dst)
	return codec.AppendString(dst, n.Addr)
}

// ReadNodeInfo decodes a contact from r.
func ReadNodeInfo(r *codec.Reader) NodeInfo {
	return NodeInfo{ID: ReadID(r), Addr: r.String()}
}
