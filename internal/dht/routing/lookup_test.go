package routing

import (
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync/atomic"
	"testing"
)

// fakeNet is an in-memory Kademlia universe: every node holds a k-bucket
// table fed with every other node, so lookups traverse a realistic
// structured topology without any transport.
type fakeNet struct {
	nodes  []NodeInfo
	tables map[ID]*Table
	dead   map[ID]bool
	probes atomic.Int64
}

func newFakeNet(n, k int, seed int64) *fakeNet {
	rng := mrand.New(mrand.NewSource(seed))
	f := &fakeNet{tables: make(map[ID]*Table), dead: make(map[ID]bool)}
	for i := 0; i < n; i++ {
		f.nodes = append(f.nodes, NodeInfo{ID: SeededID(rng), Addr: fmt.Sprintf("node-%d", i)})
	}
	for _, n := range f.nodes {
		tab := NewTable(n.ID, k)
		for _, other := range f.nodes {
			tab.Update(other)
		}
		f.tables[n.ID] = tab
	}
	return f
}

func (f *fakeNet) probe(target ID) ProbeFunc {
	return func(ctx context.Context, to NodeInfo, depth int) (ProbeResult, error) {
		f.probes.Add(1)
		if f.dead[to.ID] {
			return ProbeResult{}, errors.New("unreachable")
		}
		return ProbeResult{From: to, Closer: f.tables[to.ID].Closest(target, 8)}, nil
	}
}

// trueClosest returns the k closest live nodes to target across the whole
// universe — the ground truth a lookup should converge on.
func (f *fakeNet) trueClosest(target ID, k int) []NodeInfo {
	live := make([]NodeInfo, 0, len(f.nodes))
	for _, n := range f.nodes {
		if !f.dead[n.ID] {
			live = append(live, n)
		}
	}
	SortByDistance(live, target)
	if len(live) > k {
		live = live[:k]
	}
	return live
}

func (f *fakeNet) lookup(t *testing.T, target ID, alpha int) LookupResult {
	t.Helper()
	origin := f.nodes[0]
	return Run(context.Background(), LookupConfig{
		Target: target,
		Self:   origin.ID,
		K:      8,
		Alpha:  alpha,
		Seed:   f.tables[origin.ID].Closest(target, 8),
		Probe:  f.probe(target),
	})
}

func TestLookupFindsTrueClosest(t *testing.T) {
	f := newFakeNet(128, 8, 42)
	for trial := 0; trial < 10; trial++ {
		target := StringID(fmt.Sprintf("key-%d", trial))
		res := f.lookup(t, target, 1)
		truth := f.trueClosest(target, 8)
		if len(res.Closest) == 0 || res.Closest[0].ID != truth[0].ID {
			t.Fatalf("trial %d: nearest = %v, want %v", trial, res.Closest, truth[0])
		}
		found := make(map[ID]bool, len(res.Closest))
		for _, n := range res.Closest {
			found[n.ID] = true
		}
		hits := 0
		for _, n := range truth {
			if found[n.ID] {
				hits++
			}
		}
		if hits < 6 {
			t.Fatalf("trial %d: only %d of true top-8 found", trial, hits)
		}
		if res.Hops < 1 || res.Hops > 10 {
			t.Fatalf("trial %d: hops = %d, want logarithmic", trial, res.Hops)
		}
		for i := 1; i < len(res.Closest); i++ {
			if Closer(res.Closest[i].ID, res.Closest[i-1].ID, target) {
				t.Fatalf("trial %d: result not sorted by distance", trial)
			}
		}
	}
}

func TestLookupParallelFindsNearest(t *testing.T) {
	f := newFakeNet(128, 8, 43)
	for trial := 0; trial < 10; trial++ {
		target := StringID(fmt.Sprintf("pkey-%d", trial))
		res := f.lookup(t, target, 4)
		truth := f.trueClosest(target, 1)
		if len(res.Closest) == 0 || res.Closest[0].ID != truth[0].ID {
			t.Fatalf("trial %d: nearest = %v, want %v", trial, res.Closest[0], truth[0])
		}
	}
}

func TestLookupExcludesFailedNodes(t *testing.T) {
	f := newFakeNet(128, 8, 44)
	target := StringID("failure-key")
	// Kill the three true-closest nodes: the lookup must route around them.
	for _, n := range f.trueClosest(target, 3) {
		f.dead[n.ID] = true
	}
	res := f.lookup(t, target, 3)
	if res.Failed == 0 {
		t.Fatal("no failures recorded despite dead nodes on the path")
	}
	for _, n := range res.Closest {
		if f.dead[n.ID] {
			t.Fatalf("dead node %v in result", n)
		}
	}
	truth := f.trueClosest(target, 1)
	if len(res.Closest) == 0 || res.Closest[0].ID != truth[0].ID {
		t.Fatalf("nearest live = %v, want %v", res.Closest, truth[0])
	}
}

func TestLookupStopEarly(t *testing.T) {
	f := newFakeNet(128, 8, 45)
	target := StringID("stop-key")
	inner := f.probe(target)
	var stopped atomic.Int64
	probe := func(ctx context.Context, to NodeInfo, depth int) (ProbeResult, error) {
		res, err := inner(ctx, to, depth)
		if err == nil && stopped.Add(1) >= 3 {
			res.Stop = true
		}
		return res, err
	}
	origin := f.nodes[0]
	res := Run(context.Background(), LookupConfig{
		Target: target,
		Self:   origin.ID,
		K:      8,
		Alpha:  1,
		Seed:   f.tables[origin.ID].Closest(target, 8),
		Probe:  probe,
	})
	if !res.Stopped {
		t.Fatal("Stop not honored")
	}
	if res.Probes != 3 {
		t.Fatalf("probes after stop = %d, want 3 (alpha=1)", res.Probes)
	}
}

func TestLookupCanceledContext(t *testing.T) {
	f := newFakeNet(64, 8, 46)
	target := StringID("cancel-key")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	origin := f.nodes[0]
	res := Run(ctx, LookupConfig{
		Target: target,
		Self:   origin.ID,
		K:      8,
		Alpha:  3,
		Seed:   f.tables[origin.ID].Closest(target, 8),
		Probe:  f.probe(target),
	})
	if res.Probes != 0 {
		t.Fatalf("probes after pre-canceled ctx = %d, want 0", res.Probes)
	}
}

func TestLookupEmptySeed(t *testing.T) {
	res := Run(context.Background(), LookupConfig{
		Target: StringID("x"),
		Probe: func(ctx context.Context, to NodeInfo, depth int) (ProbeResult, error) {
			return ProbeResult{}, nil
		},
	})
	if len(res.Closest) != 0 || res.Probes != 0 {
		t.Fatalf("empty seed: %+v", res)
	}
}

func TestLookupSelfExcluded(t *testing.T) {
	f := newFakeNet(64, 8, 47)
	origin := f.nodes[0]
	// Target the origin itself: every responder knows origin, but it must
	// never appear as a candidate or in the result.
	res := f.lookup(t, origin.ID, 2)
	for _, n := range res.Closest {
		if n.ID == origin.ID {
			t.Fatal("lookup returned the caller itself")
		}
	}
}
