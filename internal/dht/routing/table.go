package routing

import (
	mrand "math/rand"
	"sort"
	"sync"
	"time"
)

// replacementCap bounds the per-bucket replacement cache: contacts seen
// while the bucket was full, kept most-recent-last so an eviction can
// promote the freshest one without waiting to re-learn it from traffic.
const replacementCap = 4

// UpdateOutcome classifies what Observe did with a contact.
type UpdateOutcome uint8

// Observe outcomes.
const (
	// OutcomeRejected: the contact is the table's owner or has a zero ID.
	OutcomeRejected UpdateOutcome = iota
	// OutcomeInserted: a genuinely new contact entered a bucket.
	OutcomeInserted
	// OutcomeRefreshed: an already-known contact moved to most-recent.
	OutcomeRefreshed
	// OutcomeFull: the bucket is full; the contact went to the replacement
	// cache and the least-recently-seen entry was offered for eviction.
	OutcomeFull
)

// bucket is one k-bucket: contacts ordered least-recently-seen first, as in
// the Kademlia paper, so stale contacts are evicted before fresh ones.
type bucket struct {
	entries []NodeInfo
	// repl is the replacement cache, most-recently-seen last.
	repl []NodeInfo
	// touched is the last virtual/wall time the bucket saw activity (an
	// update or a lookup in its range); bucket refresh targets buckets
	// whose touched is stale.
	touched time.Duration
}

func (b *bucket) indexOf(id ID) int {
	for i, e := range b.entries {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// remember stashes n in the replacement cache (most-recent last, deduped).
func (b *bucket) remember(n NodeInfo) {
	for i, e := range b.repl {
		if e.ID == n.ID {
			copy(b.repl[i:], b.repl[i+1:])
			b.repl[len(b.repl)-1] = n
			return
		}
	}
	if len(b.repl) == replacementCap {
		copy(b.repl, b.repl[1:])
		b.repl = b.repl[:replacementCap-1]
	}
	b.repl = append(b.repl, n)
}

// TableCounters are the table's lifetime maintenance counters.
type TableCounters struct {
	Inserts    uint64 // new contacts admitted to a bucket
	Refreshes  uint64 // known contacts moved to most-recent
	DropsFull  uint64 // contacts sent to a replacement cache (bucket full)
	Evictions  uint64 // contacts removed by Evict
	Promotions uint64 // replacement-cache contacts promoted after an eviction
}

// BucketStat describes one non-empty bucket for stats dumps.
type BucketStat struct {
	Index        int // bucket index (higher = farther from the owner)
	Entries      int
	Replacements int
}

// TableStats is a point-in-time summary of the table plus its lifetime
// counters, the payload of the routing stats dump.
type TableStats struct {
	Contacts        int
	NonEmptyBuckets int
	Fill            []BucketStat // non-empty buckets, ascending index
	Counters        TableCounters
}

// Table is a Kademlia routing table: IDBits k-buckets keyed by shared-prefix
// length with the owner. It is safe for concurrent use: parallel lookups and
// RPC handlers observe contacts from many goroutines at once.
type Table struct {
	self  ID
	k     int
	clock func() time.Duration // nil: buckets are stamped with zero

	mu       sync.Mutex
	buckets  [IDBits]bucket
	counters TableCounters
}

// NewTable creates a routing table for the node with identifier self and
// bucket capacity k.
func NewTable(self ID, k int) *Table {
	if k <= 0 {
		panic("routing: bucket size must be positive")
	}
	return &Table{self: self, k: k}
}

// SetClock installs the time source used to stamp bucket activity for
// staleness tracking. nil (the default) stamps zero, which makes every
// bucket permanently stale — harmless unless refresh is driven.
func (t *Table) SetClock(clock func() time.Duration) { t.clock = clock }

func (t *Table) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// Self returns the owner's identifier.
func (t *Table) Self() ID { return t.self }

// K returns the bucket capacity.
func (t *Table) K() int { return t.k }

// Observe records contact with n and classifies the result. Known contacts
// move to the tail (most-recently-seen); new contacts are appended if the
// bucket has room. When a bucket is full the contact goes to the bucket's
// replacement cache and the least-recently-seen entry is returned so the
// caller may ping it and call Evict if it is dead — Kademlia's liveness
// check.
func (t *Table) Observe(n NodeInfo) (evictCandidate *NodeInfo, outcome UpdateOutcome) {
	idx := BucketIndex(t.self, n.ID)
	if idx < 0 || n.ID.IsZero() {
		return nil, OutcomeRejected // never store ourselves or a zero ID
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[idx]
	b.touched = now
	if i := b.indexOf(n.ID); i >= 0 {
		// Move to tail, refreshing the address in case it changed.
		copy(b.entries[i:], b.entries[i+1:])
		b.entries[len(b.entries)-1] = n
		t.counters.Refreshes++
		return nil, OutcomeRefreshed
	}
	if len(b.entries) < t.k {
		b.entries = append(b.entries, n)
		t.counters.Inserts++
		return nil, OutcomeInserted
	}
	b.remember(n)
	t.counters.DropsFull++
	lru := b.entries[0]
	return &lru, OutcomeFull
}

// Update is the compatibility form of Observe: the second result reports
// whether the table changed (the contact was inserted or refreshed).
func (t *Table) Update(n NodeInfo) (evictCandidate *NodeInfo, updated bool) {
	cand, out := t.Observe(n)
	return cand, out == OutcomeInserted || out == OutcomeRefreshed
}

// Evict removes id if present, making room for fresher contacts. If the
// bucket's replacement cache holds a recently seen contact, it is promoted
// into the freed slot so the bucket heals without waiting for new traffic.
func (t *Table) Evict(id ID) {
	idx := BucketIndex(t.self, id)
	if idx < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[idx]
	i := b.indexOf(id)
	if i < 0 {
		return
	}
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	t.counters.Evictions++
	if n := len(b.repl); n > 0 {
		promoted := b.repl[n-1]
		b.repl = b.repl[:n-1]
		b.entries = append(b.entries, promoted)
		t.counters.Promotions++
	}
}

// Contains reports whether id is in the table.
func (t *Table) Contains(id ID) bool {
	idx := BucketIndex(t.self, id)
	if idx < 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buckets[idx].indexOf(id) >= 0
}

// Len returns the total number of contacts.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lenLocked()
}

func (t *Table) lenLocked() int {
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i].entries)
	}
	return n
}

// Closest returns up to count contacts closest to target under XOR,
// ordered nearest first.
func (t *Table) Closest(target ID, count int) []NodeInfo {
	if count <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Bounded selection rather than copy-and-sort: replication paths call
	// this once per stored value, so each contact's distance is computed
	// exactly once and only the current best count are kept. Distances to
	// a fixed target are unique (IDs are unique), so the order is total.
	best := make([]NodeInfo, 0, count)
	dists := make([]ID, 0, count)
	for i := range t.buckets {
		for _, e := range t.buckets[i].entries {
			d := Distance(e.ID, target)
			if len(best) == count && !Less(d, dists[count-1]) {
				continue
			}
			pos := sort.Search(len(dists), func(j int) bool { return Less(d, dists[j]) })
			if len(best) < count {
				best = append(best, NodeInfo{})
				dists = append(dists, ID{})
			}
			copy(best[pos+1:], best[pos:])
			copy(dists[pos+1:], dists[pos:])
			best[pos] = e
			dists[pos] = d
		}
	}
	return best
}

// Contacts returns a copy of every contact in the table.
func (t *Table) Contacts() []NodeInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	all := make([]NodeInfo, 0, t.lenLocked())
	for i := range t.buckets {
		all = append(all, t.buckets[i].entries...)
	}
	return all
}

// NoteLookup stamps the bucket covering target as active: a lookup through
// a bucket's range keeps it warm, so refresh only targets genuinely idle
// regions of the ID space.
func (t *Table) NoteLookup(target ID) {
	idx := BucketIndex(t.self, target)
	if idx < 0 {
		return
	}
	now := t.now()
	t.mu.Lock()
	t.buckets[idx].touched = now
	t.mu.Unlock()
}

// NoteRefreshed stamps bucket as just refreshed, whether or not the
// refresh lookup found anyone, so a dead region is not re-probed every
// tick.
func (t *Table) NoteRefreshed(bucket int) {
	if bucket < 0 || bucket >= IDBits {
		return
	}
	now := t.now()
	t.mu.Lock()
	t.buckets[bucket].touched = now
	t.mu.Unlock()
}

// StaleBuckets returns up to max indexes of non-empty buckets whose last
// activity is older than maxAge, most-stale first. Empty buckets are
// skipped: with nothing known in the range there is no contact to route a
// refresh lookup through that subtree anyway, and lookups through
// neighbouring buckets repopulate it as a side effect.
func (t *Table) StaleBuckets(maxAge time.Duration, max int) []int {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var stale []int
	for i := range t.buckets {
		b := &t.buckets[i]
		if len(b.entries) == 0 {
			continue
		}
		if now-b.touched >= maxAge {
			stale = append(stale, i)
		}
	}
	// Most-stale first; ties keep ascending index order.
	for i := 1; i < len(stale); i++ {
		for j := i; j > 0 && t.buckets[stale[j]].touched < t.buckets[stale[j-1]].touched; j-- {
			stale[j], stale[j-1] = stale[j-1], stale[j]
		}
	}
	if len(stale) > max {
		stale = stale[:max]
	}
	return stale
}

// RefreshTarget returns a random identifier inside bucket's range,
// suitable as a FindNode target to repopulate it.
func (t *Table) RefreshTarget(bucket int, rng *mrand.Rand) ID {
	return RandomIDInBucket(t.self, bucket, rng)
}

// Stats returns a point-in-time summary plus lifetime counters.
func (t *Table) Stats() TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TableStats{Counters: t.counters}
	for i := range t.buckets {
		b := &t.buckets[i]
		if len(b.entries) == 0 && len(b.repl) == 0 {
			continue
		}
		if len(b.entries) > 0 {
			st.NonEmptyBuckets++
			st.Contacts += len(b.entries)
		}
		st.Fill = append(st.Fill, BucketStat{Index: i, Entries: len(b.entries), Replacements: len(b.repl)})
	}
	return st
}
