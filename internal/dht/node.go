package dht

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config holds node parameters. The zero value is usable: Normalize fills
// in Kademlia's customary defaults.
type Config struct {
	K         int           // bucket size and lookup result width (default 20)
	Alpha     int           // lookup batch parallelism (default 3)
	Replicate int           // number of nodes a value is stored on (default 3)
	TTL       time.Duration // default value lifetime; 0 means no expiry
	Clock     func() time.Duration

	// NewStorage constructs the node's local value store. nil selects the
	// built-in in-memory sharded map (NewStore). Cluster builders invoke
	// the factory once per node, so one Config can fan a per-node disk
	// store (store.DiskFactory) across a whole cluster. NewNode panics if
	// the factory fails; callers that must handle storage-open errors
	// should open the store first and return the instance from the
	// factory, or build through NewCluster/NewRealTimeCluster, which
	// surface factory errors.
	NewStorage func(self NodeInfo) (Storage, error)

	// Logf, when set, receives operational log lines (janitor sweep
	// reclaim counts). nil silences them.
	Logf func(format string, args ...any)
}

// Normalize fills unset fields with defaults and returns the config.
func (c Config) Normalize() Config {
	if c.K <= 0 {
		c.K = 20
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.Replicate <= 0 {
		c.Replicate = 3
	}
	if c.Clock == nil {
		start := time.Now()
		c.Clock = func() time.Duration { return time.Since(start) }
	}
	return c
}

// AppHandler processes an application message routed to this node and
// returns an optional reply payload.
type AppHandler func(from NodeInfo, data []byte) []byte

// LookupStats describes the traffic cost of one DHT operation.
// Hops counts sequential request rounds, the quantity that multiplies RTT
// when converting to latency (O(log N) in Kademlia).
type LookupStats struct {
	Messages int
	Bytes    int
	Hops     int
	Failed   int // contacts that did not respond
}

// Add merges other into s. Callers fanning out lookups concurrently must
// serialise Add calls themselves.
func (s *LookupStats) Add(o LookupStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Hops += o.Hops
	s.Failed += o.Failed
}

// ErrNoContacts is returned when a node has an empty routing table and
// cannot perform lookups.
var ErrNoContacts = errors.New("dht: routing table empty")

// Node is one DHT participant. All exported methods are safe for concurrent
// use: the routing table and store carry their own locks, outbound RPCs are
// issued without holding any node lock, and the concurrent PIER pipeline
// drives many Put/Get/Send operations against one node at once.
type Node struct {
	info      Config
	self      NodeInfo
	transport Transport
	table     *Table
	store     Storage

	mu       sync.Mutex // guards handlers
	handlers map[string]AppHandler

	// storeObs, when set, runs after every local store mutation — both
	// this node's own puts and inbound replica STOREs. The hot-key cache
	// tier hangs its invalidation-on-publish off this hook: the STORE RPC
	// a publisher already sends doubles as the purge hint at every
	// replica, with no extra wire traffic.
	storeObs atomic.Pointer[func(ID)]

	closeOnce sync.Once
	closeErr  error

	janitorSweeps    atomic.Int64
	janitorReclaimed atomic.Int64
}

// NewNode creates a node with the given identity, transport and config.
// It panics if cfg.NewStorage fails; see the Config.NewStorage docs.
func NewNode(self NodeInfo, transport Transport, cfg Config) *Node {
	cfg = cfg.Normalize()
	var store Storage
	if cfg.NewStorage != nil {
		st, err := cfg.NewStorage(self)
		if err != nil {
			panic(fmt.Sprintf("dht: NewStorage for %s: %v", self.Addr, err))
		}
		store = st
	} else {
		store = NewStore()
	}
	return &Node{
		info:      cfg,
		self:      self,
		transport: transport,
		table:     NewTable(self.ID, cfg.K),
		store:     store,
		handlers:  make(map[string]AppHandler),
	}
}

// Close releases the node's local storage: for a disk-backed store this
// flushes the write-ahead log, fsyncs and releases the lock file. It is
// idempotent and returns the first close error. Callers must stop the
// janitor and any transport serving this node first.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { n.closeErr = n.store.Close() })
	return n.closeErr
}

// Storage returns the node's local value store.
func (n *Node) Storage() Storage { return n.store }

// Info returns the node's identity.
func (n *Node) Info() NodeInfo { return n.self }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.info }

// TableLen returns the number of routing-table contacts.
func (n *Node) TableLen() int { return n.table.Len() }

// StoreStats returns (keys, values, payload bytes) held locally.
func (n *Node) StoreStats() (keys, values, bytes int) {
	return n.store.Len(), n.store.ValueCount(), n.store.Bytes()
}

// ExpireNow sweeps the local store for TTL-expired values immediately and
// returns how many were removed. Reclaimed entries accumulate into
// JanitorStats whether the sweep was manual or ticker-driven.
func (n *Node) ExpireNow() int {
	removed := n.store.Expire(n.info.Clock())
	if removed > 0 {
		n.janitorReclaimed.Add(int64(removed))
	}
	return removed
}

// JanitorStats are the lifetime soft-state reclamation counters of one
// node: how many janitor sweeps ran and how many TTL-expired entries were
// reclaimed (by the ticker and by explicit ExpireNow calls).
type JanitorStats struct {
	Sweeps    int64
	Reclaimed int64
}

// JanitorStats returns the node's reclamation counters.
func (n *Node) JanitorStats() JanitorStats {
	return JanitorStats{
		Sweeps:    n.janitorSweeps.Load(),
		Reclaimed: n.janitorReclaimed.Load(),
	}
}

// StartJanitor launches the background soft-state janitor: a ticker that
// sweeps TTL-expired values out of the local store every interval, so
// long-running deployments actually reclaim dead postings instead of only
// filtering them lazily on Get. interval <= 0 defaults to one minute. The
// reclaimed-entry count of every sweep accumulates into JanitorStats and,
// when Config.Logf is set, nonzero sweeps are logged. The returned stop
// function is idempotent and terminates the janitor.
func (n *Node) StartJanitor(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				n.janitorSweeps.Add(1)
				if removed := n.ExpireNow(); removed > 0 && n.info.Logf != nil {
					n.info.Logf("dht: janitor reclaimed %d expired entries (%d total)",
						removed, n.janitorReclaimed.Load())
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// RegisterApp installs h as the handler for application messages with the
// given dispatch kind.
func (n *Node) RegisterApp(kind string, h AppHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[kind] = h
}

// observe records contact with peer in the routing table.
func (n *Node) observe(peer NodeInfo) {
	if peer.ID == n.self.ID || peer.ID.IsZero() {
		return
	}
	candidate, _ := n.table.Update(peer)
	if candidate == nil {
		return
	}
	// Bucket full: ping the least-recently-seen contact and evict it if
	// dead, per Kademlia. New contact is dropped if the old one is alive.
	if _, err := n.call(*candidate, &Request{Kind: RPCPing, From: n.self}); err != nil {
		n.table.Evict(candidate.ID)
		n.table.Update(peer)
	}
}

// SeedContact inserts peer into the routing table without a liveness
// check: no eviction ping is issued, and when the target bucket is full
// the peer is dropped. Cluster builders that construct warm routing
// tables offline (internal/scale) use this to avoid the O(n·k) RPC
// bootstrap; live traffic then maintains the table as usual. Reports
// whether the peer was inserted or refreshed.
func (n *Node) SeedContact(peer NodeInfo) bool {
	if peer.ID == n.self.ID || peer.ID.IsZero() {
		return false
	}
	_, updated := n.table.Update(peer)
	return updated
}

// call issues one RPC and accounts for routing-table maintenance.
func (n *Node) call(to NodeInfo, req *Request) (*Response, error) {
	return n.callCtx(context.Background(), to, req)
}

// callCtx issues one RPC under ctx. When the transport supports contexts
// the call is canceled/deadlined in flight; otherwise the context is
// checked at the boundary so a canceled caller at least stops issuing new
// RPCs. A context-canceled call does not evict the contact: the peer is
// not known dead, the caller just stopped waiting.
func (n *Node) callCtx(ctx context.Context, to NodeInfo, req *Request) (*Response, error) {
	req.From = n.self
	var resp *Response
	var err error
	if ct, ok := n.transport.(ContextTransport); ok {
		resp, err = ct.CallContext(ctx, to, req)
	} else {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dht: call %s: %w", to.Addr, err)
		}
		resp, err = n.transport.Call(to, req)
	}
	if err != nil {
		if ctx.Err() == nil {
			n.table.Evict(to.ID)
		}
		return nil, err
	}
	return resp, nil
}

// HandleRPC is the server side of the protocol: transports deliver inbound
// requests here.
func (n *Node) HandleRPC(req *Request) *Response {
	n.observe(req.From)
	switch req.Kind {
	case RPCPing:
		return &Response{From: n.self, OK: true}

	case RPCFindNode:
		closest := n.table.Closest(req.Target, n.info.K)
		return &Response{From: n.self, Closest: closest, OK: true}

	case RPCFindValue:
		values := n.store.Get(req.Target, n.info.Clock())
		closest := n.table.Closest(req.Target, n.info.K)
		return &Response{From: n.self, Values: values, Closest: closest, OK: true}

	case RPCStore:
		n.store.Put(req.Target, req.Value)
		n.notifyStore(req.Target)
		return &Response{From: n.self, OK: true}

	case RPCApp:
		n.mu.Lock()
		h := n.handlers[req.App]
		n.mu.Unlock()
		if h == nil {
			return &Response{From: n.self, OK: false}
		}
		reply := h(req.From, req.Data)
		return &Response{From: n.self, Data: reply, OK: true}

	default:
		return &Response{From: n.self, OK: false}
	}
}

// Bootstrap joins the network through seed: it inserts seed into the table
// and performs a lookup of the node's own ID to populate nearby buckets.
func (n *Node) Bootstrap(seed NodeInfo) error {
	if seed.ID == n.self.ID {
		return nil // first node in the network
	}
	resp, err := n.call(seed, &Request{Kind: RPCPing})
	if err != nil {
		return fmt.Errorf("dht: bootstrap ping: %w", err)
	}
	n.observe(resp.From)
	_, _, err = n.Lookup(n.self.ID)
	return err
}

// Lookup performs an iterative FindNode for target, returning up to K
// closest live contacts, nearest first.
func (n *Node) Lookup(target ID) ([]NodeInfo, LookupStats, error) {
	return n.LookupContext(context.Background(), target)
}

// LookupContext is Lookup under a context: cancellation or deadline stops
// the iterative lookup between RPCs (and mid-RPC on context-aware
// transports), returning the context's error.
func (n *Node) LookupContext(ctx context.Context, target ID) ([]NodeInfo, LookupStats, error) {
	infos, _, stats, err := n.iterate(ctx, target, false)
	return infos, stats, err
}

// iterate is the shared iterative-lookup core. With findValue set it issues
// FindValue RPCs and returns early once values are found, merging value
// sets from the closest replica holders it has already contacted.
func (n *Node) iterate(ctx context.Context, target ID, findValue bool) ([]NodeInfo, []StoredValue, LookupStats, error) {
	var stats LookupStats

	shortlist := n.table.Closest(target, n.info.K)
	if len(shortlist) == 0 {
		return nil, nil, stats, ErrNoContacts
	}

	queried := map[ID]bool{n.self.ID: true}
	failed := map[ID]bool{}
	var values []StoredValue
	valueSeen := map[string]bool{}
	holders := 0

	kind := RPCFindNode
	if findValue {
		kind = RPCFindValue
	}

	for {
		// Select the alpha closest not-yet-queried contacts.
		batch := make([]NodeInfo, 0, n.info.Alpha)
		for _, c := range shortlist {
			if len(batch) == n.info.Alpha {
				break
			}
			if !queried[c.ID] && !failed[c.ID] {
				batch = append(batch, c)
			}
		}
		if len(batch) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, stats, err
		}
		stats.Hops++

		improved := false
		for _, c := range batch {
			if err := ctx.Err(); err != nil {
				return nil, nil, stats, err
			}
			queried[c.ID] = true
			req := &Request{Kind: kind, Target: target}
			resp, err := n.callCtx(ctx, c, req)
			stats.Messages++
			stats.Bytes += req.WireSize()
			if err != nil {
				failed[c.ID] = true
				stats.Failed++
				continue
			}
			stats.Messages++
			stats.Bytes += resp.WireSize()
			n.observe(resp.From)

			if findValue && len(resp.Values) > 0 {
				holders++
				for _, v := range resp.Values {
					k := v.Publisher.String() + string(v.Data)
					if !valueSeen[k] {
						valueSeen[k] = true
						values = append(values, v)
					}
				}
			}
			for _, nc := range resp.Closest {
				if nc.ID == n.self.ID {
					continue
				}
				dup := false
				for _, existing := range shortlist {
					if existing.ID == nc.ID {
						dup = true
						break
					}
				}
				if !dup {
					shortlist = append(shortlist, nc)
					improved = true
				}
			}
		}
		shortlist = sortByDistance(shortlist, target)
		if len(shortlist) > n.info.K {
			shortlist = shortlist[:n.info.K]
		}
		// Stop early once we have merged values from enough replicas.
		if findValue && holders >= n.info.Replicate {
			break
		}
		if !improved && allQueried(shortlist, queried, failed) {
			break
		}
	}

	live := shortlist[:0]
	for _, c := range shortlist {
		if !failed[c.ID] {
			live = append(live, c)
		}
	}
	return live, values, stats, nil
}

func allQueried(list []NodeInfo, queried, failed map[ID]bool) bool {
	for _, c := range list {
		if !queried[c.ID] && !failed[c.ID] {
			return false
		}
	}
	return true
}

// Put publishes data under the (namespace, key) pair, storing it on the
// Replicate closest nodes to the key. It returns the traffic cost.
func (n *Node) Put(namespace, key string, data []byte) (LookupStats, error) {
	return n.PutID(NamespacedID(namespace, key), data)
}

// PutContext is Put under a context.
func (n *Node) PutContext(ctx context.Context, namespace, key string, data []byte) (LookupStats, error) {
	return n.PutIDContext(ctx, NamespacedID(namespace, key), data)
}

// PutID publishes data under an explicit key identifier.
func (n *Node) PutID(key ID, data []byte) (LookupStats, error) {
	return n.PutIDContext(context.Background(), key, data)
}

// PutIDContext is PutID under a context: the lookup and the per-replica
// store RPCs are abandoned once ctx is done.
func (n *Node) PutIDContext(ctx context.Context, key ID, data []byte) (LookupStats, error) {
	closest, stats, err := n.LookupContext(ctx, key)
	if err != nil {
		return stats, err
	}
	value := StoredValue{
		Data:      data,
		Publisher: n.self.ID,
		StoredAt:  n.info.Clock(),
		TTL:       n.info.TTL,
	}
	stored := 0
	for _, c := range closest {
		if stored == n.info.Replicate {
			break
		}
		if c.ID == n.self.ID {
			continue
		}
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		req := &Request{Kind: RPCStore, Target: key, Value: value}
		resp, err := n.callCtx(ctx, c, req)
		stats.Messages++
		stats.Bytes += req.WireSize()
		if err != nil {
			stats.Failed++
			continue
		}
		stats.Messages++
		stats.Bytes += resp.WireSize()
		stored++
	}
	// If we are among the closest, hold a replica locally too.
	if n.selfAmongClosest(key, closest) || stored == 0 {
		n.store.Put(key, value)
		n.notifyStore(key)
	}
	if stored == 0 && len(closest) > 0 && closest[0].ID != n.self.ID {
		return stats, fmt.Errorf("dht: put %s: no replica stored", key.Short())
	}
	return stats, nil
}

func (n *Node) selfAmongClosest(key ID, closest []NodeInfo) bool {
	count := 0
	for _, c := range closest {
		if count == n.info.Replicate {
			return false
		}
		if Closer(n.self.ID, c.ID, key) {
			return true
		}
		count++
	}
	return count < n.info.Replicate
}

// Get retrieves all values stored under the (namespace, key) pair.
func (n *Node) Get(namespace, key string) ([]StoredValue, LookupStats, error) {
	return n.GetID(NamespacedID(namespace, key))
}

// GetContext is Get under a context.
func (n *Node) GetContext(ctx context.Context, namespace, key string) ([]StoredValue, LookupStats, error) {
	return n.GetIDContext(ctx, NamespacedID(namespace, key))
}

// GetID retrieves all values under an explicit key identifier, merging the
// value sets found on the replica holders.
func (n *Node) GetID(key ID) ([]StoredValue, LookupStats, error) {
	return n.GetIDContext(context.Background(), key)
}

// GetIDContext is GetID under a context: the iterative value lookup stops
// with the context's error once ctx is done.
func (n *Node) GetIDContext(ctx context.Context, key ID) ([]StoredValue, LookupStats, error) {
	// Check the local store first: we may be a replica holder.
	local := n.store.Get(key, n.info.Clock())

	_, values, stats, err := n.iterate(ctx, key, true)
	if err != nil && (len(local) == 0 || ctx.Err() != nil) {
		return nil, stats, err
	}
	seen := map[string]bool{}
	for _, v := range values {
		seen[v.Publisher.String()+string(v.Data)] = true
	}
	for _, v := range local {
		if !seen[v.Publisher.String()+string(v.Data)] {
			values = append(values, v)
		}
	}
	return values, stats, nil
}

// Owner returns the live node currently responsible for key (the closest).
func (n *Node) Owner(key ID) (NodeInfo, LookupStats, error) {
	return n.OwnerContext(context.Background(), key)
}

// OwnerContext is Owner under a context.
func (n *Node) OwnerContext(ctx context.Context, key ID) (NodeInfo, LookupStats, error) {
	closest, stats, err := n.LookupContext(ctx, key)
	if err != nil {
		return NodeInfo{}, stats, err
	}
	if len(closest) == 0 {
		return NodeInfo{}, stats, ErrNoContacts
	}
	best := closest[0]
	if Closer(n.self.ID, best.ID, key) {
		best = n.self
	}
	return best, stats, nil
}

// Send routes an application message to the node responsible for key and
// returns its reply. This is the primitive PIER uses to ship query plans
// and rehashed tuples between keyword owners.
func (n *Node) Send(key ID, app string, data []byte) ([]byte, LookupStats, error) {
	return n.SendContext(context.Background(), key, app, data)
}

// SendContext is Send under a context: both the owner lookup and the
// application round-trip abort once ctx is done.
func (n *Node) SendContext(ctx context.Context, key ID, app string, data []byte) ([]byte, LookupStats, error) {
	owner, stats, err := n.OwnerContext(ctx, key)
	if err != nil {
		return nil, stats, err
	}
	if owner.ID == n.self.ID {
		n.mu.Lock()
		h := n.handlers[app]
		n.mu.Unlock()
		if h == nil {
			return nil, stats, fmt.Errorf("dht: no app handler %q", app)
		}
		return h(n.self, data), stats, nil
	}
	reply, s2, err := n.SendToContext(ctx, owner, app, data)
	stats.Add(s2)
	return reply, stats, err
}

// SendTo delivers an application message directly to a known node.
func (n *Node) SendTo(to NodeInfo, app string, data []byte) ([]byte, LookupStats, error) {
	return n.SendToContext(context.Background(), to, app, data)
}

// SendToContext is SendTo under a context.
func (n *Node) SendToContext(ctx context.Context, to NodeInfo, app string, data []byte) ([]byte, LookupStats, error) {
	var stats LookupStats
	req := &Request{Kind: RPCApp, App: app, Data: data}
	resp, err := n.callCtx(ctx, to, req)
	stats.Messages++
	stats.Bytes += req.WireSize()
	stats.Hops++
	if err != nil {
		stats.Failed++
		return nil, stats, err
	}
	stats.Messages++
	stats.Bytes += resp.WireSize()
	if !resp.OK {
		return nil, stats, fmt.Errorf("dht: app %q rejected by %s", app, to.ID.Short())
	}
	return resp.Data, stats, nil
}

// LocalGet returns values held in this node's own store, without network.
func (n *Node) LocalGet(key ID) []StoredValue {
	return n.store.Get(key, n.info.Clock())
}

// LocalPut stores a value directly in this node's own store.
func (n *Node) LocalPut(key ID, data []byte) {
	n.store.Put(key, StoredValue{
		Data:      data,
		Publisher: n.self.ID,
		StoredAt:  n.info.Clock(),
		TTL:       n.info.TTL,
	})
	n.notifyStore(key)
}

// SetStoreObserver installs fn to run after every local store mutation
// (nil removes it). fn must be fast and must not call back into the
// node's network operations.
func (n *Node) SetStoreObserver(fn func(key ID)) {
	if fn == nil {
		n.storeObs.Store(nil)
		return
	}
	n.storeObs.Store(&fn)
}

func (n *Node) notifyStore(key ID) {
	if fn := n.storeObs.Load(); fn != nil {
		(*fn)(key)
	}
}

// HandleApp invokes this node's own handler for app, exactly as if the
// message had arrived over the network from itself. Callers that resolve
// holders themselves (replica fan-out reads) use it when the local node
// is the chosen holder.
func (n *Node) HandleApp(app string, data []byte) ([]byte, error) {
	n.mu.Lock()
	h := n.handlers[app]
	n.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("dht: no app handler %q", app)
	}
	return h(n.self, data), nil
}

// Republish re-stores every locally held value, refreshing replicas after
// churn. It returns the number of values republished. Keys are processed
// in ID order so the RPC sequence is reproducible run-over-run.
func (n *Node) Republish() (int, LookupStats) {
	keys := n.store.Keys()
	sort.Slice(keys, func(i, j int) bool { return Less(keys[i], keys[j]) })
	type kv struct {
		key ID
		val StoredValue
	}
	var all []kv
	now := n.info.Clock()
	for _, k := range keys {
		for _, v := range n.store.Get(k, now) {
			if v.Publisher == n.self.ID {
				all = append(all, kv{k, v})
			}
		}
	}

	var stats LookupStats
	for _, e := range all {
		s, err := n.PutID(e.key, e.val.Data)
		stats.Add(s)
		if err != nil {
			continue
		}
	}
	return len(all), stats
}
