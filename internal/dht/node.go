package dht

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"piersearch/internal/dht/routing"
	"piersearch/internal/telemetry"
)

// Config holds node parameters. The zero value is usable: Normalize fills
// in Kademlia's customary defaults.
type Config struct {
	K         int           // bucket size and lookup result width (default 20)
	Alpha     int           // lookup probe parallelism (default 3)
	Replicate int           // number of nodes a value is stored on (default 3)
	TTL       time.Duration // default value lifetime; 0 means no expiry
	Clock     func() time.Duration

	// RefreshInterval is how long a bucket may sit idle before the
	// maintenance loop refreshes it with a lookup in its range (default
	// 15m). RepublishInterval is the provider-record replication period:
	// a held value whose StoredAt is older than half this interval is
	// re-pushed to the Replicate closest contacts (default 30m).
	RefreshInterval   time.Duration
	RepublishInterval time.Duration

	// Go, Sleep and LookupWait abstract concurrency and blocking so the
	// same node code runs over real goroutines and over the virtual-time
	// scheduler in internal/scale, which requires that tasks block only
	// through its clock. Defaults: go fn(), time.Sleep, and a blocking
	// select inside the lookup engine.
	Go         func(fn func())
	Sleep      func(d time.Duration)
	LookupWait func(ctx context.Context, wake <-chan struct{})

	// NewStorage constructs the node's local value store. nil selects the
	// built-in in-memory sharded map (NewStore). Cluster builders invoke
	// the factory once per node, so one Config can fan a per-node disk
	// store (store.DiskFactory) across a whole cluster. NewNode panics if
	// the factory fails; callers that must handle storage-open errors
	// should open the store first and return the instance from the
	// factory, or build through NewCluster/NewRealTimeCluster, which
	// surface factory errors.
	NewStorage func(self NodeInfo) (Storage, error)

	// Logf, when set, receives operational log lines (janitor sweep
	// reclaim counts). nil silences them. Retained as a source-compatible
	// adapter: Normalize wraps it into Logger when Logger is unset.
	Logf func(format string, args ...any)

	// Logger receives structured operational events. When nil, Normalize
	// derives one from Logf (or discards everything if both are unset).
	Logger *telemetry.Logger

	// Tracer, when set, records this node's side of distributed query
	// traces: one span per RPC issued and served, per-hop lookup probe
	// spans, and the spans piggy-backed on responses it absorbs. Nil
	// disables tracing at zero cost.
	Tracer *telemetry.Tracer

	// Metrics, when set, registers the node's counters and gauges
	// (dht.rpc.in.*/out.*, table occupancy, eviction/refresh/republish
	// counts). Nil disables metric collection at zero cost.
	Metrics *telemetry.Registry
}

// Normalize fills unset fields with defaults and returns the config.
func (c Config) Normalize() Config {
	if c.K <= 0 {
		c.K = 20
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.Replicate <= 0 {
		c.Replicate = 3
	}
	if c.Clock == nil {
		start := time.Now()
		c.Clock = func() time.Duration { return time.Since(start) }
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = 15 * time.Minute
	}
	if c.RepublishInterval <= 0 {
		c.RepublishInterval = 30 * time.Minute
	}
	if c.Go == nil {
		c.Go = func(fn func()) { go fn() }
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Logger == nil && c.Logf != nil {
		c.Logger = telemetry.NewLogger(telemetry.LogfSink(c.Logf), telemetry.LevelDebug)
	}
	return c
}

// AppHandler processes an application message routed to this node and
// returns an optional reply payload.
type AppHandler func(from NodeInfo, data []byte) []byte

// LookupStats describes the traffic cost of one DHT operation.
// Hops counts sequential probe depth, the quantity that multiplies RTT
// when converting to latency (O(log N) in Kademlia).
type LookupStats struct {
	Messages int
	Bytes    int
	Hops     int
	Failed   int // contacts that did not respond
}

// Add merges other into s. Callers fanning out lookups concurrently must
// serialise Add calls themselves.
func (s *LookupStats) Add(o LookupStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Hops += o.Hops
	s.Failed += o.Failed
}

// ErrNoContacts is returned when a node has an empty routing table and
// cannot perform lookups.
var ErrNoContacts = errors.New("dht: routing table empty")

// maxRefreshPerTick bounds how many stale buckets one maintenance tick
// refreshes, spreading lookup traffic instead of bursting it.
const maxRefreshPerTick = 2

// Node is one DHT participant. All exported methods are safe for concurrent
// use: the routing table and store carry their own locks, outbound RPCs are
// issued without holding any node lock, and the concurrent PIER pipeline
// drives many Put/Get/Send operations against one node at once.
type Node struct {
	info      Config
	self      NodeInfo
	transport Transport
	table     *Table
	store     Storage

	mu       sync.Mutex // guards handlers
	handlers map[string]AppHandler

	// rng drives refresh-target selection and maintenance jitter. Seeded
	// from the node's own ID so virtual-time replays are reproducible.
	rngMu sync.Mutex
	rng   *mrand.Rand

	// Maintenance state: maintOn gates join-handoff (only a node running
	// the replication loops volunteers data to new contacts), lastHandoff
	// rate-limits handoffs per peer.
	maintOn     atomic.Bool
	handoffMu   sync.Mutex
	lastHandoff map[ID]time.Duration

	providesReceived  atomic.Int64
	handoffsSent      atomic.Int64
	republishedValues atomic.Int64
	refreshedBuckets  atomic.Int64

	// storeObs, when set, runs after every local store mutation — both
	// this node's own puts and inbound replica STOREs. The hot-key cache
	// tier hangs its invalidation-on-publish off this hook: the STORE RPC
	// a publisher already sends doubles as the purge hint at every
	// replica, with no extra wire traffic.
	storeObs atomic.Pointer[func(ID)]

	closeOnce sync.Once
	closeErr  error

	janitorSweeps    atomic.Int64
	janitorReclaimed atomic.Int64

	// tracer records this node's side of distributed traces. Held in an
	// atomic pointer so cluster builders can attach tracers after
	// construction (SetTracer) without racing in-flight RPCs. Nil means
	// tracing off.
	tracer atomic.Pointer[telemetry.Tracer]

	// met holds the node's pre-resolved metric instruments; the zero
	// value (registry absent) is all-nil counters, which no-op.
	met nodeMetrics
}

// NewNode creates a node with the given identity, transport and config.
// It panics if cfg.NewStorage fails; see the Config.NewStorage docs.
func NewNode(self NodeInfo, transport Transport, cfg Config) *Node {
	cfg = cfg.Normalize()
	var store Storage
	if cfg.NewStorage != nil {
		st, err := cfg.NewStorage(self)
		if err != nil {
			panic(fmt.Sprintf("dht: NewStorage for %s: %v", self.Addr, err))
		}
		store = st
	} else {
		store = NewStore()
	}
	table := NewTable(self.ID, cfg.K)
	table.SetClock(cfg.Clock)
	n := &Node{
		info:        cfg,
		self:        self,
		transport:   transport,
		table:       table,
		store:       store,
		handlers:    make(map[string]AppHandler),
		rng:         mrand.New(mrand.NewSource(int64(binary.BigEndian.Uint64(self.ID[:8])))),
		lastHandoff: make(map[ID]time.Duration),
	}
	if cfg.Tracer != nil {
		n.tracer.Store(cfg.Tracer)
	}
	n.registerMetrics(cfg.Metrics)
	return n
}

// SetTracer attaches (or, with nil, detaches) the tracer recording this
// node's spans. Safe to call while RPCs are in flight.
func (n *Node) SetTracer(t *telemetry.Tracer) { n.tracer.Store(t) }

// Tracer returns the node's tracer, nil when tracing is off.
func (n *Node) Tracer() *telemetry.Tracer { return n.tracer.Load() }

// Close releases the node's local storage: for a disk-backed store this
// flushes the write-ahead log, fsyncs and releases the lock file. It is
// idempotent and returns the first close error. Callers must stop the
// janitor, the maintenance loops and any transport serving this node first.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { n.closeErr = n.store.Close() })
	return n.closeErr
}

// Storage returns the node's local value store.
func (n *Node) Storage() Storage { return n.store }

// Info returns the node's identity.
func (n *Node) Info() NodeInfo { return n.self }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.info }

// TableLen returns the number of routing-table contacts.
func (n *Node) TableLen() int { return n.table.Len() }

// StoreStats returns (keys, values, payload bytes) held locally.
func (n *Node) StoreStats() (keys, values, bytes int) {
	return n.store.Len(), n.store.ValueCount(), n.store.Bytes()
}

// ExpireNow sweeps the local store for TTL-expired values immediately and
// returns how many were removed. Reclaimed entries accumulate into
// JanitorStats whether the sweep was manual or ticker-driven.
func (n *Node) ExpireNow() int {
	removed := n.store.Expire(n.info.Clock())
	if removed > 0 {
		n.janitorReclaimed.Add(int64(removed))
	}
	return removed
}

// JanitorStats are the lifetime soft-state reclamation counters of one
// node: how many janitor sweeps ran and how many TTL-expired entries were
// reclaimed (by the ticker and by explicit ExpireNow calls).
type JanitorStats struct {
	Sweeps    int64
	Reclaimed int64
}

// JanitorStats returns the node's reclamation counters.
func (n *Node) JanitorStats() JanitorStats {
	return JanitorStats{
		Sweeps:    n.janitorSweeps.Load(),
		Reclaimed: n.janitorReclaimed.Load(),
	}
}

// StartJanitor launches the background soft-state janitor: a ticker that
// sweeps TTL-expired values out of the local store every interval, so
// long-running deployments actually reclaim dead postings instead of only
// filtering them lazily on Get. interval <= 0 defaults to one minute. The
// reclaimed-entry count of every sweep accumulates into JanitorStats and,
// when Config.Logf is set, nonzero sweeps are logged. The returned stop
// function is idempotent and terminates the janitor.
func (n *Node) StartJanitor(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				n.janitorSweeps.Add(1)
				if removed := n.ExpireNow(); removed > 0 {
					n.info.Logger.Info("dht: janitor reclaimed expired entries",
						"removed", removed, "total", n.janitorReclaimed.Load())
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// RegisterApp installs h as the handler for application messages with the
// given dispatch kind.
func (n *Node) RegisterApp(kind string, h AppHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[kind] = h
}

// observe records contact with peer in the routing table.
func (n *Node) observe(peer NodeInfo) {
	if peer.ID == n.self.ID || peer.ID.IsZero() {
		return
	}
	candidate, outcome := n.table.Observe(peer)
	if outcome == routing.OutcomeInserted {
		// A brand-new contact may be a joiner missing data it is now
		// responsible for; hand replicas over if replication is running.
		n.maybeHandoff(peer)
		return
	}
	if candidate == nil {
		return
	}
	// Bucket full: ping the least-recently-seen contact and evict it if
	// dead, per Kademlia. The bucket's replacement cache then promotes the
	// freshest recently seen contact (usually peer itself) into the slot.
	if _, err := n.call(*candidate, &Request{Kind: RPCPing, From: n.self}); err != nil {
		n.table.Evict(candidate.ID)
		n.met.evictions.Inc()
		n.table.Update(peer)
	}
}

// SeedContact inserts peer into the routing table without a liveness
// check: no eviction ping is issued, and when the target bucket is full
// the peer is dropped. Cluster builders that construct warm routing
// tables offline (internal/scale) use this to avoid the O(n·k) RPC
// bootstrap; live traffic then maintains the table as usual. Reports
// whether the peer was inserted or refreshed.
func (n *Node) SeedContact(peer NodeInfo) bool {
	if peer.ID == n.self.ID || peer.ID.IsZero() {
		return false
	}
	_, updated := n.table.Update(peer)
	return updated
}

// call issues one RPC and accounts for routing-table maintenance.
func (n *Node) call(to NodeInfo, req *Request) (*Response, error) {
	return n.callCtx(context.Background(), to, req)
}

// callCtx issues one RPC under ctx. When the transport supports contexts
// the call is canceled/deadlined in flight; otherwise the context is
// checked at the boundary so a canceled caller at least stops issuing new
// RPCs. A context-canceled call does not evict the contact: the peer is
// not known dead, the caller just stopped waiting.
func (n *Node) callCtx(ctx context.Context, to NodeInfo, req *Request) (*Response, error) {
	req.From = n.self
	// Trace: stamp the outbound envelope with a fresh span so the remote
	// handler's span parents under it. StartSpan is a no-op returning a
	// nil span when ctx carries no trace (the common, untraced path).
	_, sp := telemetry.StartSpan(ctx, "dht.rpc")
	if sp != nil {
		sp.SetAttr("kind", req.Kind.String())
		sp.SetAttr("to", to.Addr)
		req.TraceID, req.SpanID = sp.Trace(), sp.ID()
	}
	n.met.rpcOut[req.Kind&rpcKindMask].Inc()
	var resp *Response
	var err error
	if ct, ok := n.transport.(ContextTransport); ok {
		resp, err = ct.CallContext(ctx, to, req)
	} else {
		if err := ctx.Err(); err != nil {
			sp.FinishErr(err)
			return nil, fmt.Errorf("dht: call %s: %w", to.Addr, err)
		}
		resp, err = n.transport.Call(to, req)
	}
	if err != nil {
		n.met.rpcOutFail.Inc()
		sp.FinishErr(err)
		if ctx.Err() == nil {
			n.table.Evict(to.ID)
			n.met.evictions.Inc()
		}
		return nil, err
	}
	// Absorb the handler-side spans piggy-backed on the response into
	// our own ring so the whole trace assembles at the query's origin.
	if sp != nil {
		sp.Tracer().Absorb(resp.Spans)
	}
	sp.Finish()
	return resp, nil
}

// HandleRPC is the server side of the protocol: transports deliver inbound
// requests here. Traced requests get a handler span, and every span this
// node's ring holds for the request's trace rides back on the response so
// the trace assembles at the query's origin.
func (n *Node) HandleRPC(req *Request) *Response {
	n.met.rpcIn[req.Kind&rpcKindMask].Inc()
	if req.TraceID == 0 {
		return n.handleRPC(req)
	}
	tr := n.tracer.Load()
	if tr == nil {
		return n.handleRPC(req)
	}
	sp := tr.StartHandler(req.TraceID, req.SpanID, "serve."+req.Kind.String())
	resp := n.handleRPC(req)
	sp.Finish()
	resp.Spans = tr.TraceSpans(req.TraceID)
	return resp
}

func (n *Node) handleRPC(req *Request) *Response {
	n.observe(req.From)
	switch req.Kind {
	case RPCPing:
		return &Response{From: n.self, OK: true}

	case RPCFindNode:
		closest := n.table.Closest(req.Target, n.info.K)
		return &Response{From: n.self, Closest: closest, OK: true}

	case RPCFindValue:
		values := n.store.Get(req.Target, n.info.Clock())
		closest := n.table.Closest(req.Target, n.info.K)
		return &Response{From: n.self, Values: values, Closest: closest, OK: true}

	case RPCStore:
		n.store.Put(req.Target, req.Value)
		n.notifyStore(req.Target)
		return &Response{From: n.self, OK: true}

	case RPCProvide:
		now := n.info.Clock()
		for _, rec := range req.Records {
			if rec.TTL < 0 {
				continue
			}
			// TTL is remaining lifetime: stamping our own StoredAt keeps
			// the absolute expiry aligned across holders, and the fresh
			// StoredAt suppresses our own republish of this value for the
			// next half-interval — one holder per period refreshes the
			// whole replica set.
			n.store.Put(rec.Key, StoredValue{
				Data:      rec.Data,
				Publisher: rec.Publisher,
				StoredAt:  now,
				TTL:       rec.TTL,
			})
			n.notifyStore(rec.Key)
		}
		n.providesReceived.Add(int64(len(req.Records)))
		return &Response{From: n.self, OK: true}

	case RPCApp:
		n.mu.Lock()
		h := n.handlers[req.App]
		n.mu.Unlock()
		if h == nil {
			return &Response{From: n.self, OK: false}
		}
		reply := h(req.From, req.Data)
		return &Response{From: n.self, Data: reply, OK: true}

	default:
		return &Response{From: n.self, OK: false}
	}
}

// Bootstrap joins the network through seed: it inserts seed into the table
// and performs a lookup of the node's own ID to populate nearby buckets.
func (n *Node) Bootstrap(seed NodeInfo) error {
	if seed.ID == n.self.ID {
		return nil // first node in the network
	}
	return n.JoinNetwork([]NodeInfo{seed})
}

// JoinNetwork joins through any reachable seed: each is pinged (a seed
// given by address alone identifies itself in the reply), then an
// iterative lookup of the node's own ID populates the buckets nearest to
// it — the contacts that matter most for the keys it will be asked to
// hold. With no foreign seed at all the node is the first in the network
// and joins trivially; with seeds that are all unreachable the join fails.
func (n *Node) JoinNetwork(seeds []NodeInfo) error {
	var lastErr error
	foreign, joined := 0, 0
	for _, s := range seeds {
		if s.ID == n.self.ID || s.Addr == n.self.Addr {
			continue
		}
		foreign++
		resp, err := n.call(s, &Request{Kind: RPCPing})
		if err != nil {
			lastErr = err
			continue
		}
		n.observe(resp.From)
		joined++
	}
	if foreign == 0 {
		return nil
	}
	if joined == 0 {
		return fmt.Errorf("dht: join: no seed reachable: %w", lastErr)
	}
	if _, _, err := n.Lookup(n.self.ID); err != nil {
		return fmt.Errorf("dht: join self-lookup: %w", err)
	}
	return nil
}

// Lookup performs an iterative FindNode for target, returning up to K
// closest live contacts, nearest first.
func (n *Node) Lookup(target ID) ([]NodeInfo, LookupStats, error) {
	return n.LookupContext(context.Background(), target)
}

// LookupContext is Lookup under a context: cancellation or deadline stops
// the iterative lookup between RPCs (and mid-RPC on context-aware
// transports), returning the context's error.
func (n *Node) LookupContext(ctx context.Context, target ID) ([]NodeInfo, LookupStats, error) {
	infos, _, stats, err := n.iterate(ctx, target, false)
	return infos, stats, err
}

// iterate is the shared iterative-lookup core: it binds the transport-free
// α-parallel engine in package routing to this node's RPCs. With findValue
// set it issues FindValue RPCs and stops early once Replicate holders have
// answered, merging their value sets.
func (n *Node) iterate(ctx context.Context, target ID, findValue bool) ([]NodeInfo, []StoredValue, LookupStats, error) {
	var stats LookupStats

	seed := n.table.Closest(target, n.info.K)
	if len(seed) == 0 {
		return nil, nil, stats, ErrNoContacts
	}

	kind := RPCFindNode
	if findValue {
		kind = RPCFindValue
	}

	var mu sync.Mutex // guards stats, values, valueSeen, holders
	var values []StoredValue
	valueSeen := map[string]bool{}
	holders := 0

	probe := func(ctx context.Context, to NodeInfo, depth int) (routing.ProbeResult, error) {
		// Per-hop probe span: records which contact was probed at which
		// iteration depth; the RPC span from callCtx nests under it.
		ctx, psp := telemetry.StartSpan(ctx, "lookup.probe")
		if psp != nil {
			psp.SetAttr("to", to.Addr)
			psp.SetAttr("depth", strconv.Itoa(depth))
		}
		req := &Request{Kind: kind, Target: target}
		resp, err := n.callCtx(ctx, to, req)
		psp.FinishErr(err)
		mu.Lock()
		stats.Messages++
		stats.Bytes += req.WireSize()
		if err != nil {
			stats.Failed++
			mu.Unlock()
			return routing.ProbeResult{}, err
		}
		stats.Messages++
		stats.Bytes += resp.WireSize()
		mu.Unlock()
		n.observe(resp.From)

		res := routing.ProbeResult{From: resp.From, Closer: resp.Closest}
		if findValue && len(resp.Values) > 0 {
			mu.Lock()
			holders++
			for _, v := range resp.Values {
				k := v.Publisher.String() + string(v.Data)
				if !valueSeen[k] {
					valueSeen[k] = true
					values = append(values, v)
				}
			}
			// Enough replicas answered: converging on the exact k closest
			// would add hops without adding data.
			if holders >= n.info.Replicate {
				res.Stop = true
			}
			mu.Unlock()
		}
		return res, nil
	}

	res := routing.Run(ctx, routing.LookupConfig{
		Target: target,
		Self:   n.self.ID,
		K:      n.info.K,
		Alpha:  n.info.Alpha,
		Seed:   seed,
		Probe:  probe,
		Spawn:  n.info.Go,
		Wait:   n.info.LookupWait,
	})
	n.table.NoteLookup(target)
	stats.Hops = res.Hops
	if err := ctx.Err(); err != nil {
		return nil, nil, stats, err
	}
	return res.Closest, values, stats, nil
}

// Put publishes data under the (namespace, key) pair, storing it on the
// Replicate closest nodes to the key. It returns the traffic cost.
func (n *Node) Put(namespace, key string, data []byte) (LookupStats, error) {
	return n.PutID(NamespacedID(namespace, key), data)
}

// PutContext is Put under a context.
func (n *Node) PutContext(ctx context.Context, namespace, key string, data []byte) (LookupStats, error) {
	return n.PutIDContext(ctx, NamespacedID(namespace, key), data)
}

// PutID publishes data under an explicit key identifier.
func (n *Node) PutID(key ID, data []byte) (LookupStats, error) {
	return n.PutIDContext(context.Background(), key, data)
}

// PutIDContext is PutID under a context: the lookup and the per-replica
// store RPCs are abandoned once ctx is done.
func (n *Node) PutIDContext(ctx context.Context, key ID, data []byte) (LookupStats, error) {
	closest, stats, err := n.LookupContext(ctx, key)
	if err != nil {
		return stats, err
	}
	value := StoredValue{
		Data:      data,
		Publisher: n.self.ID,
		StoredAt:  n.info.Clock(),
		TTL:       n.info.TTL,
	}
	stored := 0
	for _, c := range closest {
		if stored == n.info.Replicate {
			break
		}
		if c.ID == n.self.ID {
			continue
		}
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		req := &Request{Kind: RPCStore, Target: key, Value: value}
		resp, err := n.callCtx(ctx, c, req)
		stats.Messages++
		stats.Bytes += req.WireSize()
		if err != nil {
			stats.Failed++
			continue
		}
		stats.Messages++
		stats.Bytes += resp.WireSize()
		stored++
	}
	// If we are among the closest, hold a replica locally too.
	if n.selfAmongClosest(key, closest) || stored == 0 {
		n.store.Put(key, value)
		n.notifyStore(key)
	}
	if stored == 0 && len(closest) > 0 && closest[0].ID != n.self.ID {
		return stats, fmt.Errorf("dht: put %s: no replica stored", key.Short())
	}
	return stats, nil
}

func (n *Node) selfAmongClosest(key ID, closest []NodeInfo) bool {
	count := 0
	for _, c := range closest {
		if count == n.info.Replicate {
			return false
		}
		if Closer(n.self.ID, c.ID, key) {
			return true
		}
		count++
	}
	return count < n.info.Replicate
}

// Get retrieves all values stored under the (namespace, key) pair.
func (n *Node) Get(namespace, key string) ([]StoredValue, LookupStats, error) {
	return n.GetID(NamespacedID(namespace, key))
}

// GetContext is Get under a context.
func (n *Node) GetContext(ctx context.Context, namespace, key string) ([]StoredValue, LookupStats, error) {
	return n.GetIDContext(ctx, NamespacedID(namespace, key))
}

// GetID retrieves all values under an explicit key identifier, merging the
// value sets found on the replica holders.
func (n *Node) GetID(key ID) ([]StoredValue, LookupStats, error) {
	return n.GetIDContext(context.Background(), key)
}

// GetIDContext is GetID under a context: the iterative value lookup stops
// with the context's error once ctx is done.
func (n *Node) GetIDContext(ctx context.Context, key ID) ([]StoredValue, LookupStats, error) {
	// Check the local store first: we may be a replica holder.
	local := n.store.Get(key, n.info.Clock())

	_, values, stats, err := n.iterate(ctx, key, true)
	if err != nil && (len(local) == 0 || ctx.Err() != nil) {
		return nil, stats, err
	}
	seen := map[string]bool{}
	for _, v := range values {
		seen[v.Publisher.String()+string(v.Data)] = true
	}
	for _, v := range local {
		if !seen[v.Publisher.String()+string(v.Data)] {
			values = append(values, v)
		}
	}
	return values, stats, nil
}

// Owner returns the live node currently responsible for key (the closest).
func (n *Node) Owner(key ID) (NodeInfo, LookupStats, error) {
	return n.OwnerContext(context.Background(), key)
}

// OwnerContext is Owner under a context.
func (n *Node) OwnerContext(ctx context.Context, key ID) (NodeInfo, LookupStats, error) {
	closest, stats, err := n.LookupContext(ctx, key)
	if err != nil {
		return NodeInfo{}, stats, err
	}
	if len(closest) == 0 {
		return NodeInfo{}, stats, ErrNoContacts
	}
	best := closest[0]
	if Closer(n.self.ID, best.ID, key) {
		best = n.self
	}
	return best, stats, nil
}

// Send routes an application message to the node responsible for key and
// returns its reply. This is the primitive PIER uses to ship query plans
// and rehashed tuples between keyword owners.
func (n *Node) Send(key ID, app string, data []byte) ([]byte, LookupStats, error) {
	return n.SendContext(context.Background(), key, app, data)
}

// SendContext is Send under a context: both the owner lookup and the
// application round-trip abort once ctx is done.
func (n *Node) SendContext(ctx context.Context, key ID, app string, data []byte) ([]byte, LookupStats, error) {
	owner, stats, err := n.OwnerContext(ctx, key)
	if err != nil {
		return nil, stats, err
	}
	if owner.ID == n.self.ID {
		n.mu.Lock()
		h := n.handlers[app]
		n.mu.Unlock()
		if h == nil {
			return nil, stats, fmt.Errorf("dht: no app handler %q", app)
		}
		return h(n.self, data), stats, nil
	}
	reply, s2, err := n.SendToContext(ctx, owner, app, data)
	stats.Add(s2)
	return reply, stats, err
}

// SendTo delivers an application message directly to a known node.
func (n *Node) SendTo(to NodeInfo, app string, data []byte) ([]byte, LookupStats, error) {
	return n.SendToContext(context.Background(), to, app, data)
}

// SendToContext is SendTo under a context.
func (n *Node) SendToContext(ctx context.Context, to NodeInfo, app string, data []byte) ([]byte, LookupStats, error) {
	var stats LookupStats
	req := &Request{Kind: RPCApp, App: app, Data: data}
	resp, err := n.callCtx(ctx, to, req)
	stats.Messages++
	stats.Bytes += req.WireSize()
	stats.Hops++
	if err != nil {
		stats.Failed++
		return nil, stats, err
	}
	stats.Messages++
	stats.Bytes += resp.WireSize()
	if !resp.OK {
		return nil, stats, fmt.Errorf("dht: app %q rejected by %s", app, to.ID.Short())
	}
	return resp.Data, stats, nil
}

// LocalGet returns values held in this node's own store, without network.
func (n *Node) LocalGet(key ID) []StoredValue {
	return n.store.Get(key, n.info.Clock())
}

// LocalPut stores a value directly in this node's own store.
func (n *Node) LocalPut(key ID, data []byte) {
	n.store.Put(key, StoredValue{
		Data:      data,
		Publisher: n.self.ID,
		StoredAt:  n.info.Clock(),
		TTL:       n.info.TTL,
	})
	n.notifyStore(key)
}

// SetStoreObserver installs fn to run after every local store mutation
// (nil removes it). fn must be fast and must not call back into the
// node's network operations.
func (n *Node) SetStoreObserver(fn func(key ID)) {
	if fn == nil {
		n.storeObs.Store(nil)
		return
	}
	n.storeObs.Store(&fn)
}

func (n *Node) notifyStore(key ID) {
	if fn := n.storeObs.Load(); fn != nil {
		(*fn)(key)
	}
}

// HandleApp invokes this node's own handler for app, exactly as if the
// message had arrived over the network from itself. Callers that resolve
// holders themselves (replica fan-out reads) use it when the local node
// is the chosen holder.
func (n *Node) HandleApp(app string, data []byte) ([]byte, error) {
	n.mu.Lock()
	h := n.handlers[app]
	n.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("dht: no app handler %q", app)
	}
	return h(n.self, data), nil
}

// Republish re-stores every locally held value this node published,
// refreshing replicas after churn through full iterative lookups. It
// returns the number of values republished. Keys are processed in ID order
// so the RPC sequence is reproducible run-over-run. The cheaper
// table-local RepublishTick is what the maintenance loop runs; Republish
// remains for explicit full repair.
func (n *Node) Republish() (int, LookupStats) {
	keys := n.store.Keys()
	sort.Slice(keys, func(i, j int) bool { return Less(keys[i], keys[j]) })
	type kv struct {
		key ID
		val StoredValue
	}
	var all []kv
	now := n.info.Clock()
	for _, k := range keys {
		for _, v := range n.store.Get(k, now) {
			if v.Publisher == n.self.ID {
				all = append(all, kv{k, v})
			}
		}
	}

	var stats LookupStats
	for _, e := range all {
		s, err := n.PutID(e.key, e.val.Data)
		stats.Add(s)
		if err != nil {
			continue
		}
	}
	return len(all), stats
}

// remainingTTL converts a stored value's (StoredAt, TTL) pair to the
// lifetime it has left at now. ok is false once the value has expired.
func remainingTTL(v StoredValue, now time.Duration) (rem time.Duration, ok bool) {
	if v.TTL <= 0 {
		return 0, true
	}
	rem = v.TTL - (now - v.StoredAt)
	return rem, rem > 0
}

// RepublishTick pushes every locally held value that is due — StoredAt
// older than half the republish interval — to the Replicate closest
// contacts in the routing table, batched into one Provide RPC per
// destination. Unlike Republish it issues no lookups: the table's own view
// of the neighborhood is authoritative enough for periodic repair, and the
// receiver-side StoredAt rebase means one holder per period refreshes the
// whole replica set. Keys go in ID order and destinations in first-use
// order, keeping virtual-time replays byte-identical. Returns how many
// values were pushed.
func (n *Node) RepublishTick() (int, LookupStats) {
	var stats LookupStats
	now := n.info.Clock()
	due := n.info.RepublishInterval / 2

	keys := n.store.Keys()
	sort.Slice(keys, func(i, j int) bool { return Less(keys[i], keys[j]) })

	type destBatch struct {
		to   NodeInfo
		recs []ProviderRecord
	}
	batches := map[string]*destBatch{}
	var order []string
	values := 0
	for _, k := range keys {
		for _, v := range n.store.Get(k, now) {
			if now-v.StoredAt < due {
				continue
			}
			rem, ok := remainingTTL(v, now)
			if !ok {
				continue
			}
			targets := n.table.Closest(k, n.info.Replicate)
			if len(targets) == 0 {
				continue
			}
			values++
			rec := ProviderRecord{Key: k, Data: v.Data, Publisher: v.Publisher, TTL: rem}
			for _, t := range targets {
				b := batches[t.Addr]
				if b == nil {
					b = &destBatch{to: t}
					batches[t.Addr] = b
					order = append(order, t.Addr)
				}
				b.recs = append(b.recs, rec)
			}
			// Rebase our own copy too, so the value is due again only
			// after a full half-interval.
			n.store.Put(k, StoredValue{Data: v.Data, Publisher: v.Publisher, StoredAt: now, TTL: rem})
		}
	}

	for _, addr := range order {
		b := batches[addr]
		req := &Request{Kind: RPCProvide, Records: b.recs}
		resp, err := n.call(b.to, req)
		stats.Messages++
		stats.Bytes += req.WireSize()
		if err != nil {
			stats.Failed++
			continue
		}
		stats.Messages++
		stats.Bytes += resp.WireSize()
	}
	if values > 0 {
		n.republishedValues.Add(int64(values))
	}
	return values, stats
}

// RefreshTick looks up a random target inside each of up to max stale
// buckets — buckets with no activity for RefreshInterval — repopulating
// regions of the ID space the node has not touched organically. Returns
// how many buckets were refreshed.
func (n *Node) RefreshTick(max int) (int, LookupStats) {
	if max <= 0 {
		max = maxRefreshPerTick
	}
	var stats LookupStats
	stale := n.table.StaleBuckets(n.info.RefreshInterval, max)
	for _, b := range stale {
		target := n.refreshTarget(b)
		if _, s, err := n.Lookup(target); err == nil {
			stats.Add(s)
		}
		n.table.NoteRefreshed(b)
		n.refreshedBuckets.Add(1)
	}
	return len(stale), stats
}

func (n *Node) refreshTarget(bucket int) ID {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.table.RefreshTarget(bucket, n.rng)
}

// jitter returns a uniform duration in [0, d), from the node's own seeded
// rng so replays stay deterministic while nodes desynchronize.
func (n *Node) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return time.Duration(n.rng.Int63n(int64(d)))
}

// StartMaintenance launches the routing and replication maintenance loops:
// bucket refresh every RefreshInterval and provider-record republish every
// half RepublishInterval, each with a jittered start so a cluster's nodes
// spread their repair traffic instead of thundering together. While
// maintenance runs, newly discovered contacts also receive handoffs of
// values they are now among the closest holders for (join repair). The
// loops run through Config.Go/Sleep, so under the virtual-time scheduler
// they are ordinary clock tasks. The returned stop is idempotent; after it
// is called each loop exits at its next wakeup.
func (n *Node) StartMaintenance() (stop func()) {
	if n.maintOn.Swap(true) {
		return func() {}
	}
	var stopped atomic.Bool
	refreshEvery := n.info.RefreshInterval
	republishEvery := n.info.RepublishInterval / 2

	n.info.Go(func() {
		n.info.Sleep(n.jitter(refreshEvery))
		for !stopped.Load() {
			n.RefreshTick(maxRefreshPerTick)
			n.info.Sleep(refreshEvery)
		}
	})
	n.info.Go(func() {
		n.info.Sleep(n.jitter(republishEvery))
		for !stopped.Load() {
			n.RepublishTick()
			n.info.Sleep(republishEvery)
		}
	})
	return func() {
		if !stopped.Swap(true) {
			n.maintOn.Store(false)
		}
	}
}

// maybeHandoff hands local values over to a newly discovered contact, at
// most once per peer per half republish interval.
func (n *Node) maybeHandoff(peer NodeInfo) {
	if !n.maintOn.Load() {
		return
	}
	now := n.info.Clock()
	gap := n.info.RepublishInterval / 2
	n.handoffMu.Lock()
	if last, seen := n.lastHandoff[peer.ID]; seen && now-last < gap {
		n.handoffMu.Unlock()
		return
	}
	n.lastHandoff[peer.ID] = now
	n.handoffMu.Unlock()
	n.info.Go(func() { n.handoffTo(peer) })
}

// handoffTo pushes to peer every local value it is now among the Replicate
// closest known contacts for, in one batched Provide RPC.
func (n *Node) handoffTo(peer NodeInfo) {
	now := n.info.Clock()
	keys := n.store.Keys()
	sort.Slice(keys, func(i, j int) bool { return Less(keys[i], keys[j]) })
	var recs []ProviderRecord
	for _, k := range keys {
		responsible := false
		for _, c := range n.table.Closest(k, n.info.Replicate) {
			if c.ID == peer.ID {
				responsible = true
				break
			}
		}
		if !responsible {
			continue
		}
		for _, v := range n.store.Get(k, now) {
			rem, ok := remainingTTL(v, now)
			if !ok {
				continue
			}
			recs = append(recs, ProviderRecord{Key: k, Data: v.Data, Publisher: v.Publisher, TTL: rem})
		}
	}
	if len(recs) == 0 {
		return
	}
	if _, err := n.call(peer, &Request{Kind: RPCProvide, Records: recs}); err == nil {
		n.handoffsSent.Add(1)
	}
}

// RoutingStats is a point-in-time snapshot of the node's routing table
// plus its lifetime maintenance counters, surfaced through the daemon's
// SIGUSR1 dump and the Explain path.
type RoutingStats struct {
	Table             TableStats
	ProvidesReceived  int64
	HandoffsSent      int64
	RepublishedValues int64
	RefreshedBuckets  int64
}

// RoutingStats returns the node's routing snapshot.
func (n *Node) RoutingStats() RoutingStats {
	return RoutingStats{
		Table:             n.table.Stats(),
		ProvidesReceived:  n.providesReceived.Load(),
		HandoffsSent:      n.handoffsSent.Load(),
		RepublishedValues: n.republishedValues.Load(),
		RefreshedBuckets:  n.refreshedBuckets.Load(),
	}
}

// Format renders the snapshot as a human-readable multi-line dump.
func (s RoutingStats) Format() string {
	var b strings.Builder
	c := s.Table.Counters
	fmt.Fprintf(&b, "routing: %d contacts across %d buckets\n", s.Table.Contacts, s.Table.NonEmptyBuckets)
	fmt.Fprintf(&b, "  table: inserts=%d refreshes=%d evictions=%d drops_full=%d promotions=%d\n",
		c.Inserts, c.Refreshes, c.Evictions, c.DropsFull, c.Promotions)
	fmt.Fprintf(&b, "  maintenance: provides_received=%d handoffs_sent=%d republished_values=%d refreshed_buckets=%d\n",
		s.ProvidesReceived, s.HandoffsSent, s.RepublishedValues, s.RefreshedBuckets)
	for _, f := range s.Table.Fill {
		fmt.Fprintf(&b, "  bucket %3d: %d contacts, %d replacements\n", f.Index, f.Entries, f.Replacements)
	}
	return b.String()
}
