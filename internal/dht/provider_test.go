package dht

import (
	"testing"
	"time"

	"piersearch/internal/codec"
)

func TestProviderRecordsRoundTrip(t *testing.T) {
	recs := []ProviderRecord{
		{Key: StringID("k1"), Data: []byte("value one"), Publisher: StringID("p1"), TTL: time.Hour},
		{Key: StringID("k2"), Data: nil, Publisher: StringID("p2")},
		{Key: StringID("k3"), Data: []byte{0}, Publisher: StringID("p3"), TTL: time.Nanosecond},
	}
	buf := AppendProviderRecords(nil, recs)
	r := codec.NewReader(buf)
	got := ReadProviderRecords(r)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Key != recs[i].Key || got[i].Publisher != recs[i].Publisher ||
			got[i].TTL != recs[i].TTL || string(got[i].Data) != string(recs[i].Data) {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestProviderRecordsEmptyBatch(t *testing.T) {
	buf := AppendProviderRecords(nil, nil)
	if len(buf) != 2 {
		t.Fatalf("empty batch = %d bytes, want 2 (version + count)", len(buf))
	}
	r := codec.NewReader(buf)
	if got := ReadProviderRecords(r); got != nil {
		t.Fatalf("empty batch decoded to %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestProviderRecordsRejectsBadVersion(t *testing.T) {
	buf := AppendProviderRecords(nil, []ProviderRecord{{Key: StringID("k")}})
	buf[0] = 0x7f
	r := codec.NewReader(buf)
	if got := ReadProviderRecords(r); got != nil {
		t.Fatalf("bad version decoded to %v", got)
	}
	if r.Err() == nil {
		t.Fatal("bad version did not fail the reader")
	}
}

func TestProviderRecordsRejectsHostileCount(t *testing.T) {
	// Version byte plus a count far beyond what the remaining bytes could
	// hold: the reader's count guard must reject it before allocating.
	buf := codec.AppendUvarint([]byte{1}, 1<<40)
	r := codec.NewReader(buf)
	if got := ReadProviderRecords(r); got != nil {
		t.Fatalf("hostile count decoded to %v", got)
	}
	if r.Err() == nil {
		t.Fatal("hostile count did not fail the reader")
	}
}

// FuzzProviderRecords checks the decoder never panics and that anything
// it accepts re-encodes to a decodable batch of the same shape.
func FuzzProviderRecords(f *testing.F) {
	f.Add(AppendProviderRecords(nil, nil))
	f.Add(AppendProviderRecords(nil, []ProviderRecord{
		{Key: StringID("k"), Data: []byte("v"), Publisher: StringID("p"), TTL: time.Minute},
	}))
	f.Add(AppendProviderRecords(nil, []ProviderRecord{
		{Key: StringID("a"), Data: []byte("x"), Publisher: StringID("q"), TTL: -time.Second},
		{Key: StringID("b"), Publisher: StringID("r")},
	}))
	f.Add([]byte{1, 0xff})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := codec.NewReader(data)
		recs := ReadProviderRecords(r)
		if r.Err() != nil || recs == nil {
			return
		}
		again := codec.NewReader(AppendProviderRecords(nil, recs))
		got := ReadProviderRecords(again)
		if again.Err() != nil {
			t.Fatalf("re-encoded batch does not decode: %v", again.Err())
		}
		if len(got) != len(recs) {
			t.Fatalf("round-trip drift: %d records became %d", len(recs), len(got))
		}
		for i := range recs {
			if got[i].Key != recs[i].Key || got[i].Publisher != recs[i].Publisher ||
				got[i].TTL != recs[i].TTL || string(got[i].Data) != string(recs[i].Data) {
				t.Fatalf("record %d drifted: %+v vs %+v", i, got[i], recs[i])
			}
		}
	})
}
