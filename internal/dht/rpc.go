package dht

import "context"

// RPCKind enumerates the Kademlia RPCs plus the application-message channel
// PIER uses to route query plans and tuple batches to key owners.
type RPCKind uint8

// The RPC vocabulary.
const (
	RPCPing RPCKind = iota
	RPCFindNode
	RPCFindValue
	RPCStore
	RPCApp
	// RPCProvide carries a batch of provider records: republish and
	// join-handoff push replicated values to their k closest holders with
	// one message per destination instead of one STORE per value.
	RPCProvide
)

// String returns the RPC name, used as a traffic-accounting kind.
func (k RPCKind) String() string {
	switch k {
	case RPCPing:
		return "ping"
	case RPCFindNode:
		return "find_node"
	case RPCFindValue:
		return "find_value"
	case RPCStore:
		return "store"
	case RPCApp:
		return "app"
	case RPCProvide:
		return "provide"
	default:
		return "unknown"
	}
}

// Request is a DHT RPC request.
type Request struct {
	Kind    RPCKind
	From    NodeInfo
	Target  ID               // FindNode / FindValue target, Store key
	Value   StoredValue      // Store payload
	App     string           // App handler dispatch key
	Data    []byte           // App payload
	Records []ProviderRecord // Provide payload
}

// Response is a DHT RPC response.
type Response struct {
	From    NodeInfo
	Closest []NodeInfo    // FindNode / FindValue: closer contacts
	Values  []StoredValue // FindValue: stored values, if the key is held here
	Data    []byte        // App reply payload
	OK      bool
}

// nodeInfoWireBytes approximates the serialized size of one contact:
// 20-byte ID + address string + framing.
func nodeInfoWireBytes(n NodeInfo) int { return IDBytes + len(n.Addr) + 4 }

// rpcHeaderBytes approximates fixed per-message framing overhead.
const rpcHeaderBytes = 16

// WireSize estimates the serialized request size in bytes for traffic
// accounting on the simulated transport. The TCP transport counts real
// encoded bytes instead.
func (r *Request) WireSize() int {
	n := rpcHeaderBytes + nodeInfoWireBytes(r.From) + IDBytes
	n += len(r.Value.Data)
	if len(r.Value.Data) > 0 {
		n += IDBytes + 12 // publisher + timestamps
	}
	n += len(r.App) + len(r.Data)
	for _, rec := range r.Records {
		n += 2*IDBytes + len(rec.Data) + 8
	}
	return n
}

// WireSize estimates the serialized response size in bytes.
func (r *Response) WireSize() int {
	n := rpcHeaderBytes + nodeInfoWireBytes(r.From)
	for _, c := range r.Closest {
		n += nodeInfoWireBytes(c)
	}
	for _, v := range r.Values {
		n += len(v.Data) + IDBytes + 12
	}
	n += len(r.Data)
	return n
}

// Transport delivers RPCs to remote nodes. Implementations: LocalNetwork
// (in-process, simulated accounting) and the TCP transport in package wire.
type Transport interface {
	// Call delivers req to the node at to and returns its response.
	// A nil response with a non-nil error means the node is unreachable.
	Call(to NodeInfo, req *Request) (*Response, error)
}

// ContextTransport is implemented by transports whose calls can be
// canceled or deadlined. Node routes every RPC through CallContext when
// the transport supports it, so a context canceled at the query layer
// aborts the in-flight dial or round-trip instead of waiting it out.
// Implementations must return an error wrapping ctx.Err() once the
// context is done.
type ContextTransport interface {
	Transport
	CallContext(ctx context.Context, to NodeInfo, req *Request) (*Response, error)
}
