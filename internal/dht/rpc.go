package dht

import (
	"context"

	"piersearch/internal/telemetry"
)

// RPCKind enumerates the Kademlia RPCs plus the application-message channel
// PIER uses to route query plans and tuple batches to key owners.
type RPCKind uint8

// The RPC vocabulary.
const (
	RPCPing RPCKind = iota
	RPCFindNode
	RPCFindValue
	RPCStore
	RPCApp
	// RPCProvide carries a batch of provider records: republish and
	// join-handoff push replicated values to their k closest holders with
	// one message per destination instead of one STORE per value.
	RPCProvide
)

// String returns the RPC name, used as a traffic-accounting kind.
func (k RPCKind) String() string {
	switch k {
	case RPCPing:
		return "ping"
	case RPCFindNode:
		return "find_node"
	case RPCFindValue:
		return "find_value"
	case RPCStore:
		return "store"
	case RPCApp:
		return "app"
	case RPCProvide:
		return "provide"
	default:
		return "unknown"
	}
}

// Request is a DHT RPC request.
type Request struct {
	Kind    RPCKind
	From    NodeInfo
	Target  ID               // FindNode / FindValue target, Store key
	Value   StoredValue      // Store payload
	App     string           // App handler dispatch key
	Data    []byte           // App payload
	Records []ProviderRecord // Provide payload

	// Trace context: zero TraceID means untraced. Stamped by the caller
	// (Node.callCtx) from the request context; carried as a versioned
	// trailing block by the TCP transport and as plain struct fields by
	// the in-process transports.
	TraceID telemetry.TraceID
	SpanID  telemetry.SpanID
}

// Response is a DHT RPC response.
type Response struct {
	From    NodeInfo
	Closest []NodeInfo    // FindNode / FindValue: closer contacts
	Values  []StoredValue // FindValue: stored values, if the key is held here
	Data    []byte        // App reply payload
	OK      bool

	// Spans piggy-backs the handler-side span records for the request's
	// trace back to the caller, which absorbs them into its own ring.
	// Empty on untraced requests.
	Spans []telemetry.Span
}

// nodeInfoWireBytes approximates the serialized size of one contact:
// 20-byte ID + address string + framing.
func nodeInfoWireBytes(n NodeInfo) int { return IDBytes + len(n.Addr) + 4 }

// rpcHeaderBytes approximates fixed per-message framing overhead.
const rpcHeaderBytes = 16

// WireSize estimates the serialized request size in bytes for traffic
// accounting on the simulated transport. The TCP transport counts real
// encoded bytes instead.
func (r *Request) WireSize() int {
	n := rpcHeaderBytes + nodeInfoWireBytes(r.From) + IDBytes
	n += len(r.Value.Data)
	if len(r.Value.Data) > 0 {
		n += IDBytes + 12 // publisher + timestamps
	}
	n += len(r.App) + len(r.Data)
	for _, rec := range r.Records {
		n += 2*IDBytes + len(rec.Data) + 8
	}
	n++ // trace flag byte
	if r.TraceID != 0 {
		n += 16
	}
	return n
}

// WireSize estimates the serialized response size in bytes.
func (r *Response) WireSize() int {
	n := rpcHeaderBytes + nodeInfoWireBytes(r.From)
	for _, c := range r.Closest {
		n += nodeInfoWireBytes(c)
	}
	for _, v := range r.Values {
		n += len(v.Data) + IDBytes + 12
	}
	n += len(r.Data)
	for i := range r.Spans {
		s := &r.Spans[i]
		n += 24 + 10 + len(s.Name) + len(s.Node) + len(s.Err)
		for _, a := range s.Attrs {
			n += len(a.Key) + len(a.Val) + 2
		}
	}
	return n
}

// Transport delivers RPCs to remote nodes. Implementations: LocalNetwork
// (in-process, simulated accounting) and the TCP transport in package wire.
type Transport interface {
	// Call delivers req to the node at to and returns its response.
	// A nil response with a non-nil error means the node is unreachable.
	Call(to NodeInfo, req *Request) (*Response, error)
}

// ContextTransport is implemented by transports whose calls can be
// canceled or deadlined. Node routes every RPC through CallContext when
// the transport supports it, so a context canceled at the query layer
// aborts the in-flight dial or round-trip instead of waiting it out.
// Implementations must return an error wrapping ctx.Err() once the
// context is done.
type ContextTransport interface {
	Transport
	CallContext(ctx context.Context, to NodeInfo, req *Request) (*Response, error)
}
