package dht

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentPutGet drives overlapping Put/Get/Lookup traffic through a
// cluster from many goroutines. Run with -race: it exercises the internal
// locking of Store, Table and the app-handler map that the concurrent PIER
// pipeline depends on.
func TestConcurrentPutGet(t *testing.T) {
	cluster, err := NewCluster(16, 7, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	const opsPer = 20

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := cluster.Nodes[g%len(cluster.Nodes)]
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("key-%d", i%8) // overlap keys across goroutines
				data := []byte(fmt.Sprintf("val-%d-%d", g, i))
				if _, err := node.Put("bench", key, data); err != nil {
					errs <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				if _, _, err := node.Get("bench", key); err != nil {
					errs <- fmt.Errorf("get %s: %w", key, err)
					return
				}
				if _, _, err := node.Lookup(StringID(key)); err != nil {
					errs <- fmt.Errorf("lookup %s: %w", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every key must now be resolvable from every node with a full value set.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("key-%d", i)
		values, _, err := cluster.Nodes[i].Get("bench", key)
		if err != nil {
			t.Fatalf("final get %s: %v", key, err)
		}
		if len(values) == 0 {
			t.Fatalf("final get %s: no values", key)
		}
	}
}

// TestConcurrentAppSend exercises concurrent application messages routed to
// key owners, the primitive the concurrent chain join and probe fan-out use.
func TestConcurrentAppSend(t *testing.T) {
	cluster, err := NewCluster(12, 11, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range cluster.Nodes {
		node.RegisterApp("echo", func(_ NodeInfo, data []byte) []byte { return data })
	}
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := cluster.Nodes[g%len(cluster.Nodes)]
			for i := 0; i < 15; i++ {
				payload := []byte(fmt.Sprintf("msg-%d-%d", g, i))
				reply, _, err := node.Send(StringID(fmt.Sprintf("target-%d", i)), "echo", payload)
				if err != nil {
					errs <- err
					return
				}
				if string(reply) != string(payload) {
					errs <- fmt.Errorf("echo mismatch: %q != %q", reply, payload)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
