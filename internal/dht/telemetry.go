package dht

import "piersearch/internal/telemetry"

// rpcKindMask bounds RPCKind indexing into the per-kind counter arrays
// so an unknown kind off the wire lands in a spare slot instead of
// panicking.
const rpcKindMask = 7

// nodeMetrics holds the node's pre-resolved instruments. The zero
// value — no registry configured — is all nil counters, whose methods
// no-op, so the hot path never branches on "metrics enabled".
type nodeMetrics struct {
	rpcIn      [rpcKindMask + 1]*telemetry.Counter
	rpcOut     [rpcKindMask + 1]*telemetry.Counter
	rpcOutFail *telemetry.Counter
	evictions  *telemetry.Counter
}

// registerMetrics resolves counters and registers gauges on reg. The
// gauges sample live node state (routing-table occupancy, store size,
// maintenance totals) at scrape time; counters are bumped inline on
// the RPC paths.
func (n *Node) registerMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	kinds := []RPCKind{RPCPing, RPCFindNode, RPCFindValue, RPCStore, RPCApp, RPCProvide}
	for _, k := range kinds {
		n.met.rpcIn[k&rpcKindMask] = reg.Counter("dht.rpc.in." + k.String())   //lint:allow metricnames bounded by the RPCKind enum, one registration per kind at construction
		n.met.rpcOut[k&rpcKindMask] = reg.Counter("dht.rpc.out." + k.String()) //lint:allow metricnames bounded by the RPCKind enum, one registration per kind at construction
	}
	n.met.rpcOutFail = reg.Counter("dht.rpc.out.failed")
	n.met.evictions = reg.Counter("dht.table.evictions")
	reg.Gauge("dht.table.contacts", func() int64 { return int64(n.table.Len()) })
	reg.Gauge("dht.store.keys", func() int64 { return int64(n.store.Len()) })
	reg.Gauge("dht.store.values", func() int64 { return int64(n.store.ValueCount()) })
	reg.Gauge("dht.store.value_bytes", func() int64 { return int64(n.store.Bytes()) })
	reg.Gauge("dht.provides_received", n.providesReceived.Load)
	reg.Gauge("dht.handoffs_sent", n.handoffsSent.Load)
	reg.Gauge("dht.republished_values", n.republishedValues.Load)
	reg.Gauge("dht.refreshed_buckets", n.refreshedBuckets.Load)
	reg.Gauge("dht.janitor.sweeps", n.janitorSweeps.Load)
	reg.Gauge("dht.janitor.reclaimed", n.janitorReclaimed.Load)
}
