package dht

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
)

// KindStats are per-RPC-kind traffic counters.
type KindStats struct {
	Messages uint64
	Bytes    uint64
}

// TrafficStats aggregates transport-level counters, mirroring the simnet
// accounting so experiments can report DHT bandwidth per operation kind.
type TrafficStats struct {
	Messages uint64
	Bytes    uint64
	ByKind   map[string]KindStats
}

// Sub returns s - prev for interval measurement.
func (s TrafficStats) Sub(prev TrafficStats) TrafficStats {
	out := TrafficStats{
		Messages: s.Messages - prev.Messages,
		Bytes:    s.Bytes - prev.Bytes,
		ByKind:   make(map[string]KindStats, len(s.ByKind)),
	}
	for k, v := range s.ByKind {
		p := prev.ByKind[k]
		out.ByKind[k] = KindStats{Messages: v.Messages - p.Messages, Bytes: v.Bytes - p.Bytes}
	}
	return out
}

// LocalNetwork is an in-process Transport: RPCs are direct method calls on
// the destination node, with wire-size accounting and optional failure
// injection. It is safe for concurrent use.
type LocalNetwork struct {
	mu       sync.Mutex
	nodes    map[string]*Node
	stats    TrafficStats
	failProb float64
	rng      *rand.Rand
}

// NewLocalNetwork creates an empty local transport. seed drives failure
// injection.
func NewLocalNetwork(seed int64) *LocalNetwork {
	return &LocalNetwork{
		nodes: make(map[string]*Node),
		stats: TrafficStats{ByKind: make(map[string]KindStats)},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetFailureProbability makes each Call fail independently with probability
// p, modelling lossy links or overloaded nodes.
func (ln *LocalNetwork) SetFailureProbability(p float64) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.failProb = p
}

// Join registers n so other nodes can reach it.
func (ln *LocalNetwork) Join(n *Node) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.nodes[n.Info().Addr] = n
}

// Remove detaches the node at addr, modelling an abrupt departure.
func (ln *LocalNetwork) Remove(addr string) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	delete(ln.nodes, addr)
}

// Lookup returns the registered node at addr, if any.
func (ln *LocalNetwork) Lookup(addr string) (*Node, bool) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	n, ok := ln.nodes[addr]
	return n, ok
}

// Len returns the number of registered nodes.
func (ln *LocalNetwork) Len() int {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return len(ln.nodes)
}

// Stats returns a copy of the traffic counters.
func (ln *LocalNetwork) Stats() TrafficStats {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	out := ln.stats
	out.ByKind = make(map[string]KindStats, len(ln.stats.ByKind))
	for k, v := range ln.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// Call implements Transport.
func (ln *LocalNetwork) Call(to NodeInfo, req *Request) (*Response, error) {
	return ln.CallContext(context.Background(), to, req)
}

// CallContext implements ContextTransport. Delivery is synchronous, so the
// context is consulted at the call boundary: a canceled or expired context
// fails the RPC before the destination handler runs.
func (ln *LocalNetwork) CallContext(ctx context.Context, to NodeInfo, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dht: call %s: %w", to.Addr, err)
	}
	kind := req.Kind.String()
	reqBytes := uint64(req.WireSize())
	ln.mu.Lock()
	node, ok := ln.nodes[to.Addr]
	failed := ok && ln.failProb > 0 && ln.rng.Float64() < ln.failProb
	ln.stats.Messages += 2
	ln.stats.Bytes += reqBytes
	ks := ln.stats.ByKind[kind]
	ks.Messages += 2
	ks.Bytes += reqBytes
	ln.stats.ByKind[kind] = ks
	ln.mu.Unlock()

	if !ok {
		return nil, fmt.Errorf("dht: node %s unreachable", to.Addr)
	}
	if failed {
		return nil, fmt.Errorf("dht: call to %s dropped (failure injection)", to.Addr)
	}
	resp := node.HandleRPC(req)
	respBytes := uint64(resp.WireSize())
	ln.mu.Lock()
	ln.stats.Bytes += respBytes
	ks = ln.stats.ByKind[kind]
	ks.Bytes += respBytes
	ln.stats.ByKind[kind] = ks
	ln.mu.Unlock()
	return resp, nil
}
