package dht

import (
	"sync"
	"time"
)

// StoredValue is one value published under a key. A key maps to a *set* of
// values (multi-value store): every replica of a file publishes its own
// Inverted tuple under the same keyword, so posting lists accumulate.
type StoredValue struct {
	Data      []byte
	Publisher ID            // node that created the value
	StoredAt  time.Duration // virtual or wall-relative store time
	TTL       time.Duration // 0 means no expiry
}

// expired reports whether v is past its TTL at time now.
func (v StoredValue) expired(now time.Duration) bool {
	return v.TTL > 0 && now > v.StoredAt+v.TTL
}

// Store is the node-local key/value store. Values are deduplicated by
// (publisher, payload) so republishing refreshes rather than duplicates.
// It is safe for concurrent use: the concurrent query/publish pipeline has
// many in-flight RPCs reading and writing one node's store at once.
type Store struct {
	mu     sync.Mutex
	values map[ID][]StoredValue
	bytes  int
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{values: make(map[ID][]StoredValue)}
}

// Put inserts v under key, replacing an existing value with the same
// publisher and identical payload (refresh). It reports whether the value
// was new.
func (s *Store) Put(key ID, v StoredValue) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.values[key]
	for i := range vs {
		if vs[i].Publisher == v.Publisher && string(vs[i].Data) == string(v.Data) {
			vs[i].StoredAt = v.StoredAt
			vs[i].TTL = v.TTL
			return false
		}
	}
	s.values[key] = append(vs, v)
	s.bytes += len(v.Data)
	return true
}

// Get returns the live values under key at time now, pruning expired ones.
func (s *Store) Get(key ID, now time.Duration) []StoredValue {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs, ok := s.values[key]
	if !ok {
		return nil
	}
	live := vs[:0]
	for _, v := range vs {
		if !v.expired(now) {
			live = append(live, v)
		} else {
			s.bytes -= len(v.Data)
		}
	}
	if len(live) == 0 {
		delete(s.values, key)
		return nil
	}
	s.values[key] = live
	out := make([]StoredValue, len(live))
	copy(out, live)
	return out
}

// Delete removes every value under key.
func (s *Store) Delete(key ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.values[key] {
		s.bytes -= len(v.Data)
	}
	delete(s.values, key)
}

// Keys returns every key currently present (including ones whose values may
// all be expired; Get prunes lazily).
func (s *Store) Keys() []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]ID, 0, len(s.values))
	for k := range s.values {
		keys = append(keys, k)
	}
	return keys
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.values)
}

// ValueCount returns the total number of stored values across keys.
func (s *Store) ValueCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, vs := range s.values {
		n += len(vs)
	}
	return n
}

// Bytes returns the approximate payload bytes held.
func (s *Store) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Expire removes all values past their TTL at time now and returns how many
// were removed. Nodes run this periodically.
func (s *Store) Expire(now time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for k, vs := range s.values {
		live := vs[:0]
		for _, v := range vs {
			if v.expired(now) {
				removed++
				s.bytes -= len(v.Data)
			} else {
				live = append(live, v)
			}
		}
		if len(live) == 0 {
			delete(s.values, k)
		} else {
			s.values[k] = live
		}
	}
	return removed
}
