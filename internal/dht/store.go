package dht

import (
	"sync"
	"time"
)

// StoredValue is one value published under a key. A key maps to a *set* of
// values (multi-value store): every replica of a file publishes its own
// Inverted tuple under the same keyword, so posting lists accumulate.
type StoredValue struct {
	Data      []byte
	Publisher ID            // node that created the value
	StoredAt  time.Duration // virtual or wall-relative store time
	TTL       time.Duration // 0 means no expiry
}

// expired reports whether v is past its TTL at time now.
func (v StoredValue) expired(now time.Duration) bool {
	return v.TTL > 0 && now > v.StoredAt+v.TTL
}

// Expired reports whether v is past its TTL at time now. It is the
// exported form of the expiry rule so Storage implementations outside this
// package apply exactly the same semantics.
func (v StoredValue) Expired(now time.Duration) bool { return v.expired(now) }

// Storage is the contract a node-local value store must satisfy. A key
// maps to a set of values deduplicated by (publisher, payload): Put with a
// matching pair refreshes StoredAt/TTL in place rather than appending.
// Implementations must be safe for concurrent use; the concurrent
// query/publish pipeline drives many operations against one node at once.
//
// Two implementations exist: the in-memory sharded map in this package
// (Store, the default) and the log-structured disk engine in
// internal/store (store.Disk). The interface lives here rather than in
// internal/store because package dht must construct its default store
// without importing the packages that implement the alternatives.
type Storage interface {
	// Put inserts v under key, refreshing an existing value with the same
	// publisher and identical payload. It reports whether the value was new.
	Put(key ID, v StoredValue) bool
	// Get returns the live values under key at time now, pruning expired
	// ones. The returned slice and its payloads must not alias internal
	// state the implementation will mutate.
	Get(key ID, now time.Duration) []StoredValue
	// Delete removes every value under key.
	Delete(key ID)
	// Keys returns every key currently present (values may be expired;
	// Get prunes lazily).
	Keys() []ID
	// Len returns the number of keys.
	Len() int
	// ValueCount returns the total number of stored values across keys.
	ValueCount() int
	// Bytes returns the approximate live payload bytes held.
	Bytes() int
	// Expire removes all values past their TTL at time now and returns how
	// many entries were reclaimed.
	Expire(now time.Duration) int
	// Close releases the store's resources (for the disk engine: flush the
	// write-ahead log, fsync, release the lock file). It must be
	// idempotent. In-memory stores may treat it as a no-op.
	Close() error
}

// storeShards is the number of lock shards. Keys are SHA-1-derived, so the
// leading ID byte is uniform and a power-of-two mask balances the shards.
const storeShards = 16

// storeShard is one independently locked bucket of the store. sums holds
// one fingerprint per stored value, in lockstep with values: Put's dedup
// scan compares 8-byte fingerprints and only falls back to full
// publisher/payload equality on a match. Posting lists under one keyword
// key share long payload prefixes, so without the fingerprint a republish
// wave's Puts degenerate into O(values) expensive memcmps each.
type storeShard struct {
	mu     sync.Mutex
	values map[ID][]StoredValue
	sums   map[ID][]uint64
	bytes  int
}

// fingerprint hashes a value's dedup identity (publisher, payload) with
// FNV-1a. Collisions are harmless — they just trigger the full compare.
func fingerprint(v StoredValue) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range v.Publisher {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range v.Data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// Store is the in-memory Storage implementation: the node-local key/value
// store used when Config.NewStorage is unset. Values are deduplicated by
// (publisher, payload) so republishing refreshes rather than duplicates.
// It is safe for concurrent use and sharded by ID prefix into
// independently locked buckets: the concurrent query/publish pipeline has
// many in-flight RPCs reading and writing one node's store at once, and a
// single mutex would serialise them all. Package internal/store re-exports
// it as store.Mem alongside the disk-backed store.Disk.
type Store struct {
	shards [storeShards]storeShard
}

var _ Storage = (*Store)(nil)

// NewStore creates an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].values = make(map[ID][]StoredValue)
		s.shards[i].sums = make(map[ID][]uint64)
	}
	return s
}

// shard returns the bucket owning key.
func (s *Store) shard(key ID) *storeShard {
	return &s.shards[key[0]&(storeShards-1)]
}

// Put inserts v under key, replacing an existing value with the same
// publisher and identical payload (refresh). It reports whether the value
// was new.
func (s *Store) Put(key ID, v StoredValue) bool {
	sh := s.shard(key)
	h := fingerprint(v)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	vs := sh.values[key]
	ss := sh.sums[key]
	for i := range vs {
		if ss[i] == h && vs[i].Publisher == v.Publisher && string(vs[i].Data) == string(v.Data) {
			vs[i].StoredAt = v.StoredAt
			vs[i].TTL = v.TTL
			return false
		}
	}
	sh.values[key] = append(vs, v)
	sh.sums[key] = append(ss, h)
	sh.bytes += len(v.Data)
	return true
}

// Get returns the live values under key at time now, pruning expired ones.
func (s *Store) Get(key ID, now time.Duration) []StoredValue {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	vs, ok := sh.values[key]
	if !ok {
		return nil
	}
	ss := sh.sums[key]
	live := vs[:0]
	liveSums := ss[:0]
	for i, v := range vs {
		if !v.expired(now) {
			live = append(live, v)
			liveSums = append(liveSums, ss[i])
		} else {
			sh.bytes -= len(v.Data)
		}
	}
	if len(live) == 0 {
		delete(sh.values, key)
		delete(sh.sums, key)
		return nil
	}
	sh.values[key] = live
	sh.sums[key] = liveSums
	out := make([]StoredValue, len(live))
	copy(out, live)
	return out
}

// Delete removes every value under key.
func (s *Store) Delete(key ID) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, v := range sh.values[key] {
		sh.bytes -= len(v.Data)
	}
	delete(sh.values, key)
	delete(sh.sums, key)
}

// Keys returns every key currently present (including ones whose values may
// all be expired; Get prunes lazily).
func (s *Store) Keys() []ID {
	var keys []ID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.values {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	return keys
}

// Len returns the number of keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.values)
		sh.mu.Unlock()
	}
	return n
}

// ValueCount returns the total number of stored values across keys.
func (s *Store) ValueCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, vs := range sh.values {
			n += len(vs)
		}
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the approximate payload bytes held.
func (s *Store) Bytes() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Close implements Storage. The in-memory store holds no external
// resources, so it is a no-op.
func (s *Store) Close() error { return nil }

// Expire removes all values past their TTL at time now and returns how many
// were removed. The sweep locks one shard at a time, so concurrent reads
// and writes to other shards proceed while it runs; nodes run it
// periodically (see Node.StartJanitor).
func (s *Store) Expire(now time.Duration) int {
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, vs := range sh.values {
			ss := sh.sums[k]
			live := vs[:0]
			liveSums := ss[:0]
			for i, v := range vs {
				if v.expired(now) {
					removed++
					sh.bytes -= len(v.Data)
				} else {
					live = append(live, v)
					liveSums = append(liveSums, ss[i])
				}
			}
			if len(live) == 0 {
				delete(sh.values, k)
				delete(sh.sums, k)
			} else {
				sh.values[k] = live
				sh.sums[k] = liveSums
			}
		}
		sh.mu.Unlock()
	}
	return removed
}
