package dht

import (
	"fmt"
	"testing"
)

func testCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(n, 42, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterBootstrapPopulatesTables(t *testing.T) {
	c := testCluster(t, 32)
	for i, n := range c.Nodes {
		if n.TableLen() < 8 {
			t.Errorf("node %d table has only %d contacts", i, n.TableLen())
		}
	}
}

func TestPutGetSingleValue(t *testing.T) {
	c := testCluster(t, 32)
	if _, err := c.Nodes[3].Put("ns", "hello", []byte("world")); err != nil {
		t.Fatal(err)
	}
	values, _, err := c.Nodes[20].Get("ns", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 || string(values[0].Data) != "world" {
		t.Fatalf("Get = %v, want one value 'world'", values)
	}
}

func TestGetMissingKeyReturnsEmpty(t *testing.T) {
	c := testCluster(t, 16)
	values, _, err := c.Nodes[0].Get("ns", "absent")
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 0 {
		t.Fatalf("Get(absent) = %v, want empty", values)
	}
}

func TestMultiValueAccumulation(t *testing.T) {
	// Posting lists: many publishers store distinct values under one key,
	// and a reader sees the union.
	c := testCluster(t, 32)
	const publishers = 10
	for i := 0; i < publishers; i++ {
		data := []byte(fmt.Sprintf("file-%d", i))
		if _, err := c.Nodes[i].Put("Inverted", "madonna", data); err != nil {
			t.Fatal(err)
		}
	}
	values, _, err := c.Nodes[30].Get("Inverted", "madonna")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range values {
		seen[string(v.Data)] = true
	}
	if len(seen) != publishers {
		t.Fatalf("got %d distinct values, want %d", len(seen), publishers)
	}
}

func TestRepublishSamePayloadDoesNotDuplicate(t *testing.T) {
	c := testCluster(t, 24)
	for i := 0; i < 3; i++ {
		if _, err := c.Nodes[1].Put("ns", "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	values, _, err := c.Nodes[9].Get("ns", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 {
		t.Fatalf("got %d values after triple publish, want 1", len(values))
	}
}

func TestLookupFindsGlobalClosest(t *testing.T) {
	c := testCluster(t, 64)
	target := StringID("some target key")
	// Globally closest node, by brute force.
	best := c.Nodes[0].Info()
	for _, n := range c.Nodes[1:] {
		if Closer(n.Info().ID, best.ID, target) {
			best = n.Info()
		}
	}
	got, stats, err := c.Nodes[5].Lookup(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("empty lookup result")
	}
	found := got[0].ID == best.ID
	if c.Nodes[5].Info().ID == best.ID {
		found = true // the caller itself is closest; Lookup returns peers
	}
	if !found {
		t.Errorf("lookup nearest = %s, want global closest %s", got[0].ID.Short(), best.ID.Short())
	}
	if stats.Messages == 0 || stats.Hops == 0 {
		t.Error("lookup reported zero traffic")
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	c := testCluster(t, 128)
	maxHops := 0
	for i := 0; i < 20; i++ {
		_, stats, err := c.RandomNode().Lookup(StringID(fmt.Sprintf("key-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Hops > maxHops {
			maxHops = stats.Hops
		}
	}
	// log2(128) = 7; allow slack for α-batching and convergence rounds.
	if maxHops > 12 {
		t.Errorf("max lookup hops = %d, want O(log N) <= 12", maxHops)
	}
}

func TestOwnerIsClosestLiveNode(t *testing.T) {
	c := testCluster(t, 32)
	key := StringID("ownership")
	owner, _, err := c.Nodes[7].Owner(key)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if n.Info().ID != owner.ID && Closer(n.Info().ID, owner.ID, key) {
			t.Fatalf("node %s closer to key than reported owner %s", n.Info().ID.Short(), owner.ID.Short())
		}
	}
}

func TestAppMessageRouting(t *testing.T) {
	c := testCluster(t, 32)
	key := StringID("app-key")
	var ownerIdx int
	for i, n := range c.Nodes {
		n.RegisterApp("echo", func(from NodeInfo, data []byte) []byte {
			return append([]byte("reply:"), data...)
		})
		owner, _, _ := c.Nodes[0].Owner(key)
		if n.Info().ID == owner.ID {
			ownerIdx = i
		}
	}
	reply, _, err := c.Nodes[1].Send(key, "echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "reply:ping" {
		t.Errorf("reply = %q", reply)
	}
	_ = ownerIdx
}

func TestSendToUnknownHandlerFails(t *testing.T) {
	c := testCluster(t, 8)
	_, _, err := c.Nodes[0].SendTo(c.Nodes[1].Info(), "nope", nil)
	if err == nil {
		t.Error("Send to unregistered handler succeeded")
	}
}

func TestValueSurvivesReplicaFailure(t *testing.T) {
	c, err := NewCluster(48, 7, Config{Replicate: 4})
	if err != nil {
		t.Fatal(err)
	}
	key := NamespacedID("ns", "durable")
	if _, err := c.Nodes[0].PutID(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Kill the single closest holder.
	closest, _, err := c.Nodes[0].Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		if n.Info().ID == closest[0].ID {
			c.RemoveNode(i)
			break
		}
	}
	values, _, err := c.Nodes[1].GetID(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 {
		t.Fatalf("value lost after replica failure: got %d values", len(values))
	}
}

func TestChurnJoinServesExistingKeys(t *testing.T) {
	c := testCluster(t, 24)
	if _, err := c.Nodes[0].Put("ns", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	n, err := c.AddNode(Config{})
	if err != nil {
		t.Fatal(err)
	}
	values, _, err := n.Get("ns", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 || string(values[0].Data) != "v" {
		t.Fatalf("new node Get = %v", values)
	}
}

func TestRepublishRestoresReplication(t *testing.T) {
	c, err := NewCluster(48, 11, Config{Replicate: 3})
	if err != nil {
		t.Fatal(err)
	}
	pub := c.Nodes[0]
	if _, err := pub.Put("ns", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Remove two of the closest holders, then republish from the origin.
	key := NamespacedID("ns", "k")
	closest, _, _ := pub.Lookup(key)
	removed := 0
	for _, holder := range closest[:2] {
		for i, n := range c.Nodes {
			if n.Info().ID == holder.ID && n != pub {
				c.RemoveNode(i)
				removed++
				break
			}
		}
	}
	// The publisher also holds a copy iff it was among the closest; it can
	// always republish from its local store.
	pub.LocalPut(key, []byte("v"))
	count, _ := pub.Republish()
	if count == 0 {
		t.Fatal("Republish found nothing to republish")
	}
	values, _, err := c.Nodes[len(c.Nodes)-1].GetID(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) == 0 {
		t.Fatal("value unavailable after republish")
	}
}

func TestFailureInjectionLookupStillConverges(t *testing.T) {
	c := testCluster(t, 64)
	c.Net.SetFailureProbability(0.15)
	ok := 0
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k-%d", i)
		if _, err := c.Nodes[i%len(c.Nodes)].Put("ns", key, []byte("v")); err != nil {
			continue
		}
		values, _, err := c.Nodes[(i+31)%len(c.Nodes)].Get("ns", key)
		if err == nil && len(values) > 0 {
			ok++
		}
	}
	if ok < 15 {
		t.Errorf("only %d/20 put-get pairs survived 15%% message loss", ok)
	}
}

func TestTrafficAccounting(t *testing.T) {
	c := testCluster(t, 16)
	before := c.Net.Stats()
	if _, err := c.Nodes[0].Put("ns", "k", []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	d := c.Net.Stats().Sub(before)
	if d.Messages == 0 || d.Bytes == 0 {
		t.Error("no traffic recorded for Put")
	}
	if d.ByKind["store"].Messages == 0 || d.ByKind["store"].Bytes == 0 {
		t.Error("no store RPCs recorded for Put")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.K != 20 || c.Alpha != 3 || c.Replicate != 3 || c.Clock == nil {
		t.Errorf("defaults = %+v", c)
	}
	c2 := Config{K: 8, Alpha: 2, Replicate: 1}.Normalize()
	if c2.K != 8 || c2.Alpha != 2 || c2.Replicate != 1 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestNewClusterRejectsNonPositive(t *testing.T) {
	if _, err := NewCluster(0, 1, Config{}); err == nil {
		t.Error("NewCluster(0) succeeded")
	}
}

func BenchmarkLookup(b *testing.B) {
	c, err := NewCluster(128, 1, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Nodes[i%len(c.Nodes)].Lookup(StringID(fmt.Sprintf("key-%d", i)))
	}
}

func BenchmarkPutGet(b *testing.B) {
	c, err := NewCluster(64, 1, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key-%d", i)
		c.Nodes[i%len(c.Nodes)].Put("bench", key, []byte("value"))
		c.Nodes[(i+13)%len(c.Nodes)].Get("bench", key)
	}
}
