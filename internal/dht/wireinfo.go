package dht

import "piersearch/internal/codec"

// Shared wire forms for the DHT identity types, used by both the RPC
// codec in package wire and the engine message codec in package pier so
// the two layers cannot drift apart: an ID travels as its raw 20 bytes, a
// NodeInfo as raw ID plus length-prefixed address.

// AppendWire appends the ID's wire form (raw bytes, no prefix).
func (id ID) AppendWire(dst []byte) []byte { return append(dst, id[:]...) }

// ReadID decodes an ID from r.
func ReadID(r *codec.Reader) ID {
	var id ID
	copy(id[:], r.Take(IDBytes))
	return id
}

// AppendWire appends the contact's wire form.
func (n NodeInfo) AppendWire(dst []byte) []byte {
	dst = n.ID.AppendWire(dst)
	return codec.AppendString(dst, n.Addr)
}

// ReadNodeInfo decodes a contact from r.
func ReadNodeInfo(r *codec.Reader) NodeInfo {
	return NodeInfo{ID: ReadID(r), Addr: r.String()}
}
