// Package dhttest provides a reusable conformance suite for
// dht.ContextTransport implementations. Every in-process transport — the
// zero-latency LocalNetwork, the wall-clock simnet.RealTime, and the
// virtual-time scale.Net — must agree on the same observable contract:
// responses match their requests, sequential calls arrive in order,
// unreachable and detached nodes fail cleanly, canceled contexts abort
// before the handler runs, and concurrent callers do not corrupt each
// other (the suite is expected to run under -race).
//
// A transport plugs in by filling a Harness; the suite drives everything
// else through it. The Run hook exists for transports whose callers must
// be scheduler tasks rather than plain goroutines (virtual time): the
// suite never spawns a goroutine itself, it always hands work to Run.
package dhttest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"piersearch/internal/dht"
)

// Harness adapts one transport implementation to the conformance suite.
// All fields are required.
type Harness struct {
	// Transport is the implementation under test.
	Transport dht.ContextTransport

	// NewNode creates a fresh node, registers it on the transport, and
	// arranges its cleanup. Each call must yield a distinct address.
	NewNode func() *dht.Node

	// Detach makes the node at addr unreachable, modelling an abrupt
	// departure or a closed endpoint. Subsequent calls to it must fail.
	Detach func(addr string)

	// Run executes the given functions to completion, concurrently where
	// the transport allows blocking callers. Wall-clock harnesses run
	// them on goroutines and wait; virtual-time harnesses run them as
	// scheduler tasks under the clock.
	Run func(fns ...func())
}

// RunConformance runs the full suite. mk is invoked once per subtest so
// every case starts from a fresh transport.
func RunConformance(t *testing.T, mk func(t *testing.T) *Harness) {
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, mk(t)) })
	t.Run("SequentialOrdering", func(t *testing.T) { testSequentialOrdering(t, mk(t)) })
	t.Run("UnreachableAddr", func(t *testing.T) { testUnreachableAddr(t, mk(t)) })
	t.Run("DetachedNodeFails", func(t *testing.T) { testDetachedNodeFails(t, mk(t)) })
	t.Run("CanceledContext", func(t *testing.T) { testCanceledContext(t, mk(t)) })
	t.Run("ConcurrentCallers", func(t *testing.T) { testConcurrentCallers(t, mk(t)) })
	t.Run("Join", func(t *testing.T) { testJoin(t, mk(t)) })
	t.Run("IterativeLookup", func(t *testing.T) { testIterativeLookup(t, mk(t)) })
	t.Run("EvictionOnFailure", func(t *testing.T) { testEvictionOnFailure(t, mk(t)) })
	t.Run("DetachedPeerDuringLookup", func(t *testing.T) { testDetachedPeerDuringLookup(t, mk(t)) })
}

func appReq(from *dht.Node, app string, data []byte) *dht.Request {
	return &dht.Request{Kind: dht.RPCApp, From: from.Info(), App: app, Data: data}
}

func testRoundTrip(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	b.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte {
		return append([]byte("re:"), data...)
	})
	var resp *dht.Response
	var err error
	h.Run(func() {
		resp, err = h.Transport.CallContext(context.Background(), b.Info(), appReq(a, "echo", []byte("ping")))
	})
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !resp.OK || string(resp.Data) != "re:ping" {
		t.Fatalf("resp = %+v, want OK echo of %q", resp, "ping")
	}
	if resp.From.ID != b.Info().ID {
		t.Fatalf("response From = %v, want the callee %v", resp.From.ID, b.Info().ID)
	}
}

func testSequentialOrdering(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	var mu sync.Mutex
	var got []byte
	b.RegisterApp("seq", func(_ dht.NodeInfo, data []byte) []byte {
		mu.Lock()
		got = append(got, data[0])
		mu.Unlock()
		return data
	})
	const n = 20
	h.Run(func() {
		for i := 0; i < n; i++ {
			resp, err := h.Transport.CallContext(context.Background(), b.Info(), appReq(a, "seq", []byte{byte(i)}))
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if len(resp.Data) != 1 || resp.Data[0] != byte(i) {
				t.Errorf("call %d: response %v echoes the wrong request", i, resp.Data)
				return
			}
		}
	})
	if len(got) != n {
		t.Fatalf("handler saw %d calls, want %d", len(got), n)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("sequential calls delivered out of order: position %d holds %d", i, v)
		}
	}
}

func testUnreachableAddr(t *testing.T, h *Harness) {
	a := h.NewNode()
	ghost := dht.NodeInfo{ID: dht.NamespacedID("dhttest", "ghost"), Addr: "dhttest-ghost"}
	h.Run(func() {
		if _, err := h.Transport.CallContext(context.Background(), ghost, appReq(a, "echo", nil)); err == nil {
			t.Error("call to an address that never joined succeeded")
		}
	})
}

func testDetachedNodeFails(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	b.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte { return data })
	h.Run(func() {
		if _, err := h.Transport.CallContext(context.Background(), b.Info(), appReq(a, "echo", nil)); err != nil {
			t.Errorf("call before detach: %v", err)
		}
	})
	h.Detach(b.Info().Addr)
	h.Run(func() {
		if _, err := h.Transport.CallContext(context.Background(), b.Info(), appReq(a, "echo", nil)); err == nil {
			t.Error("call to a detached node succeeded")
		}
	})
}

func testCanceledContext(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	var mu sync.Mutex
	handled := 0
	b.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte {
		mu.Lock()
		handled++
		mu.Unlock()
		return data
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.Run(func() {
		_, err := h.Transport.CallContext(ctx, b.Info(), appReq(a, "echo", []byte("x")))
		if err == nil {
			t.Error("call with canceled context succeeded")
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if handled != 0 {
		t.Errorf("handler ran %d times despite a pre-canceled context", handled)
	}
}

func testConcurrentCallers(t *testing.T, h *Harness) {
	const callers, calls = 8, 25
	server := h.NewNode()
	var mu sync.Mutex
	total := 0
	server.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte {
		mu.Lock()
		total++
		mu.Unlock()
		return data
	})
	fns := make([]func(), callers)
	for c := 0; c < callers; c++ {
		caller := h.NewNode()
		c := c
		fns[c] = func() {
			for i := 0; i < calls; i++ {
				payload := []byte(fmt.Sprintf("%d:%d", c, i))
				resp, err := h.Transport.CallContext(context.Background(), server.Info(), appReq(caller, "echo", payload))
				if err != nil {
					t.Errorf("caller %d call %d: %v", c, i, err)
					return
				}
				if string(resp.Data) != string(payload) {
					t.Errorf("caller %d call %d: got %q, want %q (responses crossed)", c, i, resp.Data, payload)
					return
				}
			}
		}
	}
	h.Run(fns...)
	mu.Lock()
	defer mu.Unlock()
	if total != callers*calls {
		t.Fatalf("handler saw %d calls, want %d", total, callers*calls)
	}
}

// buildNetwork joins count-1 nodes through the first and returns all of
// them. Joins run inside h.Run because they issue RPCs.
func buildNetwork(t *testing.T, h *Harness, count int) []*dht.Node {
	t.Helper()
	nodes := make([]*dht.Node, count)
	for i := range nodes {
		nodes[i] = h.NewNode()
	}
	seed := nodes[0].Info()
	h.Run(func() {
		for _, n := range nodes[1:] {
			if err := n.JoinNetwork([]dht.NodeInfo{seed}); err != nil {
				t.Errorf("join %s: %v", n.Info().ID.Short(), err)
				return
			}
		}
	})
	return nodes
}

// testJoin checks the join protocol over the transport: seeds are given by
// address alone (the ping reply supplies the ID), concurrent joiners all
// succeed, and afterwards both sides know each other — joiners via the
// self-lookup, the seed by observing the inbound RPCs.
func testJoin(t *testing.T, h *Harness) {
	seed := h.NewNode()
	joiners := make([]*dht.Node, 4)
	fns := make([]func(), len(joiners))
	for i := range joiners {
		joiners[i] = h.NewNode()
		n := joiners[i]
		fns[i] = func() {
			if err := n.JoinNetwork([]dht.NodeInfo{{Addr: seed.Info().Addr}}); err != nil {
				t.Errorf("join: %v", err)
			}
		}
	}
	h.Run(fns...)
	for _, n := range joiners {
		if n.TableLen() == 0 {
			t.Errorf("joiner %s has an empty routing table after join", n.Info().ID.Short())
		}
	}
	if got := seed.TableLen(); got < len(joiners) {
		t.Errorf("seed knows %d contacts, want at least %d (one per joiner)", got, len(joiners))
	}
}

// testIterativeLookup checks that an iterative FindNode for a live node's
// own ID converges on that node: it is at XOR distance zero from the
// target, so a correct lookup must rank it first.
func testIterativeLookup(t *testing.T, h *Harness) {
	nodes := buildNetwork(t, h, 10)
	origin, target := nodes[1], nodes[len(nodes)-1].Info()
	var got []dht.NodeInfo
	var stats dht.LookupStats
	var err error
	h.Run(func() {
		got, stats, err = origin.Lookup(target.ID)
	})
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("lookup returned no contacts")
	}
	if got[0].ID != target.ID {
		t.Fatalf("lookup of %s ranked %s first; the target itself is distance zero",
			target.ID.Short(), got[0].ID.Short())
	}
	if stats.Hops < 1 || stats.Messages < 1 {
		t.Fatalf("lookup stats %+v claim no work was done", stats)
	}
}

// testEvictionOnFailure checks Kademlia's liveness rule end to end: a
// contact that stops answering is evicted from the routing table when an
// RPC to it fails.
func testEvictionOnFailure(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	if !a.SeedContact(b.Info()) {
		t.Fatal("seeding b into a's table failed")
	}
	h.Detach(b.Info().Addr)
	h.Run(func() {
		// The lookup probes b, the only contact; the failed RPC must evict it.
		a.Lookup(b.Info().ID) //nolint:errcheck // probing a dead peer may error
	})
	if got := a.TableLen(); got != 0 {
		t.Fatalf("table still holds %d contacts after its only peer died", got)
	}
	if ev := a.RoutingStats().Table.Counters.Evictions; ev == 0 {
		t.Fatal("eviction counter did not move")
	}
}

// testDetachedPeerDuringLookup checks that a lookup routes around peers
// that departed abruptly: it still converges on the live target and the
// dead peers are absent from the result.
func testDetachedPeerDuringLookup(t *testing.T, h *Harness) {
	nodes := buildNetwork(t, h, 8)
	dead := map[dht.ID]bool{}
	for _, n := range nodes[2:4] {
		h.Detach(n.Info().Addr)
		dead[n.Info().ID] = true
	}
	origin, target := nodes[1], nodes[len(nodes)-1].Info()
	var got []dht.NodeInfo
	var err error
	h.Run(func() {
		got, _, err = origin.Lookup(target.ID)
	})
	if err != nil {
		t.Fatalf("lookup with detached peers: %v", err)
	}
	if len(got) == 0 || got[0].ID != target.ID {
		t.Fatalf("lookup did not converge on the live target; got %d contacts", len(got))
	}
	for _, c := range got {
		if dead[c.ID] {
			t.Errorf("detached peer %s appears in the lookup result", c.ID.Short())
		}
	}
}
