// Package dhttest provides a reusable conformance suite for
// dht.ContextTransport implementations. Every in-process transport — the
// zero-latency LocalNetwork, the wall-clock simnet.RealTime, and the
// virtual-time scale.Net — must agree on the same observable contract:
// responses match their requests, sequential calls arrive in order,
// unreachable and detached nodes fail cleanly, canceled contexts abort
// before the handler runs, and concurrent callers do not corrupt each
// other (the suite is expected to run under -race).
//
// A transport plugs in by filling a Harness; the suite drives everything
// else through it. The Run hook exists for transports whose callers must
// be scheduler tasks rather than plain goroutines (virtual time): the
// suite never spawns a goroutine itself, it always hands work to Run.
package dhttest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"piersearch/internal/dht"
)

// Harness adapts one transport implementation to the conformance suite.
// All fields are required.
type Harness struct {
	// Transport is the implementation under test.
	Transport dht.ContextTransport

	// NewNode creates a fresh node, registers it on the transport, and
	// arranges its cleanup. Each call must yield a distinct address.
	NewNode func() *dht.Node

	// Detach makes the node at addr unreachable, modelling an abrupt
	// departure or a closed endpoint. Subsequent calls to it must fail.
	Detach func(addr string)

	// Run executes the given functions to completion, concurrently where
	// the transport allows blocking callers. Wall-clock harnesses run
	// them on goroutines and wait; virtual-time harnesses run them as
	// scheduler tasks under the clock.
	Run func(fns ...func())
}

// RunConformance runs the full suite. mk is invoked once per subtest so
// every case starts from a fresh transport.
func RunConformance(t *testing.T, mk func(t *testing.T) *Harness) {
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, mk(t)) })
	t.Run("SequentialOrdering", func(t *testing.T) { testSequentialOrdering(t, mk(t)) })
	t.Run("UnreachableAddr", func(t *testing.T) { testUnreachableAddr(t, mk(t)) })
	t.Run("DetachedNodeFails", func(t *testing.T) { testDetachedNodeFails(t, mk(t)) })
	t.Run("CanceledContext", func(t *testing.T) { testCanceledContext(t, mk(t)) })
	t.Run("ConcurrentCallers", func(t *testing.T) { testConcurrentCallers(t, mk(t)) })
}

func appReq(from *dht.Node, app string, data []byte) *dht.Request {
	return &dht.Request{Kind: dht.RPCApp, From: from.Info(), App: app, Data: data}
}

func testRoundTrip(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	b.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte {
		return append([]byte("re:"), data...)
	})
	var resp *dht.Response
	var err error
	h.Run(func() {
		resp, err = h.Transport.CallContext(context.Background(), b.Info(), appReq(a, "echo", []byte("ping")))
	})
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !resp.OK || string(resp.Data) != "re:ping" {
		t.Fatalf("resp = %+v, want OK echo of %q", resp, "ping")
	}
	if resp.From.ID != b.Info().ID {
		t.Fatalf("response From = %v, want the callee %v", resp.From.ID, b.Info().ID)
	}
}

func testSequentialOrdering(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	var mu sync.Mutex
	var got []byte
	b.RegisterApp("seq", func(_ dht.NodeInfo, data []byte) []byte {
		mu.Lock()
		got = append(got, data[0])
		mu.Unlock()
		return data
	})
	const n = 20
	h.Run(func() {
		for i := 0; i < n; i++ {
			resp, err := h.Transport.CallContext(context.Background(), b.Info(), appReq(a, "seq", []byte{byte(i)}))
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if len(resp.Data) != 1 || resp.Data[0] != byte(i) {
				t.Errorf("call %d: response %v echoes the wrong request", i, resp.Data)
				return
			}
		}
	})
	if len(got) != n {
		t.Fatalf("handler saw %d calls, want %d", len(got), n)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("sequential calls delivered out of order: position %d holds %d", i, v)
		}
	}
}

func testUnreachableAddr(t *testing.T, h *Harness) {
	a := h.NewNode()
	ghost := dht.NodeInfo{ID: dht.NamespacedID("dhttest", "ghost"), Addr: "dhttest-ghost"}
	h.Run(func() {
		if _, err := h.Transport.CallContext(context.Background(), ghost, appReq(a, "echo", nil)); err == nil {
			t.Error("call to an address that never joined succeeded")
		}
	})
}

func testDetachedNodeFails(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	b.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte { return data })
	h.Run(func() {
		if _, err := h.Transport.CallContext(context.Background(), b.Info(), appReq(a, "echo", nil)); err != nil {
			t.Errorf("call before detach: %v", err)
		}
	})
	h.Detach(b.Info().Addr)
	h.Run(func() {
		if _, err := h.Transport.CallContext(context.Background(), b.Info(), appReq(a, "echo", nil)); err == nil {
			t.Error("call to a detached node succeeded")
		}
	})
}

func testCanceledContext(t *testing.T, h *Harness) {
	a, b := h.NewNode(), h.NewNode()
	var mu sync.Mutex
	handled := 0
	b.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte {
		mu.Lock()
		handled++
		mu.Unlock()
		return data
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.Run(func() {
		_, err := h.Transport.CallContext(ctx, b.Info(), appReq(a, "echo", []byte("x")))
		if err == nil {
			t.Error("call with canceled context succeeded")
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if handled != 0 {
		t.Errorf("handler ran %d times despite a pre-canceled context", handled)
	}
}

func testConcurrentCallers(t *testing.T, h *Harness) {
	const callers, calls = 8, 25
	server := h.NewNode()
	var mu sync.Mutex
	total := 0
	server.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte {
		mu.Lock()
		total++
		mu.Unlock()
		return data
	})
	fns := make([]func(), callers)
	for c := 0; c < callers; c++ {
		caller := h.NewNode()
		c := c
		fns[c] = func() {
			for i := 0; i < calls; i++ {
				payload := []byte(fmt.Sprintf("%d:%d", c, i))
				resp, err := h.Transport.CallContext(context.Background(), server.Info(), appReq(caller, "echo", payload))
				if err != nil {
					t.Errorf("caller %d call %d: %v", c, i, err)
					return
				}
				if string(resp.Data) != string(payload) {
					t.Errorf("caller %d call %d: got %q, want %q (responses crossed)", c, i, resp.Data, payload)
					return
				}
			}
		}
	}
	h.Run(fns...)
	mu.Lock()
	defer mu.Unlock()
	if total != callers*calls {
		t.Fatalf("handler saw %d calls, want %d", total, callers*calls)
	}
}
