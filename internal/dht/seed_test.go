package dht

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestSeedContactPopulatesTableWithoutRPCs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewLocalNetwork(1)
	self := NewNode(NodeInfo{ID: SeededID(rng), Addr: "self"}, net, Config{})
	net.Join(self)
	defer self.Close()

	inserted := 0
	for i := 0; i < 64; i++ {
		peer := NodeInfo{ID: SeededID(rng), Addr: fmt.Sprintf("peer-%d", i)}
		if self.SeedContact(peer) {
			inserted++
		}
	}
	if inserted == 0 || self.TableLen() != inserted {
		t.Fatalf("inserted %d contacts, table holds %d", inserted, self.TableLen())
	}
	// Seeding must never ping: none of the peers were joined to the
	// network, so any liveness RPC would have errored and evicted, and the
	// transport would show traffic.
	if s := net.Stats(); s.Messages != 0 {
		t.Fatalf("SeedContact issued %d messages, want 0", s.Messages)
	}
	if self.SeedContact(self.Info()) {
		t.Error("SeedContact accepted the node's own ID")
	}
	if self.SeedContact(NodeInfo{Addr: "zero"}) {
		t.Error("SeedContact accepted a zero ID")
	}
}

func TestRepublishDeterministicOrder(t *testing.T) {
	// Two same-seed clusters republishing the same values must issue the
	// same RPC sequence; with map-ordered keys the traffic counts drift.
	// Alpha is pinned to 1: a single lookup worker probes in a fully
	// deterministic order, which is what makes traffic-count equality a
	// meaningful assertion (the parallel default is schedule-dependent).
	run := func() (int, LookupStats) {
		c, err := NewCluster(24, 42, Config{Alpha: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 40; i++ {
			key := SeededID(rng)
			c.Nodes[0].LocalPut(key, []byte(fmt.Sprintf("v-%d", i)))
		}
		return c.Nodes[0].Republish()
	}
	n1, s1 := run()
	n2, s2 := run()
	if n1 != 40 || n2 != 40 {
		t.Fatalf("republished %d/%d values, want 40", n1, n2)
	}
	if s1 != s2 {
		t.Fatalf("republish traffic differs across identical runs: %+v vs %+v", s1, s2)
	}
}

func TestRepublishVisitsKeysInIDOrder(t *testing.T) {
	c := testCluster(t, 8)
	defer c.Close()
	rng := rand.New(rand.NewSource(23))
	var keys []ID
	for i := 0; i < 16; i++ {
		k := SeededID(rng)
		keys = append(keys, k)
		c.Nodes[0].LocalPut(k, []byte{byte(i)})
	}
	sort.Slice(keys, func(i, j int) bool { return Less(keys[i], keys[j]) })
	n, _ := c.Nodes[0].Republish()
	if n != 16 {
		t.Fatalf("republished %d, want 16", n)
	}
	// Every key must now be resolvable from another node (the re-store
	// actually happened for all of them, whatever the order).
	for _, k := range keys {
		vals, _, err := c.Nodes[5].GetID(k)
		if err != nil || len(vals) == 0 {
			t.Fatalf("key %x unresolvable after republish: %v", k[:4], err)
		}
	}
}
