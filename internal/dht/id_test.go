package dht

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := SeededID(rng), SeededID(rng)
		if Distance(a, a) != (ID{}) {
			t.Fatal("d(a,a) != 0")
		}
		if Distance(a, b) != Distance(b, a) {
			t.Fatal("distance not symmetric")
		}
	}
}

func TestDistanceTriangleProperty(t *testing.T) {
	// XOR metric satisfies d(a,c) <= d(a,b) XOR-combined; the standard
	// Kademlia property is d(a,b) ^ d(b,c) == d(a,c).
	prop := func(a, b, c ID) bool {
		ab, bc, ac := Distance(a, b), Distance(b, c), Distance(a, c)
		for i := range ab {
			if ab[i]^bc[i] != ac[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLessTotalOrder(t *testing.T) {
	a := ID{}
	b := ID{}
	b[IDBytes-1] = 1
	if !Less(a, b) || Less(b, a) || Less(a, a) {
		t.Error("Less is not a strict order on adjacent IDs")
	}
	c := ID{}
	c[0] = 1 // high byte dominates
	if !Less(b, c) {
		t.Error("Less ignored big-endian byte order")
	}
}

func TestBucketIndex(t *testing.T) {
	self := ID{}
	if got := BucketIndex(self, self); got != -1 {
		t.Errorf("BucketIndex(self, self) = %d, want -1", got)
	}
	// Differ only in the lowest bit -> bucket 0.
	other := ID{}
	other[IDBytes-1] = 1
	if got := BucketIndex(self, other); got != 0 {
		t.Errorf("lowest-bit difference -> bucket %d, want 0", got)
	}
	// Differ in the highest bit -> bucket IDBits-1.
	other = ID{}
	other[0] = 0x80
	if got := BucketIndex(self, other); got != IDBits-1 {
		t.Errorf("highest-bit difference -> bucket %d, want %d", got, IDBits-1)
	}
}

func TestBucketIndexRange(t *testing.T) {
	prop := func(a, b ID) bool {
		idx := BucketIndex(a, b)
		if a == b {
			return idx == -1
		}
		return idx >= 0 && idx < IDBits
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNamespacedIDSeparatesNamespaces(t *testing.T) {
	a := NamespacedID("Item", "key")
	b := NamespacedID("Inverted", "key")
	if a == b {
		t.Error("namespaces collide")
	}
	// Prefix ambiguity must not collide: ("ab","c") vs ("a","bc").
	if NamespacedID("ab", "c") == NamespacedID("a", "bc") {
		t.Error("namespace/key boundary ambiguous")
	}
	if NamespacedID("Item", "key") != a {
		t.Error("NamespacedID not deterministic")
	}
}

func TestSeededIDDeterministic(t *testing.T) {
	a := SeededID(rand.New(rand.NewSource(9)))
	b := SeededID(rand.New(rand.NewSource(9)))
	if a != b {
		t.Error("SeededID differs for identical seeds")
	}
}

func TestRandomIDsDistinct(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		id := RandomID()
		if seen[id] {
			t.Fatal("RandomID produced a duplicate")
		}
		seen[id] = true
	}
}

func TestIsZeroAndString(t *testing.T) {
	var z ID
	if !z.IsZero() {
		t.Error("zero ID not IsZero")
	}
	id := StringID("hello")
	if id.IsZero() {
		t.Error("hash of hello is zero")
	}
	if len(id.String()) != 40 || len(id.Short()) != 8 {
		t.Errorf("String/Short lengths = %d/%d", len(id.String()), len(id.Short()))
	}
}

func TestCloserConsistentWithDistance(t *testing.T) {
	prop := func(a, b, target ID) bool {
		got := Closer(a, b, target)
		want := Less(Distance(a, target), Distance(b, target))
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
