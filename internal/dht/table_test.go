package dht

import (
	"fmt"
	"math/rand"
	"testing"
)

func mkInfo(rng *rand.Rand, i int) NodeInfo {
	return NodeInfo{ID: SeededID(rng), Addr: fmt.Sprintf("n%d", i)}
}

func TestTableUpdateAndContains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	self := SeededID(rng)
	tab := NewTable(self, 4)
	n := mkInfo(rng, 0)
	if _, updated := tab.Update(n); !updated {
		t.Fatal("first Update rejected")
	}
	if !tab.Contains(n.ID) {
		t.Fatal("Contains false after Update")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
}

func TestTableNeverStoresSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	self := SeededID(rng)
	tab := NewTable(self, 4)
	if _, updated := tab.Update(NodeInfo{ID: self}); updated {
		t.Error("table stored its own ID")
	}
	if tab.Len() != 0 {
		t.Errorf("Len = %d, want 0", tab.Len())
	}
}

func TestBucketFullReturnsLRUCandidate(t *testing.T) {
	// IDs with low byte 2 and 3 differ from an all-zero self in bit 1, so
	// both land in bucket 1. With k=1 the second insert must be refused
	// and the least-recently-seen contact offered for eviction.
	self := ID{}
	tab := NewTable(self, 1)
	mk := func(low byte, addr string) NodeInfo {
		id := ID{}
		id[IDBytes-1] = low
		return NodeInfo{ID: id, Addr: addr}
	}
	a, b := mk(2, "a"), mk(3, "b")
	if cand, updated := tab.Update(a); cand != nil || !updated {
		t.Fatal("insert into empty bucket failed")
	}
	cand, updated := tab.Update(b)
	if updated {
		t.Fatal("insert into full bucket claimed success")
	}
	if cand == nil || cand.ID != a.ID {
		t.Fatalf("eviction candidate = %v, want a", cand)
	}
	if tab.Contains(b.ID) {
		t.Fatal("full bucket admitted new contact")
	}
	// Refreshing a known contact updates its address without eviction.
	moved := mk(2, "a-moved")
	if cand, updated := tab.Update(moved); cand != nil || !updated {
		t.Fatal("refresh of known contact rejected")
	}
}

func TestEvictMakesRoom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	self := SeededID(rng)
	tab := NewTable(self, 1)
	var full NodeInfo
	var candidate *NodeInfo
	// Insert random nodes until one lands in an occupied bucket.
	for i := 0; i < 1000; i++ {
		n := mkInfo(rng, i)
		cand, updated := tab.Update(n)
		if cand != nil {
			full = n
			candidate = cand
			break
		}
		_ = updated
	}
	if candidate == nil {
		t.Fatal("never saturated a bucket")
	}
	tab.Evict(candidate.ID)
	if tab.Contains(candidate.ID) {
		t.Fatal("Evict left contact in table")
	}
	if _, updated := tab.Update(full); !updated {
		t.Fatal("Update rejected after Evict freed the bucket")
	}
}

func TestClosestOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	self := SeededID(rng)
	tab := NewTable(self, 20)
	for i := 0; i < 200; i++ {
		tab.Update(mkInfo(rng, i))
	}
	target := SeededID(rng)
	got := tab.Closest(target, 10)
	if len(got) != 10 {
		t.Fatalf("Closest returned %d, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if Closer(got[i].ID, got[i-1].ID, target) {
			t.Fatal("Closest not ordered nearest-first")
		}
	}
	// The nearest returned contact must be at least as close as every
	// contact in the table outside the result.
	inResult := map[ID]bool{}
	for _, g := range got {
		inResult[g.ID] = true
	}
	worst := got[len(got)-1]
	for _, c := range tab.Contacts() {
		if inResult[c.ID] {
			continue
		}
		if Closer(c.ID, worst.ID, target) {
			t.Fatal("Closest omitted a nearer contact")
		}
	}
}

func TestClosestFewerThanCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := NewTable(SeededID(rng), 20)
	for i := 0; i < 3; i++ {
		tab.Update(mkInfo(rng, i))
	}
	if got := tab.Closest(SeededID(rng), 10); len(got) != 3 {
		t.Errorf("Closest returned %d, want all 3", len(got))
	}
}

func TestNewTablePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable(_, 0) did not panic")
		}
	}()
	NewTable(ID{}, 0)
}
