package dht

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestJanitorReclaimsExpired pins the background soft-state sweep: TTL'd
// values must disappear from the store without any Get touching their
// keys — the reclamation long-running deployments rely on.
func TestJanitorReclaimsExpired(t *testing.T) {
	var now atomic.Int64
	cfg := Config{
		TTL:   time.Second,
		Clock: func() time.Duration { return time.Duration(now.Load()) },
	}
	net := NewLocalNetwork(1)
	node := NewNode(NodeInfo{ID: StringID("n"), Addr: "a"}, net, cfg)
	net.Join(node)

	for i := 0; i < 20; i++ {
		node.LocalPut(StringID(fmt.Sprintf("k%d", i)), []byte("payload"))
	}
	if _, values, _ := node.StoreStats(); values != 20 {
		t.Fatalf("seeded %d values", values)
	}

	stop := node.StartJanitor(time.Millisecond)
	defer stop()

	// Values live while the virtual clock stands still.
	time.Sleep(20 * time.Millisecond)
	if _, values, _ := node.StoreStats(); values != 20 {
		t.Fatalf("janitor removed live values: %d left", values)
	}

	// Advance past the TTL; the janitor must reclaim everything without
	// any Get calls.
	now.Store(int64(2 * time.Second))
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, values, bytes := node.StoreStats()
		if values == 0 && bytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor left %d values / %d bytes", values, bytes)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJanitorStopIdempotent(t *testing.T) {
	net := NewLocalNetwork(1)
	node := NewNode(NodeInfo{ID: StringID("n"), Addr: "a"}, net, Config{})
	stop := node.StartJanitor(time.Millisecond)
	stop()
	stop() // second call must not panic or block
}

func TestExpireNow(t *testing.T) {
	var now atomic.Int64
	cfg := Config{
		TTL:   time.Second,
		Clock: func() time.Duration { return time.Duration(now.Load()) },
	}
	net := NewLocalNetwork(1)
	node := NewNode(NodeInfo{ID: StringID("n"), Addr: "a"}, net, cfg)
	node.LocalPut(StringID("k"), []byte("v"))
	if removed := node.ExpireNow(); removed != 0 {
		t.Fatalf("ExpireNow removed %d live values", removed)
	}
	now.Store(int64(5 * time.Second))
	if removed := node.ExpireNow(); removed != 1 {
		t.Fatalf("ExpireNow removed %d, want 1", removed)
	}
}

// TestJanitorStatsExposeReclaimCount pins that sweep results are counted
// and logged instead of discarded: JanitorStats must report the entries
// reclaimed by both the ticker and explicit ExpireNow calls, and
// Config.Logf must see nonzero sweeps.
func TestJanitorStatsExposeReclaimCount(t *testing.T) {
	var now atomic.Int64
	var logged atomic.Int64
	cfg := Config{
		TTL:   time.Second,
		Clock: func() time.Duration { return time.Duration(now.Load()) },
		Logf:  func(string, ...any) { logged.Add(1) },
	}
	net := NewLocalNetwork(1)
	node := NewNode(NodeInfo{ID: StringID("n"), Addr: "a"}, net, cfg)
	net.Join(node)

	for i := 0; i < 7; i++ {
		node.LocalPut(StringID(fmt.Sprintf("k%d", i)), []byte("payload"))
	}
	now.Store(int64(2 * time.Second))
	if removed := node.ExpireNow(); removed != 7 {
		t.Fatalf("ExpireNow removed %d, want 7", removed)
	}
	if js := node.JanitorStats(); js.Reclaimed != 7 {
		t.Fatalf("JanitorStats.Reclaimed = %d, want 7", js.Reclaimed)
	}

	// The ticker path accumulates on top and logs its sweeps.
	for i := 0; i < 5; i++ {
		node.LocalPut(StringID(fmt.Sprintf("t%d", i)), []byte("payload"))
	}
	now.Store(int64(4 * time.Second))
	stop := node.StartJanitor(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		js := node.JanitorStats()
		if js.Reclaimed == 12 && js.Sweeps > 0 && logged.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor stats stuck at %+v (%d log lines)", js, logged.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestNodeStorageInjection pins the Config.NewStorage seam: a node built
// with a custom factory routes every local operation through it, and
// Close closes it exactly once.
func TestNodeStorageInjection(t *testing.T) {
	custom := NewStore()
	cfg := Config{NewStorage: func(NodeInfo) (Storage, error) { return custom, nil }}
	net := NewLocalNetwork(1)
	node := NewNode(NodeInfo{ID: StringID("n"), Addr: "a"}, net, cfg)
	net.Join(node)

	if node.Storage() != Storage(custom) {
		t.Fatal("node did not adopt the injected storage")
	}
	node.LocalPut(StringID("k"), []byte("v"))
	if got := custom.Get(StringID("k"), 0); len(got) != 1 {
		t.Fatalf("injected store missed the put: %v", got)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

// TestStoreShardsIndependent verifies the sweep and concurrent access
// cross shard boundaries correctly: keys landing in different buckets are
// all visible, counted, and expired.
func TestStoreShardsIndependent(t *testing.T) {
	s := NewStore()
	perShard := 4
	total := storeShards * perShard
	i := 0
	for b := 0; b < storeShards; b++ {
		for k := 0; k < perShard; k++ {
			var id ID
			id[0] = byte(b) // direct shard placement
			id[1] = byte(k)
			s.Put(id, StoredValue{Data: []byte{byte(i)}, Publisher: StringID("p"), TTL: time.Second})
			i++
		}
	}
	if s.Len() != total || s.ValueCount() != total {
		t.Fatalf("Len/ValueCount = %d/%d, want %d", s.Len(), s.ValueCount(), total)
	}
	if got := len(s.Keys()); got != total {
		t.Fatalf("Keys = %d", got)
	}
	if removed := s.Expire(2 * time.Second); removed != total {
		t.Fatalf("Expire removed %d, want %d", removed, total)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("post-sweep Len/Bytes = %d/%d", s.Len(), s.Bytes())
	}
}

// TestStoreShardedConcurrency hammers all shards from many goroutines
// under -race: puts, gets, sweeps, and stats must not interfere.
func TestStoreShardedConcurrency(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var id ID
				id[0] = byte(i)
				id[1] = byte(w)
				s.Put(id, StoredValue{Data: []byte("x"), Publisher: StringID(fmt.Sprint(w))})
				s.Get(id, 0)
				if i%50 == 0 {
					s.Expire(0)
					s.Bytes()
					s.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if s.ValueCount() == 0 {
		t.Fatal("store empty after concurrent writes")
	}
}
