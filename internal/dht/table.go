package dht

import (
	"sort"
	"sync"
)

// NodeInfo identifies a DHT participant: its identifier plus a
// transport-specific address.
type NodeInfo struct {
	ID   ID
	Addr string
}

// bucket is one k-bucket: contacts ordered least-recently-seen first, as in
// the Kademlia paper, so stale contacts are evicted before fresh ones.
type bucket struct {
	entries []NodeInfo
}

func (b *bucket) indexOf(id ID) int {
	for i, e := range b.entries {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// Table is a Kademlia routing table: IDBits k-buckets keyed by shared-prefix
// length with the owner. It is safe for concurrent use: parallel lookups and
// RPC handlers observe contacts from many goroutines at once.
type Table struct {
	self ID
	k    int

	mu      sync.Mutex
	buckets [IDBits]bucket
}

// NewTable creates a routing table for the node with identifier self and
// bucket capacity k.
func NewTable(self ID, k int) *Table {
	if k <= 0 {
		panic("dht: bucket size must be positive")
	}
	return &Table{self: self, k: k}
}

// Self returns the owner's identifier.
func (t *Table) Self() ID { return t.self }

// K returns the bucket capacity.
func (t *Table) K() int { return t.k }

// Update records contact with n. Known contacts move to the tail
// (most-recently-seen); new contacts are appended if the bucket has room.
// When a bucket is full the new contact is dropped and the least-recently
// seen entry is returned so the caller may ping it and call Evict if it is
// dead — Kademlia's liveness check. The second result reports whether the
// table changed.
func (t *Table) Update(n NodeInfo) (evictCandidate *NodeInfo, updated bool) {
	idx := BucketIndex(t.self, n.ID)
	if idx < 0 {
		return nil, false // never store ourselves
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[idx]
	if i := b.indexOf(n.ID); i >= 0 {
		// Move to tail, refreshing the address in case it changed.
		copy(b.entries[i:], b.entries[i+1:])
		b.entries[len(b.entries)-1] = n
		return nil, true
	}
	if len(b.entries) < t.k {
		b.entries = append(b.entries, n)
		return nil, true
	}
	lru := b.entries[0]
	return &lru, false
}

// Evict removes id if present, making room for fresher contacts.
func (t *Table) Evict(id ID) {
	idx := BucketIndex(t.self, id)
	if idx < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[idx]
	if i := b.indexOf(id); i >= 0 {
		b.entries = append(b.entries[:i], b.entries[i+1:]...)
	}
}

// Contains reports whether id is in the table.
func (t *Table) Contains(id ID) bool {
	idx := BucketIndex(t.self, id)
	if idx < 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buckets[idx].indexOf(id) >= 0
}

// Len returns the total number of contacts.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lenLocked()
}

func (t *Table) lenLocked() int {
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i].entries)
	}
	return n
}

// Closest returns up to count contacts closest to target under XOR,
// ordered nearest first.
func (t *Table) Closest(target ID, count int) []NodeInfo {
	all := t.Contacts()
	sort.Slice(all, func(i, j int) bool {
		return Closer(all[i].ID, all[j].ID, target)
	})
	if len(all) > count {
		all = all[:count]
	}
	return all
}

// Contacts returns a copy of every contact in the table.
func (t *Table) Contacts() []NodeInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	all := make([]NodeInfo, 0, t.lenLocked())
	for i := range t.buckets {
		all = append(all, t.buckets[i].entries...)
	}
	return all
}

// sortByDistance orders infos in place, nearest to target first, and
// returns the slice for convenience.
func sortByDistance(infos []NodeInfo, target ID) []NodeInfo {
	sort.Slice(infos, func(i, j int) bool {
		return Closer(infos[i].ID, infos[j].ID, target)
	})
	return infos
}
