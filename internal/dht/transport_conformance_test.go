package dht_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"piersearch/internal/dht"
	"piersearch/internal/dht/dhttest"
)

// goroutineRunner runs the suite's workloads on plain goroutines — the
// right shape for wall-clock transports whose callers may block.
func goroutineRunner(fns ...func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}

func TestLocalNetworkConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) *dhttest.Harness {
		net := dht.NewLocalNetwork(1)
		rng := rand.New(rand.NewSource(7))
		next := 0
		return &dhttest.Harness{
			Transport: net,
			NewNode: func() *dht.Node {
				n := dht.NewNode(dht.NodeInfo{ID: dht.SeededID(rng), Addr: fmt.Sprintf("local-%d", next)}, net, dht.Config{})
				next++
				net.Join(n)
				t.Cleanup(func() { n.Close() }) //nolint:errcheck // test teardown
				return n
			},
			Detach: net.Remove,
			Run:    goroutineRunner,
		}
	})
}
