// Package linttest runs piervet analyzers over fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixtures
// live in GOPATH-shaped trees under testdata/src, and expected
// diagnostics are written next to the offending line as
//
//	bad() // want `regexp matching the message`
//
// Every reported diagnostic must match a want comment on its exact
// line, and every want comment must be matched by a diagnostic;
// anything unmatched in either direction fails the test. lint:allow
// suppression runs before matching, so a fixture line carrying both a
// violation and a reasoned allow directive proves the escape hatch by
// expecting nothing.
package linttest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"piersearch/internal/lint/analysis"
	"piersearch/internal/lint/load"
)

// Run loads each fixture package (an import path under
// testdata/src) with the shared overlay loader, applies the analyzer,
// filters suppressed diagnostics, and matches the rest against want
// comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, fixturePkgs ...string) {
	t.Helper()
	l := &load.Loader{OverlayRoot: srcRoot}
	for _, path := range fixturePkgs {
		pkg, err := l.LoadOne(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		runOne(t, l, a, pkg)
	}
}

func runOne(t *testing.T, l *load.Loader, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	fset := l.Fset()

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed on %s: %v", a.Name, pkg.ImportPath, err)
	}

	allows := analysis.ParseAllows(fset, pkg.Files)
	wants := collectWants(t, fset, pkg)

	for _, d := range diags {
		if allows.Suppressed(fset, a.Name, d.Pos) {
			continue
		}
		pos := fset.Position(d.Pos)
		key := posKey{pos.Filename, pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w.used || !w.re.MatchString(d.Message) {
				continue
			}
			wants[key][i].used = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", a.Name, w.re.String(), key.file, key.line)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("// want `([^`]*)`")

func collectWants(t *testing.T, fset *token.FileSet, pkg *load.Package) map[posKey][]want {
	t.Helper()
	wants := map[posKey][]want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := fset.Position(c.Pos())
					key := posKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}

// MustClean is a helper for analyzer self-tests on real repo
// packages: it fails if the analyzer reports anything not covered by
// a lint:allow directive.
func MustClean(t *testing.T, a *analysis.Analyzer, modDir string, patterns ...string) {
	t.Helper()
	l := &load.Loader{ModDir: modDir}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", strings.Join(patterns, " "), err)
	}
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.Fset(),
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		allows := analysis.ParseAllows(l.Fset(), pkg.Files)
		for _, d := range diags {
			if allows.Suppressed(l.Fset(), a.Name, d.Pos) {
				continue
			}
			p := l.Fset().Position(d.Pos)
			t.Errorf("%s: %s: %s", a.Name, fmt.Sprintf("%s:%d", p.Filename, p.Line), d.Message)
		}
	}
}
