package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive is
//
//	//lint:allow <analyzer> <reason>
//
// and silences diagnostics from exactly one analyzer, on exactly one
// line: the directive's own line when it trails code, or the next
// line when the comment stands alone. The reason is mandatory — a
// bare "//lint:allow ctxflow" suppresses nothing, so every escape
// hatch in the tree carries its justification next to it.

const allowPrefix = "//lint:allow "

// An AllowSet records which (file line, analyzer) pairs carry a valid
// suppression directive.
type AllowSet struct {
	byLine map[allowKey]bool
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// ParseAllows scans the comments of files for lint:allow directives.
func ParseAllows(fset *token.FileSet, files []*ast.File) *AllowSet {
	s := &AllowSet{byLine: map[allowKey]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					// Reasonless directive: deliberately inert.
					continue
				}
				pos := fset.Position(c.Pos())
				// A trailing directive guards its own line; a
				// standalone one guards the line below it.
				s.byLine[allowKey{pos.Filename, pos.Line, name}] = true
				s.byLine[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by a directive.
func (s *AllowSet) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	if s == nil {
		return false
	}
	p := fset.Position(pos)
	return s.byLine[allowKey{p.Filename, p.Line, analyzer}]
}
