// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis driver surface. The build
// environment vendors no third-party modules, so piervet's analyzers
// are written against this API instead; it mirrors the upstream shape
// (Analyzer, Pass, Diagnostic) closely enough that migrating to the
// real framework is a mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: a named invariant plus the
// function that checks a single package for violations of it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name> <reason>" suppression directives.
	Name string

	// Doc is a one-paragraph summary; the full specification lives in
	// the analyzer package's doc.go.
	Doc string

	// Run checks one package. Diagnostics are delivered through
	// pass.Report; the error return is for operational failures only
	// (a broken pass, not a finding).
	Run func(pass *Pass) error
}

// A Pass presents one package to an Analyzer. It carries the parsed
// syntax, the type-checked package, and the reporting sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns filtering
	// (lint:allow suppression) and formatting.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. The analyzer
// name is attached by the driver.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Preorder calls fn for every node in every file of the pass, in
// depth-first preorder — the subset of x/tools' inspect pass the
// piervet analyzers need.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}
