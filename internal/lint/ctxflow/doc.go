// Package ctxflow checks the cancellation-threading invariant.
//
// # Invariant
//
// Every operation under internal/ runs beneath the context its caller
// handed it. PR 3 threaded context.Context end to end so that a
// canceled query aborts in-flight dials, RPCs, and chain waits; a
// stray context.Background() or context.TODO() quietly detaches its
// subtree from that graph, and the leak only shows up as goroutines
// and RPCs that outlive their query under churn.
//
// # What it reports
//
// Any call to context.Background or context.TODO in a package whose
// import path contains an "internal" element, except:
//
//   - legacy-wrapper shims: a function whose entire body is a single
//     statement delegating to a function or method whose name ends in
//     "Context" or "Ctx". These are the documented pre-PR-3
//     compatibility surface (Engine.Publish → Engine.PublishContext,
//     Node.Lookup → Node.LookupContext, transport Call →
//     CallContext); the Background there is the shim's entire point.
//   - test-harness packages whose package name ends in "test"
//     (dhttest, linttest): they drive APIs from scratch and mint root
//     contexts by design.
//
// # Suppressing
//
// A genuine root — a place where no caller context can exist, such as
// a connection-lifetime context in the daemon's accept path or a
// background maintenance loop — is annotated in place:
//
//	ctx, cancel := context.WithCancel(context.Background()) //lint:allow ctxflow stream outlives the accept ctx; watcher cancels on conn death
//
// The reason is mandatory and should say why no caller ctx applies.
package ctxflow
