package ctxflow_test

import (
	"testing"

	"piersearch/internal/lint/ctxflow"
	"piersearch/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata/src", ctxflow.Analyzer,
		"p/internal/a",
		"p/internal/harnesstest",
		"p/external/b",
	)
}
