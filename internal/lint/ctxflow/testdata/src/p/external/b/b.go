// Package b sits outside any internal/ element, so ctxflow does not
// apply: binaries and examples are allowed to mint root contexts.
package b

import "context"

func Root() context.Context { return context.Background() }
