package a

import "context"

type Engine struct{}

func (e *Engine) PublishContext(ctx context.Context, s string) error { return nil }

func (e *Engine) forEachCtx(ctx context.Context, n int) {}

// Publish is a legacy wrapper: single-statement delegation to the
// *Context variant is the documented shim shape and is exempt.
func (e *Engine) Publish(s string) error {
	return e.PublishContext(context.Background(), s)
}

// ForEach delegates to a *Ctx-suffixed helper; also exempt.
func (e *Engine) ForEach(n int) {
	e.forEachCtx(context.Background(), n)
}

// Leak mints a root context mid-pipeline: flagged.
func (e *Engine) Leak(s string) error {
	ctx := context.Background() // want `context.Background\(\) severs cancellation`
	return e.PublishContext(ctx, s)
}

// TodoLeak uses TODO outside the wrapper shape (two statements):
// flagged.
func (e *Engine) TodoLeak(s string) error {
	ctx := context.TODO() // want `context.TODO\(\) severs cancellation`
	return e.PublishContext(ctx, s)
}

// NotAWrapper has more than one statement, so its Background is not
// shim-shaped even though it delegates to a *Context method.
func (e *Engine) NotAWrapper(s string) error {
	if s == "" {
		return nil
	}
	return e.PublishContext(context.Background(), s) // want `context.Background\(\) severs cancellation`
}

// Rooted is a documented root: the reasoned allow directive
// suppresses the diagnostic.
func (e *Engine) Rooted(s string) error {
	ctx := context.Background() //lint:allow ctxflow maintenance loop has no caller ctx
	return e.PublishContext(ctx, s)
}

// BareAllow carries a directive with no reason, which is inert: the
// diagnostic still fires.
func (e *Engine) BareAllow(s string) error {
	//lint:allow ctxflow
	ctx := context.Background() // want `context.Background\(\) severs cancellation`
	return e.PublishContext(ctx, s)
}
