// Package harnesstest has a package name ending in "test": a test
// harness, exempt from ctxflow wholesale.
package harnesstest

import "context"

func Drive(fn func(context.Context)) {
	fn(context.Background())
	fn(context.TODO())
}
