package ctxflow

import (
	"go/ast"
	"strings"

	"piersearch/internal/lint/analysis"
	"piersearch/internal/lint/lintutil"
)

// Analyzer bans context.Background and context.TODO inside internal/
// packages, except in legacy-wrapper shims.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background()/context.TODO() sever the cancellation graph; internal/ code must thread the caller's ctx (legacy single-statement wrappers delegating to a *Context/*Ctx variant are exempt)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !lintutil.PkgPathContains(path, "internal") {
		return nil
	}
	// Test-harness packages (dhttest, linttest, …) drive APIs from
	// scratch and legitimately mint root contexts.
	if strings.HasSuffix(pass.Pkg.Name(), "test") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd)
			return false
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	wrapper := isLegacyWrapper(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := lintutil.CalleeOf(pass.TypesInfo, call)
		if !ok || callee.PkgPath != "context" || callee.RecvType != "" {
			return true
		}
		if callee.Name != "Background" && callee.Name != "TODO" {
			return true
		}
		if wrapper {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() severs cancellation inside %s; thread the caller's ctx, or suppress a documented root with //lint:allow ctxflow <reason>",
			callee.Name, fd.Name.Name)
		return true
	})
}

// isLegacyWrapper reports whether fd is a documented compatibility
// shim: a function whose body is exactly one statement delegating to
// a function or method whose name ends in "Context" or "Ctx" — the
// pre-PR-3 API surface kept alive for callers that predate ctx
// threading.
func isLegacyWrapper(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(s.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return strings.HasSuffix(name, "Context") || strings.HasSuffix(name, "Ctx")
}
