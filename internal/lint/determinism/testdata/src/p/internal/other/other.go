package other

import "time"

// Outside the clock-scoped packages the wall clock is legal…
func Uptime(start time.Time) time.Duration { return time.Since(start) }

// …but encode-shaped functions still must not range maps.
func EncodeHeaders(dst []byte, h map[string]string) []byte {
	for k, v := range h { // want `map iteration order is randomized per run`
		dst = append(dst, k...)
		dst = append(dst, v...)
	}
	return dst
}

// collect is not encode-shaped: map ranging is fine here.
func collect(h map[string]string) int {
	n := 0
	for range h {
		n++
	}
	return n
}
