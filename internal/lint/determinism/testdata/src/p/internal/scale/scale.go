package scale

import (
	"math/rand"
	"time"
)

type Clock struct{ now int64 }

func (c *Clock) Now() int64 { return c.now }

// Step observes the virtual clock: fine.
func Step(c *Clock) int64 { return c.Now() }

// WallClock reads the machine clock inside the harness: flagged.
func WallClock() time.Time {
	return time.Now() // want `wall clock leaks into a deterministic package`
}

// Nap sleeps on the wall clock: flagged.
func Nap() {
	time.Sleep(time.Millisecond) // want `time\.Sleep breaks virtual-time replay`
}

// Elapsed uses time.Since (a hidden Now): flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since breaks virtual-time replay`
}

// GlobalRand draws from the process-global source: flagged.
func GlobalRand() int {
	return rand.Intn(10) // want `global math/rand source is unseedable`
}

// SeededRand draws from a threaded, seeded generator: fine.
func SeededRand(rng *rand.Rand) int {
	return rng.Intn(10)
}

// BuildRand constructs the seeded generator — the prescribed remedy,
// never flagged even though New/NewSource are package-level.
func BuildRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// JitterAllowed documents a deliberate wall-clock read.
func JitterAllowed() time.Time {
	return time.Now() //lint:allow determinism startup banner only, never reaches the replay
}

// EncodeSet ranges a map while producing output bytes: flagged.
func EncodeSet(dst []byte, set map[string]bool) []byte {
	for k := range set { // want `map iteration order is randomized per run`
		dst = append(dst, k...)
	}
	return dst
}

// EncodeSorted drains the map into a slice first: fine (the range
// over the slice is ordered).
func EncodeSorted(dst []byte, keys []string) []byte {
	for _, k := range keys {
		dst = append(dst, k...)
	}
	return dst
}

// EncodeCollectSort gathers map keys for sorting — the first half of
// the prescribed remedy, not flagged even inside an encode function.
func EncodeCollectSort(dst []byte, set map[string]bool) []byte {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return EncodeSorted(dst, keys)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// gatherStats ranges a map outside any encode-shaped function: fine
// in scale, where aggregation is order-insensitive.
func gatherStats(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
