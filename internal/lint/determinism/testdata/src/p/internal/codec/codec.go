package codec

// writeTable is not encode-named, but lives in internal/codec where
// every function is an output path: still flagged.
func writeTable(dst []byte, m map[uint64][]byte) []byte {
	for _, v := range m { // want `map iteration order is randomized per run`
		dst = append(dst, v...)
	}
	return dst
}
