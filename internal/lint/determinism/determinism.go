package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"piersearch/internal/lint/analysis"
	"piersearch/internal/lint/lintutil"
)

// Analyzer enforces the virtual-time and byte-identical-output
// contracts: no wall clocks or global randomness in the replay and
// codec packages, and no map-iteration-ordered encoding anywhere.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "bans time.Now/time.Sleep and global math/rand in internal/scale and internal/codec, and map iteration in encode paths everywhere — the byte-identical BENCH_scale.json contract depends on it",
	Run:  run,
}

// clockScoped lists the package-path suffixes where the wall-clock
// and global-rand bans apply: the virtual-time harness (every
// observable instant must come from the event clock) and the codec
// (pure functions of their input, no environmental state).
var clockScoped = []string{"internal/scale", "internal/codec"}

// bannedTime is the wall-clock surface of package time. Timers and
// tickers are included: each one is a hidden wall-clock read.
var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "Since": true, "Until": true,
}

// encodePrefixes are the function-name shapes treated as wire/encode
// paths for the map-iteration rule.
var encodePrefixes = []string{"Encode", "encode", "Append", "append", "Marshal", "marshal", "WireSize", "wireSize"}

// randConstructors build an explicitly-seeded generator rather than
// drawing from the global source — they are the remedy the ban points
// at, not a violation of it.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	inClockScope := false
	for _, s := range clockScoped {
		if lintutil.PkgPathHasSuffix(path, s) || strings.Contains(path, "/"+s+"/") {
			inClockScope = true
		}
	}
	inEncodeScope := lintutil.PkgPathContains(path, "internal")
	// Map-range order only corrupts output when the iteration feeds
	// an encoder: the rule binds to encode-shaped functions anywhere
	// under internal/, and to every function of the codec package,
	// whose entire job is wire output.
	isCodec := lintutil.PkgPathHasSuffix(path, "internal/codec")

	lintutil.FuncBodies(pass.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		if decl == nil {
			return // literals are covered while walking their enclosing decl
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if inClockScope {
					checkCall(pass, n)
				}
			case *ast.RangeStmt:
				if inEncodeScope && (isCodec || isEncodeFunc(name)) {
					checkRange(pass, n)
				}
			}
			return true
		})
	})
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	callee, ok := lintutil.CalleeOf(pass.TypesInfo, call)
	if !ok || callee.RecvType != "" {
		return
	}
	switch callee.PkgPath {
	case "time":
		if bannedTime[callee.Name] {
			pass.Reportf(call.Pos(),
				"wall clock leaks into a deterministic package: time.%s breaks virtual-time replay; take the instant from the event clock instead",
				callee.Name)
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the process-global,
		// randomly-seeded source. Methods on a seeded *rand.Rand have
		// RecvType "Rand" and fall through, and the constructors that
		// build such a generator are exactly what the fix looks like.
		if randConstructors[callee.Name] {
			return
		}
		pass.Reportf(call.Pos(),
			"global math/rand source is unseedable and nondeterministic: %s.%s breaks replayability; draw from a seeded *rand.Rand",
			callee.PkgPath, callee.Name)
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isKeyCollection(rng) {
		// `for k := range m { keys = append(keys, k) }` is the first
		// half of the prescribed collect-and-sort remedy; the slice,
		// not the map order, reaches the encoder.
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is randomized per run: ranging over %s in an encode path cannot produce byte-identical output; collect and sort the keys first",
		lintutil.ExprString(rng.X))
}

// isKeyCollection reports whether the range body is exactly
// `x = append(x, k)` with k the range key: gathering keys to sort,
// not emitting output in map order.
func isKeyCollection(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		// append(dst, k...) spreads the key's bytes into output — that
		// is emission in map order, not collection.
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

func isEncodeFunc(name string) bool {
	for _, p := range encodePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
