// Package determinism checks the replay-determinism invariant.
//
// # Invariant
//
// PR 6's scale harness replays 10k–100k node clusters on an
// event-driven virtual clock and commits a BENCH_scale.json whose
// bytes must be identical across runs — CI diffs it to gate schema
// drift and perf regressions. That contract, and the codec's
// byte-identical plan-vs-legacy equivalence from PR 3, survive only
// if nothing in those paths observes the environment:
//
//   - No wall clocks in internal/scale or internal/codec: time.Now,
//     time.Sleep, time.Since, time.After, timers and tickers all read
//     the machine clock. The harness takes every instant from
//     scale.Clock; the codec is a pure function of its input.
//   - No global math/rand anywhere the rule is scoped: the package
//     -level source is seeded randomly at process start (and
//     rand.Seed is gone), so rand.Intn in a replay path makes two
//     runs diverge. Deterministic code draws from a seeded
//     *rand.Rand threaded through it — methods on *rand.Rand are
//     exempt.
//   - No map iteration in encode paths, repo-wide: Go randomizes map
//     order per run, so ranging over a map while producing wire bytes
//     or persisted output (functions named Encode*/Append*/Marshal*/
//     WireSize*, and everything in internal/codec) cannot produce
//     byte-identical frames. Collect the keys, sort, then emit.
//
// # Suppressing
//
// Rare legitimate escapes (e.g. an encode helper ranging a map to
// compute an order-insensitive checksum) are annotated in place:
//
//	for k := range set { //lint:allow determinism xor-fold is order-insensitive
//
// The reason must say why order or wall time cannot reach the output.
package determinism
