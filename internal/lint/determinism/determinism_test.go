package determinism_test

import (
	"testing"

	"piersearch/internal/lint/determinism"
	"piersearch/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/src", determinism.Analyzer,
		"p/internal/scale",
		"p/internal/codec",
		"p/internal/other",
	)
}
