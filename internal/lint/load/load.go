// Package load turns package patterns into parsed, type-checked
// packages for the piervet analyzers. It is a small offline
// replacement for golang.org/x/tools/go/packages: package metadata
// comes from `go list -json -deps` and types come from checking
// source bottom-up with go/types, so it needs nothing beyond the Go
// toolchain already in the build image.
//
// Two resolution modes share one code path:
//
//   - Module mode (cmd/piervet): patterns are resolved in a module
//     directory; the dependency closure — standard library included —
//     is listed once and type-checked from source.
//   - Overlay mode (linttest fixtures): an overlay root maps import
//     paths to GOPATH-style fixture directories (root/<import/path>),
//     and anything not in the overlay falls through to `go list`,
//     so fixtures can stub repo packages like
//     piersearch/internal/telemetry while importing the real standard
//     library.
//
// CGO is disabled for listing so cgo-capable packages (net, os/user)
// resolve to their pure-Go file sets, which go/types can check
// without a C preprocessor.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	// TypeErrors holds soft type-check failures. Analysis proceeds on
	// a package with type errors (piervet must not hard-fail on code
	// the compiler already rejects more legibly), but the driver
	// surfaces them in verbose mode.
	TypeErrors []error
}

// A Loader resolves, parses, and type-checks packages. It caches
// type-checked packages, so one Loader amortizes the standard-library
// closure across many targets.
type Loader struct {
	// ModDir is the module directory `go list` runs in. Defaults to
	// the current directory.
	ModDir string

	// OverlayRoot, when set, is a GOPATH-src-style directory searched
	// before `go list`: import path p resolves to OverlayRoot/p if
	// that directory holds Go files.
	OverlayRoot string

	fset   *token.FileSet
	listed map[string]*listPkg
	byPath map[string]*types.Package
	parsed map[string][]*ast.File
	errs   map[string][]error
	infos  map[string]*types.Info
}

type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// Fset returns the loader's file set (shared by every package it
// loads).
func (l *Loader) Fset() *token.FileSet {
	l.init()
	return l.fset
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.listed = map[string]*listPkg{}
		l.byPath = map[string]*types.Package{}
		l.parsed = map[string][]*ast.File{}
		l.errs = map[string][]error{}
		l.infos = map[string]*types.Info{}
	}
}

// Load resolves patterns (as the go command would) and returns the
// matched packages, parsed and type-checked. Standard-library
// dependencies are checked but not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	targets, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range targets {
		p, err := l.LoadOne(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadOne loads a single package by import path, resolving the
// overlay first in overlay mode.
func (l *Loader) LoadOne(path string) (*Package, error) {
	l.init()
	tp, err := l.check(path, true)
	if err != nil {
		return nil, err
	}
	lp := l.listed[path]
	dir := ""
	if lp != nil {
		dir = lp.Dir
	}
	info := l.infoFor(path)
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Files:      l.parsed[path],
		Pkg:        tp,
		TypesInfo:  info,
		TypeErrors: l.errs[path],
	}, nil
}

// list runs `go list -deps` over patterns, records every package in
// the closure, and returns the import paths of the pattern matches
// themselves in listing order.
func (l *Loader) list(patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		q := p
		if _, ok := l.listed[p.ImportPath]; !ok {
			l.listed[p.ImportPath] = &q
		}
		if !p.DepOnly {
			targets = append(targets, p.ImportPath)
		}
	}
	sort.Strings(targets)
	return targets, nil
}

// newInfo allocates the types.Info layout kept for target packages;
// dependencies are checked without Info to keep memory flat.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func (l *Loader) infoFor(path string) *types.Info { return l.infos[path] }

// Import implements types.Importer for dependency resolution during
// checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.check(path, false)
}

// check type-checks path (memoized). Target packages keep full
// types.Info and parsed files; dependencies keep only the
// *types.Package.
func (l *Loader) check(path string, target bool) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.byPath[path]; ok {
		if target && l.infos[path] == nil {
			// Previously loaded as a bare dependency; re-check with
			// Info so the analyzers get type facts.
			delete(l.byPath, path)
		} else {
			return p, nil
		}
	}
	dir, files, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	var info *types.Info
	if target {
		info = newInfo()
		l.infos[path] = info
	}
	var softErrs []error
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error:            func(err error) { softErrs = append(softErrs, err) },
	}
	tp, err := conf.Check(path, l.fset, parsed, info)
	if tp == nil {
		return nil, err
	}
	l.byPath[path] = tp
	l.parsed[path] = parsed
	l.errs[path] = softErrs
	return tp, nil
}

// resolve maps an import path to a directory and file list: overlay
// first, then the `go list` closure (with the standard library's
// vendored golang.org/x/... mapping), then a last-resort single
// `go list` for paths outside the recorded closure.
func (l *Loader) resolve(path string) (dir string, files []string, err error) {
	if l.OverlayRoot != "" {
		d := filepath.Join(l.OverlayRoot, filepath.FromSlash(path))
		if names, ok := goFilesIn(d); ok {
			return d, names, nil
		}
	}
	if lp, ok := l.listed[path]; ok {
		return lp.Dir, lp.GoFiles, nil
	}
	// The standard library vendors golang.org/x dependencies under
	// a "vendor/" prefix; source files import the unprefixed path.
	if lp, ok := l.listed["vendor/"+path]; ok {
		return lp.Dir, lp.GoFiles, nil
	}
	// Outside the recorded closure (overlay fixtures importing a
	// stdlib package the module never pulled in): list it now.
	if _, err := l.list([]string{path}); err == nil {
		if lp, ok := l.listed[path]; ok {
			return lp.Dir, lp.GoFiles, nil
		}
	}
	return "", nil, fmt.Errorf("cannot resolve import %q", path)
}

// goFilesIn returns the non-test Go files in dir, and whether dir
// looks like a package directory at all.
func goFilesIn(dir string) ([]string, bool) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, false
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, len(names) > 0
}
