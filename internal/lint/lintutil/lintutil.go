// Package lintutil holds the type- and syntax-query helpers shared by
// the piervet analyzers: callee resolution, scope predicates, and
// lock-bearing type detection.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// A Callee describes the target of a call expression precisely enough
// for invariant matching: the defining package path, the receiver's
// named type (empty for plain functions), and the function name.
type Callee struct {
	PkgPath  string
	RecvType string
	Name     string
}

// CalleeOf resolves call's target. ok is false for calls through
// function-typed variables, builtins without objects, and anything
// else without a resolvable declaration.
func CalleeOf(info *types.Info, call *ast.CallExpr) (Callee, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return Callee{}, false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return Callee{}, false
	}
	c := Callee{Name: fn.Name()}
	if pkg := fn.Pkg(); pkg != nil {
		c.PkgPath = pkg.Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			c.RecvType = n.Obj().Name()
		}
	}
	return c, true
}

// PkgPathHasSuffix reports whether path equals suffix or ends with
// "/"+suffix — the matching rule the analyzers use so that both the
// real repo packages (piersearch/internal/codec) and fixture stubs
// (anything/internal/codec) are recognized.
func PkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PkgPathContains reports whether path contains the element sequence
// elems (e.g. "internal") as whole path segments.
func PkgPathContains(path, elems string) bool {
	return path == elems ||
		strings.HasPrefix(path, elems+"/") ||
		strings.HasSuffix(path, "/"+elems) ||
		strings.Contains(path, "/"+elems+"/")
}

// FuncBodies calls fn for every function body in the file: each
// FuncDecl body and each FuncLit body is presented as its own unit,
// with nested FuncLits excluded from the enclosing unit (a literal is
// its own goroutine/deferred context, not part of the enclosing
// critical section or span scope). name is the declared name, or
// "func literal".
func FuncBodies(files []*ast.File, fn func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Name.Name, d, d.Body)
				}
			case *ast.FuncLit:
				fn("func literal", nil, d.Body)
			}
			return true
		})
	}
}

// WalkShallow visits the statements of body and every nested
// non-function block (if/for/range/switch/select bodies) in source
// order, without descending into FuncLit bodies. Expressions inside
// each statement are visited too (also skipping FuncLits).
func WalkShallow(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
}

// ContainsLock reports whether t holds a sync.Mutex or sync.RWMutex
// by value, directly or through nested structs and arrays.
func ContainsLock(t types.Type) bool {
	return containsLock(t, map[types.Type]bool{})
}

func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if IsSyncType(t, "Mutex") || IsSyncType(t, "RWMutex") || IsSyncType(t, "WaitGroup") || IsSyncType(t, "Cond") {
			return true
		}
		return containsLock(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// IsSyncType reports whether t is sync.<name> (not a pointer to it).
func IsSyncType(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// ExprString renders a small expression (a mutex receiver like
// "s.mu") for diagnostics and held-lock keying. It is purely
// syntactic: two spellings of the same lvalue compare equal only if
// written identically, which is the right granularity for
// within-function lock tracking.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	case *ast.BinaryExpr:
		return ExprString(e.X) + " " + e.Op.String() + " " + ExprString(e.Y)
	default:
		return "?"
	}
}
