// Package telemetry is a fixture stub of the registry surface of
// piersearch/internal/telemetry.
package telemetry

type Counter struct{}
type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter       { return nil }
func (r *Registry) Gauge(name string, fn func() int64) {}
func (r *Registry) Histogram(name string) *Histogram   { return nil }
