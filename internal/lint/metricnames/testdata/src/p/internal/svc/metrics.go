package svc

import (
	"fmt"

	"piersearch/internal/telemetry"
)

const prefix = "svc."

type code int

func (c code) String() string { return "x" }

func register(reg *telemetry.Registry, peer string, c code) {
	// Literals and constant expressions pass.
	reg.Counter("svc.queries")
	reg.Counter(prefix + "publishes")
	reg.Histogram(prefix + "ttfr_ns")
	reg.Gauge("svc.active", func() int64 { return 0 })

	// Run-time names are cardinality bombs: flagged.
	reg.Counter(fmt.Sprintf("svc.peer.%s", peer))     // want `metric name for Registry\.Counter is built at call time`
	reg.Counter(prefix + peer)                        // want `metric name for Registry\.Counter is built at call time`
	reg.Histogram(peer)                               // want `metric name for Registry\.Histogram is built at call time`
	reg.Gauge("svc."+peer, func() int64 { return 0 }) // want `metric name for Registry\.Gauge is built at call time`

	// A closed enum, documented at its single registration point.
	reg.Counter("svc.errors." + c.String()) //lint:allow metricnames bounded by the code enum, one registration per value
}
