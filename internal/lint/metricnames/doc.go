// Package metricnames checks the bounded-registry invariant.
//
// # Invariant
//
// PR 9's telemetry.Registry interns metrics by name in a lock-cheap
// map that lives for the process: every distinct name is a permanent
// allocation, a /metrics line, and a lookup key. A name assembled at
// call time — fmt.Sprintf("queries.%s", peerAddr) — turns an
// attacker-controlled or unbounded value into unbounded registry
// growth (a cardinality bomb) and makes the hot-path lookup miss its
// interned fast path.
//
// # What it reports
//
// Calls to Registry.Counter, Registry.Gauge, or Registry.Histogram
// whose name argument is not a compile-time constant. Constant
// folding is the compiler's: string literals, named consts, and
// concatenations of consts all pass; anything whose value exists only
// at run time is flagged.
//
// A closed enum keyed by code (service error counters, RPC kinds) is
// still bounded: pre-register one metric per enum value at
// construction, or annotate the single registration point.
//
// # Suppressing
//
//	reg.Counter("service.errors." + c.String()) //lint:allow metricnames bounded by the ErrorCode enum, registered once per code
package metricnames
