package metricnames_test

import (
	"testing"

	"piersearch/internal/lint/linttest"
	"piersearch/internal/lint/metricnames"
)

func TestMetricnames(t *testing.T) {
	linttest.Run(t, "testdata/src", metricnames.Analyzer, "p/internal/svc")
}
