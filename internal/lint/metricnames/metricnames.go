package metricnames

import (
	"go/ast"

	"piersearch/internal/lint/analysis"
	"piersearch/internal/lint/lintutil"
)

// Analyzer requires registry metric names to be compile-time
// constants.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc:  "telemetry.Registry metric names (Counter/Gauge/Histogram) must be compile-time constants — a name built at call time mints unbounded registry entries (a cardinality bomb) and defeats the lock-cheap fast path",
	Run:  run,
}

// registryMethods are the name-keyed constructors on
// telemetry.Registry; the first argument is the metric name.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func run(pass *analysis.Pass) error {
	pathOK := func(p string) bool { return lintutil.PkgPathHasSuffix(p, "internal/telemetry") }
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			callee, ok := lintutil.CalleeOf(pass.TypesInfo, call)
			if !ok || callee.RecvType != "Registry" || !pathOK(callee.PkgPath) || !registryMethods[callee.Name] {
				return true
			}
			name := call.Args[0]
			tv, ok := pass.TypesInfo.Types[name]
			if ok && tv.Value != nil {
				return true // constant-folded: literal, const, or concat of consts
			}
			pass.Reportf(name.Pos(),
				"metric name for Registry.%s is built at call time (%s): dynamic names mint unbounded registry entries; use a compile-time constant (pre-register one metric per enum value if the set is closed)",
				callee.Name, lintutil.ExprString(name))
			return true
		})
	}
	return nil
}
