// Package locksafe checks the bounded-critical-section invariant.
//
// # Invariant
//
// PR 2 sharded dht.Store into locked buckets and PR 7's hot-key tier
// added more sharded state; both are safe under heavy concurrency
// only while critical sections stay short and local. A blocking
// operation — an RPC, a channel op, a WaitGroup join, a sleep — made
// while a shard mutex is held turns one slow peer into a stalled
// shard (and into a deadlock the day two shards call into each
// other). vet has no opinion on any of this.
//
// # What it reports
//
//   - Blocking shapes while a sync.Mutex or sync.RWMutex is held, in
//     lexical order within one function: channel sends and receives,
//     select without a default, and calls whose name is
//     conventionally blocking (Call, CallContext, Dial, DialContext,
//     Send, Recv, Wait, Sleep, Join). sync.Cond.Wait is exempt — it
//     requires the held lock. Function literals are separate units: a
//     goroutine spawned under a lock does not inherit "held".
//   - Lock-bearing values where vet's copylocks cannot see them:
//     map and channel element types containing a mutex by value (map
//     elements are unaddressable; channel transfer copies), and
//     channel sends of lock-bearing values.
//
// A deferred Unlock keeps the mutex held for the rest of the
// function, which is exactly when the rule matters most.
//
// # Suppressing
//
// A call that is name-blocking but provably local (for instance an
// in-process Send on a buffered channel used as a free-list) is
// annotated in place:
//
//	s.freelist <- buf //lint:allow locksafe buffered free-list, never blocks: cap == shard count
package locksafe
