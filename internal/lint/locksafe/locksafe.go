package locksafe

import (
	"go/ast"
	"go/token"

	"piersearch/internal/lint/analysis"
	"piersearch/internal/lint/lintutil"
)

// Analyzer detects blocking operations performed while a mutex is
// held, and lock-bearing values in positions vet's copylocks cannot
// see (map/chan element types, channel sends).
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flags blocking calls (RPC, channel ops, Wait, Sleep) made while a sync.Mutex/RWMutex is held, and mutex-by-value hazards beyond vet: lock-bearing map/chan element types and channel sends",
	Run:  run,
}

// blockingNames are method/function names treated as potentially
// blocking on the network or on other goroutines. The list is
// deliberately name-based: the invariant protects sharded-bucket
// critical sections, where any of these shapes is a latency cliff
// (and a deadlock, once two shards call into each other).
var blockingNames = map[string]bool{
	"Call": true, "CallContext": true, "Dial": true, "DialContext": true,
	"Send": true, "Recv": true, "Wait": true, "Sleep": true, "Join": true,
}

func run(pass *analysis.Pass) error {
	if !lintutil.PkgPathContains(pass.Pkg.Path(), "internal") {
		return nil
	}
	checkElemTypes(pass)
	lintutil.FuncBodies(pass.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		w := &walker{pass: pass, held: map[string]token.Pos{}}
		w.stmts(body.List)
	})
	return nil
}

// --- blocking-while-held -----------------------------------------------------

// walker tracks which mutexes are held across one function body, in
// lexical order. FuncLit bodies are separate walker units (a literal
// runs as its own goroutine or deferred frame), so lintutil.FuncBodies
// hands them to us individually and the statement walk skips them.
type walker struct {
	pass *analysis.Pass
	// held maps the printed receiver expression ("s.mu",
	// "b.buckets[i].mu") to the Lock position.
	held map[string]token.Pos
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, locking, ok := w.lockOp(s.X); ok {
			if locking {
				w.held[recv] = s.Pos()
			} else {
				delete(w.held, recv)
			}
			return
		}
		w.scanBlocking(s.X)
	case *ast.DeferStmt:
		if recv, locking, ok := w.lockOp(s.Call); ok && !locking {
			// defer mu.Unlock(): the lock stays held to function end;
			// keep it held for the rest of the walk.
			_ = recv
			return
		}
		// Deferred non-unlock calls run after the function body;
		// their blocking behavior is not part of this critical
		// section walk.
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanBlocking(e)
		}
	case *ast.SendStmt:
		w.reportIfHeld(s.Pos(), "channel send")
		w.checkSendCopiesLock(s)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.reportIfHeld(s.Pos(), "select without default")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scanBlocking(s.Cond)
		before := w.snapshot()
		w.stmts(s.Body.List)
		w.restore(before)
		if s.Else != nil {
			w.stmt(s.Else)
			w.restore(before)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.scanBlocking(s.X)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			body = sw.Body
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		before := w.snapshot()
		for _, c := range body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
				w.restore(before)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		// The spawned body is its own walker unit; the go statement
		// itself does not block.
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanBlocking(e)
		}
	}
}

// snapshot/restore keep branch-local Lock/Unlock from leaking into
// the sibling branch: `if x { mu.Lock(); ...; mu.Unlock() }` must not
// mark mu held (or released) after the if.
func (w *walker) snapshot() map[string]token.Pos {
	c := make(map[string]token.Pos, len(w.held))
	for k, v := range w.held {
		c[k] = v
	}
	return c
}

func (w *walker) restore(snap map[string]token.Pos) {
	w.held = make(map[string]token.Pos, len(snap))
	for k, v := range snap {
		w.held[k] = v
	}
}

// lockOp recognizes `<expr>.Lock()`, `RLock`, `Unlock`, `RUnlock` on
// a sync.Mutex or sync.RWMutex value and returns the printed receiver
// plus whether it acquires.
func (w *walker) lockOp(e ast.Expr) (recv string, locking, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	// Resolve through the method object so an embedded mutex
	// (`s.Lock()` promoted from a sync.Mutex field) is recognized
	// too: the promoted method's receiver is still sync.Mutex.
	callee, ok2 := lintutil.CalleeOf(w.pass.TypesInfo, call)
	if !ok2 || callee.PkgPath != "sync" || (callee.RecvType != "Mutex" && callee.RecvType != "RWMutex") {
		return "", false, false
	}
	return lintutil.ExprString(sel.X), locking, true
}

// scanBlocking looks inside an expression for blocking shapes:
// receives, and calls with blocking names.
func (w *walker) scanBlocking(e ast.Expr) {
	if e == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportIfHeld(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.checkBlockingCall(n)
		}
		return true
	})
}

func (w *walker) checkBlockingCall(call *ast.CallExpr) {
	callee, ok := lintutil.CalleeOf(w.pass.TypesInfo, call)
	if !ok || !blockingNames[callee.Name] {
		return
	}
	// sync.Cond.Wait requires the caller to hold the lock; it is the
	// one legal blocking call inside a critical section.
	if callee.RecvType == "Cond" && callee.PkgPath == "sync" {
		return
	}
	what := callee.Name
	if callee.RecvType != "" {
		what = callee.RecvType + "." + what
	} else if callee.PkgPath != "" {
		what = callee.PkgPath + "." + what
	}
	w.reportIfHeld(call.Pos(), what)
}

func (w *walker) reportIfHeld(pos token.Pos, what string) {
	// One report per site; with several locks held, name the
	// lexicographically first so output is deterministic.
	first := ""
	for recv := range w.held {
		if first == "" || recv < first {
			first = recv
		}
	}
	if first == "" {
		return
	}
	w.pass.Reportf(pos,
		"blocking %s while %s is held: shard critical sections must not wait on the network or other goroutines; release the lock first",
		what, first)
}

// --- mutex-by-value beyond vet ----------------------------------------------

// checkElemTypes flags map and channel types whose element holds a
// lock by value. vet's copylocks sees copies at assignments and
// calls, but not the type declarations that make every future access
// a copy: map elements are unaddressable (the mutex can never be
// locked in place) and channel sends copy the element.
func checkElemTypes(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.MapType:
				if t := pass.TypesInfo.TypeOf(n.Value); t != nil && lintutil.ContainsLock(t) {
					pass.Reportf(n.Pos(),
						"map element type %s holds a lock by value: map elements are unaddressable, so the lock is copied on every read; store a pointer",
						t.String())
				}
			case *ast.ChanType:
				if t := pass.TypesInfo.TypeOf(n.Value); t != nil && lintutil.ContainsLock(t) {
					pass.Reportf(n.Pos(),
						"channel element type %s holds a lock by value: every send/receive copies the lock; send a pointer",
						t.String())
				}
			}
			return true
		})
	}
}

// checkSendCopiesLock flags sending a lock-bearing value over a
// channel even when the channel's declared element is an interface
// (the copy happens at the send).
func (w *walker) checkSendCopiesLock(s *ast.SendStmt) {
	t := w.pass.TypesInfo.TypeOf(s.Value)
	if t != nil && lintutil.ContainsLock(t) {
		w.pass.Reportf(s.Pos(),
			"channel send copies %s, which holds a lock by value; send a pointer", t.String())
	}
}
