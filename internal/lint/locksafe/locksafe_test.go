package locksafe_test

import (
	"testing"

	"piersearch/internal/lint/linttest"
	"piersearch/internal/lint/locksafe"
)

// TestLocksafe runs the multi-file shard fixture: shard.go covers
// blocking-while-held, copies.go covers the by-value hazards.
func TestLocksafe(t *testing.T) {
	linttest.Run(t, "testdata/src", locksafe.Analyzer, "p/internal/shard")
}
