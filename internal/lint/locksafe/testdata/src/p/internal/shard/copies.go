package shard

import "sync"

type lockedEntry struct {
	mu  sync.Mutex
	val []byte
}

// Map and channel element types holding locks by value: flagged
// (vet's copylocks never sees type declarations).
type badTable struct {
	entries map[string]lockedEntry // want `map element type .*lockedEntry holds a lock by value`
	updates chan lockedEntry       // want `channel element type .*lockedEntry holds a lock by value`
}

// Pointers are fine.
type goodTable struct {
	entries map[string]*lockedEntry
	updates chan *lockedEntry
}

// SendCopy sends a lock-bearing value over an any-typed channel; the
// element type doesn't give it away, the send does.
func SendCopy(ch chan any, e lockedEntry) {
	ch <- e // want `channel send copies .*lockedEntry, which holds a lock by value`
}
