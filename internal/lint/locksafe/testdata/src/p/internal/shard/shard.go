package shard

import (
	"sync"
	"time"
)

type Transport interface {
	Call(addr string, req []byte) ([]byte, error)
}

type Bucket struct {
	mu   sync.Mutex
	vals map[string][]byte
}

type Store struct {
	mu      sync.RWMutex
	buckets []*Bucket
	tr      Transport
	wg      sync.WaitGroup
	ch      chan []byte
}

// GetLocal is a healthy critical section: lock, touch memory, unlock.
func (s *Store) GetLocal(b *Bucket, k string) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.vals[k]
}

// RPCUnderLock holds the bucket lock across a network call: flagged.
func (s *Store) RPCUnderLock(b *Bucket, k string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return s.tr.Call("peer", []byte(k)) // want `blocking Transport.Call while b.mu is held`
}

// RPCOutsideLock copies what it needs, releases, then calls: fine.
func (s *Store) RPCOutsideLock(b *Bucket, k string) ([]byte, error) {
	b.mu.Lock()
	req := append([]byte(nil), b.vals[k]...)
	b.mu.Unlock()
	return s.tr.Call("peer", req)
}

// RecvUnderLock blocks on a channel receive inside the section: flagged.
func (s *Store) RecvUnderLock() []byte {
	s.mu.Lock()
	v := <-s.ch // want `blocking channel receive while s.mu is held`
	s.mu.Unlock()
	return v
}

// SendUnderLock blocks on a channel send inside the section: flagged.
func (s *Store) SendUnderLock(v []byte) {
	s.mu.Lock()
	s.ch <- v // want `blocking channel send while s.mu is held`
	s.mu.Unlock()
}

// WaitUnderLock joins a WaitGroup while holding the lock: flagged.
func (s *Store) WaitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want `blocking WaitGroup.Wait while s.mu is held`
	s.mu.Unlock()
}

// SleepUnderLock: flagged.
func (s *Store) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking time.Sleep while s.mu is held`
	s.mu.Unlock()
}

// CondWait is the one legal blocking call under a lock.
func CondWait(c *sync.Cond, ready *bool) {
	c.L.Lock()
	for !*ready {
		c.Wait()
	}
	c.L.Unlock()
}

// SpawnUnderLock starts a goroutine while holding the lock; the
// literal's body is its own unit and does not inherit "held".
func (s *Store) SpawnUnderLock() {
	s.mu.Lock()
	go func() {
		s.wg.Wait()
		v := <-s.ch
		_ = v
	}()
	s.mu.Unlock()
}

// BranchRelease unlocks in one branch; the sibling branch must not be
// poisoned by it.
func (s *Store) BranchRelease(fast bool) []byte {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return <-s.ch
	}
	s.mu.Unlock()
	return <-s.ch
}

// AllowedSend documents a never-blocking buffered handoff.
func (s *Store) AllowedSend(v []byte) {
	s.mu.Lock()
	s.ch <- v //lint:allow locksafe buffered free-list sized to shard count, never blocks
	s.mu.Unlock()
}

// EmbeddedLock locks via a promoted method from an embedded mutex.
type EmbeddedLock struct {
	sync.Mutex
	tr Transport
}

func (e *EmbeddedLock) CallUnder() {
	e.Lock()
	e.tr.Call("peer", nil) // want `blocking Transport.Call while e is held`
	e.Unlock()
}
