// Package spanhygiene checks the span-lifecycle invariant.
//
// # Invariant
//
// PR 9's tracing records a span only when Finish (or FinishErr) runs:
// an abandoned ActiveSpan writes nothing to the ring, so its whole
// subtree silently vanishes from the assembled trace — the
// observability plane lies precisely on the failure paths it exists
// to explain. Every start must therefore reach a finish on every
// return path, including error returns.
//
// # What it reports
//
// For each assignment from telemetry.StartSpan, Tracer.StartRoot,
// Tracer.StartRemote, or Tracer.StartHandler, the span must be one
// of:
//
//   - deferred: `defer sp.Finish()` (or a deferred closure using sp);
//   - handed off: returned, stored into a field/map/slice, passed to
//     another function, or captured by a function literal — custody
//     moved, the receiver finishes it;
//   - finished on every path: each return lexically after the start
//     must be dominated by sp.Finish()/sp.FinishErr(...), where a
//     nil-guard wrapper (`if sp != nil { sp.Finish() }`) is
//     transparent and a return under `if sp == nil` is exempt (no
//     span exists on that path).
//
// Discarding the span at the start site (`ctx, _ := StartSpan(...)`)
// is reported outright.
//
// The domination check is lexical (ancestor-block position), not a
// full CFG: a finish nested in one branch does not cover the sibling
// branch's return, which is exactly the leak-on-error shape PR 9
// review kept catching by hand.
//
// # Suppressing
//
//	ctx, sp := telemetry.StartSpan(ctx, "op") //lint:allow spanhygiene finished by the batch flusher two frames up
package spanhygiene
