package spanhygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"piersearch/internal/lint/analysis"
	"piersearch/internal/lint/lintutil"
)

// Analyzer checks that every started telemetry span reaches Finish
// (or FinishErr) on every return path of the function that started
// it, unless the span is deferred, handed off, or stored.
var Analyzer = &analysis.Analyzer{
	Name: "spanhygiene",
	Doc:  "every telemetry span start (StartSpan/StartRoot/StartRemote/StartHandler) must reach Finish on all return paths, including error returns — an unfinished span never records and silently truncates the trace tree",
	Run:  run,
}

// startFuncs maps telemetry start functions to the index of the span
// in their result list.
var startFuncs = map[string]int{
	"StartSpan":    1, // (ctx, span)
	"StartRoot":    1,
	"StartRemote":  1,
	"StartHandler": 0, // span only
}

var finishNames = map[string]bool{"Finish": true, "FinishErr": true}

func run(pass *analysis.Pass) error {
	lintutil.FuncBodies(pass.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		checkUnit(pass, body)
	})
	return nil
}

// checkUnit analyzes one function body (FuncLit bodies are their own
// units: a span started inside a closure must finish inside it).
func checkUnit(pass *analysis.Pass, body *ast.BlockStmt) {
	lintutil.WalkShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := lintutil.CalleeOf(pass.TypesInfo, call)
		if !ok || !lintutil.PkgPathHasSuffix(callee.PkgPath, "internal/telemetry") {
			return true
		}
		idx, ok := startFuncs[callee.Name]
		if !ok || idx >= len(as.Lhs) {
			return true
		}
		spanExpr := ast.Unparen(as.Lhs[idx])
		id, isIdent := spanExpr.(*ast.Ident)
		if !isIdent {
			// Span stored straight into a field or slot: handed off.
			return true
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(),
				"span from %s discarded: a started span that never reaches Finish records nothing and truncates the trace tree",
				callee.Name)
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		checkSpan(pass, body, obj, id.Name, as, callee.Name)
		return true
	})
}

// checkSpan verifies one started span reaches Finish on all paths.
func checkSpan(pass *analysis.Pass, body *ast.BlockStmt, sp types.Object, name string, start *ast.AssignStmt, startFunc string) {
	if deferredOrEscapes(pass, body, sp, start) {
		return
	}
	// Path check: every return lexically after the start must be
	// dominated by a finishing statement.
	paths := returnPaths(body, start.End())
	for _, p := range paths {
		if p.exemptNilGuard(pass, sp) {
			continue
		}
		if !p.dominatedByFinish(pass, sp) {
			pos := p.pos
			what := "the return"
			if p.isEnd {
				what = "the fall-off end of the function"
			}
			pass.Reportf(start.Pos(),
				"span %s (from %s) may not reach Finish on %s at line %d: finish it on every path, defer it, or hand it off",
				name, startFunc, what, pass.Fset.Position(pos).Line)
		}
	}
}

// deferredOrEscapes reports whether the span is deferred-finished or
// leaves the function's custody: returned, stored into a field/slice/
// map, passed to another call, or captured by a function literal.
func deferredOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, sp types.Object, start *ast.AssignStmt) bool {
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isFinishOn(pass, n.Call, sp) {
				escaped = true
				return false
			}
		case *ast.FuncLit:
			// Any use of the span inside a literal (deferred
			// finisher, goroutine finisher) counts as a handoff.
			if usesObj(pass, n.Body, sp) {
				escaped = true
			}
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if exprMentions(pass, r, sp) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			if n == start {
				return true
			}
			for i, lhs := range n.Lhs {
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					continue
				}
				_ = i
				// Storing into a selector/index: if any RHS mentions
				// the span, it is handed off.
				for _, rhs := range n.Rhs {
					if exprMentions(pass, rhs, sp) {
						escaped = true
					}
				}
			}
		case *ast.CallExpr:
			// The span as an argument (not as the receiver of its own
			// methods) hands responsibility to the callee.
			for _, arg := range n.Args {
				if exprMentions(pass, arg, sp) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if exprMentions(pass, el, sp) {
					escaped = true
				}
			}
		}
		return true
	})
	return escaped
}

// --- return-path enumeration -------------------------------------------------

// A path is one way control leaves the function: an explicit return,
// or falling off the end. ancestors holds (statement list, index of
// the child on the path) pairs from the function body inward.
type path struct {
	pos       token.Pos
	isEnd     bool
	ancestors []level
	// guards holds the if-statements enclosing the return.
	guards []*ast.IfStmt
}

type level struct {
	list []ast.Stmt
	idx  int
}

func returnPaths(body *ast.BlockStmt, after token.Pos) []path {
	var out []path
	var walk func(list []ast.Stmt, anc []level, guards []*ast.IfStmt)
	walk = func(list []ast.Stmt, anc []level, guards []*ast.IfStmt) {
		for i, s := range list {
			here := append(append([]level{}, anc...), level{list, i})
			switch s := s.(type) {
			case *ast.ReturnStmt:
				if s.Pos() > after {
					out = append(out, path{pos: s.Pos(), ancestors: here, guards: append([]*ast.IfStmt{}, guards...)})
				}
			case *ast.IfStmt:
				walk(s.Body.List, here, append(guards, s))
				if s.Else != nil {
					if eb, ok := s.Else.(*ast.BlockStmt); ok {
						walk(eb.List, here, append(guards, s))
					} else {
						walk([]ast.Stmt{s.Else}, here, append(guards, s))
					}
				}
			case *ast.BlockStmt:
				walk(s.List, here, guards)
			case *ast.ForStmt:
				walk(s.Body.List, here, guards)
			case *ast.RangeStmt:
				walk(s.Body.List, here, guards)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body, here, guards)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body, here, guards)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						walk(cc.Body, here, guards)
					}
				}
			case *ast.LabeledStmt:
				walk([]ast.Stmt{s.Stmt}, here, guards)
			}
		}
	}
	walk(body.List, nil, nil)
	// Fall-off end: if the last statement of the body is not a
	// return, control can leave through the closing brace.
	if n := len(body.List); n == 0 || !terminal(body.List[n-1]) {
		out = append(out, path{
			pos:       body.Rbrace,
			isEnd:     true,
			ancestors: []level{{body.List, len(body.List)}},
		})
	}
	return out
}

// terminal reports whether s definitely does not fall through.
func terminal(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		// for {} with no break is an event loop; treat as terminal.
		return s.Cond == nil
	}
	return false
}

// exemptNilGuard reports whether the path is enclosed by
// `if sp == nil { ... }` — on that path the span never existed.
func (p path) exemptNilGuard(pass *analysis.Pass, sp types.Object) bool {
	for _, g := range p.guards {
		if cond, ok := g.Cond.(*ast.BinaryExpr); ok && cond.Op == token.EQL {
			if mentionsNilCompare(pass, cond, sp) {
				return true
			}
		}
	}
	return false
}

// dominatedByFinish reports whether a finishing statement precedes
// the path's exit at some ancestor level.
func (p path) dominatedByFinish(pass *analysis.Pass, sp types.Object) bool {
	for _, lv := range p.ancestors {
		for i := 0; i < lv.idx; i++ {
			if finishingStmt(pass, lv.list[i], sp) {
				return true
			}
		}
	}
	return false
}

// finishingStmt reports whether s guarantees the span is finished
// once it completes: a direct Finish/FinishErr call, a nil-guard if
// wrapping one (`if sp != nil { sp.Finish() }` — nil spans need no
// finishing), or an if/else where both branches finish.
func finishingStmt(pass *analysis.Pass, s ast.Stmt, sp types.Object) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			return isFinishOn(pass, call, sp)
		}
	case *ast.IfStmt:
		if cond, ok := s.Cond.(*ast.BinaryExpr); ok && cond.Op == token.NEQ && mentionsNilCompare(pass, cond, sp) {
			for _, bs := range s.Body.List {
				if finishingStmt(pass, bs, sp) {
					return true
				}
			}
			return false
		}
		// Both branches finishing also guarantees it.
		if s.Else == nil {
			return false
		}
		bodyOK := false
		for _, bs := range s.Body.List {
			if finishingStmt(pass, bs, sp) {
				bodyOK = true
			}
		}
		if !bodyOK {
			return false
		}
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			for _, es := range eb.List {
				if finishingStmt(pass, es, sp) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// --- small predicates --------------------------------------------------------

func isFinishOn(pass *analysis.Pass, call *ast.CallExpr, sp types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !finishNames[sel.Sel.Name] {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == sp
}

func mentionsNilCompare(pass *analysis.Pass, cond *ast.BinaryExpr, sp types.Object) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isSp := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == sp
	}
	return (isSp(cond.X) && isNil(cond.Y)) || (isNil(cond.X) && isSp(cond.Y))
}

func usesObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// exprMentions reports whether e mentions the span object anywhere
// EXCEPT as the receiver of the span's own method calls
// (sp.SetAttr(...), sp.Finish() keep custody; record(sp) gives it
// away).
func exprMentions(pass *analysis.Pass, e ast.Expr, sp types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		// Skip receiver positions: the X of a selector whose Sel is a
		// method of the span is not a handoff.
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == sp {
					// Recurse only into the arguments.
					for _, arg := range call.Args {
						if exprMentions(pass, arg, sp) {
							found = true
						}
					}
					return false
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == sp {
			found = true
			return false
		}
		return true
	})
	return found
}
