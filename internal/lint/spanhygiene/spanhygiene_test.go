package spanhygiene_test

import (
	"testing"

	"piersearch/internal/lint/linttest"
	"piersearch/internal/lint/spanhygiene"
)

// TestSpanhygiene exercises the multi-package fixture: p/internal/svc
// imports the piersearch/internal/telemetry stub through the overlay.
func TestSpanhygiene(t *testing.T) {
	linttest.Run(t, "testdata/src", spanhygiene.Analyzer, "p/internal/svc")
}
