package svc

import (
	"context"
	"errors"

	"piersearch/internal/telemetry"
)

var errBoom = errors.New("boom")

func work(ctx context.Context) error { return nil }

// DeferFinish is the canonical healthy shape.
func DeferFinish(ctx context.Context) error {
	ctx, sp := telemetry.StartSpan(ctx, "op")
	defer sp.Finish()
	return work(ctx)
}

// LeakOnError finishes on success but not on the error return: the
// span-leak-on-error-return case from the issue.
func LeakOnError(ctx context.Context) error {
	ctx, sp := telemetry.StartSpan(ctx, "op") // want `span sp \(from StartSpan\) may not reach Finish on the return at line`
	if err := work(ctx); err != nil {
		return err
	}
	sp.Finish()
	return nil
}

// FinishAllPaths finishes on both the error and success paths.
func FinishAllPaths(ctx context.Context) error {
	ctx, sp := telemetry.StartSpan(ctx, "op")
	if err := work(ctx); err != nil {
		sp.FinishErr(err)
		return err
	}
	sp.Finish()
	return nil
}

// EarlyFinishDoesNotCover: a Finish inside one branch does not cover
// the other return.
func EarlyFinishDoesNotCover(ctx context.Context, fast bool) error {
	_, sp := telemetry.StartSpan(ctx, "op") // want `span sp \(from StartSpan\) may not reach Finish on the return at line`
	if fast {
		sp.Finish()
		return nil
	}
	return errBoom
}

// NilGuardFinish: the nil-guard wrapper is transparent — this is how
// the daemon's query handler finishes its stream span.
func NilGuardFinish(ctx context.Context) error {
	ctx, sp := telemetry.StartSpan(ctx, "op")
	err := work(ctx)
	if sp != nil {
		sp.Finish()
	}
	return err
}

// NilCheckReturn: returning inside `if sp == nil` needs no finish —
// the span never existed on that path.
func NilCheckReturn(ctx context.Context) error {
	ctx, sp := telemetry.StartSpan(ctx, "op")
	if sp == nil {
		return work(ctx)
	}
	err := work(ctx)
	sp.FinishErr(err)
	return err
}

// Discarded throws the span away at the start site: flagged.
func Discarded(ctx context.Context) {
	_, _ = telemetry.StartSpan(ctx, "op") // want `span from StartSpan discarded`
}

// HandedOff stores the span in a struct; custody leaves the function.
type stream struct{ span *telemetry.ActiveSpan }

func (st *stream) Open(ctx context.Context) {
	_, sp := telemetry.StartSpan(ctx, "stream")
	st.span = sp
}

// Returned hands the span to the caller.
func Returned(ctx context.Context, tr *telemetry.Tracer) *telemetry.ActiveSpan {
	_, sp := tr.StartRoot(ctx, "root")
	return sp
}

// ClosureFinish hands the span to a deferred closure.
func ClosureFinish(ctx context.Context) error {
	ctx, sp := telemetry.StartSpan(ctx, "op")
	defer func() { sp.Finish() }()
	return work(ctx)
}

// HandlerLeak: StartHandler's single result leaks past the error
// return.
func HandlerLeak(tr *telemetry.Tracer, fail bool) error {
	sp := tr.StartHandler(1, 2, "serve") // want `span sp \(from StartHandler\) may not reach Finish on the return at line`
	if fail {
		return errBoom
	}
	sp.Finish()
	return nil
}

// AllowedLeak documents a span intentionally left to the ring
// janitor.
func AllowedLeak(ctx context.Context) error {
	ctx, sp := telemetry.StartSpan(ctx, "op") //lint:allow spanhygiene ring janitor reclaims unfinished spans in tests
	_ = sp
	return work(ctx)
}
