// Package telemetry is a fixture stub of piersearch/internal/telemetry:
// the span-start surface and ActiveSpan, enough to type-check the
// hygiene fixtures.
package telemetry

import "context"

type TraceID uint64
type SpanID uint64

type ActiveSpan struct{}

func (s *ActiveSpan) Finish()                 {}
func (s *ActiveSpan) FinishErr(err error)     {}
func (s *ActiveSpan) SetAttr(key, val string) {}

type Tracer struct{}

func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	return ctx, nil
}

func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	return ctx, nil
}

func (t *Tracer) StartRemote(ctx context.Context, trace TraceID, parent SpanID, name string) (context.Context, *ActiveSpan) {
	return ctx, nil
}

func (t *Tracer) StartHandler(trace TraceID, parent SpanID, name string) *ActiveSpan {
	return nil
}
