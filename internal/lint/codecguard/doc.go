// Package codecguard checks the hostile-input rules from PR 2.
//
// # Invariant
//
// Wire-facing packages decode frames that arrive from arbitrary
// peers. Two rules keep a hostile or corrupt frame from owning the
// process:
//
//   - No reflection codecs on the hot path. PR 2 purged encoding/gob
//     from every wire-facing package and replaced it with
//     internal/codec (zero-alloc varints, pooled buffers, sticky
//     -error Reader); gob and encoding/json imports in those packages
//     are regressions. (encoding/json remains legal off the hot path,
//     e.g. the scale harness's committed BENCH report.)
//   - No allocation sized by an unguarded wire value. A length or
//     element count read straight off the frame (Reader.Uvarint,
//     Reader.Varint, encoding/binary varints) can claim 2^64
//     elements; passing it to make() before comparing it against the
//     remaining buffer lets one 10-byte frame demand gigabytes.
//     Reader.Count and Reader.View embed the guard and are always
//     safe; a raw varint must pass through a comparison (or a builtin
//     min() with a clean bound) before it may size an allocation.
//
// The taint walk is lexical and per-function: a raw varint read
// taints the variable it lands in; any comparison mentioning the
// variable cleanses it; make() with a tainted size argument is
// reported.
//
// # Suppressing
//
// A decode whose bound lives elsewhere (for instance a count already
// capped by a schema constant upstream) is annotated in place:
//
//	out := make([]Span, 0, n) //lint:allow codecguard n capped by MaxSpans in the caller
package codecguard
