package codecguard

import (
	"go/ast"
	"go/types"

	"piersearch/internal/lint/analysis"
	"piersearch/internal/lint/lintutil"
)

// Analyzer enforces the hostile-input rules on the hot path: no
// reflection codecs (encoding/gob, encoding/json), and no allocation
// sized by a wire-read length that has not been guarded against a
// cap.
var Analyzer = &analysis.Analyzer{
	Name: "codecguard",
	Doc:  "flags gob/json imports in hot-path packages and decode allocations sized by an unguarded wire-read length — a corrupt or hostile frame must not pick our allocation sizes",
	Run:  run,
}

// hotPaths are the package-path suffixes on the query/publish/wire
// hot path, where PR 2 purged reflection codecs and every decode
// guards its counts.
var hotPaths = []string{
	"internal/codec", "internal/wire", "internal/pier", "internal/dht",
	"internal/service", "internal/store", "internal/telemetry", "internal/hotcache",
}

func inScope(path string) bool {
	for _, s := range hotPaths {
		if lintutil.PkgPathHasSuffix(path, s) || lintutil.PkgPathContains(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	checkImports(pass)
	lintutil.FuncBodies(pass.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		if decl == nil {
			return // literal bodies are walked from the enclosing decl
		}
		w := &walker{pass: pass, tainted: map[types.Object]bool{}}
		w.stmts(decl.Body.List)
	})
	return nil
}

func checkImports(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"encoding/gob"`, `"encoding/json"`:
				pass.Reportf(imp.Pos(),
					"%s on the hot path: PR 2 purged reflection codecs from wire-facing packages; use internal/codec",
					imp.Path.Value)
			}
		}
	}
}

// walker performs a lexical-order taint walk over one function body.
// A variable is tainted when it holds a wire-read integer (a varint
// straight off the frame); it is cleansed by any comparison guard
// that mentions it. make() sized by a tainted expression is the
// violation.
type walker struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.scanMakes(s)
		w.assign(s)
	case *ast.DeclStmt:
		w.scanMakes(s)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.valueSpec(vs)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scanMakes(s.Cond)
		w.guard(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.guard(s.Cond)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.scanMakes(s)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	default:
		w.scanMakes(s)
	}
}

// assign propagates taint through plain assignments and clears it on
// reassignment from clean sources.
func (w *walker) assign(s *ast.AssignStmt) {
	// Per-position when counts line up (a, b := x, y); otherwise the
	// whole RHS taints every LHS (a, b := f()).
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := w.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = w.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs != nil && w.taintedExpr(rhs) {
			w.tainted[obj] = true
		} else {
			delete(w.tainted, obj)
		}
	}
}

func (w *walker) valueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		obj := w.pass.TypesInfo.Defs[name]
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if len(vs.Values) == len(vs.Names) {
			rhs = vs.Values[i]
		} else if len(vs.Values) == 1 {
			rhs = vs.Values[0]
		}
		if rhs != nil && w.taintedExpr(rhs) {
			w.tainted[obj] = true
		}
	}
}

// guard cleanses every tainted variable that appears in a comparison:
// the author has bounded it against something. The canonical repo
// guards — `if n > uint64(len(rest))` and Reader.Count — both land
// here or never taint at all.
func (w *walker) guard(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op.String() {
		case "<", ">", "<=", ">=", "==", "!=":
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
							delete(w.tainted, obj)
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// scanMakes reports make() calls whose size arguments are tainted.
func (w *walker) scanMakes(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			return true
		}
		for _, arg := range call.Args[1:] {
			if w.taintedExpr(arg) {
				w.pass.Reportf(call.Pos(),
					"allocation sized by unguarded wire value %s: a hostile frame picks the size; guard it against the remaining buffer (or use codec.Reader.Count)",
					lintutil.ExprString(arg))
				return true
			}
		}
		return true
	})
}

// taintedExpr reports whether e carries wire taint: it mentions a
// tainted variable or calls a raw varint read directly. A builtin
// min() with at least one clean argument is a bound and is clean.
func (w *walker) taintedExpr(e ast.Expr) bool {
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if w.isBoundedMin(n) {
				return false
			}
			if w.isRawWireRead(n) {
				tainted = true
				return false
			}
		case *ast.Ident:
			if obj := w.pass.TypesInfo.Uses[n]; obj != nil && w.tainted[obj] {
				tainted = true
				return false
			}
		}
		return true
	})
	return tainted
}

// isBoundedMin reports whether call is builtin min(...) with at least
// one untainted argument — an explicit bound.
func (w *walker) isBoundedMin(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "min" {
		return false
	}
	if _, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return false
	}
	for _, arg := range call.Args {
		if !w.taintedExpr(arg) {
			return true
		}
	}
	return false
}

// isRawWireRead recognizes the unguarded length sources: Uvarint and
// Varint on the codec Reader (Count and View are guarded by
// construction and are not sources) and the encoding/binary varint
// readers.
func (w *walker) isRawWireRead(call *ast.CallExpr) bool {
	callee, ok := lintutil.CalleeOf(w.pass.TypesInfo, call)
	if !ok {
		return false
	}
	if callee.RecvType == "Reader" && lintutil.PkgPathHasSuffix(callee.PkgPath, "internal/codec") {
		return callee.Name == "Uvarint" || callee.Name == "Varint"
	}
	if callee.PkgPath == "encoding/binary" {
		switch callee.Name {
		case "Uvarint", "Varint", "ReadUvarint", "ReadVarint":
			return true
		}
	}
	return false
}
