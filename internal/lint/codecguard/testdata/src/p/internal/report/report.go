// Package report is off the hot path: encoding/json is legal here
// (this is the BENCH_scale.json shape).
package report

import "encoding/json"

func Write(v any) ([]byte, error) { return json.MarshalIndent(v, "", "  ") }
