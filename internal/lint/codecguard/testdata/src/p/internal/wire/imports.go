package wire

import (
	"encoding/gob"  // want `"encoding/gob" on the hot path`
	"encoding/json" // want `"encoding/json" on the hot path`
)

func unused() {
	_ = gob.NewEncoder
	_ = json.Marshal
}
