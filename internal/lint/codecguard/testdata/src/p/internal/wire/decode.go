package wire

import (
	"encoding/binary"

	"p/internal/codec"
)

type Item struct{ Data []byte }

// DecodeUnguarded sizes an allocation straight off the frame: flagged.
func DecodeUnguarded(buf []byte) []Item {
	r := codec.NewReader(buf)
	n := r.Uvarint()
	out := make([]Item, 0, n) // want `allocation sized by unguarded wire value n`
	for i := uint64(0); i < n; i++ {
		out = append(out, Item{})
	}
	return out
}

// DecodeInline nests the raw read inside the make: flagged.
func DecodeInline(buf []byte) []byte {
	r := codec.NewReader(buf)
	return make([]byte, r.Uvarint()) // want `allocation sized by unguarded wire value`
}

// DecodeDerived taints through arithmetic and conversion: flagged.
func DecodeDerived(buf []byte) []byte {
	r := codec.NewReader(buf)
	n := r.Uvarint()
	width := n * 8
	return make([]byte, int(width)) // want `allocation sized by unguarded wire value`
}

// DecodeGuarded compares the count against the remaining buffer
// before allocating: fine.
func DecodeGuarded(buf []byte) []Item {
	r := codec.NewReader(buf)
	n := r.Uvarint()
	if n > uint64(r.Len()) {
		return nil
	}
	out := make([]Item, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, Item{})
	}
	return out
}

// DecodeCounted uses Reader.Count, which guards internally: fine.
func DecodeCounted(buf []byte) []Item {
	r := codec.NewReader(buf)
	n := r.Count()
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Item{})
	}
	return out
}

// DecodeMinBounded caps the preallocation with a clean bound: fine.
func DecodeMinBounded(buf []byte) []Item {
	r := codec.NewReader(buf)
	n := r.Uvarint()
	return make([]Item, 0, min(n, 256))
}

// DecodeBinary taints from encoding/binary's varint reader: flagged.
func DecodeBinary(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	return make([]byte, n) // want `allocation sized by unguarded wire value n`
}

// DecodeAllowed documents an upstream bound.
func DecodeAllowed(buf []byte) []Item {
	r := codec.NewReader(buf)
	n := r.Uvarint()
	return make([]Item, 0, n) //lint:allow codecguard n already capped by MaxFrame in the mux
}
