// Package codec is a fixture stub of piersearch/internal/codec: just
// enough Reader surface for the taint fixtures to type-check.
package codec

type Reader struct {
	buf []byte
	err error
}

func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

func (r *Reader) Err() error { return r.err }
func (r *Reader) Len() int   { return len(r.buf) }

func (r *Reader) Uvarint() uint64 { return 0 }
func (r *Reader) Varint() int64   { return 0 }

// Count is guarded by construction: it rejects counts larger than the
// remaining buffer before returning.
func (r *Reader) Count() int { return 0 }

// View is guarded: the length prefix is validated against the buffer.
func (r *Reader) View() []byte { return nil }
