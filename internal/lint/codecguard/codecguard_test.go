package codecguard_test

import (
	"testing"

	"piersearch/internal/lint/codecguard"
	"piersearch/internal/lint/linttest"
)

// TestCodecguard exercises the multi-file wire fixture (decode.go +
// imports.go form one package) plus the in-scope codec stub and the
// out-of-scope report package.
func TestCodecguard(t *testing.T) {
	linttest.Run(t, "testdata/src", codecguard.Analyzer,
		"p/internal/wire",
		"p/internal/report",
	)
}
