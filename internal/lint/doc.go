// Package lint hosts piervet, a suite of six custom analyzers that
// machine-check invariants this repo used to enforce only by review
// comment. Each analyzer lives in its own subpackage with a doc.go
// spelling out the invariant, analysistest-style fixtures under
// testdata/src, and a test driven by the shared linttest harness.
//
// The suite is stdlib-only: the container has no module cache or
// network, so internal/lint/analysis re-creates the small slice of
// golang.org/x/tools/go/analysis that the analyzers need (Analyzer,
// Pass, Diagnostic), and internal/lint/load type-checks packages from
// source on top of `go list -e -json -deps`. cmd/piervet wires all
// six into one multichecker; CI runs `go run ./cmd/piervet ./...` as
// a required job beside gofmt, vet, and staticcheck.
//
// # The analyzers
//
// ctxflow (origin: PR 3, context threading). context.Background() and
// context.TODO() are banned inside internal/ packages: a fresh root
// context detaches the call from cancellation, deadlines, and the
// telemetry span carried by the caller's ctx. The only exemption is a
// documented legacy-wrapper shim — a single-statement function that
// delegates to its *Context/*Ctx-suffixed successor.
//
// determinism (origin: PR 6, virtual-time scale harness). The replay
// harness promises bit-identical runs for a given seed, so
// internal/scale and internal/codec may not read the wall clock
// (time.Now, time.Sleep, timers) or the global math/rand source, and
// encode paths anywhere may not iterate a map while building wire
// bytes — map order would leak into encodings.
//
// codecguard (origin: PR 2, hostile-input codec). Hot-path packages
// (codec, wire, pier, dht, service, store, telemetry, hotcache) must
// not import encoding/gob or encoding/json, and a length read from
// the wire (Reader.Uvarint/Varint, binary varints) must be bounds-
// checked before it sizes a make(). Reader.Count/View/Bytes/String
// are the guarded alternatives.
//
// locksafe (origin: PR 7, sharded hot cache). No blocking call (RPC,
// dial, send/recv, Wait, Sleep) while a sync.Mutex/RWMutex is held —
// a stalled peer must never wedge a shard. Also extends vet's
// copylocks: maps and channels whose element type contains a lock,
// and sends that copy a lock by value.
//
// spanhygiene (origin: PR 9, telemetry). Every span returned by
// telemetry.StartSpan/StartRoot/StartRemote/StartHandler must reach
// Finish or FinishErr on every return path, including error returns.
// defer sp.Finish() is the canonical form; discarding the span with _
// is reported.
//
// metricnames (origin: PR 9, telemetry). Registry.Counter/Gauge/
// Histogram names must be compile-time constants: a name built at
// call time mints unbounded registry entries.
//
// # Suppressing a finding
//
// Every analyzer honors the allow directive:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or the line above it. The reason is
// mandatory — a bare //lint:allow ctxflow is inert and the finding
// still fires. Suppressions are grep-able, per-line, and carry their
// own justification, so the invariant stays legible even where it is
// waived.
package lint
