package hotcache

import (
	"sync/atomic"
	"time"
)

// Options configures a Tier. Zero values pick defaults suitable for a
// single daemon; the scale harness shrinks budgets and installs its
// virtual clock and poll-based Wait.
type Options struct {
	// MaxBytes bounds the data cache (default 16 MiB).
	MaxBytes int64
	// Shards is the data cache's shard count (default 8, rounded up to a
	// power of two).
	Shards int
	// TTL bounds how long a cached posting set or query result may be
	// served (default 30s). Invalidation-on-publish usually fires first;
	// the TTL is the backstop for publishes the node never hears about.
	TTL time.Duration
	// RouteTTL bounds cached replica-set resolutions (default 60s).
	RouteTTL time.Duration
	// Window is the frequency sketch's decay window (default 10s).
	Window time.Duration
	// SketchWidth is counters per sketch row (default 512).
	SketchWidth int
	// HotThreshold is the sketch estimate at which a key counts as hot
	// and reads fan out across its replicas (default 8).
	HotThreshold int
	// Replicas is the fan-out width for hot keys: how many of the
	// closest holders share the read load (default 3, matching the
	// harness's replicate=3 placement).
	Replicas int
	// Clock supplies time (nil = monotonic wall clock).
	Clock Clock
	// Wait overrides how singleflight waiters block (nil = channel
	// select; the scale harness substitutes a virtual-clock poll).
	Wait WaitFunc
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 16 << 20
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.TTL <= 0 {
		o.TTL = 30 * time.Second
	}
	if o.RouteTTL <= 0 {
		o.RouteTTL = time.Minute
	}
	if o.Window <= 0 {
		o.Window = 10 * time.Second
	}
	if o.SketchWidth <= 0 {
		o.SketchWidth = 512
	}
	if o.HotThreshold <= 0 {
		o.HotThreshold = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Clock == nil {
		o.Clock = monotonic()
	}
	return o
}

// Tier bundles the hot-key machinery one engine installs: the data
// cache (postings, counts, bloom probes, join/select results), the
// route cache (replica-set resolutions), singleflight coalescing, and
// the hot-key sketch.
type Tier struct {
	Data    *Cache
	Routes  *Cache
	Flights *Group
	Sketch  *Sketch

	hotThreshold int
	replicas     int
	rr           atomic.Uint64
	fanout       atomic.Int64
}

// NewTier builds a tier from opts.
func NewTier(opts Options) *Tier {
	opts = opts.withDefaults()
	t := &Tier{
		Data: NewCache(opts.MaxBytes, opts.Shards, opts.TTL, opts.Clock),
		// Routes are small and few; a lone shard with a slice of the
		// byte budget is plenty.
		Routes:       NewCache(opts.MaxBytes/8, 1, opts.RouteTTL, opts.Clock),
		Flights:      &Group{Wait: opts.Wait},
		Sketch:       NewSketch(opts.SketchWidth, opts.Window, opts.Clock),
		hotThreshold: opts.HotThreshold,
		replicas:     opts.Replicas,
	}
	return t
}

// HotThreshold is the sketch estimate at which a key counts as hot.
func (t *Tier) HotThreshold() int { return t.hotThreshold }

// Replicas is the fan-out width for hot-key reads.
func (t *Tier) Replicas() int { return t.replicas }

// NextFanout picks the replica rank for one hot read, round-robin, and
// counts reads diverted away from rank 0 (the XOR-closest owner).
func (t *Tier) NextFanout(n int) int {
	if n <= 1 {
		return 0
	}
	r := int(t.rr.Add(1) % uint64(n))
	if r != 0 {
		t.fanout.Add(1)
	}
	return r
}

// InvalidateID purges every cached value derived from the DHT key id
// (raw key bytes), returning how many entries dropped. Called on local
// publishes and, via the store observer, when a replica accepts a store
// RPC — the purge hint that rides along with every publish.
func (t *Tier) InvalidateID(id []byte) int {
	return t.Data.InvalidateTag(string(id))
}

// TierStats snapshots a tier's counters.
type TierStats struct {
	Data        CacheStats
	Routes      CacheStats
	Coalesced   int64
	FanoutReads int64
}

// Stats snapshots the tier.
func (t *Tier) Stats() TierStats {
	return TierStats{
		Data:        t.Data.Stats(),
		Routes:      t.Routes.Stats(),
		Coalesced:   t.Flights.Coalesced(),
		FanoutReads: t.fanout.Load(),
	}
}
