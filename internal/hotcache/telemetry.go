package hotcache

import "piersearch/internal/telemetry"

// RegisterMetrics publishes the tier's counters as gauges on reg, under
// hotcache.data.*, hotcache.routes.*, and hotcache.*. Gauges sample
// Stats() on demand, so registration is the only cost; the tier itself
// keeps no registry reference.
//
// The per-cache blocks are spelled out with literal names rather than a
// prefix helper so the registry's full cardinality is visible in the
// source (piervet's metricnames invariant).
func (t *Tier) RegisterMetrics(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	d := t.Data
	reg.Gauge("hotcache.data.entries", func() int64 { return int64(d.Stats().Entries) })
	reg.Gauge("hotcache.data.bytes", func() int64 { return d.Stats().Bytes })
	reg.Gauge("hotcache.data.hits", func() int64 { return d.Stats().Hits })
	reg.Gauge("hotcache.data.misses", func() int64 { return d.Stats().Misses })
	reg.Gauge("hotcache.data.evictions", func() int64 { return d.Stats().Evictions })
	reg.Gauge("hotcache.data.expirations", func() int64 { return d.Stats().Expirations })
	reg.Gauge("hotcache.data.invalidations", func() int64 { return d.Stats().Invalidations })
	r := t.Routes
	reg.Gauge("hotcache.routes.entries", func() int64 { return int64(r.Stats().Entries) })
	reg.Gauge("hotcache.routes.bytes", func() int64 { return r.Stats().Bytes })
	reg.Gauge("hotcache.routes.hits", func() int64 { return r.Stats().Hits })
	reg.Gauge("hotcache.routes.misses", func() int64 { return r.Stats().Misses })
	reg.Gauge("hotcache.routes.evictions", func() int64 { return r.Stats().Evictions })
	reg.Gauge("hotcache.routes.expirations", func() int64 { return r.Stats().Expirations })
	reg.Gauge("hotcache.routes.invalidations", func() int64 { return r.Stats().Invalidations })
	reg.Gauge("hotcache.coalesced", func() int64 { return t.Flights.Coalesced() })
	reg.Gauge("hotcache.fanout_reads", func() int64 { return t.fanout.Load() })
}
