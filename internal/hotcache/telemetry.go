package hotcache

import "piersearch/internal/telemetry"

// RegisterMetrics publishes the tier's counters as gauges on reg, under
// hotcache.data.*, hotcache.routes.*, and hotcache.*. Gauges sample
// Stats() on demand, so registration is the only cost; the tier itself
// keeps no registry reference.
func (t *Tier) RegisterMetrics(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	cache := func(prefix string, c *Cache) {
		reg.Gauge(prefix+".entries", func() int64 { return int64(c.Stats().Entries) })
		reg.Gauge(prefix+".bytes", func() int64 { return c.Stats().Bytes })
		reg.Gauge(prefix+".hits", func() int64 { return c.Stats().Hits })
		reg.Gauge(prefix+".misses", func() int64 { return c.Stats().Misses })
		reg.Gauge(prefix+".evictions", func() int64 { return c.Stats().Evictions })
		reg.Gauge(prefix+".expirations", func() int64 { return c.Stats().Expirations })
		reg.Gauge(prefix+".invalidations", func() int64 { return c.Stats().Invalidations })
	}
	cache("hotcache.data", t.Data)
	cache("hotcache.routes", t.Routes)
	reg.Gauge("hotcache.coalesced", func() int64 { return t.Flights.Coalesced() })
	reg.Gauge("hotcache.fanout_reads", func() int64 { return t.fanout.Load() })
}
