package hotcache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Clock reports the current time as an offset from an arbitrary fixed
// epoch. Only differences between readings matter, so both wall clocks
// and the scale harness's virtual clock satisfy it.
type Clock func() time.Duration

// monotonic is the default Clock: offsets from process start on the
// runtime's monotonic clock.
func monotonic() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	Entries       int   // live entries across all shards
	Bytes         int64 // accounted size of live entries
	Hits          int64
	Misses        int64
	Evictions     int64 // removed to stay under the byte budget
	Expirations   int64 // removed because their TTL lapsed
	Invalidations int64 // removed by InvalidateTag
}

// Cache is a sharded, size-bounded LRU with per-entry TTL and tag-based
// invalidation. It stores opaque values under string keys; the caller
// supplies an approximate byte size per entry, and the cache evicts
// least-recently-used entries per shard to stay under its budget.
//
// Values are shared between the inserter and every Get caller — treat
// them as immutable after Put.
type Cache struct {
	shards []cacheShard
	mask   uint32
	ttl    time.Duration
	now    Clock

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	expirations   atomic.Int64
	invalidations atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	lru     *list.List // front = most recently used
	entries map[string]*list.Element
	// byTag indexes live entry keys by tag, so a publish for one DHT key
	// can purge every entry derived from it without scanning the shard.
	byTag map[string]map[string]struct{}
}

type cacheEntry struct {
	key     string
	val     any
	size    int64
	tags    []string
	expires time.Duration
}

// entryOverhead approximates the bookkeeping cost per entry (map slots,
// list element, tags) charged on top of the caller-supplied size.
const entryOverhead = 96

// NewCache builds a cache bounded to roughly maxBytes across shards.
// shards is rounded up to a power of two (minimum 1); ttl is the fixed
// per-entry lifetime; now may be nil for the monotonic wall clock.
func NewCache(maxBytes int64, shards int, ttl time.Duration, now Clock) *Cache {
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if now == nil {
		now = monotonic()
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint32(n - 1), ttl: ttl, now: now}
	for i := range c.shards {
		s := &c.shards[i]
		s.budget = maxBytes / int64(n)
		if s.budget < 1 {
			s.budget = 1
		}
		s.lru = list.New()
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key)) //nolint:errcheck // fnv never fails
	return &c.shards[h.Sum32()&c.mask]
}

// Get returns the value stored under key, if present and unexpired.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.now() >= e.expires {
		s.removeLocked(el, e)
		s.mu.Unlock()
		c.expirations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.mu.Unlock()
	c.hits.Add(1)
	return e.val, true
}

// Put stores val under key with the cache's TTL. size is the caller's
// estimate of the value's footprint; tags name the DHT keys the value
// derives from, for InvalidateTag. An existing entry under key is
// replaced. Values larger than a shard's whole budget are not cached.
func (c *Cache) Put(key string, val any, size int64, tags ...string) {
	if size < 0 {
		size = 0
	}
	size += entryOverhead + int64(len(key))
	s := c.shard(key)
	if size > s.budget {
		return
	}
	e := &cacheEntry{key: key, val: val, size: size, tags: tags, expires: c.now() + c.ttl}
	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		s.removeLocked(old, old.Value.(*cacheEntry))
	}
	if s.entries == nil {
		// Lazy maps: a 10k-node replay builds 10k caches, most of which
		// only ever see a few keys.
		s.entries = make(map[string]*list.Element, 8)
	}
	s.entries[key] = s.lru.PushFront(e)
	s.bytes += size
	for _, tag := range tags {
		if s.byTag == nil {
			s.byTag = make(map[string]map[string]struct{}, 8)
		}
		keys := s.byTag[tag]
		if keys == nil {
			keys = make(map[string]struct{}, 2)
			s.byTag[tag] = keys
		}
		keys[key] = struct{}{}
	}
	evicted := 0
	for s.bytes > s.budget {
		tail := s.lru.Back()
		if tail == nil {
			break
		}
		s.removeLocked(tail, tail.Value.(*cacheEntry))
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// InvalidateTag removes every entry carrying tag and reports how many
// were dropped.
func (c *Cache) InvalidateTag(tag string) int {
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key := range s.byTag[tag] {
			if el, ok := s.entries[key]; ok {
				s.removeLocked(el, el.Value.(*cacheEntry))
				removed++
			}
		}
		s.mu.Unlock()
	}
	if removed > 0 {
		c.invalidations.Add(int64(removed))
	}
	return removed
}

// removeLocked unlinks an entry and its tag index references. Caller
// holds the shard lock.
func (s *cacheShard) removeLocked(el *list.Element, e *cacheEntry) {
	s.lru.Remove(el)
	delete(s.entries, e.key)
	s.bytes -= e.size
	for _, tag := range e.tags {
		if keys := s.byTag[tag]; keys != nil {
			delete(keys, e.key)
			if len(keys) == 0 {
				delete(s.byTag, tag)
			}
		}
	}
}

// Stats snapshots the cache's counters and current occupancy.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Expirations:   c.expirations.Load(),
		Invalidations: c.invalidations.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
