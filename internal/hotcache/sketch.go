package hotcache

import (
	"hash/fnv"
	"sync"
	"time"
)

// Sketch is a decaying count-min sketch approximating per-key request
// frequency over a sliding window. Every half-window, all counters are
// halved (lazily, on the next access), so a key's estimate tracks its
// recent rate rather than its all-time count. Estimates only ever
// over-count (hash collisions), which for hot-key detection errs toward
// spreading load — the safe direction.
type Sketch struct {
	mu        sync.Mutex
	width     uint32
	rows      [][]uint32 // lazily allocated on first Observe
	window    time.Duration
	now       Clock
	lastDecay time.Duration
}

const sketchDepth = 4

// NewSketch builds a sketch with the given counters-per-row width and
// decay window. now may be nil for the monotonic wall clock.
func NewSketch(width int, window time.Duration, now Clock) *Sketch {
	if width < 16 {
		width = 16
	}
	if window <= 0 {
		window = 10 * time.Second
	}
	if now == nil {
		now = monotonic()
	}
	s := &Sketch{width: uint32(width), window: window, now: now}
	s.lastDecay = now()
	return s
}

// Observe records one request for key and returns its updated estimate.
func (s *Sketch) Observe(key string) int {
	h1, h2 := sketchHash(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decayLocked()
	if s.rows == nil {
		s.rows = make([][]uint32, sketchDepth)
	}
	est := ^uint32(0)
	for i := range s.rows {
		if s.rows[i] == nil {
			s.rows[i] = make([]uint32, s.width)
		}
		slot := &s.rows[i][(h1+uint32(i)*h2)%s.width]
		if *slot != ^uint32(0) {
			*slot++
		}
		if *slot < est {
			est = *slot
		}
	}
	return int(est)
}

// Estimate returns the current estimate for key without recording a
// request.
func (s *Sketch) Estimate(key string) int {
	h1, h2 := sketchHash(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decayLocked()
	if s.rows == nil {
		return 0
	}
	est := ^uint32(0)
	for i := range s.rows {
		if s.rows[i] == nil {
			return 0
		}
		if v := s.rows[i][(h1+uint32(i)*h2)%s.width]; v < est {
			est = v
		}
	}
	return int(est)
}

// decayLocked halves every counter once per elapsed half-window; after a
// long idle stretch it clears instead of looping.
func (s *Sketch) decayLocked() {
	half := s.window / 2
	elapsed := s.now() - s.lastDecay
	if elapsed < half {
		return
	}
	steps := int(elapsed / half)
	s.lastDecay += time.Duration(steps) * half
	if steps >= 32 || s.rows == nil {
		for i := range s.rows {
			s.rows[i] = nil
		}
		return
	}
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] >>= uint(steps)
		}
	}
}

// sketchHash derives two independent 32-bit hashes from one FNV-1a pass,
// combined Kirsch–Mitzenmacher style for the per-row indexes.
func sketchHash(key string) (uint32, uint32) {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv never fails
	v := h.Sum64()
	h2 := uint32(v >> 32)
	if h2 == 0 {
		h2 = 0x9e3779b9
	}
	return uint32(v), h2 | 1
}
