package hotcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (f *fakeClock) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now += d
	f.mu.Unlock()
}

func TestCacheGetPut(t *testing.T) {
	c := NewCache(1<<20, 4, time.Minute, nil)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 42, 10)
	v, ok := c.Get("a")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 43, 10) // replace
	if v, _ := c.Get("a"); v.(int) != 43 {
		t.Fatalf("after replace Get(a) = %v", v)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	fc := &fakeClock{}
	c := NewCache(1<<20, 1, 10*time.Second, fc.Now)
	c.Put("postings", "v", 100)
	if _, ok := c.Get("postings"); !ok {
		t.Fatal("fresh entry missing")
	}
	fc.Advance(9 * time.Second)
	if _, ok := c.Get("postings"); !ok {
		t.Fatal("entry expired early")
	}
	fc.Advance(2 * time.Second) // now 11s > 10s TTL
	if _, ok := c.Get("postings"); ok {
		t.Fatal("expired entry served")
	}
	if st := c.Stats(); st.Expirations != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard, tiny budget: only the most recent entries survive.
	c := NewCache(3*(entryOverhead+2+100), 1, time.Minute, nil)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 100)
	}
	c.Get("k0") // refresh k0; k1 is now LRU
	c.Put("k3", 3, 100)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheOversizedValueNotCached(t *testing.T) {
	c := NewCache(1024, 1, time.Minute, nil)
	c.Put("huge", "v", 1<<20)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized value cached")
	}
}

func TestCacheInvalidateTag(t *testing.T) {
	c := NewCache(1<<20, 4, time.Minute, nil)
	c.Put("count|x", 1, 10, "idX")
	c.Put("join|x+y", "r", 10, "idX", "idY")
	c.Put("count|z", 2, 10, "idZ")
	if n := c.InvalidateTag("idX"); n != 2 {
		t.Fatalf("InvalidateTag(idX) = %d, want 2", n)
	}
	if _, ok := c.Get("count|x"); ok {
		t.Fatal("tagged entry survived")
	}
	if _, ok := c.Get("join|x+y"); ok {
		t.Fatal("multi-tag entry survived")
	}
	if _, ok := c.Get("count|z"); !ok {
		t.Fatal("unrelated entry purged")
	}
	// Tag index must not resurrect: re-inserting then invalidating again
	// works, and invalidating a dead tag is a no-op.
	if n := c.InvalidateTag("idX"); n != 0 {
		t.Fatalf("second InvalidateTag(idX) = %d, want 0", n)
	}
	c.Put("count|x", 3, 10, "idX")
	if n := c.InvalidateTag("idX"); n != 1 {
		t.Fatalf("third InvalidateTag(idX) = %d, want 1", n)
	}
}

// TestSingleflightOneExecution: N concurrent callers for one key run fn
// exactly once and all see its result. Run under -race in CI.
func TestSingleflightOneExecution(t *testing.T) {
	var g Group
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 16

	var wg sync.WaitGroup
	results := make([]any, n)
	errs := make([]error, n)
	shared := make([]bool, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, sh, err := g.Do(context.Background(), "hotkey", func() (any, error) {
				calls.Add(1)
				<-release // hold the flight open so others coalesce
				return "posting-set", nil
			})
			results[i], shared[i], errs[i] = v, sh, err
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// All goroutines launched; give waiters a beat to join the flight,
	// then let the leader finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != "posting-set" {
			t.Fatalf("caller %d got %v", i, results[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if g.Coalesced() != n-1 {
		t.Fatalf("Coalesced = %d, want %d", g.Coalesced(), n-1)
	}
}

func TestSingleflightSequentialCallsRunSeparately(t *testing.T) {
	var g Group
	calls := 0
	for i := 0; i < 3; i++ {
		_, shared, err := g.Do(context.Background(), "k", func() (any, error) {
			calls++
			return calls, nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (flights must not linger)", calls)
	}
}

func TestSingleflightErrorShared(t *testing.T) {
	var g Group
	boom := errors.New("owner unreachable")
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() (any, error) { //nolint:errcheck // checked via waiter
		<-release
		return nil, boom
	})
	// Wait until the flight is registered.
	for {
		g.mu.Lock()
		_, ok := g.flights["k"]
		g.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (any, error) { return "never", nil })
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(release)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("waiter err = %v, want leader's error", err)
	}
}

func TestSingleflightWaiterCancel(t *testing.T) {
	var g Group
	release := make(chan struct{})
	defer close(release)
	go g.Do(context.Background(), "k", func() (any, error) { //nolint:errcheck // leader parked on purpose
		<-release
		return nil, nil
	})
	for {
		g.mu.Lock()
		_, ok := g.flights["k"]
		g.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.Do(ctx, "k", func() (any, error) { return nil, nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: shared=%v err=%v", shared, err)
	}
}

func TestSketchHotDetection(t *testing.T) {
	fc := &fakeClock{}
	s := NewSketch(256, 10*time.Second, fc.Now)
	for i := 0; i < 20; i++ {
		s.Observe("madonna")
	}
	s.Observe("obscure-term")
	if got := s.Estimate("madonna"); got < 20 {
		t.Fatalf("hot estimate = %d, want >= 20", got)
	}
	if got := s.Estimate("never-seen"); got != 0 {
		t.Fatalf("cold estimate = %d, want 0", got)
	}
	// Decay: after a full window, the estimate has halved twice.
	fc.Advance(10 * time.Second)
	if got := s.Estimate("madonna"); got > 5 {
		t.Fatalf("post-window estimate = %d, want <= 5", got)
	}
	// Long idle: counters reset entirely.
	fc.Advance(time.Hour)
	if got := s.Estimate("madonna"); got != 0 {
		t.Fatalf("post-idle estimate = %d, want 0", got)
	}
}

func TestTierFanoutRoundRobin(t *testing.T) {
	tier := NewTier(Options{})
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		seen[tier.NextFanout(3)]++
	}
	if len(seen) != 3 || seen[0] != 3 || seen[1] != 3 || seen[2] != 3 {
		t.Fatalf("round robin spread = %v", seen)
	}
	if tier.Stats().FanoutReads != 6 {
		t.Fatalf("FanoutReads = %d, want 6", tier.Stats().FanoutReads)
	}
	if tier.NextFanout(1) != 0 {
		t.Fatal("single holder must stay at rank 0")
	}
}

func TestTierInvalidateID(t *testing.T) {
	tier := NewTier(Options{})
	id := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	tier.Data.Put("postings|x", "v", 10, string(id))
	if n := tier.InvalidateID(id); n != 1 {
		t.Fatalf("InvalidateID = %d, want 1", n)
	}
	if _, ok := tier.Data.Get("postings|x"); ok {
		t.Fatal("entry survived InvalidateID")
	}
}
