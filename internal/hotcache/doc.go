// Package hotcache is the hot-key survival tier: the pieces a node puts
// in front of its DHT read path so that Zipfian workloads — where a
// handful of popular keys absorb most of the traffic — do not melt the
// keys' owners.
//
// The package is deliberately free of dht/pier dependencies so it can be
// unit-tested in isolation and reused by any layer. It provides four
// cooperating pieces, usually bundled into a Tier:
//
//   - Cache: a sharded, size-bounded LRU with per-entry TTL and tag-based
//     invalidation. Entries carry tags (one per DHT key they derive from);
//     a publish for that key purges every dependent entry at once.
//   - Group: singleflight coalescing. N concurrent callers asking for the
//     same key share one execution of the fetch function; the result fans
//     out to all waiters. The wait primitive is pluggable so callers on a
//     virtual clock (internal/scale) can poll via clock sleeps instead of
//     blocking on a channel.
//   - Sketch: a decaying count-min frequency sketch approximating a
//     sliding-window per-key request rate. Keys whose estimate crosses a
//     threshold are "hot" and eligible for replica fan-out reads.
//   - Tier: the bundle an Engine installs — data cache, route cache,
//     flight group, sketch, and the counters (hits, coalesced, fan-out
//     reads, invalidations) the scale report aggregates.
//
// Time is injected as a Clock — a func returning an offset from an
// arbitrary epoch — so TTL and sketch decay run on virtual time inside
// the scale harness and on the monotonic wall clock everywhere else.
package hotcache
