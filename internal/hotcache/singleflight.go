package hotcache

import (
	"context"
	"sync"
	"sync/atomic"
)

// WaitFunc blocks until done is closed or ctx is canceled, returning
// ctx.Err() in the latter case. The default select-based wait is right
// for wall-clock callers; the scale harness substitutes a poll loop over
// its virtual clock's Sleep, because a bare channel receive would stall
// the serialized clock ("tasks blocked outside the clock").
type WaitFunc func(ctx context.Context, done <-chan struct{}) error

func defaultWait(ctx context.Context, done <-chan struct{}) error {
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Group coalesces concurrent calls for the same key into one execution:
// the first caller (the leader) runs fn, every overlapping caller waits
// and shares the leader's result. Distinct keys proceed independently.
type Group struct {
	// Wait overrides how non-leaders block for the leader (nil = channel
	// select). Set once, before use.
	Wait WaitFunc

	mu        sync.Mutex
	flights   map[string]*flight
	coalesced atomic.Int64
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn under key, coalescing with any in-flight call for the same
// key. shared is true when this caller got the leader's result instead
// of running fn itself. A canceled waiter returns its ctx error without
// disturbing the leader.
func (g *Group) Do(ctx context.Context, key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		wait := g.Wait
		if wait == nil {
			wait = defaultWait
		}
		if err := wait(ctx, f.done); err != nil {
			return nil, true, err
		}
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	if g.flights == nil {
		g.flights = make(map[string]*flight, 4)
	}
	g.flights[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Coalesced reports how many callers shared a leader's result.
func (g *Group) Coalesced() int64 { return g.coalesced.Load() }
