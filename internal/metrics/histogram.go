package metrics

import (
	"fmt"
	"math"
)

// Histogram is a fixed-geometry log-scale latency histogram: bucket edges
// grow geometrically from Lo to Hi, so relative quantile error is bounded
// by the per-bucket growth factor regardless of where the mass lands. The
// scale harness records one histogram per replay phase and serializes only
// the derived quantiles, so the geometry (not the samples) is what two
// runs must agree on for byte-identical reports.
//
// The zero value is not usable; construct with NewHistogram. Histogram is
// not safe for concurrent use — the virtual-time harness serialises all
// observers, and wall-clock callers must bring their own lock.
type Histogram struct {
	lo, hi  float64
	ratio   float64 // per-bucket growth factor, > 1
	counts  []uint64
	under   uint64 // samples below lo (counted into quantiles at lo)
	count   uint64
	sum     float64
	min, mx float64
}

// NewHistogram creates a histogram covering [lo, hi] with bucketsPerDecade
// geometric buckets per factor-of-ten. lo and hi must be positive with
// lo < hi; bucketsPerDecade must be positive. 40 buckets per decade keeps
// quantile error under ~6%.
func NewHistogram(lo, hi float64, bucketsPerDecade int) *Histogram {
	if lo <= 0 || hi <= lo || bucketsPerDecade <= 0 {
		panic(fmt.Sprintf("metrics: bad histogram geometry lo=%v hi=%v perDecade=%d", lo, hi, bucketsPerDecade))
	}
	ratio := math.Pow(10, 1/float64(bucketsPerDecade))
	n := int(math.Ceil(math.Log(hi/lo)/math.Log(ratio))) + 1
	return &Histogram{
		lo:     lo,
		hi:     hi,
		ratio:  ratio,
		counts: make([]uint64, n),
		min:    math.Inf(1),
		mx:     math.Inf(-1),
	}
}

// bucketOf returns the bucket index for v (v >= lo).
func (h *Histogram) bucketOf(v float64) int {
	i := int(math.Log(v/h.lo) / math.Log(h.ratio))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// Observe records one sample. Values below lo are clamped into the first
// bucket; values above hi into the last (Min/Max still record the true
// extremes).
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.mx {
		h.mx = v
	}
	if v < h.lo {
		h.under++
		return
	}
	h.counts[h.bucketOf(v)]++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observed sample (NaN when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest observed sample (NaN when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.mx
}

// HistQuantile returns the q-quantile (0 <= q <= 1) estimated from the
// bucket counts: the geometric midpoint of the bucket holding the q-th
// sample, clamped into [Min, Max] so tiny histograms do not report values
// outside the observed range. NaN when empty.
func (h *Histogram) HistQuantile(q float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based.
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	seen := h.under
	if seen >= rank {
		return h.clamp(h.lo)
	}
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			low := h.lo * math.Pow(h.ratio, float64(i))
			return h.clamp(low * math.Sqrt(h.ratio)) // geometric bucket midpoint
		}
	}
	return h.clamp(h.mx)
}

func (h *Histogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.mx {
		return h.mx
	}
	return v
}

// Merge folds other into h. The two histograms must share geometry
// (identical lo, hi and growth factor), or an error is returned and h is
// unchanged.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.lo != other.lo || h.hi != other.hi || h.ratio != other.ratio || len(h.counts) != len(other.counts) {
		return fmt.Errorf("metrics: histogram geometry mismatch: [%v,%v]x%v/%d vs [%v,%v]x%v/%d",
			h.lo, h.hi, h.ratio, len(h.counts), other.lo, other.hi, other.ratio, len(other.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.under += other.under
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.mx > h.mx {
			h.mx = other.mx
		}
	}
	return nil
}
