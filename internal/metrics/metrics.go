// Package metrics provides the small statistics toolkit the experiments
// share: CDFs, quantiles, means, and the Series/Table formatting used to
// print each figure's data the way the paper plots it.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value at the first point with X == x, or NaN.
func (s *Series) YAt(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF returns the empirical cumulative distribution of xs evaluated at the
// given thresholds: the percentage of samples <= t for each t.
func CDF(xs []float64, thresholds []float64) Series {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var s Series
	for _, t := range thresholds {
		n := sort.SearchFloat64s(sorted, math.Nextafter(t, math.Inf(1)))
		s.Add(t, 100*float64(n)/float64(len(sorted)))
	}
	return s
}

// FracAtMost returns the fraction of samples <= t.
func FracAtMost(xs []float64, t float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// BucketMeans groups (x, y) samples by x-bucket and returns the per-bucket
// mean of y against the bucket's mean x — the aggregation behind the
// paper's scatter-style Figures 4 and 7.
func BucketMeans(xs, ys []float64, edges []float64) Series {
	type acc struct {
		sx, sy float64
		n      int
	}
	buckets := make([]acc, len(edges)+1)
	idx := func(x float64) int {
		for i, e := range edges {
			if x <= e {
				return i
			}
		}
		return len(edges)
	}
	for i := range xs {
		b := idx(xs[i])
		buckets[b].sx += xs[i]
		buckets[b].sy += ys[i]
		buckets[b].n++
	}
	var s Series
	for _, b := range buckets {
		if b.n == 0 {
			continue
		}
		s.Add(b.sx/float64(b.n), b.sy/float64(b.n))
	}
	return s
}

// Table formats series into an aligned text table: the first column is X,
// one column per series. Rows are the union of all X values, sorted.
func Table(xLabel string, series ...Series) string {
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	widths := make([]int, len(series))
	for i, s := range series {
		widths[i] = len(s.Name)
		if widths[i] < 10 {
			widths[i] = 10
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	for i, s := range series {
		fmt.Fprintf(&b, " %*s", widths[i], s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14s", trimFloat(x))
		for i, s := range series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				fmt.Fprintf(&b, " %*s", widths[i], "-")
			} else {
				fmt.Fprintf(&b, " %*s", widths[i], trimFloat(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
