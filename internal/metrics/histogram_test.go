package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// histTolerance is the relative quantile error the geometry guarantees:
// one bucket's growth factor, plus slack for the midpoint estimate.
func histTolerance(perDecade int) float64 {
	return math.Pow(10, 1/float64(perDecade)) - 1 + 0.01
}

func checkQuantile(t *testing.T, h *Histogram, samples []float64, q float64, perDecade int) {
	t.Helper()
	exact := Quantile(samples, q)
	got := h.HistQuantile(q)
	tol := histTolerance(perDecade)
	if exact == 0 {
		if got > tol {
			t.Errorf("q=%v: got %v, want ~0", q, got)
		}
		return
	}
	if rel := math.Abs(got-exact) / exact; rel > tol {
		t.Errorf("q=%v: got %v, exact %v (rel err %.4f > %.4f)", q, got, exact, rel, tol)
	}
}

func TestHistogramQuantilesUniform(t *testing.T) {
	const perDecade = 40
	h := NewHistogram(1e-4, 100, perDecade)
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = 0.001 + rng.Float64()*0.999 // uniform on [1ms, 1s)
		h.Observe(samples[i])
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		checkQuantile(t, h, samples, q, perDecade)
	}
}

func TestHistogramQuantilesExponential(t *testing.T) {
	const perDecade = 40
	h := NewHistogram(1e-4, 100, perDecade)
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = 0.030 + rng.ExpFloat64()*0.040 // the wide-area latency shape
		h.Observe(samples[i])
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		checkQuantile(t, h, samples, q, perDecade)
	}
}

func TestHistogramQuantilesLognormal(t *testing.T) {
	const perDecade = 40
	h := NewHistogram(1e-4, 100, perDecade)
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = math.Exp(rng.NormFloat64()*0.8 - 2) // heavy-tailed
		h.Observe(samples[i])
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		checkQuantile(t, h, samples, q, perDecade)
	}
}

func TestHistogramMergeMatchesCombinedObservation(t *testing.T) {
	const perDecade = 40
	a := NewHistogram(1e-4, 100, perDecade)
	b := NewHistogram(1e-4, 100, perDecade)
	all := NewHistogram(1e-4, 100, perDecade)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		v := 0.001 + rng.Float64()*0.2
		a.Observe(v)
		all.Observe(v)
	}
	for i := 0; i < 5000; i++ {
		v := 0.5 + rng.Float64()*2
		b.Observe(v)
		all.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Sum()-all.Sum()) > 1e-9*all.Sum() {
		t.Fatalf("merged sum %v, want %v", a.Sum(), all.Sum())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged min/max %v/%v, want %v/%v", a.Min(), a.Max(), all.Min(), all.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := a.HistQuantile(q), all.HistQuantile(q); got != want {
			t.Errorf("q=%v: merged %v, combined %v", q, got, want)
		}
	}
}

func TestHistogramMergeGeometryMismatch(t *testing.T) {
	a := NewHistogram(1e-4, 100, 40)
	b := NewHistogram(1e-3, 100, 40)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched geometry succeeded")
	}
	c := NewHistogram(1e-4, 100, 20)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of mismatched bucket count succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge of nil: %v", err)
	}
}

func TestHistogramEmptyAndClamping(t *testing.T) {
	h := NewHistogram(1e-3, 10, 40)
	if !math.IsNaN(h.HistQuantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	if !math.IsNaN(h.Min()) || !math.IsNaN(h.Max()) {
		t.Error("empty histogram min/max should be NaN")
	}
	// Below-range and above-range samples clamp into the edge buckets but
	// Min/Max keep the true extremes.
	h.Observe(1e-6)
	h.Observe(100)
	if h.Min() != 1e-6 || h.Max() != 100 {
		t.Errorf("min/max = %v/%v, want 1e-6/100", h.Min(), h.Max())
	}
	if q := h.HistQuantile(0); q != 1e-3 {
		t.Errorf("q0 = %v, want clamp to first bucket edge 1e-3", q)
	}
	if q := h.HistQuantile(1); q < 10 || q > 100 {
		t.Errorf("q1 = %v, want within [hi, observed max]", q)
	}
}

func TestHistogramDeterminism(t *testing.T) {
	build := func() *Histogram {
		h := NewHistogram(1e-4, 100, 40)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 1000; i++ {
			h.Observe(0.001 + rng.Float64())
		}
		return h
	}
	a, b := build(), build()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		if a.HistQuantile(q) != b.HistQuantile(q) {
			t.Fatalf("q=%v differs between identical builds", q)
		}
	}
}
