package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 10}
	s := CDF(xs, []float64{0, 1, 2, 3, 10})
	wantY := []float64{0, 20, 60, 80, 100}
	for i, p := range s.Points {
		if math.Abs(p.Y-wantY[i]) > 1e-9 {
			t.Errorf("CDF at %v = %v, want %v", p.X, p.Y, wantY[i])
		}
	}
}

func TestFracAtMost(t *testing.T) {
	xs := []float64{0, 5, 10}
	if got := FracAtMost(xs, 5); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("FracAtMost = %v", got)
	}
	if FracAtMost(nil, 1) != 0 {
		t.Error("FracAtMost(nil) != 0")
	}
}

func TestBucketMeans(t *testing.T) {
	xs := []float64{1, 2, 10, 20}
	ys := []float64{10, 20, 100, 200}
	s := BucketMeans(xs, ys, []float64{5})
	if len(s.Points) != 2 {
		t.Fatalf("buckets = %d", len(s.Points))
	}
	if s.Points[0].X != 1.5 || s.Points[0].Y != 15 {
		t.Errorf("bucket 0 = %+v", s.Points[0])
	}
	if s.Points[1].X != 15 || s.Points[1].Y != 150 {
		t.Errorf("bucket 1 = %+v", s.Points[1])
	}
}

func TestSeriesYAt(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if s.YAt(2) != 20 {
		t.Error("YAt(2) wrong")
	}
	if !math.IsNaN(s.YAt(99)) {
		t.Error("YAt(missing) should be NaN")
	}
}

func TestTable(t *testing.T) {
	a := Series{Name: "alpha"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := Series{Name: "beta"}
	b.Add(2, 0.5)
	out := Table("x", a, b)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Error("missing headers")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table rows = %d:\n%s", len(lines), out)
	}
	// x=1 row has '-' for beta.
	if !strings.Contains(lines[1], "-") {
		t.Errorf("missing value not dashed: %q", lines[1])
	}
	if !strings.Contains(lines[2], "0.50") {
		t.Errorf("fractional value misformatted: %q", lines[2])
	}
}
