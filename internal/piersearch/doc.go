// Package piersearch implements the paper's primary contribution:
// PIERSearch, a keyword search engine for file-sharing built on the PIER
// distributed query processor (§3). A Publisher turns shared files into
// Item and Inverted (or InvertedCache) tuples published into the DHT; a
// Search engine answers conjunctive keyword queries either with the
// distributed symmetric-hash-join plan of Figure 2 or the single-site
// InvertedCache plan of Figure 3.
//
// # Concurrency
//
// Both halves of the pipeline run through bounded worker pools by
// default, because every DHT operation they issue is independent:
//
//   - Publisher.PublishFile expands a file into 1 Item tuple plus one
//     posting tuple per keyword per layout and puts them concurrently via
//     pier.(*Engine).PublishBatch.
//   - Search.Query, under StrategyJoin, delegates to the engine's
//     concurrent chain join (parallel probes + Bloom pre-join); under
//     both strategies the final Item fetches fan out in parallel.
//
// The fan-out bound defaults to the engine's pier.Config.Workers
// (default 8) and can be overridden per Publisher/Search with
// WithWorkers. WithWorkers(1) bounds only this package's fan-out
// (batch puts, Item fetches) and selects the sequential ChainJoin,
// whose selectivity probes still use the engine's own worker bound —
// to reproduce the fully sequential paper pipeline, as the root
// package's benchmarks do, also build the engine with
// pier.Config{Workers: 1}.
//
// PublishStats and SearchStats expose Wall (end-to-end wall-clock time)
// and MaxInFlight (the concurrency high-water mark) so the overlap is
// directly measurable next to the paper's message/byte accounting.
package piersearch
