package piersearch

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"piersearch/internal/pier"
)

// Table names in the DHT namespace.
const (
	TableItem          = "Item"
	TableInverted      = "Inverted"
	TableInvertedCache = "InvertedCache"
)

// ItemSchema is the paper's Item(fileID, filename, filesize, ipAddress,
// port) relation, published under fileID.
var ItemSchema = pier.MustSchema(TableItem,
	[]pier.Column{
		{Name: "fileID", Kind: pier.KindBytes},
		{Name: "filename", Kind: pier.KindString},
		{Name: "filesize", Kind: pier.KindInt},
		{Name: "ipAddress", Kind: pier.KindString},
		{Name: "port", Kind: pier.KindInt},
	},
	[]string{"fileID"}, "fileID")

// InvertedSchema is the paper's Inverted(keyword, fileID) relation,
// published under keyword so a keyword's posting list collects on one node.
var InvertedSchema = pier.MustSchema(TableInverted,
	[]pier.Column{
		{Name: "keyword", Kind: pier.KindString},
		{Name: "fileID", Kind: pier.KindBytes},
	},
	[]string{"keyword", "fileID"}, "keyword")

// InvertedCacheSchema is the InvertedCache(keyword, fileID, fulltext)
// variant of §3.2 that caches the filename on every posting entry.
var InvertedCacheSchema = pier.MustSchema(TableInvertedCache,
	[]pier.Column{
		{Name: "keyword", Kind: pier.KindString},
		{Name: "fileID", Kind: pier.KindBytes},
		{Name: "fulltext", Kind: pier.KindString},
	},
	[]string{"keyword", "fileID"}, "keyword")

// RegisterSchemas installs the PIERSearch catalog on a PIER engine. Every
// participating node must call this before publishing or querying.
func RegisterSchemas(e *pier.Engine) {
	e.Register(ItemSchema)
	e.Register(InvertedSchema)
	e.Register(InvertedCacheSchema)
}

// File is one shared file as advertised by a host.
type File struct {
	Name string
	Size int64
	Host string // IP address (or simulation host name)
	Port int
}

// FileID is the unique file identifier: per §3.1 it is a hash over the
// item's fields, so identical replicas on different hosts get distinct IDs
// while the same share republished hashes identically.
type FileID [sha1.Size]byte

// ID computes the file's identifier.
func (f File) ID() FileID {
	h := sha1.New()
	h.Write([]byte(f.Name))
	var sz [8]byte
	binary.BigEndian.PutUint64(sz[:], uint64(f.Size))
	h.Write(sz[:])
	h.Write([]byte(f.Host))
	binary.BigEndian.PutUint64(sz[:], uint64(f.Port))
	h.Write(sz[:])
	var id FileID
	copy(id[:], h.Sum(nil))
	return id
}

// String returns the hex form of the identifier.
func (id FileID) String() string { return fmt.Sprintf("%x", id[:]) }

// ItemTuple builds the Item tuple for f.
func (f File) ItemTuple() pier.Tuple {
	id := f.ID()
	return pier.Tuple{
		pier.Bytes(id[:]),
		pier.String(f.Name),
		pier.Int(f.Size),
		pier.String(f.Host),
		pier.Int(int64(f.Port)),
	}
}

// FileFromItemTuple reconstructs a File and its identifier from an Item
// tuple fetched out of the DHT.
func FileFromItemTuple(t pier.Tuple) (File, FileID, error) {
	if err := ItemSchema.Validate(t); err != nil {
		return File{}, FileID{}, err
	}
	var id FileID
	copy(id[:], t[0].Raw())
	return File{
		Name: t[1].Text(),
		Size: t[2].Num(),
		Host: t[3].Text(),
		Port: int(t[4].Num()),
	}, id, nil
}
