package piersearch

import (
	"fmt"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
)

// PublishMode selects the index layout.
type PublishMode int

// Publish modes.
const (
	// ModeInverted publishes Item + Inverted tuples (Figure 2 layout).
	ModeInverted PublishMode = iota
	// ModeInvertedCache publishes Item + InvertedCache tuples, caching the
	// filename on every posting entry (Figure 3 layout). Costs more to
	// publish, much less to query.
	ModeInvertedCache
	// ModeBoth publishes both index layouts, letting queries choose.
	ModeBoth
)

// PublishStats reports the cost of publishing one file.
type PublishStats struct {
	Tuples   int // tuples stored (1 Item + one per keyword per layout)
	Keywords int
	Messages int
	Bytes    int // total bytes sent publishing, incl. DHT routing
	// Wall is the end-to-end wall-clock time of the publish, the latency a
	// sharing host actually observes.
	Wall time.Duration
	// MaxInFlight is the high-water mark of concurrent DHT puts; 1 means
	// the publish ran fully sequentially.
	MaxInFlight int
}

func (s *PublishStats) addLookup(l dht.LookupStats) {
	s.Messages += l.Messages
	s.Bytes += l.Bytes
}

// Publisher turns shared files into PIERSearch tuples and publishes them
// into the DHT via a PIER engine (§3.1).
type Publisher struct {
	engine    *pier.Engine
	tokenizer Tokenizer
	mode      PublishMode
	workers   int
}

// NewPublisher creates a publisher. The engine must have the PIERSearch
// schemas registered (RegisterSchemas). The publish fan-out defaults to
// the engine's configured worker bound; use WithWorkers to override.
func NewPublisher(engine *pier.Engine, mode PublishMode, tk Tokenizer) *Publisher {
	return &Publisher{engine: engine, tokenizer: tk, mode: mode}
}

// WithWorkers bounds the number of concurrent DHT puts one PublishFile
// call keeps in flight (1 = sequential, 0 = engine default) and returns p
// for chaining.
func (p *Publisher) WithWorkers(n int) *Publisher {
	p.workers = n
	return p
}

// WithMode returns a copy of p that publishes under mode. Unlike
// WithWorkers it does not mutate p: the query-service daemon derives a
// per-request publisher from one shared template, and requests must not
// race each other's mode.
func (p *Publisher) WithMode(mode PublishMode) *Publisher {
	q := *p
	q.mode = mode
	return &q
}

// IndexTuples expands f into the index tuples publishing it under mode
// produces: one Item tuple plus one Inverted and/or InvertedCache tuple
// per keyword. Publisher feeds these through the DHT put path; the scale
// harness uses the same expansion to place a corpus directly on the
// replica sets during its zero-traffic load phase, so both paths index
// identically.
func IndexTuples(f File, keywords []string, mode PublishMode) []pier.Pub {
	pubs := make([]pier.Pub, 0, 1+2*len(keywords))
	pubs = append(pubs, pier.Pub{Table: TableItem, Tuple: f.ItemTuple()})
	id := f.ID()
	for _, kw := range keywords {
		if mode == ModeInverted || mode == ModeBoth {
			pubs = append(pubs, pier.Pub{Table: TableInverted,
				Tuple: pier.Tuple{pier.String(kw), pier.Bytes(id[:])}})
		}
		if mode == ModeInvertedCache || mode == ModeBoth {
			pubs = append(pubs, pier.Pub{Table: TableInvertedCache,
				Tuple: pier.Tuple{pier.String(kw), pier.Bytes(id[:]), pier.String(f.Name)}})
		}
	}
	return pubs
}

// PublishFile indexes one file: an Item tuple under its fileID and one
// Inverted/InvertedCache tuple per keyword of its filename. All tuples of
// the file are independent, so they are put into the DHT through a bounded
// worker pool rather than one at a time.
func (p *Publisher) PublishFile(f File) (PublishStats, error) {
	var stats PublishStats
	start := time.Now()
	keywords := p.tokenizer.Tokenize(f.Name)
	if len(keywords) == 0 {
		return stats, fmt.Errorf("piersearch: %q has no indexable keywords", f.Name)
	}
	stats.Keywords = len(keywords)

	res, err := p.engine.PublishBatch(IndexTuples(f, keywords, p.mode), p.workers)
	stats.addLookup(res.Stats)
	stats.Tuples = res.Published
	stats.MaxInFlight = res.MaxInFlight
	stats.Wall = time.Since(start)
	if err != nil {
		return stats, fmt.Errorf("piersearch: publish %q: %w", f.Name, err)
	}
	return stats, nil
}

// PublishAll publishes a batch of files, accumulating stats. It stops at
// the first error, returning the stats accumulated so far.
func (p *Publisher) PublishAll(files []File) (PublishStats, error) {
	var total PublishStats
	for _, f := range files {
		s, err := p.PublishFile(f)
		total.Tuples += s.Tuples
		total.Keywords += s.Keywords
		total.Messages += s.Messages
		total.Bytes += s.Bytes
		total.Wall += s.Wall
		if s.MaxInFlight > total.MaxInFlight {
			total.MaxInFlight = s.MaxInFlight
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
