package piersearch

import (
	"fmt"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
)

// PublishMode selects the index layout.
type PublishMode int

// Publish modes.
const (
	// ModeInverted publishes Item + Inverted tuples (Figure 2 layout).
	ModeInverted PublishMode = iota
	// ModeInvertedCache publishes Item + InvertedCache tuples, caching the
	// filename on every posting entry (Figure 3 layout). Costs more to
	// publish, much less to query.
	ModeInvertedCache
	// ModeBoth publishes both index layouts, letting queries choose.
	ModeBoth
)

// PublishStats reports the cost of publishing one file.
type PublishStats struct {
	Tuples   int // tuples generated (1 Item + one per keyword per layout)
	Keywords int
	Messages int
	Bytes    int // total bytes sent publishing, incl. DHT routing
}

func (s *PublishStats) addLookup(l dht.LookupStats) {
	s.Messages += l.Messages
	s.Bytes += l.Bytes
}

// Publisher turns shared files into PIERSearch tuples and publishes them
// into the DHT via a PIER engine (§3.1).
type Publisher struct {
	engine    *pier.Engine
	tokenizer Tokenizer
	mode      PublishMode
}

// NewPublisher creates a publisher. The engine must have the PIERSearch
// schemas registered (RegisterSchemas).
func NewPublisher(engine *pier.Engine, mode PublishMode, tk Tokenizer) *Publisher {
	return &Publisher{engine: engine, tokenizer: tk, mode: mode}
}

// Publish indexes one file: an Item tuple under its fileID and one
// Inverted/InvertedCache tuple per keyword of its filename.
func (p *Publisher) Publish(f File) (PublishStats, error) {
	var stats PublishStats
	keywords := p.tokenizer.Tokenize(f.Name)
	if len(keywords) == 0 {
		return stats, fmt.Errorf("piersearch: %q has no indexable keywords", f.Name)
	}
	stats.Keywords = len(keywords)

	ls, err := p.engine.Publish(TableItem, f.ItemTuple())
	stats.addLookup(ls)
	if err != nil {
		return stats, fmt.Errorf("piersearch: publish item: %w", err)
	}
	stats.Tuples++

	id := f.ID()
	for _, kw := range keywords {
		if p.mode == ModeInverted || p.mode == ModeBoth {
			ls, err := p.engine.Publish(TableInverted, pier.Tuple{pier.String(kw), pier.Bytes(id[:])})
			stats.addLookup(ls)
			if err != nil {
				return stats, fmt.Errorf("piersearch: publish inverted %q: %w", kw, err)
			}
			stats.Tuples++
		}
		if p.mode == ModeInvertedCache || p.mode == ModeBoth {
			ls, err := p.engine.Publish(TableInvertedCache,
				pier.Tuple{pier.String(kw), pier.Bytes(id[:]), pier.String(f.Name)})
			stats.addLookup(ls)
			if err != nil {
				return stats, fmt.Errorf("piersearch: publish cache %q: %w", kw, err)
			}
			stats.Tuples++
		}
	}
	return stats, nil
}

// PublishAll publishes a batch of files, accumulating stats. It stops at
// the first error, returning the stats accumulated so far.
func (p *Publisher) PublishAll(files []File) (PublishStats, error) {
	var total PublishStats
	for _, f := range files {
		s, err := p.Publish(f)
		total.Tuples += s.Tuples
		total.Keywords += s.Keywords
		total.Messages += s.Messages
		total.Bytes += s.Bytes
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
