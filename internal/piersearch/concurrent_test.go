package piersearch

import (
	"fmt"
	"sync"
	"testing"
)

// TestQueryConcurrentMatchesSequential checks that the concurrent query
// pipeline (parallel probes, Bloom pre-join, fetch fan-out) returns the
// same results as the sequential reference plan, for both strategies and
// several keyword counts.
func TestQueryConcurrentMatchesSequential(t *testing.T) {
	e := newEnv(t, 12)
	publishAll(t, e)
	seq := e.search(2).WithWorkers(1)
	conc := e.search(3).WithWorkers(8)

	for _, strategy := range []Strategy{StrategyJoin, StrategyCache} {
		for _, query := range []string{
			"madonna",
			"madonna prayer",
			"madonna like prayer",
			"obscure garage band demo",
		} {
			sRes, sStats, sErr := seq.Query(query, strategy, 0)
			cRes, cStats, cErr := conc.Query(query, strategy, 0)
			if (sErr == nil) != (cErr == nil) {
				t.Fatalf("%s %q: sequential err %v, concurrent err %v", strategy, query, sErr, cErr)
			}
			if sErr != nil {
				continue
			}
			sNames, cNames := names(sRes), names(cRes)
			if fmt.Sprint(sNames) != fmt.Sprint(cNames) {
				t.Errorf("%s %q: sequential %v != concurrent %v", strategy, query, sNames, cNames)
			}
			if cStats.Matches != sStats.Matches {
				t.Errorf("%s %q: matches %d != %d", strategy, query, cStats.Matches, sStats.Matches)
			}
			if cStats.Wall <= 0 || sStats.Wall <= 0 {
				t.Errorf("%s %q: Wall not recorded (%v, %v)", strategy, query, sStats.Wall, cStats.Wall)
			}
		}
	}
}

// TestConcurrentJoinShipsNoMorePostings verifies the Bloom pre-join never
// increases the posting traffic of the matching phase.
func TestConcurrentJoinShipsNoMorePostings(t *testing.T) {
	e := newEnv(t, 12)
	publishAll(t, e)
	_, seqStats, err := e.search(1).WithWorkers(1).Query("madonna like prayer", StrategyJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, concStats, err := e.search(1).WithWorkers(8).Query("madonna like prayer", StrategyJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if concStats.PostingShipped > seqStats.PostingShipped {
		t.Errorf("PostingShipped: concurrent %d > sequential %d", concStats.PostingShipped, seqStats.PostingShipped)
	}
}

// TestConcurrentPublishAndQuery overlaps publishers and searchers across
// nodes; run with -race to exercise the full pipeline's locking.
func TestConcurrentPublishAndQuery(t *testing.T) {
	e := newEnv(t, 12)
	publishAll(t, e)

	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pub := e.publisher(g % len(e.engines))
			for i := 0; i < 6; i++ {
				f := File{
					Name: fmt.Sprintf("Concurrent Artist - Track %d-%d.mp3", g, i),
					Size: int64(1_000_000 + g*1000 + i),
					Host: fmt.Sprintf("10.1.%d.%d", g, i),
					Port: 6346,
				}
				if _, err := pub.PublishFile(f); err != nil {
					errs <- err
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			search := e.search((g + 3) % len(e.engines))
			for i := 0; i < 6; i++ {
				strategy := StrategyJoin
				if i%2 == 1 {
					strategy = StrategyCache
				}
				if _, _, err := search.Query("madonna prayer", strategy, 0); err != nil {
					errs <- fmt.Errorf("query: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Everything published concurrently must now be findable.
	res, _, err := e.search(0).Query("concurrent artist", StrategyJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 36 {
		t.Errorf("found %d concurrent-artist files, want 36", len(res))
	}
}
