package piersearch

import (
	"context"
	"errors"
	"testing"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/plan"
)

func newStreamEnv(t *testing.T) *Search {
	t.Helper()
	cluster, err := dht.NewCluster(6, 1, dht.Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*pier.Engine, len(cluster.Nodes))
	for i, node := range cluster.Nodes {
		engines[i] = pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		RegisterSchemas(engines[i])
	}
	pub := NewPublisher(engines[1], ModeBoth, Tokenizer{})
	for _, name := range []string{"delta epsilon one.mp3", "delta epsilon two.mp3"} {
		if _, err := pub.PublishFile(File{Name: name, Size: 10, Host: "10.1.1.1", Port: 6346}); err != nil {
			t.Fatal(err)
		}
	}
	return NewSearch(engines[0], Tokenizer{})
}

// Regression: Next after Close must report clean exhaustion (ErrDone), not
// race the released plan, and a double Close must be a nil no-op.
func TestResultStreamNextAfterClose(t *testing.T) {
	search := newStreamEnv(t)
	rs, err := search.QueryContext(context.Background(), Query{Text: "delta epsilon", Strategy: StrategyJoin})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rs.Next(); !errors.Is(err, ErrDone) {
			t.Fatalf("Next after Close = %v, want ErrDone", err)
		}
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("triple Close = %v, want nil", err)
	}
}

// A stream that died with an execution error keeps reporting that error,
// not ErrDone, even after Close.
func TestResultStreamErrorSticks(t *testing.T) {
	search := newStreamEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead on arrival: the first Next observes the canceled context
	rs, err := search.QueryContext(ctx, Query{Text: "delta epsilon", Strategy: StrategyJoin})
	if err != nil {
		// Open itself may observe the cancel; that is also a valid outcome.
		if !errors.Is(err, plan.ErrCanceled) {
			t.Fatalf("QueryContext = %v, want ErrCanceled", err)
		}
		return
	}
	_, err = rs.Next()
	if !errors.Is(err, plan.ErrCanceled) {
		t.Fatalf("Next under canceled ctx = %v, want ErrCanceled", err)
	}
	rs.Close()
	if _, err := rs.Next(); !errors.Is(err, plan.ErrCanceled) {
		t.Fatalf("Next after error+Close = %v, want the sticky error", err)
	}
}

// Stats and Explain stay readable after Close.
func TestResultStreamStatsAfterClose(t *testing.T) {
	search := newStreamEnv(t)
	rs, err := search.QueryContext(context.Background(), Query{Text: "delta epsilon", Strategy: StrategyCache})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := rs.Next()
		if errors.Is(err, ErrDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	rs.Close()
	if n != 2 {
		t.Fatalf("%d results, want 2", n)
	}
	stats := rs.Stats()
	if stats.Messages == 0 || stats.Wall == 0 {
		t.Errorf("post-close stats empty: %+v", stats)
	}
	if rs.Explain() == "" {
		t.Error("post-close Explain empty for a plan-backed stream")
	}
}
