package piersearch

import (
	"context"
	"errors"
	"fmt"
	"time"

	"piersearch/internal/plan"
	"piersearch/internal/telemetry"
)

// ErrDone is returned by ResultStream.Next once the stream is exhausted.
// It aliases plan.ErrDone, so either sentinel matches with errors.Is.
var ErrDone = plan.ErrDone

// ErrInvalidQuery tags compile-time query failures — no indexable
// keywords, an unknown strategy, a query the planner cannot shape. It
// distinguishes "the request is unanswerable" from execution failures,
// which the network query service maps to different error codes (a
// client should not retry an invalid query, but may retry a failed one).
var ErrInvalidQuery = errors.New("piersearch: invalid query")

// Query is one conjunctive keyword query for QueryContext.
type Query struct {
	// Text is the raw query string; it is tokenized with the search's
	// tokenizer.
	Text string
	// Strategy selects the query plan.
	Strategy Strategy
	// Limit caps the results (0 = unlimited). The cap is pushed into the
	// match phase: at most Limit candidate fileIDs are shipped or
	// fetched, and the stream terminates early once Limit results have
	// been produced.
	Limit int
	// Workers bounds concurrent DHT operations per plan stage (0 = the
	// search default, 1 = fully sequential execution).
	Workers int
}

// Catalog returns the plan catalog binding the PIERSearch relations, for
// callers composing their own operator trees or planners.
func Catalog() plan.Catalog {
	return plan.Catalog{
		PostingTable: TableInverted,
		CacheTable:   TableInvertedCache,
		ItemTable:    TableItem,
		JoinCol:      "fileID",
		TextCol:      "fulltext",
	}
}

// planStrategy maps the public strategy to the planner's.
func planStrategy(s Strategy) (plan.Strategy, error) {
	switch s {
	case StrategyJoin:
		return plan.StrategyJoin, nil
	case StrategyCache:
		return plan.StrategyCache, nil
	default:
		return 0, fmt.Errorf("piersearch: unknown strategy %d", s)
	}
}

// compile turns q into a compiled operator plan without opening it — the
// shared front half of QueryContext and Explain. Every failure here is a
// request-shape problem and carries ErrInvalidQuery.
func (s *Search) compile(q Query) (*plan.CompiledPlan, int, error) {
	keywords := s.tokenizer.Tokenize(q.Text)
	if len(keywords) == 0 {
		return nil, 0, fmt.Errorf("%w: %q has no indexable keywords", ErrInvalidQuery, q.Text)
	}
	strat, err := planStrategy(q.Strategy)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	workers := q.Workers
	if workers <= 0 {
		workers = s.effectiveWorkers()
	}
	planner := plan.Planner{Engine: s.engine, Catalog: Catalog()}
	compiled, err := planner.Plan(plan.Query{
		Terms:    keywords,
		Strategy: strat,
		Limit:    q.Limit,
		Options:  plan.Options{Workers: workers},
	})
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	return compiled, len(keywords), nil
}

// Explain compiles q and renders the operator tree the planner chose,
// without executing anything: no DHT traffic, no stream to close.
func (s *Search) Explain(q Query) (string, error) {
	compiled, _, err := s.compile(q)
	if err != nil {
		return "", err
	}
	return compiled.Explain(), nil
}

// QueryContext compiles q into an operator plan, opens it under ctx, and
// returns a stream of results. Results arrive incrementally: each Next
// pulls the plan, so item tuples are fetched in bounded batches as the
// caller consumes, and a caller that stops early (or cancels ctx) stops
// the remaining fetches. The stream must be closed.
//
// QueryContext is the local execution path of the network query service:
// internal/service daemons answer each remote OpenQuery by running exactly
// this function on the node that received it, so library callers and
// remote clients share one API and one executor.
//
// Cancellation: once ctx is done, in-flight DHT round-trips abort and
// Next returns an error matching both plan.ErrCanceled and the context's
// own error.
func (s *Search) QueryContext(ctx context.Context, q Query) (*ResultStream, error) {
	start := time.Now()
	compiled, keywords, err := s.compile(q)
	if err != nil {
		return nil, err
	}
	// Trace: continue the span already in ctx (a traced service stream),
	// or mint a fresh trace when the node has a tracer attached (local
	// callers with -trace). With neither, qsp is nil and every tracing
	// call below no-ops without allocating.
	ctx, qsp := telemetry.StartSpan(ctx, "piersearch.query")
	if qsp == nil {
		if tr := s.engine.Node().Tracer(); tr != nil {
			ctx, qsp = tr.StartRoot(ctx, "piersearch.query")
		}
	}
	if qsp != nil {
		qsp.SetAttr("q", q.Text)
		qsp.SetAttr("strategy", q.Strategy.String())
	}
	if err := compiled.Root.Open(ctx); err != nil {
		compiled.Root.Close() //nolint:errcheck // open failed; best-effort release
		qsp.FinishErr(err)
		return nil, err
	}
	return StreamFromSource(&planSource{
		strategy: q.Strategy,
		keywords: keywords,
		compiled: compiled,
		start:    start,
		sctx:     ctx,
		span:     qsp,
	}), nil
}

// Source produces results for a ResultStream: the local plan executor and
// the query service's remote client both implement it, which is what lets
// in-process and over-the-network queries share the ResultStream shape.
type Source interface {
	// Next returns the next result, or ErrDone at clean exhaustion.
	Next() (Result, error)
	// Close releases the source. Called at most once.
	Close() error
	// Stats reports the query's cost so far.
	Stats() SearchStats
}

// ExplainSource is implemented by sources that can render their query
// plan; ResultStream.Explain uses it.
type ExplainSource interface {
	Explain() string
}

// TraceSource is implemented by sources that carry distributed trace
// spans for their query; ResultStream.Trace uses it. Local plans
// return the spans the node's tracer collected (including those
// absorbed from remote owners); service streams return the spans the
// daemon shipped on Done.
type TraceSource interface {
	Trace() []telemetry.Span
}

// StreamFromSource wraps src in the public stream shape.
func StreamFromSource(src Source) *ResultStream { return &ResultStream{src: src} }

// planSource executes a compiled operator plan in-process: the local
// service path.
type planSource struct {
	strategy Strategy
	keywords int
	compiled *plan.CompiledPlan
	start    time.Time
	wall     time.Duration // fixed once the stream finishes or closes

	// Tracing state: sctx carries the query span for per-operator span
	// emission at finish; span is the query span itself (nil = untraced).
	sctx context.Context
	span *telemetry.ActiveSpan
}

func (ps *planSource) Next() (Result, error) {
	for {
		t, err := ps.compiled.Root.Next()
		if err != nil {
			ps.fixWall()
			return Result{}, err
		}
		file, id, err := FileFromItemTuple(t)
		if err != nil {
			continue // malformed or foreign tuple under this key: skip
		}
		return Result{File: file, FileID: id}, nil
	}
}

func (ps *planSource) Close() error {
	ps.fixWall()
	return ps.compiled.Root.Close()
}

func (ps *planSource) fixWall() {
	if ps.wall == 0 {
		ps.wall = time.Since(ps.start)
		// The query is over: emit the per-operator cost spans and close
		// the query span. No-ops when untraced.
		if ps.span != nil {
			plan.EmitSpans(ps.sctx, ps.compiled.Root)
			ps.span.Finish()
		}
	}
}

// Trace returns every span the executing node's tracer holds for this
// query — its own operators, its lookup probes and RPCs, and the spans
// absorbed from the remote owners that served them. Nil when untraced.
func (ps *planSource) Trace() []telemetry.Span {
	return ps.span.Tracer().TraceSpans(ps.span.Trace())
}

func (ps *planSource) Explain() string { return ps.compiled.Explain() }

func (ps *planSource) Stats() SearchStats {
	total := plan.TotalStats(ps.compiled.Root)
	match := ps.compiled.Match.Stats()
	stats := SearchStats{
		Strategy:       ps.strategy,
		Keywords:       ps.keywords,
		Matches:        match.Tuples,
		Messages:       total.Messages,
		Bytes:          total.Bytes,
		Hops:           total.Hops,
		PostingShipped: total.PostingShipped,
		MatchBytes:     plan.TotalStats(ps.compiled.Match).Bytes,
		MaxInFlight:    total.MaxInFlight,
		CacheHits:      total.CacheHits,
		Coalesced:      total.Coalesced,
		FanoutReads:    total.FanoutReads,
		Wall:           ps.wall,
	}
	if stats.Wall == 0 {
		stats.Wall = time.Since(ps.start)
	}
	return stats
}

// ResultStream delivers query results incrementally. It is not safe for
// concurrent use.
type ResultStream struct {
	src    Source
	err    error // terminal error (ErrDone after clean exhaustion)
	closed bool
}

// Next returns the next result. It returns ErrDone once the stream is
// exhausted or closed (and on every later call), or the execution error
// that killed the stream. Item tuples that fail to parse are skipped,
// matching the legacy fetch phase's tolerance of churned-out holders.
func (rs *ResultStream) Next() (Result, error) {
	if rs.err != nil {
		return Result{}, rs.err
	}
	if rs.closed {
		// A closed stream has nothing more to deliver; report clean
		// exhaustion rather than racing the released plan.
		return Result{}, ErrDone
	}
	r, err := rs.src.Next()
	if err != nil {
		rs.err = err
		return Result{}, err
	}
	return r, nil
}

// Close releases the stream. Idempotent: the second and later calls
// return nil without touching the source. Safe after Next returned an
// error.
func (rs *ResultStream) Close() error {
	if rs.closed {
		return nil
	}
	rs.closed = true
	return rs.src.Close()
}

// Stats reports the query's cost so far: totals over the whole operator
// tree, plus the match-phase figures §7 compares between plans. The
// numbers grow as the stream is consumed and are final once Next has
// returned ErrDone or the stream is closed. For a remote stream the
// figures are the daemon's, one batch behind the results.
func (rs *ResultStream) Stats() SearchStats { return rs.src.Stats() }

// Explain renders the stream's query plan with the stats accrued so far,
// when the source can (local plans and service streams both can); it
// returns "" otherwise.
func (rs *ResultStream) Explain() string {
	if e, ok := rs.src.(ExplainSource); ok {
		return e.Explain()
	}
	return ""
}

// Trace returns the distributed trace spans collected for this query,
// or nil when tracing was off or the source cannot supply them. Most
// useful after the stream finishes; render with telemetry.RenderTree.
func (rs *ResultStream) Trace() []telemetry.Span {
	if t, ok := rs.src.(TraceSource); ok {
		return t.Trace()
	}
	return nil
}
