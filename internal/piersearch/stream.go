package piersearch

import (
	"context"
	"fmt"
	"time"

	"piersearch/internal/plan"
)

// ErrDone is returned by ResultStream.Next once the stream is exhausted.
// It aliases plan.ErrDone, so either sentinel matches with errors.Is.
var ErrDone = plan.ErrDone

// Query is one conjunctive keyword query for QueryContext.
type Query struct {
	// Text is the raw query string; it is tokenized with the search's
	// tokenizer.
	Text string
	// Strategy selects the query plan.
	Strategy Strategy
	// Limit caps the results (0 = unlimited). The cap is pushed into the
	// match phase: at most Limit candidate fileIDs are shipped or
	// fetched, and the stream terminates early once Limit results have
	// been produced.
	Limit int
	// Workers bounds concurrent DHT operations per plan stage (0 = the
	// search default, 1 = fully sequential execution).
	Workers int
}

// Catalog returns the plan catalog binding the PIERSearch relations, for
// callers composing their own operator trees or planners.
func Catalog() plan.Catalog {
	return plan.Catalog{
		PostingTable: TableInverted,
		CacheTable:   TableInvertedCache,
		ItemTable:    TableItem,
		JoinCol:      "fileID",
		TextCol:      "fulltext",
	}
}

// planStrategy maps the public strategy to the planner's.
func planStrategy(s Strategy) (plan.Strategy, error) {
	switch s {
	case StrategyJoin:
		return plan.StrategyJoin, nil
	case StrategyCache:
		return plan.StrategyCache, nil
	default:
		return 0, fmt.Errorf("piersearch: unknown strategy %d", s)
	}
}

// QueryContext compiles q into an operator plan, opens it under ctx, and
// returns a stream of results. Results arrive incrementally: each Next
// pulls the plan, so item tuples are fetched in bounded batches as the
// caller consumes, and a caller that stops early (or cancels ctx) stops
// the remaining fetches. The stream must be closed.
//
// Cancellation: once ctx is done, in-flight DHT round-trips abort and
// Next returns an error matching both plan.ErrCanceled and the context's
// own error.
func (s *Search) QueryContext(ctx context.Context, q Query) (*ResultStream, error) {
	start := time.Now()
	keywords := s.tokenizer.Tokenize(q.Text)
	if len(keywords) == 0 {
		return nil, fmt.Errorf("piersearch: query %q has no indexable keywords", q.Text)
	}
	strat, err := planStrategy(q.Strategy)
	if err != nil {
		return nil, err
	}
	workers := q.Workers
	if workers <= 0 {
		workers = s.effectiveWorkers()
	}
	planner := plan.Planner{Engine: s.engine, Catalog: Catalog()}
	compiled, err := planner.Plan(plan.Query{
		Terms:    keywords,
		Strategy: strat,
		Limit:    q.Limit,
		Options:  plan.Options{Workers: workers},
	})
	if err != nil {
		return nil, err
	}
	if err := compiled.Root.Open(ctx); err != nil {
		compiled.Root.Close() //nolint:errcheck // open failed; best-effort release
		return nil, err
	}
	return &ResultStream{
		strategy: q.Strategy,
		keywords: len(keywords),
		compiled: compiled,
		start:    start,
	}, nil
}

// ResultStream delivers query results incrementally. It is not safe for
// concurrent use.
type ResultStream struct {
	strategy Strategy
	keywords int
	compiled *plan.CompiledPlan
	start    time.Time

	wall   time.Duration // fixed once the stream finishes or closes
	err    error         // terminal error (ErrDone after clean exhaustion)
	closed bool
}

// Next returns the next result. It returns ErrDone once the stream is
// exhausted (and on every later call), or the execution error that killed
// the stream. Item tuples that fail to parse are skipped, matching the
// legacy fetch phase's tolerance of churned-out holders.
func (rs *ResultStream) Next() (Result, error) {
	if rs.err != nil {
		return Result{}, rs.err
	}
	if rs.closed {
		return Result{}, fmt.Errorf("piersearch: result stream closed")
	}
	for {
		t, err := rs.compiled.Root.Next()
		if err != nil {
			rs.err = err
			rs.fixWall()
			return Result{}, err
		}
		file, id, err := FileFromItemTuple(t)
		if err != nil {
			continue // malformed or foreign tuple under this key: skip
		}
		return Result{File: file, FileID: id}, nil
	}
}

// Close releases the plan. Idempotent; safe after Next returned an error.
func (rs *ResultStream) Close() error {
	if rs.closed {
		return nil
	}
	rs.closed = true
	rs.fixWall()
	return rs.compiled.Root.Close()
}

func (rs *ResultStream) fixWall() {
	if rs.wall == 0 {
		rs.wall = time.Since(rs.start)
	}
}

// Stats reports the query's cost so far: totals over the whole operator
// tree, plus the match-phase figures §7 compares between plans. The
// numbers grow as the stream is consumed and are final once Next has
// returned ErrDone or the stream is closed.
func (rs *ResultStream) Stats() SearchStats {
	total := plan.TotalStats(rs.compiled.Root)
	match := rs.compiled.Match.Stats()
	stats := SearchStats{
		Strategy:       rs.strategy,
		Keywords:       rs.keywords,
		Matches:        match.Tuples,
		Messages:       total.Messages,
		Bytes:          total.Bytes,
		Hops:           total.Hops,
		PostingShipped: total.PostingShipped,
		MatchBytes:     plan.TotalStats(rs.compiled.Match).Bytes,
		MaxInFlight:    total.MaxInFlight,
		Wall:           rs.wall,
	}
	if stats.Wall == 0 {
		stats.Wall = time.Since(rs.start)
	}
	return stats
}
