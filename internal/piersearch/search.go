package piersearch

import (
	"context"
	"errors"
	"sort"
	"time"

	"piersearch/internal/pier"
)

// Strategy selects the query plan.
type Strategy int

// Query strategies.
const (
	// StrategyJoin executes the distributed symmetric-hash-join chain over
	// Inverted posting lists (Figure 2).
	StrategyJoin Strategy = iota
	// StrategyCache sends the whole query to one keyword owner and filters
	// by substring over the cached fulltext (Figure 3, InvertedCache).
	StrategyCache
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategyCache {
		return "inverted-cache"
	}
	return "distributed-join"
}

// Result is one query answer: a file location.
type Result struct {
	File   File
	FileID FileID
}

// SearchStats reports the cost of answering one query.
type SearchStats struct {
	Strategy       Strategy
	Keywords       int
	Matches        int // fileIDs matched before Item fetch
	Messages       int
	Bytes          int
	Hops           int
	PostingShipped int
	// MatchBytes is the traffic of the fileID-matching phase alone,
	// excluding the final Item fetches — the quantity §7 compares between
	// the InvertedCache (~850 B) and distributed-join (~20 KB) plans.
	MatchBytes int
	// Wall is the end-to-end wall-clock latency of the query as the user
	// observes it.
	Wall time.Duration
	// MaxInFlight is the high-water mark of concurrent DHT operations
	// during the query; 1 means the plan executed fully sequentially.
	MaxInFlight int
	// CacheHits counts plan steps answered from the node's hot-key tier
	// without network traffic; Coalesced counts steps that shared another
	// in-flight identical call; FanoutReads counts hot-key reads spread
	// to a non-primary replica. All zero when no tier is installed.
	CacheHits   int
	Coalesced   int
	FanoutReads int
}

// Search answers conjunctive keyword queries against the PIERSearch index.
type Search struct {
	engine    *pier.Engine
	tokenizer Tokenizer
	workers   int
}

// NewSearch creates a search engine. The PIER engine must have the
// PIERSearch schemas registered. The query fan-out defaults to the
// engine's configured worker bound; use WithWorkers to override.
func NewSearch(engine *pier.Engine, tk Tokenizer) *Search {
	return &Search{engine: engine, tokenizer: tk}
}

// WithWorkers bounds the number of concurrent DHT operations one Query
// call keeps in flight (1 = sequential, 0 = engine default) and returns s
// for chaining.
func (s *Search) WithWorkers(n int) *Search {
	s.workers = n
	return s
}

func (s *Search) effectiveWorkers() int {
	if s.workers > 0 {
		return s.workers
	}
	return s.engine.Workers()
}

// Query answers query with the given strategy, returning up to limit
// results (0 = unlimited). Results are sorted by filename then host for
// deterministic output. With more than one worker configured, the join
// plan runs through the engine's concurrent chain join (parallel probes,
// Bloom pre-join) and the final Item fetches fan out through a bounded
// worker pool.
//
// Query is the blocking convenience wrapper over QueryContext: it compiles
// the same operator plan, drains the stream and sorts. Use QueryContext to
// stream results incrementally or to cancel a wide-area query in flight.
func (s *Search) Query(query string, strategy Strategy, limit int) ([]Result, SearchStats, error) {
	start := time.Now()
	rs, err := s.QueryContext(context.Background(), Query{Text: query, Strategy: strategy, Limit: limit}) //lint:allow ctxflow Query is the documented blocking wrapper; cancelable callers use QueryContext
	if err != nil {
		return nil, SearchStats{Strategy: strategy, Wall: time.Since(start)}, err
	}
	defer rs.Close()

	var results []Result
	for {
		r, err := rs.Next()
		if errors.Is(err, ErrDone) {
			break
		}
		if err != nil {
			stats := rs.Stats()
			stats.Wall = time.Since(start)
			return nil, stats, err
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].File.Name != results[j].File.Name {
			return results[i].File.Name < results[j].File.Name
		}
		return results[i].File.Host < results[j].File.Host
	})
	stats := rs.Stats()
	stats.Wall = time.Since(start)
	return results, stats, nil
}
