package piersearch

import (
	"fmt"
	"sort"

	"piersearch/internal/pier"
)

// Strategy selects the query plan.
type Strategy int

// Query strategies.
const (
	// StrategyJoin executes the distributed symmetric-hash-join chain over
	// Inverted posting lists (Figure 2).
	StrategyJoin Strategy = iota
	// StrategyCache sends the whole query to one keyword owner and filters
	// by substring over the cached fulltext (Figure 3, InvertedCache).
	StrategyCache
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategyCache {
		return "inverted-cache"
	}
	return "distributed-join"
}

// Result is one query answer: a file location.
type Result struct {
	File   File
	FileID FileID
}

// SearchStats reports the cost of answering one query.
type SearchStats struct {
	Strategy       Strategy
	Keywords       int
	Matches        int // fileIDs matched before Item fetch
	Messages       int
	Bytes          int
	Hops           int
	PostingShipped int
	// MatchBytes is the traffic of the fileID-matching phase alone,
	// excluding the final Item fetches — the quantity §7 compares between
	// the InvertedCache (~850 B) and distributed-join (~20 KB) plans.
	MatchBytes int
}

// Search answers conjunctive keyword queries against the PIERSearch index.
type Search struct {
	engine    *pier.Engine
	tokenizer Tokenizer
}

// NewSearch creates a search engine. The PIER engine must have the
// PIERSearch schemas registered.
func NewSearch(engine *pier.Engine, tk Tokenizer) *Search {
	return &Search{engine: engine, tokenizer: tk}
}

// Query answers query with the given strategy, returning up to limit
// results (0 = unlimited). Results are sorted by filename then host for
// deterministic output.
func (s *Search) Query(query string, strategy Strategy, limit int) ([]Result, SearchStats, error) {
	stats := SearchStats{Strategy: strategy}
	keywords := s.tokenizer.Tokenize(query)
	if len(keywords) == 0 {
		return nil, stats, fmt.Errorf("piersearch: query %q has no indexable keywords", query)
	}
	stats.Keywords = len(keywords)

	var fileIDs []pier.Value
	switch strategy {
	case StrategyJoin:
		keys := make([]pier.Value, len(keywords))
		for i, kw := range keywords {
			keys[i] = pier.String(kw)
		}
		values, op, err := s.engine.ChainJoin(TableInverted, keys, "fileID", limit)
		stats.Messages += op.Messages
		stats.Bytes += op.Bytes
		stats.MatchBytes += op.Bytes
		stats.Hops += op.Hops
		stats.PostingShipped += op.PostingShipped
		if err != nil {
			return nil, stats, err
		}
		fileIDs = values

	case StrategyCache:
		filters := make([]string, 0, len(keywords)-1)
		for _, kw := range keywords[1:] {
			filters = append(filters, kw)
		}
		tuples, op, err := s.engine.CacheSelect(TableInvertedCache, pier.String(keywords[0]), filters, "fulltext", limit)
		stats.Messages += op.Messages
		stats.Bytes += op.Bytes
		stats.MatchBytes += op.Bytes
		stats.Hops += op.Hops
		if err != nil {
			return nil, stats, err
		}
		seen := map[string]bool{}
		for _, t := range tuples {
			id := t[1]
			if k := id.Key(); !seen[k] {
				seen[k] = true
				fileIDs = append(fileIDs, id)
			}
		}

	default:
		return nil, stats, fmt.Errorf("piersearch: unknown strategy %d", strategy)
	}
	stats.Matches = len(fileIDs)

	// Final stage of both plans: fetch the Item tuples by fileID.
	var results []Result
	for _, idv := range fileIDs {
		if limit > 0 && len(results) >= limit {
			break
		}
		tuples, ls, err := s.engine.Fetch(TableItem, idv)
		stats.Messages += ls.Messages
		stats.Bytes += ls.Bytes
		stats.Hops += ls.Hops
		if err != nil {
			continue // a missing Item (e.g. holder churned out) drops one result
		}
		for _, t := range tuples {
			f, id, err := FileFromItemTuple(t)
			if err != nil {
				continue
			}
			results = append(results, Result{File: f, FileID: id})
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].File.Name != results[j].File.Name {
			return results[i].File.Name < results[j].File.Name
		}
		return results[i].File.Host < results[j].File.Host
	})
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results, stats, nil
}
