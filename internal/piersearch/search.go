package piersearch

import (
	"fmt"
	"sort"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
)

// Strategy selects the query plan.
type Strategy int

// Query strategies.
const (
	// StrategyJoin executes the distributed symmetric-hash-join chain over
	// Inverted posting lists (Figure 2).
	StrategyJoin Strategy = iota
	// StrategyCache sends the whole query to one keyword owner and filters
	// by substring over the cached fulltext (Figure 3, InvertedCache).
	StrategyCache
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategyCache {
		return "inverted-cache"
	}
	return "distributed-join"
}

// Result is one query answer: a file location.
type Result struct {
	File   File
	FileID FileID
}

// SearchStats reports the cost of answering one query.
type SearchStats struct {
	Strategy       Strategy
	Keywords       int
	Matches        int // fileIDs matched before Item fetch
	Messages       int
	Bytes          int
	Hops           int
	PostingShipped int
	// MatchBytes is the traffic of the fileID-matching phase alone,
	// excluding the final Item fetches — the quantity §7 compares between
	// the InvertedCache (~850 B) and distributed-join (~20 KB) plans.
	MatchBytes int
	// Wall is the end-to-end wall-clock latency of the query as the user
	// observes it.
	Wall time.Duration
	// MaxInFlight is the high-water mark of concurrent DHT operations
	// during the query; 1 means the plan executed fully sequentially.
	MaxInFlight int
}

// Search answers conjunctive keyword queries against the PIERSearch index.
type Search struct {
	engine    *pier.Engine
	tokenizer Tokenizer
	workers   int
}

// NewSearch creates a search engine. The PIER engine must have the
// PIERSearch schemas registered. The query fan-out defaults to the
// engine's configured worker bound; use WithWorkers to override.
func NewSearch(engine *pier.Engine, tk Tokenizer) *Search {
	return &Search{engine: engine, tokenizer: tk}
}

// WithWorkers bounds the number of concurrent DHT operations one Query
// call keeps in flight (1 = sequential, 0 = engine default) and returns s
// for chaining.
func (s *Search) WithWorkers(n int) *Search {
	s.workers = n
	return s
}

func (s *Search) effectiveWorkers() int {
	if s.workers > 0 {
		return s.workers
	}
	return s.engine.Workers()
}

// Query answers query with the given strategy, returning up to limit
// results (0 = unlimited). Results are sorted by filename then host for
// deterministic output. With more than one worker configured, the join
// plan runs through the engine's concurrent chain join (parallel probes,
// Bloom pre-join) and the final Item fetches fan out through a bounded
// worker pool.
func (s *Search) Query(query string, strategy Strategy, limit int) ([]Result, SearchStats, error) {
	start := time.Now()
	results, stats, err := s.run(query, strategy, limit)
	stats.Wall = time.Since(start)
	return results, stats, err
}

func (s *Search) run(query string, strategy Strategy, limit int) ([]Result, SearchStats, error) {
	stats := SearchStats{Strategy: strategy}
	keywords := s.tokenizer.Tokenize(query)
	if len(keywords) == 0 {
		return nil, stats, fmt.Errorf("piersearch: query %q has no indexable keywords", query)
	}
	stats.Keywords = len(keywords)
	workers := s.effectiveWorkers()

	var fileIDs []pier.Value
	switch strategy {
	case StrategyJoin:
		keys := make([]pier.Value, len(keywords))
		for i, kw := range keywords {
			keys[i] = pier.String(kw)
		}
		join := s.engine.ChainJoin
		if workers > 1 {
			join = s.engine.ChainJoinConcurrent
		}
		values, op, err := join(TableInverted, keys, "fileID", limit)
		stats.Messages += op.Messages
		stats.Bytes += op.Bytes
		stats.MatchBytes += op.Bytes
		stats.Hops += op.Hops
		stats.PostingShipped += op.PostingShipped
		if op.MaxInFlight > stats.MaxInFlight {
			stats.MaxInFlight = op.MaxInFlight
		}
		if err != nil {
			return nil, stats, err
		}
		fileIDs = values

	case StrategyCache:
		filters := make([]string, 0, len(keywords)-1)
		for _, kw := range keywords[1:] {
			filters = append(filters, kw)
		}
		tuples, op, err := s.engine.CacheSelect(TableInvertedCache, pier.String(keywords[0]), filters, "fulltext", limit)
		stats.Messages += op.Messages
		stats.Bytes += op.Bytes
		stats.MatchBytes += op.Bytes
		stats.Hops += op.Hops
		if err != nil {
			return nil, stats, err
		}
		seen := map[string]bool{}
		for _, t := range tuples {
			id := t[1]
			if k := id.Key(); !seen[k] {
				seen[k] = true
				fileIDs = append(fileIDs, id)
			}
		}

	default:
		return nil, stats, fmt.Errorf("piersearch: unknown strategy %d", strategy)
	}
	stats.Matches = len(fileIDs)

	// Final stage of both plans: fetch the Item tuples by fileID. The
	// fileID list is already capped at limit by the match phase, and every
	// fetch is independent, so they run through the worker pool.
	results := s.fetchItems(fileIDs, workers, limit, &stats)
	sort.Slice(results, func(i, j int) bool {
		if results[i].File.Name != results[j].File.Name {
			return results[i].File.Name < results[j].File.Name
		}
		return results[i].File.Host < results[j].File.Host
	})
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results, stats, nil
}

// fetchItems resolves fileIDs to Item tuples with up to workers concurrent
// fetches. A missing Item (e.g. holder churned out) drops one result.
func (s *Search) fetchItems(fileIDs []pier.Value, workers, limit int, stats *SearchStats) []Result {
	if limit > 0 && len(fileIDs) > limit {
		fileIDs = fileIDs[:limit]
	}
	type fetched struct {
		tuples []pier.Tuple
		ls     dht.LookupStats
		err    error
	}
	// Each worker writes a distinct element, so no lock is needed; the
	// pool's WaitGroup orders the writes before the merge below.
	out := make([]fetched, len(fileIDs))
	inFlight := pier.ForEach(len(fileIDs), workers, func(i int) {
		tuples, ls, err := s.engine.Fetch(TableItem, fileIDs[i])
		out[i] = fetched{tuples, ls, err}
	})
	if inFlight > stats.MaxInFlight {
		stats.MaxInFlight = inFlight
	}
	var results []Result
	for _, f := range out {
		stats.Messages += f.ls.Messages
		stats.Bytes += f.ls.Bytes
		stats.Hops += f.ls.Hops
		if f.err != nil {
			continue
		}
		for _, t := range f.tuples {
			file, id, err := FileFromItemTuple(t)
			if err != nil {
				continue
			}
			results = append(results, Result{File: file, FileID: id})
		}
	}
	return results
}
