package piersearch

// Equivalence acceptance tests: for every trace query, the plan-based
// path must return the same result set (same fileIDs, any order) as the
// legacy monolithic entrypoints (ChainJoinConcurrent / CacheSelect +
// manual Item fetch), with byte counts within 5%.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"piersearch/internal/pier"
	"piersearch/internal/trace"
)

// legacyRun replicates the pre-plan Search.run code path: the monolithic
// engine entrypoint for the strategy, then a manual worker-pool Item
// fetch. It is the reference the operator plan is measured against.
func legacyRun(e *env, at int, keywords []string, strat Strategy, limit int) (map[string]bool, int, error) {
	engine := e.engines[at]
	bytes := 0
	var fileIDs []pier.Value
	switch strat {
	case StrategyJoin:
		keys := make([]pier.Value, len(keywords))
		for i, kw := range keywords {
			keys[i] = pier.String(kw)
		}
		values, op, err := engine.ChainJoinConcurrent(TableInverted, keys, "fileID", limit)
		bytes += op.Bytes
		if err != nil {
			return nil, bytes, err
		}
		fileIDs = values
	case StrategyCache:
		tuples, op, err := engine.CacheSelect(TableInvertedCache, pier.String(keywords[0]), keywords[1:], "fulltext", limit)
		bytes += op.Bytes
		if err != nil {
			return nil, bytes, err
		}
		seen := map[string]bool{}
		for _, t := range tuples {
			if k := t[1].Key(); !seen[k] {
				seen[k] = true
				fileIDs = append(fileIDs, t[1])
			}
		}
	}
	if limit > 0 && len(fileIDs) > limit {
		fileIDs = fileIDs[:limit]
	}
	ids := map[string]bool{}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	pier.ForEach(len(fileIDs), engine.Workers(), func(i int) {
		tuples, ls, err := engine.Fetch(TableItem, fileIDs[i])
		<-mu
		bytes += ls.Bytes
		if err == nil {
			for _, t := range tuples {
				if _, id, err := FileFromItemTuple(t); err == nil {
					ids[id.String()] = true
				}
			}
		}
		mu <- struct{}{}
	})
	return ids, bytes, nil
}

// planRun drives the same query through QueryContext's operator plan.
func planRun(e *env, at int, text string, strat Strategy, limit int) (map[string]bool, int, error) {
	rs, err := e.search(at).QueryContext(context.Background(), Query{Text: text, Strategy: strat, Limit: limit})
	if err != nil {
		return nil, 0, err
	}
	defer rs.Close()
	ids := map[string]bool{}
	for {
		r, err := rs.Next()
		if errors.Is(err, ErrDone) {
			break
		}
		if err != nil {
			return ids, rs.Stats().Bytes, err
		}
		ids[r.FileID.String()] = true
	}
	return ids, rs.Stats().Bytes, nil
}

func sameIDs(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// within5pct allows a small absolute slack for near-empty queries, where
// a single extra routing hop dwarfs any percentage.
func within5pct(legacy, planned int) bool {
	diff := legacy - planned
	if diff < 0 {
		diff = -diff
	}
	slack := legacy / 20
	if slack < 512 {
		slack = 512
	}
	return diff <= slack
}

func TestPlanMatchesLegacyOnTraceQueries(t *testing.T) {
	tr := trace.Generate(trace.Config{
		DistinctFiles: 150, TargetCopies: 260, Hosts: 80,
		Vocabulary: 60, Queries: 20, Seed: 9,
	})
	e := newEnv(t, 24)
	for rank, f := range tr.Files {
		file := File{
			Name: f.Name, Size: int64(1_000_000 + rank),
			Host: fmt.Sprintf("10.9.%d.%d", rank/200, rank%200), Port: 6346,
		}
		if _, err := e.publisher(rank % len(e.engines)).PublishFile(file); err != nil {
			t.Fatal(err)
		}
	}

	tk := Tokenizer{}
	checked := 0
	for qi, q := range tr.Queries {
		keywords := tk.Tokenize(q.Text)
		if len(keywords) == 0 {
			continue
		}
		for _, strat := range []Strategy{StrategyJoin, StrategyCache} {
			// Warm both paths once so routing tables settle identically,
			// then measure.
			if _, _, err := legacyRun(e, 5, keywords, strat, 0); err != nil {
				t.Fatalf("query %d warmup legacy %v: %v", qi, strat, err)
			}
			if _, _, err := planRun(e, 5, q.Text, strat, 0); err != nil {
				t.Fatalf("query %d warmup plan %v: %v", qi, strat, err)
			}

			legacyIDs, legacyBytes, err := legacyRun(e, 5, keywords, strat, 0)
			if err != nil {
				t.Fatalf("query %d legacy %v: %v", qi, strat, err)
			}
			planIDs, planBytes, err := planRun(e, 5, q.Text, strat, 0)
			if err != nil {
				t.Fatalf("query %d plan %v: %v", qi, strat, err)
			}
			if !sameIDs(legacyIDs, planIDs) {
				t.Errorf("query %d (%q) %v: plan returned %d fileIDs, legacy %d",
					qi, q.Text, strat, len(planIDs), len(legacyIDs))
			}
			if !within5pct(legacyBytes, planBytes) {
				t.Errorf("query %d (%q) %v: plan bytes %d vs legacy %d (>5%%)",
					qi, q.Text, strat, planBytes, legacyBytes)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d query/strategy pairs checked; trace too sparse", checked)
	}
}

func TestPlanMatchesLegacyWithLimit(t *testing.T) {
	e := newEnv(t, 24)
	for i := 0; i < 12; i++ {
		f := File{Name: fmt.Sprintf("shared keyword track%02d.mp3", i), Size: 1000,
			Host: fmt.Sprintf("10.8.0.%d", i), Port: 6346}
		if _, err := e.publisher(i % len(e.engines)).PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}
	for _, strat := range []Strategy{StrategyJoin, StrategyCache} {
		legacyIDs, _, err := legacyRun(e, 2, []string{"shared", "keyword"}, strat, 5)
		if err != nil {
			t.Fatal(err)
		}
		planIDs, _, err := planRun(e, 2, "shared keyword", strat, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(legacyIDs) != 5 || len(planIDs) != 5 {
			t.Errorf("%v: limit 5 gave legacy %d, plan %d", strat, len(legacyIDs), len(planIDs))
		}
	}
}

// TestStreamEarlyTermination pins the traffic payoff of the pull model: a
// consumer that stops after two results must not pay for the remaining
// item fetches a full drain performs.
func TestStreamEarlyTermination(t *testing.T) {
	e := newEnv(t, 24)
	for i := 0; i < 16; i++ {
		f := File{Name: fmt.Sprintf("common term song%02d.mp3", i), Size: 1000,
			Host: fmt.Sprintf("10.7.0.%d", i), Port: 6346}
		if _, err := e.publisher(i % len(e.engines)).PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}
	run := func(stopAfter int) int {
		t.Helper()
		rs, err := e.search(6).QueryContext(context.Background(),
			Query{Text: "common term", Strategy: StrategyJoin, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		for i := 0; stopAfter <= 0 || i < stopAfter; i++ {
			if _, err := rs.Next(); err != nil {
				if errors.Is(err, ErrDone) {
					break
				}
				t.Fatal(err)
			}
		}
		return rs.Stats().Bytes
	}
	full := run(0)
	early := run(2)
	if early >= full {
		t.Errorf("early-terminated stream cost %d bytes, full drain %d — no fetches saved", early, full)
	}
}
