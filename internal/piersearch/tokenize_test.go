package piersearch

import (
	"reflect"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	tk := Tokenizer{}
	got := tk.Tokenize("Madonna - Like A Prayer.mp3")
	want := []string{"madonna", "like", "prayer"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDropsStopwordsAndShortTerms(t *testing.T) {
	tk := Tokenizer{}
	got := tk.Tokenize("The Best of X and Y.mp3")
	want := []string{"best"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDeduplicates(t *testing.T) {
	tk := Tokenizer{}
	got := tk.Tokenize("live live LIVE concert")
	want := []string{"live", "concert"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndPunctuation(t *testing.T) {
	tk := Tokenizer{}
	if got := tk.Tokenize(""); got != nil {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := tk.Tokenize("!!! --- ..."); got != nil {
		t.Errorf("Tokenize(punct) = %v", got)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	tk := Tokenizer{}
	got := tk.Tokenize("track01 remix 2004")
	want := []string{"track01", "remix", "2004"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeCustomStopwordsAndMinLength(t *testing.T) {
	tk := Tokenizer{Stopwords: map[string]bool{"xx": true}, MinLength: 3}
	got := tk.Tokenize("xx yy zzz")
	want := []string{"zzz"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestAdjacentPairs(t *testing.T) {
	tk := Tokenizer{}
	got := tk.AdjacentPairs("alpha beta gamma")
	want := [][2]string{{"alpha", "beta"}, {"beta", "gamma"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AdjacentPairs = %v, want %v", got, want)
	}
}

func TestAdjacentPairsSkipStopwords(t *testing.T) {
	// Stopwords are removed before pairing, so surviving neighbours pair.
	tk := Tokenizer{}
	got := tk.AdjacentPairs("alpha the beta")
	want := [][2]string{{"alpha", "beta"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AdjacentPairs = %v, want %v", got, want)
	}
}

func TestAdjacentPairsDeduplicated(t *testing.T) {
	tk := Tokenizer{}
	got := tk.AdjacentPairs("ab cd ab cd")
	// pairs: (ab,cd) (cd,ab) (ab,cd dup)
	want := [][2]string{{"ab", "cd"}, {"cd", "ab"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AdjacentPairs = %v, want %v", got, want)
	}
}

func TestAdjacentPairsSingleTerm(t *testing.T) {
	tk := Tokenizer{}
	if got := tk.AdjacentPairs("alpha"); got != nil {
		t.Errorf("AdjacentPairs(single) = %v", got)
	}
}

func TestSplitAlnum(t *testing.T) {
	got := splitAlnum("ab-cd_ef 12.gh")
	want := []string{"ab", "cd", "ef", "12", "gh"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitAlnum = %v, want %v", got, want)
	}
}
