package piersearch

import (
	"strings"
)

// DefaultStopwords are the terms never indexed. The paper calls out "MP3"
// and "the" explicitly; the rest are common filename noise in Gnutella
// traces (file extensions, articles, conjunctions).
var DefaultStopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "and": true, "or": true,
	"in": true, "on": true, "to": true, "is": true, "it": true, "at": true,
	"mp3": true, "avi": true, "mpg": true, "mpeg": true, "wav": true,
	"wma": true, "jpg": true, "gif": true, "zip": true, "exe": true,
	"feat": true, "ft": true, "vs": true,
}

// Tokenizer splits filenames and queries into index terms.
type Tokenizer struct {
	// Stopwords maps terms to skip. Nil means DefaultStopwords.
	Stopwords map[string]bool
	// MinLength drops shorter terms; zero means 2.
	MinLength int
}

func (tk Tokenizer) stop(term string) bool {
	sw := tk.Stopwords
	if sw == nil {
		sw = DefaultStopwords
	}
	return sw[term]
}

func (tk Tokenizer) minLen() int {
	if tk.MinLength <= 0 {
		return 2
	}
	return tk.MinLength
}

// Tokenize lowercases s, splits it on non-alphanumeric characters, and
// drops stopwords and too-short terms. Duplicates are removed, first
// occurrence order preserved — the keyword set of the paper's §3.1.
func (tk Tokenizer) Tokenize(s string) []string {
	var terms []string
	seen := map[string]bool{}
	for _, raw := range splitAlnum(s) {
		term := strings.ToLower(raw)
		if len(term) < tk.minLen() || tk.stop(term) || seen[term] {
			continue
		}
		seen[term] = true
		terms = append(terms, term)
	}
	return terms
}

// AdjacentPairs returns the ordered adjacent term pairs of s after
// tokenization, the unit of the Term-Pair-Frequency rare-item scheme (§5).
// Pairing happens before deduplication so repeated terms still pair up, but
// the returned pairs themselves are deduplicated.
func (tk Tokenizer) AdjacentPairs(s string) [][2]string {
	var kept []string
	for _, raw := range splitAlnum(s) {
		term := strings.ToLower(raw)
		if len(term) < tk.minLen() || tk.stop(term) {
			continue
		}
		kept = append(kept, term)
	}
	var pairs [][2]string
	seen := map[[2]string]bool{}
	for i := 0; i+1 < len(kept); i++ {
		p := [2]string{kept[i], kept[i+1]}
		if !seen[p] {
			seen[p] = true
			pairs = append(pairs, p)
		}
	}
	return pairs
}

// splitAlnum splits s into maximal runs of ASCII letters and digits.
func splitAlnum(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if alnum {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}
