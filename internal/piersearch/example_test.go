package piersearch_test

import (
	"fmt"
	"log"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
)

// Example shows the whole PIERSearch lifecycle: build a DHT, register the
// catalog, publish a file and answer a keyword query.
func Example() {
	cluster, err := dht.NewCluster(16, 42, dht.Config{K: 8, Alpha: 2, Replicate: 2})
	if err != nil {
		log.Fatal(err)
	}
	engines := make([]*pier.Engine, len(cluster.Nodes))
	for i, node := range cluster.Nodes {
		engines[i] = pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engines[i])
	}

	pub := piersearch.NewPublisher(engines[0], piersearch.ModeBoth, piersearch.Tokenizer{})
	stats, err := pub.PublishFile(piersearch.File{
		Name: "Basement Demo - Hidden Track.mp3",
		Size: 2_000_000, Host: "10.0.0.4", Port: 6346,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d tuples for %d keywords\n", stats.Tuples, stats.Keywords)

	search := piersearch.NewSearch(engines[9], piersearch.Tokenizer{})
	results, _, err := search.Query("basement hidden", piersearch.StrategyJoin, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("found %s at %s:%d\n", r.File.Name, r.File.Host, r.File.Port)
	}
	// Output:
	// published 9 tuples for 4 keywords
	// found Basement Demo - Hidden Track.mp3 at 10.0.0.4:6346
}

// ExampleTokenizer shows keyword extraction with the paper's stopword
// handling ("MP3" and "the" are never indexed).
func ExampleTokenizer() {
	tk := piersearch.Tokenizer{}
	fmt.Println(tk.Tokenize("Madonna - The Best of.mp3"))
	fmt.Println(tk.AdjacentPairs("like a prayer"))
	// Output:
	// [madonna best]
	// [[like prayer]]
}
