package piersearch

import (
	"fmt"
	"os"
	"testing"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/store"
)

type env struct {
	cluster *dht.Cluster
	engines []*pier.Engine
}

func newEnv(t testing.TB, n int) *env {
	t.Helper()
	// PIERSEARCH_STORE=disk runs the suite over the log-structured disk
	// engine, one store directory per node.
	cfg := dht.Config{}
	if os.Getenv("PIERSEARCH_STORE") == "disk" {
		cfg.NewStorage = store.DiskFactory(t.TempDir(), store.Options{})
	}
	cluster, err := dht.NewCluster(n, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() }) //nolint:errcheck // test teardown
	e := &env{cluster: cluster}
	for _, node := range cluster.Nodes {
		eng := pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		RegisterSchemas(eng)
		e.engines = append(e.engines, eng)
	}
	return e
}

func (e *env) publisher(i int) *Publisher {
	return NewPublisher(e.engines[i], ModeBoth, Tokenizer{})
}

func (e *env) search(i int) *Search {
	return NewSearch(e.engines[i], Tokenizer{})
}

func testFiles() []File {
	return []File{
		{Name: "Madonna - Like a Prayer.mp3", Size: 4_100_000, Host: "10.0.0.1", Port: 6346},
		{Name: "Madonna - Like a Prayer.mp3", Size: 4_100_000, Host: "10.0.0.2", Port: 6346},
		{Name: "Madonna - Music.mp3", Size: 3_900_000, Host: "10.0.0.3", Port: 6346},
		{Name: "Obscure Garage Band - Demo Tape.mp3", Size: 2_000_000, Host: "10.0.0.4", Port: 6346},
		{Name: "Beatles - Yesterday.mp3", Size: 2_400_000, Host: "10.0.0.5", Port: 6346},
	}
}

func publishAll(t testing.TB, e *env) {
	t.Helper()
	for i, f := range testFiles() {
		if _, err := e.publisher(i % len(e.engines)).PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}
}

func names(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.File.Name + "@" + r.File.Host
	}
	return out
}

func TestFileIDDistinguishesReplicasAndIsStable(t *testing.T) {
	f1 := File{Name: "a.mp3", Size: 1, Host: "h1", Port: 1}
	f2 := File{Name: "a.mp3", Size: 1, Host: "h2", Port: 1}
	if f1.ID() == f2.ID() {
		t.Error("replicas on different hosts share a fileID")
	}
	if f1.ID() != f1.ID() {
		t.Error("fileID not deterministic")
	}
	if f1.ID().String() == "" || len(f1.ID().String()) != 40 {
		t.Error("fileID hex form wrong")
	}
}

func TestItemTupleRoundTrip(t *testing.T) {
	f := File{Name: "x.mp3", Size: 123, Host: "1.2.3.4", Port: 6346}
	got, id, err := FileFromItemTuple(f.ItemTuple())
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Errorf("round trip: %+v != %+v", got, f)
	}
	if id != f.ID() {
		t.Error("fileID changed in round trip")
	}
	if _, _, err := FileFromItemTuple(pier.Tuple{pier.String("bad")}); err == nil {
		t.Error("malformed tuple accepted")
	}
}

func TestSearchBothStrategiesFindAllReplicas(t *testing.T) {
	e := newEnv(t, 24)
	publishAll(t, e)
	for _, strat := range []Strategy{StrategyJoin, StrategyCache} {
		results, stats, err := e.search(9).Query("madonna prayer", strat, 0)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(results) != 2 {
			t.Fatalf("%v: results = %v, want both replicas", strat, names(results))
		}
		for _, r := range results {
			if r.File.Name != "Madonna - Like a Prayer.mp3" {
				t.Errorf("%v: wrong file %q", strat, r.File.Name)
			}
		}
		if stats.Keywords != 2 {
			t.Errorf("%v: keywords = %d", strat, stats.Keywords)
		}
	}
}

func TestSearchStrategiesAgree(t *testing.T) {
	e := newEnv(t, 24)
	publishAll(t, e)
	for _, q := range []string{"madonna", "madonna music", "beatles yesterday", "obscure demo", "prayer"} {
		a, _, err := e.search(3).Query(q, StrategyJoin, 0)
		if err != nil {
			t.Fatalf("join %q: %v", q, err)
		}
		b, _, err := e.search(3).Query(q, StrategyCache, 0)
		if err != nil {
			t.Fatalf("cache %q: %v", q, err)
		}
		an, bn := names(a), names(b)
		if len(an) != len(bn) {
			t.Fatalf("%q: join %v != cache %v", q, an, bn)
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("%q: join %v != cache %v", q, an, bn)
			}
		}
	}
}

func TestSearchRareItemPerfectRecall(t *testing.T) {
	// The headline property: a DHT index finds a single-replica item that
	// flooding would likely miss.
	e := newEnv(t, 32)
	publishAll(t, e)
	results, _, err := e.search(20).Query("obscure garage demo", StrategyJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].File.Host != "10.0.0.4" {
		t.Fatalf("rare item results = %v", names(results))
	}
}

func TestSearchNoMatches(t *testing.T) {
	e := newEnv(t, 16)
	publishAll(t, e)
	results, stats, err := e.search(0).Query("nonexistent keywords", StrategyJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || stats.Matches != 0 {
		t.Errorf("results = %v, matches = %d", names(results), stats.Matches)
	}
}

func TestSearchStopwordOnlyQueryFails(t *testing.T) {
	e := newEnv(t, 8)
	if _, _, err := e.search(0).Query("the of mp3", StrategyJoin, 0); err == nil {
		t.Error("stopword-only query accepted")
	}
	if _, _, err := e.search(0).Query("", StrategyCache, 0); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSearchLimit(t *testing.T) {
	e := newEnv(t, 24)
	for i := 0; i < 10; i++ {
		f := File{Name: fmt.Sprintf("shared keyword track%02d.mp3", i), Size: 1000, Host: fmt.Sprintf("10.1.0.%d", i), Port: 6346}
		if _, err := e.publisher(i % len(e.engines)).PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}
	for _, strat := range []Strategy{StrategyJoin, StrategyCache} {
		results, _, err := e.search(5).Query("shared keyword", strat, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 3 {
			t.Errorf("%v: limit 3 returned %d", strat, len(results))
		}
	}
}

func TestPublishStatsAndModes(t *testing.T) {
	e := newEnv(t, 16)
	f := File{Name: "one two three.mp3", Size: 1, Host: "h", Port: 1}

	sInv, err := NewPublisher(e.engines[0], ModeInverted, Tokenizer{}).PublishFile(f)
	if err != nil {
		t.Fatal(err)
	}
	// 3 keywords -> 1 Item + 3 Inverted.
	if sInv.Tuples != 4 || sInv.Keywords != 3 {
		t.Errorf("inverted stats = %+v", sInv)
	}

	f2 := File{Name: "one two three.mp3", Size: 1, Host: "h2", Port: 1}
	sCache, err := NewPublisher(e.engines[1], ModeInvertedCache, Tokenizer{}).PublishFile(f2)
	if err != nil {
		t.Fatal(err)
	}
	if sCache.Tuples != 4 {
		t.Errorf("cache stats = %+v", sCache)
	}
	// InvertedCache carries the filename per entry: more bytes (§7's
	// 3.5 KB -> 4 KB observation, directionally).
	if sCache.Bytes <= 0 || sInv.Bytes <= 0 {
		t.Fatal("no publish bytes recorded")
	}

	f3 := File{Name: "one two three.mp3", Size: 1, Host: "h3", Port: 1}
	sBoth, err := NewPublisher(e.engines[2], ModeBoth, Tokenizer{}).PublishFile(f3)
	if err != nil {
		t.Fatal(err)
	}
	if sBoth.Tuples != 7 {
		t.Errorf("both stats = %+v", sBoth)
	}
}

func TestPublishUnindexableFile(t *testing.T) {
	e := newEnv(t, 8)
	if _, err := e.publisher(0).PublishFile(File{Name: "...", Size: 1, Host: "h", Port: 1}); err == nil {
		t.Error("unindexable file accepted")
	}
}

func TestPublishAllAccumulates(t *testing.T) {
	e := newEnv(t, 16)
	stats, err := e.publisher(0).PublishAll(testFiles())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples == 0 || stats.Bytes == 0 {
		t.Errorf("PublishAll stats = %+v", stats)
	}
	results, _, err := e.search(3).Query("madonna", StrategyJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Errorf("after PublishAll, madonna results = %d, want 3", len(results))
	}
}

func TestCacheQueryCheaperForMultiKeyword(t *testing.T) {
	// §7: with InvertedCache the query goes to one node (~850 B); the
	// distributed join ships posting lists (~20 KB). Verify the ordering.
	e := newEnv(t, 32)
	for i := 0; i < 40; i++ {
		f := File{Name: fmt.Sprintf("britney spears hit%02d.mp3", i), Size: 1000, Host: fmt.Sprintf("10.2.0.%d", i), Port: 6346}
		if _, err := e.publisher(i % len(e.engines)).PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}
	net := e.cluster.Net

	before := net.Stats()
	if _, _, err := e.search(3).Query("britney spears", StrategyJoin, 0); err != nil {
		t.Fatal(err)
	}
	joinBytes := net.Stats().Sub(before).Bytes

	before = net.Stats()
	if _, _, err := e.search(3).Query("britney spears", StrategyCache, 0); err != nil {
		t.Fatal(err)
	}
	cacheBytes := net.Stats().Sub(before).Bytes

	if cacheBytes >= joinBytes {
		t.Errorf("cache bytes %d >= join bytes %d", cacheBytes, joinBytes)
	}
}

func TestSearchSurvivesChurn(t *testing.T) {
	e := newEnv(t, 40)
	publishAll(t, e)
	// Remove a quarter of the nodes; replication should preserve most
	// results for a popular query.
	for i := 0; i < 10; i++ {
		e.cluster.RemoveNode(len(e.cluster.Nodes) - 1)
	}
	results, _, err := e.search(2).Query("madonna", StrategyJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("all results lost after 25% churn")
	}
}

func BenchmarkPublish(b *testing.B) {
	e := newEnv(b, 32)
	pub := e.publisher(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := File{Name: fmt.Sprintf("artist%02d album track%03d.mp3", i%50, i), Size: int64(i), Host: "10.0.0.9", Port: 6346}
		if _, err := pub.PublishFile(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchJoin(b *testing.B) {
	e := newEnv(b, 32)
	for i := 0; i < 100; i++ {
		f := File{Name: fmt.Sprintf("artist%02d common track%03d.mp3", i%10, i), Size: int64(i), Host: "10.0.0.9", Port: 6346}
		if _, err := e.publisher(i % 32).PublishFile(f); err != nil {
			b.Fatal(err)
		}
	}
	s := e.search(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(fmt.Sprintf("artist%02d common", i%10), StrategyJoin, 0)
	}
}

func BenchmarkSearchCache(b *testing.B) {
	e := newEnv(b, 32)
	for i := 0; i < 100; i++ {
		f := File{Name: fmt.Sprintf("artist%02d common track%03d.mp3", i%10, i), Size: int64(i), Host: "10.0.0.9", Port: 6346}
		if _, err := e.publisher(i % 32).PublishFile(f); err != nil {
			b.Fatal(err)
		}
	}
	s := e.search(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(fmt.Sprintf("artist%02d common", i%10), StrategyCache, 0)
	}
}
