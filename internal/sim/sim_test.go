package sim

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestTiesFireFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.At(time.Second, func() {
		s.After(500*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 1500*time.Millisecond {
		t.Errorf("nested After fired at %v, want 1.5s", at)
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Errorf("Now() = %v, want 0", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(time.Second, func() { fired++ })
	s.At(3*time.Second, func() { fired++ })
	s.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", s.Now())
	}
	s.Run()
	if fired != 2 {
		t.Errorf("fired = %d after Run, want 2", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	fired := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			fired++
			if fired == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (stopped)", fired)
	}
	if s.Pending() != 3 {
		t.Errorf("Pending() = %d, want 3", s.Pending())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestProcessedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Processed() != 7 {
		t.Errorf("Processed() = %d, want 7", s.Processed())
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next models a
	// multi-hop message; total events and final clock must match.
	s := New(1)
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 10 {
			s.After(time.Millisecond, hop)
		}
	}
	s.After(time.Millisecond, hop)
	s.Run()
	if hops != 10 {
		t.Errorf("hops = %d, want 10", hops)
	}
	if s.Now() != 10*time.Millisecond {
		t.Errorf("Now() = %v, want 10ms", s.Now())
	}
}

func BenchmarkSchedule(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if s.Pending() > 10000 {
			s.RunFor(time.Millisecond)
		}
	}
	s.Run()
}
