// Package sim provides a deterministic discrete-event simulator with a
// virtual clock. All experiment-scale components (the Gnutella overlay, the
// simulated network, DHT churn) schedule work on a Sim rather than on wall
// time, which makes runs reproducible and lets a laptop model wide-area
// latencies faithfully.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. Events with equal firing times run in the
// order they were scheduled (FIFO), which keeps runs deterministic.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
type Sim struct {
	now       time.Duration
	seq       uint64
	events    eventHeap
	rng       *rand.Rand
	processed uint64
	stopped   bool
}

// New returns a simulator whose random source is seeded with seed, so that
// two simulations with the same seed and the same schedule of events produce
// identical results.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have fired so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending reports how many events are scheduled but not yet fired.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative
// delays are clamped to zero.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Sim) Stop() { s.stopped = true }

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (s *Sim) Step() bool {
	if s.stopped || len(s.events) == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.at
	s.processed++
	ev.fn()
	return true
}

// Run fires events until none remain or Stop is called.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with firing time <= t, then advances the clock to t.
func (s *Sim) RunUntil(t time.Duration) {
	for !s.stopped && len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor runs the simulation for d of virtual time from the current clock.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }
