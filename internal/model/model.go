// Package model implements the paper's analytical model of hybrid search
// (§6.1, Equations 1–5): the probability a flooded query finds an item
// given its replica count, the recall of the Gnutella+DHT hybrid, and the
// search/publish cost accounting. It also provides the trace-driven
// expected-recall evaluators behind Figures 11–15.
package model

import "math"

// PFGnutella is Equation (2): the probability a query flooded to horizon
// nodes (of n total) finds at least one of the r randomly placed replicas.
//
//	PF = 1 - prod_{j=0}^{horizon-1} (1 - r/(n-j))
func PFGnutella(r, n, horizon int) float64 {
	if r <= 0 || n <= 0 || horizon <= 0 {
		return 0
	}
	if r >= n || horizon >= n {
		return 1
	}
	// Closed form via the hypergeometric zero-draw probability:
	// P(miss) = C(n-r, horizon)/C(n, horizon), evaluated with log-gamma so
	// the trace-driven recall sweeps stay O(1) per item.
	if n-r < horizon {
		return 1 // more replicas than unvisited nodes: always found
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	logMiss := lg(n-r) + lg(n-horizon) - lg(n-r-horizon) - lg(n)
	return 1 - math.Exp(logMiss)
}

// PFHybrid is Equation (1): the probability an item is found in the hybrid
// system, where pfDHT is the probability the item was published (found
// with certainty by the DHT if so).
func PFHybrid(pfGnutella, pfDHT float64) float64 {
	return pfGnutella + (1-pfGnutella)*pfDHT
}

// PFThreshold is the lower bound Figure 9 plots: with every item of
// replica count <= threshold published, the worst-off item has
// threshold+1 replicas and must be found by flooding alone.
func PFThreshold(threshold, n, horizon int) float64 {
	return PFGnutella(threshold+1, n, horizon)
}

// Costs bundles the per-item cost model of Equations (3)–(5).
type Costs struct {
	N           int     // network size
	Horizon     int     // nodes visited by a flood
	QueryFreq   float64 // Qi: queries per time unit for this item
	Lifetime    float64 // Ti: item lifetime in time units
	PublishCost float64 // CPi,DHT: messages to publish the item + postings
}

// SearchCost is Equation (3): cost per time unit of querying the item in
// the hybrid system. dhtSearchCost is CSi,DHT, typically log2(N) messages
// with the InvertedCache option.
func (c Costs) SearchCost(pfGnutella, dhtSearchCost float64) float64 {
	return c.QueryFreq * (float64(c.Horizon-1) + (1-pfGnutella)*dhtSearchCost)
}

// TotalCost is Equation (4): search cost plus amortised publishing.
func (c Costs) TotalCost(pfGnutella, pfDHT, dhtSearchCost float64) float64 {
	return c.SearchCost(pfGnutella, dhtSearchCost) + pfDHT*c.PublishCost/c.Lifetime
}

// DHTSearchCost returns the customary CSi,DHT = log2(N) message cost of a
// DHT lookup (with the InvertedCache option, §6.1).
func DHTSearchCost(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// TotalPublishCost is Equation (5) over a population: the sum of each
// item's publish cost weighted by its publication probability.
func TotalPublishCost(published []bool, perItemCost []float64) float64 {
	total := 0.0
	for i, p := range published {
		if p {
			total += perItemCost[i]
		}
	}
	return total
}

// PublishedInstanceFrac returns the publishing overhead of Figure 10 and
// the x-axis of Figures 13–15: the fraction of file instances (replicas
// counted) that the published set covers.
func PublishedInstanceFrac(replicas []int, published []bool) float64 {
	pub, total := 0, 0
	for i, r := range replicas {
		total += r
		if published[i] {
			pub += r
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pub) / float64(total)
}

// PublishUpToThreshold returns the published set of the complete-knowledge
// scheme of §6.2: every item with replicas <= threshold.
func PublishUpToThreshold(replicas []int, threshold int) []bool {
	out := make([]bool, len(replicas))
	for i, r := range replicas {
		out[i] = r <= threshold
	}
	return out
}

// AvgQueryRecall evaluates the expected Query Recall (QR, §4.2) of the
// hybrid system over a workload. resultSets[q] lists the distinct-file
// indices matching query q; replicas[i] and published[i] describe item i.
// horizonFrac is the fraction of nodes a flood visits.
//
// Per query: published items contribute all their replicas; unpublished
// items contribute the expected horizonFrac of theirs. Queries with no
// available results are skipped (recall undefined), as in the paper.
func AvgQueryRecall(resultSets [][]int, replicas []int, published []bool, horizonFrac float64) float64 {
	sum, n := 0.0, 0
	for _, files := range resultSets {
		if len(files) == 0 {
			continue
		}
		found, total := 0.0, 0.0
		for _, f := range files {
			r := float64(replicas[f])
			total += r
			if published[f] {
				found += r
			} else {
				found += r * horizonFrac
			}
		}
		sum += found / total
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// AvgQueryDistinctRecall evaluates the expected Query Distinct Recall
// (QDR): per query, each distinct matching item counts once, found with
// probability 1 if published and PFGnutella otherwise. This is exactly
// the average of Equation (1) over the query's items.
func AvgQueryDistinctRecall(resultSets [][]int, replicas []int, published []bool, n, horizon int) float64 {
	sum, cnt := 0.0, 0
	for _, files := range resultSets {
		if len(files) == 0 {
			continue
		}
		found := 0.0
		for _, f := range files {
			if published[f] {
				found++
			} else {
				found += PFGnutella(replicas[f], n, horizon)
			}
		}
		sum += found / float64(len(files))
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return 100 * sum / float64(cnt)
}
