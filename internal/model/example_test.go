package model_test

import (
	"fmt"

	"piersearch/internal/model"
)

// ExamplePFGnutella evaluates Equation (2) for the paper's setting: in a
// 75,129-node network with a 15% search horizon, how likely is a flood to
// find an item with a given number of replicas?
func ExamplePFGnutella() {
	const n = 75129
	horizon := n * 15 / 100
	for _, replicas := range []int{1, 2, 5, 20} {
		fmt.Printf("replicas=%2d  PF=%.3f\n", replicas, model.PFGnutella(replicas, n, horizon))
	}
	// Output:
	// replicas= 1  PF=0.150
	// replicas= 2  PF=0.277
	// replicas= 5  PF=0.556
	// replicas=20  PF=0.961
}

// ExamplePFHybrid shows Equation (1): publishing an item into the DHT
// lifts its find probability to certainty.
func ExamplePFHybrid() {
	pfG := model.PFGnutella(1, 75129, 75129/20)
	fmt.Printf("flooding only: %.2f\n", model.PFHybrid(pfG, 0))
	fmt.Printf("published:     %.2f\n", model.PFHybrid(pfG, 1))
	// Output:
	// flooding only: 0.05
	// published:     1.00
}
