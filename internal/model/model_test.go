package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPFGnutellaEdgeCases(t *testing.T) {
	if got := PFGnutella(0, 1000, 100); got != 0 {
		t.Errorf("PF(0 replicas) = %v", got)
	}
	if got := PFGnutella(1000, 1000, 1); got != 1 {
		t.Errorf("PF(all replicas) = %v", got)
	}
	if got := PFGnutella(1, 1000, 1000); got != 1 {
		t.Errorf("PF(full horizon) = %v", got)
	}
	if got := PFGnutella(1, 1000, 0); got != 0 {
		t.Errorf("PF(no horizon) = %v", got)
	}
}

func TestPFGnutellaSingleReplicaEqualsHorizonFraction(t *testing.T) {
	// With one replica, the find probability is exactly horizon/n.
	got := PFGnutella(1, 75129, 75129/20)
	want := float64(75129/20) / 75129
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PF(1 replica, 5%% horizon) = %v, want %v", got, want)
	}
}

func TestPFGnutellaMonotone(t *testing.T) {
	prev := 0.0
	for r := 1; r <= 50; r++ {
		pf := PFGnutella(r, 10000, 500)
		if pf < prev {
			t.Fatalf("PF not monotone in replicas at r=%d", r)
		}
		prev = pf
	}
	prev = 0.0
	for h := 1; h <= 5000; h += 100 {
		pf := PFGnutella(3, 10000, h)
		if pf < prev {
			t.Fatalf("PF not monotone in horizon at h=%d", h)
		}
		prev = pf
	}
}

// pfProduct is Equation (2) evaluated literally, term by term, as written
// in the paper — the reference for the log-gamma closed form.
func pfProduct(r, n, horizon int) float64 {
	miss := 1.0
	for j := 0; j < horizon; j++ {
		p := 1 - float64(r)/float64(n-j)
		if p <= 0 {
			return 1
		}
		miss *= p
	}
	return 1 - miss
}

func TestPFGnutellaMatchesLiteralProduct(t *testing.T) {
	for _, tc := range []struct{ r, n, h int }{
		{1, 100, 10}, {3, 100, 10}, {5, 1000, 250}, {17, 5000, 1500},
		{1, 75129, 3756}, {2, 75129, 11269}, {40, 500, 499},
	} {
		got := PFGnutella(tc.r, tc.n, tc.h)
		want := pfProduct(tc.r, tc.n, tc.h)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("PF(%d,%d,%d) = %.12f, product form = %.12f", tc.r, tc.n, tc.h, got, want)
		}
	}
}

func TestPFGnutellaBounds(t *testing.T) {
	prop := func(r, n, h uint16) bool {
		nn := int(n%5000) + 10
		rr := int(r) % nn
		hh := int(h) % nn
		pf := PFGnutella(rr, nn, hh)
		return pf >= 0 && pf <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPFHybrid(t *testing.T) {
	if got := PFHybrid(0.3, 1); got != 1 {
		t.Errorf("published item PF = %v, want 1", got)
	}
	if got := PFHybrid(0.3, 0); got != 0.3 {
		t.Errorf("unpublished item PF = %v, want 0.3", got)
	}
	if got := PFHybrid(0.5, 0.5); got != 0.75 {
		t.Errorf("PFHybrid(0.5,0.5) = %v", got)
	}
}

func TestPFThresholdDiminishingReturns(t *testing.T) {
	// Figure 9's shape: increasing in threshold, with shrinking increments.
	const n = 75129
	h := n * 15 / 100
	prev, prevGain := 0.0, math.Inf(1)
	for thr := 0; thr <= 20; thr++ {
		pf := PFThreshold(thr, n, h)
		if pf <= prev && thr > 0 {
			t.Fatalf("PFThreshold not increasing at %d", thr)
		}
		gain := pf - prev
		if thr > 1 && gain > prevGain+1e-12 {
			t.Fatalf("gain grew at threshold %d: %v > %v", thr, gain, prevGain)
		}
		prev, prevGain = pf, gain
	}
}

func TestCostsEquations(t *testing.T) {
	c := Costs{N: 10000, Horizon: 500, QueryFreq: 2, Lifetime: 100, PublishCost: 40}
	dht := DHTSearchCost(c.N)
	// Eq 3: fully findable in Gnutella -> no DHT term.
	if got := c.SearchCost(1, dht); got != 2*499 {
		t.Errorf("SearchCost(pf=1) = %v, want 998", got)
	}
	// Never findable -> full DHT term.
	want := 2 * (499 + dht)
	if got := c.SearchCost(0, dht); math.Abs(got-want) > 1e-9 {
		t.Errorf("SearchCost(pf=0) = %v, want %v", got, want)
	}
	// Eq 4: publishing adds amortised cost only if published.
	if got := c.TotalCost(0.5, 0, dht); got != c.SearchCost(0.5, dht) {
		t.Errorf("unpublished TotalCost = %v", got)
	}
	diff := c.TotalCost(0.5, 1, dht) - c.SearchCost(0.5, dht)
	if math.Abs(diff-40.0/100) > 1e-9 {
		t.Errorf("publish amortisation = %v, want 0.4", diff)
	}
}

func TestDHTSearchCost(t *testing.T) {
	if got := DHTSearchCost(1024); got != 10 {
		t.Errorf("DHTSearchCost(1024) = %v", got)
	}
	if got := DHTSearchCost(1); got != 1 {
		t.Errorf("DHTSearchCost(1) = %v", got)
	}
}

func TestTotalPublishCost(t *testing.T) {
	got := TotalPublishCost([]bool{true, false, true}, []float64{10, 20, 30})
	if got != 40 {
		t.Errorf("TotalPublishCost = %v, want 40", got)
	}
}

func TestPublishedInstanceFrac(t *testing.T) {
	replicas := []int{10, 1, 1, 8}
	published := []bool{false, true, true, false}
	got := PublishedInstanceFrac(replicas, published)
	if got != 0.1 {
		t.Errorf("frac = %v, want 0.1", got)
	}
	if PublishedInstanceFrac(nil, nil) != 0 {
		t.Error("empty input should be 0")
	}
}

func TestPublishUpToThreshold(t *testing.T) {
	pub := PublishUpToThreshold([]int{5, 2, 1, 3}, 2)
	want := []bool{false, true, true, false}
	for i := range want {
		if pub[i] != want[i] {
			t.Fatalf("threshold publish = %v", pub)
		}
	}
}

func TestAvgQueryRecallAnchors(t *testing.T) {
	// Nothing published -> QR equals the horizon percentage (§6.2).
	resultSets := [][]int{{0, 1}, {2}, {1, 3}}
	replicas := []int{10, 1, 4, 2}
	none := make([]bool, 4)
	got := AvgQueryRecall(resultSets, replicas, none, 0.15)
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("QR with nothing published = %v, want 15", got)
	}
	// Everything published -> 100%.
	all := []bool{true, true, true, true}
	if got := AvgQueryRecall(resultSets, replicas, all, 0.15); math.Abs(got-100) > 1e-9 {
		t.Errorf("QR with all published = %v", got)
	}
	// Empty result sets are skipped, not counted as zero.
	withEmpty := [][]int{{}, {0}}
	pub := []bool{true, false, false, false}
	if got := AvgQueryRecall(withEmpty, replicas, pub, 0.15); math.Abs(got-100) > 1e-9 {
		t.Errorf("QR skipping empty sets = %v", got)
	}
}

func TestAvgQueryRecallWeightsByReplicas(t *testing.T) {
	// One query matching a popular (9 copies) and a rare (1 copy) item;
	// publishing the rare item adds its single copy: QR = (1+9h)/10.
	resultSets := [][]int{{0, 1}}
	replicas := []int{9, 1}
	pub := []bool{false, true}
	h := 0.05
	want := 100 * (1 + 9*h) / 10
	if got := AvgQueryRecall(resultSets, replicas, pub, h); math.Abs(got-want) > 1e-9 {
		t.Errorf("QR = %v, want %v", got, want)
	}
}

func TestAvgQueryDistinctRecall(t *testing.T) {
	resultSets := [][]int{{0, 1}}
	replicas := []int{1, 1}
	n, horizon := 1000, 100
	// Neither published: each found with PF = 0.1 -> QDR 10%.
	none := []bool{false, false}
	if got := AvgQueryDistinctRecall(resultSets, replicas, none, n, horizon); math.Abs(got-10) > 1e-6 {
		t.Errorf("QDR = %v, want 10", got)
	}
	// One published: (1 + 0.1)/2 = 55%.
	one := []bool{true, false}
	if got := AvgQueryDistinctRecall(resultSets, replicas, one, n, horizon); math.Abs(got-55) > 1e-6 {
		t.Errorf("QDR = %v, want 55", got)
	}
}

func TestRecallMonotoneInPublishing(t *testing.T) {
	// Publishing more items never lowers either recall metric.
	resultSets := [][]int{{0, 1, 2}, {1, 3}, {2, 3}}
	replicas := []int{7, 1, 2, 1}
	base := []bool{false, true, false, false}
	more := []bool{false, true, true, false}
	if AvgQueryRecall(resultSets, replicas, more, 0.05) < AvgQueryRecall(resultSets, replicas, base, 0.05) {
		t.Error("QR decreased when publishing more")
	}
	if AvgQueryDistinctRecall(resultSets, replicas, more, 1000, 50) < AvgQueryDistinctRecall(resultSets, replicas, base, 1000, 50) {
		t.Error("QDR decreased when publishing more")
	}
}
