package wire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"piersearch/internal/dht"
)

// TCPTransport implements dht.Transport over TCP with one pooled
// connection per destination. It is safe for concurrent use; calls to the
// same destination serialise on its connection.
type TCPTransport struct {
	DialTimeout time.Duration // default 5s
	CallTimeout time.Duration // per-RPC deadline, default 10s
	// Delay, if set, sleeps before each call — wide-area latency injection
	// for single-machine deployments (the paper's nodes were continents
	// apart; loopback is not).
	Delay time.Duration

	mu    sync.Mutex
	conns map[string]*pooledConn
}

type pooledConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewTCPTransport returns a ready transport.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		DialTimeout: 5 * time.Second,
		CallTimeout: 10 * time.Second,
		conns:       make(map[string]*pooledConn),
	}
}

func (t *TCPTransport) pooled(addr string) *pooledConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	pc, ok := t.conns[addr]
	if !ok {
		pc = &pooledConn{}
		t.conns[addr] = pc
	}
	return pc
}

// Call implements dht.Transport.
func (t *TCPTransport) Call(to dht.NodeInfo, req *dht.Request) (*dht.Response, error) {
	if t.Delay > 0 {
		time.Sleep(t.Delay)
	}
	pc := t.pooled(to.Addr)
	pc.mu.Lock()
	defer pc.mu.Unlock()

	resp, err := t.callOnce(pc, to.Addr, req)
	if err != nil && pc.conn != nil {
		// Stale pooled connection: retry once on a fresh dial.
		pc.conn.Close()
		pc.conn = nil
		resp, err = t.callOnce(pc, to.Addr, req)
	}
	if err != nil {
		if pc.conn != nil {
			pc.conn.Close()
			pc.conn = nil
		}
		return nil, fmt.Errorf("wire: call %s: %w", to.Addr, err)
	}
	return resp, nil
}

func (t *TCPTransport) callOnce(pc *pooledConn, addr string, req *dht.Request) (*dht.Response, error) {
	if pc.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
		if err != nil {
			return nil, err
		}
		pc.conn = conn
	}
	deadline := time.Now().Add(t.CallTimeout)
	if err := pc.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := WriteFrame(pc.conn, EncodeRequest(req)); err != nil {
		return nil, err
	}
	payload, err := ReadFrame(pc.conn)
	if err != nil {
		return nil, err
	}
	return DecodeResponse(payload)
}

// Close drops all pooled connections.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, pc := range t.conns {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
}

// Server accepts DHT RPCs for one node.
type Server struct {
	node *dht.Node
	ln   net.Listener
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
	active map[net.Conn]bool
}

// Listen opens a listener on addr ("host:0" picks a free port) and returns
// it so the caller can construct the node with the final address before
// serving. Typical startup:
//
//	ln, _ := wire.Listen("127.0.0.1:0")
//	node := dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, transport, cfg)
//	srv := wire.NewServer(node, ln)
//	go srv.Serve()
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// NewServer wraps an accepted listener around a node.
func NewServer(node *dht.Node, ln net.Listener) *Server {
	return &Server{node: node, ln: ln, active: make(map[net.Conn]bool)}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Close. Each connection handles a stream
// of request frames sequentially.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.active[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.active, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		resp := s.node.HandleRPC(req)
		if err := WriteFrame(conn, EncodeResponse(resp)); err != nil {
			return
		}
	}
}

// Close stops accepting, severs open connections, and waits for handler
// goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}
