package wire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"piersearch/internal/codec"
	"piersearch/internal/dht"
)

// TCPTransport implements dht.Transport over TCP with a small pool of
// connections per destination. It is safe for concurrent use: each RPC
// owns one pooled connection for its round-trip, so up to MaxConnsPerHost
// calls to the same destination proceed in parallel and further callers
// queue — the per-connection locking the concurrent query/publish pipeline
// relies on to overlap wide-area round-trips.
type TCPTransport struct {
	DialTimeout time.Duration // default 5s
	CallTimeout time.Duration // per-RPC deadline, default 10s
	// Delay, if set, sleeps before each call — wide-area latency injection
	// for single-machine deployments (the paper's nodes were continents
	// apart; loopback is not).
	Delay time.Duration
	// MaxConnsPerHost bounds the parallel connections kept per
	// destination. Zero means 4. Set before the first Call.
	MaxConnsPerHost int

	mu         sync.Mutex
	conns      map[string]*hostPool
	closed     bool
	dialCtx    context.Context    // canceled by Close, aborting in-flight dials
	dialCancel context.CancelFunc // lazily created with dialCtx
}

// hostPool is the connection pool for one destination: a semaphore
// bounding concurrent round-trips plus a free list of idle connections.
type hostPool struct {
	sem    chan struct{}
	mu     sync.Mutex
	free   []net.Conn
	closed bool
}

func (hp *hostPool) get() net.Conn {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	if n := len(hp.free); n > 0 {
		c := hp.free[n-1]
		hp.free = hp.free[:n-1]
		return c
	}
	return nil
}

func (hp *hostPool) put(c net.Conn) {
	hp.mu.Lock()
	if hp.closed {
		hp.mu.Unlock()
		c.Close()
		return
	}
	hp.free = append(hp.free, c)
	hp.mu.Unlock()
}

// NewTCPTransport returns a ready transport.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		DialTimeout: 5 * time.Second,
		CallTimeout: 10 * time.Second,
		conns:       make(map[string]*hostPool),
	}
}

func (t *TCPTransport) pool(addr string) (*hostPool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("wire: transport closed")
	}
	hp, ok := t.conns[addr]
	if !ok {
		max := t.MaxConnsPerHost
		if max <= 0 {
			max = 4
		}
		hp = &hostPool{sem: make(chan struct{}, max)}
		t.conns[addr] = hp
	}
	return hp, nil
}

// dialContext returns the context that aborts in-flight dials on Close,
// creating it on first use. If Close already ran, the context comes back
// canceled, so a Call racing Close cannot start an uncancelable dial.
func (t *TCPTransport) dialContext() context.Context {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dialCtx == nil {
		t.dialCtx, t.dialCancel = context.WithCancel(context.Background()) //lint:allow ctxflow this IS the transport's cancellation root; Close cancels it
		if t.closed {
			t.dialCancel()
		}
	}
	return t.dialCtx
}

// Call implements dht.Transport.
func (t *TCPTransport) Call(to dht.NodeInfo, req *dht.Request) (*dht.Response, error) {
	return t.CallContext(context.Background(), to, req)
}

// CallContext implements dht.ContextTransport. The context governs the
// whole round-trip: waiting for a pooled-connection slot, the dial, and
// the framed read/write (the connection deadline is the earlier of the
// context deadline and CallTimeout; cancellation severs an in-flight
// round-trip immediately). Once ctx is done the returned error wraps
// ctx.Err(), so a deadline surfaces as context.DeadlineExceeded rather
// than a raw net timeout.
func (t *TCPTransport) CallContext(ctx context.Context, to dht.NodeInfo, req *dht.Request) (*dht.Response, error) {
	if t.Delay > 0 {
		timer := time.NewTimer(t.Delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("wire: call %s: %w", to.Addr, ctx.Err())
		}
	}
	hp, err := t.pool(to.Addr)
	if err != nil {
		return nil, err
	}
	select {
	case hp.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("wire: call %s: %w", to.Addr, ctx.Err())
	}
	defer func() { <-hp.sem }()

	conn := hp.get()
	pooled := conn != nil
	resp, conn, err := t.callOnce(ctx, conn, to.Addr, req)
	if err != nil && pooled && ctx.Err() == nil {
		// Stale pooled connection: retry once on a fresh dial.
		if conn != nil {
			conn.Close()
		}
		resp, conn, err = t.callOnce(ctx, nil, to.Addr, req)
	}
	if err != nil {
		if conn != nil {
			conn.Close()
		}
		// A round-trip severed by the context reports the context's error,
		// not the net-layer timeout it was converted into. The connection
		// deadline can fire a beat before the context's own timer marks it
		// done, so an expired context deadline plus a net timeout is also
		// the context's doing.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("wire: call %s: %w", to.Addr, ctxErr)
		}
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, fmt.Errorf("wire: call %s: %w", to.Addr, context.DeadlineExceeded)
			}
		}
		return nil, fmt.Errorf("wire: call %s: %w", to.Addr, err)
	}
	hp.put(conn)
	return resp, nil
}

// callOnce performs one framed round-trip, dialing when conn is nil. It
// returns the connection it used so the caller can pool or close it.
func (t *TCPTransport) callOnce(ctx context.Context, conn net.Conn, addr string, req *dht.Request) (*dht.Response, net.Conn, error) {
	if conn == nil {
		// The dial aborts when either the per-call context or the
		// transport-wide close context fires.
		dctx, cancel := context.WithCancel(ctx)
		stop := context.AfterFunc(t.dialContext(), cancel)
		d := net.Dialer{Timeout: t.DialTimeout}
		c, err := d.DialContext(dctx, "tcp", addr)
		stop()
		cancel()
		if err != nil {
			return nil, nil, err
		}
		conn = c
	}
	deadline := time.Now().Add(t.CallTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, conn, err
	}
	// Cancellation (as opposed to a deadline) severs the in-flight
	// round-trip by expiring the connection deadline immediately; the
	// caller maps the resulting timeout back to ctx.Err().
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0)) //nolint:errcheck // best-effort abort
	})
	resp, err := func() (*dht.Response, error) {
		if err := WriteFrame(conn, EncodeRequest(req)); err != nil {
			return nil, err
		}
		payload, err := ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		resp, err := DecodeResponse(payload)
		codec.PutBuf(payload) // decode copies what it keeps
		return resp, err
	}()
	if !stop() && err == nil {
		// The abort hook fired (or is in flight) even though the
		// round-trip won the race: the connection's deadline is, or is
		// about to be, poisoned. Fail the call — the caller canceled
		// anyway — so the connection is closed rather than pooled with a
		// stale deadline that would kill the next borrower's RPC.
		if err = ctx.Err(); err == nil {
			err = context.Canceled
		}
	}
	return resp, conn, err
}

// Close shuts the transport down: it aborts in-flight dials, drops and
// closes all idle pooled connections, marks the pools closed so
// connections currently carrying an RPC are closed when that call finishes
// instead of being re-pooled, and fails all future Calls.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if t.dialCancel != nil {
		t.dialCancel()
	}
	for _, hp := range t.conns {
		hp.mu.Lock()
		hp.closed = true
		for _, c := range hp.free {
			c.Close()
		}
		hp.free = nil
		hp.mu.Unlock()
	}
}

// Server accepts DHT RPCs for one node.
type Server struct {
	node *dht.Node
	ln   net.Listener
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
	active map[net.Conn]bool
}

// Listen opens a listener on addr ("host:0" picks a free port) and returns
// it so the caller can construct the node with the final address before
// serving. Typical startup:
//
//	ln, _ := wire.Listen("127.0.0.1:0")
//	node := dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, transport, cfg)
//	srv := wire.NewServer(node, ln)
//	go srv.Serve()
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// NewServer wraps an accepted listener around a node.
func NewServer(node *dht.Node, ln net.Listener) *Server {
	return &Server{node: node, ln: ln, active: make(map[net.Conn]bool)}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Close. Each connection handles a stream
// of request frames sequentially.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.active[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.active, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		req, err := DecodeRequest(payload)
		codec.PutBuf(payload) // decode copies what it keeps
		if err != nil {
			return
		}
		resp := s.node.HandleRPC(req)
		if err := WriteFrame(conn, EncodeResponse(resp)); err != nil {
			return
		}
	}
}

// Close stops accepting, severs open connections, and waits for handler
// goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}
