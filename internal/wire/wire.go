// Package wire provides the real-network transport for the DHT: a compact
// binary codec for the Kademlia RPCs (built on the shared primitives in
// internal/codec) and a length-prefixed TCP transport. The paper's
// deployment ran PIER over wide-area PlanetLab links; this package lets
// the same Node/Engine/PIERSearch code run over TCP sockets
// (cmd/piersearch, cmd/deploy) instead of the in-process simulated network.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"piersearch/internal/codec"
	"piersearch/internal/dht"
	"piersearch/internal/telemetry"
)

// MaxFrame bounds a single message (16 MiB), protecting against corrupt
// or hostile length prefixes.
const MaxFrame = 16 << 20

// coalesceFrameLimit bounds the payload size WriteFrame copies into one
// pooled buffer: below it the copy is cheaper than a second
// syscall/segment; above it (big posting sets, value transfers) the copy
// would cost a fresh multi-MB allocation, so header and payload go out as
// two writes.
const coalesceFrameLimit = 4 << 10

// WriteFrame writes one length-prefixed frame. Small frames are assembled
// in a pooled scratch buffer and written with a single Write (one syscall,
// one TCP segment); large frames are written header-then-payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if len(payload) > coalesceFrameLimit {
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	}
	buf := append(codec.GetBuf(), hdr[:]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	codec.PutBuf(buf)
	return err
}

// ReadFrame reads one length-prefixed frame into a buffer drawn from the
// shared codec pool. Callers that fully decode the frame should hand the
// buffer back with codec.PutBuf (the request/response decoders copy every
// field they keep); retaining it instead is also safe, it just forgoes
// reuse.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := codec.GetBuf()
	if cap(payload) < int(n) {
		payload = make([]byte, n)
	} else {
		payload = payload[:n]
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		codec.PutBuf(payload)
		return nil, err
	}
	return payload, nil
}

// --- codec -----------------------------------------------------------------

// The RPC formats reuse the shared append/Reader primitives and the
// identity wire forms on dht.ID/dht.NodeInfo; only the stored-value
// composite lives here.

func appendValue(dst []byte, v dht.StoredValue) []byte {
	dst = codec.AppendBytes(dst, v.Data)
	dst = v.Publisher.AppendWire(dst)
	dst = codec.AppendVarint(dst, int64(v.StoredAt))
	return codec.AppendVarint(dst, int64(v.TTL))
}

func readStored(r *codec.Reader) dht.StoredValue {
	return dht.StoredValue{
		Data:      r.Bytes(),
		Publisher: dht.ReadID(r),
		StoredAt:  time.Duration(r.Varint()),
		TTL:       time.Duration(r.Varint()),
	}
}

// EncodeRequest serialises a DHT request.
func EncodeRequest(req *dht.Request) []byte {
	buf := make([]byte, 0, 64+len(req.Data)+len(req.Value.Data))
	buf = append(buf, byte(req.Kind))
	buf = req.From.AppendWire(buf)
	buf = req.Target.AppendWire(buf)
	hasValue := byte(0)
	if len(req.Value.Data) > 0 || !req.Value.Publisher.IsZero() {
		hasValue = 1
	}
	buf = append(buf, hasValue)
	if hasValue == 1 {
		buf = appendValue(buf, req.Value)
	}
	buf = codec.AppendString(buf, req.App)
	buf = codec.AppendBytes(buf, req.Data)
	// Provider-record batch (RPCProvide's replication/handoff payload).
	// Always present — an empty batch is two bytes — so the frame layout
	// stays position-independent of the request kind.
	buf = dht.AppendProviderRecords(buf, req.Records)
	// Trailing versioned trace-context block: one flag byte when
	// untraced, so the hot path pays no allocation and peers that
	// predate tracing still parse (the decoder treats an exhausted
	// buffer as "no trace").
	return telemetry.AppendTraceContext(buf, req.TraceID, req.SpanID)
}

// DecodeRequest parses a DHT request. Every retained field is copied out
// of buf, so the caller may recycle buf afterwards.
func DecodeRequest(buf []byte) (*dht.Request, error) {
	r := codec.NewReader(buf)
	req := &dht.Request{
		Kind:   dht.RPCKind(r.Byte()),
		From:   dht.ReadNodeInfo(r),
		Target: dht.ReadID(r),
	}
	if r.Byte() == 1 {
		req.Value = readStored(r)
	}
	req.App = r.String()
	req.Data = r.Bytes()
	req.Records = dht.ReadProviderRecords(r)
	req.TraceID, req.SpanID = telemetry.ReadTraceContext(r)
	return req, r.Finish()
}

// EncodeResponse serialises a DHT response.
func EncodeResponse(resp *dht.Response) []byte {
	buf := make([]byte, 0, 64+len(resp.Data))
	flags := byte(0)
	if resp.OK {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = resp.From.AppendWire(buf)
	buf = codec.AppendUvarint(buf, uint64(len(resp.Closest)))
	for _, c := range resp.Closest {
		buf = c.AppendWire(buf)
	}
	buf = codec.AppendUvarint(buf, uint64(len(resp.Values)))
	for _, v := range resp.Values {
		buf = appendValue(buf, v)
	}
	buf = codec.AppendBytes(buf, resp.Data)
	// Trailing span block: piggy-backed handler spans for traced
	// requests, one varint zero otherwise (legacy peers simply omit it).
	return telemetry.AppendSpans(buf, resp.Spans)
}

// DecodeResponse parses a DHT response. Every retained field is copied out
// of buf, so the caller may recycle buf afterwards.
func DecodeResponse(buf []byte) (*dht.Response, error) {
	r := codec.NewReader(buf)
	resp := &dht.Response{}
	flags := r.Byte()
	resp.OK = flags&1 != 0
	resp.From = dht.ReadNodeInfo(r)
	nClosest := r.Count()
	if nClosest > 1<<16 {
		r.Fail("unreasonable contact count")
	}
	for i := 0; i < nClosest && r.Err() == nil; i++ {
		resp.Closest = append(resp.Closest, dht.ReadNodeInfo(r))
	}
	nValues := r.Count()
	for i := 0; i < nValues && r.Err() == nil; i++ {
		resp.Values = append(resp.Values, readStored(r))
	}
	resp.Data = r.Bytes()
	resp.Spans = telemetry.ReadSpans(r)
	return resp, r.Finish()
}
