// Package wire provides the real-network transport for the DHT: a compact
// binary codec for the Kademlia RPCs and a length-prefixed TCP transport.
// The paper's deployment ran PIER over wide-area PlanetLab links; this
// package lets the same Node/Engine/PIERSearch code run over TCP sockets
// (cmd/piersearch, cmd/deploy) instead of the in-process simulated network.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"piersearch/internal/dht"
)

// MaxFrame bounds a single message (16 MiB), protecting against corrupt
// or hostile length prefixes.
const MaxFrame = 16 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// --- codec -----------------------------------------------------------------

type writer struct{ buf []byte }

func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) id(id dht.ID) { w.buf = append(w.buf, id[:]...) }
func (w *writer) info(n dht.NodeInfo) {
	w.id(n.ID)
	w.str(n.Addr)
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = errors.New("wire: " + msg)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || len(r.buf) < 1 {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || uint64(len(r.buf)) < n {
		r.fail("truncated bytes")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) id() dht.ID {
	var id dht.ID
	if r.err != nil || len(r.buf) < dht.IDBytes {
		r.fail("truncated id")
		return id
	}
	copy(id[:], r.buf[:dht.IDBytes])
	r.buf = r.buf[dht.IDBytes:]
	return id
}

func (r *reader) info() dht.NodeInfo {
	return dht.NodeInfo{ID: r.id(), Addr: r.str()}
}

func writeValue(w *writer, v dht.StoredValue) {
	w.bytes(v.Data)
	w.id(v.Publisher)
	w.varint(int64(v.StoredAt))
	w.varint(int64(v.TTL))
}

func readStored(r *reader) dht.StoredValue {
	return dht.StoredValue{
		Data:      r.bytes(),
		Publisher: r.id(),
		StoredAt:  time.Duration(r.varint()),
		TTL:       time.Duration(r.varint()),
	}
}

// EncodeRequest serialises a DHT request.
func EncodeRequest(req *dht.Request) []byte {
	w := &writer{buf: make([]byte, 0, 64+len(req.Data)+len(req.Value.Data))}
	w.byte(byte(req.Kind))
	w.info(req.From)
	w.id(req.Target)
	hasValue := byte(0)
	if len(req.Value.Data) > 0 || !req.Value.Publisher.IsZero() {
		hasValue = 1
	}
	w.byte(hasValue)
	if hasValue == 1 {
		writeValue(w, req.Value)
	}
	w.str(req.App)
	w.bytes(req.Data)
	return w.buf
}

// DecodeRequest parses a DHT request.
func DecodeRequest(buf []byte) (*dht.Request, error) {
	r := &reader{buf: buf}
	req := &dht.Request{
		Kind:   dht.RPCKind(r.byte()),
		From:   r.info(),
		Target: r.id(),
	}
	if r.byte() == 1 {
		req.Value = readStored(r)
	}
	req.App = r.str()
	req.Data = r.bytes()
	if r.err == nil && len(r.buf) != 0 {
		r.fail("trailing request bytes")
	}
	return req, r.err
}

// EncodeResponse serialises a DHT response.
func EncodeResponse(resp *dht.Response) []byte {
	w := &writer{buf: make([]byte, 0, 64+len(resp.Data))}
	flags := byte(0)
	if resp.OK {
		flags |= 1
	}
	w.byte(flags)
	w.info(resp.From)
	w.uvarint(uint64(len(resp.Closest)))
	for _, c := range resp.Closest {
		w.info(c)
	}
	w.uvarint(uint64(len(resp.Values)))
	for _, v := range resp.Values {
		writeValue(w, v)
	}
	w.bytes(resp.Data)
	return w.buf
}

// DecodeResponse parses a DHT response.
func DecodeResponse(buf []byte) (*dht.Response, error) {
	r := &reader{buf: buf}
	resp := &dht.Response{}
	flags := r.byte()
	resp.OK = flags&1 != 0
	resp.From = r.info()
	nClosest := r.uvarint()
	if nClosest > 1<<16 {
		r.fail("unreasonable contact count")
	}
	for i := uint64(0); i < nClosest && r.err == nil; i++ {
		resp.Closest = append(resp.Closest, r.info())
	}
	nValues := r.uvarint()
	if nValues > 1<<20 {
		r.fail("unreasonable value count")
	}
	for i := uint64(0); i < nValues && r.err == nil; i++ {
		resp.Values = append(resp.Values, readStored(r))
	}
	resp.Data = r.bytes()
	if r.err == nil && len(r.buf) != 0 {
		r.fail("trailing response bytes")
	}
	return resp, r.err
}
