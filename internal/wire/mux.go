package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"piersearch/internal/codec"
	"piersearch/internal/telemetry"
)

// This file extends the transport from one-shot Call round-trips to
// multiplexed streams: many logical byte-payload streams share one TCP
// connection, each with its own ID, lifecycle, and credit-based flow
// control. The query service (internal/service) runs its OpenQuery /
// batch-push / cancel protocol over these streams.
//
// Mux frame layout, inside the existing 4-byte length prefix:
//
//	uvarint streamID | byte kind | body
//
// Kinds:
//
//	open   (1)  body = uvarint window, opening payload. Sent by the dialing
//	            side to create a stream; window is the number of data
//	            frames the opener is prepared to buffer (credits granted
//	            to the accepting side). The acceptor answers with a credit
//	            frame granting its own window, so both directions start
//	            with credit.
//	data   (2)  body = payload. Consumes one send credit.
//	credit (3)  body = uvarint n. Grants the peer n more data frames.
//	close  (4)  graceful end of the sender's direction; queued data
//	            frames are still delivered, then Recv returns io.EOF.
//	reset  (5)  body = string reason. Aborts the stream in both
//	            directions immediately.
const (
	frameOpen byte = iota + 1
	frameData
	frameCredit
	frameClose
	frameReset
)

// DefaultWindow is the per-stream receive window (in data frames) used
// when the opener passes no explicit window.
const DefaultWindow = 8

// StreamResetError reports that the peer (or the local Close) aborted the
// stream.
type StreamResetError struct{ Reason string }

func (e *StreamResetError) Error() string {
	if e.Reason == "" {
		return "wire: stream reset"
	}
	return "wire: stream reset: " + e.Reason
}

// Mux multiplexes streams over one connection. The side that dialed the
// connection opens streams with Open; the accepting side receives each new
// stream through the handler passed to NewServerMux. All methods are safe
// for concurrent use; one Stream's Send (or Recv) must not be called from
// two goroutines at once.
type Mux struct {
	conn    net.Conn
	handler func(*Stream, []byte) // nil on the client side

	writeMu sync.Mutex

	// met holds the session's metric instruments; set after construction
	// (the read loop is already running) so it lives in an atomic
	// pointer. Nil pointer or nil counters no-op.
	met atomic.Pointer[MuxMetrics]

	mu      sync.Mutex
	streams map[uint64]*Stream
	nextID  uint64
	err     error         // terminal mux error
	done    chan struct{} // closed when the read loop exits
}

// MuxMetrics are the per-session wire counters a mux reports when
// attached with SetMetrics. Any field may be nil.
type MuxMetrics struct {
	FramesIn     *telemetry.Counter
	FramesOut    *telemetry.Counter
	BytesIn      *telemetry.Counter
	BytesOut     *telemetry.Counter
	CreditStalls *telemetry.Counter // Sends that had to wait for credit
	Resets       *telemetry.Counter
}

// RegisterMuxMetrics resolves the shared wire.* instruments on reg.
// Sessions created for the same registry share counters, so the totals
// aggregate across connections.
func RegisterMuxMetrics(reg *telemetry.Registry) *MuxMetrics {
	if reg == nil {
		return nil
	}
	return &MuxMetrics{
		FramesIn:     reg.Counter("wire.mux.frames_in"),
		FramesOut:    reg.Counter("wire.mux.frames_out"),
		BytesIn:      reg.Counter("wire.mux.bytes_in"),
		BytesOut:     reg.Counter("wire.mux.bytes_out"),
		CreditStalls: reg.Counter("wire.mux.credit_stalls"),
		Resets:       reg.Counter("wire.mux.resets"),
	}
}

// SetMetrics attaches counters to the session. Safe while the read
// loop is running; nil detaches.
func (m *Mux) SetMetrics(mm *MuxMetrics) { m.met.Store(mm) }

// NewClientMux wraps conn as the stream-opening side of a mux session and
// starts its read loop.
func NewClientMux(conn net.Conn) *Mux {
	m := &Mux{conn: conn, streams: make(map[uint64]*Stream), nextID: 1, done: make(chan struct{})}
	go m.readLoop()
	return m
}

// NewServerMux wraps conn as the accepting side: handler runs in its own
// goroutine for every stream the peer opens, receiving the stream and the
// opening payload. The read loop starts immediately.
func NewServerMux(conn net.Conn, handler func(st *Stream, opening []byte)) *Mux {
	m := &Mux{conn: conn, handler: handler, streams: make(map[uint64]*Stream), done: make(chan struct{})}
	go m.readLoop()
	return m
}

// Err returns the terminal mux error, or nil while the session is live.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Done is closed when the mux session ends (connection failure or Close).
func (m *Mux) Done() <-chan struct{} { return m.done }

// Close tears the session down: the connection is closed and every open
// stream fails with the mux error.
func (m *Mux) Close() error {
	err := m.conn.Close()
	m.fail(fmt.Errorf("wire: mux closed"))
	return err
}

// fail marks the mux broken and propagates err to all streams. Idempotent;
// the first error wins. The connection is closed here, not just in Close:
// a session that dies from a read/write error must release its socket
// rather than leak it into CLOSE_WAIT.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return
	}
	m.err = err
	m.conn.Close() //nolint:errcheck // already failing
	streams := make([]*Stream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.streams = map[uint64]*Stream{}
	m.mu.Unlock()
	for _, st := range streams {
		st.terminate(err)
	}
	close(m.done)
}

// Open creates a new stream, delivering opening to the peer's handler.
// window is the number of data frames this side is prepared to buffer
// before the peer must wait for credits (0 means DefaultWindow).
func (m *Mux) Open(opening []byte, window int) (*Stream, error) {
	if window <= 0 {
		window = DefaultWindow
	}
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	if m.handler != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("wire: accepting side cannot open streams")
	}
	id := m.nextID
	m.nextID++
	st := newStream(m, id, window)
	m.streams[id] = st
	m.mu.Unlock()

	body := codec.AppendUvarint(nil, uint64(window))
	body = append(body, opening...)
	if err := m.writeFrame(id, frameOpen, body); err != nil {
		m.unregister(id)
		st.terminate(err)
		return nil, err
	}
	return st, nil
}

func (m *Mux) unregister(id uint64) {
	m.mu.Lock()
	delete(m.streams, id)
	m.mu.Unlock()
}

func (m *Mux) lookup(id uint64) *Stream {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.streams[id]
}

// ErrFrameTooLarge reports a payload that cannot fit one mux frame. It is
// a local validation failure of that one Send — the session stays up.
var ErrFrameTooLarge = fmt.Errorf("wire: frame exceeds %d-byte limit", MaxFrame)

// writeFrame sends one mux frame: all stream writes share the connection
// under one lock, so frames interleave but never tear. An over-limit
// payload fails only the calling stream; a connection write failure kills
// the session.
func (m *Mux) writeFrame(id uint64, kind byte, body []byte) error {
	if len(body)+binary.MaxVarintLen64+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := codec.GetBuf()
	buf = codec.AppendUvarint(buf, id)
	buf = append(buf, kind)
	buf = append(buf, body...)
	m.writeMu.Lock()
	err := WriteFrame(m.conn, buf)
	m.writeMu.Unlock()
	if mm := m.met.Load(); mm != nil && err == nil {
		mm.FramesOut.Inc()
		mm.BytesOut.Add(int64(len(buf) + 4))
		if kind == frameReset {
			mm.Resets.Inc()
		}
	}
	codec.PutBuf(buf)
	if err != nil {
		m.fail(fmt.Errorf("wire: mux write: %w", err))
	}
	return err
}

// readLoop dispatches incoming frames to their streams until the
// connection fails.
func (m *Mux) readLoop() {
	for {
		payload, err := ReadFrame(m.conn)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			m.fail(fmt.Errorf("wire: mux read: %w", err))
			return
		}
		if mm := m.met.Load(); mm != nil {
			mm.FramesIn.Inc()
			mm.BytesIn.Add(int64(len(payload) + 4))
		}
		r := codec.NewReader(payload)
		id := r.Uvarint()
		kind := r.Byte()
		if r.Err() != nil {
			codec.PutBuf(payload)
			m.fail(fmt.Errorf("wire: malformed mux frame"))
			return
		}
		m.dispatch(id, kind, r)
		codec.PutBuf(payload)
	}
}

// dispatch routes one frame. The body reader aliases a pooled buffer, so
// everything retained is copied out here.
func (m *Mux) dispatch(id uint64, kind byte, r *codec.Reader) {
	switch kind {
	case frameOpen:
		if m.handler == nil {
			// Only the accepting side receives opens; a client getting one
			// is a protocol violation by the peer. Refuse the stream.
			m.writeFrame(id, frameReset, codec.AppendString(nil, "unexpected open")) //nolint:errcheck // best-effort refusal
			return
		}
		window := int(r.Uvarint())
		if r.Err() != nil || window <= 0 || window > 1<<16 {
			m.writeFrame(id, frameReset, codec.AppendString(nil, "bad open frame")) //nolint:errcheck // best-effort refusal
			return
		}
		opening := append([]byte(nil), r.Take(r.Len())...)
		m.mu.Lock()
		if m.err != nil || m.streams[id] != nil {
			m.mu.Unlock()
			return
		}
		st := newStream(m, id, DefaultWindow)
		st.sendCredit = window // the opener granted us this many data frames
		m.streams[id] = st
		m.mu.Unlock()
		// Grant the opener our receive window, so both directions start
		// with credit (the open frame only carries the opener's window).
		m.writeFrame(id, frameCredit, codec.AppendUvarint(nil, DefaultWindow)) //nolint:errcheck // conn failure surfaces to every stream
		go m.handler(st, opening)

	case frameData:
		st := m.lookup(id)
		if st == nil {
			// Stream already closed locally; tell the peer to stop sending.
			m.writeFrame(id, frameReset, codec.AppendString(nil, "unknown stream")) //nolint:errcheck // best-effort
			return
		}
		data := append([]byte(nil), r.Take(r.Len())...)
		select {
		case st.recvq <- data:
		default:
			// The peer overran the credits we granted: protocol violation.
			st.protocolReset("flow control violated")
		}

	case frameCredit:
		st := m.lookup(id)
		if st == nil {
			return
		}
		n := int(r.Uvarint())
		if r.Err() != nil || n <= 0 {
			return
		}
		st.grantSend(n)

	case frameClose:
		st := m.lookup(id)
		if st == nil {
			return
		}
		st.closeRecv()

	case frameReset:
		st := m.lookup(id)
		if st == nil {
			return
		}
		reason := r.String()
		m.unregister(id)
		st.terminate(&StreamResetError{Reason: reason})

	default:
		// Unknown kinds are ignored for forward compatibility.
	}
}

// Stream is one logical bidirectional byte-payload stream within a Mux.
// Recv and Send are each single-goroutine; the two directions are
// independent.
type Stream struct {
	m  *Mux
	id uint64

	recvq    chan []byte   // delivered data frames, bounded by the granted window
	recvDone chan struct{} // peer sent close: EOF after recvq drains
	term     chan struct{} // reset or mux failure: stream is dead

	mu         sync.Mutex
	sendCredit int
	creditc    chan struct{} // signaled (cap 1) when credit arrives
	termErr    error
	recvClosed bool // recvDone closed
	terminated bool // term closed
	sentClose  bool
}

func newStream(m *Mux, id uint64, window int) *Stream {
	return &Stream{
		m:        m,
		id:       id,
		recvq:    make(chan []byte, window),
		recvDone: make(chan struct{}),
		term:     make(chan struct{}),
		creditc:  make(chan struct{}, 1),
	}
}

// ID returns the stream's mux-local identifier.
func (s *Stream) ID() uint64 { return s.id }

// terminate kills the stream in both directions with err.
func (s *Stream) terminate(err error) {
	s.mu.Lock()
	if s.terminated {
		s.mu.Unlock()
		return
	}
	s.terminated = true
	s.termErr = err
	close(s.term)
	s.mu.Unlock()
}

func (s *Stream) closeRecv() {
	s.mu.Lock()
	if !s.recvClosed {
		s.recvClosed = true
		close(s.recvDone)
	}
	s.mu.Unlock()
}

func (s *Stream) grantSend(n int) {
	s.mu.Lock()
	s.sendCredit += n
	s.mu.Unlock()
	select {
	case s.creditc <- struct{}{}:
	default:
	}
}

// protocolReset aborts the stream from the receive path (flow-control
// violation): peer is told, local users see a reset error.
func (s *Stream) protocolReset(reason string) {
	s.m.unregister(s.id)
	s.m.writeFrame(s.id, frameReset, codec.AppendString(nil, reason)) //nolint:errcheck // best-effort
	s.terminate(&StreamResetError{Reason: reason})
}

// errNow returns the terminal error if the stream is dead.
func (s *Stream) errNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.termErr
}

// Send delivers one data frame to the peer, blocking until a flow-control
// credit is available, the context ends, or the stream dies.
func (s *Stream) Send(ctx context.Context, payload []byte) error {
	for {
		s.mu.Lock()
		if s.termErr != nil {
			err := s.termErr
			s.mu.Unlock()
			return err
		}
		if s.sendCredit > 0 {
			s.sendCredit--
			s.mu.Unlock()
			err := s.m.writeFrame(s.id, frameData, payload)
			if errors.Is(err, ErrFrameTooLarge) {
				// Local validation failure: nothing left the socket, so the
				// credit is still ours.
				s.grantSend(1)
			}
			return err
		}
		s.mu.Unlock()
		if mm := s.m.met.Load(); mm != nil {
			mm.CreditStalls.Inc()
		}
		select {
		case <-s.creditc:
		case <-s.term:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Grant gives the peer n more data-frame credits. Callers grant as they
// consume received frames, keeping the pipeline full without unbounded
// buffering.
func (s *Stream) Grant(n int) {
	if n <= 0 {
		return
	}
	select {
	case <-s.term:
		return
	default:
	}
	s.m.writeFrame(s.id, frameCredit, codec.AppendUvarint(nil, uint64(n))) //nolint:errcheck // peer gone: Send will surface it
}

// Recv returns the next data frame. Frames queued before the peer's Close
// are always delivered; after them Recv returns io.EOF. A reset (either
// side) or mux failure surfaces as its error as soon as the already
// delivered frames, if any, are consumed.
func (s *Stream) Recv(ctx context.Context) ([]byte, error) {
	select {
	case p := <-s.recvq:
		return p, nil
	default:
	}
	select {
	case p := <-s.recvq:
		return p, nil
	case <-s.term:
		// Termination and a data frame queued just before it can both be
		// ready; deliver what was already received before reporting.
		select {
		case p := <-s.recvq:
			return p, nil
		default:
			return nil, s.errNow()
		}
	case <-s.recvDone:
		// Close and a late data frame can race in the select; prefer data.
		select {
		case p := <-s.recvq:
			return p, nil
		default:
			return nil, io.EOF
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// CloseSend signals the end of this side's data (the peer's Recv returns
// io.EOF after draining). The receive direction stays open.
func (s *Stream) CloseSend() error {
	s.mu.Lock()
	if s.sentClose || s.terminated {
		s.mu.Unlock()
		return nil
	}
	s.sentClose = true
	s.mu.Unlock()
	return s.m.writeFrame(s.id, frameClose, nil)
}

// Reset aborts the stream in both directions, telling the peer why.
// The service layer maps a canceled query context to Reset.
func (s *Stream) Reset(reason string) {
	s.mu.Lock()
	if s.terminated {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.m.unregister(s.id)
	s.m.writeFrame(s.id, frameReset, codec.AppendString(nil, reason)) //nolint:errcheck // best-effort
	s.terminate(&StreamResetError{Reason: reason})
}

// Close releases the stream. A stream that already ended cleanly (or was
// reset) just unregisters; a live stream is reset so the peer stops
// streaming into the void.
func (s *Stream) Close() error {
	s.mu.Lock()
	dead := s.terminated
	clean := s.recvClosed && s.sentClose
	s.mu.Unlock()
	if dead {
		s.m.unregister(s.id)
		return nil
	}
	if clean {
		s.m.unregister(s.id)
		s.terminate(&StreamResetError{Reason: "closed"})
		return nil
	}
	s.Reset("closed")
	return nil
}
